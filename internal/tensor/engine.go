package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine selects the compute-kernel implementation behind Conv2D,
// Conv2DBackward and the dense GEMM helpers.
//
// EngineGEMM (the default) lowers every convolution to im2col plus a
// cache-blocked, goroutine-parallel GEMM — the same formulation the paper's
// accelerator executes (Tab. 1) — and draws its scratch buffers from a
// pooled arena so steady-state training performs no large allocations.
//
// EngineNaive is the direct 7-loop reference oracle: slow, single-threaded,
// allocating fresh tensors on every call, and kept precisely because it is
// trivially auditable. Equivalence tests pin the GEMM engine against it.
type Engine int32

const (
	// EngineGEMM routes convolutions through im2col + blocked parallel GEMM.
	EngineGEMM Engine = iota
	// EngineNaive routes convolutions through the direct reference loops.
	EngineNaive
)

func (e Engine) String() string {
	switch e {
	case EngineGEMM:
		return "gemm"
	case EngineNaive:
		return "naive"
	default:
		return fmt.Sprintf("Engine(%d)", int32(e))
	}
}

// ParseEngine converts a flag value ("naive" or "gemm") into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "gemm":
		return EngineGEMM, nil
	case "naive":
		return EngineNaive, nil
	default:
		return EngineGEMM, fmt.Errorf("tensor: unknown engine %q (want naive or gemm)", s)
	}
}

// curEngine and numThreads are process-wide kernel configuration. They are
// atomics so tests and long-running servers can flip engines while worker
// goroutines are in flight without a data race; a kernel reads its
// configuration once at entry.
var (
	curEngine  atomic.Int32 // zero value == EngineGEMM
	numThreads atomic.Int32 // 0 == GOMAXPROCS
)

// SetEngine installs e as the process-wide kernel engine and returns the
// previous one (handy for defer-restore in tests and benchmarks).
func SetEngine(e Engine) Engine { return Engine(curEngine.Swap(int32(e))) }

// CurrentEngine returns the engine Conv2D and friends will dispatch to.
func CurrentEngine() Engine { return Engine(curEngine.Load()) }

// SetThreads bounds the number of goroutines a single kernel invocation may
// fan out to. n <= 0 means "use GOMAXPROCS". Returns the previous setting.
//
// Results are bit-identical for every thread count: parallelism only
// partitions independent output rows / samples, never a reduction.
func SetThreads(n int) int { return int(numThreads.Swap(int32(n))) }

// Threads returns the resolved kernel parallelism.
func Threads() int {
	if n := int(numThreads.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor splits [0,n) into at most Threads() contiguous chunks and runs
// fn on each. With one thread (or one chunk) it runs inline, so the serial
// path allocates nothing and single-core hosts pay no goroutine overhead.
// Each worker receives a contiguous [lo,hi) range, letting callers hold one
// scratch slab per worker.
func parallelFor(n int, fn func(lo, hi int)) {
	t := Threads()
	if t > n {
		t = n
	}
	if t <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + t - 1) / t
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
