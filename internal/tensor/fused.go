package tensor

import "fmt"

// Fused-epilogue GEMM kernels. The classic formulation of a dense or
// convolution layer makes separate trips over the output: accumulate the
// matrix product, add the bias, then apply the activation in its own layer
// pass (reading and rewriting every activation through another buffer).
// gemmFused folds the bias and activation into the GEMM's own blocked
// loop: they run per column block right after its last depth panel — while
// the block is still cache-hot — so the epilogue costs no extra trip over
// the activations and no second buffer. The accumulate core is exactly
// gemmBlocked's overwrite path (first depth panel stores its register
// accumulators directly; later panels continue the chain from memory).
//
// Numerics: every output element still accumulates its k terms in ascending
// order, so results are bit-identical for any thread count. Relative to the
// unfused flow only the bias moves (added last instead of first), an
// ulp-level reordering pinned by the fused-vs-naive equivalence tests.

// gemmFused computes C[m,n] = act(A[m,k] x B[k,n] + bias), overwriting C.
// rowBias (len m) adds per output row — the convolution layout, where rows
// are output channels. colBias (len n) adds per output column — the dense-
// layer layout, where columns are output features. At most one may be
// non-nil. relu clamps negatives to zero after the bias.
func gemmFused(m, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, rowBias, colBias []float64, relu bool) {
	cfg := kernelCfg.Load()
	for jj := 0; jj < n; jj += cfg.NC {
		jn := min(n-jj, cfg.NC)
		if k == 0 {
			for i := 0; i < m; i++ {
				zeroFloats(c[i*ldc+jj : i*ldc+jj+jn])
			}
		}
		for pp := 0; pp < k; pp += cfg.KC {
			pk := min(k-pp, cfg.KC)
			runPanel(cfg.MR, m, pk, jn, a[pp:], lda, b[pp*ldb+jj:], ldb, c[jj:], ldc, pp > 0)
		}
		// Epilogue: bias + activation on the finished column block.
		for i := 0; i < m; i++ {
			ci := c[i*ldc+jj : i*ldc+jj+jn]
			switch {
			case rowBias != nil:
				bi := rowBias[i]
				if relu {
					for j := range ci {
						if v := ci[j] + bi; v > 0 {
							ci[j] = v
						} else {
							ci[j] = 0
						}
					}
				} else {
					for j := range ci {
						ci[j] += bi
					}
				}
			case colBias != nil:
				bj := colBias[jj : jj+jn]
				if relu {
					for j := range ci {
						if v := ci[j] + bj[j]; v > 0 {
							ci[j] = v
						} else {
							ci[j] = 0
						}
					}
				} else {
					for j := range ci {
						ci[j] += bj[j]
					}
				}
			case relu:
				for j := range ci {
					if ci[j] < 0 {
						ci[j] = 0
					}
				}
			}
		}
	}
}

// Conv2DFusedInto computes out = act(conv(x) + bias) with the GEMM engine's
// fused epilogue: per sample, im2col + blocked GEMM with the bias and
// optional ReLU folded into the output loop. bias may be nil. The batch
// dimension parallelizes across Threads() goroutines exactly like Conv2DInto,
// and per-sample results are bit-identical for any thread count.
func Conv2DFusedInto(out, x, weight, bias *Tensor, s ConvSpec, relu bool) {
	Conv2DFusedColInto(out, x, weight, bias, s, relu, nil)
}

// Conv2DFusedColInto is Conv2DFusedInto with im2col retention: when colAll
// is non-nil (len n*K*M, K = InC*KH*KW, M = OH*OW) every sample's im2col
// packing is kept there instead of a transient scratch slab, so a training
// step's backward pass can reuse the packing instead of re-lowering x —
// the input is packed once per step, not once per pass.
func Conv2DFusedColInto(out, x, weight, bias *Tensor, s ConvSpec, relu bool, colAll []float64) {
	n := x.Shape[0]
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	if out.Shape[0] != n || out.Shape[1] != s.OutC || out.Shape[2] != oh || out.Shape[3] != ow {
		panic(fmt.Sprintf("tensor: fused conv out shape %v, want [%d %d %d %d]", out.Shape, n, s.OutC, oh, ow))
	}
	if colAll != nil {
		if want := n * s.InC * s.KH * s.KW * oh * ow; len(colAll) != want {
			panic(fmt.Sprintf("tensor: conv col buffer %d, want %d", len(colAll), want))
		}
	}
	var bs []float64
	if bias != nil {
		bs = bias.Data
	}
	if Threads() <= 1 || n == 1 {
		conv2DFusedRange(out, x, weight, bs, s, oh, ow, relu, colAll, 0, n)
		return
	}
	parallelFor(n, func(lo, hi int) {
		conv2DFusedRange(out, x, weight, bs, s, oh, ow, relu, colAll, lo, hi)
	})
}

// conv2DFusedRange runs the fused forward lowering for samples [lo,hi),
// packing into colAll when retained or one pooled slab otherwise.
func conv2DFusedRange(out, x, weight *Tensor, bias []float64, s ConvSpec, oh, ow int, relu bool, colAll []float64, lo, hi int) {
	k := s.InC * s.KH * s.KW
	m := oh * ow
	var slab *slab
	if colAll == nil {
		slab = getSlab(k * m)
		defer slab.put()
	}
	for ni := lo; ni < hi; ni++ {
		var col []float64
		if colAll != nil {
			col = colAll[ni*k*m : (ni+1)*k*m]
		} else {
			col = slab.f
		}
		im2colSample(col, x, ni, s, oh, ow)
		dst := out.Data[ni*s.OutC*m : (ni+1)*s.OutC*m]
		gemmFused(s.OutC, k, m, weight.Data, k, col, m, dst, m, bias, nil, relu)
	}
}

// LinearInto computes dst = act(x[n,in] x w[in,out] + bias) into a
// preallocated dst[n,out] with the fused epilogue (bias per output feature,
// optional ReLU). bias may be nil. Row panels of dst are computed in
// parallel across Threads() goroutines; results are bit-identical for any
// thread count.
func LinearInto(dst, x, w, bias *Tensor, relu bool) *Tensor {
	m, k, n := matMulDims(x, w)
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: linear dst %v for %v x %v", dst.Shape, x.Shape, w.Shape))
	}
	var bs []float64
	if bias != nil {
		if len(bias.Shape) != 1 || bias.Shape[0] != n {
			panic(fmt.Sprintf("tensor: linear bias %v, want [%d]", bias.Shape, n))
		}
		bs = bias.Data
	}
	if Threads() <= 1 || m == 1 {
		gemmFused(m, k, n, x.Data, k, w.Data, n, dst.Data, n, nil, bs, relu)
		return dst
	}
	parallelFor(m, func(lo, hi int) {
		gemmFused(hi-lo, k, n, x.Data[lo*k:], k, w.Data, n, dst.Data[lo*n:], n, nil, bs, relu)
	})
	return dst
}
