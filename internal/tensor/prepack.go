package tensor

import "fmt"

// Pre-packed im2col entry points for the MBS executor's double-buffered
// sub-batch pipeline: while the GEMMs of sub-batch b run, a packer goroutine
// lowers sub-batch b+1's input into a second col arena with Im2ColPack, and
// the next forward then consumes that packing via Conv2DFromColInto without
// touching the input tensor again. Both functions are exact factorings of
// Conv2DFusedColInto's two halves (im2colSample + gemmFused per sample), so
// pack-then-consume is bit-identical to the fused single-pass call for any
// thread count.

// colLen returns the im2col buffer length for n samples of x under s.
func colLen(n int, s ConvSpec, oh, ow int) int {
	return n * s.InC * s.KH * s.KW * oh * ow
}

// Im2ColPack lowers every sample of x into col (length n*K*M, K =
// InC*KH*KW, M = OH*OW — the layout Conv2DFusedColInto retains). It runs on
// the calling goroutine only: the pipeline overlaps packing with compute by
// goroutine placement, not by splitting the packing itself.
func Im2ColPack(col []float64, x *Tensor, s ConvSpec) {
	n := x.Shape[0]
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	if want := colLen(n, s, oh, ow); len(col) != want {
		panic(fmt.Sprintf("tensor: im2col pack buffer %d, want %d", len(col), want))
	}
	k := s.InC * s.KH * s.KW
	m := oh * ow
	for ni := 0; ni < n; ni++ {
		im2colSample(col[ni*k*m:(ni+1)*k*m], x, ni, s, oh, ow)
	}
}

// Conv2DFromColInto computes out = act(W*col + bias) from a pre-packed
// im2col buffer (Im2ColPack's layout), skipping the lowering of x entirely.
// out supplies the batch and spatial dimensions. bias may be nil. Samples
// parallelize across Threads() goroutines exactly like Conv2DFusedColInto
// and results are bit-identical to it.
func Conv2DFromColInto(out *Tensor, col []float64, weight, bias *Tensor, s ConvSpec, relu bool) {
	n, oh, ow := out.Shape[0], out.Shape[2], out.Shape[3]
	if out.Shape[1] != s.OutC {
		panic(fmt.Sprintf("tensor: prepacked conv out shape %v, want OutC %d", out.Shape, s.OutC))
	}
	if want := colLen(n, s, oh, ow); len(col) != want {
		panic(fmt.Sprintf("tensor: prepacked conv col buffer %d, want %d", len(col), want))
	}
	var bs []float64
	if bias != nil {
		bs = bias.Data
	}
	k := s.InC * s.KH * s.KW
	m := oh * ow
	// Closure only on the parallel path: the single-thread fast path must
	// not heap-allocate (the grouped MBS executor's 0-alloc contract).
	if Threads() <= 1 || n == 1 {
		conv2DFromColRange(out, col, weight.Data, bs, s, k, m, relu, 0, n)
		return
	}
	parallelFor(n, func(lo, hi int) {
		conv2DFromColRange(out, col, weight.Data, bs, s, k, m, relu, lo, hi)
	})
}

func conv2DFromColRange(out *Tensor, col, weight, bs []float64, s ConvSpec, k, m int, relu bool, lo, hi int) {
	for ni := lo; ni < hi; ni++ {
		dst := out.Data[ni*s.OutC*m : (ni+1)*s.OutC*m]
		gemmFused(s.OutC, k, m, weight, k, col[ni*k*m:(ni+1)*k*m], m, dst, m, bs, nil, relu)
	}
}
