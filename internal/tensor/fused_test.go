package tensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/f16"
)

// fusedConvCase builds a conv whose K (270) crosses the kcBlock=256 panel
// boundary and whose M (576) crosses the ncBlock=512 boundary, so the fused
// kernel's first-panel overwrite and per-block epilogue are exercised across
// panel seams, not just inside one panel.
func fusedConvCase(seed int64) (x, w, bias *Tensor, s ConvSpec) {
	rng := rand.New(rand.NewSource(seed))
	s = ConvSpec{InC: 30, OutC: 7, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x = New(3, 30, 24, 24)
	x.Randn(rng, 1)
	w = New(7, 30, 3, 3)
	w.Randn(rng, 0.2)
	bias = New(7)
	bias.Randn(rng, 0.5)
	return
}

// TestConv2DFusedMatchesNaive pins the fused bias+ReLU epilogue against the
// 7-loop reference: same convolution, bias added in the epilogue instead of
// a prefill pass, ReLU folded into the output loop. Only the summation
// order of the bias differs, so agreement is to ~ulp, far tighter than the
// 1e-9 the training equivalence suite uses.
func TestConv2DFusedMatchesNaive(t *testing.T) {
	for _, relu := range []bool{false, true} {
		x, w, bias, s := fusedConvCase(7)
		want := Conv2DNaive(x, w, bias, s)
		if relu {
			for i, v := range want.Data {
				if v <= 0 {
					want.Data[i] = 0
				}
			}
		}
		got := New(want.Shape...)
		Conv2DFusedInto(got, x, w, bias, s, relu)
		if d := got.MaxAbsDiff(want); d > 1e-11 {
			t.Errorf("relu=%v: fused conv differs from naive by %g", relu, d)
		}
	}
}

// TestConv2DFusedNilBias covers the bias-free epilogue path.
func TestConv2DFusedNilBias(t *testing.T) {
	x, w, _, s := fusedConvCase(8)
	want := Conv2DNaive(x, w, nil, s)
	got := New(want.Shape...)
	Conv2DFusedInto(got, x, w, nil, s, false)
	if d := got.MaxAbsDiff(want); d > 1e-11 {
		t.Errorf("fused conv (nil bias) differs from naive by %g", d)
	}
}

// TestConv2DFusedDeterministicAcrossThreads: the fused forward must stay
// bit-identical for any thread count (parallelism partitions samples only).
func TestConv2DFusedDeterministicAcrossThreads(t *testing.T) {
	defer SetThreads(SetThreads(1))
	x, w, bias, s := fusedConvCase(9)
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	ref := New(x.Shape[0], s.OutC, oh, ow)
	Conv2DFusedInto(ref, x, w, bias, s, true)
	for _, threads := range []int{2, 5} {
		SetThreads(threads)
		got := New(ref.Shape...)
		Conv2DFusedInto(got, x, w, bias, s, true)
		for i := range ref.Data {
			if ref.Data[i] != got.Data[i] {
				t.Fatalf("threads=%d: fused conv not bit-identical at %d", threads, i)
			}
		}
	}
}

// TestLinearIntoMatchesReference pins the fused dense kernel (first-panel
// overwrite, per-column bias, optional ReLU) against a direct triple loop,
// on dimensions that cross both panel boundaries.
func TestLinearIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const m, k, n = 5, 300, 600
	x := New(m, k)
	x.Randn(rng, 1)
	w := New(k, n)
	w.Randn(rng, 0.1)
	bias := New(n)
	bias.Randn(rng, 0.5)
	for _, relu := range []bool{false, true} {
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for p := 0; p < k; p++ {
					s += x.Data[i*k+p] * w.Data[p*n+j]
				}
				s += bias.Data[j]
				if relu && s <= 0 {
					s = 0
				}
				want.Data[i*n+j] = s
			}
		}
		got := New(m, n)
		LinearInto(got, x, w, bias, relu)
		if d := got.MaxAbsDiff(want); d > 1e-10 {
			t.Errorf("relu=%v: fused linear differs from reference by %g", relu, d)
		}
	}
}

// TestMatMulPackedF16ExactContract: the packed fp16 product is EXACTLY the
// f64 product against the fp16-quantized weights — decode is exact and the
// accumulation order matches gemmAcc — so serving results are deterministic
// and independent of how requests were batched. The optional fp16
// write-back must equal the rounded f64 block.
func TestMatMulPackedF16ExactContract(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const m, k, n = 4, 300, 600
	a := New(m, k)
	a.Randn(rng, 1)
	b := New(k, n)
	b.Randn(rng, 0.1)
	bias := New(n)
	bias.Randn(rng, 0.2)

	// Reference: quantize B through fp16, run the standard blocked GEMM,
	// apply the same epilogue ops in the same order.
	bq := b.Clone()
	f16.QuantizeSlice(bq.Data)
	want := MatMul(a, bq)
	for i := 0; i < m; i++ {
		row := want.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] += bias.Data[j]
			if row[j] < 0 {
				row[j] = 0
			}
		}
	}

	pb := PackF16(b)
	if pb.K != k || pb.N != n {
		t.Fatalf("packed dims %dx%d", pb.K, pb.N)
	}
	if pb.MaxErr <= 0 {
		t.Fatalf("packing reported no quantization error (MaxErr=%g)", pb.MaxErr)
	}
	c := make([]float64, m*n)
	out := make([]f16.F16, m*n)
	MatMulPackedF16(m, a.Data, pb, c, bias.Data, true, out)

	for i := range c {
		if c[i] != want.Data[i] {
			t.Fatalf("packed f16 product differs from quantized reference at %d: %g vs %g",
				i, c[i], want.Data[i])
		}
		if got := out[i].Float64(); got != f16.Quantize(c[i]) {
			t.Fatalf("fp16 write-back at %d: %g vs %g", i, got, f16.Quantize(c[i]))
		}
	}
}

// TestMatMulPackedF16BatchInvariance: computing rows one at a time (m=1,
// the single-request serving path) must produce bit-identical rows to one
// coalesced m=8 call — the batched fast path changes throughput, never
// results.
func TestMatMulPackedF16BatchInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m, k, n = 8, 270, 520
	a := New(m, k)
	a.Randn(rng, 1)
	b := New(k, n)
	b.Randn(rng, 0.1)
	pb := PackF16(b)

	batched := make([]float64, m*n)
	MatMulPackedF16(m, a.Data, pb, batched, nil, false, nil)
	single := make([]float64, n)
	for i := 0; i < m; i++ {
		MatMulPackedF16(1, a.Data[i*k:(i+1)*k], pb, single, nil, false, nil)
		for j := 0; j < n; j++ {
			if single[j] != batched[i*n+j] {
				t.Fatalf("row %d col %d: m=1 result %g differs from m=8 result %g",
					i, j, single[j], batched[i*n+j])
			}
		}
	}
}

// TestPackedF16Bytes sanity-checks the storage accounting.
func TestPackedF16Bytes(t *testing.T) {
	b := New(100, 40)
	pb := PackF16(b)
	if got, want := pb.Bytes(), int64(100*40*2); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
}

// TestLinearIntoDeterministicAcrossThreads mirrors the conv determinism
// contract for the dense fused kernel.
func TestLinearIntoDeterministicAcrossThreads(t *testing.T) {
	defer SetThreads(SetThreads(1))
	rng := rand.New(rand.NewSource(14))
	x := New(16, 128)
	x.Randn(rng, 1)
	w := New(128, 96)
	w.Randn(rng, 0.2)
	bias := New(96)
	bias.Randn(rng, 0.1)
	ref := New(16, 96)
	LinearInto(ref, x, w, bias, true)
	for _, threads := range []int{3, 8} {
		SetThreads(threads)
		got := New(16, 96)
		LinearInto(got, x, w, bias, true)
		for i := range ref.Data {
			if ref.Data[i] != got.Data[i] {
				t.Fatalf("threads=%d: fused linear not bit-identical", threads)
			}
		}
	}
}

// TestConv2DFusedReLUZeros: the fused ReLU must clamp to +0 exactly like
// the reference activation (no negative zeros escaping into fp16 encodes).
func TestConv2DFusedReLUZeros(t *testing.T) {
	x, w, bias, s := fusedConvCase(15)
	got := Conv2D(x, w, bias, s) // shape donor
	Conv2DFusedInto(got, x, w, bias, s, true)
	for i, v := range got.Data {
		if v < 0 {
			t.Fatalf("relu output %g at %d", v, i)
		}
		if v == 0 && math.Signbit(v) {
			t.Fatalf("negative zero at %d", i)
		}
	}
}
