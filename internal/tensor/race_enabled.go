//go:build race

package tensor

// RaceEnabled reports whether the race detector is compiled in; its
// instrumentation adds heap allocations, so allocation-regression tests
// skip themselves under -race.
const RaceEnabled = true
