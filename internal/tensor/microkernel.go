package tensor

// Register-tiled GEMM micro-kernels. Each kernel computes one (pk x jn)
// depth-panel of B against a range of A rows, holding an MR x NR tile of
// output accumulators in local variables the compiler keeps in registers.
// Relative to the previous axpy formulation (C re-read and re-written from
// cache once per depth step), a register tile touches each C element once
// per panel, streams each B row once per MR output rows, and exposes MR*NR
// independent fused-multiply-add chains for the CPU to pipeline.
//
// Numerics contract (load semantics): every output element accumulates its
// depth terms in ascending p order in a single chain. With load=true the
// chain continues from the element's current value ((c+t0)+t1+...); with
// load=false it starts from zero — exactly the chain the previous zero-init
// + term-by-term accumulation produced. The chain is therefore independent
// of the micro-tile shape (MR x NR), the column blocking (nc), the thread
// partition, and the batch grouping of rows: those knobs move work between
// registers, never terms between additions. Only the depth blocking (kc)
// regroups additions, which is why the autotuner holds kc fixed.
//
// Index conventions: a[i*lda+p] (i < m rows, p < pk depth), b[p*ldb+j]
// (j < jn columns), c[i*ldc+j]. Callers pass slices pre-offset to the
// panel origin.

// microShape identifies one implemented micro-kernel tile shape.
type microShape struct{ mr, nr int }

// microShapes lists the implemented register-tile shapes, in the order the
// autotuner tries them. 4x4 balances A and B register pressure; 2x8 favors
// wide contiguous B rows (fewer, longer streams); 8x2 favors tall A panels
// (column-pair B reuse across eight rows).
var microShapes = []microShape{{4, 4}, {2, 8}, {8, 2}}

func validShape(mr, nr int) bool {
	for _, s := range microShapes {
		if s.mr == mr && s.nr == nr {
			return true
		}
	}
	return false
}

// runPanel dispatches one panel to the AVX2+FMA kernels when available,
// else to the configured portable micro-kernel shape.
func runPanel(mr int, m, pk, jn int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, load bool) {
	if simdOn.Load() {
		simdPanel(mr, m, pk, jn, a, lda, b, ldb, c, ldc, load)
		return
	}
	switch mr {
	case 2:
		panel2x8(m, pk, jn, a, lda, b, ldb, c, ldc, load)
	case 8:
		panel8x2(m, pk, jn, a, lda, b, ldb, c, ldc, load)
	default:
		panel4x4(m, pk, jn, a, lda, b, ldb, c, ldc, load)
	}
}

// panel4x4 processes the panel in 4x4 register tiles.
func panel4x4(m, pk, jn int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, load bool) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*lda : (i+0)*lda+pk]
		a1 := a[(i+1)*lda : (i+1)*lda+pk]
		a2 := a[(i+2)*lda : (i+2)*lda+pk]
		a3 := a[(i+3)*lda : (i+3)*lda+pk]
		j := 0
		for ; j+4 <= jn; j += 4 {
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			if load {
				r0 := c[(i+0)*ldc+j : (i+0)*ldc+j+4 : (i+0)*ldc+j+4]
				r1 := c[(i+1)*ldc+j : (i+1)*ldc+j+4 : (i+1)*ldc+j+4]
				r2 := c[(i+2)*ldc+j : (i+2)*ldc+j+4 : (i+2)*ldc+j+4]
				r3 := c[(i+3)*ldc+j : (i+3)*ldc+j+4 : (i+3)*ldc+j+4]
				c00, c01, c02, c03 = r0[0], r0[1], r0[2], r0[3]
				c10, c11, c12, c13 = r1[0], r1[1], r1[2], r1[3]
				c20, c21, c22, c23 = r2[0], r2[1], r2[2], r2[3]
				c30, c31, c32, c33 = r3[0], r3[1], r3[2], r3[3]
			}
			bo := j
			for p := 0; p < pk; p++ {
				bp := b[bo : bo+4 : bo+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				av := a0[p]
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = a1[p]
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				av = a2[p]
				c20 += av * b0
				c21 += av * b1
				c22 += av * b2
				c23 += av * b3
				av = a3[p]
				c30 += av * b0
				c31 += av * b1
				c32 += av * b2
				c33 += av * b3
				bo += ldb
			}
			r0 := c[(i+0)*ldc+j : (i+0)*ldc+j+4 : (i+0)*ldc+j+4]
			r1 := c[(i+1)*ldc+j : (i+1)*ldc+j+4 : (i+1)*ldc+j+4]
			r2 := c[(i+2)*ldc+j : (i+2)*ldc+j+4 : (i+2)*ldc+j+4]
			r3 := c[(i+3)*ldc+j : (i+3)*ldc+j+4 : (i+3)*ldc+j+4]
			r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
			r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
			r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
			r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
		}
		if j < jn {
			panelRows(i, i+4, j, jn, pk, a, lda, b, ldb, c, ldc, load)
		}
	}
	if i < m {
		panelRows(i, m, 0, jn, pk, a, lda, b, ldb, c, ldc, load)
	}
}

// panel2x8 processes the panel in 2x8 register tiles.
func panel2x8(m, pk, jn int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, load bool) {
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a[(i+0)*lda : (i+0)*lda+pk]
		a1 := a[(i+1)*lda : (i+1)*lda+pk]
		j := 0
		for ; j+8 <= jn; j += 8 {
			var c00, c01, c02, c03, c04, c05, c06, c07 float64
			var c10, c11, c12, c13, c14, c15, c16, c17 float64
			if load {
				r0 := c[(i+0)*ldc+j : (i+0)*ldc+j+8 : (i+0)*ldc+j+8]
				r1 := c[(i+1)*ldc+j : (i+1)*ldc+j+8 : (i+1)*ldc+j+8]
				c00, c01, c02, c03 = r0[0], r0[1], r0[2], r0[3]
				c04, c05, c06, c07 = r0[4], r0[5], r0[6], r0[7]
				c10, c11, c12, c13 = r1[0], r1[1], r1[2], r1[3]
				c14, c15, c16, c17 = r1[4], r1[5], r1[6], r1[7]
			}
			bo := j
			for p := 0; p < pk; p++ {
				bp := b[bo : bo+8 : bo+8]
				av := a0[p]
				c00 += av * bp[0]
				c01 += av * bp[1]
				c02 += av * bp[2]
				c03 += av * bp[3]
				c04 += av * bp[4]
				c05 += av * bp[5]
				c06 += av * bp[6]
				c07 += av * bp[7]
				av = a1[p]
				c10 += av * bp[0]
				c11 += av * bp[1]
				c12 += av * bp[2]
				c13 += av * bp[3]
				c14 += av * bp[4]
				c15 += av * bp[5]
				c16 += av * bp[6]
				c17 += av * bp[7]
				bo += ldb
			}
			r0 := c[(i+0)*ldc+j : (i+0)*ldc+j+8 : (i+0)*ldc+j+8]
			r1 := c[(i+1)*ldc+j : (i+1)*ldc+j+8 : (i+1)*ldc+j+8]
			r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
			r0[4], r0[5], r0[6], r0[7] = c04, c05, c06, c07
			r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
			r1[4], r1[5], r1[6], r1[7] = c14, c15, c16, c17
		}
		if j < jn {
			panelRows(i, i+2, j, jn, pk, a, lda, b, ldb, c, ldc, load)
		}
	}
	if i < m {
		panelRows(i, m, 0, jn, pk, a, lda, b, ldb, c, ldc, load)
	}
}

// panel8x2 processes the panel in 8x2 register tiles.
func panel8x2(m, pk, jn int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, load bool) {
	i := 0
	for ; i+8 <= m; i += 8 {
		j := 0
		for ; j+2 <= jn; j += 2 {
			var c00, c01, c10, c11, c20, c21, c30, c31 float64
			var c40, c41, c50, c51, c60, c61, c70, c71 float64
			if load {
				c00, c01 = c[(i+0)*ldc+j], c[(i+0)*ldc+j+1]
				c10, c11 = c[(i+1)*ldc+j], c[(i+1)*ldc+j+1]
				c20, c21 = c[(i+2)*ldc+j], c[(i+2)*ldc+j+1]
				c30, c31 = c[(i+3)*ldc+j], c[(i+3)*ldc+j+1]
				c40, c41 = c[(i+4)*ldc+j], c[(i+4)*ldc+j+1]
				c50, c51 = c[(i+5)*ldc+j], c[(i+5)*ldc+j+1]
				c60, c61 = c[(i+6)*ldc+j], c[(i+6)*ldc+j+1]
				c70, c71 = c[(i+7)*ldc+j], c[(i+7)*ldc+j+1]
			}
			bo := j
			for p := 0; p < pk; p++ {
				b0, b1 := b[bo], b[bo+1]
				ap := p
				av := a[(i+0)*lda+ap]
				c00 += av * b0
				c01 += av * b1
				av = a[(i+1)*lda+ap]
				c10 += av * b0
				c11 += av * b1
				av = a[(i+2)*lda+ap]
				c20 += av * b0
				c21 += av * b1
				av = a[(i+3)*lda+ap]
				c30 += av * b0
				c31 += av * b1
				av = a[(i+4)*lda+ap]
				c40 += av * b0
				c41 += av * b1
				av = a[(i+5)*lda+ap]
				c50 += av * b0
				c51 += av * b1
				av = a[(i+6)*lda+ap]
				c60 += av * b0
				c61 += av * b1
				av = a[(i+7)*lda+ap]
				c70 += av * b0
				c71 += av * b1
				bo += ldb
			}
			c[(i+0)*ldc+j], c[(i+0)*ldc+j+1] = c00, c01
			c[(i+1)*ldc+j], c[(i+1)*ldc+j+1] = c10, c11
			c[(i+2)*ldc+j], c[(i+2)*ldc+j+1] = c20, c21
			c[(i+3)*ldc+j], c[(i+3)*ldc+j+1] = c30, c31
			c[(i+4)*ldc+j], c[(i+4)*ldc+j+1] = c40, c41
			c[(i+5)*ldc+j], c[(i+5)*ldc+j+1] = c50, c51
			c[(i+6)*ldc+j], c[(i+6)*ldc+j+1] = c60, c61
			c[(i+7)*ldc+j], c[(i+7)*ldc+j+1] = c70, c71
		}
		if j < jn {
			panelRows(i, i+8, j, jn, pk, a, lda, b, ldb, c, ldc, load)
		}
	}
	if i < m {
		panelRows(i, m, 0, jn, pk, a, lda, b, ldb, c, ldc, load)
	}
}

// panelRows handles remainder regions row by row: 1x8 register tiles with a
// scalar tail. It doubles as the single-row fast path (m=1 single-request
// inference), where eight independent accumulators per B stream still beat
// the old axpy loop.
func panelRows(iLo, iHi, jLo, jHi, pk int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, load bool) {
	for i := iLo; i < iHi; i++ {
		ai := a[i*lda : i*lda+pk]
		j := jLo
		for ; j+8 <= jHi; j += 8 {
			var c0, c1, c2, c3, c4, c5, c6, c7 float64
			if load {
				r := c[i*ldc+j : i*ldc+j+8 : i*ldc+j+8]
				c0, c1, c2, c3 = r[0], r[1], r[2], r[3]
				c4, c5, c6, c7 = r[4], r[5], r[6], r[7]
			}
			bo := j
			for _, av := range ai {
				bp := b[bo : bo+8 : bo+8]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
				c4 += av * bp[4]
				c5 += av * bp[5]
				c6 += av * bp[6]
				c7 += av * bp[7]
				bo += ldb
			}
			r := c[i*ldc+j : i*ldc+j+8 : i*ldc+j+8]
			r[0], r[1], r[2], r[3] = c0, c1, c2, c3
			r[4], r[5], r[6], r[7] = c4, c5, c6, c7
		}
		for ; j < jHi; j++ {
			var s float64
			if load {
				s = c[i*ldc+j]
			}
			bo := j
			for _, av := range ai {
				s += av * b[bo]
				bo += ldb
			}
			c[i*ldc+j] = s
		}
	}
}
