package tensor

import (
	"math/rand"
	"testing"
)

// randomConvCase draws a randomized convolution: non-square inputs and
// kernels, odd strides, asymmetric padding, 1x1 kernels, batch 1..4.
func randomConvCase(rng *rand.Rand) (x, w, b *Tensor, s ConvSpec) {
	kh := []int{1, 2, 3, 5}[rng.Intn(4)]
	kw := []int{1, 2, 3, 5}[rng.Intn(4)]
	s = ConvSpec{
		InC:     rng.Intn(4) + 1,
		OutC:    rng.Intn(5) + 1,
		KH:      kh,
		KW:      kw,
		StrideH: rng.Intn(3) + 1, // 1, 2 or 3 — odd strides included
		StrideW: rng.Intn(3) + 1,
		PadH:    rng.Intn(3),
		PadW:    rng.Intn(3),
	}
	n := rng.Intn(4) + 1
	h := rng.Intn(8) + kh + 2 // keep outputs non-degenerate
	wdt := rng.Intn(8) + kw + 2
	x = New(n, s.InC, h, wdt)
	x.Randn(rng, 1)
	w = New(s.OutC, s.InC, s.KH, s.KW)
	w.Randn(rng, 1)
	b = New(s.OutC)
	b.Randn(rng, 1)
	return x, w, b, s
}

// TestGEMMForwardMatchesNaive pins the GEMM engine's forward pass against
// the naive oracle across randomized geometries (run under -race in CI).
func TestGEMMForwardMatchesNaive(t *testing.T) {
	defer SetEngine(SetEngine(EngineGEMM))
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		x, w, b, s := randomConvCase(rng)
		want := Conv2DNaive(x, w, b, s)
		got := Conv2D(x, w, b, s)
		if d := want.MaxAbsDiff(got); d > 1e-9 {
			t.Errorf("trial %d (%+v, in %v): forward differs by %g", trial, s, x.Shape, d)
		}
		// nil bias path.
		want = Conv2DNaive(x, w, nil, s)
		got = Conv2D(x, w, nil, s)
		if d := want.MaxAbsDiff(got); d > 1e-9 {
			t.Errorf("trial %d: nil-bias forward differs by %g", trial, d)
		}
	}
}

// TestGEMMBackwardMatchesNaive pins all three GEMM gradients (dx, dw, db)
// against the naive oracle across randomized geometries.
func TestGEMMBackwardMatchesNaive(t *testing.T) {
	defer SetEngine(SetEngine(EngineGEMM))
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		x, w, b, s := randomConvCase(rng)
		y := Conv2DNaive(x, w, b, s)
		dy := New(y.Shape...)
		dy.Randn(rng, 1)
		// Sparsify dy: ReLU-gated gradients are full of zeros, which
		// exercises the kernels' zero-skip paths.
		for i := range dy.Data {
			if rng.Intn(3) == 0 {
				dy.Data[i] = 0
			}
		}
		wdx, wdw, wdb := Conv2DBackwardNaive(x, w, dy, s)
		gdx, gdw, gdb := Conv2DBackward(x, w, dy, s)
		if d := wdx.MaxAbsDiff(gdx); d > 1e-9 {
			t.Errorf("trial %d (%+v): dx differs by %g", trial, s, d)
		}
		if d := wdw.MaxAbsDiff(gdw); d > 1e-9 {
			t.Errorf("trial %d (%+v): dw differs by %g", trial, s, d)
		}
		if d := wdb.MaxAbsDiff(gdb); d > 1e-9 {
			t.Errorf("trial %d (%+v): db differs by %g", trial, s, d)
		}
	}
}

// TestGEMMDeterministicAcrossThreadCounts: the engine's documented contract
// is that thread count only partitions independent work, so results are
// bit-identical for any -threads setting.
func TestGEMMDeterministicAcrossThreadCounts(t *testing.T) {
	defer SetEngine(SetEngine(EngineGEMM))
	rng := rand.New(rand.NewSource(13))
	x, w, b, s := randomConvCase(rng)
	y := Conv2D(x, w, b, s)
	dy := New(y.Shape...)
	dy.Randn(rng, 1)

	defer SetThreads(SetThreads(1))
	refOut := Conv2D(x, w, b, s)
	refDx, refDw, refDb := Conv2DBackward(x, w, dy, s)
	for _, threads := range []int{2, 3, 8} {
		SetThreads(threads)
		out := Conv2D(x, w, b, s)
		dx, dw, db := Conv2DBackward(x, w, dy, s)
		for i := range refOut.Data {
			if out.Data[i] != refOut.Data[i] {
				t.Fatalf("threads=%d: forward not bit-identical at %d", threads, i)
			}
		}
		for i := range refDx.Data {
			if dx.Data[i] != refDx.Data[i] {
				t.Fatalf("threads=%d: dx not bit-identical at %d", threads, i)
			}
		}
		for i := range refDw.Data {
			if dw.Data[i] != refDw.Data[i] {
				t.Fatalf("threads=%d: dw not bit-identical at %d", threads, i)
			}
		}
		for i := range refDb.Data {
			if db.Data[i] != refDb.Data[i] {
				t.Fatalf("threads=%d: db not bit-identical at %d", threads, i)
			}
		}
	}
}

// TestConvBackwardIntoAccumulates: dw/db are += targets (gradient
// accumulation lands directly in trainer buffers), dx is overwritten.
func TestConvBackwardIntoAccumulates(t *testing.T) {
	defer SetEngine(SetEngine(EngineGEMM))
	rng := rand.New(rand.NewSource(14))
	x, w, b, s := randomConvCase(rng)
	y := Conv2DNaive(x, w, b, s)
	dy := New(y.Shape...)
	dy.Randn(rng, 1)

	dx1, dw1, db1 := Conv2DBackward(x, w, dy, s)
	dx := New(x.Shape...)
	dx.Fill(99) // must be fully overwritten
	dw := New(w.Shape...)
	dw.Fill(1)
	db := New(s.OutC)
	db.Fill(2)
	Conv2DBackwardInto(dx, dw, db, x, w, dy, s)
	if d := dx.MaxAbsDiff(dx1); d > 1e-12 {
		t.Errorf("dx not overwritten cleanly (diff %g)", d)
	}
	for i := range dw.Data {
		if diff := dw.Data[i] - 1 - dw1.Data[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("dw[%d] did not accumulate: got %g want 1+%g", i, dw.Data[i], dw1.Data[i])
			break
		}
	}
	for i := range db.Data {
		if diff := db.Data[i] - 2 - db1.Data[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("db[%d] did not accumulate: got %g want 2+%g", i, db.Data[i], db1.Data[i])
		}
	}
}

// TestMatMulVariants checks the transposed GEMM helpers against a direct
// triple loop.
func TestMatMulVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m, k, n := 7, 13, 5
	a := New(m, k)
	a.Randn(rng, 1)
	b := New(k, n)
	b.Randn(rng, 1)
	ref := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			ref.Data[i*n+j] = s
		}
	}

	if d := MatMul(a, b).MaxAbsDiff(ref); d > 1e-12 {
		t.Errorf("MatMul differs by %g", d)
	}

	// AddMatMulNT: a [m,k] x (bT [n,k])^T == a x b.
	bT := New(n, k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bT.Data[j*k+p] = b.Data[p*n+j]
		}
	}
	got := New(m, n)
	AddMatMulNT(got, a, bT)
	if d := got.MaxAbsDiff(ref); d > 1e-12 {
		t.Errorf("AddMatMulNT differs by %g", d)
	}

	// AddMatMulTN: (aT [k,m])^T x b == a x b, and it must accumulate.
	aT := New(k, m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			aT.Data[p*m+i] = a.Data[i*k+p]
		}
	}
	got2 := New(m, n)
	AddMatMulTN(got2, aT, b)
	AddMatMulTN(got2, aT, b)
	for i := range got2.Data {
		if diff := got2.Data[i] - 2*ref.Data[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("AddMatMulTN did not accumulate at %d", i)
			break
		}
	}
}

// TestMatMulBlockedLarge crosses the kc/nc blocking boundaries so the
// panel loops are exercised, comparing against the unblocked reference.
func TestMatMulBlockedLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m, k, n := 3, kcBlock+37, ncBlock+41
	a := New(m, k)
	a.Randn(rng, 1)
	b := New(k, n)
	b.Randn(rng, 1)
	got := MatMul(a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j += 101 {
			var s float64
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			if d := got.Data[i*n+j] - s; d > 1e-9 || d < -1e-9 {
				t.Fatalf("blocked matmul wrong at (%d,%d): %g vs %g", i, j, got.Data[i*n+j], s)
			}
		}
	}
}

// TestParseEngine covers the flag-value round trip.
func TestParseEngine(t *testing.T) {
	for _, e := range []Engine{EngineNaive, EngineGEMM} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("cuda"); err == nil {
		t.Error("ParseEngine should reject unknown engines")
	}
}

// TestKernelSteadyStateAllocs is the allocation regression test: with
// preallocated outputs and a warm scratch arena, the GEMM kernels and
// MatMulInto perform zero heap allocations per step (single-threaded, so
// goroutine spawning doesn't enter the count).
func TestKernelSteadyStateAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	defer SetEngine(SetEngine(EngineGEMM))
	defer SetThreads(SetThreads(1))
	rng := rand.New(rand.NewSource(17))

	a := New(32, 64)
	a.Randn(rng, 1)
	b := New(64, 48)
	b.Randn(rng, 1)
	dst := New(32, 48)
	if n := testing.AllocsPerRun(20, func() { MatMulInto(dst, a, b) }); n != 0 {
		t.Errorf("MatMulInto allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { MatMul(a, b) }); n > 4 {
		t.Errorf("MatMul allocates %v times per call, want <= 4 (result tensor only)", n)
	}

	s := ConvSpec{InC: 8, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := New(4, 8, 12, 12)
	x.Randn(rng, 1)
	w := New(16, 8, 3, 3)
	w.Randn(rng, 1)
	bias := New(16)
	out := Conv2D(x, w, bias, s)
	dy := New(out.Shape...)
	dy.Randn(rng, 1)
	dx, dw, db := New(x.Shape...), New(w.Shape...), New(16)
	// Warm the scratch arena once, then demand zero steady-state allocs.
	Conv2DInto(out, x, w, bias, s)
	Conv2DBackwardInto(dx, dw, db, x, w, dy, s)
	if n := testing.AllocsPerRun(20, func() { Conv2DInto(out, x, w, bias, s) }); n != 0 {
		t.Errorf("Conv2DInto allocates %v times per call in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { Conv2DBackwardInto(dx, dw, db, x, w, dy, s) }); n != 0 {
		t.Errorf("Conv2DBackwardInto allocates %v times per call in steady state, want 0", n)
	}
}
