package tensor

import "fmt"

// ConvSpec describes a 2-D convolution's geometry.
type ConvSpec struct {
	InC, OutC  int
	KH, KW     int
	StrideH    int
	StrideW    int
	PadH, PadW int
}

// OutDims returns the output spatial extent for an input of h x w.
func (s ConvSpec) OutDims(h, w int) (oh, ow int) {
	return (h+2*s.PadH-s.KH)/s.StrideH + 1, (w+2*s.PadW-s.KW)/s.StrideW + 1
}

// Conv2D computes a 2-D convolution with the currently selected Engine.
// x: [N, InC, H, W], weight: [OutC, InC, KH, KW], bias: [OutC] (may be nil).
// Returns [N, OutC, OH, OW].
func Conv2D(x, weight, bias *Tensor, s ConvSpec) *Tensor {
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	out := New(x.Shape[0], s.OutC, oh, ow)
	Conv2DInto(out, x, weight, bias, s)
	return out
}

// Conv2DInto computes the convolution into a preallocated out tensor
// (overwriting it), dispatching on the current Engine. Reusing out across
// steps is what lets steady-state training run allocation-free.
func Conv2DInto(out, x, weight, bias *Tensor, s ConvSpec) {
	n := x.Shape[0]
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	if out.Shape[0] != n || out.Shape[1] != s.OutC || out.Shape[2] != oh || out.Shape[3] != ow {
		panic(fmt.Sprintf("tensor: conv out shape %v, want [%d %d %d %d]", out.Shape, n, s.OutC, oh, ow))
	}
	if CurrentEngine() == EngineNaive {
		conv2DNaiveInto(out, x, weight, bias, s)
		return
	}
	conv2DGEMM(out, x, weight, bias, s)
}

// Conv2DNaive is the direct 7-loop reference convolution — the oracle the
// GEMM engine is validated against.
func Conv2DNaive(x, weight, bias *Tensor, s ConvSpec) *Tensor {
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	out := New(x.Shape[0], s.OutC, oh, ow)
	conv2DNaiveInto(out, x, weight, bias, s)
	return out
}

func conv2DNaiveInto(out, x, weight, bias *Tensor, s ConvSpec) {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < s.OutC; oc++ {
			b := 0.0
			if bias != nil {
				b = bias.Data[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := b
					for ic := 0; ic < s.InC; ic++ {
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.StrideH + ky - s.PadH
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.StrideW + kx - s.PadW
								if ix < 0 || ix >= w {
									continue
								}
								sum += x.At4(ni, ic, iy, ix) *
									weight.Data[((oc*s.InC+ic)*s.KH+ky)*s.KW+kx]
							}
						}
					}
					out.Set4(ni, oc, oy, ox, sum)
				}
			}
		}
	}
}

// Conv2DBackward computes the gradients of a convolution with the currently
// selected Engine. Returns dx [N,InC,H,W], dw [OutC,InC,KH,KW], db [OutC].
func Conv2DBackward(x, weight, dy *Tensor, s ConvSpec) (dx, dw, db *Tensor) {
	dx = New(x.Shape...)
	dw = New(s.OutC, s.InC, s.KH, s.KW)
	db = New(s.OutC)
	Conv2DBackwardInto(dx, dw, db, x, weight, dy, s)
	return dx, dw, db
}

// Conv2DBackwardInto computes convolution gradients into preallocated
// tensors: dx is overwritten, while dwAcc and dbAcc are accumulated into
// (+=) — so parameter gradients can land directly in a trainer's gradient
// buffers without an intermediate tensor.
func Conv2DBackwardInto(dx, dwAcc, dbAcc, x, weight, dy *Tensor, s ConvSpec) {
	validateConvBackward(dx, dwAcc, dbAcc, x, weight, dy, s)
	if CurrentEngine() == EngineNaive {
		conv2DNaiveBackwardInto(dx, dwAcc, dbAcc, x, weight, dy, s)
		return
	}
	conv2DBackwardGEMM(dx, dwAcc, dbAcc, x, weight, dy, nil, s)
}

// Conv2DBackwardColInto is Conv2DBackwardInto reusing the im2col packing
// the forward pass retained via Conv2DFusedColInto (col must be the same
// buffer, still valid for the same x): the backward GEMMs consume it
// directly instead of re-lowering x — the step's second full pass over the
// input becomes a no-op. GEMM engine only; results are bit-identical to
// Conv2DBackwardInto.
func Conv2DBackwardColInto(dx, dwAcc, dbAcc *Tensor, col []float64, x, weight, dy *Tensor, s ConvSpec) {
	validateConvBackward(dx, dwAcc, dbAcc, x, weight, dy, s)
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	if want := x.Shape[0] * s.InC * s.KH * s.KW * oh * ow; len(col) != want {
		panic(fmt.Sprintf("tensor: conv backward col buffer %d, want %d", len(col), want))
	}
	conv2DBackwardGEMM(dx, dwAcc, dbAcc, x, weight, dy, col, s)
}

// validateConvBackward panics with a readable message on gradient-buffer
// shape mismatches.
func validateConvBackward(dx, dwAcc, dbAcc, x, weight, dy *Tensor, s ConvSpec) {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	if dy.Shape[0] != n || dy.Shape[1] != s.OutC || dy.Shape[2] != oh || dy.Shape[3] != ow {
		panic(fmt.Sprintf("tensor: dy shape %v mismatches conv output [%d %d %d %d]",
			dy.Shape, n, s.OutC, oh, ow))
	}
	if !dx.SameShape(x) {
		panic(fmt.Sprintf("tensor: dx shape %v, want %v", dx.Shape, x.Shape))
	}
	if !dwAcc.SameShape(weight) {
		panic(fmt.Sprintf("tensor: dw shape %v, want %v", dwAcc.Shape, weight.Shape))
	}
	if len(dbAcc.Shape) != 1 || dbAcc.Shape[0] != s.OutC {
		panic(fmt.Sprintf("tensor: db shape %v, want [%d]", dbAcc.Shape, s.OutC))
	}
}

// Conv2DBackwardNaive is the direct reference backward pass (fresh output
// tensors, scatter loops) — the oracle for the GEMM gradients.
func Conv2DBackwardNaive(x, weight, dy *Tensor, s ConvSpec) (dx, dw, db *Tensor) {
	dx = New(x.Shape...)
	dw = New(s.OutC, s.InC, s.KH, s.KW)
	db = New(s.OutC)
	conv2DNaiveBackwardInto(dx, dw, db, x, weight, dy, s)
	return dx, dw, db
}

func conv2DNaiveBackwardInto(dx, dwAcc, dbAcc, x, weight, dy *Tensor, s ConvSpec) {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	dx.Zero()
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < s.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dy.At4(ni, oc, oy, ox)
					if g == 0 {
						continue
					}
					dbAcc.Data[oc] += g
					for ic := 0; ic < s.InC; ic++ {
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.StrideH + ky - s.PadH
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.StrideW + kx - s.PadW
								if ix < 0 || ix >= w {
									continue
								}
								wi := ((oc*s.InC+ic)*s.KH+ky)*s.KW + kx
								dwAcc.Data[wi] += g * x.At4(ni, ic, iy, ix)
								dx.Data[dx.idx4(ni, ic, iy, ix)] += g * weight.Data[wi]
							}
						}
					}
				}
			}
		}
	}
}

// Im2col rearranges convolution input patches into a matrix of shape
// [N*OH*OW, InC*KH*KW] — the GEMM formulation WaveCore executes (Tab. 1).
func Im2col(x *Tensor, s ConvSpec) *Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	k := s.InC * s.KH * s.KW
	out := New(n*oh*ow, k)
	row := 0
	for ni := 0; ni < n; ni++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				col := 0
				for ic := 0; ic < s.InC; ic++ {
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.StrideH + ky - s.PadH
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.StrideW + kx - s.PadW
							v := 0.0
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								v = x.At4(ni, ic, iy, ix)
							}
							out.Data[row*k+col] = v
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// MatMul computes C = A[m,k] x B[k,n], allocating the result. The product
// runs on the blocked parallel GEMM core; use MatMulInto to reuse storage.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := matMulDims(a, b)
	return MatMulInto(New(m, n), a, b)
}

// Conv2DIm2col computes the same convolution as Conv2D via im2col + GEMM,
// mirroring the accelerator's execution. Used to validate that the GEMM
// formulation is exact.
func Conv2DIm2col(x, weight, bias *Tensor, s ConvSpec) *Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	a := Im2col(x, s) // [N*OH*OW, K]
	// B = weight reshaped to [K, OutC] (transposed from [OutC, K]).
	k := s.InC * s.KH * s.KW
	b := New(k, s.OutC)
	for oc := 0; oc < s.OutC; oc++ {
		for p := 0; p < k; p++ {
			b.Data[p*s.OutC+oc] = weight.Data[oc*k+p]
		}
	}
	cm := MatMul(a, b) // [N*OH*OW, OutC]
	out := New(n, s.OutC, oh, ow)
	row := 0
	for ni := 0; ni < n; ni++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for oc := 0; oc < s.OutC; oc++ {
					v := cm.Data[row*s.OutC+oc]
					if bias != nil {
						v += bias.Data[oc]
					}
					out.Set4(ni, oc, oy, ox, v)
				}
				row++
			}
		}
	}
	return out
}
