package tensor

import "fmt"

// ConvSpec describes a 2-D convolution's geometry.
type ConvSpec struct {
	InC, OutC  int
	KH, KW     int
	StrideH    int
	StrideW    int
	PadH, PadW int
}

// OutDims returns the output spatial extent for an input of h x w.
func (s ConvSpec) OutDims(h, w int) (oh, ow int) {
	return (h+2*s.PadH-s.KH)/s.StrideH + 1, (w+2*s.PadW-s.KW)/s.StrideW + 1
}

// Conv2D computes a direct 2-D convolution.
// x: [N, InC, H, W], weight: [OutC, InC, KH, KW], bias: [OutC] (may be nil).
// Returns [N, OutC, OH, OW].
func Conv2D(x, weight, bias *Tensor, s ConvSpec) *Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	out := New(n, s.OutC, oh, ow)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < s.OutC; oc++ {
			b := 0.0
			if bias != nil {
				b = bias.Data[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := b
					for ic := 0; ic < s.InC; ic++ {
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.StrideH + ky - s.PadH
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.StrideW + kx - s.PadW
								if ix < 0 || ix >= w {
									continue
								}
								sum += x.At4(ni, ic, iy, ix) *
									weight.Data[((oc*s.InC+ic)*s.KH+ky)*s.KW+kx]
							}
						}
					}
					out.Set4(ni, oc, oy, ox, sum)
				}
			}
		}
	}
	return out
}

// Conv2DBackward computes the gradients of a direct convolution.
// Returns dx [N,InC,H,W], dw [OutC,InC,KH,KW], db [OutC].
func Conv2DBackward(x, weight, dy *Tensor, s ConvSpec) (dx, dw, db *Tensor) {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	if dy.Shape[0] != n || dy.Shape[1] != s.OutC || dy.Shape[2] != oh || dy.Shape[3] != ow {
		panic(fmt.Sprintf("tensor: dy shape %v mismatches conv output [%d %d %d %d]",
			dy.Shape, n, s.OutC, oh, ow))
	}
	dx = New(n, s.InC, h, w)
	dw = New(s.OutC, s.InC, s.KH, s.KW)
	db = New(s.OutC)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < s.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dy.At4(ni, oc, oy, ox)
					if g == 0 {
						continue
					}
					db.Data[oc] += g
					for ic := 0; ic < s.InC; ic++ {
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.StrideH + ky - s.PadH
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.StrideW + kx - s.PadW
								if ix < 0 || ix >= w {
									continue
								}
								wi := ((oc*s.InC+ic)*s.KH+ky)*s.KW + kx
								dw.Data[wi] += g * x.At4(ni, ic, iy, ix)
								dx.Data[dx.idx4(ni, ic, iy, ix)] += g * weight.Data[wi]
							}
						}
					}
				}
			}
		}
	}
	return dx, dw, db
}

// Im2col rearranges convolution input patches into a matrix of shape
// [N*OH*OW, InC*KH*KW] — the GEMM formulation WaveCore executes (Tab. 1).
func Im2col(x *Tensor, s ConvSpec) *Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	k := s.InC * s.KH * s.KW
	out := New(n*oh*ow, k)
	row := 0
	for ni := 0; ni < n; ni++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				col := 0
				for ic := 0; ic < s.InC; ic++ {
					for ky := 0; ky < s.KH; ky++ {
						iy := oy*s.StrideH + ky - s.PadH
						for kx := 0; kx < s.KW; kx++ {
							ix := ox*s.StrideW + kx - s.PadW
							v := 0.0
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								v = x.At4(ni, ic, iy, ix)
							}
							out.Data[row*k+col] = v
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// MatMul computes C = A[m,k] x B[k,n].
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		cr := c.Data[i*n : (i+1)*n]
		for p, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Data[p*n : (p+1)*n]
			for j, bv := range br {
				cr[j] += av * bv
			}
		}
	}
	return c
}

// Conv2DIm2col computes the same convolution as Conv2D via im2col + GEMM,
// mirroring the accelerator's execution. Used to validate that the GEMM
// formulation is exact.
func Conv2DIm2col(x, weight, bias *Tensor, s ConvSpec) *Tensor {
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := s.OutDims(h, w)
	a := Im2col(x, s) // [N*OH*OW, K]
	// B = weight reshaped to [K, OutC] (transposed from [OutC, K]).
	k := s.InC * s.KH * s.KW
	b := New(k, s.OutC)
	for oc := 0; oc < s.OutC; oc++ {
		for p := 0; p < k; p++ {
			b.Data[p*s.OutC+oc] = weight.Data[oc*k+p]
		}
	}
	cm := MatMul(a, b) // [N*OH*OW, OutC]
	out := New(n, s.OutC, oh, ow)
	row := 0
	for ni := 0; ni < n; ni++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for oc := 0; oc < s.OutC; oc++ {
					v := cm.Data[row*s.OutC+oc]
					if bias != nil {
						v += bias.Data[oc]
					}
					out.Set4(ni, oc, oy, ox, v)
				}
				row++
			}
		}
	}
	return out
}
