package tensor

import "fmt"

// Blocked GEMM drivers. All variants work on row-major slices with explicit
// leading dimensions and sum every output element in a fixed ascending order
// over the shared dimension — so results are bit-identical no matter how
// callers partition the work across goroutines. The inner loops are the
// register-tiled micro-kernels in microkernel.go.
//
// Default blocking: one (kcBlock x ncBlock) panel of B is 1 MiB
// (256*512*8 B), sized to stay L2-resident across the whole i loop while
// rows of A and C stream past it. The live values come from KernelConfig
// (settable via SetBlocking / the autotuner); these consts are its defaults.
const (
	kcBlock = 256 // rows of B (depth) per panel
	ncBlock = 512 // columns of B per panel
)

// gemmBlocked computes C[m,n] = A[m,k] * B[k,n] (overwrite=true) or
// C += A * B (overwrite=false) by panel blocking B and dispatching each
// panel to the configured register micro-kernel. In overwrite mode the
// first depth panel stores its register accumulators directly — the same
// ascending-depth chain the old zero-init + accumulate produced, without
// the prefill pass — and later panels continue the chain from memory.
func gemmBlocked(m, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, overwrite bool) {
	cfg := kernelCfg.Load()
	if k == 0 {
		if overwrite {
			for i := 0; i < m; i++ {
				zeroFloats(c[i*ldc : i*ldc+n])
			}
		}
		return
	}
	for jj := 0; jj < n; jj += cfg.NC {
		jn := min(n-jj, cfg.NC)
		for pp := 0; pp < k; pp += cfg.KC {
			pk := min(k-pp, cfg.KC)
			runPanel(cfg.MR, m, pk, jn, a[pp:], lda, b[pp*ldb+jj:], ldb, c[jj:], ldc, !overwrite || pp > 0)
		}
	}
}

// gemmNTAcc computes C[m,n] += A[m,k] * B[n,k]^T.
// Each output element is a dot of two contiguous rows. On AVX2 hosts four
// dots run per fmaNT4 call (vectorized over k with a fixed 4-lane
// reduction — the split depends only on k, never on threads or blocking).
// The portable path is a 2x4 register tile: four B rows stay L1-resident
// across the i loop while two A rows feed eight independent scalar
// accumulator chains in ascending k order. Tiling regroups whole dots,
// never terms, so the portable path is bit-identical to the untiled loop.
func gemmNTAcc(m, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if simdOn.Load() && k > 0 {
		j := 0
		for ; j+4 <= n; j += 4 {
			for i := 0; i < m; i++ {
				fmaNT4(&a[i*lda], &b[j*ldb], ldb, k, &c[i*ldc+j])
			}
		}
		for ; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			for i := 0; i < m; i++ {
				ai := a[i*lda : i*lda+k]
				var s float64
				for p, av := range ai {
					s += av * bj[p]
				}
				c[i*ldc+j] += s
			}
		}
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := b[(j+0)*ldb : (j+0)*ldb+k]
		b1 := b[(j+1)*ldb : (j+1)*ldb+k]
		b2 := b[(j+2)*ldb : (j+2)*ldb+k]
		b3 := b[(j+3)*ldb : (j+3)*ldb+k]
		i := 0
		for ; i+2 <= m; i += 2 {
			a0 := a[(i+0)*lda : (i+0)*lda+k]
			a1 := a[(i+1)*lda : (i+1)*lda+k]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for p, av := range a0 {
				bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
				s00 += av * bv0
				s01 += av * bv1
				s02 += av * bv2
				s03 += av * bv3
				av = a1[p]
				s10 += av * bv0
				s11 += av * bv1
				s12 += av * bv2
				s13 += av * bv3
			}
			r0 := c[(i+0)*ldc+j : (i+0)*ldc+j+4 : (i+0)*ldc+j+4]
			r1 := c[(i+1)*ldc+j : (i+1)*ldc+j+4 : (i+1)*ldc+j+4]
			r0[0] += s00
			r0[1] += s01
			r0[2] += s02
			r0[3] += s03
			r1[0] += s10
			r1[1] += s11
			r1[2] += s12
			r1[3] += s13
		}
		for ; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			var s0, s1, s2, s3 float64
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			ci := c[i*ldc+j : i*ldc+j+4]
			ci[0] += s0
			ci[1] += s1
			ci[2] += s2
			ci[3] += s3
		}
	}
	for ; j < n; j++ {
		bj := b[j*ldb : j*ldb+k]
		for i := 0; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			var s float64
			for p, av := range ai {
				s += av * bj[p]
			}
			c[i*ldc+j] += s
		}
	}
}

// gemmTNAcc computes C[m,n] += A[k,m]^T * B[k,n] for the row range
// [iLo,iHi) of C. On AVX2 hosts a 4-row register tile (fmaPanelT4) loads a
// C block into accumulators first, then adds terms in ascending p — the
// identical per-element chain the term-by-term memory accumulation
// produces, held in registers. The portable path processes output rows in
// tiles of eight so a tile of C stays L1-resident across the whole (outer)
// p loop; within a tile, rows of A and B are contiguous. Restricting the i
// range lets callers partition C's rows across goroutines, and every
// element accumulates p in ascending order regardless of the tiling —
// bit-identical for any thread count.
func gemmTNAcc(iLo, iHi, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if simdOn.Load() && k > 0 && n > 0 && iLo < iHi {
		simdPanelT(iLo, iHi, k, n, a, lda, b, ldb, c, ldc)
		return
	}
	for ii := iLo; ii < iHi; ii += 8 {
		im := ii + 8
		if im > iHi {
			im = iHi
		}
		for p := 0; p < k; p++ {
			ap := a[p*lda+ii : p*lda+im]
			bp := b[p*ldb : p*ldb+n]
			for t, av := range ap {
				if av == 0 {
					continue
				}
				ci := c[(ii+t)*ldc : (ii+t)*ldc+n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	}
}

// matMulDims validates a 2-D matrix product and returns (m, k, n).
func matMulDims(a, b *Tensor) (int, int, int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v x %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

// MatMulInto computes dst = a[m,k] x b[k,n] into a preallocated dst[m,n],
// reusing dst's storage (zero heap allocations in steady state). Row panels
// of dst are computed in parallel across Threads() goroutines.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b)
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul dst %v for %v x %v", dst.Shape, a.Shape, b.Shape))
	}
	if Threads() <= 1 || m == 1 {
		gemmBlocked(m, k, n, a.Data, k, b.Data, n, dst.Data, n, true)
		return dst
	}
	parallelFor(m, func(lo, hi int) {
		gemmBlocked(hi-lo, k, n, a.Data[lo*k:], k, b.Data, n, dst.Data[lo*n:], n, true)
	})
	return dst
}

// AddMatMulNT accumulates dst[m,n] += a[m,k] x b[n,k]^T.
func AddMatMulNT(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if len(a.Shape) != 2 || len(b.Shape) != 2 || b.Shape[1] != k ||
		len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulNT shapes %v x %v^T -> %v", a.Shape, b.Shape, dst.Shape))
	}
	if Threads() <= 1 || m == 1 {
		gemmNTAcc(m, k, n, a.Data, k, b.Data, k, dst.Data, n)
		return
	}
	parallelFor(m, func(lo, hi int) {
		gemmNTAcc(hi-lo, k, n, a.Data[lo*k:], k, b.Data, k, dst.Data[lo*n:], n)
	})
}

// AddMatMulTN accumulates dst[m,n] += a[k,m]^T x b[k,n].
func AddMatMulTN(dst, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if len(a.Shape) != 2 || len(b.Shape) != 2 || b.Shape[0] != k ||
		len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTN shapes %v^T x %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	if Threads() <= 1 || m == 1 {
		gemmTNAcc(0, m, k, n, a.Data, m, b.Data, n, dst.Data, n)
		return
	}
	parallelFor(m, func(lo, hi int) {
		gemmTNAcc(lo, hi, k, n, a.Data, m, b.Data, n, dst.Data, n)
	})
}
