package tensor

import "fmt"

// Blocked GEMM kernels. All three variants accumulate (C += ...) over
// row-major slices with explicit leading dimensions, and all of them sum
// every output element in a fixed ascending order over the shared dimension
// — so results are bit-identical no matter how callers partition the work
// across goroutines.
//
// Blocking constants: one (kcBlock x ncBlock) panel of B is 1 MiB
// (256*512*8 B), sized to stay L2-resident across the whole i loop while
// rows of A and C stream past it.
const (
	kcBlock = 256 // rows of B (depth) per panel
	ncBlock = 512 // columns of B per panel
)

// gemmAcc computes C[m,n] += A[m,k] * B[k,n].
// lda/ldb/ldc are leading dimensions (row strides) of the raw slices.
// The inner loop is an axpy over a contiguous row of B and C, which the
// compiler keeps bounds-check free; zero elements of A (common for
// ReLU-gated gradients) skip their whole row of work.
func gemmAcc(m, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for jj := 0; jj < n; jj += ncBlock {
		jn := n - jj
		if jn > ncBlock {
			jn = ncBlock
		}
		for pp := 0; pp < k; pp += kcBlock {
			pk := k - pp
			if pk > kcBlock {
				pk = kcBlock
			}
			for i := 0; i < m; i++ {
				ci := c[i*ldc+jj : i*ldc+jj+jn]
				ai := a[i*lda+pp : i*lda+pp+pk]
				for p, av := range ai {
					if av == 0 {
						continue
					}
					bp := b[(pp+p)*ldb+jj : (pp+p)*ldb+jj+jn]
					for j, bv := range bp {
						ci[j] += av * bv
					}
				}
			}
		}
	}
}

// gemmNTAcc computes C[m,n] += A[m,k] * B[n,k]^T.
// Each output element is a dot product of two contiguous rows, summed in
// ascending k order. Columns are processed in tiles of four B rows that
// stay L1-resident across the whole i loop (one pass over A computes four
// dots), cutting the B re-streaming that otherwise dominates the weight-
// gradient GEMM; the tiling regroups whole dots, so every element's value
// is bit-identical to the untiled loop.
func gemmNTAcc(m, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		b0 := b[j*ldb : j*ldb+k]
		b1 := b[(j+1)*ldb : (j+1)*ldb+k]
		b2 := b[(j+2)*ldb : (j+2)*ldb+k]
		b3 := b[(j+3)*ldb : (j+3)*ldb+k]
		for i := 0; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			var s0, s1, s2, s3 float64
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			ci := c[i*ldc+j : i*ldc+j+4]
			ci[0] += s0
			ci[1] += s1
			ci[2] += s2
			ci[3] += s3
		}
	}
	for ; j < n; j++ {
		bj := b[j*ldb : j*ldb+k]
		for i := 0; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			var s float64
			for p, av := range ai {
				s += av * bj[p]
			}
			c[i*ldc+j] += s
		}
	}
}

// gemmTNAcc computes C[m,n] += A[k,m]^T * B[k,n] for the row range
// [iLo,iHi) of C. Output rows are processed in tiles of eight so a tile of
// C stays L1-resident across the whole (outer) p loop instead of the full
// C row range being re-streamed once per p; within a tile, rows of A and B
// are contiguous. Restricting the i range lets callers partition C's rows
// across goroutines, and every element accumulates p in ascending order
// regardless of the tiling — bit-identical for any thread count.
func gemmTNAcc(iLo, iHi, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for ii := iLo; ii < iHi; ii += 8 {
		im := ii + 8
		if im > iHi {
			im = iHi
		}
		for p := 0; p < k; p++ {
			ap := a[p*lda+ii : p*lda+im]
			bp := b[p*ldb : p*ldb+n]
			for t, av := range ap {
				if av == 0 {
					continue
				}
				ci := c[(ii+t)*ldc : (ii+t)*ldc+n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	}
}

// matMulDims validates a 2-D matrix product and returns (m, k, n).
func matMulDims(a, b *Tensor) (int, int, int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v x %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

// MatMulInto computes dst = a[m,k] x b[k,n] into a preallocated dst[m,n],
// reusing dst's storage (zero heap allocations in steady state). Row panels
// of dst are computed in parallel across Threads() goroutines.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b)
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul dst %v for %v x %v", dst.Shape, a.Shape, b.Shape))
	}
	if Threads() <= 1 || m == 1 {
		zeroFloats(dst.Data)
		gemmAcc(m, k, n, a.Data, k, b.Data, n, dst.Data, n)
		return dst
	}
	parallelFor(m, func(lo, hi int) {
		rows := dst.Data[lo*n : hi*n]
		zeroFloats(rows)
		gemmAcc(hi-lo, k, n, a.Data[lo*k:], k, b.Data, n, rows, n)
	})
	return dst
}

// AddMatMulNT accumulates dst[m,n] += a[m,k] x b[n,k]^T.
func AddMatMulNT(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if len(a.Shape) != 2 || len(b.Shape) != 2 || b.Shape[1] != k ||
		len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulNT shapes %v x %v^T -> %v", a.Shape, b.Shape, dst.Shape))
	}
	if Threads() <= 1 || m == 1 {
		gemmNTAcc(m, k, n, a.Data, k, b.Data, k, dst.Data, n)
		return
	}
	parallelFor(m, func(lo, hi int) {
		gemmNTAcc(hi-lo, k, n, a.Data[lo*k:], k, b.Data, k, dst.Data[lo*n:], n)
	})
}

// AddMatMulTN accumulates dst[m,n] += a[k,m]^T x b[k,n].
func AddMatMulTN(dst, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if len(a.Shape) != 2 || len(b.Shape) != 2 || b.Shape[0] != k ||
		len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTN shapes %v^T x %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	if Threads() <= 1 || m == 1 {
		gemmTNAcc(0, m, k, n, a.Data, m, b.Data, n, dst.Data, n)
		return
	}
	parallelFor(m, func(lo, hi int) {
		gemmTNAcc(lo, hi, k, n, a.Data, m, b.Data, n, dst.Data, n)
	})
}
