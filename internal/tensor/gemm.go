package tensor

import "fmt"

// Blocked GEMM kernels. All three variants accumulate (C += ...) over
// row-major slices with explicit leading dimensions, and all of them sum
// every output element in a fixed ascending order over the shared dimension
// — so results are bit-identical no matter how callers partition the work
// across goroutines.
//
// Blocking constants: one (kcBlock x ncBlock) panel of B is 1 MiB
// (256*512*8 B), sized to stay L2-resident across the whole i loop while
// rows of A and C stream past it.
const (
	kcBlock = 256 // rows of B (depth) per panel
	ncBlock = 512 // columns of B per panel
)

// gemmAcc computes C[m,n] += A[m,k] * B[k,n].
// lda/ldb/ldc are leading dimensions (row strides) of the raw slices.
// The inner loop is an axpy over a contiguous row of B and C, which the
// compiler keeps bounds-check free; zero elements of A (common for
// ReLU-gated gradients) skip their whole row of work.
func gemmAcc(m, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for jj := 0; jj < n; jj += ncBlock {
		jn := n - jj
		if jn > ncBlock {
			jn = ncBlock
		}
		for pp := 0; pp < k; pp += kcBlock {
			pk := k - pp
			if pk > kcBlock {
				pk = kcBlock
			}
			for i := 0; i < m; i++ {
				ci := c[i*ldc+jj : i*ldc+jj+jn]
				ai := a[i*lda+pp : i*lda+pp+pk]
				for p, av := range ai {
					if av == 0 {
						continue
					}
					bp := b[(pp+p)*ldb+jj : (pp+p)*ldb+jj+jn]
					for j, bv := range bp {
						ci[j] += av * bv
					}
				}
			}
		}
	}
}

// gemmNTAcc computes C[m,n] += A[m,k] * B[n,k]^T.
// Each output element is a dot product of two contiguous rows, summed in
// ascending k order.
func gemmNTAcc(m, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			var s float64
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] += s
		}
	}
}

// gemmTNAcc computes C[m,n] += A[k,m]^T * B[k,n] for the row range
// [iLo,iHi) of C. The p loop is outermost (rows of A and B are contiguous);
// restricting the i range lets callers partition C's rows across goroutines
// while every element still accumulates p in ascending order.
func gemmTNAcc(iLo, iHi, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for p := 0; p < k; p++ {
		ap := a[p*lda : p*lda+iHi]
		bp := b[p*ldb : p*ldb+n]
		for i := iLo; i < iHi; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			ci := c[i*ldc : i*ldc+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// matMulDims validates a 2-D matrix product and returns (m, k, n).
func matMulDims(a, b *Tensor) (int, int, int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v x %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

// MatMulInto computes dst = a[m,k] x b[k,n] into a preallocated dst[m,n],
// reusing dst's storage (zero heap allocations in steady state). Row panels
// of dst are computed in parallel across Threads() goroutines.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b)
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul dst %v for %v x %v", dst.Shape, a.Shape, b.Shape))
	}
	if Threads() <= 1 || m == 1 {
		zeroFloats(dst.Data)
		gemmAcc(m, k, n, a.Data, k, b.Data, n, dst.Data, n)
		return dst
	}
	parallelFor(m, func(lo, hi int) {
		rows := dst.Data[lo*n : hi*n]
		zeroFloats(rows)
		gemmAcc(hi-lo, k, n, a.Data[lo*k:], k, b.Data, n, rows, n)
	})
	return dst
}

// AddMatMulNT accumulates dst[m,n] += a[m,k] x b[n,k]^T.
func AddMatMulNT(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if len(a.Shape) != 2 || len(b.Shape) != 2 || b.Shape[1] != k ||
		len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulNT shapes %v x %v^T -> %v", a.Shape, b.Shape, dst.Shape))
	}
	if Threads() <= 1 || m == 1 {
		gemmNTAcc(m, k, n, a.Data, k, b.Data, k, dst.Data, n)
		return
	}
	parallelFor(m, func(lo, hi int) {
		gemmNTAcc(hi-lo, k, n, a.Data[lo*k:], k, b.Data, k, dst.Data[lo*n:], n)
	})
}

// AddMatMulTN accumulates dst[m,n] += a[k,m]^T x b[k,n].
func AddMatMulTN(dst, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if len(a.Shape) != 2 || len(b.Shape) != 2 || b.Shape[0] != k ||
		len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTN shapes %v^T x %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	if Threads() <= 1 || m == 1 {
		gemmTNAcc(0, m, k, n, a.Data, m, b.Data, n, dst.Data, n)
		return
	}
	parallelFor(m, func(lo, hi int) {
		gemmTNAcc(lo, hi, k, n, a.Data, m, b.Data, n, dst.Data, n)
	})
}
