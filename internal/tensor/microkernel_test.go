package tensor

import (
	"math/rand"
	"testing"

	"repro/internal/f16"
)

// --- naive oracles ---------------------------------------------------------
//
// Plain per-element loops accumulating depth in ascending order. The Go
// compiler never contracts mul+add into FMA, so with the SIMD kernels
// disabled the micro-kernels must reproduce these oracles bit-for-bit;
// with SIMD (explicit FMA, one rounding per term) they must agree within a
// tight relative tolerance.

func naiveMM(m, k, n int, a, b []float64) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func naiveNTAcc(m, k, n int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[j*k+p]
			}
			c[i*n+j] += s
		}
	}
}

// naiveTNAcc continues each element's chain from the stored c value (the
// TN kernels are pure accumulators: c is loaded first, then terms add in
// ascending p — a different association than dot-then-add).
func naiveTNAcc(m, k, n int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c[i*n+j]
			for p := 0; p < k; p++ {
				s += a[p*m+i] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// naiveMMAcc is the accumulate-mode forward oracle: like naiveTNAcc, the
// chain starts from the existing c value.
func naiveMMAcc(m, k, n int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c[i*n+j]
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// fuzzSizes is the remainder-shape sweep: every size class the panel and
// tile loops can leave as a tail — below, at, and just past the 4/8-wide
// SIMD tiles and the 2/4/8-row blocks — plus odd primes that never divide
// evenly into any block size.
var fuzzSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
	19, 23, 29, 31, 37, 53}

func randSize(rng *rand.Rand) int { return fuzzSizes[rng.Intn(len(fuzzSizes))] }

func randFill(rng *rand.Rand, s []float64) {
	for i := range s {
		s[i] = rng.NormFloat64()
	}
}

// stressConfigs are deliberately tiny panel blockings that force every
// remainder path (mask tails, 1-wide panels, single-depth panels) across
// all implemented micro-tile shapes.
func stressConfigs() []KernelConfig {
	var out []KernelConfig
	for _, kc := range []int{1, 3, 8, 256} {
		for _, nc := range []int{1, 5, 8, 512} {
			for _, sh := range microShapes {
				out = append(out, KernelConfig{KC: kc, NC: nc, MR: sh.mr, NR: sh.nr})
			}
		}
	}
	return out
}

// maxDiff returns the largest |x-y| over the slices.
func maxDiff(x, y []float64) float64 {
	var d float64
	for i := range x {
		if e := abs(x[i] - y[i]); e > d {
			d = e
		}
	}
	return d
}

// forEachSIMDMode runs f once per available kernel family. tol is 0 for the
// portable kernels (bit-exact vs the oracle) and 1e-9 under SIMD (FMA
// rounds once per term, so results differ from the oracle at ulp level).
func forEachSIMDMode(t *testing.T, f func(t *testing.T, tol float64)) {
	t.Run("portable", func(t *testing.T) {
		prev := SetSIMD(false)
		defer SetSIMD(prev)
		f(t, 0)
	})
	if SIMDAvailable() {
		t.Run("simd", func(t *testing.T) {
			prev := SetSIMD(true)
			defer SetSIMD(prev)
			f(t, 1e-9)
		})
	}
}

// TestMicroKernelFuzzGEMM sweeps randomized remainder shapes and stress
// blockings through the blocked forward GEMM (overwrite and accumulate
// modes) against the naive oracle.
func TestMicroKernelFuzzGEMM(t *testing.T) {
	cfgs := stressConfigs()
	forEachSIMDMode(t, func(t *testing.T, tol float64) {
		defer func(c KernelConfig) { kernelCfg.Store(&c) }(CurrentKernelConfig())
		rng := rand.New(rand.NewSource(101))
		for trial := 0; trial < 300; trial++ {
			m, k, n := randSize(rng), randSize(rng), randSize(rng)
			cfg := cfgs[rng.Intn(len(cfgs))]
			kernelCfg.Store(&cfg)
			a := make([]float64, m*k)
			b := make([]float64, k*n)
			randFill(rng, a)
			randFill(rng, b)
			want := naiveMM(m, k, n, a, b)

			got := make([]float64, m*n)
			randFill(rng, got) // overwrite mode must not read stale c
			gemmBlocked(m, k, n, a, k, b, n, got, n, true)
			if d := maxDiff(want, got); d > tol {
				t.Fatalf("trial %d (%dx%dx%d, cfg %s): overwrite differs by %g", trial, m, k, n, cfg, d)
			}

			// Accumulate mode continues an existing c.
			acc := make([]float64, m*n)
			randFill(rng, acc)
			want = append(want[:0], acc...)
			naiveMMAcc(m, k, n, a, b, want)
			gemmBlocked(m, k, n, a, k, b, n, acc, n, false)
			if d := maxDiff(want, acc); d > tol {
				t.Fatalf("trial %d (%dx%dx%d, cfg %s): accumulate differs by %g", trial, m, k, n, cfg, d)
			}
		}
	})
}

// TestMicroKernelFuzzNTTN sweeps the backward kernels (A·Bᵀ accumulate and
// Aᵀ·B accumulate) against their oracles across remainder shapes.
func TestMicroKernelFuzzNTTN(t *testing.T) {
	forEachSIMDMode(t, func(t *testing.T, tol float64) {
		rng := rand.New(rand.NewSource(102))
		for trial := 0; trial < 300; trial++ {
			m, k, n := randSize(rng), randSize(rng), randSize(rng)
			a := make([]float64, m*k)
			b := make([]float64, n*k)
			c := make([]float64, m*n)
			randFill(rng, a)
			randFill(rng, b)
			randFill(rng, c)
			want := append([]float64(nil), c...)
			naiveNTAcc(m, k, n, a, b, want)
			gemmNTAcc(m, k, n, a, k, b, k, c, n)
			if d := maxDiff(want, c); d > tol {
				t.Fatalf("trial %d (%dx%dx%d): NT differs by %g", trial, m, k, n, d)
			}

			at := make([]float64, k*m)
			bt := make([]float64, k*n)
			ct := make([]float64, m*n)
			randFill(rng, at)
			randFill(rng, bt)
			randFill(rng, ct)
			wantT := append([]float64(nil), ct...)
			naiveTNAcc(m, k, n, at, bt, wantT)
			// Split the row range to exercise partitioned entry points.
			mid := rng.Intn(m + 1)
			gemmTNAcc(0, mid, k, n, at, m, bt, n, ct, n)
			gemmTNAcc(mid, m, k, n, at, m, bt, n, ct, n)
			if d := maxDiff(wantT, ct); d > tol {
				t.Fatalf("trial %d (%dx%dx%d): TN differs by %g", trial, m, k, n, d)
			}
		}
	})
}

// TestMicroKernelFuzzFused sweeps the fused bias+ReLU epilogue path
// (LinearInto lowers to gemmFused) against a naive linear oracle.
func TestMicroKernelFuzzFused(t *testing.T) {
	cfgs := stressConfigs()
	forEachSIMDMode(t, func(t *testing.T, tol float64) {
		defer func(c KernelConfig) { kernelCfg.Store(&c) }(CurrentKernelConfig())
		defer SetThreads(SetThreads(1))
		rng := rand.New(rand.NewSource(103))
		for trial := 0; trial < 200; trial++ {
			m, k, n := randSize(rng), randSize(rng), randSize(rng)
			cfg := cfgs[rng.Intn(len(cfgs))]
			kernelCfg.Store(&cfg)
			x := New(m, k)
			w := New(k, n)
			bias := New(n)
			randFill(rng, x.Data)
			randFill(rng, w.Data)
			randFill(rng, bias.Data)
			relu := trial%2 == 0
			want := naiveMM(m, k, n, x.Data, w.Data)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					v := want[i*n+j] + bias.Data[j]
					if relu && v < 0 {
						v = 0
					}
					want[i*n+j] = v
				}
			}
			dst := New(m, n)
			LinearInto(dst, x, w, bias, relu)
			if d := maxDiff(want, dst.Data); d > tol {
				t.Fatalf("trial %d (%dx%dx%d relu=%v, cfg %s): fused differs by %g", trial, m, k, n, relu, cfg, d)
			}
		}
	})
}

// TestMicroKernelFuzzPackedF16 sweeps MatMulPackedF16 against the naive
// oracle on fp16-rounded weights, packing under each stress blocking.
func TestMicroKernelFuzzPackedF16(t *testing.T) {
	cfgs := stressConfigs()
	forEachSIMDMode(t, func(t *testing.T, tol float64) {
		defer func(c KernelConfig) { kernelCfg.Store(&c) }(CurrentKernelConfig())
		rng := rand.New(rand.NewSource(104))
		for trial := 0; trial < 200; trial++ {
			m, k, n := randSize(rng), randSize(rng), randSize(rng)
			cfg := cfgs[rng.Intn(len(cfgs))]
			kernelCfg.Store(&cfg)
			a := make([]float64, m*k)
			w := New(k, n)
			randFill(rng, a)
			randFill(rng, w.Data)
			rounded := make([]float64, k*n)
			for i, v := range w.Data {
				rounded[i] = f16.FromFloat64(v).Float64()
			}
			want := naiveMM(m, k, n, a, rounded)
			pb := PackF16(w)
			got := make([]float64, m*n)
			MatMulPackedF16(m, a, pb, got, nil, false, nil)
			if d := maxDiff(want, got); d > tol {
				t.Fatalf("trial %d (%dx%dx%d, cfg %s): packed differs by %g", trial, m, k, n, cfg, d)
			}
		}
	})
}

// TestKernelConfigsBitIdentical is the autotune safety contract: every
// configuration the tuner may pick (NC and micro-tile shape varied, KC
// fixed) produces bit-identical results to the default config, for the
// forward GEMM, the fused epilogue, both backward kernels, and the packed
// fp16 multiply — under whichever kernel family (SIMD or portable) is
// active, and for every thread count.
func TestKernelConfigsBitIdentical(t *testing.T) {
	defer func(c KernelConfig) { kernelCfg.Store(&c) }(CurrentKernelConfig())
	rng := rand.New(rand.NewSource(105))
	m, k, n := 37, 301, 143 // awkward shapes: tails in every dimension
	a := New(m, k)
	w := New(k, n)
	bias := New(n)
	randFill(rng, a.Data)
	randFill(rng, w.Data)
	randFill(rng, bias.Data)
	at := New(k, m)
	randFill(rng, at.Data)
	bnt := New(n, k)
	randFill(rng, bnt.Data)

	run := func() map[string][]float64 {
		got := map[string][]float64{}

		dst := New(m, n)
		MatMulInto(dst, a, w)
		got["mm"] = append([]float64(nil), dst.Data...)

		LinearInto(dst, a, w, bias, true)
		got["fused"] = append([]float64(nil), dst.Data...)

		acc := New(m, n) // zero-init accumulator
		AddMatMulNT(acc, a, bnt)
		got["nt"] = append([]float64(nil), acc.Data...)

		accT := New(m, n)
		AddMatMulTN(accT, at, w)
		got["tn"] = append([]float64(nil), accT.Data...)

		pb := PackF16(w)
		pc := make([]float64, m*n)
		MatMulPackedF16(m, a.Data, pb, pc, bias.Data, false, nil)
		got["packed"] = pc
		return got
	}

	defer SetThreads(SetThreads(1))
	var baseline map[string][]float64
	for _, nc := range []int{256, 512, 1024} {
		for _, sh := range microShapes {
			cfg := KernelConfig{KC: kcBlock, NC: nc, MR: sh.mr, NR: sh.nr}
			kernelCfg.Store(&cfg)
			for _, threads := range []int{1, 4} {
				SetThreads(threads)
				got := run()
				if baseline == nil {
					baseline = got
					continue
				}
				for name, v := range got {
					base := baseline[name]
					for i := range v {
						if v[i] != base[i] {
							t.Fatalf("%s: cfg %s threads=%d differs from baseline at %d: %g vs %g",
								name, cfg, threads, i, v[i], base[i])
						}
					}
				}
			}
		}
	}
}

// TestAutotuneInstallsGridWinner checks the tuner picks from the candidate
// grid with KC unchanged, installs the winner, and caches the result.
func TestAutotuneInstallsGridWinner(t *testing.T) {
	defer func(c KernelConfig) { kernelCfg.Store(&c) }(CurrentKernelConfig())
	autotuneMu.Lock()
	saved := autotuneResult
	autotuneResult = nil
	autotuneMu.Unlock()
	defer func() {
		autotuneMu.Lock()
		autotuneResult = saved
		autotuneMu.Unlock()
	}()

	kcBefore := CurrentKernelConfig().KC
	r := Autotune()
	if r == nil || len(r.Candidates) != 9 {
		t.Fatalf("autotune result %+v, want 9 candidates", r)
	}
	if r.Config.KC != kcBefore {
		t.Errorf("autotune changed KC %d -> %d; KC must stay fixed (bit-visible)", kcBefore, r.Config.KC)
	}
	if err := r.Config.validate(); err != nil {
		t.Errorf("autotune installed invalid config: %v", err)
	}
	if got := CurrentKernelConfig(); got != r.Config {
		t.Errorf("autotune reported %s but installed %s", r.Config, got)
	}
	if again := Autotune(); again != r {
		t.Errorf("second Autotune call re-measured; want cached result")
	}
	if Autotuned() != r {
		t.Errorf("Autotuned() did not return the cached result")
	}
}

// TestAutotunedPathSteadyStateAllocs pins the autotuned configuration's
// kernels (forward GEMM and the fp16 pack/multiply cycle the fp16 training
// path runs per step) at zero steady-state allocations.
func TestAutotunedPathSteadyStateAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	defer func(c KernelConfig) { kernelCfg.Store(&c) }(CurrentKernelConfig())
	defer SetThreads(SetThreads(1))
	cfg := Autotune().Config
	kernelCfg.Store(&cfg)

	rng := rand.New(rand.NewSource(106))
	a := New(32, 144)
	w := New(144, 64)
	randFill(rng, a.Data)
	randFill(rng, w.Data)
	dst := New(32, 64)
	if n := testing.AllocsPerRun(20, func() { MatMulInto(dst, a, w) }); n != 0 {
		t.Errorf("autotuned MatMulInto allocates %v/op, want 0", n)
	}

	pb := PackF16(w)
	c := make([]float64, 32*64)
	MatMulPackedF16(32, a.Data, pb, c, nil, false, nil) // warm slab pool
	if n := testing.AllocsPerRun(20, func() {
		PackF16Into(pb, w) // the per-step re-pack of fp16 training
		MatMulPackedF16(32, a.Data, pb, c, nil, false, nil)
	}); n != 0 {
		t.Errorf("fp16 pack+multiply cycle allocates %v/op, want 0", n)
	}
}
