package tensor

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// KernelConfig is the runtime tuning surface of the blocked GEMM engine:
// the panel blocking of B and the register micro-tile shape. It is
// process-wide (like Engine and Threads) and read once per kernel entry.
//
// Determinism contract: NC and MR/NR only move work between registers and
// cache levels — every output element's additions stay in ascending depth
// order inside fixed KC panels — so changing them can never change a single
// output bit. KC regroups the depth sum (a panel boundary restarts the
// register chain from the stored partial), so changing KC is an
// accuracy-neutral but bit-visible change. The autotuner therefore holds KC
// fixed and searches only NC and the tile shape; KC is still settable
// explicitly for operators who accept a one-time bit change.
type KernelConfig struct {
	// KC is the depth rows of B per panel. Fixed during autotuning.
	KC int `json:"kc"`
	// NC is the columns of B per panel.
	NC int `json:"nc"`
	// MR x NR is the register micro-tile shape (rows x cols of C held in
	// local accumulators). Implemented shapes: 4x4, 2x8, 8x2.
	MR int `json:"mr"`
	NR int `json:"nr"`
}

// String renders the config in the flag syntax ParseKernelConfig accepts.
func (c KernelConfig) String() string {
	return fmt.Sprintf("%dx%d:%dx%d", c.KC, c.NC, c.MR, c.NR)
}

func (c KernelConfig) validate() error {
	if c.KC <= 0 || c.NC <= 0 {
		return fmt.Errorf("tensor: kernel blocking %dx%d: panels must be positive", c.KC, c.NC)
	}
	if !validShape(c.MR, c.NR) {
		return fmt.Errorf("tensor: micro-kernel shape %dx%d not implemented (have %v)", c.MR, c.NR, microShapes)
	}
	return nil
}

// DefaultKernelConfig returns the untuned configuration: the historical
// kcBlock x ncBlock panel (1 MiB of B, L2-resident) and the 4x4 tile.
func DefaultKernelConfig() KernelConfig {
	return KernelConfig{KC: kcBlock, NC: ncBlock, MR: 4, NR: 4}
}

var kernelCfg atomic.Pointer[KernelConfig]

func init() {
	c := DefaultKernelConfig()
	kernelCfg.Store(&c)
}

// CurrentKernelConfig returns the blocking + micro-tile configuration the
// GEMM kernels will read at their next entry.
func CurrentKernelConfig() KernelConfig { return *kernelCfg.Load() }

// SetKernelConfig installs c process-wide and returns the previous
// configuration (handy for defer-restore). Concurrent kernel invocations
// are safe — each reads the pointer once at entry — but callers sequencing
// bit-exact reproductions should not change KC between runs.
func SetKernelConfig(c KernelConfig) (KernelConfig, error) {
	if err := c.validate(); err != nil {
		return CurrentKernelConfig(), err
	}
	return *kernelCfg.Swap(&c), nil
}

// SetBlocking adjusts only the panel blocking, keeping the current
// micro-tile shape. kc or nc <= 0 keeps the current value.
func SetBlocking(kc, nc int) (KernelConfig, error) {
	c := CurrentKernelConfig()
	if kc > 0 {
		c.KC = kc
	}
	if nc > 0 {
		c.NC = nc
	}
	return SetKernelConfig(c)
}

// ParseKernelConfig parses the -gemm-block flag syntax: "KCxNC" or
// "KCxNC:MRxNR" (e.g. "256x512" or "256x1024:2x8"). Empty fields keep the
// current value: "x1024" tunes nc only.
func ParseKernelConfig(s string) (KernelConfig, error) {
	c := CurrentKernelConfig()
	block := s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		block = s[:i]
		mr, nr, err := parsePair(s[i+1:], "micro-tile")
		if err != nil {
			return c, err
		}
		c.MR, c.NR = mr, nr
	}
	if block != "" {
		kc, nc, err := parsePairOpt(block, c.KC, c.NC)
		if err != nil {
			return c, err
		}
		c.KC, c.NC = kc, nc
	}
	if err := c.validate(); err != nil {
		return CurrentKernelConfig(), err
	}
	return c, nil
}

func parsePair(s, what string) (int, int, error) {
	var a, b int
	if _, err := fmt.Sscanf(s, "%dx%d", &a, &b); err != nil {
		return 0, 0, fmt.Errorf("tensor: bad %s %q (want AxB)", what, s)
	}
	return a, b, nil
}

func parsePairOpt(s string, defA, defB int) (int, int, error) {
	i := strings.IndexByte(s, 'x')
	if i < 0 {
		return 0, 0, fmt.Errorf("tensor: bad blocking %q (want KCxNC)", s)
	}
	a, b := defA, defB
	if s[:i] != "" {
		if _, err := fmt.Sscanf(s[:i], "%d", &a); err != nil {
			return 0, 0, fmt.Errorf("tensor: bad blocking %q: %v", s, err)
		}
	}
	if s[i+1:] != "" {
		if _, err := fmt.Sscanf(s[i+1:], "%d", &b); err != nil {
			return 0, 0, fmt.Errorf("tensor: bad blocking %q: %v", s, err)
		}
	}
	return a, b, nil
}
