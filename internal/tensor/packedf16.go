package tensor

import (
	"fmt"

	"repro/internal/f16"
)

// PackedF16 is a GEMM B matrix repacked once into the blocked kernel's
// traversal order and stored in half precision — the serving fast path's
// reusable packed-weight buffer, and the weight store of the fp16 training
// path.
//
// Layout: for each kc x nc panel (the KernelConfig blocking captured at
// pack time — the packed order must match the multiply's panel walk even if
// the process-wide config changes later), the pk x jn block is stored
// contiguously (rows p ascending, columns j ascending). The multiply then
// walks the packed storage strictly sequentially — no leading-dimension
// strides — and decodes one panel at a time into a pooled f64 tile that
// every row of A reuses.
//
// That reuse is the paper's thesis in miniature: a single-sample inference
// (m=1) pays the full decode + memory traffic of every weight panel for one
// row of work, while a coalesced micro-batch (m=8) amortizes each panel
// decode across eight rows — turning a decode/bandwidth-bound call into a
// compute-bound one. Packing happens once per model under serving (weights
// are static); the fp16 training path re-packs in place via PackF16Into
// after each optimizer step.
type PackedF16 struct {
	// K and N are the dimensions of the original [K, N] matrix.
	K, N int
	// MaxErr is the largest absolute rounding error the fp16 quantization
	// introduced across all weights (reported for observability).
	MaxErr float64

	// kc and nc are the panel blocking the layout was built with.
	kc, nc int

	panels []f16.F16
}

// PackF16 packs a [K, N] matrix into panel-major half-precision storage
// under the current KernelConfig blocking. The packed buffer is immutable
// and safe for concurrent readers; repack via PackF16Into to mutate.
func PackF16(b *Tensor) *PackedF16 {
	pb := &PackedF16{}
	PackF16Into(pb, b)
	return pb
}

// PackF16Into (re)packs b into pb, reusing pb's storage when the size
// matches — the fp16 training path calls this after every optimizer step,
// so steady-state repacking allocates nothing. Not safe concurrently with
// readers of pb; training owns its packed weights between steps.
func PackF16Into(pb *PackedF16, b *Tensor) {
	if len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: PackF16 wants a [K,N] matrix, got %v", b.Shape))
	}
	cfg := kernelCfg.Load()
	k, n := b.Shape[0], b.Shape[1]
	pb.K, pb.N = k, n
	pb.kc, pb.nc = cfg.KC, cfg.NC
	pb.MaxErr = 0
	if len(pb.panels) != k*n {
		pb.panels = make([]f16.F16, k*n)
	}
	t := 0
	for jj := 0; jj < n; jj += pb.nc {
		jn := min(n-jj, pb.nc)
		for pp := 0; pp < k; pp += pb.kc {
			pk := min(k-pp, pb.kc)
			for p := pp; p < pp+pk; p++ {
				for j := jj; j < jj+jn; j++ {
					v := b.Data[p*n+j]
					h := f16.FromFloat64(v)
					if e := abs(h.Float64() - v); e > pb.MaxErr {
						pb.MaxErr = e
					}
					pb.panels[t] = h
					t++
				}
			}
		}
	}
}

// Bytes returns the packed buffer's storage footprint — half of the f64
// matrix it replaces.
func (pb *PackedF16) Bytes() int64 { return int64(len(pb.panels)) * 2 }

// MatMulPackedF16 computes c[m,N] = act(a[m,K] x pb + bias) into the f64
// accumulator c, overwriting it (fused epilogue, no prefill pass; bias is
// per output column and may be nil). If out is non-nil (len >= m*N) each
// finished column block is additionally quantized into out while hot — the
// 16-bit activation write-back of the serving path, fused so it costs no
// extra trip over the activations.
//
// The panel walk uses the blocking captured at pack time, and each decoded
// panel runs through the same register micro-kernel as gemmBlocked (first
// depth panel overwrites, later panels continue the chain) — so as long as
// pack-time kc matches the live config's KC, the result is exactly
// MatMulInto against the fp16-quantized weights: deterministic, and
// independent of the batch size m a row is computed under.
func MatMulPackedF16(m int, a []float64, pb *PackedF16, c []float64, bias []float64, relu bool, out []f16.F16) {
	k, n := pb.K, pb.N
	if len(a) < m*k || len(c) < m*n {
		panic(fmt.Sprintf("tensor: packed matmul m=%d with len(a)=%d len(c)=%d for [%d,%d]", m, len(a), len(c), k, n))
	}
	mr := kernelCfg.Load().MR
	off := 0
	for jj := 0; jj < n; jj += pb.nc {
		jn := min(n-jj, pb.nc)
		for pp := 0; pp < k; pp += pb.kc {
			pk := min(k-pp, pb.kc)
			// Decode the panel once; all m rows consume the hot f64 tile.
			tile := getSlab(pk * jn)
			f16.DecodeSlice(tile.f, pb.panels[off:off+pk*jn])
			off += pk * jn
			runPanel(mr, m, pk, jn, a[pp:], k, tile.f, jn, c[jj:], n, pp > 0)
			tile.put()
		}
		// Epilogue on the finished column block: bias, activation, and the
		// optional 16-bit write-back.
		for i := 0; i < m; i++ {
			ci := c[i*n+jj : i*n+jj+jn]
			if bias != nil {
				bj := bias[jj : jj+jn]
				for j := range ci {
					ci[j] += bj[j]
				}
			}
			if relu {
				for j := range ci {
					if ci[j] < 0 {
						ci[j] = 0
					}
				}
			}
			if out != nil {
				f16.EncodeSlice(out[i*n+jj:i*n+jj+jn], ci)
			}
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
