package tensor

import (
	"fmt"

	"repro/internal/f16"
)

// PackedF16 is a GEMM B matrix repacked once into the blocked kernel's
// traversal order and stored in half precision — the serving fast path's
// reusable packed-weight buffer.
//
// Layout: for each ncBlock column panel, for each kcBlock depth panel, the
// pk x jn block is stored contiguously (rows p ascending, columns j
// ascending). The multiply then walks the packed storage strictly
// sequentially — no leading-dimension strides — and decodes one panel at a
// time into a pooled fp32-accumulate-style f64 tile that every row of A
// reuses.
//
// That reuse is the paper's thesis in miniature: a single-sample inference
// (m=1) pays the full decode + memory traffic of every weight panel for one
// row of work, while a coalesced micro-batch (m=8) amortizes each panel
// decode across eight rows — turning a decode/bandwidth-bound call into a
// compute-bound one. Packing happens once per model (weights are static
// under serving), never per call.
type PackedF16 struct {
	// K and N are the dimensions of the original [K, N] matrix.
	K, N int
	// MaxErr is the largest absolute rounding error the fp16 quantization
	// introduced across all weights (reported for observability).
	MaxErr float64

	panels []f16.F16
}

// PackF16 packs a [K, N] matrix into panel-major half-precision storage.
// Call it once per model; the packed buffer is immutable and safe for
// concurrent readers.
func PackF16(b *Tensor) *PackedF16 {
	if len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: PackF16 wants a [K,N] matrix, got %v", b.Shape))
	}
	k, n := b.Shape[0], b.Shape[1]
	pb := &PackedF16{K: k, N: n, panels: make([]f16.F16, k*n)}
	t := 0
	for jj := 0; jj < n; jj += ncBlock {
		jn := min(n-jj, ncBlock)
		for pp := 0; pp < k; pp += kcBlock {
			pk := min(k-pp, kcBlock)
			for p := pp; p < pp+pk; p++ {
				for j := jj; j < jj+jn; j++ {
					v := b.Data[p*n+j]
					h := f16.FromFloat64(v)
					if e := abs(h.Float64() - v); e > pb.MaxErr {
						pb.MaxErr = e
					}
					pb.panels[t] = h
					t++
				}
			}
		}
	}
	return pb
}

// Bytes returns the packed buffer's storage footprint — half of the f64
// matrix it replaces.
func (pb *PackedF16) Bytes() int64 { return int64(len(pb.panels)) * 2 }

// MatMulPackedF16 computes c[m,N] = act(a[m,K] x pb + bias) into the f64
// accumulator c, overwriting it (fused epilogue, no prefill pass; bias is
// per output column and may be nil). If out is non-nil (len >= m*N) each
// finished column block is additionally quantized into out while hot — the
// 16-bit activation write-back of the serving path, fused so it costs no
// extra trip over the activations.
//
// Accumulation is float64 in ascending depth order, so the result is exactly
// MatMulInto against the fp16-quantized weights: deterministic, and
// independent of the batch size m a row is computed under.
func MatMulPackedF16(m int, a []float64, pb *PackedF16, c []float64, bias []float64, relu bool, out []f16.F16) {
	k, n := pb.K, pb.N
	if len(a) < m*k || len(c) < m*n {
		panic(fmt.Sprintf("tensor: packed matmul m=%d with len(a)=%d len(c)=%d for [%d,%d]", m, len(a), len(c), k, n))
	}
	off := 0
	for jj := 0; jj < n; jj += ncBlock {
		jn := min(n-jj, ncBlock)
		for pp := 0; pp < k; pp += kcBlock {
			pk := min(k-pp, kcBlock)
			// Decode the panel once; all m rows consume the hot f64 tile.
			tile := getSlab(pk * jn)
			f16.DecodeSlice(tile.f, pb.panels[off:off+pk*jn])
			off += pk * jn
			for i := 0; i < m; i++ {
				ci := c[i*n+jj : i*n+jj+jn]
				ai := a[i*k+pp : i*k+pp+pk]
				if pp == 0 {
					zeroFloats(ci) // see gemmFused: accumulate over zeros
				}
				for p, av := range ai {
					if av == 0 {
						continue
					}
					bp := tile.f[p*jn : p*jn+jn]
					for j, bv := range bp {
						ci[j] += av * bv
					}
				}
			}
			tile.put()
		}
		// Epilogue on the finished column block: bias, activation, and the
		// optional 16-bit write-back.
		for i := 0; i < m; i++ {
			ci := c[i*n+jj : i*n+jj+jn]
			if bias != nil {
				bj := bias[jj : jj+jn]
				for j := range ci {
					ci[j] += bj[j]
				}
			}
			if relu {
				for j := range ci {
					if ci[j] < 0 {
						ci[j] = 0
					}
				}
			}
			if out != nil {
				f16.EncodeSlice(out[i*n+jj:i*n+jj+jn], ci)
			}
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
