// Package tensor implements the dense numeric arrays and convolution
// arithmetic used by the training engine (internal/nn). Everything is
// float64 for numerically robust gradient checking; the paper's 16-bit
// arithmetic is a property of the accelerator model, not of the algorithmic
// equivalence this engine demonstrates.
//
// Compute kernels are pluggable (see Engine): the default EngineGEMM lowers
// convolutions to im2col + cache-blocked goroutine-parallel GEMM with a
// pooled scratch arena, while EngineNaive keeps the direct reference loops
// as the correctness oracle.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim in %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape (no copy).
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Len() != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Len returns the element count.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randn fills the tensor with N(0, std) samples from rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// AddInPlace accumulates o into t.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// MaxAbsDiff returns the largest absolute element difference.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if !t.SameShape(o) {
		return math.Inf(1)
	}
	var m float64
	for i := range t.Data {
		if d := math.Abs(t.Data[i] - o.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s / float64(len(t.Data))
}

// at4/idx4 index NCHW tensors.
func (t *Tensor) idx4(n, c, h, w int) int {
	C, H, W := t.Shape[1], t.Shape[2], t.Shape[3]
	return ((n*C+c)*H+h)*W + w
}

// At4 reads an NCHW element.
func (t *Tensor) At4(n, c, h, w int) float64 { return t.Data[t.idx4(n, c, h, w)] }

// Set4 writes an NCHW element.
func (t *Tensor) Set4(n, c, h, w int, v float64) { t.Data[t.idx4(n, c, h, w)] = v }

// Slice4 returns sample n of an NCHW tensor as a new 1-sample tensor view
// copy (used by sub-batch iteration).
func SliceBatch(t *Tensor, from, to int) *Tensor {
	if len(t.Shape) < 1 || from < 0 || to > t.Shape[0] || from >= to {
		panic(fmt.Sprintf("tensor: bad batch slice [%d,%d) of %v", from, to, t.Shape))
	}
	per := t.Len() / t.Shape[0]
	shape := append([]int{to - from}, t.Shape[1:]...)
	out := New(shape...)
	copy(out.Data, t.Data[from*per:to*per])
	return out
}
