//go:build amd64 && gc

package tensor

// AVX2+FMA micro-kernels (simd_amd64.s). Each asm routine is one register
// micro-tile family; the Go side drives row blocking so the partitioning
// (and therefore determinism) logic stays in reviewable Go.
//
// Numerics: the panel kernels vectorize across OUTPUT COLUMNS — each SIMD
// lane is one output element's private accumulator chain, still advancing
// in ascending depth order — so column blocking, micro-tile shape, thread
// partitioning, and batch grouping remain bit-invisible exactly as in the
// scalar kernels. The one intentional change is fused multiply-add (one
// rounding per term instead of two), which makes SIMD-on results differ
// from SIMD-off results at the ulp level; every path in the process uses
// the same kernels, so all within-process exactness contracts (packed-f16,
// batch invariance, thread counts, autotune candidates) hold bit-for-bit.
// The NT dot kernel additionally splits its reduction into four fixed
// lanes ((l0+l2)+(l1+l3), then the scalar tail) — fixed per shape, never
// varying with threads or blocking.

func init() {
	simdAvail = hasAVX2FMA()
	simdOn.Store(simdAvail)
}

// hasAVX2FMA reports whether the CPU and OS support AVX2 + FMA + OS-saved
// YMM state.
func hasAVX2FMA() bool

// fmaPanel4 accumulates 4 rows x jn cols of C over a pk-deep panel:
// C[r,j] (+)= sum_p A[r,p]*B[p,j], 8-wide column tiles with a masked tail.
// load=false overwrites C with the panel product (first-panel fast path).
//
//go:noescape
func fmaPanel4(a *float64, lda int, b *float64, ldb int, c *float64, ldc int, pk, jn int, load bool)

// fmaPanel2 is fmaPanel4 for 2 rows.
//
//go:noescape
func fmaPanel2(a *float64, lda int, b *float64, ldb int, c *float64, ldc int, pk, jn int, load bool)

// fmaPanel1 is fmaPanel4 for a single row (the m=1 inference fast path).
//
//go:noescape
func fmaPanel1(a *float64, lda int, b *float64, ldb int, c *float64, ldc int, pk, jn int, load bool)

// fmaPanelT4 accumulates 4 rows x jn cols of C for the transposed-A
// product: C[t,j] += sum_p A[p, t]*B[p,j], where a points at A's column
// block (stride lda per depth step, rows t contiguous). C is always
// loaded (pure accumulate).
//
//go:noescape
func fmaPanelT4(a *float64, lda int, b *float64, ldb int, c *float64, ldc int, k, jn int)

// fmaPanelT1 is fmaPanelT4 for a single row.
//
//go:noescape
func fmaPanelT1(a *float64, lda int, b *float64, ldb int, c *float64, ldc int, k, jn int)

// fmaNT4 computes four dot products against four consecutive rows of B
// (stride ldb) and accumulates them into c[0..3]: c[t] += dot(a, B[t,:]).
//
//go:noescape
func fmaNT4(a *float64, b *float64, ldb int, k int, c *float64)

// simdPanel drives the FMA panel kernels over the row dimension. mr picks
// the row-block unroll (4 or 2); remainder rows fall through to narrower
// kernels. Row grouping never moves terms between additions, so every mr
// produces identical bits.
func simdPanel(mr, m, pk, jn int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, load bool) {
	i := 0
	if mr >= 4 {
		for ; i+4 <= m; i += 4 {
			fmaPanel4(&a[i*lda], lda, &b[0], ldb, &c[i*ldc], ldc, pk, jn, load)
		}
	}
	for ; i+2 <= m; i += 2 {
		fmaPanel2(&a[i*lda], lda, &b[0], ldb, &c[i*ldc], ldc, pk, jn, load)
	}
	for ; i < m; i++ {
		fmaPanel1(&a[i*lda], lda, &b[0], ldb, &c[i*ldc], ldc, pk, jn, load)
	}
}

// simdPanelT drives fmaPanelT4/T1 over the C row range [iLo,iHi) of the
// transposed-A accumulate. Any row partition yields identical bits.
func simdPanelT(iLo, iHi, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	ii := iLo
	for ; ii+4 <= iHi; ii += 4 {
		fmaPanelT4(&a[ii], lda, &b[0], ldb, &c[ii*ldc], ldc, k, n)
	}
	for ; ii < iHi; ii++ {
		fmaPanelT1(&a[ii], lda, &b[0], ldb, &c[ii*ldc], ldc, k, n)
	}
}
