package tensor

import (
	"math/bits"
	"sync"
)

// The scratch arena hands out float64 slabs for kernel temporaries (im2col
// matrices, per-sample weight-gradient partials). Slabs are bucketed by
// power-of-two capacity and recycled through sync.Pools, so a steady-state
// training loop — which requests the same handful of sizes every step —
// performs no large allocations after warm-up. The *slab container itself is
// pooled too, keeping Get/Put free of per-call boxing allocations.

type slab struct {
	f []float64
}

// slabPools[b] holds slabs of capacity exactly 1<<b.
var slabPools [40]sync.Pool

func slabBucket(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getSlab returns a slab whose buffer has length n. Contents are arbitrary;
// callers either overwrite fully or zero the regions they accumulate into.
func getSlab(n int) *slab {
	b := slabBucket(n)
	if v := slabPools[b].Get(); v != nil {
		s := v.(*slab)
		s.f = s.f[:n]
		return s
	}
	return &slab{f: make([]float64, n, 1<<b)}
}

// put returns the slab to its pool.
func (s *slab) put() {
	slabPools[slabBucket(cap(s.f))].Put(s)
}

// zeroFloats clears a slice (compiles to a memclr).
func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
