package tensor

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Startup autotuner. Autotune benchmarks a small grid of kernel
// configurations — NC panel widths crossed with the implemented micro-tile
// shapes, KC held fixed — on GEMM shapes representative of this repo's
// hot paths (the im2col convolution product and the MLP layer product),
// installs the fastest configuration via SetKernelConfig, and caches the
// result so later callers get the winner without re-measuring.
//
// KC is deliberately not searched: a KC change regroups each output
// element's depth sum and is therefore bit-visible (see KernelConfig).
// Everything the tuner varies — NC and the micro-tile shape — only moves
// work between registers and cache levels, so every candidate produces
// bit-identical outputs and the winner can be adopted mid-fleet without
// breaking reproducibility.

// AutotuneCandidate is one measured configuration.
type AutotuneCandidate struct {
	Config KernelConfig  `json:"config"`
	Time   time.Duration `json:"time"`
}

// AutotuneResult is the cached outcome of a tuning run.
type AutotuneResult struct {
	Config     KernelConfig        `json:"config"`
	SIMD       bool                `json:"simd"`
	Candidates []AutotuneCandidate `json:"candidates"`
	Elapsed    time.Duration       `json:"elapsed"`
}

// String summarizes the result for startup logs.
func (r *AutotuneResult) String() string {
	simd := "off"
	if r.SIMD {
		simd = "on"
	}
	return fmt.Sprintf("config=%s simd=%s candidates=%d tuned in %v",
		r.Config, simd, len(r.Candidates), r.Elapsed.Round(time.Millisecond))
}

var (
	autotuneMu     sync.Mutex
	autotuneResult *AutotuneResult
)

// Autotuned returns the cached tuning result, or nil if Autotune has not
// run (stats report the default config as untuned in that case).
func Autotuned() *AutotuneResult {
	autotuneMu.Lock()
	defer autotuneMu.Unlock()
	return autotuneResult
}

// Autotune measures the candidate grid once per process, installs the
// winner, and returns the cached result on subsequent calls. It is intended
// to run at binary startup, before serving or training begins; a tuning
// pass costs tens of milliseconds.
func Autotune() *AutotuneResult {
	autotuneMu.Lock()
	defer autotuneMu.Unlock()
	if autotuneResult != nil {
		return autotuneResult
	}
	r := runAutotune()
	if _, err := SetKernelConfig(r.Config); err != nil {
		// Unreachable: candidates come from the validated grid.
		panic(err)
	}
	autotuneResult = r
	return r
}

// autotuneShapes are the measured GEMM problem sizes: the im2col product
// of the smallcnn conv layer (tall-skinny depth 144) and a square MLP-like
// layer product. Both small enough to keep startup cost in the tens of
// milliseconds, big enough to exercise the panel loop.
var autotuneShapes = [][3]int{
	{128, 144, 128}, // im2col conv: m = spatial block, k = inC*3*3, n = outC block
	{96, 192, 192},  // MLP layer block
}

func runAutotune() *AutotuneResult {
	start := time.Now()
	prev := CurrentKernelConfig()
	defer kernelCfg.Store(&prev) // measure under each candidate, restore after

	// Preallocate the largest buffers once; every candidate reuses them.
	var mMax, kMax, nMax int
	for _, s := range autotuneShapes {
		mMax, kMax, nMax = max(mMax, s[0]), max(kMax, s[1]), max(nMax, s[2])
	}
	a := make([]float64, mMax*kMax)
	b := make([]float64, kMax*nMax)
	c := make([]float64, mMax*nMax)
	for i := range a {
		a[i] = float64(i%13) - 6
	}
	for i := range b {
		b[i] = float64(i%11) - 5
	}

	var cands []AutotuneCandidate
	for _, nc := range []int{256, 512, 1024} {
		for _, sh := range microShapes {
			cfg := KernelConfig{KC: prev.KC, NC: nc, MR: sh.mr, NR: sh.nr}
			kernelCfg.Store(&cfg)
			cands = append(cands, AutotuneCandidate{
				Config: cfg,
				Time:   timeConfig(a, b, c),
			})
		}
	}
	// Stable outcome under timing jitter: sort by time, break ties toward
	// the default config's shape ordering (the grid order is deterministic).
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Time < cands[j].Time })
	return &AutotuneResult{
		Config:     cands[0].Config,
		SIMD:       SIMDEnabled(),
		Candidates: cands,
		Elapsed:    time.Since(start),
	}
}

// timeConfig runs every autotune shape under the currently-stored config
// and returns the best of three sweeps (min filters scheduler noise).
func timeConfig(a, b, c []float64) time.Duration {
	best := time.Duration(1 << 62)
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		for _, s := range autotuneShapes {
			m, k, n := s[0], s[1], s[2]
			gemmBlocked(m, k, n, a, k, b, n, c, n, true)
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}
