package tensor

import "sync/atomic"

// simdAvail records whether the running CPU supports the AVX2+FMA asm
// kernels (detected once at init on amd64, false elsewhere). simdOn gates
// dispatch; it defaults to simdAvail and can be flipped at runtime.
var (
	simdAvail bool
	simdOn    atomic.Bool
)

// SIMDAvailable reports whether the AVX2+FMA kernels exist for this
// CPU/OS.
func SIMDAvailable() bool { return simdAvail }

// SIMDEnabled reports whether the GEMM kernels currently dispatch to the
// AVX2+FMA micro-kernels.
func SIMDEnabled() bool { return simdOn.Load() }

// SetSIMD enables or disables the AVX2+FMA kernels (no-op enable when the
// CPU lacks them) and returns the previous setting. Disabling falls back
// to the portable register-tiled Go kernels.
//
// SIMD on/off is the one switch that changes result bits (fused vs
// separate rounding per term, and the NT dot's fixed 4-lane split); within
// either setting all determinism contracts hold bit-for-bit. Flip it only
// between runs that must be comparable.
func SetSIMD(on bool) bool { return simdOn.Swap(on && simdAvail) }
