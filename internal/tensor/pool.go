package tensor

// MaxPool2D computes max pooling with a k x k window and the given stride.
// Returns the output and the argmax index map (into the input's flat data)
// used by the backward pass.
func MaxPool2D(x *Tensor, k, stride int) (*Tensor, []int) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	out := New(n, c, oh, ow)
	arg := make([]int, out.Len())
	MaxPool2DInto(out, arg, x, k, stride)
	return out, arg
}

// MaxPool2DInto pools into preallocated out and arg buffers (buffer-reusing
// training paths).
func MaxPool2DInto(out *Tensor, arg []int, x *Tensor, k, stride int) {
	n, c := x.Shape[0], x.Shape[1]
	oh, ow := out.Shape[2], out.Shape[3]
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := x.At4(ni, ci, oy*stride, ox*stride)
					bi := x.idx4(ni, ci, oy*stride, ox*stride)
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							idx := x.idx4(ni, ci, oy*stride+ky, ox*stride+kx)
							if v := x.Data[idx]; v > best {
								best, bi = v, idx
							}
						}
					}
					out.Data[oi] = best
					arg[oi] = bi
					oi++
				}
			}
		}
	}
}

// MaxPool2DBackward scatters dy through the argmax map.
func MaxPool2DBackward(dy *Tensor, arg []int, inShape []int) *Tensor {
	dx := New(inShape...)
	MaxPool2DBackwardInto(dx, dy, arg)
	return dx
}

// MaxPool2DBackwardInto scatters dy through the argmax map into a
// preallocated dx (overwritten).
func MaxPool2DBackwardInto(dx, dy *Tensor, arg []int) {
	dx.Zero()
	for i, g := range dy.Data {
		dx.Data[arg[i]] += g
	}
}

// GlobalAvgPool reduces [N,C,H,W] to [N,C].
func GlobalAvgPool(x *Tensor) *Tensor {
	out := New(x.Shape[0], x.Shape[1])
	GlobalAvgPoolInto(out, x)
	return out
}

// GlobalAvgPoolInto reduces into a preallocated [N,C] out tensor.
func GlobalAvgPoolInto(out, x *Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	inv := 1.0 / float64(h*w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			var s float64
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					s += x.At4(ni, ci, hi, wi)
				}
			}
			out.Data[ni*c+ci] = s * inv
		}
	}
}

// GlobalAvgPoolBackward broadcasts dy [N,C] back to [N,C,H,W].
func GlobalAvgPoolBackward(dy *Tensor, inShape []int) *Tensor {
	dx := New(inShape...)
	GlobalAvgPoolBackwardInto(dx, dy)
	return dx
}

// GlobalAvgPoolBackwardInto broadcasts dy [N,C] into a preallocated dx
// (fully overwritten).
func GlobalAvgPoolBackwardInto(dx, dy *Tensor) {
	n, c, h, w := dx.Shape[0], dx.Shape[1], dx.Shape[2], dx.Shape[3]
	inv := 1.0 / float64(h*w)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			g := dy.Data[ni*c+ci] * inv
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					dx.Set4(ni, ci, hi, wi, g)
				}
			}
		}
	}
}
