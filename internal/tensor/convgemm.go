package tensor

// GEMM-backed convolution kernels (EngineGEMM). A convolution over sample n
// lowers to
//
//	forward:   out_n[OutC, M]  = W[OutC, K] * col_n[K, M] + bias
//	weights:   dw   [OutC, K] += dy_n[OutC, M] * col_n[K, M]^T
//	data:      dx_n            = col2im(W^T[K, OutC] * dy_n[OutC, M])
//
// with K = InC*KH*KW, M = OH*OW, and col_n the im2col matrix of sample n.
// Samples are independent, so the batch dimension is the parallel axis:
// each worker goroutine owns a contiguous sample range and one pooled
// scratch slab. Weight gradients are written to per-sample partials and
// reduced in ascending sample order afterwards, which keeps the whole
// backward pass deterministic for any thread count. The single-threaded
// path calls the range kernels directly (no closure, no goroutine), so
// steady-state serial training performs zero heap allocations.

// im2colSample fills col[K*M] with sample ni's patch matrix: row p indexes
// (ic, ky, kx), column m indexes (oy, ox). Every cell is written (padding
// cells get 0), so col needs no pre-zeroing.
func im2colSample(col []float64, x *Tensor, ni int, s ConvSpec, oh, ow int) {
	h, w := x.Shape[2], x.Shape[3]
	chw := x.Shape[1] * h * w
	im2colRaw(col, x.Data[ni*chw:(ni+1)*chw], h, w, s, oh, ow)
}

// im2colRaw is im2colSample over one sample's raw [InC*H*W] storage — the
// form the inference path uses after decoding a sample's fp16 activations
// into a pooled slab.
func im2colRaw(col, xs []float64, h, w int, s ConvSpec, oh, ow int) {
	m := oh * ow
	p := 0
	for ic := 0; ic < s.InC; ic++ {
		base := ic * h * w
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				dst := col[p*m : (p+1)*m]
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH + ky - s.PadH
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					xrow := xs[base+iy*w : base+(iy+1)*w]
					ix := kx - s.PadW
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w {
							dst[di] = xrow[ix]
						} else {
							dst[di] = 0
						}
						di++
						ix += s.StrideW
					}
				}
				p++
			}
		}
	}
}

// col2imSample scatter-adds dcol[K*M] (same layout as im2colSample) into
// sample ni of dx. The sample's region of dx must be zeroed by the caller.
func col2imSample(dcol []float64, dx *Tensor, ni int, s ConvSpec, oh, ow int) {
	h, w := dx.Shape[2], dx.Shape[3]
	m := oh * ow
	p := 0
	for ic := 0; ic < s.InC; ic++ {
		base := (ni*dx.Shape[1] + ic) * h * w
		for ky := 0; ky < s.KH; ky++ {
			for kx := 0; kx < s.KW; kx++ {
				src := dcol[p*m : (p+1)*m]
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.StrideH + ky - s.PadH
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					dxrow := dx.Data[base+iy*w : base+(iy+1)*w]
					ix := kx - s.PadW
					for ox := 0; ox < ow; ox++ {
						if ix >= 0 && ix < w {
							dxrow[ix] += src[si]
						}
						si++
						ix += s.StrideW
					}
				}
				p++
			}
		}
	}
}

// conv2DGEMM writes the convolution of x into out (overwriting it), via the
// fused-epilogue kernel: the bias rides in the GEMM output loop instead of a
// prefill pass over the output (see fused.go).
func conv2DGEMM(out, x, weight, bias *Tensor, s ConvSpec) {
	Conv2DFusedInto(out, x, weight, bias, s, false)
}

// conv2DBackwardGEMMRange runs the backward lowering for samples [lo,hi):
// dx sample regions are overwritten and per-sample dw partials land in
// dwPart; db is left to the sequential reduction. When colAll is non-nil it
// holds every sample's im2col packing retained by the forward pass
// (Conv2DFusedColInto) and the re-lowering of x is skipped entirely.
func conv2DBackwardGEMMRange(dx, x, weight, dy *Tensor, dwPart, colAll []float64, s ConvSpec, oh, ow, lo, hi int) {
	h, w := x.Shape[2], x.Shape[3]
	k := s.InC * s.KH * s.KW
	m := oh * ow
	wsize := s.OutC * k
	var colSlab *slab
	if colAll == nil {
		colSlab = getSlab(k * m)
		defer colSlab.put()
	}
	dcol := getSlab(k * m)
	defer dcol.put()
	for ni := lo; ni < hi; ni++ {
		var col []float64
		if colAll != nil {
			col = colAll[ni*k*m : (ni+1)*k*m]
		} else {
			col = colSlab.f
			im2colSample(col, x, ni, s, oh, ow)
		}
		dyn := dy.Data[ni*s.OutC*m : (ni+1)*s.OutC*m]
		// dw partial: dy_n [OutC, M] x col_n^T [M, K].
		dwp := dwPart[ni*wsize : (ni+1)*wsize]
		zeroFloats(dwp)
		gemmNTAcc(s.OutC, m, k, dyn, m, col, m, dwp, k)
		// dcol = W^T [K, OutC] x dy_n [OutC, M], then scatter to dx.
		zeroFloats(dcol.f)
		gemmTNAcc(0, k, s.OutC, m, weight.Data, k, dyn, m, dcol.f, m)
		zeroFloats(dx.Data[ni*s.InC*h*w : (ni+1)*s.InC*h*w])
		col2imSample(dcol.f, dx, ni, s, oh, ow)
	}
}

// conv2DBackwardGEMM overwrites dx with the data gradient and accumulates
// (+=) the weight and bias gradients into dwAcc and dbAcc. colAll, when
// non-nil, is the forward pass's retained im2col packing (see
// Conv2DBackwardColInto).
func conv2DBackwardGEMM(dx, dwAcc, dbAcc, x, weight, dy *Tensor, colAll []float64, s ConvSpec) {
	n := x.Shape[0]
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	k := s.InC * s.KH * s.KW
	m := oh * ow
	wsize := s.OutC * k
	dwPart := getSlab(n * wsize)
	if Threads() <= 1 || n == 1 {
		conv2DBackwardGEMMRange(dx, x, weight, dy, dwPart.f, colAll, s, oh, ow, 0, n)
	} else {
		parallelFor(n, func(lo, hi int) {
			conv2DBackwardGEMMRange(dx, x, weight, dy, dwPart.f, colAll, s, oh, ow, lo, hi)
		})
	}
	// Deterministic reductions, ascending sample order regardless of how the
	// parallel section partitioned the batch.
	for ni := 0; ni < n; ni++ {
		dwp := dwPart.f[ni*wsize : (ni+1)*wsize]
		for i, v := range dwp {
			dwAcc.Data[i] += v
		}
		dyn := dy.Data[ni*s.OutC*m : (ni+1)*s.OutC*m]
		for oc := 0; oc < s.OutC; oc++ {
			var sum float64
			for _, v := range dyn[oc*m : (oc+1)*m] {
				sum += v
			}
			dbAcc.Data[oc] += sum
		}
	}
	dwPart.put()
}
