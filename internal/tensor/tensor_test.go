package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || len(x.Data) != 24 {
		t.Errorf("Len = %d", x.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive dim should panic")
		}
	}()
	New(2, 0)
}

func TestCloneIndependent(t *testing.T) {
	x := New(4)
	x.Fill(2)
	y := x.Clone()
	y.Data[0] = 7
	if x.Data[0] != 2 {
		t.Error("clone aliases original")
	}
}

func TestAddScaleMean(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := FromSlice([]float64{1, 1, 1, 1}, 2, 2)
	x.AddInPlace(y)
	if x.Data[3] != 5 {
		t.Errorf("add: %v", x.Data)
	}
	x.Scale(2)
	if x.Data[0] != 4 {
		t.Errorf("scale: %v", x.Data)
	}
	if got := y.Mean(); got != 1 {
		t.Errorf("mean = %f", got)
	}
}

func TestAt4Set4RoundTrip(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.Set4(1, 2, 3, 4, 42)
	if x.At4(1, 2, 3, 4) != 42 {
		t.Error("round trip failed")
	}
	if x.Data[len(x.Data)-1] != 42 {
		t.Error("last element expected")
	}
}

func TestSliceBatch(t *testing.T) {
	x := New(4, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	s := SliceBatch(x, 1, 3)
	if s.Shape[0] != 2 || s.Data[0] != 2 || s.Data[3] != 5 {
		t.Errorf("slice = %+v", s)
	}
	s.Data[0] = -1
	if x.Data[2] == -1 {
		t.Error("SliceBatch must copy")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1.5, 2}, 2)
	if d := a.MaxAbsDiff(b); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("diff = %f", d)
	}
	c := New(3)
	if !math.IsInf(a.MaxAbsDiff(c), 1) {
		t.Error("shape mismatch should be +Inf")
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1x1x3x3 input, 1x1x2x2 kernel of ones, stride 1, no padding:
	// each output is the window sum.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	w := FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	s := ConvSpec{InC: 1, OutC: 1, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	y := Conv2D(x, w, nil, s)
	want := []float64{12, 16, 24, 28}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("y[%d] = %f, want %f", i, y.Data[i], v)
		}
	}
}

func TestConvPaddingAndStride(t *testing.T) {
	x := New(1, 1, 4, 4)
	x.Fill(1)
	w := FromSlice([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}, 1, 1, 3, 3)
	s := ConvSpec{InC: 1, OutC: 1, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	y := Conv2D(x, w, nil, s)
	if y.Shape[2] != 2 || y.Shape[3] != 2 {
		t.Fatalf("out shape %v", y.Shape)
	}
	// Top-left window covers 4 in-bounds ones (corner), bottom-right 9.
	if y.Data[0] != 4 {
		t.Errorf("corner = %f, want 4", y.Data[0])
	}
	if y.Data[3] != 9 {
		t.Errorf("center = %f, want 9", y.Data[3])
	}
}

func TestIm2colGEMMMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(3) + 1
		inC := rng.Intn(3) + 1
		outC := rng.Intn(4) + 1
		h := rng.Intn(6) + 4
		k := []int{1, 3}[rng.Intn(2)]
		stride := rng.Intn(2) + 1
		pad := rng.Intn(2)
		s := ConvSpec{InC: inC, OutC: outC, KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
		x := New(n, inC, h, h)
		x.Randn(rng, 1)
		w := New(outC, inC, k, k)
		w.Randn(rng, 1)
		b := New(outC)
		b.Randn(rng, 1)
		direct := Conv2D(x, w, b, s)
		gemm := Conv2DIm2col(x, w, b, s)
		if d := direct.MaxAbsDiff(gemm); d > 1e-9 {
			t.Errorf("trial %d: im2col differs from direct by %g", trial, d)
		}
	}
}

func TestConvGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := ConvSpec{InC: 2, OutC: 3, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	x := New(2, 2, 5, 5)
	x.Randn(rng, 1)
	w := New(3, 2, 3, 3)
	w.Randn(rng, 0.5)
	b := New(3)
	b.Randn(rng, 0.1)

	// Loss = sum(conv output * r) for a fixed random r.
	y := Conv2D(x, w, b, s)
	r := New(y.Shape...)
	r.Randn(rng, 1)
	loss := func() float64 {
		out := Conv2D(x, w, b, s)
		var l float64
		for i := range out.Data {
			l += out.Data[i] * r.Data[i]
		}
		return l
	}
	dx, dw, db := Conv2DBackward(x, w, r, s)

	const eps = 1e-6
	check := func(name string, tt *Tensor, grad *Tensor, samples int) {
		for trial := 0; trial < samples; trial++ {
			i := rng.Intn(len(tt.Data))
			orig := tt.Data[i]
			tt.Data[i] = orig + eps
			lp := loss()
			tt.Data[i] = orig - eps
			lm := loss()
			tt.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - grad.Data[i]); diff > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: numeric %g vs analytic %g", name, i, num, grad.Data[i])
			}
		}
	}
	check("dx", x, dx, 20)
	check("dw", w, dw, 20)
	check("db", b, db, 3)
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, arg := MaxPool2D(x, 2, 2)
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("pool[%d] = %f, want %f", i, y.Data[i], v)
		}
	}
	dy := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := MaxPool2DBackward(dy, arg, x.Shape)
	if dx.At4(0, 0, 1, 1) != 1 || dx.At4(0, 0, 3, 3) != 4 {
		t.Errorf("scatter wrong: %v", dx.Data)
	}
	var sum float64
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 10 {
		t.Errorf("gradient mass = %f, want 10", sum)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := New(1, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	y := GlobalAvgPool(x)
	if y.Data[0] != 1.5 || y.Data[1] != 5.5 {
		t.Errorf("gap = %v", y.Data)
	}
	dy := FromSlice([]float64{4, 8}, 1, 2)
	dx := GlobalAvgPoolBackward(dy, x.Shape)
	if dx.Data[0] != 1 || dx.Data[4] != 2 {
		t.Errorf("gap bwd = %v", dx.Data)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("c[%d] = %f, want %f", i, c.Data[i], v)
		}
	}
}

func TestConvSpecOutDims(t *testing.T) {
	f := func(h8, k8, s8, p8 uint8) bool {
		h := int(h8%32) + 8
		k := int(k8%3)*2 + 1 // 1,3,5
		st := int(s8%2) + 1
		p := int(p8 % 2)
		s := ConvSpec{InC: 1, OutC: 1, KH: k, KW: k, StrideH: st, StrideW: st, PadH: p, PadW: p}
		oh, ow := s.OutDims(h, h)
		return oh == (h+2*p-k)/st+1 && ow == oh && oh > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
