//go:build !amd64 || !gc

package tensor

// Portable stubs: simdAvail stays false, so these are unreachable — the
// dispatchers fall through to the register-tiled Go kernels.

func simdPanel(mr, m, pk, jn int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, load bool) {
	panic("tensor: simdPanel without SIMD support")
}

func simdPanelT(iLo, iHi, k, n int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	panic("tensor: simdPanelT without SIMD support")
}

func fmaNT4(a *float64, b *float64, ldb int, k int, c *float64) {
	panic("tensor: fmaNT4 without SIMD support")
}
