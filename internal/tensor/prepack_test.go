package tensor

import (
	"testing"
)

// TestConv2DFromColMatchesFused pins pack-then-consume (Im2ColPack +
// Conv2DFromColInto — the double-buffered pipeline's split) bit-identical to
// the single-pass fused call, for both epilogues and across thread counts.
func TestConv2DFromColMatchesFused(t *testing.T) {
	defer SetThreads(SetThreads(1))
	for _, relu := range []bool{false, true} {
		for _, threads := range []int{1, 3} {
			SetThreads(threads)
			x, w, bias, s := fusedConvCase(11)
			oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
			want := New(x.Shape[0], s.OutC, oh, ow)
			Conv2DFusedInto(want, x, w, bias, s, relu)

			col := make([]float64, colLen(x.Shape[0], s, oh, ow))
			Im2ColPack(col, x, s)
			got := New(want.Shape...)
			Conv2DFromColInto(got, col, w, bias, s, relu)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("relu=%v threads=%d: prepacked conv not bit-identical at %d (%g vs %g)",
						relu, threads, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestIm2ColPackMatchesRetainedCol pins Im2ColPack's buffer byte-identical
// to the packing Conv2DFusedColInto retains for the backward pass — the
// pipeline hands its pre-packed buffer to that same backward.
func TestIm2ColPackMatchesRetainedCol(t *testing.T) {
	x, w, bias, s := fusedConvCase(12)
	oh, ow := s.OutDims(x.Shape[2], x.Shape[3])
	out := New(x.Shape[0], s.OutC, oh, ow)
	retained := make([]float64, colLen(x.Shape[0], s, oh, ow))
	Conv2DFusedColInto(out, x, w, bias, s, false, retained)

	packed := make([]float64, len(retained))
	Im2ColPack(packed, x, s)
	for i := range retained {
		if packed[i] != retained[i] {
			t.Fatalf("im2col packings differ at %d", i)
		}
	}
}
