package models

import (
	"testing"

	"repro/internal/graph"
)

func TestAllNetworksValidate(t *testing.T) {
	for name, net := range All() {
		if err := net.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParameterCounts(t *testing.T) {
	// Reference counts are the published conv+fc weight totals; our IR adds
	// per-channel norm scale/shift, and the flattened inception modules
	// duplicate a few 1x1 convolutions, so compare within a tolerance.
	cases := []struct {
		name string
		want int64 // approximate published parameter count
		tol  float64
	}{
		{"resnet50", 25.5e6, 0.05},
		{"resnet101", 44.5e6, 0.05},
		{"resnet152", 60.2e6, 0.05},
		// The inception targets carry a wider tolerance: flattening the
		// nested output splits duplicates a few parent convolutions (see the
		// package comment), adding ~20% parameters.
		{"inceptionv3", 26.5e6, 0.15},
		{"inceptionv4", 46e6, 0.12},
		{"alexnet", 61e6, 0.10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net, err := Build(c.name)
			if err != nil {
				t.Fatal(err)
			}
			got := float64(net.Params())
			lo, hi := float64(c.want)*(1-c.tol), float64(c.want)*(1+c.tol)
			if got < lo || got > hi {
				t.Errorf("params = %.2fM, want %.1fM ±%.0f%%",
					got/1e6, float64(c.want)/1e6, c.tol*100)
			}
		})
	}
}

func TestResNet50Structure(t *testing.T) {
	net := ResNet50()
	if net.Output() != (graph.Shape{C: 1000, H: 1, W: 1}) {
		t.Errorf("output = %v, want 1000x1x1", net.Output())
	}
	// 2 stem blocks + 16 residual blocks + avgpool + fc = 20.
	if got := len(net.Blocks); got != 20 {
		t.Errorf("blocks = %d, want 20", got)
	}
	// Residual block count and stage output shapes.
	res := 0
	for _, b := range net.Blocks {
		if b.Merge == graph.MergeAdd {
			res++
		}
	}
	if res != 16 {
		t.Errorf("residual blocks = %d, want 16", res)
	}
	if b := net.BlockByName("res2a"); b == nil || b.Out != (graph.Shape{C: 256, H: 56, W: 56}) {
		t.Errorf("res2a out = %v, want 256x56x56", b.Out)
	}
	if b := net.BlockByName("res5c"); b == nil || b.Out != (graph.Shape{C: 2048, H: 7, W: 7}) {
		t.Errorf("res5c out = %v, want 2048x7x7", b.Out)
	}
}

func TestResNetDepthOrdering(t *testing.T) {
	l50 := len(ResNet50().Layers())
	l101 := len(ResNet101().Layers())
	l152 := len(ResNet152().Layers())
	if !(l50 < l101 && l101 < l152) {
		t.Errorf("layer counts not increasing: %d, %d, %d", l50, l101, l152)
	}
	m50 := ResNet50().MACs(1)
	m101 := ResNet101().MACs(1)
	m152 := ResNet152().MACs(1)
	if !(m50 < m101 && m101 < m152) {
		t.Errorf("MACs not increasing: %d, %d, %d", m50, m101, m152)
	}
}

func TestResNet50MACs(t *testing.T) {
	// Published forward GEMM cost of ResNet-50 at 224x224 is ~4.1 GMACs;
	// our count includes the small vector-layer op counts too.
	got := float64(ResNet50().MACs(1))
	if got < 3.8e9 || got > 4.6e9 {
		t.Errorf("ResNet50 MACs/sample = %.2fG, want ~4.1G", got/1e9)
	}
}

func TestInceptionV3Structure(t *testing.T) {
	net := InceptionV3()
	if net.Output() != (graph.Shape{C: 1000, H: 1, W: 1}) {
		t.Errorf("output = %v", net.Output())
	}
	// Spot-check canonical module shapes.
	if b := net.BlockByName("mixA1"); b == nil || b.Out != (graph.Shape{C: 256, H: 35, W: 35}) {
		t.Fatalf("mixA1 out = %v, want 256x35x35", b.Out)
	}
	if b := net.BlockByName("mixA3"); b == nil || b.Out != (graph.Shape{C: 288, H: 35, W: 35}) {
		t.Fatalf("mixA3 out = %v, want 288x35x35", b.Out)
	}
	if b := net.BlockByName("redA"); b == nil || b.Out != (graph.Shape{C: 768, H: 17, W: 17}) {
		t.Fatalf("redA out = %v, want 768x17x17", b.Out)
	}
	if b := net.BlockByName("mixB4"); b == nil || b.Out != (graph.Shape{C: 768, H: 17, W: 17}) {
		t.Fatalf("mixB4 out = %v, want 768x17x17", b.Out)
	}
	if b := net.BlockByName("redB"); b == nil || b.Out != (graph.Shape{C: 1280, H: 8, W: 8}) {
		t.Fatalf("redB out = %v, want 1280x8x8", b.Out)
	}
	if b := net.BlockByName("mixE2"); b == nil || b.Out != (graph.Shape{C: 2048, H: 8, W: 8}) {
		t.Fatalf("mixE2 out = %v, want 2048x8x8", b.Out)
	}
}

func TestInceptionV4Structure(t *testing.T) {
	net := InceptionV4()
	if b := net.BlockByName("mix5a"); b == nil || b.Out != (graph.Shape{C: 384, H: 35, W: 35}) {
		t.Fatalf("mix5a out = %v, want 384x35x35", b.Out)
	}
	if b := net.BlockByName("mixA4"); b == nil || b.Out != (graph.Shape{C: 384, H: 35, W: 35}) {
		t.Fatalf("mixA4 out = %v, want 384x35x35", b.Out)
	}
	if b := net.BlockByName("redA"); b == nil || b.Out != (graph.Shape{C: 1024, H: 17, W: 17}) {
		t.Fatalf("redA out = %v, want 1024x17x17", b.Out)
	}
	if b := net.BlockByName("mixB7"); b == nil || b.Out != (graph.Shape{C: 1024, H: 17, W: 17}) {
		t.Fatalf("mixB7 out = %v, want 1024x17x17", b.Out)
	}
	if b := net.BlockByName("redB"); b == nil || b.Out != (graph.Shape{C: 1536, H: 8, W: 8}) {
		t.Fatalf("redB out = %v, want 1536x8x8", b.Out)
	}
	if b := net.BlockByName("mixC3"); b == nil || b.Out != (graph.Shape{C: 1536, H: 8, W: 8}) {
		t.Fatalf("mixC3 out = %v, want 1536x8x8", b.Out)
	}
}

func TestAlexNetStructure(t *testing.T) {
	net := AlexNet()
	layers := net.Layers()
	convs, fcs, norms := 0, 0, 0
	for _, l := range layers {
		switch l.Kind {
		case graph.Conv:
			convs++
		case graph.FC:
			fcs++
		case graph.Norm:
			norms++
		}
	}
	if convs != 5 || fcs != 3 || norms != 2 {
		t.Errorf("conv/fc/norm = %d/%d/%d, want 5/3/2", convs, fcs, norms)
	}
	// FC weights dominate AlexNet: >80% of all parameters.
	var fcParams int64
	for _, l := range layers {
		if l.Kind == graph.FC {
			fcParams += l.Params()
		}
	}
	if frac := float64(fcParams) / float64(net.Params()); frac < 0.8 {
		t.Errorf("FC param fraction = %.2f, want > 0.8", frac)
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("vgg16"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestDefaultBatch(t *testing.T) {
	if DefaultBatch("resnet50") != 32 || DefaultBatch("alexnet") != 64 {
		t.Error("default batch sizes wrong")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("names = %v, want 6 entries", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
	for _, n := range names {
		if _, err := Build(n); err != nil {
			t.Errorf("Build(%s): %v", n, err)
		}
	}
}

func TestInterLayerFootprintsDecreaseWithDepth(t *testing.T) {
	// Down-sampling must shrink per-sample inter-layer data volume from the
	// early stages to the late stages — the property MBS exploits (Fig. 4).
	net := ResNet50()
	early := net.BlockByName("res2a").FootprintPerSample(true)
	late := net.BlockByName("res5c").FootprintPerSample(true)
	if late >= early {
		t.Errorf("late footprint %d >= early %d", late, early)
	}
}

func TestNormGroupsDivideChannels(t *testing.T) {
	for name, net := range All() {
		for _, l := range net.Layers() {
			if l.Kind == graph.Norm && l.In.C%l.NormGroups != 0 {
				t.Errorf("%s/%s: groups %d does not divide channels %d",
					name, l.Name, l.NormGroups, l.In.C)
			}
		}
	}
}
