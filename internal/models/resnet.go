package models

import (
	"fmt"

	"repro/internal/graph"
)

// ResNet50 builds ResNet-50 for 224x224 inputs (He et al. 2016).
func ResNet50() *graph.Network { return resNet("resnet50", [4]int{3, 4, 6, 3}) }

// ResNet101 builds ResNet-101.
func ResNet101() *graph.Network { return resNet("resnet101", [4]int{3, 4, 23, 3}) }

// ResNet152 builds ResNet-152.
func ResNet152() *graph.Network { return resNet("resnet152", [4]int{3, 8, 36, 3}) }

// resNet assembles a bottleneck ResNet with the given per-stage block
// counts. Stage s uses mid channels 64·2^s and output channels 256·2^s;
// stages 2–4 downsample with stride 2 in their first block.
func resNet(name string, stages [4]int) *graph.Network {
	input := graph.Shape{C: 3, H: 224, W: 224}
	var blocks []*graph.Block

	// Stem: 7x7/2 conv, norm, ReLU, 3x3/2 max pool.
	stem := convBNActSquare("conv1", input, 64, 7, 2, 3)
	pool := graph.NewPool("pool1", out(stem), graph.MaxPool, 3, 2, 1)
	blocks = append(blocks,
		graph.NewPlainBlock("stem", stem...),
		graph.NewPlainBlock("pool1", pool),
	)

	cur := pool.Out
	for s := 0; s < 4; s++ {
		mid := 64 << s
		outC := 256 << s
		for b := 0; b < stages[s]; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			bn := fmt.Sprintf("res%d%c", s+2, 'a'+b)
			blk := bottleneck(bn, cur, mid, outC, stride)
			blocks = append(blocks, blk)
			cur = blk.Out
		}
	}

	gap := graph.NewPool("avgpool", cur, graph.GlobalAvgPool, 0, 0, 0)
	fc := graph.NewFC("fc1000", gap.Out, 1000)
	blocks = append(blocks,
		graph.NewPlainBlock("avgpool", gap),
		graph.NewPlainBlock("fc", fc),
	)
	return graph.MustNetwork(name, input, blocks...)
}

// bottleneck builds one ResNet bottleneck residual block:
// 1x1 reduce → 3x3 (strided when downsampling) → 1x1 expand on the main
// path, identity or projection shortcut, ReLU after the merge.
func bottleneck(name string, in graph.Shape, mid, outC, stride int) *graph.Block {
	var main []*graph.Layer
	main = append(main, convBNActSquare(name+"_a", in, mid, 1, 1, 0)...)
	main = append(main, convBNActSquare(name+"_b", out(main), mid, 3, stride, 1)...)
	c := graph.NewConvSquare(name+"_c_conv", out(main), outC, 1, 1, 0)
	n := graph.NewNorm(name+"_c_norm", c.Out, normGroups(outC))
	main = append(main, c, n)

	var shortcut []*graph.Layer
	if stride != 1 || in.C != outC {
		sc := graph.NewConvSquare(name+"_sc_conv", in, outC, 1, stride, 0)
		sn := graph.NewNorm(name+"_sc_norm", sc.Out, normGroups(outC))
		shortcut = []*graph.Layer{sc, sn}
	}

	post := graph.NewAct(name+"_relu", n.Out)
	return graph.NewResidualBlock(name, in, main, shortcut, post)
}
