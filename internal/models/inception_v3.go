package models

import (
	"fmt"

	"repro/internal/graph"
)

// InceptionV3 builds Inception-v3 for 299x299 inputs (Szegedy et al. 2015).
func InceptionV3() *graph.Network {
	input := graph.Shape{C: 3, H: 299, W: 299}
	var blocks []*graph.Block
	add := func(b *graph.Block) graph.Shape {
		blocks = append(blocks, b)
		return b.Out
	}

	// Stem.
	cur := add(graph.NewPlainBlock("stem1",
		concat3(
			convBNActSquare("conv1", input, 32, 3, 2, 0),
			convBNActSquare("conv2", graph.Shape{C: 32, H: 149, W: 149}, 32, 3, 1, 0),
			convBNActSquare("conv3", graph.Shape{C: 32, H: 147, W: 147}, 64, 3, 1, 1),
		)...))
	cur = add(graph.NewPlainBlock("pool1", graph.NewPool("pool1", cur, graph.MaxPool, 3, 2, 0)))
	cur = add(graph.NewPlainBlock("stem2",
		concat2(
			convBNActSquare("conv4", cur, 80, 1, 1, 0),
			convBNActSquare("conv5", graph.Shape{C: 80, H: 73, W: 73}, 192, 3, 1, 0),
		)...))
	cur = add(graph.NewPlainBlock("pool2", graph.NewPool("pool2", cur, graph.MaxPool, 3, 2, 0)))

	// 3x Inception-A (mixed 5b,5c,5d), pool-branch channels 32,64,64.
	for i, pf := range []int{32, 64, 64} {
		cur = add(inceptionA(fmt.Sprintf("mixA%d", i+1), cur, pf))
	}
	// Reduction-A (mixed 6a).
	cur = add(reductionAv3("redA", cur))
	// 4x Inception-B/C-style 7x7 factorized blocks (mixed 6b..6e).
	for i, c7 := range []int{128, 160, 160, 192} {
		cur = add(inceptionC7(fmt.Sprintf("mixB%d", i+1), cur, c7))
	}
	// Reduction-B (mixed 7a).
	cur = add(reductionBv3("redB", cur))
	// 2x Inception-E (mixed 7b,7c).
	for i := 0; i < 2; i++ {
		cur = add(inceptionE(fmt.Sprintf("mixE%d", i+1), cur))
	}

	gap := graph.NewPool("avgpool", cur, graph.GlobalAvgPool, 0, 0, 0)
	fc := graph.NewFC("fc1000", gap.Out, 1000)
	blocks = append(blocks,
		graph.NewPlainBlock("avgpool", gap),
		graph.NewPlainBlock("fc", fc),
	)
	return graph.MustNetwork("inceptionv3", input, blocks...)
}

func concat2(a, b []*graph.Layer) []*graph.Layer { return append(append([]*graph.Layer{}, a...), b...) }

func concat3(a, b, c []*graph.Layer) []*graph.Layer {
	return append(concat2(a, b), c...)
}

// inceptionA: 1x1 / 5x5 / double-3x3 / pool-proj branches (out 224+pf ch).
func inceptionA(name string, in graph.Shape, poolFeatures int) *graph.Block {
	b1 := convBNActSquare(name+"_b1x1", in, 64, 1, 1, 0)

	b2 := convBNActSquare(name+"_b5a", in, 48, 1, 1, 0)
	b2 = append(b2, convBNActSquare(name+"_b5b", out(b2), 64, 5, 1, 2)...)

	b3 := convBNActSquare(name+"_b3a", in, 64, 1, 1, 0)
	b3 = append(b3, convBNActSquare(name+"_b3b", out(b3), 96, 3, 1, 1)...)
	b3 = append(b3, convBNActSquare(name+"_b3c", out(b3), 96, 3, 1, 1)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.AvgPool, 3, 1, 1)}
	bp = append(bp, convBNActSquare(name+"_bpool", out(bp), poolFeatures, 1, 1, 0)...)

	return graph.NewInceptionBlock(name, in, b1, b2, b3, bp)
}

// reductionAv3: strided 3x3 / double-3x3 / max-pool branches (35→17).
func reductionAv3(name string, in graph.Shape) *graph.Block {
	b1 := convBNActSquare(name+"_b3", in, 384, 3, 2, 0)

	b2 := convBNActSquare(name+"_b3da", in, 64, 1, 1, 0)
	b2 = append(b2, convBNActSquare(name+"_b3db", out(b2), 96, 3, 1, 1)...)
	b2 = append(b2, convBNActSquare(name+"_b3dc", out(b2), 96, 3, 2, 0)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.MaxPool, 3, 2, 0)}

	return graph.NewInceptionBlock(name, in, b1, b2, bp)
}

// inceptionC7: factorized 7x7 branches with c7 intermediate channels.
func inceptionC7(name string, in graph.Shape, c7 int) *graph.Block {
	b1 := convBNActSquare(name+"_b1x1", in, 192, 1, 1, 0)

	b2 := convBNActSquare(name+"_b7a", in, c7, 1, 1, 0)
	b2 = append(b2, convBNAct(name+"_b7b", out(b2), c7, 1, 7, 1, 1, 0, 3)...)
	b2 = append(b2, convBNAct(name+"_b7c", out(b2), 192, 7, 1, 1, 1, 3, 0)...)

	b3 := convBNActSquare(name+"_b7da", in, c7, 1, 1, 0)
	b3 = append(b3, convBNAct(name+"_b7db", out(b3), c7, 7, 1, 1, 1, 3, 0)...)
	b3 = append(b3, convBNAct(name+"_b7dc", out(b3), c7, 1, 7, 1, 1, 0, 3)...)
	b3 = append(b3, convBNAct(name+"_b7dd", out(b3), c7, 7, 1, 1, 1, 3, 0)...)
	b3 = append(b3, convBNAct(name+"_b7de", out(b3), 192, 1, 7, 1, 1, 0, 3)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.AvgPool, 3, 1, 1)}
	bp = append(bp, convBNActSquare(name+"_bpool", out(bp), 192, 1, 1, 0)...)

	return graph.NewInceptionBlock(name, in, b1, b2, b3, bp)
}

// reductionBv3: 17→8 downsampling block.
func reductionBv3(name string, in graph.Shape) *graph.Block {
	b1 := convBNActSquare(name+"_b3a", in, 192, 1, 1, 0)
	b1 = append(b1, convBNActSquare(name+"_b3b", out(b1), 320, 3, 2, 0)...)

	b2 := convBNActSquare(name+"_b7a", in, 192, 1, 1, 0)
	b2 = append(b2, convBNAct(name+"_b7b", out(b2), 192, 1, 7, 1, 1, 0, 3)...)
	b2 = append(b2, convBNAct(name+"_b7c", out(b2), 192, 7, 1, 1, 1, 3, 0)...)
	b2 = append(b2, convBNActSquare(name+"_b7d", out(b2), 192, 3, 2, 0)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.MaxPool, 3, 2, 0)}

	return graph.NewInceptionBlock(name, in, b1, b2, bp)
}

// inceptionE: the widest module (output 2048 channels at 8x8). The nested
// 1x3/3x1 output splits of the published module are flattened into sibling
// branches (duplicating the parent 1x1/3x3 convolution), keeping the block
// a single split/merge level; see the package comment.
func inceptionE(name string, in graph.Shape) *graph.Block {
	b1 := convBNActSquare(name+"_b1x1", in, 320, 1, 1, 0)

	b2a := convBNActSquare(name+"_b3a", in, 384, 1, 1, 0)
	b2a = append(b2a, convBNAct(name+"_b3a13", out(b2a), 384, 1, 3, 1, 1, 0, 1)...)
	b2b := convBNActSquare(name+"_b3b", in, 384, 1, 1, 0)
	b2b = append(b2b, convBNAct(name+"_b3b31", out(b2b), 384, 3, 1, 1, 1, 1, 0)...)

	b3a := convBNActSquare(name+"_bd1", in, 448, 1, 1, 0)
	b3a = append(b3a, convBNActSquare(name+"_bd3", out(b3a), 384, 3, 1, 1)...)
	b3a = append(b3a, convBNAct(name+"_bd13", out(b3a), 384, 1, 3, 1, 1, 0, 1)...)
	b3b := convBNActSquare(name+"_be1", in, 448, 1, 1, 0)
	b3b = append(b3b, convBNActSquare(name+"_be3", out(b3b), 384, 3, 1, 1)...)
	b3b = append(b3b, convBNAct(name+"_be31", out(b3b), 384, 3, 1, 1, 1, 1, 0)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.AvgPool, 3, 1, 1)}
	bp = append(bp, convBNActSquare(name+"_bpool", out(bp), 192, 1, 1, 0)...)

	return graph.NewInceptionBlock(name, in, b1, b2a, b2b, b3a, b3b, bp)
}
