package models

import (
	"repro/internal/graph"
)

// AlexNet builds AlexNet for 227x227 inputs (Krizhevsky et al. 2012). The
// local response normalization layers after conv1 and conv2 are modelled as
// Norm layers (their memory behaviour — two passes over the input — matches
// the paper's normalization accounting). The three large fully connected
// layers are what drives the MBS-FS weight-traffic blow-up in Fig. 10c.
func AlexNet() *graph.Network {
	input := graph.Shape{C: 3, H: 227, W: 227}
	var blocks []*graph.Block
	add := func(b *graph.Block) graph.Shape {
		blocks = append(blocks, b)
		return b.Out
	}

	c1 := graph.NewConvSquare("conv1", input, 96, 11, 4, 0)
	n1 := graph.NewNorm("norm1", c1.Out, normGroups(96))
	a1 := graph.NewAct("relu1", n1.Out)
	cur := add(graph.NewPlainBlock("conv1", c1, n1, a1))
	cur = add(graph.NewPlainBlock("pool1", graph.NewPool("pool1", cur, graph.MaxPool, 3, 2, 0)))

	c2 := graph.NewConvSquare("conv2", cur, 256, 5, 1, 2)
	n2 := graph.NewNorm("norm2", c2.Out, normGroups(256))
	a2 := graph.NewAct("relu2", n2.Out)
	cur = add(graph.NewPlainBlock("conv2", c2, n2, a2))
	cur = add(graph.NewPlainBlock("pool2", graph.NewPool("pool2", cur, graph.MaxPool, 3, 2, 0)))

	c3 := graph.NewConvSquare("conv3", cur, 384, 3, 1, 1)
	a3 := graph.NewAct("relu3", c3.Out)
	cur = add(graph.NewPlainBlock("conv3", c3, a3))

	c4 := graph.NewConvSquare("conv4", cur, 384, 3, 1, 1)
	a4 := graph.NewAct("relu4", c4.Out)
	cur = add(graph.NewPlainBlock("conv4", c4, a4))

	c5 := graph.NewConvSquare("conv5", cur, 256, 3, 1, 1)
	a5 := graph.NewAct("relu5", c5.Out)
	cur = add(graph.NewPlainBlock("conv5", c5, a5))
	cur = add(graph.NewPlainBlock("pool5", graph.NewPool("pool5", cur, graph.MaxPool, 3, 2, 0)))

	f6 := graph.NewFC("fc6", cur, 4096)
	a6 := graph.NewAct("relu6", f6.Out)
	cur = add(graph.NewPlainBlock("fc6", f6, a6))

	f7 := graph.NewFC("fc7", cur, 4096)
	a7 := graph.NewAct("relu7", f7.Out)
	cur = add(graph.NewPlainBlock("fc7", f7, a7))

	f8 := graph.NewFC("fc8", cur, 1000)
	add(graph.NewPlainBlock("fc8", f8))

	return graph.MustNetwork("alexnet", input, blocks...)
}
