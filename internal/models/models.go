// Package models builds the six CNNs evaluated in the paper (ResNet-50/101/
// 152, Inception-v3, Inception-v4, AlexNet) as graph.Network values.
//
// The architectures follow the published definitions (He et al. 2016;
// Szegedy et al. 2015, 2017; Krizhevsky et al. 2012). One simplification is
// documented at its site: the nested output splits inside Inception-E /
// Inception-C(v4) modules are flattened into sibling top-level branches,
// which duplicates one 1x1 convolution's MACs per flattened pair but keeps
// the block IR a single split/merge level, matching the footprint rules of
// the paper's Eq. 2.
package models

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// BuilderFunc constructs a network.
type BuilderFunc func() *graph.Network

var registry = map[string]BuilderFunc{
	"resnet50":    ResNet50,
	"resnet101":   ResNet101,
	"resnet152":   ResNet152,
	"inceptionv3": InceptionV3,
	"inceptionv4": InceptionV4,
	"alexnet":     AlexNet,
}

// Names returns the registered model names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build constructs a registered network by name.
func Build(name string) (*graph.Network, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown network %q (have %v)", name, Names())
	}
	return f(), nil
}

// All builds every registered network, keyed by name.
func All() map[string]*graph.Network {
	out := make(map[string]*graph.Network, len(registry))
	for k, f := range registry {
		out[k] = f()
	}
	return out
}

// DefaultBatch returns the paper's per-core mini-batch size for a network:
// 32 for the deep CNNs, 64 for AlexNet (Section 5).
func DefaultBatch(name string) int {
	if name == "alexnet" {
		return 64
	}
	return 32
}

// normGroups picks a GN group count that divides the channel count,
// preferring the conventional 32 groups.
func normGroups(c int) int {
	for _, g := range []int{32, 16, 8, 4, 2} {
		if c%g == 0 {
			return g
		}
	}
	return 1
}

// convBNAct appends conv → norm → ReLU with shared naming and returns the
// layer triple.
func convBNAct(name string, in graph.Shape, outC, kh, kw, sh, sw, ph, pw int) []*graph.Layer {
	c := graph.NewConv(name+"_conv", in, outC, kh, kw, sh, sw, ph, pw)
	n := graph.NewNorm(name+"_norm", c.Out, normGroups(outC))
	a := graph.NewAct(name+"_relu", n.Out)
	return []*graph.Layer{c, n, a}
}

// convBNActSquare is convBNAct with square geometry.
func convBNActSquare(name string, in graph.Shape, outC, k, stride, pad int) []*graph.Layer {
	return convBNAct(name, in, outC, k, k, stride, stride, pad, pad)
}

// out returns the output shape of a layer run.
func out(layers []*graph.Layer) graph.Shape { return layers[len(layers)-1].Out }
