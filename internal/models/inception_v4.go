package models

import (
	"fmt"

	"repro/internal/graph"
)

// InceptionV4 builds Inception-v4 for 299x299 inputs (Szegedy et al. 2017).
func InceptionV4() *graph.Network {
	input := graph.Shape{C: 3, H: 299, W: 299}
	var blocks []*graph.Block
	add := func(b *graph.Block) graph.Shape {
		blocks = append(blocks, b)
		return b.Out
	}

	// Stem: three plain convolutions, then three mixed (branching) stages.
	cur := input
	s1 := convBNActSquare("conv1", cur, 32, 3, 2, 0)
	s2 := convBNActSquare("conv2", out(s1), 32, 3, 1, 0)
	s3 := convBNActSquare("conv3", out(s2), 64, 3, 1, 1)
	cur = add(graph.NewPlainBlock("stem1", concat3(s1, s2, s3)...))

	// mixed_3a: max-pool vs strided conv, concat to 160 channels at 73x73.
	cur = add(graph.NewInceptionBlock("mix3a", cur,
		[]*graph.Layer{graph.NewPool("mix3a_pool", cur, graph.MaxPool, 3, 2, 0)},
		convBNActSquare("mix3a_conv", cur, 96, 3, 2, 0),
	))

	// mixed_4a: two conv paths, concat to 192 channels at 71x71.
	p1 := convBNActSquare("mix4a_a1", cur, 64, 1, 1, 0)
	p1 = append(p1, convBNActSquare("mix4a_a2", out(p1), 96, 3, 1, 0)...)
	p2 := convBNActSquare("mix4a_b1", cur, 64, 1, 1, 0)
	p2 = append(p2, convBNAct("mix4a_b2", out(p2), 64, 1, 7, 1, 1, 0, 3)...)
	p2 = append(p2, convBNAct("mix4a_b3", out(p2), 64, 7, 1, 1, 1, 3, 0)...)
	p2 = append(p2, convBNActSquare("mix4a_b4", out(p2), 96, 3, 1, 0)...)
	cur = add(graph.NewInceptionBlock("mix4a", cur, p1, p2))

	// mixed_5a: strided conv vs max-pool, concat to 384 channels at 35x35.
	cur = add(graph.NewInceptionBlock("mix5a", cur,
		convBNActSquare("mix5a_conv", cur, 192, 3, 2, 0),
		[]*graph.Layer{graph.NewPool("mix5a_pool", cur, graph.MaxPool, 3, 2, 0)},
	))

	// 4x Inception-A.
	for i := 0; i < 4; i++ {
		cur = add(inceptionAv4(fmt.Sprintf("mixA%d", i+1), cur))
	}
	cur = add(reductionAv4("redA", cur))
	// 7x Inception-B.
	for i := 0; i < 7; i++ {
		cur = add(inceptionBv4(fmt.Sprintf("mixB%d", i+1), cur))
	}
	cur = add(reductionBv4("redB", cur))
	// 3x Inception-C.
	for i := 0; i < 3; i++ {
		cur = add(inceptionCv4(fmt.Sprintf("mixC%d", i+1), cur))
	}

	gap := graph.NewPool("avgpool", cur, graph.GlobalAvgPool, 0, 0, 0)
	fc := graph.NewFC("fc1000", gap.Out, 1000)
	blocks = append(blocks,
		graph.NewPlainBlock("avgpool", gap),
		graph.NewPlainBlock("fc", fc),
	)
	return graph.MustNetwork("inceptionv4", input, blocks...)
}

// inceptionAv4: 35x35 module, 384 -> 384 channels.
func inceptionAv4(name string, in graph.Shape) *graph.Block {
	b1 := convBNActSquare(name+"_b1x1", in, 96, 1, 1, 0)

	b2 := convBNActSquare(name+"_b3a", in, 64, 1, 1, 0)
	b2 = append(b2, convBNActSquare(name+"_b3b", out(b2), 96, 3, 1, 1)...)

	b3 := convBNActSquare(name+"_b3da", in, 64, 1, 1, 0)
	b3 = append(b3, convBNActSquare(name+"_b3db", out(b3), 96, 3, 1, 1)...)
	b3 = append(b3, convBNActSquare(name+"_b3dc", out(b3), 96, 3, 1, 1)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.AvgPool, 3, 1, 1)}
	bp = append(bp, convBNActSquare(name+"_bpool", out(bp), 96, 1, 1, 0)...)

	return graph.NewInceptionBlock(name, in, b1, b2, b3, bp)
}

// reductionAv4: 35 -> 17, 384 -> 1024 channels.
func reductionAv4(name string, in graph.Shape) *graph.Block {
	b1 := convBNActSquare(name+"_b3", in, 384, 3, 2, 0)

	b2 := convBNActSquare(name+"_b3da", in, 192, 1, 1, 0)
	b2 = append(b2, convBNActSquare(name+"_b3db", out(b2), 224, 3, 1, 1)...)
	b2 = append(b2, convBNActSquare(name+"_b3dc", out(b2), 256, 3, 2, 0)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.MaxPool, 3, 2, 0)}

	return graph.NewInceptionBlock(name, in, b1, b2, bp)
}

// inceptionBv4: 17x17 module, 1024 -> 1024 channels.
func inceptionBv4(name string, in graph.Shape) *graph.Block {
	b1 := convBNActSquare(name+"_b1x1", in, 384, 1, 1, 0)

	b2 := convBNActSquare(name+"_b7a", in, 192, 1, 1, 0)
	b2 = append(b2, convBNAct(name+"_b7b", out(b2), 224, 1, 7, 1, 1, 0, 3)...)
	b2 = append(b2, convBNAct(name+"_b7c", out(b2), 256, 7, 1, 1, 1, 3, 0)...)

	b3 := convBNActSquare(name+"_b7da", in, 192, 1, 1, 0)
	b3 = append(b3, convBNAct(name+"_b7db", out(b3), 192, 7, 1, 1, 1, 3, 0)...)
	b3 = append(b3, convBNAct(name+"_b7dc", out(b3), 224, 1, 7, 1, 1, 0, 3)...)
	b3 = append(b3, convBNAct(name+"_b7dd", out(b3), 224, 7, 1, 1, 1, 3, 0)...)
	b3 = append(b3, convBNAct(name+"_b7de", out(b3), 256, 1, 7, 1, 1, 0, 3)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.AvgPool, 3, 1, 1)}
	bp = append(bp, convBNActSquare(name+"_bpool", out(bp), 128, 1, 1, 0)...)

	return graph.NewInceptionBlock(name, in, b1, b2, b3, bp)
}

// reductionBv4: 17 -> 8, 1024 -> 1536 channels.
func reductionBv4(name string, in graph.Shape) *graph.Block {
	b1 := convBNActSquare(name+"_b3a", in, 192, 1, 1, 0)
	b1 = append(b1, convBNActSquare(name+"_b3b", out(b1), 192, 3, 2, 0)...)

	b2 := convBNActSquare(name+"_b7a", in, 256, 1, 1, 0)
	b2 = append(b2, convBNAct(name+"_b7b", out(b2), 256, 1, 7, 1, 1, 0, 3)...)
	b2 = append(b2, convBNAct(name+"_b7c", out(b2), 320, 7, 1, 1, 1, 3, 0)...)
	b2 = append(b2, convBNActSquare(name+"_b7d", out(b2), 320, 3, 2, 0)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.MaxPool, 3, 2, 0)}

	return graph.NewInceptionBlock(name, in, b1, b2, bp)
}

// inceptionCv4: 8x8 module, 1536 -> 1536 channels. Nested output splits are
// flattened into sibling branches (see package comment).
func inceptionCv4(name string, in graph.Shape) *graph.Block {
	b1 := convBNActSquare(name+"_b1x1", in, 256, 1, 1, 0)

	b2a := convBNActSquare(name+"_b3a", in, 384, 1, 1, 0)
	b2a = append(b2a, convBNAct(name+"_b3a13", out(b2a), 256, 1, 3, 1, 1, 0, 1)...)
	b2b := convBNActSquare(name+"_b3b", in, 384, 1, 1, 0)
	b2b = append(b2b, convBNAct(name+"_b3b31", out(b2b), 256, 3, 1, 1, 1, 1, 0)...)

	b3a := convBNActSquare(name+"_bd1", in, 384, 1, 1, 0)
	b3a = append(b3a, convBNAct(name+"_bd31", out(b3a), 448, 3, 1, 1, 1, 1, 0)...)
	b3a = append(b3a, convBNAct(name+"_bd13", out(b3a), 512, 1, 3, 1, 1, 0, 1)...)
	b3a = append(b3a, convBNAct(name+"_bd13b", out(b3a), 256, 1, 3, 1, 1, 0, 1)...)
	b3b := convBNActSquare(name+"_be1", in, 384, 1, 1, 0)
	b3b = append(b3b, convBNAct(name+"_be31", out(b3b), 448, 3, 1, 1, 1, 1, 0)...)
	b3b = append(b3b, convBNAct(name+"_be13", out(b3b), 512, 1, 3, 1, 1, 0, 1)...)
	b3b = append(b3b, convBNAct(name+"_be31b", out(b3b), 256, 3, 1, 1, 1, 1, 0)...)

	bp := []*graph.Layer{graph.NewPool(name+"_pool", in, graph.AvgPool, 3, 1, 1)}
	bp = append(bp, convBNActSquare(name+"_bpool", out(bp), 256, 1, 1, 0)...)

	return graph.NewInceptionBlock(name, in, b1, b2a, b2b, b3a, b3b, bp)
}
