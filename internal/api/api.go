// Package api defines the wire types shared by the mbsd HTTP surface: the
// structured error body every endpoint returns, and the job status / stream
// event shapes of the v2 asynchronous API. internal/service and
// internal/jobs both render these; pkg/client mirrors them for consumers
// outside the module, so this package is the single source of truth for the
// field names on the wire.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/report"
)

// Error codes, returned in the "code" field of every error body so clients
// can branch without parsing messages.
const (
	CodeBadRequest      = "bad_request"      // malformed body, unknown format
	CodeUnknownScenario = "unknown_scenario" // scenario not in the registry (404)
	CodeInvalidParams   = "invalid_params"   // scenario exists, params do not validate (422)
	CodeUnknownJob      = "unknown_job"      // job id not found (404)
	CodeNoResult        = "no_result"        // job exists but has no result yet (404)
	CodeRunFailed       = "run_failed"       // the scenario executed and failed
	CodeCancelled       = "cancelled"        // the run or job was cancelled
	CodeUnavailable     = "unavailable"      // queue full / shutting down (503)
	CodeOverloaded      = "overloaded"       // inference admission control shed the request (429 + Retry-After)
	CodeInternal        = "internal"         // rendering or other server-side failure
)

// Error is the structured error body: {"error": ..., "scenario": ..., "code": ...}.
// It implements error so validation layers can return one and HTTP handlers
// can write it with its intended status.
type Error struct {
	Status   int    `json:"-"` // HTTP status; not part of the body
	Message  string `json:"error"`
	Scenario string `json:"scenario,omitempty"`
	Code     string `json:"code"`
}

func (e *Error) Error() string { return e.Message }

// Errorf builds an Error with a formatted message.
func Errorf(status int, code, scenario, format string, args ...any) *Error {
	return &Error{
		Status:   status,
		Code:     code,
		Scenario: scenario,
		Message:  fmt.Sprintf(format, args...),
	}
}

// From coerces err into an *Error, wrapping foreign errors as a 400
// run_failed so every error path produces the structured body.
func From(err error, scenario string) *Error {
	if ae, ok := err.(*Error); ok {
		return ae
	}
	return Errorf(http.StatusBadRequest, CodeRunFailed, scenario, "%s", err)
}

// Write renders e as its JSON body with its HTTP status.
func Write(w http.ResponseWriter, e *Error) {
	status := e.Status
	if status == 0 {
		status = http.StatusBadRequest
	}
	WriteJSON(w, status, e)
}

// WriteJSON writes v through the house JSON renderer with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = report.WriteJSON(w, v)
}

// InferRequest is the POST /v2/infer body: one or more flattened input
// samples for the served model. Each input is batched independently, so
// concurrent clients' samples coalesce into shared forward passes.
type InferRequest struct {
	Inputs [][]float64 `json:"inputs"`
}

// InferResponse is the POST /v2/infer response.
type InferResponse struct {
	// Model is the served model's registry name.
	Model string `json:"model"`
	// Outputs holds one logits row per input, in request order.
	Outputs [][]float64 `json:"outputs"`
	// Argmax is the predicted class per input.
	Argmax []int `json:"argmax"`
	// BatchSizes reports, per input, how many samples rode in the
	// micro-batch that served it — the coalescing observability the load
	// smoke asserts on (>1 under concurrency).
	BatchSizes []int `json:"batch_sizes"`
}

// JobState is a v2 job's lifecycle position.
type JobState string

const (
	JobQueued    JobState = "queued"    // submitted, waiting for an execution slot
	JobRunning   JobState = "running"   // executing on the engine
	JobDone      JobState = "done"      // finished successfully; result available
	JobFailed    JobState = "failed"    // finished with an execution error
	JobCancelled JobState = "cancelled" // cancelled by DELETE or shutdown
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobStatus is the GET /v2/jobs/{id} body (and the job payload of stream
// status/done events, where Result is omitted).
type JobStatus struct {
	ID             string            `json:"id"`
	Scenario       string            `json:"scenario"`
	Params         map[string]string `json:"params,omitempty"`
	State          JobState          `json:"state"`
	Error          string            `json:"error,omitempty"`
	Code           string            `json:"code,omitempty"` // error code for failed/cancelled jobs
	CellsCompleted int               `json:"cells_completed"`
	// Shards is the number of spans the job was split into (1 for an
	// unsharded job); ShardsDone counts those completed so far.
	Shards     int `json:"shards,omitempty"`
	ShardsDone int `json:"shards_done,omitempty"`
	// Attempts counts shard claims including lease-loss retries; Requeues
	// counts shards returned to the queue after a lost or expired lease.
	// Both stay at their field-absent zero on the happy path.
	Attempts    int       `json:"attempts,omitempty"`
	Requeues    int       `json:"requeues,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt      *time.Time        `json:"started_at,omitempty"`
	FinishedAt     *time.Time        `json:"finished_at,omitempty"`
	// Result is the scenario's rendered JSON — the same bytes POST /v1/run
	// returns for the same request — present once State == done.
	Result json.RawMessage `json:"result,omitempty"`
}

// Event is one NDJSON line of GET /v2/jobs/{id}/stream. The stream opens
// with a "status" event, emits one "cell" event per completed sweep cell as
// it finishes, and closes with a "done" event carrying the terminal status.
type Event struct {
	Type string `json:"type"` // "status" | "cell" | "done"
	// Index is the cell's position in the submitted grid. No omitempty:
	// the first cell of every grid is index 0 and must still carry the
	// field, as the documented event shape promises.
	Index int        `json:"index"`
	Cell  string     `json:"cell,omitempty"` // cell: human-readable cell label
	Row   any        `json:"row,omitempty"`  // cell: the flattened result row
	Job   *JobStatus `json:"job,omitempty"`  // status/done: the job (without result)
}
