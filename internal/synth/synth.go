// Package synth generates the deterministic procedural image-classification
// dataset used as the ImageNet stand-in for the Fig. 6 substitute
// experiment. Each class is an oriented sinusoidal grating with a
// class-specific angle and frequency, corrupted by per-sample phase shifts,
// amplitude jitter and Gaussian noise — enough structure that a small CNN
// must learn real spatial filters, and enough noise that normalization
// quality influences convergence.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dataset is a labeled image set in NCHW layout.
type Dataset struct {
	X       *tensor.Tensor // [N, C, H, W]
	Labels  []int
	Classes int
}

// Config parameterizes generation.
type Config struct {
	Samples  int
	Classes  int
	Size     int // square image side
	Channels int
	Noise    float64 // Gaussian noise std
	Seed     int64
}

// DefaultConfig returns a laptop-scale dataset: 512 samples, 8 classes,
// 16x16x3 images.
func DefaultConfig() Config {
	return Config{Samples: 512, Classes: 8, Size: 16, Channels: 3, Noise: 0.3, Seed: 1}
}

// Generate builds a dataset. The same Config always yields the same data.
func Generate(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	x := tensor.New(cfg.Samples, cfg.Channels, cfg.Size, cfg.Size)
	labels := make([]int, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		class := i % cfg.Classes
		labels[i] = class
		drawSample(x, i, class, cfg, rng)
	}
	return &Dataset{X: x, Labels: labels, Classes: cfg.Classes}
}

// drawSample renders one grating into sample i.
func drawSample(x *tensor.Tensor, i, class int, cfg Config, rng *rand.Rand) {
	// Class-specific orientation and frequency.
	angle := math.Pi * float64(class) / float64(cfg.Classes)
	freq := 2 * math.Pi * (1.5 + float64(class%4)) / float64(cfg.Size)
	phase := rng.Float64() * 2 * math.Pi
	amp := 0.7 + 0.6*rng.Float64()
	dx, dy := math.Cos(angle), math.Sin(angle)
	for c := 0; c < cfg.Channels; c++ {
		// Channels see phase-shifted copies so color carries signal too.
		chPhase := phase + float64(c)*0.7
		for h := 0; h < cfg.Size; h++ {
			for w := 0; w < cfg.Size; w++ {
				v := amp * math.Sin(freq*(dx*float64(w)+dy*float64(h))+chPhase)
				v += rng.NormFloat64() * cfg.Noise
				x.Set4(i, c, h, w, v)
			}
		}
	}
}

// Split partitions the dataset into train/validation subsets with the given
// training fraction, preserving class balance by striding.
func (d *Dataset) Split(trainFrac float64) (train, val *Dataset) {
	n := d.X.Shape[0]
	nTrain := int(float64(n) * trainFrac)
	// Samples are generated round-robin by class, so contiguous splits stay
	// balanced as long as the boundary is a multiple of Classes.
	nTrain -= nTrain % d.Classes
	if nTrain <= 0 || nTrain >= n {
		panic("synth: degenerate split")
	}
	train = &Dataset{
		X:       tensor.SliceBatch(d.X, 0, nTrain),
		Labels:  d.Labels[:nTrain],
		Classes: d.Classes,
	}
	val = &Dataset{
		X:       tensor.SliceBatch(d.X, nTrain, n),
		Labels:  d.Labels[nTrain:],
		Classes: d.Classes,
	}
	return train, val
}

// Batch copies samples [from, to) into a fresh tensor + label slice.
func (d *Dataset) Batch(from, to int) (*tensor.Tensor, []int) {
	return tensor.SliceBatch(d.X, from, to), d.Labels[from:to]
}

// Shuffle permutes samples in place using the given seed (deterministic).
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := d.X.Shape[0]
	per := d.X.Len() / n
	tmp := make([]float64, per)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		a := d.X.Data[i*per : (i+1)*per]
		b := d.X.Data[j*per : (j+1)*per]
		copy(tmp, a)
		copy(a, b)
		copy(b, tmp)
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	}
}
