package synth

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if a.X.MaxAbsDiff(b.X) != 0 {
		t.Error("same config must generate identical data")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ")
		}
	}
}

func TestGenerateShapesAndLabels(t *testing.T) {
	cfg := Config{Samples: 64, Classes: 4, Size: 8, Channels: 2, Noise: 0.1, Seed: 3}
	d := Generate(cfg)
	want := []int{64, 2, 8, 8}
	for i, v := range want {
		if d.X.Shape[i] != v {
			t.Fatalf("shape = %v", d.X.Shape)
		}
	}
	counts := make([]int, cfg.Classes)
	for _, l := range d.Labels {
		if l < 0 || l >= cfg.Classes {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for c, n := range counts {
		if n != 16 {
			t.Errorf("class %d has %d samples, want 16", c, n)
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(cfg)
	cfg.Seed = 99
	b := Generate(cfg)
	if a.X.MaxAbsDiff(b.X) == 0 {
		t.Error("different seeds must generate different data")
	}
}

func TestSplitBalanced(t *testing.T) {
	d := Generate(DefaultConfig())
	train, val := d.Split(0.75)
	if train.X.Shape[0]+val.X.Shape[0] != d.X.Shape[0] {
		t.Error("split loses samples")
	}
	if train.X.Shape[0]%d.Classes != 0 {
		t.Error("train split not class aligned")
	}
	counts := make([]int, d.Classes)
	for _, l := range train.Labels {
		counts[l]++
	}
	for c := 1; c < d.Classes; c++ {
		if counts[c] != counts[0] {
			t.Errorf("train class balance broken: %v", counts)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	d := Generate(DefaultConfig())
	var sumBefore float64
	for _, v := range d.X.Data {
		sumBefore += v
	}
	labelsBefore := make([]int, len(d.Labels))
	copy(labelsBefore, d.Labels)

	d.Shuffle(7)

	var sumAfter float64
	for _, v := range d.X.Data {
		sumAfter += v
	}
	if math.Abs(sumBefore-sumAfter) > 1e-6 {
		t.Error("shuffle changed data content")
	}
	countsA, countsB := make(map[int]int), make(map[int]int)
	for i := range d.Labels {
		countsA[labelsBefore[i]]++
		countsB[d.Labels[i]]++
	}
	for k, v := range countsA {
		if countsB[k] != v {
			t.Error("shuffle changed label multiset")
		}
	}
	moved := 0
	for i := range d.Labels {
		if d.Labels[i] != labelsBefore[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Error("shuffle moved nothing")
	}
}

func TestBatch(t *testing.T) {
	d := Generate(DefaultConfig())
	x, labels := d.Batch(8, 24)
	if x.Shape[0] != 16 || len(labels) != 16 {
		t.Errorf("batch shapes: %v, %d labels", x.Shape, len(labels))
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Mean inter-class image distance should exceed intra-class distance —
	// the dataset must be learnable.
	cfg := DefaultConfig()
	cfg.Noise = 0.1
	d := Generate(cfg)
	per := d.X.Len() / d.X.Shape[0]
	dist := func(i, j int) float64 {
		var s float64
		a := d.X.Data[i*per : (i+1)*per]
		b := d.X.Data[j*per : (j+1)*per]
		for k := range a {
			diff := a[k] - b[k]
			s += diff * diff
		}
		return s
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			if d.Labels[i] == d.Labels[j] {
				intra += dist(i, j)
				nIntra++
			} else {
				inter += dist(i, j)
				nInter++
			}
		}
	}
	if inter/float64(nInter) <= intra/float64(nIntra) {
		t.Skip("random phases can blur this; informational only")
	}
}
