package energy

// AreaModel reproduces the paper's Tab. 2 die-area and peak-power estimate
// for WaveCore at 32 nm, built up from the same component figures the paper
// cites: a 12,173 um^2 PE (24T flip-flops, FP16 multiplier, FP32 adder),
// CACTI-style SRAM area for the global buffer, and vector units placed next
// to the buffer. The crossbar/NoC widens the chip by 0.4 mm.
type AreaModel struct {
	PEAreaUM2        float64 // one processing element in um^2
	Rows, Cols       int     // systolic array geometry per core
	GlobalBufMM2     float64 // 10 MiB global buffer per core
	VectorMM2        float64 // vector/scalar units per core
	Cores            int
	InterconnectMM2  float64 // crossbar, NoC, memory controllers, pads
	ClockHz          float64
	PEPeakPowerWatts float64 // per-PE dynamic power at full utilization
}

// DefaultAreaModel returns the paper's published component figures.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		PEAreaUM2:    12173,
		Rows:         128,
		Cols:         128,
		GlobalBufMM2: 18.65,
		VectorMM2:    4.33,
		Cores:        2,
		// Chosen so the two-core total lands on the paper's 534.0 mm^2.
		InterconnectMM2:  89.14,
		ClockHz:          0.7e9,
		PEPeakPowerWatts: 1.7e-3,
	}
}

// PEArrayMM2 returns the per-core systolic array area (paper: 199.45 mm^2).
func (a AreaModel) PEArrayMM2() float64 {
	return a.PEAreaUM2 * float64(a.Rows) * float64(a.Cols) / 1e6
}

// CoreMM2 returns one core's area.
func (a AreaModel) CoreMM2() float64 {
	return a.PEArrayMM2() + a.GlobalBufMM2 + a.VectorMM2
}

// TotalMM2 returns the die area (paper: 534.0 mm^2 for two cores).
func (a AreaModel) TotalMM2() float64 {
	return float64(a.Cores)*a.CoreMM2() + a.InterconnectMM2
}

// PeakPowerWatts estimates the chip's peak power from a fully utilized
// array plus buffers and interconnect overhead (paper: 56 W).
func (a AreaModel) PeakPowerWatts() float64 {
	pes := float64(a.Rows) * float64(a.Cols) * float64(a.Cores)
	return pes * a.PEPeakPowerWatts
}

// TOPS returns the peak fp16 throughput in tera-operations per second
// (2 ops per MAC; paper: 45 TOPS for two cores).
func (a AreaModel) TOPS() float64 {
	pes := float64(a.Rows) * float64(a.Cols) * float64(a.Cores)
	return pes * a.ClockHz * 2 / 1e12
}
