// Package energy models WaveCore's energy, peak power and die area
// (Section 4.2's estimates and Tab. 2). The per-event energies encode the
// ratios the paper's evaluation relies on: a global-buffer access costs 8x
// less than a DRAM access, DRAM is ~22% of baseline training energy, and
// zero-operand MACs are skipped.
package energy

// Model holds the per-event energy constants and static power of one
// WaveCore core.
type Model struct {
	// MACEnergy is J per 16b x 16b multiply + 32b accumulate, including
	// the PE's register/mux overhead.
	MACEnergy float64
	// VectorOpEnergy is J per elementwise vector-unit operation.
	VectorOpEnergy float64
	// ZeroSkipFraction is the fraction of MACs whose operand is zero and
	// whose arithmetic the PE skips (ReLU makes ~half the activations zero;
	// averaged over the three training GEMMs this saves roughly a third of
	// the multiply energy).
	ZeroSkipFraction float64
	// StaticPower is the per-core leakage + clock-tree power in W.
	StaticPower float64
}

// DefaultModel returns the calibrated per-core constants.
func DefaultModel() Model {
	return Model{
		MACEnergy:        2.2e-12,
		VectorOpEnergy:   4.0e-12,
		ZeroSkipFraction: 0.35,
		StaticPower:      6.0,
	}
}

// WithoutZeroSkip disables the zero-operand skip (ablation).
func (m Model) WithoutZeroSkip() Model {
	m.ZeroSkipFraction = 0
	return m
}

// Breakdown is the per-step energy decomposition of one core in joules.
type Breakdown struct {
	DRAM    float64 // off-chip access energy
	GB      float64 // global buffer access energy
	Compute float64 // PE array MACs (after zero-skip)
	Vector  float64 // vector/scalar unit ops
	Static  float64 // leakage over the step time
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.DRAM + b.GB + b.Compute + b.Vector + b.Static
}

// DRAMFraction returns the DRAM share of the total (the paper quotes 21.6%
// for baseline training, 8.7% under MBS1).
func (b Breakdown) DRAMFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.DRAM / t
}

// Step computes a per-step energy breakdown.
func (m Model) Step(dramBytes, gbBytes, macs, vectorOps int64,
	dramEnergyPerByte, gbEnergyPerByte, stepSeconds float64) Breakdown {
	return Breakdown{
		DRAM:    float64(dramBytes) * dramEnergyPerByte,
		GB:      float64(gbBytes) * gbEnergyPerByte,
		Compute: float64(macs) * (1 - m.ZeroSkipFraction) * m.MACEnergy,
		Vector:  float64(vectorOps) * m.VectorOpEnergy,
		Static:  m.StaticPower * stepSeconds,
	}
}
