package energy

import (
	"math"
	"testing"
)

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{DRAM: 1, GB: 2, Compute: 3, Vector: 4, Static: 5}
	if b.Total() != 15 {
		t.Errorf("Total = %f, want 15", b.Total())
	}
	if got := b.DRAMFraction(); math.Abs(got-1.0/15) > 1e-12 {
		t.Errorf("DRAMFraction = %f", got)
	}
	if (Breakdown{}).DRAMFraction() != 0 {
		t.Error("empty breakdown fraction should be 0")
	}
}

func TestStepComposition(t *testing.T) {
	m := DefaultModel()
	b := m.Step(1e9, 2e9, 1e12, 1e9, 32e-12, 4e-12, 0.1)
	if b.DRAM != 1e9*32e-12 {
		t.Errorf("DRAM = %g", b.DRAM)
	}
	if b.GB != 2e9*4e-12 {
		t.Errorf("GB = %g", b.GB)
	}
	wantCompute := 1e12 * (1 - m.ZeroSkipFraction) * m.MACEnergy
	if math.Abs(b.Compute-wantCompute) > 1e-9 {
		t.Errorf("Compute = %g, want %g", b.Compute, wantCompute)
	}
	if b.Static != m.StaticPower*0.1 {
		t.Errorf("Static = %g", b.Static)
	}
}

func TestZeroSkipSavesEnergy(t *testing.T) {
	with := DefaultModel()
	without := with.WithoutZeroSkip()
	bw := with.Step(0, 0, 1e12, 0, 0, 0, 0)
	bo := without.Step(0, 0, 1e12, 0, 0, 0, 0)
	if bw.Compute >= bo.Compute {
		t.Errorf("zero-skip must reduce compute energy: %g vs %g", bw.Compute, bo.Compute)
	}
	if with.ZeroSkipFraction == 0 {
		t.Error("default model should skip some MACs")
	}
}

func TestAreaModelTab2(t *testing.T) {
	a := DefaultAreaModel()
	// Paper Tab. 2 / Section 4.2 figures.
	if got := a.PEArrayMM2(); math.Abs(got-199.45) > 0.2 {
		t.Errorf("PE array = %.2f mm^2, want 199.45", got)
	}
	if got := a.TotalMM2(); math.Abs(got-534.0) > 1.0 {
		t.Errorf("die area = %.1f mm^2, want 534.0", got)
	}
	if got := a.TOPS(); math.Abs(got-45.9) > 1.5 {
		t.Errorf("TOPS = %.1f, want ~45", got)
	}
	if got := a.PeakPowerWatts(); math.Abs(got-56) > 2 {
		t.Errorf("peak power = %.1f W, want 56", got)
	}
}

func TestAreaScalesWithCores(t *testing.T) {
	a := DefaultAreaModel()
	one := a
	one.Cores = 1
	if one.TotalMM2() >= a.TotalMM2() {
		t.Error("fewer cores must shrink the die")
	}
	if one.TOPS() >= a.TOPS() {
		t.Error("fewer cores must reduce TOPS")
	}
}
