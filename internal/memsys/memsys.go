// Package memsys describes the off-chip memory systems and on-chip global
// buffer evaluated in the paper (Tab. 4), with bandwidth, capacity and
// per-byte access energy for each DRAM technology.
package memsys

import "fmt"

// GiB is 2^30 bytes.
const GiB = 1 << 30

// DRAM describes one off-chip memory configuration attached to a WaveCore
// chip (both cores share it; four channels per core for the HBM2 baseline).
type DRAM struct {
	Name string
	// BandwidthBytes is the aggregate peak bandwidth in bytes/second.
	BandwidthBytes float64
	// CapacityBytes is the total capacity.
	CapacityBytes int64
	// Chips and Channels document the physical organization (Tab. 4).
	Chips    int
	Channels int
	// EnergyPerByte is the access energy in J/byte (derating included); the
	// values follow the usual per-bit figures: ~4 pJ/b for HBM2 stacks,
	// ~7 pJ/b for GDDR5, ~4.5 pJ/b for LPDDR4.
	EnergyPerByte float64
}

// The paper's four memory configurations (Tab. 4). Bandwidth uses the
// paper's GiB/s figures.
var (
	HBM2 = DRAM{
		Name: "HBM2", BandwidthBytes: 300 * GiB, CapacityBytes: 8 * GiB,
		Chips: 1, Channels: 8, EnergyPerByte: 32e-12,
	}
	HBM2x2 = DRAM{
		Name: "HBM2x2", BandwidthBytes: 600 * GiB, CapacityBytes: 16 * GiB,
		Chips: 2, Channels: 16, EnergyPerByte: 32e-12,
	}
	GDDR5 = DRAM{
		Name: "GDDR5", BandwidthBytes: 384 * GiB, CapacityBytes: 12 * GiB,
		Chips: 12, Channels: 12, EnergyPerByte: 56e-12,
	}
	LPDDR4 = DRAM{
		Name: "LPDDR4", BandwidthBytes: 239.2 * GiB, CapacityBytes: 16 * GiB,
		Chips: 8, Channels: 8, EnergyPerByte: 36e-12,
	}
)

// Memories lists the configurations in the paper's presentation order.
var Memories = []DRAM{HBM2, HBM2x2, GDDR5, LPDDR4}

// ByName returns a memory configuration by name.
func ByName(name string) (DRAM, error) {
	for _, m := range Memories {
		if m.Name == name {
			return m, nil
		}
	}
	return DRAM{}, fmt.Errorf("memsys: unknown memory %q", name)
}

// Unlimited returns a copy of the memory with effectively infinite bandwidth
// (used for the utilization isolation experiment of Fig. 14).
func (d DRAM) Unlimited() DRAM {
	d.Name = d.Name + "-unlimited"
	d.BandwidthBytes = 1e18
	return d
}

// TransferSeconds returns the time to move n bytes at peak bandwidth.
func (d DRAM) TransferSeconds(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / d.BandwidthBytes
}

// GlobalBuffer is the per-core on-chip SRAM buffer (10 MiB, 32 banks in the
// baseline design).
type GlobalBuffer struct {
	SizeBytes      int64
	Banks          int
	BandwidthBytes float64
	// EnergyPerByte is the access energy; the paper states a global buffer
	// access costs 8x less than a DRAM access.
	EnergyPerByte float64
}

// DefaultGlobalBuffer returns the paper's baseline 10 MiB, 32-bank buffer
// with 501 GB/s toward the systolic array (Fig. 9) and 1/8 the HBM2 access
// energy.
func DefaultGlobalBuffer() GlobalBuffer {
	return GlobalBuffer{
		SizeBytes:      10 << 20,
		Banks:          32,
		BandwidthBytes: 501e9,
		EnergyPerByte:  HBM2.EnergyPerByte / 8,
	}
}

// WithSize returns a copy with a different capacity (Fig. 11's sweep),
// keeping bandwidth and energy unchanged.
func (g GlobalBuffer) WithSize(bytes int64) GlobalBuffer {
	g.SizeBytes = bytes
	return g
}

// TransferSeconds returns the time to move n bytes at the buffer's peak
// bandwidth.
func (g GlobalBuffer) TransferSeconds(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / g.BandwidthBytes
}
