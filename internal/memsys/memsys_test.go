package memsys

import (
	"testing"
)

func TestTab4Configurations(t *testing.T) {
	// Tab. 4's organization and bandwidth figures.
	if HBM2.BandwidthBytes != 300*GiB || HBM2.Channels != 8 || HBM2.CapacityBytes != 8*GiB {
		t.Errorf("HBM2 = %+v", HBM2)
	}
	if HBM2x2.BandwidthBytes != 2*HBM2.BandwidthBytes {
		t.Error("HBM2x2 must double HBM2 bandwidth")
	}
	if GDDR5.Chips != 12 || GDDR5.BandwidthBytes != 384*GiB {
		t.Errorf("GDDR5 = %+v", GDDR5)
	}
	if LPDDR4.Chips != 8 || LPDDR4.BandwidthBytes != 239.2*GiB {
		t.Errorf("LPDDR4 = %+v", LPDDR4)
	}
	// The paper's bandwidth relationships: GDDR5 is 64% of HBM2x2 and
	// LPDDR4 40% (Section 6, Fig. 12 discussion).
	if r := GDDR5.BandwidthBytes / HBM2x2.BandwidthBytes; r < 0.63 || r > 0.65 {
		t.Errorf("GDDR5/HBM2x2 = %.3f, want 0.64", r)
	}
	if r := LPDDR4.BandwidthBytes / HBM2x2.BandwidthBytes; r < 0.39 || r > 0.41 {
		t.Errorf("LPDDR4/HBM2x2 = %.3f, want 0.40", r)
	}
}

func TestByName(t *testing.T) {
	for _, m := range Memories {
		got, err := ByName(m.Name)
		if err != nil || got.Name != m.Name {
			t.Errorf("ByName(%s): %v", m.Name, err)
		}
	}
	if _, err := ByName("HBM3"); err == nil {
		t.Error("unknown memory should error")
	}
}

func TestTransferSeconds(t *testing.T) {
	if got := HBM2.TransferSeconds(300 * GiB); got < 0.999 || got > 1.001 {
		t.Errorf("300GiB over HBM2 = %f s, want 1", got)
	}
	if HBM2.TransferSeconds(0) != 0 || HBM2.TransferSeconds(-5) != 0 {
		t.Error("non-positive transfers must take zero time")
	}
}

func TestUnlimited(t *testing.T) {
	u := HBM2.Unlimited()
	if u.BandwidthBytes <= HBM2.BandwidthBytes {
		t.Error("unlimited must raise bandwidth")
	}
	if HBM2.BandwidthBytes != 300*GiB {
		t.Error("Unlimited must not mutate the original")
	}
	if u.TransferSeconds(1<<40) > 1e-3 {
		t.Error("unlimited transfers should be effectively instant")
	}
}

func TestGlobalBuffer(t *testing.T) {
	gb := DefaultGlobalBuffer()
	if gb.SizeBytes != 10<<20 || gb.Banks != 32 {
		t.Errorf("default GB = %+v", gb)
	}
	// Paper: a global buffer access costs 8x less than DRAM.
	if r := HBM2.EnergyPerByte / gb.EnergyPerByte; r < 7.9 || r > 8.1 {
		t.Errorf("DRAM/GB energy ratio = %.2f, want 8", r)
	}
	big := gb.WithSize(40 << 20)
	if big.SizeBytes != 40<<20 || gb.SizeBytes != 10<<20 {
		t.Error("WithSize must copy, not mutate")
	}
	if big.BandwidthBytes != gb.BandwidthBytes {
		t.Error("WithSize must keep bandwidth")
	}
}

func TestEnergyPerByteOrdering(t *testing.T) {
	// GDDR5 is the most energy-hungry per byte; HBM2 the least.
	if !(GDDR5.EnergyPerByte > LPDDR4.EnergyPerByte &&
		LPDDR4.EnergyPerByte > HBM2.EnergyPerByte) {
		t.Errorf("energy ordering wrong: HBM2=%g LPDDR4=%g GDDR5=%g",
			HBM2.EnergyPerByte, LPDDR4.EnergyPerByte, GDDR5.EnergyPerByte)
	}
}
