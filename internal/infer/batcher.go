package infer

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// ErrClosed is returned for requests that arrive at (or are still queued in)
// a batcher that has shut down.
var ErrClosed = errors.New("infer: batcher closed")

// BadInputError reports a request whose input does not match the served
// model. The HTTP layer maps it to 422.
type BadInputError struct{ msg string }

func (e *BadInputError) Error() string { return e.msg }

// Config sizes a Batcher.
type Config struct {
	// MaxBatch flushes a batch as soon as this many live requests coalesce
	// (0 = 8). It is also the compiled predictor's maximum batch.
	MaxBatch int
	// MaxDelay is the coalesce deadline: how long the first request of a
	// batch waits for peers before a partial batch flushes (0 = 2ms).
	MaxDelay time.Duration
	// QueueCap bounds the request queue; senders beyond it block — cancel
	// their context to abandon the wait (0 = 4*MaxBatch).
	QueueCap int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
	return c
}

// Result is one served inference.
type Result struct {
	// Logits is the model's per-class output for this sample.
	Logits []float64
	// Argmax is the predicted class.
	Argmax int
	// BatchSize is how many requests rode in the flush that served this
	// one — the coalescing observability the load smoke asserts on.
	BatchSize int
}

type request struct {
	ctx   context.Context
	input []float64
	out   chan reply
}

type reply struct {
	res Result
	err error
}

// Batcher coalesces concurrent inference requests into micro-batches and
// runs them on one compiled predictor. Requests are context-aware end to
// end: a cancelled request abandons its queue slot (it is dropped when its
// batch assembles, without stalling the flush), and a partial batch still
// flushes when the coalesce deadline expires.
type Batcher struct {
	spec ModelSpec
	cfg  Config
	pred predictor

	reqs chan *request
	stop chan struct{}
	done chan struct{}

	xdata []float64
	views []*tensor.Tensor // per-batch-size input headers

	requests        atomic.Int64
	items           atomic.Int64
	batches         atomic.Int64
	fullFlushes     atomic.Int64
	deadlineFlushes atomic.Int64
	cancelled       atomic.Int64
}

// predictor is the slice of nn.Predictor the batcher uses (an interface so
// tests can substitute a slow or instrumented model).
type predictor interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
}

// New builds a batcher serving the given model and starts its dispatch
// loop. Call Close to stop it.
func New(spec ModelSpec, cfg Config) (*Batcher, error) {
	cfg = cfg.withDefaults()
	pred, err := spec.NewPredictor(cfg.MaxBatch)
	if err != nil {
		return nil, err
	}
	return newWith(spec, cfg, pred), nil
}

func newWith(spec ModelSpec, cfg Config, pred predictor) *Batcher {
	b := &Batcher{
		spec:  spec,
		cfg:   cfg,
		pred:  pred,
		reqs:  make(chan *request, cfg.QueueCap),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		xdata: make([]float64, cfg.MaxBatch*spec.InSize()),
		views: make([]*tensor.Tensor, cfg.MaxBatch),
	}
	go b.loop()
	return b
}

// Model returns the served model's spec.
func (b *Batcher) Model() ModelSpec { return b.spec }

// Config returns the resolved batching knobs.
func (b *Batcher) Config() Config { return b.cfg }

// Infer queues one sample and blocks until its batch is served, the context
// is cancelled, or the batcher closes.
func (b *Batcher) Infer(ctx context.Context, input []float64) (Result, error) {
	if len(input) != b.spec.InSize() {
		return Result{}, &BadInputError{msg: fmt.Sprintf(
			"infer: input has %d values; model %s wants %d (shape %v)",
			len(input), b.spec.Name, b.spec.InSize(), b.spec.InShape)}
	}
	r := &request{ctx: ctx, input: input, out: make(chan reply, 1)}
	select {
	case b.reqs <- r:
		b.requests.Add(1)
	case <-ctx.Done():
		return Result{}, ctx.Err()
	case <-b.done:
		return Result{}, ErrClosed
	}
	select {
	case rep := <-r.out:
		return rep.res, rep.err
	case <-ctx.Done():
		// The dispatcher drops this request when its batch assembles.
		return Result{}, ctx.Err()
	case <-b.done:
		// The loop drains the queue with ErrClosed replies before signalling
		// done; prefer a reply that raced in.
		select {
		case rep := <-r.out:
			return rep.res, rep.err
		default:
			return Result{}, ErrClosed
		}
	}
}

// Close stops the dispatch loop. Queued and future requests fail with
// ErrClosed; the in-progress batch (if any) completes first.
func (b *Batcher) Close() {
	close(b.stop)
	<-b.done
}

// loop is the dispatcher: assemble a batch (flush on max-batch or
// deadline), drop cancelled requests without stalling the flush, run the
// predictor, fan results out.
func (b *Batcher) loop() {
	defer close(b.done)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	batch := make([]*request, 0, b.cfg.MaxBatch)
	for {
		select {
		case <-b.stop:
			b.drain(batch)
			return
		case r := <-b.reqs:
			batch = append(batch[:0], r)
			timer.Reset(b.cfg.MaxDelay)
		}
		full := false
	collect:
		for {
			// A cancelled request frees its slot for later arrivals.
			batch = b.sweepCancelled(batch)
			if len(batch) >= b.cfg.MaxBatch {
				full = true
				timer.Stop()
				break collect
			}
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			case <-b.stop:
				b.flush(batch, false)
				b.drain(nil)
				return
			}
		}
		b.flush(batch, full)
		batch = batch[:0]
	}
}

// sweepCancelled drops requests whose context ended while they waited.
func (b *Batcher) sweepCancelled(batch []*request) []*request {
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			b.cancelled.Add(1)
			continue
		}
		live = append(live, r)
	}
	return live
}

// flush serves one assembled batch.
func (b *Batcher) flush(batch []*request, full bool) {
	batch = b.sweepCancelled(batch)
	n := len(batch)
	if n == 0 {
		return
	}
	in := b.spec.InSize()
	for i, r := range batch {
		copy(b.xdata[i*in:(i+1)*in], r.input)
	}
	x := b.views[n-1]
	if x == nil {
		x = tensor.FromSlice(b.xdata[:n*in], append([]int{n}, b.spec.InShape...)...)
		b.views[n-1] = x
	}
	logits := b.pred.Forward(x)
	b.batches.Add(1)
	b.items.Add(int64(n))
	if full {
		b.fullFlushes.Add(1)
	} else {
		b.deadlineFlushes.Add(1)
	}
	k := logits.Shape[1]
	for i, r := range batch {
		row := logits.Data[i*k : (i+1)*k]
		res := Result{Logits: append([]float64(nil), row...), BatchSize: n}
		for j := 1; j < k; j++ {
			if row[j] > row[res.Argmax] {
				res.Argmax = j
			}
		}
		r.out <- reply{res: res}
	}
}

// drain rejects the remaining queued work at shutdown.
func (b *Batcher) drain(batch []*request) {
	for _, r := range batch {
		r.out <- reply{err: ErrClosed}
	}
	for {
		select {
		case r := <-b.reqs:
			r.out <- reply{err: ErrClosed}
		default:
			return
		}
	}
}

// Stats is the batcher's counter snapshot (the infer section of /v1/stats).
type Stats struct {
	Model    string  `json:"model"`
	MaxBatch int     `json:"max_batch"`
	MaxDelay string  `json:"max_delay"`
	QueueCap int     `json:"queue_cap"`
	PackedKB float64 `json:"packed_weight_kb"`

	Requests        int64 `json:"requests"`
	Items           int64 `json:"items"`
	Batches         int64 `json:"batches"`
	FullFlushes     int64 `json:"full_flushes"`
	DeadlineFlushes int64 `json:"deadline_flushes"`
	Cancelled       int64 `json:"cancelled"`
	QueueDepth      int   `json:"queue_depth"`
	// MeanBatchSize is items/batches — the coalescing headline: >1 means
	// concurrent requests actually shared forward passes.
	MeanBatchSize float64 `json:"mean_batch_size"`
}

// Stats snapshots the counters.
func (b *Batcher) Stats() Stats {
	st := Stats{
		Model:           b.spec.Name,
		MaxBatch:        b.cfg.MaxBatch,
		MaxDelay:        b.cfg.MaxDelay.String(),
		QueueCap:        b.cfg.QueueCap,
		Requests:        b.requests.Load(),
		Items:           b.items.Load(),
		Batches:         b.batches.Load(),
		FullFlushes:     b.fullFlushes.Load(),
		DeadlineFlushes: b.deadlineFlushes.Load(),
		Cancelled:       b.cancelled.Load(),
		QueueDepth:      len(b.reqs),
	}
	if p, ok := b.pred.(interface{ PackedBytes() (int64, float64) }); ok {
		bytes, _ := p.PackedBytes()
		st.PackedKB = float64(bytes) / 1024
	}
	if st.Batches > 0 {
		st.MeanBatchSize = float64(st.Items) / float64(st.Batches)
	}
	return st
}
