package infer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// ErrClosed is returned for requests that arrive at (or are still queued in)
// a batcher that has shut down.
var ErrClosed = errors.New("infer: batcher closed")

// ErrOverloaded is returned — only when Config.Shed is set — for requests
// that arrive while the queue is at capacity. It is the admission-control
// signal: the HTTP layer maps it to 429 + Retry-After so clients back off
// instead of piling blocked senders onto a queue that is already beyond the
// replicas' drain rate.
var ErrOverloaded = errors.New("infer: overloaded (request queue full)")

// BadInputError reports a request whose input does not match the served
// model. The HTTP layer maps it to 422.
type BadInputError struct{ msg string }

func (e *BadInputError) Error() string { return e.msg }

// Config sizes a Batcher.
type Config struct {
	// MaxBatch flushes a batch as soon as this many live requests coalesce
	// (0 = 8). It is also each compiled replica's maximum batch.
	MaxBatch int
	// MaxDelay is the idle coalesce deadline: how long the first request of
	// a batch waits for peers when the queue is empty (0 = 2ms). Under load
	// the effective deadline shrinks toward MinDelay — see coalesceDelay.
	MaxDelay time.Duration
	// MinDelay is the loaded coalesce deadline: the floor the effective
	// deadline shrinks to as queue depth approaches MaxBatch (0 = MaxDelay/4,
	// clamped to MaxDelay). A deep queue means the next batch will fill from
	// backlog anyway, so waiting the full MaxDelay only adds latency.
	MinDelay time.Duration
	// QueueCap bounds the request queue (0 = 4*MaxBatch). Senders beyond it
	// block — cancel their context to abandon the wait — unless Shed is set,
	// in which case they fail fast with ErrOverloaded.
	QueueCap int
	// Replicas is the number of independently compiled predictor replicas
	// draining the shared queue (0 = 1). Each replica owns one packed-weight
	// set and one dispatch loop, so flushes run truly in parallel. Replicas
	// are fixed-seed clones: outputs are independent of which replica served
	// a request.
	Replicas int
	// Shed enables admission control: a request arriving at a full queue
	// fails immediately with ErrOverloaded instead of blocking its sender
	// indefinitely. This is what keeps the service degrading gracefully
	// (bounded latency for admitted work, fast 429s for the rest) instead of
	// queue-collapsing under overload.
	Shed bool
	// OnFlush, when non-nil, observes every served batch from the replica's
	// dispatch goroutine — the batch-size and queue-wait feed for /metrics
	// and the event bus. It must be cheap and non-blocking. When nil (the
	// default, and always in benchmarks) requests are not timestamped and
	// the flush path is unchanged.
	OnFlush func(FlushInfo)
}

// FlushInfo describes one served batch to Config.OnFlush.
type FlushInfo struct {
	Replica int
	Size    int
	// Full reports a max-batch flush (vs a coalesce-deadline expiry).
	Full bool
	// Waits is each batched request's queue wait — enqueue to flush start —
	// in batch order. The slice is only valid for the duration of the call.
	Waits []time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MinDelay <= 0 {
		c.MinDelay = c.MaxDelay / 4
	}
	if c.MinDelay > c.MaxDelay {
		c.MinDelay = c.MaxDelay
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	return c
}

// Result is one served inference.
type Result struct {
	// Logits is the model's per-class output for this sample.
	Logits []float64
	// Argmax is the predicted class: the index of the largest non-NaN logit,
	// or -1 if every logit is NaN (never a confident-looking class 0).
	Argmax int
	// BatchSize is how many requests rode in the flush that served this
	// one — the coalescing observability the load smoke asserts on.
	BatchSize int
	// Replica is the index of the pool replica that served the request.
	// Outputs are replica-independent (fixed-seed clones); the field exists
	// for observability and the scaling tests.
	Replica int
}

type request struct {
	ctx   context.Context
	input []float64
	out   chan reply
	enq   time.Time // set only when Config.OnFlush is wired
}

type reply struct {
	res Result
	err error
}

// Batcher coalesces concurrent inference requests into micro-batches and
// runs them on a pool of predictor replicas draining one bounded queue.
// Requests are context-aware end to end: a cancelled request abandons its
// queue slot (it is dropped when its batch assembles, without stalling the
// flush), and a partial batch still flushes when the coalesce deadline
// expires. With Shed set, requests beyond QueueCap fail fast with
// ErrOverloaded instead of blocking.
type Batcher struct {
	spec ModelSpec
	cfg  Config

	replicas []*replica

	reqs      chan *request
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	requests        atomic.Int64
	items           atomic.Int64
	batches         atomic.Int64
	fullFlushes     atomic.Int64
	deadlineFlushes atomic.Int64
	cancelled       atomic.Int64
	shed            atomic.Int64
	shortDeadlines  atomic.Int64
}

// replica is one pool member: its own compiled predictor (one packed-weight
// set), its own input staging buffers, and its own dispatch loop, so flushes
// on different replicas share nothing but the request queue.
type replica struct {
	b    *Batcher
	id   int
	pred predictor

	xdata []float64
	views []*tensor.Tensor // per-batch-size input headers
	waits []time.Duration  // OnFlush scratch, reused across flushes

	batches atomic.Int64
	items   atomic.Int64
}

// predictor is the slice of nn.Predictor the batcher uses (an interface so
// tests can substitute a slow or instrumented model).
type predictor interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
}

// New builds a batcher serving the given model and starts one dispatch loop
// per replica. Call Close to stop it.
func New(spec ModelSpec, cfg Config) (*Batcher, error) {
	cfg = cfg.withDefaults()
	preds := make([]predictor, cfg.Replicas)
	for i := range preds {
		// Each replica compiles the spec independently: same fixed seed, so
		// identical weights, but a private packed buffer set — parallel
		// flushes never contend on predictor state.
		pred, err := spec.NewPredictor(cfg.MaxBatch)
		if err != nil {
			return nil, err
		}
		preds[i] = pred
	}
	return newWith(spec, cfg, preds), nil
}

func newWith(spec ModelSpec, cfg Config, preds []predictor) *Batcher {
	cfg.Replicas = len(preds)
	b := &Batcher{
		spec: spec,
		cfg:  cfg,
		reqs: make(chan *request, cfg.QueueCap),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	b.replicas = make([]*replica, len(preds))
	var wg sync.WaitGroup
	for i, pred := range preds {
		rp := &replica{
			b:     b,
			id:    i,
			pred:  pred,
			xdata: make([]float64, cfg.MaxBatch*spec.InSize()),
			views: make([]*tensor.Tensor, cfg.MaxBatch),
		}
		b.replicas[i] = rp
		wg.Add(1)
		go func() {
			defer wg.Done()
			rp.loop()
		}()
	}
	go func() {
		// Only after every replica loop has exited is the queue drained and
		// done closed: in-flight flushes finish serving their batches first,
		// and no loop can race the drain for queued work.
		wg.Wait()
		b.drain()
		close(b.done)
	}()
	return b
}

// Model returns the served model's spec.
func (b *Batcher) Model() ModelSpec { return b.spec }

// Config returns the resolved batching knobs.
func (b *Batcher) Config() Config { return b.cfg }

// Infer queues one sample and blocks until its batch is served, the context
// is cancelled, or the batcher closes. With Config.Shed set it instead
// fails fast with ErrOverloaded when the queue is at capacity.
func (b *Batcher) Infer(ctx context.Context, input []float64) (Result, error) {
	if len(input) != b.spec.InSize() {
		return Result{}, &BadInputError{msg: fmt.Sprintf(
			"infer: input has %d values; model %s wants %d (shape %v)",
			len(input), b.spec.Name, b.spec.InSize(), b.spec.InShape)}
	}
	r := &request{ctx: ctx, input: input, out: make(chan reply, 1)}
	if b.cfg.OnFlush != nil {
		r.enq = time.Now()
	}
	select {
	case b.reqs <- r:
		b.requests.Add(1)
	default:
		if b.cfg.Shed {
			b.shed.Add(1)
			return Result{}, ErrOverloaded
		}
		select {
		case b.reqs <- r:
			b.requests.Add(1)
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-b.done:
			return Result{}, ErrClosed
		}
	}
	select {
	case rep := <-r.out:
		return rep.res, rep.err
	case <-ctx.Done():
		// The dispatcher drops this request when its batch assembles.
		return Result{}, ctx.Err()
	case <-b.done:
		// The queue is drained with ErrClosed replies before done is
		// signalled; prefer a reply that raced in.
		select {
		case rep := <-r.out:
			return rep.res, rep.err
		default:
			return Result{}, ErrClosed
		}
	}
}

// Close stops the dispatch loops and waits for them to finish. Queued and
// future requests fail with ErrClosed; batches already assembling flush
// first. Close is idempotent — the service shutdown path and test cleanups
// may both call it without ordering hazards.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.stop) })
	<-b.done
}

// coalesceDelay resolves the deadline for a batch that is starting now: the
// patient MaxDelay when the queue is idle, shrinking linearly to MinDelay as
// queue depth approaches MaxBatch (the leading/trailing throttle idiom —
// impatient under load, patient when idle). A deep queue means peers for the
// next batch are already waiting, so a long deadline would only add latency;
// an empty queue means peers can only come from new arrivals, which is what
// the full MaxDelay is for.
func (b *Batcher) coalesceDelay() time.Duration {
	depth := len(b.reqs)
	if depth <= 0 {
		return b.cfg.MaxDelay
	}
	frac := float64(depth) / float64(b.cfg.MaxBatch)
	if frac > 1 {
		frac = 1
	}
	d := b.cfg.MaxDelay - time.Duration(frac*float64(b.cfg.MaxDelay-b.cfg.MinDelay))
	if d < b.cfg.MaxDelay {
		b.shortDeadlines.Add(1)
	}
	return d
}

// stopTimer stops t and drains a pending expiry, so a later Reset can never
// be satisfied by a stale fire. Under Go 1.23+ synchronous timers Stop alone
// suffices, but the drain is what keeps the dispatcher correct under
// GODEBUG=asynctimerchan=1 (and it is what the timer-drain regression test
// pins): without it, a full flush whose deadline raced the last append
// leaves the expiry in timer.C, and the NEXT batch deadline-flushes
// immediately at size 1 — silently destroying coalescing.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// loop is one replica's dispatcher: take the first request, assemble a batch
// (flush on max-batch or the adaptive deadline), drop cancelled requests
// without stalling the flush, run this replica's predictor, fan results out.
func (rp *replica) loop() {
	b := rp.b
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	batch := make([]*request, 0, b.cfg.MaxBatch)
	for {
		// A signalled stop takes priority over racing new work: queued but
		// unbatched requests are deterministically drained with ErrClosed
		// instead of being opportunistically served mid-shutdown.
		select {
		case <-b.stop:
			return
		default:
		}
		select {
		case <-b.stop:
			return
		case r := <-b.reqs:
			batch = append(batch[:0], r)
			// The timer is stopped and drained at the top of every batch, so
			// this Reset can only be satisfied by the deadline it sets.
			timer.Reset(b.coalesceDelay())
		}
		full := false
	collect:
		for {
			// A cancelled request frees its slot for later arrivals.
			batch = b.sweepCancelled(batch)
			if len(batch) >= b.cfg.MaxBatch {
				full = true
				stopTimer(timer)
				break collect
			}
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				break collect // expiry consumed: timer is drained
			case <-b.stop:
				// The partial batch assembled so far is served, not failed:
				// its senders were admitted before shutdown began.
				stopTimer(timer)
				rp.flush(batch, false)
				return
			}
		}
		rp.flush(batch, full)
		batch = batch[:0]
	}
}

// sweepCancelled drops requests whose context ended while they waited.
func (b *Batcher) sweepCancelled(batch []*request) []*request {
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			b.cancelled.Add(1)
			continue
		}
		live = append(live, r)
	}
	return live
}

// flush serves one assembled batch on this replica's predictor.
func (rp *replica) flush(batch []*request, full bool) {
	b := rp.b
	batch = b.sweepCancelled(batch)
	n := len(batch)
	if n == 0 {
		return
	}
	in := b.spec.InSize()
	for i, r := range batch {
		copy(rp.xdata[i*in:(i+1)*in], r.input)
	}
	x := rp.views[n-1]
	if x == nil {
		x = tensor.FromSlice(rp.xdata[:n*in], append([]int{n}, b.spec.InShape...)...)
		rp.views[n-1] = x
	}
	var flushStart time.Time
	if b.cfg.OnFlush != nil {
		flushStart = time.Now() // queue wait ends when the forward pass starts
	}
	logits := rp.pred.Forward(x)
	b.batches.Add(1)
	b.items.Add(int64(n))
	rp.batches.Add(1)
	rp.items.Add(int64(n))
	if full {
		b.fullFlushes.Add(1)
	} else {
		b.deadlineFlushes.Add(1)
	}
	if b.cfg.OnFlush != nil {
		rp.waits = rp.waits[:0]
		for _, r := range batch {
			rp.waits = append(rp.waits, flushStart.Sub(r.enq))
		}
		b.cfg.OnFlush(FlushInfo{Replica: rp.id, Size: n, Full: full, Waits: rp.waits})
	}
	k := logits.Shape[1]
	for i, r := range batch {
		row := logits.Data[i*k : (i+1)*k]
		r.out <- reply{res: Result{
			Logits:    append([]float64(nil), row...),
			Argmax:    argmaxRow(row),
			BatchSize: n,
			Replica:   rp.id,
		}}
	}
}

// argmaxRow returns the index of the largest non-NaN logit, first index
// winning ties. An all-NaN row returns -1: NaN comparisons are always false,
// so a naive scan would report class 0 with full confidence for a row that
// carries no information.
func argmaxRow(row []float64) int {
	best := -1
	for j, v := range row {
		if math.IsNaN(v) {
			continue
		}
		if best < 0 || v > row[best] {
			best = j
		}
	}
	return best
}

// drain rejects the remaining queued work at shutdown. It runs once, after
// every replica loop has exited.
func (b *Batcher) drain() {
	for {
		select {
		case r := <-b.reqs:
			r.out <- reply{err: ErrClosed}
		default:
			return
		}
	}
}

// ReplicaStats is one pool member's share of the served work.
type ReplicaStats struct {
	Batches int64 `json:"batches"`
	Items   int64 `json:"items"`
}

// Stats is the batcher's counter snapshot (the infer section of /v1/stats).
type Stats struct {
	Model    string `json:"model"`
	MaxBatch int    `json:"max_batch"`
	MaxDelay string `json:"max_delay"`
	MinDelay string `json:"min_delay"`
	QueueCap int    `json:"queue_cap"`
	Replicas int    `json:"replicas"`
	// ShedEnabled reports whether admission control is on (full queue →
	// 429) rather than blocking senders.
	ShedEnabled bool `json:"shed_enabled"`
	// PackedKB is one replica's packed fp16 weight footprint; the pool holds
	// Replicas independent copies.
	PackedKB float64 `json:"packed_weight_kb"`

	Requests        int64 `json:"requests"`
	Items           int64 `json:"items"`
	Batches         int64 `json:"batches"`
	FullFlushes     int64 `json:"full_flushes"`
	DeadlineFlushes int64 `json:"deadline_flushes"`
	Cancelled       int64 `json:"cancelled"`
	// Shed counts requests rejected with ErrOverloaded at admission.
	Shed int64 `json:"shed"`
	// ShortDeadlines counts batches that started with an adaptive (below
	// MaxDelay) coalesce deadline because the queue was non-empty.
	ShortDeadlines int64 `json:"short_deadlines"`
	QueueDepth     int   `json:"queue_depth"`
	// MeanBatchSize is items/batches — the coalescing headline: >1 means
	// concurrent requests actually shared forward passes.
	MeanBatchSize float64 `json:"mean_batch_size"`
	// PerReplica is each pool member's share, in replica index order; the
	// load smoke asserts the shares stay within a constant factor of fair.
	PerReplica []ReplicaStats `json:"per_replica"`
}

// Stats snapshots the counters.
func (b *Batcher) Stats() Stats {
	st := Stats{
		Model:           b.spec.Name,
		MaxBatch:        b.cfg.MaxBatch,
		MaxDelay:        b.cfg.MaxDelay.String(),
		MinDelay:        b.cfg.MinDelay.String(),
		QueueCap:        b.cfg.QueueCap,
		Replicas:        b.cfg.Replicas,
		ShedEnabled:     b.cfg.Shed,
		Requests:        b.requests.Load(),
		Items:           b.items.Load(),
		Batches:         b.batches.Load(),
		FullFlushes:     b.fullFlushes.Load(),
		DeadlineFlushes: b.deadlineFlushes.Load(),
		Cancelled:       b.cancelled.Load(),
		Shed:            b.shed.Load(),
		ShortDeadlines:  b.shortDeadlines.Load(),
		QueueDepth:      len(b.reqs),
	}
	st.PerReplica = make([]ReplicaStats, len(b.replicas))
	for i, rp := range b.replicas {
		st.PerReplica[i] = ReplicaStats{Batches: rp.batches.Load(), Items: rp.items.Load()}
	}
	if p, ok := b.replicas[0].pred.(interface{ PackedBytes() (int64, float64) }); ok {
		bytes, _ := p.PackedBytes()
		st.PackedKB = float64(bytes) / 1024
	}
	if st.Batches > 0 {
		st.MeanBatchSize = float64(st.Items) / float64(st.Batches)
	}
	return st
}
