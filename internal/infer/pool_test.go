package infer

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// fakeSpec is a tiny model spec for tests that drive the dispatcher with an
// instrumented predictor instead of a compiled nn.Predictor.
var fakeSpec = ModelSpec{Name: "fake", InShape: []int{4}, Classes: 3}

// gatedPred is a controllable predictor: it signals each Forward entry on
// entered (with the batch size) and blocks until release is closed or
// receives. Nil channels disable the respective behavior.
type gatedPred struct {
	entered chan int
	release chan struct{}
	classes int
	// logits, when set, fills every output row with these values.
	logits []float64
}

func (p *gatedPred) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	if p.entered != nil {
		p.entered <- n
	}
	if p.release != nil {
		<-p.release
	}
	out := tensor.New(n, p.classes)
	if p.logits != nil {
		for i := 0; i < n; i++ {
			copy(out.Data[i*p.classes:(i+1)*p.classes], p.logits)
		}
	}
	return out
}

// fakeInput builds a valid input for fakeSpec.
func fakeInput() []float64 { return make([]float64, fakeSpec.InSize()) }

// slowErrCtx is context.Background() whose first Err() call stalls for
// delay. The dispatcher calls ctx.Err() in sweepCancelled while assembling a
// batch, so this deterministically holds the loop between its timer Reset
// and timer Stop — long enough for the coalesce deadline to fire without the
// loop being parked in its select to consume it. That is exactly the window
// in which the pre-fix batcher left a stale expiry in timer.C.
type slowErrCtx struct {
	context.Context
	delay time.Duration
	once  sync.Once
}

func (c *slowErrCtx) Err() error {
	c.once.Do(func() { time.Sleep(c.delay) })
	return c.Context.Err()
}

// TestBatcherTimerDrainRegression forces the stale-timer race the old loop
// had: a full flush whose coalesce deadline fired between the last append
// and timer.Stop() left the expiry in timer.C, so the NEXT batch's
// timer.Reset was satisfied immediately and the batch deadline-flushed at
// size 1 — silently destroying coalescing (and the mean_batch_size metric
// every scale-out claim rests on).
//
// Go 1.23+ synchronous timers drain on Reset, which hides the bug; the
// asynctimerchan=1 GODEBUG restores the classic channel semantics this
// dispatcher must also be correct under. With the stopTimer drain removed,
// this test fails: r3 is served at batch size 1 in microseconds instead of
// coalescing with r4.
func TestBatcherTimerDrainRegression(t *testing.T) {
	t.Setenv("GODEBUG", "asynctimerchan=1")

	const maxDelay = 400 * time.Millisecond
	b := newWith(fakeSpec, Config{MaxBatch: 2, MaxDelay: maxDelay, QueueCap: 16}.withDefaults(),
		[]predictor{&gatedPred{classes: fakeSpec.Classes}})
	defer b.Close()

	// Batch 1: r1 starts the batch (timer armed at maxDelay); r2's slow
	// ctx.Err() stalls the loop past the deadline, so the timer fires
	// unconsumed, the batch fills, and timer.Stop() returns false.
	r1done := make(chan Result, 1)
	go func() {
		res, err := b.Infer(context.Background(), fakeInput())
		if err != nil {
			t.Errorf("r1: %v", err)
		}
		r1done <- res
	}()
	time.Sleep(50 * time.Millisecond) // let r1 arm the timer
	res2, err := b.Infer(&slowErrCtx{Context: context.Background(), delay: maxDelay + 200*time.Millisecond}, fakeInput())
	if err != nil {
		t.Fatalf("r2: %v", err)
	}
	res1 := <-r1done
	if res1.BatchSize != 2 || res2.BatchSize != 2 {
		t.Fatalf("setup batch served at sizes %d/%d, want 2/2", res1.BatchSize, res2.BatchSize)
	}

	// Batch 2: r3 must wait the full coalesce deadline for r4 (arriving well
	// inside it) and serve both as one batch. With the stale expiry left in
	// timer.C, r3 instead deadline-flushes alone immediately.
	r3done := make(chan Result, 1)
	go func() {
		res, err := b.Infer(context.Background(), fakeInput())
		if err != nil {
			t.Errorf("r3: %v", err)
		}
		r3done <- res
	}()
	time.Sleep(80 * time.Millisecond) // well inside maxDelay
	res4, err := b.Infer(context.Background(), fakeInput())
	if err != nil {
		t.Fatalf("r4: %v", err)
	}
	res3 := <-r3done
	if res3.BatchSize != 2 || res4.BatchSize != 2 {
		t.Fatalf("post-flush batch served at sizes %d/%d, want 2/2 (stale timer expiry destroyed coalescing)",
			res3.BatchSize, res4.BatchSize)
	}
	if st := b.Stats(); st.MeanBatchSize <= 1.9 {
		t.Fatalf("mean batch size %.2f, want ~2 (stale-timer premature flushes)", st.MeanBatchSize)
	}
}

// TestBatcherCloseIdempotent: Close must be callable twice (the service
// shutdown path and test cleanups both close), including concurrently. The
// pre-fix Close panicked on the second close(b.stop).
func TestBatcherCloseIdempotent(t *testing.T) {
	b := newWith(fakeSpec, Config{}.withDefaults(),
		[]predictor{&gatedPred{classes: fakeSpec.Classes}})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Close()
		}()
	}
	wg.Wait()
	b.Close() // and again, sequentially
	if _, err := b.Infer(context.Background(), fakeInput()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Infer: %v, want ErrClosed", err)
	}
}

// TestArgmaxNaN: NaN logits are skipped deterministically and an all-NaN
// row reports -1, never a confident-looking class 0.
func TestArgmaxNaN(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		row  []float64
		want int
	}{
		{"plain", []float64{0.1, 0.7, 0.3}, 1},
		{"tie keeps first", []float64{0.5, 0.5, 0.2}, 0},
		{"leading NaN", []float64{nan, 0.2, 0.9}, 2},
		{"trailing NaN", []float64{0.2, 0.1, nan}, 0},
		{"all NaN", []float64{nan, nan, nan}, -1},
		{"single NaN", []float64{nan}, -1},
		{"negative only", []float64{-3, -1, -2}, 1},
		{"NaN then negative", []float64{nan, -2, -5}, 1},
	}
	for _, tc := range cases {
		if got := argmaxRow(tc.row); got != tc.want {
			t.Errorf("%s: argmaxRow(%v) = %d, want %d", tc.name, tc.row, got, tc.want)
		}
	}
}

// TestBatcherNaNLogitsEndToEnd: a served Result whose logits are all NaN
// carries Argmax -1 through the full dispatch path.
func TestBatcherNaNLogitsEndToEnd(t *testing.T) {
	nan := math.NaN()
	b := newWith(fakeSpec, Config{MaxDelay: time.Millisecond}.withDefaults(),
		[]predictor{&gatedPred{classes: fakeSpec.Classes, logits: []float64{nan, nan, nan}}})
	defer b.Close()
	res, err := b.Infer(context.Background(), fakeInput())
	if err != nil {
		t.Fatal(err)
	}
	if res.Argmax != -1 {
		t.Fatalf("all-NaN logits produced Argmax %d, want -1", res.Argmax)
	}
}

// TestBatcherStopFlushPartialBatch: a partial batch that is assembling when
// Close fires is served (its senders were admitted), not failed with
// ErrClosed.
func TestBatcherStopFlushPartialBatch(t *testing.T) {
	b := newWith(fakeSpec, Config{MaxBatch: 4, MaxDelay: time.Hour}.withDefaults(),
		[]predictor{&gatedPred{classes: fakeSpec.Classes}})
	results := make(chan Result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := b.Infer(context.Background(), fakeInput())
			if err != nil {
				t.Errorf("admitted request failed at shutdown: %v", err)
			}
			results <- res
		}()
	}
	// Wait until both requests are in the assembling batch (out of the
	// queue, inside the collect loop's hour-long deadline).
	deadline := time.Now().Add(5 * time.Second)
	for b.requests.Load() < 2 || b.Stats().QueueDepth > 0 {
		if time.Now().After(deadline) {
			t.Fatal("requests never reached the dispatcher")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the collect loop absorb both
	b.Close()
	for i := 0; i < 2; i++ {
		if res := <-results; res.BatchSize != 2 {
			t.Errorf("stop-path flush served batch size %d, want 2", res.BatchSize)
		}
	}
	if st := b.Stats(); st.Items != 2 || st.DeadlineFlushes != 1 {
		t.Errorf("stop-path flush stats: %+v", st)
	}
}

// TestBatcherStopDrainsQueued: requests still queued (not yet batched) when
// Close fires all fail with ErrClosed — deterministically, because a
// signalled stop takes priority over new queue work in the dispatch loop.
func TestBatcherStopDrainsQueued(t *testing.T) {
	entered := make(chan int)
	release := make(chan struct{})
	b := newWith(fakeSpec, Config{MaxBatch: 2, MaxDelay: time.Hour, QueueCap: 8}.withDefaults(),
		[]predictor{&gatedPred{classes: fakeSpec.Classes, entered: entered, release: release}})

	// Fill one batch; the gated predictor holds its flush open.
	servedErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := b.Infer(context.Background(), fakeInput())
			servedErrs <- err
		}()
	}
	if n := <-entered; n != 2 {
		t.Fatalf("first flush batch size %d, want 2", n)
	}

	// Two more requests queue behind the in-flight flush.
	queuedErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := b.Infer(context.Background(), fakeInput())
			queuedErrs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("requests never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Close while the flush is still in flight, then release it. The loop
	// must serve the in-flight batch, observe stop, and exit — leaving the
	// queued pair for the ErrClosed drain.
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	<-b.stop // Close has signalled shutdown
	close(release)
	<-closed

	for i := 0; i < 2; i++ {
		if err := <-servedErrs; err != nil {
			t.Errorf("in-flight batch request failed: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-queuedErrs; !errors.Is(err, ErrClosed) {
			t.Errorf("queued-but-unbatched request got %v, want ErrClosed", err)
		}
	}
	if st := b.Stats(); st.Items != 2 {
		t.Errorf("items = %d, want 2 (only the in-flight batch served)", st.Items)
	}
}

// TestBatcherReplicasParallelFlush proves the pool actually runs flushes in
// parallel: with two gated replicas and two batches' worth of requests, both
// replicas must be inside Forward at the same time before either is
// released.
func TestBatcherReplicasParallelFlush(t *testing.T) {
	entered := make(chan int, 2)
	release := make(chan struct{})
	preds := []predictor{
		&gatedPred{classes: fakeSpec.Classes, entered: entered, release: release},
		&gatedPred{classes: fakeSpec.Classes, entered: entered, release: release},
	}
	b := newWith(fakeSpec, Config{MaxBatch: 2, MaxDelay: time.Hour, QueueCap: 8}.withDefaults(), preds)
	defer func() {
		b.Close()
	}()

	results := make(chan Result, 4)
	for i := 0; i < 4; i++ {
		go func() {
			res, err := b.Infer(context.Background(), fakeInput())
			if err != nil {
				t.Errorf("request: %v", err)
			}
			results <- res
		}()
	}
	// Both replicas must reach Forward concurrently: two entered signals
	// while neither flush has been released.
	for i := 0; i < 2; i++ {
		select {
		case n := <-entered:
			if n != 2 {
				t.Errorf("flush %d batch size %d, want 2", i, n)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d concurrent flushes; the pool is not parallel", i)
		}
	}
	close(release)

	replicasSeen := map[int]bool{}
	for i := 0; i < 4; i++ {
		res := <-results
		if res.BatchSize != 2 {
			t.Errorf("batch size %d, want 2", res.BatchSize)
		}
		replicasSeen[res.Replica] = true
	}
	if len(replicasSeen) != 2 {
		t.Errorf("replicas used: %v, want both", replicasSeen)
	}
	st := b.Stats()
	if len(st.PerReplica) != 2 {
		t.Fatalf("per-replica stats: %+v", st.PerReplica)
	}
	for i, rs := range st.PerReplica {
		if rs.Items != 2 || rs.Batches != 1 {
			t.Errorf("replica %d stats %+v, want 2 items / 1 batch", i, rs)
		}
	}
}

// TestBatcherShed: with admission control on, a request arriving at a full
// queue fails fast with ErrOverloaded — it never blocks its sender — and the
// shed counter moves. Admitted work is unaffected.
func TestBatcherShed(t *testing.T) {
	entered := make(chan int)
	release := make(chan struct{})
	b := newWith(fakeSpec, Config{MaxBatch: 1, MaxDelay: time.Millisecond, QueueCap: 2, Shed: true}.withDefaults(),
		[]predictor{&gatedPred{classes: fakeSpec.Classes, entered: entered, release: release}})

	admitted := make(chan error, 3)
	go func() { // r1: taken by the replica, held inside Forward
		_, err := b.Infer(context.Background(), fakeInput())
		admitted <- err
	}()
	if n := <-entered; n != 1 {
		t.Fatalf("first flush batch size %d, want 1", n)
	}
	for i := 0; i < 2; i++ { // r2, r3: fill the queue to capacity
		go func() {
			_, err := b.Infer(context.Background(), fakeInput())
			admitted <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// r4 arrives at a full queue: immediate ErrOverloaded, no blocking.
	start := time.Now()
	_, err := b.Infer(context.Background(), fakeInput())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overload request got %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("shed request blocked %v; shedding must be immediate", waited)
	}
	if st := b.Stats(); st.Shed != 1 || !st.ShedEnabled {
		t.Errorf("shed stats: shed=%d enabled=%v", st.Shed, st.ShedEnabled)
	}

	// Admitted work drains normally once the gate opens.
	go func() {
		for range entered { // let the remaining flushes through
		}
	}()
	close(release)
	for i := 0; i < 3; i++ {
		if err := <-admitted; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
	b.Close()
	close(entered)
}

// TestBatcherCoalesceDelayAdaptive pins the adaptive deadline curve: the
// patient MaxDelay when the queue is idle, shrinking monotonically to
// MinDelay as depth approaches MaxBatch.
func TestBatcherCoalesceDelayAdaptive(t *testing.T) {
	cfg := Config{MaxBatch: 8, MaxDelay: 8 * time.Millisecond, MinDelay: 1 * time.Millisecond, QueueCap: 32}.withDefaults()
	b := &Batcher{cfg: cfg, reqs: make(chan *request, cfg.QueueCap)}

	if d := b.coalesceDelay(); d != cfg.MaxDelay {
		t.Fatalf("idle delay %v, want MaxDelay %v", d, cfg.MaxDelay)
	}
	prev := cfg.MaxDelay
	for depth := 1; depth <= cfg.MaxBatch+4; depth++ {
		b.reqs <- &request{}
		d := b.coalesceDelay()
		if d > prev {
			t.Fatalf("delay grew with depth: %v -> %v at depth %d", prev, d, depth)
		}
		if d < cfg.MinDelay {
			t.Fatalf("delay %v below MinDelay %v at depth %d", d, cfg.MinDelay, depth)
		}
		if depth >= cfg.MaxBatch && d != cfg.MinDelay {
			t.Fatalf("saturated delay %v at depth %d, want MinDelay %v", d, depth, cfg.MinDelay)
		}
		prev = d
	}
	if got := b.shortDeadlines.Load(); got == 0 {
		t.Error("short-deadline counter did not move under load")
	}
}

// TestConfigDefaults pins the resolved knobs.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxBatch != 8 || c.MaxDelay != 2*time.Millisecond || c.QueueCap != 32 {
		t.Errorf("base defaults: %+v", c)
	}
	if c.MinDelay != c.MaxDelay/4 {
		t.Errorf("MinDelay default = %v, want MaxDelay/4 = %v", c.MinDelay, c.MaxDelay/4)
	}
	if c.Replicas != 1 || c.Shed {
		t.Errorf("replica/shed defaults: %+v", c)
	}
	clamped := Config{MaxDelay: time.Millisecond, MinDelay: time.Second}.withDefaults()
	if clamped.MinDelay != clamped.MaxDelay {
		t.Errorf("MinDelay not clamped to MaxDelay: %+v", clamped)
	}
}

// TestBatcherReplicaDeterminism: with several fixed-seed replicas serving
// concurrent traffic, identical inputs yield identical logits no matter
// which replica or micro-batch served them, and the per-replica counters
// account for every item.
func TestBatcherReplicaDeterminism(t *testing.T) {
	b, err := New(MustLookup("smallcnn"), Config{MaxBatch: 4, MaxDelay: time.Millisecond, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	spec := b.Model()
	const total, workers, patterns = 60, 6, 3

	inputs := make([][]float64, patterns)
	for i := range inputs {
		inputs[i] = testInput(spec, int64(i))
	}
	var mu sync.Mutex
	refs := make(map[int][]float64, patterns)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += workers {
				pat := i % patterns
				res, err := b.Infer(context.Background(), inputs[pat])
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					continue
				}
				mu.Lock()
				if ref, ok := refs[pat]; !ok {
					refs[pat] = append([]float64(nil), res.Logits...)
				} else {
					for j := range ref {
						if ref[j] != res.Logits[j] {
							t.Errorf("pattern %d: logits differ across replicas/batches", pat)
							break
						}
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Items != total {
		t.Errorf("items = %d, want %d", st.Items, total)
	}
	var perReplica int64
	for _, rs := range st.PerReplica {
		perReplica += rs.Items
	}
	if perReplica != st.Items {
		t.Errorf("per-replica items sum %d != total items %d", perReplica, st.Items)
	}
	if st.Replicas != 3 || len(st.PerReplica) != 3 {
		t.Errorf("replica stats: %+v", st)
	}
}
