// Package infer is the batched inference serving subsystem: a small
// registry of servable models compiled onto the nn engine's fused,
// pack-reusing fast path (nn.Predictor), and a micro-batcher that coalesces
// concurrent single-sample requests into one forward pass.
//
// The batcher is the serving-side enactment of the paper's thesis: a lone
// request streams every weight panel from memory for one row of work, while
// a coalesced micro-batch reuses each decoded panel across all of its rows,
// turning a bandwidth-bound call into a compute-bound one. Grouping work to
// reuse on-chip data is exactly what the simulator's MBS schedules do for
// training — here the serving stack practices it.
package infer

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nn"
)

// ModelSpec names one servable model. Weights are generated from a fixed
// seed at build time, so every process serving the same spec serves
// identical weights (and identical logits — the predictor's output is
// deterministic and batch-composition independent).
type ModelSpec struct {
	// Name is the registry key ("smallcnn", "mlp", ...).
	Name string
	// Description is a one-line summary for discovery endpoints.
	Description string
	// InShape is the per-sample input shape.
	InShape []int
	// Classes is the per-sample output width.
	Classes int

	seed  int64
	build func(rng *rand.Rand) *nn.Model
}

// InSize returns the flattened per-sample input length.
func (sp ModelSpec) InSize() int {
	n := 1
	for _, d := range sp.InShape {
		n *= d
	}
	return n
}

// Build constructs the model with its fixed weights.
func (sp ModelSpec) Build() *nn.Model { return sp.build(rand.New(rand.NewSource(sp.seed))) }

// NewPredictor compiles the spec's model for serving at the given maximum
// batch.
func (sp ModelSpec) NewPredictor(maxBatch int) (*nn.Predictor, error) {
	return nn.NewPredictor(sp.Build(), sp.InShape, maxBatch)
}

var registry = map[string]ModelSpec{
	"smallcnn": {
		Name:        "smallcnn",
		Description: "the Fig. 6 substitute classifier: 3 conv+GN+ReLU stages, GAP, linear head over 3x16x16 inputs",
		InShape:     []int{3, 16, 16},
		Classes:     8,
		seed:        1234,
		build: func(rng *rand.Rand) *nn.Model {
			return nn.BuildSmallCNN(rng, 3, 16, 8, nn.NormGroup, 8)
		},
	},
	"mlp": {
		Name:        "mlp",
		Description: "FC classifier (784-512-512-10), the weight-traffic-bound shape batching wins the most on",
		InShape:     []int{784},
		Classes:     10,
		seed:        4321,
		build: func(rng *rand.Rand) *nn.Model {
			return nn.BuildMLP(rng, 784, []int{512, 512}, 10)
		},
	},
}

// Lookup returns the named model spec.
func Lookup(name string) (ModelSpec, bool) {
	sp, ok := registry[name]
	return sp, ok
}

// Models lists the registry names in stable order.
func Models() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MustLookup is Lookup for callers with a static name.
func MustLookup(name string) ModelSpec {
	sp, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("infer: unknown model %q", name))
	}
	return sp
}
