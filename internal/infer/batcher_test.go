package infer

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testInput builds a valid input for spec from a seed.
func testInput(spec ModelSpec, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]float64, spec.InSize())
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	return in
}

func newTestBatcher(t *testing.T, cfg Config) *Batcher {
	t.Helper()
	b, err := New(MustLookup("smallcnn"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

// TestBatcherFullFlush: enough concurrent requests coalesce into one full
// micro-batch well before the (generous) deadline.
func TestBatcherFullFlush(t *testing.T) {
	b := newTestBatcher(t, Config{MaxBatch: 4, MaxDelay: 2 * time.Second})
	spec := b.Model()
	var wg sync.WaitGroup
	results := make([]Result, 4)
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Infer(context.Background(), testInput(spec, int64(i)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("full batch waited %v — it must flush on max-batch, not the deadline", elapsed)
	}
	for i, res := range results {
		if res.BatchSize != 4 {
			t.Errorf("request %d served at batch size %d, want 4", i, res.BatchSize)
		}
		if len(res.Logits) != spec.Classes {
			t.Errorf("request %d: %d logits, want %d", i, len(res.Logits), spec.Classes)
		}
	}
	st := b.Stats()
	if st.FullFlushes < 1 || st.Items != 4 || st.Requests != 4 {
		t.Errorf("stats after full flush: %+v", st)
	}
}

// TestBatcherDeadlineFlush: a partial batch flushes when the coalesce
// deadline expires instead of waiting for max-batch forever.
func TestBatcherDeadlineFlush(t *testing.T) {
	b := newTestBatcher(t, Config{MaxBatch: 8, MaxDelay: 30 * time.Millisecond})
	spec := b.Model()
	var wg sync.WaitGroup
	var batchSizes [3]int
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Infer(context.Background(), testInput(spec, int64(i)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			batchSizes[i] = res.BatchSize
		}(i)
	}
	wg.Wait()
	for i, n := range batchSizes {
		if n == 0 || n > 3 {
			t.Errorf("request %d served at batch size %d, want 1..3", i, n)
		}
	}
	st := b.Stats()
	if st.DeadlineFlushes < 1 {
		t.Errorf("no deadline flush recorded: %+v", st)
	}
	if st.Items != 3 {
		t.Errorf("items = %d, want 3", st.Items)
	}
}

// TestBatcherCancelMidBatch: a request cancelled while queued frees its
// batch slot — the caller returns immediately with its context error, the
// remaining partial batch still flushes on the deadline without it, and the
// cancellation is counted.
func TestBatcherCancelMidBatch(t *testing.T) {
	b := newTestBatcher(t, Config{MaxBatch: 8, MaxDelay: 150 * time.Millisecond})
	spec := b.Model()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Infer(ctx, testInput(spec, 0))
		errc <- err
	}()
	// Two durable peers join the same assembling batch.
	var wg sync.WaitGroup
	sizes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Infer(context.Background(), testInput(spec, int64(i+1)))
			if err != nil {
				t.Errorf("peer %d: %v", i, err)
				return
			}
			sizes[i] = res.BatchSize
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let all three enqueue
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request returned %v, want context.Canceled", err)
	}
	wg.Wait()
	for i, n := range sizes {
		if n != 2 {
			t.Errorf("peer %d served at batch size %d, want 2 (cancelled slot freed)", i, n)
		}
	}
	st := b.Stats()
	if st.Cancelled != 1 {
		t.Errorf("cancelled = %d, want 1", st.Cancelled)
	}
	if st.Items != 2 {
		t.Errorf("items = %d, want 2 (the cancelled request must not be served)", st.Items)
	}
}

// TestBatcherCancelFreesSlotForArrival: with MaxBatch 2, a cancelled
// waiter's slot goes to a later arrival — the flush is a full batch of the
// two live requests, not a premature flush with a dead slot.
func TestBatcherCancelFreesSlotForArrival(t *testing.T) {
	b := newTestBatcher(t, Config{MaxBatch: 2, MaxDelay: 300 * time.Millisecond})
	spec := b.Model()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Infer(ctx, testInput(spec, 0))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-errc

	start := time.Now()
	var wg sync.WaitGroup
	sizes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Infer(context.Background(), testInput(spec, int64(i+1)))
			if err != nil {
				t.Errorf("arrival %d: %v", i, err)
				return
			}
			sizes[i] = res.BatchSize
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("arrivals waited %v for the deadline; the freed slot should have full-flushed them", elapsed)
	}
	for i, n := range sizes {
		if n != 2 {
			t.Errorf("arrival %d served at batch size %d, want 2", i, n)
		}
	}
}

// TestBatcherBadInput: a wrong-sized input fails fast with a typed error
// and never reaches the queue.
func TestBatcherBadInput(t *testing.T) {
	b := newTestBatcher(t, Config{})
	_, err := b.Infer(context.Background(), make([]float64, 3))
	var bad *BadInputError
	if !errors.As(err, &bad) {
		t.Fatalf("got %v, want a BadInputError", err)
	}
	if st := b.Stats(); st.Requests != 0 {
		t.Errorf("bad input counted as a request: %+v", st)
	}
}

// TestBatcherClose: requests after Close fail with ErrClosed; Close is
// idempotent-safe for queued work (drained with ErrClosed, not leaked).
func TestBatcherClose(t *testing.T) {
	b, err := New(MustLookup("smallcnn"), Config{MaxDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := b.Infer(context.Background(), testInput(b.Model(), 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestBatcherConcurrentLoad is the race-detector workout: many concurrent
// clients, every request served exactly once with deterministic logits
// (identical input -> identical logits regardless of batch composition),
// and real coalescing under load.
func TestBatcherConcurrentLoad(t *testing.T) {
	b := newTestBatcher(t, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	spec := b.Model()
	const total, workers, patterns = 120, 8, 4

	inputs := make([][]float64, patterns)
	for i := range inputs {
		inputs[i] = testInput(spec, int64(i))
	}
	var refMu sync.Mutex
	refs := make(map[int][]float64, patterns)
	var next, failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= total {
					return
				}
				pat := i % patterns
				res, err := b.Infer(context.Background(), inputs[pat])
				if err != nil {
					failures.Add(1)
					t.Errorf("request %d: %v", i, err)
					continue
				}
				refMu.Lock()
				if ref, ok := refs[pat]; !ok {
					refs[pat] = append([]float64(nil), res.Logits...)
				} else {
					for j := range ref {
						if ref[j] != res.Logits[j] {
							t.Errorf("pattern %d: logits differ across micro-batches", pat)
							break
						}
					}
				}
				refMu.Unlock()
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Items != total {
		t.Errorf("items = %d, want %d", st.Items, total)
	}
	if st.Batches >= total {
		t.Errorf("no coalescing: %d batches for %d requests", st.Batches, total)
	}
	if st.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1 under %d concurrent workers", st.MeanBatchSize, workers)
	}
}

// TestModelRegistry sanity-checks the registry surface.
func TestModelRegistry(t *testing.T) {
	names := Models()
	if len(names) < 2 {
		t.Fatalf("registry has %d models", len(names))
	}
	for _, name := range names {
		sp, ok := Lookup(name)
		if !ok || sp.Name != name {
			t.Fatalf("Lookup(%q) = %+v, %v", name, sp, ok)
		}
		if sp.InSize() <= 0 || sp.Classes <= 0 {
			t.Fatalf("%s: bad spec %+v", name, sp)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted an unknown model")
	}
	// Fixed seeds: two builds serve identical weights.
	sp := MustLookup("mlp")
	a, b := sp.Build(), sp.Build()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if d := pa[i].Data.MaxAbsDiff(pb[i].Data); d != 0 {
			t.Fatalf("%s: rebuilt weights differ by %g", pa[i].Name, d)
		}
	}
}
