package sim

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/models"
)

func TestScalingWeakEfficiency(t *testing.T) {
	net, _ := models.Build("resnet50")
	s := core.MustPlan(net, core.DefaultOptions(core.MBS2, 32))
	hw := DefaultHW(core.MBS2, memsys.HBM2)
	results, err := SimulateScaling(s, hw, DefaultScaleConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Efficiency != 1.0 || results[0].AllReduceSeconds != 0 {
		t.Errorf("single accelerator should be the baseline: %+v", results[0])
	}
	for i := 1; i < len(results); i++ {
		r := results[i]
		if r.GlobalBatch != (i+1)*hw.Cores*32 {
			t.Errorf("p=%d: global batch %d", i+1, r.GlobalBatch)
		}
		if r.Efficiency >= 1 || r.Efficiency <= 0 {
			t.Errorf("p=%d: efficiency %f out of (0,1)", i+1, r.Efficiency)
		}
		if r.SamplesPerSecond() <= results[i-1].SamplesPerSecond() {
			t.Errorf("p=%d: throughput did not grow", i+1)
		}
	}
	// ResNet-50's 25M fp16 parameters over 25 GB/s stay a small fraction of
	// a ~65 ms step: weak scaling efficiency must remain high.
	if eff := results[7].Efficiency; eff < 0.90 {
		t.Errorf("8-accelerator efficiency = %.2f, want > 0.90", eff)
	}
}

func TestScalingAllReduceGrowsWithRing(t *testing.T) {
	net, _ := models.Build("alexnet") // 61M params stress the reduction
	s := core.MustPlan(net, core.DefaultOptions(core.MBS1, 64))
	hw := DefaultHW(core.MBS1, memsys.HBM2)
	results, err := SimulateScaling(s, hw, DefaultScaleConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Ring volume 2(p-1)/p is increasing in p.
	for i := 2; i < len(results); i++ {
		if results[i].AllReduceSeconds <= results[i-1].AllReduceSeconds {
			t.Errorf("p=%d: all-reduce time should grow", i+1)
		}
	}
	// AlexNet's FC-heavy parameters make the reduction visible.
	if results[3].AllReduceSeconds < 1e-3 {
		t.Errorf("AlexNet all-reduce %.4fs implausibly small", results[3].AllReduceSeconds)
	}
}

func TestScalingRejectsBadConfig(t *testing.T) {
	net, _ := models.Build("resnet50")
	s := core.MustPlan(net, core.DefaultOptions(core.MBS2, 32))
	hw := DefaultHW(core.MBS2, memsys.HBM2)
	if _, err := SimulateScaling(s, hw, ScaleConfig{Accelerators: 0}); err == nil {
		t.Error("zero accelerators should error")
	}
}

func TestScaleSummary(t *testing.T) {
	net, _ := models.Build("resnet50")
	s := core.MustPlan(net, core.DefaultOptions(core.MBS2, 32))
	hw := DefaultHW(core.MBS2, memsys.HBM2)
	results, _ := SimulateScaling(s, hw, DefaultScaleConfig(2))
	out := ScaleSummary(results)
	if !strings.Contains(out, "samples/s") || len(strings.Split(out, "\n")) < 3 {
		t.Errorf("bad summary: %q", out)
	}
}
