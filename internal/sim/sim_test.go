package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/models"
)

func simulate(t testing.TB, name string, cfg core.Config, dram memsys.DRAM) *Result {
	t.Helper()
	net, err := models.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	s := core.MustPlan(net, core.DefaultOptions(cfg, models.DefaultBatch(name)))
	r, err := Simulate(s, DefaultHW(cfg, dram))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestResultSanity(t *testing.T) {
	r := simulate(t, "resnet50", core.MBS2, memsys.HBM2)
	if r.StepSeconds <= 0 || r.DRAMBytes <= 0 || r.GBBytes < r.DRAMBytes {
		t.Errorf("implausible result: %+v", r)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization out of range: %f", r.Utilization)
	}
	if r.Energy.Total() <= 0 {
		t.Error("zero energy")
	}
	var sum float64
	for _, v := range r.TimeByClass {
		sum += v
	}
	if diff := sum - r.StepSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("class breakdown %.6f != step %.6f", sum, r.StepSeconds)
	}
}

func TestFig10SpeedupOrdering(t *testing.T) {
	// Fig. 10a: for deep CNNs, each configuration is at least as fast as
	// the previous one: Baseline <= ArchOpt <= IL ... and MBS1/MBS2 win.
	for _, name := range []string{"resnet50", "resnet101", "inceptionv3", "inceptionv4"} {
		base := simulate(t, name, core.Baseline, memsys.HBM2).StepSeconds
		arch := simulate(t, name, core.ArchOpt, memsys.HBM2).StepSeconds
		il := simulate(t, name, core.IL, memsys.HBM2).StepSeconds
		m1 := simulate(t, name, core.MBS1, memsys.HBM2).StepSeconds
		m2 := simulate(t, name, core.MBS2, memsys.HBM2).StepSeconds
		if !(arch < base && il < arch && m1 < il && m2 <= m1*1.001) {
			t.Errorf("%s: time ordering violated: base=%.4f arch=%.4f il=%.4f m1=%.4f m2=%.4f",
				name, base, arch, il, m1, m2)
		}
	}
}

func TestFig10HeadlineSpeedup(t *testing.T) {
	// The paper reports 36-66% per-step speedup for MBS2 vs ArchOpt on the
	// deep CNNs, and 53% combined (MBS2+WaveCore vs Baseline). Accept a
	// generous band around those shapes.
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		arch := simulate(t, name, core.ArchOpt, memsys.HBM2).StepSeconds
		m2 := simulate(t, name, core.MBS2, memsys.HBM2).StepSeconds
		speedup := arch / m2
		if speedup < 1.25 || speedup > 2.2 {
			t.Errorf("%s: MBS2 speedup vs ArchOpt = %.2f, want 1.3-2.0", name, speedup)
		}
	}
}

func TestFig10EnergySavings(t *testing.T) {
	// Fig. 10b: MBS2 saves 24-30% energy vs Baseline for the deep CNNs.
	for _, name := range []string{"resnet50", "resnet101", "inceptionv3", "inceptionv4"} {
		base := simulate(t, name, core.Baseline, memsys.HBM2).Energy.Total()
		m2 := simulate(t, name, core.MBS2, memsys.HBM2).Energy.Total()
		rel := m2 / base
		if rel < 0.55 || rel > 0.85 {
			t.Errorf("%s: MBS2 energy = %.2f of baseline, want ~0.70-0.76", name, rel)
		}
	}
}

func TestDRAMEnergyFractions(t *testing.T) {
	// Section 6: DRAM is ~21.6% of baseline energy and drops to ~8.7%
	// under MBS1 for ResNet50.
	base := simulate(t, "resnet50", core.Baseline, memsys.HBM2).Energy.DRAMFraction()
	m1 := simulate(t, "resnet50", core.MBS1, memsys.HBM2).Energy.DRAMFraction()
	if base < 0.15 || base > 0.30 {
		t.Errorf("baseline DRAM fraction = %.3f, want ~0.216", base)
	}
	if m1 < 0.05 || m1 > 0.16 {
		t.Errorf("MBS1 DRAM fraction = %.3f, want ~0.087", m1)
	}
	if m1 >= base {
		t.Error("MBS must shrink the DRAM energy share")
	}
}

func TestFig14Utilization(t *testing.T) {
	// Fig. 14 (unlimited DRAM bandwidth): Baseline averages ~54%, ArchOpt
	// ~81%, MBS-FS dips below MBS1/2, and MBS1/2 land within a few percent
	// of ArchOpt.
	var baseSum, archSum, fsSum, m1Sum float64
	names := []string{"resnet50", "resnet101", "resnet152", "inceptionv3", "inceptionv4", "alexnet"}
	for _, name := range names {
		dram := memsys.HBM2.Unlimited()
		base := simulate(t, name, core.Baseline, dram).Utilization
		arch := simulate(t, name, core.ArchOpt, dram).Utilization
		fs := simulate(t, name, core.MBSFS, dram).Utilization
		m1 := simulate(t, name, core.MBS1, dram).Utilization
		if base >= arch {
			t.Errorf("%s: baseline util %.3f >= ArchOpt %.3f", name, base, arch)
		}
		if fs >= m1 {
			t.Errorf("%s: MBS-FS util %.3f >= MBS1 %.3f", name, fs, m1)
		}
		if m1 < arch*0.90 {
			t.Errorf("%s: MBS1 util %.3f far below ArchOpt %.3f", name, m1, arch)
		}
		baseSum += base
		archSum += arch
		fsSum += fs
		m1Sum += m1
	}
	n := float64(len(names))
	if avg := baseSum / n; avg < 0.45 || avg > 0.70 {
		t.Errorf("baseline average utilization = %.3f, want ~0.54", avg)
	}
	if avg := archSum / n; avg < 0.72 || avg > 0.97 {
		t.Errorf("ArchOpt average utilization = %.3f, want ~0.81", avg)
	}
	if fsSum/n >= m1Sum/n {
		t.Error("average MBS-FS utilization should trail MBS1")
	}
}

func TestFig11BufferSensitivity(t *testing.T) {
	// Fig. 11: MBS2 at a 5 MiB buffer still beats IL at 40 MiB on both
	// traffic and time, and MBS varies little across buffer sizes.
	net, _ := models.Build("resnet50")
	run := func(cfg core.Config, mib int64) *Result {
		opts := core.DefaultOptions(cfg, 32)
		opts.BufferBytes = mib << 20
		hw := DefaultHW(cfg, memsys.HBM2)
		hw.GB = hw.GB.WithSize(opts.BufferBytes)
		return MustSimulate(core.MustPlan(net, opts), hw)
	}
	il40 := run(core.IL, 40)
	mbs5 := run(core.MBS2, 5)
	mbs40 := run(core.MBS2, 40)
	if mbs5.DRAMBytes >= il40.DRAMBytes {
		t.Errorf("MBS2@5MiB traffic %d >= IL@40MiB %d", mbs5.DRAMBytes, il40.DRAMBytes)
	}
	if mbs5.StepSeconds >= il40.StepSeconds {
		t.Errorf("MBS2@5MiB time %.4f >= IL@40MiB %.4f", mbs5.StepSeconds, il40.StepSeconds)
	}
	if variation := mbs5.StepSeconds/mbs40.StepSeconds - 1; variation > 0.30 {
		t.Errorf("MBS2 time varies %.0f%% across 5-40MiB, want small", variation*100)
	}
}

func TestFig12MemorySensitivity(t *testing.T) {
	// Fig. 12: Baseline loses ~39% moving HBM2x2 -> LPDDR4; MBS2 loses
	// less than ~20%.
	baseH := simulate(t, "resnet50", core.Baseline, memsys.HBM2x2).StepSeconds
	baseL := simulate(t, "resnet50", core.Baseline, memsys.LPDDR4).StepSeconds
	mbsH := simulate(t, "resnet50", core.MBS2, memsys.HBM2x2).StepSeconds
	mbsL := simulate(t, "resnet50", core.MBS2, memsys.LPDDR4).StepSeconds
	baseDrop := baseL/baseH - 1
	mbsDrop := mbsL/mbsH - 1
	if baseDrop < 0.25 {
		t.Errorf("baseline LPDDR4 slowdown = %.0f%%, want large", baseDrop*100)
	}
	if mbsDrop > 0.20 {
		t.Errorf("MBS2 LPDDR4 slowdown = %.0f%%, want < 20%%", mbsDrop*100)
	}
	if mbsDrop >= baseDrop {
		t.Error("MBS must be less bandwidth sensitive than baseline")
	}
}

func TestFig13GPUComparison(t *testing.T) {
	// Fig. 13: one WaveCore chip running MBS2 beats a V100 on every
	// network and every memory type, including low-cost LPDDR4; the gap
	// widens with network depth.
	gpu := DefaultV100()
	prev := 0.0
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		net, _ := models.Build(name)
		gres := SimulateGPU(gpu, core.MustPlan(net, core.DefaultOptions(core.Baseline, 64)))
		s := core.MustPlan(net, core.DefaultOptions(core.MBS2, 32))
		for _, mem := range []memsys.DRAM{memsys.HBM2x2, memsys.GDDR5, memsys.HBM2, memsys.LPDDR4} {
			r := MustSimulate(s, DefaultHW(core.MBS2, mem))
			speedup := gres.StepSeconds / r.StepSeconds
			if speedup < 1.0 {
				t.Errorf("%s/%s: WaveCore loses to V100 (%.2f)", name, mem.Name, speedup)
			}
			if speedup > 1.6 {
				t.Errorf("%s/%s: speedup %.2f implausibly high vs paper's 1.06-1.27", name, mem.Name, speedup)
			}
		}
		wc := MustSimulate(s, DefaultHW(core.MBS2, memsys.HBM2x2))
		ratio := gres.StepSeconds / wc.StepSeconds
		if ratio < prev {
			t.Errorf("%s: GPU gap shrank with depth (%.2f < %.2f)", name, ratio, prev)
		}
		prev = ratio
	}
}

func TestGPUModelBasics(t *testing.T) {
	gpu := DefaultV100()
	if gpu.kernelUtil(1) < gpu.MinUtil-1e-9 {
		t.Error("tiny kernels must floor at MinUtil")
	}
	if gpu.kernelUtil(1<<62) != gpu.MaxUtil {
		t.Error("huge kernels must cap at MaxUtil")
	}
	net, _ := models.Build("resnet50")
	g := SimulateGPU(gpu, core.MustPlan(net, core.DefaultOptions(core.Baseline, 64)))
	if g.StepSeconds <= 0 || g.Kernels == 0 || g.DRAMBytes <= 0 {
		t.Errorf("implausible GPU result: %+v", g)
	}
}

func TestKindClassMapping(t *testing.T) {
	r := simulate(t, "resnet50", core.Baseline, memsys.HBM2)
	for _, class := range []KindClass{ClassConv, ClassNorm, ClassPool, ClassSum, ClassFC} {
		if r.TimeByClass[class] <= 0 {
			t.Errorf("class %v has zero time", class)
		}
	}
	// Conv dominates a ResNet (paper Fig. 12 breakdown).
	if r.TimeByClass[ClassConv] < r.TimeByClass[ClassNorm] {
		t.Error("conv time should dominate norm time on ResNet50")
	}
}

func TestUtilizationIndependentOfBandwidth(t *testing.T) {
	a := simulate(t, "resnet50", core.MBS1, memsys.HBM2).Utilization
	b := simulate(t, "resnet50", core.MBS1, memsys.LPDDR4).Utilization
	if a != b {
		t.Errorf("utilization depends on memory type: %f vs %f", a, b)
	}
}

func TestSimulateRejectsBadHW(t *testing.T) {
	net, _ := models.Build("alexnet")
	s := core.MustPlan(net, core.DefaultOptions(core.Baseline, 64))
	hw := DefaultHW(core.Baseline, memsys.HBM2)
	hw.Array.Rows = 0
	if _, err := Simulate(s, hw); err == nil {
		t.Error("invalid array config must be rejected")
	}
}

func TestStringOutputs(t *testing.T) {
	r := simulate(t, "alexnet", core.MBS1, memsys.HBM2)
	if r.String() == "" || r.BreakdownString() == "" {
		t.Error("empty renderings")
	}
	for i, c := range Classes {
		if c.String() == "" {
			t.Errorf("class %d has empty name", i)
		}
	}
}
