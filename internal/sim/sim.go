// Package sim is the end-to-end WaveCore training-step simulator: it walks
// the traffic ledger produced by the MBS scheduler (internal/core), costs
// every GEMM on the systolic-array model (internal/wavecore) and every
// vector op on the vector units, overlaps compute with the memory system
// (internal/memsys), and aggregates time, traffic, utilization and energy
// (internal/energy). It also contains the analytical V100 comparator used
// by Fig. 13.
package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/wavecore"
)

// HW is the hardware configuration of one WaveCore core plus its share of
// the memory system.
type HW struct {
	Array  wavecore.Config
	Vector wavecore.VectorUnit
	DRAM   memsys.DRAM
	GB     memsys.GlobalBuffer
	Energy energy.Model
	// Cores on the chip; each runs an equal slice of the chip mini-batch,
	// so chip step time equals core step time.
	Cores int
}

// DefaultHW returns the paper's baseline WaveCore: 128x128 array at 0.7 GHz
// (double buffering per the configuration), 10 MiB global buffer, and the
// given DRAM shared by two cores.
func DefaultHW(cfg core.Config, dram memsys.DRAM) HW {
	return HW{
		Array:  wavecore.DefaultConfig(cfg.DoubleBuffered()),
		Vector: wavecore.DefaultVectorUnit(),
		DRAM:   dram,
		GB:     memsys.DefaultGlobalBuffer(),
		Energy: energy.DefaultModel(),
		Cores:  2,
	}
}

// coreDRAMBandwidth is this core's share of the chip's DRAM bandwidth.
func (hw HW) coreDRAMBandwidth() float64 {
	c := hw.Cores
	if c <= 0 {
		c = 1
	}
	return hw.DRAM.BandwidthBytes / float64(c)
}

// KindClass buckets layer kinds the way Fig. 12's breakdown does.
type KindClass int

const (
	// ClassConv covers convolution GEMMs.
	ClassConv KindClass = iota
	// ClassFC covers fully connected GEMMs.
	ClassFC
	// ClassNorm covers normalization and activation passes (the paper's
	// NORM/RELU bucket).
	ClassNorm
	// ClassPool covers pooling.
	ClassPool
	// ClassSum covers residual merges and split-point gradient sums.
	ClassSum
)

// Classes lists the buckets in Fig. 12's legend order.
var Classes = []KindClass{ClassSum, ClassPool, ClassNorm, ClassFC, ClassConv}

// MarshalText renders the class name in JSON output (including as map keys
// in Fig. 12's per-class breakdown).
func (k KindClass) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

func (k KindClass) String() string {
	switch k {
	case ClassConv:
		return "Conv"
	case ClassFC:
		return "FC"
	case ClassNorm:
		return "Norm"
	case ClassPool:
		return "Pool"
	case ClassSum:
		return "Sum"
	default:
		return fmt.Sprintf("KindClass(%d)", int(k))
	}
}

// classOf maps a ledger item kind to its Fig. 12 bucket.
func classOf(k graph.LayerKind) KindClass {
	switch k {
	case graph.Conv:
		return ClassConv
	case graph.FC:
		return ClassFC
	case graph.Norm, graph.Act:
		return ClassNorm
	case graph.Pool:
		return ClassPool
	default:
		return ClassSum
	}
}

// ItemResult is the simulated cost of one ledger item.
type ItemResult struct {
	Item       *core.Item
	Class      KindClass
	Cycles     int64 // systolic cycles (GEMM items only)
	MACs       int64 // useful MACs (GEMM) or vector ops
	ComputeSec float64
	MemSec     float64
	Seconds    float64 // max(compute, memory) — double-buffered overlap
}

// Result aggregates a full training step on one core.
type Result struct {
	Network  string
	Config   core.Config
	Schedule *core.Schedule
	HW       HW

	StepSeconds float64
	DRAMBytes   int64
	GBBytes     int64

	// Utilization is useful MACs over array capacity across all GEMM items
	// (Fig. 14's metric; independent of memory bandwidth).
	Utilization float64

	GEMMCycles int64
	GEMMMACs   int64
	VectorOps  int64

	Energy energy.Breakdown

	TimeByClass map[KindClass]float64
	Items       []ItemResult
}

// Simulate runs one training step of the schedule on the hardware.
func Simulate(s *core.Schedule, hw HW) (*Result, error) {
	return SimulateTraffic(s, core.ComputeTraffic(s), hw)
}

// SimulateTraffic runs one training step using a precomputed traffic ledger
// for the schedule. The ledger is only read, so callers (e.g. the sweep
// engine's cache) may share one ledger across concurrent simulations.
func SimulateTraffic(s *core.Schedule, tr *core.Traffic, hw HW) (*Result, error) {
	if err := hw.Array.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Network:  s.Net.Name,
		Config:   s.Opts.Config,
		Schedule: s,
		HW:       hw,
		TimeByClass: map[KindClass]float64{
			ClassConv: 0, ClassFC: 0, ClassNorm: 0, ClassPool: 0, ClassSum: 0,
		},
	}
	bw := hw.coreDRAMBandwidth()

	for i := range tr.Items {
		it := &tr.Items[i]
		ir := ItemResult{Item: it, Class: classOf(it.Kind)}

		memSec := float64(it.DRAM()) / bw
		gbSec := hw.GB.TransferSeconds(it.GB())
		if gbSec > memSec {
			memSec = gbSec
		}
		ir.MemSec = memSec

		if it.Layer != nil && it.Layer.IsGEMM() {
			cost := gemmCost(hw.Array, it)
			ir.Cycles = cost.Cycles
			ir.MACs = cost.MACs
			ir.ComputeSec = hw.Array.Seconds(cost.Cycles)
			res.GEMMCycles += cost.Cycles
			res.GEMMMACs += cost.MACs
		} else {
			ops := vectorOps(it)
			ir.MACs = ops
			ir.ComputeSec = hw.Vector.Seconds(ops)
			res.VectorOps += ops
		}

		ir.Seconds = math.Max(ir.ComputeSec, ir.MemSec)
		res.StepSeconds += ir.Seconds
		res.DRAMBytes += it.DRAM()
		res.GBBytes += it.GB()
		res.TimeByClass[ir.Class] += ir.Seconds
		res.Items = append(res.Items, ir)
	}

	if res.GEMMCycles > 0 {
		res.Utilization = float64(res.GEMMMACs) /
			(float64(res.GEMMCycles) * float64(hw.Array.PEs()))
	}
	res.Energy = hw.Energy.Step(
		res.DRAMBytes, res.GBBytes, res.GEMMMACs, res.VectorOps,
		hw.DRAM.EnergyPerByte, hw.GB.EnergyPerByte, res.StepSeconds)
	return res, nil
}

// MustSimulate is Simulate that panics on error.
func MustSimulate(s *core.Schedule, hw HW) *Result {
	r, err := Simulate(s, hw)
	if err != nil {
		panic(err)
	}
	return r
}

// gemmCost sums the systolic cost of a GEMM item across the group's
// (balanced) sub-batch iterations, building the phase-appropriate im2col
// dimensions of Tab. 1 per iteration.
func gemmCost(cfg wavecore.Config, it *core.Item) wavecore.Cost {
	sizes := iterationSizes(it)
	var total wavecore.Cost
	// Group identical sizes to avoid recomputation.
	counts := map[int]int{}
	for _, n := range sizes {
		counts[n]++
	}
	for n, cnt := range counts {
		var g wavecore.GEMM
		var ok bool
		switch it.Phase {
		case core.PhaseFwd:
			g, ok = wavecore.ForwardGEMM(it.Layer, n)
		case core.PhaseBwdData:
			g, ok = wavecore.DataGradGEMM(it.Layer, n)
		case core.PhaseBwdWeight:
			g, ok = wavecore.WeightGradGEMM(it.Layer, n)
		}
		if !ok {
			continue
		}
		c := cfg.GEMMCost(g)
		total.Add(wavecore.Cost{Cycles: c.Cycles * int64(cnt), MACs: c.MACs * int64(cnt)})
	}
	return total
}

// iterationSizes reconstructs the balanced per-iteration sample counts for
// an item from its group parameters.
func iterationSizes(it *core.Item) []int {
	g := core.Group{SubBatch: it.SubBatch, Iterations: it.Iterations}
	return g.SubBatchSizes(it.Batch)
}

// vectorOps estimates the elementwise operation count of a non-GEMM item:
// one op per element moved through the vector units (the larger of reads
// and writes, in 16-bit elements).
func vectorOps(it *core.Item) int64 {
	moved := it.GBRead
	if it.GBWrite > moved {
		moved = it.GBWrite
	}
	return moved / graph.WordBytes
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %.2f ms, DRAM %.2f GB, GB %.2f GB, util %.1f%%, energy %.2f J",
		r.Network, r.Config, r.StepSeconds*1e3,
		float64(r.DRAMBytes)/1e9, float64(r.GBBytes)/1e9,
		r.Utilization*100, r.Energy.Total())
}

// BreakdownString renders the Fig. 12-style per-class time breakdown.
func (r *Result) BreakdownString() string {
	var b strings.Builder
	classes := make([]KindClass, 0, len(r.TimeByClass))
	for k := range r.TimeByClass {
		classes = append(classes, k)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, k := range classes {
		fmt.Fprintf(&b, "%s=%.2fms ", k, r.TimeByClass[k]*1e3)
	}
	return strings.TrimSpace(b.String())
}
