package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// ScaleConfig describes a data-parallel training setup across multiple
// WaveCore accelerators (Section 4.2, "Scalability"): each accelerator (or
// core) runs the same MBS schedule on its slice of the global mini-batch
// and the accelerators communicate only for loss computation and parameter
// reduction and update.
type ScaleConfig struct {
	// Accelerators is the number of WaveCore chips.
	Accelerators int
	// InterconnectBytesPerSec is the per-link all-reduce bandwidth
	// (e.g. 25 GB/s for a PCIe4 x16-class link, 100+ GB/s for NVLink-class
	// fabrics).
	InterconnectBytesPerSec float64
	// LatencySec is the per-step fixed synchronization latency.
	LatencySec float64
}

// DefaultScaleConfig returns a PCIe-class 25 GB/s ring with 20 us
// synchronization latency.
func DefaultScaleConfig(accelerators int) ScaleConfig {
	return ScaleConfig{
		Accelerators:            accelerators,
		InterconnectBytesPerSec: 25e9,
		LatencySec:              20e-6,
	}
}

// ScaleResult is one multi-accelerator step estimate.
type ScaleResult struct {
	Accelerators int
	// ComputeSeconds is the per-accelerator training-step time.
	ComputeSeconds float64
	// AllReduceSeconds is the gradient reduction time (ring all-reduce:
	// 2(p-1)/p of the parameter bytes over the link).
	AllReduceSeconds float64
	// StepSeconds is the synchronized step time.
	StepSeconds float64
	// GlobalBatch is the summed mini-batch across accelerators.
	GlobalBatch int
	// Efficiency is the weak-scaling efficiency vs one accelerator.
	Efficiency float64
}

// SimulateScaling estimates weak scaling: every accelerator runs the given
// single-core schedule (same per-core batch, so the global batch grows with
// the accelerator count) and gradients are ring-all-reduced between steps.
// This is the paper's scalability argument made quantitative: MBS needs no
// cross-accelerator communication beyond the parameter reduction every
// conventional data-parallel trainer already performs.
func SimulateScaling(s *core.Schedule, hw HW, cfg ScaleConfig) ([]ScaleResult, error) {
	if cfg.Accelerators < 1 {
		return nil, fmt.Errorf("sim: need at least one accelerator")
	}
	single, err := Simulate(s, hw)
	if err != nil {
		return nil, err
	}
	paramBytes := float64(s.Net.ParamBytes())
	coresPerChip := hw.Cores
	if coresPerChip < 1 {
		coresPerChip = 1
	}

	var out []ScaleResult
	for p := 1; p <= cfg.Accelerators; p++ {
		r := ScaleResult{
			Accelerators:   p,
			ComputeSeconds: single.StepSeconds,
			GlobalBatch:    p * coresPerChip * s.Opts.Batch,
		}
		if p > 1 {
			// Ring all-reduce moves 2(p-1)/p of the gradient bytes per
			// link, fp16 gradients.
			vol := 2 * float64(p-1) / float64(p) * paramBytes
			r.AllReduceSeconds = vol/cfg.InterconnectBytesPerSec + cfg.LatencySec
		}
		// The reduction overlaps poorly with MBS's last group (gradients
		// for early layers finish last in back propagation), so charge it
		// serially — a conservative bound.
		r.StepSeconds = r.ComputeSeconds + r.AllReduceSeconds
		r.Efficiency = single.StepSeconds / r.StepSeconds
		out = append(out, r)
	}
	return out, nil
}

// SamplesPerSecond converts a scale point into training throughput.
func (r ScaleResult) SamplesPerSecond() float64 {
	if r.StepSeconds <= 0 {
		return 0
	}
	return float64(r.GlobalBatch) / r.StepSeconds
}

// ScaleSummary renders the scaling curve compactly.
func ScaleSummary(results []ScaleResult) string {
	out := "accel  global-batch  step(ms)  allreduce(ms)  eff    samples/s\n"
	for _, r := range results {
		out += fmt.Sprintf("%-5d  %-12d  %-8.2f  %-13.3f  %-5.2f  %.0f\n",
			r.Accelerators, r.GlobalBatch, r.StepSeconds*1e3,
			r.AllReduceSeconds*1e3, r.Efficiency, math.Floor(r.SamplesPerSecond()))
	}
	return out
}
