package sim

import (
	"math"

	"repro/internal/core"
	"repro/internal/wavecore"
)

// GPU is the analytical NVIDIA V100 comparator of Fig. 13. The paper
// measured Caffe on a real V100; here the same first-order mechanisms are
// modeled: a fast but wide machine whose 80 SMs need very large GEMMs to
// reach peak, per-layer kernel-launch overhead, and a conventional
// (Baseline-style) memory flow.
type GPU struct {
	Name string
	// PeakMACsPerSec is the fp16 tensor throughput in MAC/s (V100: 125
	// TFLOP/s = 62.5e12 MAC/s).
	PeakMACsPerSec float64
	// MemBandwidth is HBM2 bandwidth in bytes/s (V100: 900 GB/s).
	MemBandwidth float64
	// LaunchOverheadSec is the fixed per-kernel cost (driver + launch +
	// tail effects).
	LaunchOverheadSec float64
	// SaturationMACs is the per-kernel MAC count needed to reach MaxUtil:
	// utilization ramps linearly with available parallel work below it.
	SaturationMACs float64
	// MaxUtil is the best sustained fraction of peak for dense GEMMs.
	MaxUtil float64
	// MinUtil floors the utilization of tiny kernels.
	MinUtil float64
}

// DefaultV100 returns the calibrated V100 model.
func DefaultV100() GPU {
	// MaxUtil/SaturationMACs are calibrated to the paper's measured Caffe
	// numbers: a 2019-era im2col training stack sustained well under a
	// third of the V100's fp16 tensor peak, and per-layer kernels of deep
	// networks are too small to fill 80 SMs — which is exactly why the
	// paper's 3x-slower-peak WaveCore still wins (Section 6, Fig. 13).
	return GPU{
		Name:              "V100",
		PeakMACsPerSec:    62.5e12,
		MemBandwidth:      900e9,
		LaunchOverheadSec: 10e-6,
		SaturationMACs:    6e9,
		MaxUtil:           0.40,
		MinUtil:           0.02,
	}
}

// GPUResult is the simulated training step on the GPU.
type GPUResult struct {
	Network     string
	StepSeconds float64
	DRAMBytes   int64
	Kernels     int
}

// kernelUtil models occupancy: small GEMMs cannot fill 640 tensor cores, so
// effective throughput ramps with the kernel's work.
func (g GPU) kernelUtil(macs int64) float64 {
	u := g.MaxUtil * float64(macs) / g.SaturationMACs
	return math.Min(g.MaxUtil, math.Max(g.MinUtil, u))
}

// SimulateGPU runs one conventional training step (full mini-batch,
// layer-by-layer, Baseline-style memory traffic) on the GPU model.
func SimulateGPU(gpu GPU, s *core.Schedule) *GPUResult {
	return SimulateGPUTraffic(gpu, s, core.ComputeTraffic(s))
}

// SimulateGPUTraffic is SimulateGPU over a precomputed (possibly cached and
// shared) traffic ledger.
func SimulateGPUTraffic(gpu GPU, s *core.Schedule, tr *core.Traffic) *GPUResult {
	res := &GPUResult{Network: s.Net.Name}
	for i := range tr.Items {
		it := &tr.Items[i]
		res.DRAMBytes += it.DRAM()
		memSec := float64(it.DRAM()) / gpu.MemBandwidth

		var computeSec float64
		if it.Layer != nil && it.Layer.IsGEMM() {
			macs := gpuGEMMMACs(it)
			computeSec = float64(macs) / (gpu.PeakMACsPerSec * gpu.kernelUtil(macs))
		} else {
			// Elementwise layers are bandwidth bound on a GPU as well.
			computeSec = float64(it.GB()) / gpu.MemBandwidth
		}
		res.StepSeconds += gpu.LaunchOverheadSec + math.Max(computeSec, memSec)
		res.Kernels++
	}
	return res
}

// gpuGEMMMACs returns the item's GEMM MAC count at the full mini-batch.
func gpuGEMMMACs(it *core.Item) int64 {
	var g wavecore.GEMM
	var ok bool
	switch it.Phase {
	case core.PhaseFwd:
		g, ok = wavecore.ForwardGEMM(it.Layer, it.Batch)
	case core.PhaseBwdData:
		g, ok = wavecore.DataGradGEMM(it.Layer, it.Batch)
	case core.PhaseBwdWeight:
		g, ok = wavecore.WeightGradGEMM(it.Layer, it.Batch)
	}
	if !ok {
		return 0
	}
	return g.MACs()
}
