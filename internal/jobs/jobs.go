// Package jobs is the asynchronous execution layer of the v2 API: a
// scenario run becomes a submitted job with an id, observable state
// (queued → running → done/failed/cancelled), an incremental stream of
// completed sweep cells, and a cancel operation that frees the job's
// execution slot long before the run would have finished.
//
// Execution runs on a pluggable Store (see internal/jobs/store): jobs are
// split into shards — cell ranges of a sweep grid, or one whole-job shard —
// that a pool of workers claims under leases with heartbeat renewal. With
// the default in-memory store this behaves exactly as a single-process
// manager; with the journal store every submission, claim and result is
// durable, a restarted process replays the log and re-queues non-terminal
// work (see Manager recovery), and an expired lease (worker crash or hang)
// returns its shard to the queue with capped exponential backoff. The
// lease mechanics are process-agnostic, so several mbsd workers pointed at
// one store directory divide the same queue.
//
// The manager is generic over its executor, so the HTTP surface and its
// lifecycle semantics are testable with a fully controllable fake while the
// service wires in the real scenario registry. Execution slots are shared
// with the synchronous /v1/run path through one semaphore channel: v1 and
// v2 work cannot oversubscribe the engine together.
package jobs

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/jobs/store"
)

// Request names a scenario run to execute asynchronously.
type Request struct {
	Scenario string            `json:"scenario"`
	Params   map[string]string `json:"params,omitempty"`
}

// Exec runs one whole job. It must honour ctx promptly — cancellation is how
// DELETE frees the job's slot — and call emit for each completed sweep cell
// (emit is safe to call from multiple goroutines). The returned bytes are
// the job's rendered JSON result.
type Exec func(ctx context.Context, req Request, emit func(index int, cell string, row any)) ([]byte, error)

// ShardExec runs one shard of a sharded job — the cells in span — emitting
// each completed cell at its job-global index. The returned bytes are the
// shard's partial result, in whatever encoding the Assemble hook expects.
type ShardExec func(ctx context.Context, req Request, span store.Span, emit func(index int, cell string, row any)) ([]byte, error)

// Config assembles a Manager.
type Config struct {
	// Exec executes an unsharded (whole-span) job. Required.
	Exec Exec
	// Validate vets a request at submit time so bad submissions fail the
	// POST synchronously instead of producing a failed job. Return an
	// *api.Error for a mapped HTTP status. Optional.
	Validate func(Request) error
	// Slots, when non-nil, is the shared execution-slot semaphore: a worker
	// holds one slot for the duration of each shard it executes. Nil means
	// unbounded execution.
	Slots chan struct{}
	// MaxRetained bounds terminal jobs kept for status queries; the oldest
	// finished jobs are dropped first (running and queued jobs are never
	// dropped). 0 selects 256.
	MaxRetained int
	// MaxPending bounds jobs that are queued or running; submissions past
	// the bound are rejected with 503. 0 selects 1024.
	MaxPending int
	// Bus, when non-nil, receives one bus.TopicJobState event per lifecycle
	// transition and one bus.TopicJobLease event per lease movement
	// (claimed, lost, requeued). Optional.
	Bus *bus.Bus

	// Store is the job/shard state backend. Nil selects the in-memory
	// store (nothing survives restart; Close cancels live jobs). The
	// manager owns the store and closes it on Close.
	Store store.Store
	// Plan splits a request into shard spans. Nil (or a nil/empty return)
	// means one whole-job shard executed by Exec. A non-nil Plan requires
	// ExecShard and Assemble.
	Plan func(Request) []store.Span
	// ExecShard executes one proper shard of a planned job.
	ExecShard ShardExec
	// Assemble merges a sharded job's partial results (in shard order) into
	// the final result bytes — which must equal what Exec would have
	// returned for the whole job.
	Assemble func(req Request, parts [][]byte) ([]byte, error)

	// Workers sizes the shard-claiming worker pool. 0 selects cap(Slots)
	// when Slots is non-nil, else GOMAXPROCS.
	Workers int
	// WorkerID prefixes this process's worker names in lease records —
	// distinct ids let multiple processes share one durable store. "" means
	// "w".
	WorkerID string
	// Lease is how long a shard claim lives without a heartbeat (0 = 15s).
	Lease time.Duration
	// Heartbeat is the renewal interval while executing (0 = Lease/3).
	Heartbeat time.Duration
	// MaxAttempts gives up on a job whose shard keeps losing its lease
	// after this many claims (0 = 5; negative = never).
	MaxAttempts int
	// RetryBase and RetryCap shape the capped exponential backoff a
	// requeued shard waits before re-claim (0 = 250ms base, 15s cap).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Poll is the supervisor's lease-expiry sweep interval (0 = Lease/4,
	// clamped to [25ms, 2s]).
	Poll time.Duration
}

// Manager owns the runtime job table and the worker pool; the Store owns
// the authoritative state. Runtime entries mirror store state for fast
// status/stream reads and carry what the store does not: live cell events,
// update channels, per-job contexts.
type Manager struct {
	cfg  Config
	st   store.Store
	base context.Context
	stop context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for retention eviction
	seq    int64
	closed bool

	work chan struct{} // worker wake signal (buffered 1, best effort)
	wg   sync.WaitGroup

	submitted     atomic.Int64
	cancellations atomic.Int64
	shardsClaimed atomic.Int64
	leasesExpired atomic.Int64
	leasesLost    atomic.Int64
	requeues      atomic.Int64
	recovered     atomic.Int64
	storeErrors   atomic.Int64
	activeLeases  atomic.Int64

	// trans counts lifecycle transitions ever applied, per target state —
	// unlike Stats.ByState these survive retention eviction, so they are the
	// monotone series /metrics exports.
	trans struct {
		queued, running, done, failed, cancelled atomic.Int64
	}
}

// transition records a state change on the counters and, when a bus is
// wired, publishes it as a job.state event. Safe to call with j.mu held:
// bus publishes never block and never call back into the job table.
func (m *Manager) transition(j *job, st api.JobState, cells int, errMsg string) {
	switch st {
	case api.JobQueued:
		m.trans.queued.Add(1)
	case api.JobRunning:
		m.trans.running.Add(1)
	case api.JobDone:
		m.trans.done.Add(1)
	case api.JobFailed:
		m.trans.failed.Add(1)
	case api.JobCancelled:
		m.trans.cancelled.Add(1)
	}
	if b := m.cfg.Bus; b != nil {
		b.Publish(bus.TopicJobState, bus.JobState{
			ID: j.id, Scenario: j.req.Scenario, State: string(st),
			Cells: cells, Error: errMsg,
		})
	}
}

// NewManager builds a Manager from cfg, recovers any state the store holds
// (re-queuing non-terminal work), and starts the worker pool.
func NewManager(cfg Config) *Manager {
	if cfg.MaxRetained <= 0 {
		cfg.MaxRetained = 256
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 1024
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMemory()
	}
	if cfg.Plan != nil && (cfg.ExecShard == nil || cfg.Assemble == nil) {
		panic("jobs: Config.Plan requires ExecShard and Assemble")
	}
	if cfg.Workers <= 0 {
		if cfg.Slots != nil {
			cfg.Workers = cap(cfg.Slots)
		} else {
			cfg.Workers = runtime.GOMAXPROCS(0)
		}
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	if cfg.WorkerID == "" {
		cfg.WorkerID = "w"
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 15 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.Lease / 3
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 250 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 15 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.Lease / 4
		if cfg.Poll < 25*time.Millisecond {
			cfg.Poll = 25 * time.Millisecond
		}
		if cfg.Poll > 2*time.Second {
			cfg.Poll = 2 * time.Second
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:  cfg,
		st:   cfg.Store,
		base: ctx,
		stop: cancel,
		jobs: make(map[string]*job),
		work: make(chan struct{}, 1),
	}
	m.recover()
	m.wg.Add(cfg.Workers + 1)
	for i := 0; i < cfg.Workers; i++ {
		go m.workerLoop(fmt.Sprintf("%s-%d", cfg.WorkerID, i))
	}
	go m.supervise()
	return m
}

// recover rebuilds the runtime table from the store at construction time
// (before any worker runs, so no locking subtleties). Terminal jobs come
// back servable; non-terminal jobs are normalized to queued with their
// claimed shards force-released, so the pool re-executes exactly the work
// that had not completed. Completed shards keep their recorded results —
// only the unfinished remainder re-runs.
func (m *Manager) recover() {
	list, err := m.st.List()
	if err != nil {
		m.storeErrors.Add(1)
		return
	}
	now := time.Now()
	for _, sj := range list {
		if n, err := strconv.ParseInt(strings.TrimPrefix(sj.ID, "job-"), 10, 64); err == nil && n > m.seq {
			m.seq = n
		}
		_, shards, ok, err := m.st.Get(sj.ID)
		if err != nil || !ok {
			continue
		}
		spans := make([]store.Span, len(shards))
		attempts, done := 0, 0
		for i, sh := range shards {
			spans[i] = sh.Span
			attempts += sh.Attempts
			if sh.State == store.ShardDone {
				done++
			}
		}
		ctx, cancel := context.WithCancel(m.base)
		j := &job{
			id:         sj.ID,
			req:        Request{Scenario: sj.Scenario, Params: sj.Params},
			spans:      spans,
			ctx:        ctx,
			cancel:     cancel,
			state:      sj.State,
			errMsg:     sj.Error,
			code:       sj.Code,
			seen:       make(map[int]bool),
			update:     make(chan struct{}),
			submitted:  sj.SubmittedAt,
			attempts:   attempts,
			shardsDone: done,
		}
		if sj.State == api.JobDone {
			if res, err := m.st.Result(sj.ID); err == nil {
				j.result = res
			}
		}
		if !sj.State.Terminal() {
			for _, sh := range shards {
				if sh.State == store.ShardClaimed {
					if err := m.st.ReleaseShard(now, sh.JobID, sh.Index, "", now); err != nil {
						m.storeErrors.Add(1)
					} else {
						m.publishLease(sh, "", "requeued")
					}
				}
			}
			if sj.State != api.JobQueued {
				if err := m.st.TransitionJob(now, sj.ID, api.JobQueued, "", "", nil); err != nil {
					m.storeErrors.Add(1)
				}
			}
			j.state = api.JobQueued
			m.recovered.Add(1)
			m.transition(j, api.JobQueued, 0, "")
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
	}
	m.evictLocked() // a lowered retention bound applies to recovered jobs too
	if m.recovered.Load() > 0 {
		m.signalWork()
	}
}

// Close stops the worker pool and finalizes what remains. With a volatile
// store every live job is cancelled, exactly as before durability existed.
// With a durable store live jobs are left non-terminal on disk — their
// claimed shards were already released back to pending by the aborting
// workers — so the next process's recovery re-queues and finishes them
// (requeue-on-shutdown). Close always closes the store; further
// submissions are rejected.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
	if !m.st.Durable() {
		for _, j := range m.snapshot() {
			j.mu.Lock()
			if !j.state.Terminal() {
				m.finalizeLocked(j, api.JobCancelled, "cancelled", api.CodeCancelled, nil)
			}
			j.mu.Unlock()
		}
	}
	if err := m.st.Close(); err != nil {
		m.storeErrors.Add(1)
	}
}

// snapshot returns the retained jobs in submission order.
func (m *Manager) snapshot() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			js = append(js, j)
		}
	}
	return js
}

// signalWork nudges the pool; the buffered channel coalesces bursts and a
// worker that finds work re-signals, so one nudge fans out.
func (m *Manager) signalWork() {
	select {
	case m.work <- struct{}{}:
	default:
	}
}

// job is one submitted run's runtime mirror. All mutable fields live under
// mu; update is closed and replaced on every mutation so streamers can wait
// for changes without polling.
type job struct {
	id     string
	req    Request
	spans  []store.Span
	ctx    context.Context // child of the manager's base context
	cancel context.CancelFunc

	mu         sync.Mutex
	state      api.JobState
	errMsg     string
	code       string
	result     []byte
	cells      []api.Event  // completed-cell events, in completion order
	seen       map[int]bool // emitted cell indices — dedups re-executed shards
	update     chan struct{}
	submitted  time.Time
	started    *time.Time
	finished   *time.Time
	attempts   int // shard claims, including lease-loss retries
	requeues   int // shards returned to the queue after a lost/expired lease
	shardsDone int
}

// broadcastLocked wakes every waiter; callers hold j.mu.
func (j *job) broadcastLocked() {
	close(j.update)
	j.update = make(chan struct{})
}

// statusLocked snapshots the job; callers hold j.mu.
func (j *job) statusLocked(withResult bool) api.JobStatus {
	st := api.JobStatus{
		ID:             j.id,
		Scenario:       j.req.Scenario,
		Params:         j.req.Params,
		State:          j.state,
		Error:          j.errMsg,
		Code:           j.code,
		CellsCompleted: len(j.cells),
		Shards:         len(j.spans),
		ShardsDone:     j.shardsDone,
		Attempts:       j.attempts,
		Requeues:       j.requeues,
		SubmittedAt:    j.submitted,
		StartedAt:      j.started,
		FinishedAt:     j.finished,
	}
	if withResult {
		st.Result = j.result
	}
	return st
}

func (j *job) status(withResult bool) api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(withResult)
}

// currentState reads just the lifecycle state — the manager's bookkeeping
// scans (pending count, eviction) run under m.mu and need no full snapshot.
func (j *job) currentState() api.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// snapshotFrom returns the cell events at index >= from, the current
// status, and a channel that closes on the job's next mutation.
func (j *job) snapshotFrom(from int) ([]api.Event, api.JobStatus, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var events []api.Event
	if from < len(j.cells) {
		events = append(events, j.cells[from:]...)
	}
	return events, j.statusLocked(false), j.update
}

// emit records one completed sweep cell. Late emits from an executor that
// has not yet observed its cancelled context are dropped once the job is
// terminal, and a cell index already recorded is dropped too — a shard
// re-executed after a lost lease re-emits its cells, and the stream must
// not duplicate them.
func (j *job) emit(index int, cell string, row any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.seen[index] {
		return
	}
	j.seen[index] = true
	j.cells = append(j.cells, api.Event{Type: "cell", Index: index, Cell: cell, Row: row})
	j.broadcastLocked()
}

// Submit validates and enqueues a job, returning its initial status. The
// error, if any, is an *api.Error carrying the HTTP status to report.
func (m *Manager) Submit(req Request) (api.JobStatus, error) {
	if m.cfg.Validate != nil {
		if err := m.cfg.Validate(req); err != nil {
			return api.JobStatus{}, err
		}
	}
	spans := []store.Span{{}}
	if m.cfg.Plan != nil {
		if s := m.cfg.Plan(req); len(s) > 0 {
			spans = s
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return api.JobStatus{}, api.Errorf(http.StatusServiceUnavailable,
			api.CodeUnavailable, req.Scenario, "job manager is shut down")
	}
	if pending := m.pendingLocked(); pending >= m.cfg.MaxPending {
		m.mu.Unlock()
		return api.JobStatus{}, api.Errorf(http.StatusServiceUnavailable,
			api.CodeUnavailable, req.Scenario, "job queue full (%d pending)", pending)
	}
	m.seq++
	id := "job-" + strconv.FormatInt(m.seq, 10)
	now := time.Now()
	shards := make([]store.Shard, len(spans))
	for i, sp := range spans {
		shards[i] = store.Shard{Span: sp}
	}
	if err := m.st.Submit(store.Job{
		ID: id, Scenario: req.Scenario, Params: req.Params,
		State: api.JobQueued, SubmittedAt: now,
	}, shards); err != nil {
		m.mu.Unlock()
		m.storeErrors.Add(1)
		return api.JobStatus{}, api.Errorf(http.StatusServiceUnavailable,
			api.CodeUnavailable, req.Scenario, "job store rejected submission: %s", err)
	}
	ctx, cancel := context.WithCancel(m.base)
	j := &job{
		id:        id,
		req:       req,
		spans:     spans,
		ctx:       ctx,
		cancel:    cancel,
		state:     api.JobQueued,
		seen:      make(map[int]bool),
		update:    make(chan struct{}),
		submitted: now,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.evictLocked()
	m.mu.Unlock()

	m.submitted.Add(1)
	m.transition(j, api.JobQueued, 0, "")
	m.signalWork()
	return j.status(false), nil
}

// pendingLocked counts non-terminal jobs; callers hold m.mu.
func (m *Manager) pendingLocked() int {
	n := 0
	for _, j := range m.jobs {
		if !j.currentState().Terminal() {
			n++
		}
	}
	return n
}

// evictLocked drops the oldest terminal jobs past the retention bound —
// from the runtime table and the store alike; callers hold m.mu. Only
// terminal jobs count against (and are dropped for) the bound: a burst of
// live jobs must not flush freshly finished results before their
// submitters collect them.
func (m *Manager) evictLocked() {
	terminal := 0
	for _, j := range m.jobs {
		if j.currentState().Terminal() {
			terminal++
		}
	}
	for terminal > m.cfg.MaxRetained {
		dropped := false
		for i, id := range m.order {
			j, ok := m.jobs[id]
			if !ok {
				m.order = append(m.order[:i], m.order[i+1:]...)
				dropped = true
				break
			}
			if j.currentState().Terminal() {
				if err := m.st.Delete(id); err != nil {
					m.storeErrors.Add(1) // evict the runtime entry regardless
				}
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				terminal--
				dropped = true
				break
			}
		}
		if !dropped {
			return
		}
	}
}

// finalizeLocked applies a terminal transition to the store and the
// runtime mirror in one step; callers hold j.mu. Store and runtime stay
// consistent because every terminal transition of a job happens under its
// j.mu. A store write failure is counted but does not block the runtime
// transition: the API's answer to its clients wins, and the stale store
// row surfaces as a re-queued job on recovery at worst.
func (m *Manager) finalizeLocked(j *job, st api.JobState, errMsg, code string, result []byte) {
	now := time.Now()
	if err := m.st.TransitionJob(now, j.id, st, errMsg, code, result); err != nil {
		m.storeErrors.Add(1)
	}
	j.state = st
	j.errMsg = errMsg
	j.code = code
	if st == api.JobDone {
		j.result = result
	}
	j.finished = &now
	if st == api.JobCancelled {
		m.cancellations.Add(1)
	}
	m.transition(j, st, len(j.cells), errMsg)
	j.broadcastLocked()
}

// lookup finds a job by id.
func (m *Manager) lookup(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Get returns a job's status, including its result when done.
func (m *Manager) Get(id string) (api.JobStatus, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return api.JobStatus{}, false
	}
	return j.status(true), true
}

// Cancel transitions a live job to cancelled — synchronously, so the DELETE
// response already reports the cancelled state — and cancels its context,
// which aborts its executing shards and frees their slots. Cancelling a
// terminal job is a no-op returning the unchanged status.
func (m *Manager) Cancel(id string) (api.JobStatus, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return api.JobStatus{}, false
	}
	m.mu.Lock()
	j.mu.Lock()
	if !j.state.Terminal() {
		m.finalizeLocked(j, api.JobCancelled, "cancelled", api.CodeCancelled, nil)
	}
	st := j.statusLocked(false)
	j.mu.Unlock()
	m.evictLocked()
	m.mu.Unlock()
	j.cancel()
	return st, true
}

// List returns every retained job's status (without results) in submission
// order.
func (m *Manager) List() []api.JobStatus {
	js := m.snapshot()
	out := make([]api.JobStatus, len(js))
	for i, j := range js {
		out[i] = j.status(false)
	}
	return out
}

// Stats is the jobs section of /v1/stats and /v2/stats.
type Stats struct {
	// Submitted counts every job ever accepted.
	Submitted int64 `json:"submitted"`
	// QueueDepth is the number of jobs currently queued (no shard of
	// theirs is executing yet).
	QueueDepth int64 `json:"queue_depth"`
	// Cancellations counts jobs that reached the cancelled state.
	Cancellations int64 `json:"cancellations"`
	// ByState counts the retained jobs per lifecycle state.
	ByState map[api.JobState]int `json:"by_state"`
	// Transitions counts lifecycle transitions ever applied per target
	// state; unlike ByState it is monotone (eviction never decrements it).
	Transitions map[api.JobState]int64 `json:"transitions"`
	// Retained is the number of jobs currently held for status queries.
	Retained int `json:"retained"`

	// Store names the state backend ("memory", "journal", ...).
	Store string `json:"store"`
	// Workers is the shard-claiming pool size.
	Workers int `json:"workers"`
	// ShardsClaimed counts shard claims ever granted to this process,
	// including retries after a lost lease.
	ShardsClaimed int64 `json:"shards_claimed"`
	// LeasesExpired counts claims the supervisor reaped after their lease
	// lapsed without a heartbeat.
	LeasesExpired int64 `json:"leases_expired"`
	// LeasesLost counts claims a worker abandoned mid-run because its
	// heartbeat was rejected (or the store failed it).
	LeasesLost int64 `json:"leases_lost"`
	// Requeues counts shards returned to the queue for another attempt.
	Requeues int64 `json:"requeues"`
	// Recovered counts non-terminal jobs re-queued from the store at boot.
	Recovered int64 `json:"recovered"`
	// StoreErrors counts store operations that failed (fault injection,
	// disk trouble); the orthogonal lease machinery retries the work.
	StoreErrors int64 `json:"store_errors"`
	// ActiveLeases is the number of shards this process is executing now.
	ActiveLeases int64 `json:"active_leases"`
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	st := Stats{
		Submitted:     m.submitted.Load(),
		Cancellations: m.cancellations.Load(),
		ByState:       make(map[api.JobState]int),
		Transitions: map[api.JobState]int64{
			api.JobQueued:    m.trans.queued.Load(),
			api.JobRunning:   m.trans.running.Load(),
			api.JobDone:      m.trans.done.Load(),
			api.JobFailed:    m.trans.failed.Load(),
			api.JobCancelled: m.trans.cancelled.Load(),
		},
		Store:         m.st.Name(),
		Workers:       m.cfg.Workers,
		ShardsClaimed: m.shardsClaimed.Load(),
		LeasesExpired: m.leasesExpired.Load(),
		LeasesLost:    m.leasesLost.Load(),
		Requeues:      m.requeues.Load(),
		Recovered:     m.recovered.Load(),
		StoreErrors:   m.storeErrors.Load(),
		ActiveLeases:  m.activeLeases.Load(),
	}
	for _, s := range m.List() {
		st.ByState[s.State]++
		st.Retained++
	}
	st.QueueDepth = int64(st.ByState[api.JobQueued])
	return st
}
