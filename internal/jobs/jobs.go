// Package jobs is the asynchronous execution layer of the v2 API: a
// scenario run becomes a submitted job with an id, observable state
// (queued → running → done/failed/cancelled), an incremental stream of
// completed sweep cells, and a cancel operation that frees the job's
// execution slot long before the run would have finished.
//
// The manager is generic over its executor, so the HTTP surface and its
// lifecycle semantics are testable with a fully controllable fake while the
// service wires in the real scenario registry. Execution slots are shared
// with the synchronous /v1/run path through one semaphore channel: v1 and
// v2 work cannot oversubscribe the engine together.
package jobs

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
)

// Request names a scenario run to execute asynchronously.
type Request struct {
	Scenario string            `json:"scenario"`
	Params   map[string]string `json:"params,omitempty"`
}

// Exec runs one job. It must honour ctx promptly — cancellation is how
// DELETE frees the job's slot — and call emit for each completed sweep cell
// (emit is safe to call from multiple goroutines). The returned bytes are
// the job's rendered JSON result.
type Exec func(ctx context.Context, req Request, emit func(index int, cell string, row any)) ([]byte, error)

// Config assembles a Manager.
type Config struct {
	// Exec executes a job's scenario. Required.
	Exec Exec
	// Validate vets a request at submit time so bad submissions fail the
	// POST synchronously instead of producing a failed job. Return an
	// *api.Error for a mapped HTTP status. Optional.
	Validate func(Request) error
	// Slots, when non-nil, is the shared execution-slot semaphore: a job
	// holds one slot from the moment it leaves the queue until its executor
	// returns. Nil means unbounded execution.
	Slots chan struct{}
	// MaxRetained bounds terminal jobs kept for status queries; the oldest
	// finished jobs are dropped first (running and queued jobs are never
	// dropped). 0 selects 256.
	MaxRetained int
	// MaxPending bounds jobs that are queued or running; submissions past
	// the bound are rejected with 503. 0 selects 1024.
	MaxPending int
	// Bus, when non-nil, receives one bus.TopicJobState event per lifecycle
	// transition (queued, running, and the terminal state). Optional.
	Bus *bus.Bus
}

// Manager owns the job table and lifecycle.
type Manager struct {
	cfg  Config
	base context.Context
	stop context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for retention eviction
	seq    int64
	closed bool

	wg            sync.WaitGroup
	queueDepth    atomic.Int64 // jobs waiting for an execution slot
	submitted     atomic.Int64
	cancellations atomic.Int64

	// trans counts lifecycle transitions ever applied, per target state —
	// unlike Stats.ByState these survive retention eviction, so they are the
	// monotone series /metrics exports.
	trans struct {
		queued, running, done, failed, cancelled atomic.Int64
	}
}

// transition records a state change on the counters and, when a bus is
// wired, publishes it as a job.state event. Safe to call with j.mu held:
// bus publishes never block and never call back into the job table.
func (m *Manager) transition(j *job, st api.JobState, cells int, errMsg string) {
	switch st {
	case api.JobQueued:
		m.trans.queued.Add(1)
	case api.JobRunning:
		m.trans.running.Add(1)
	case api.JobDone:
		m.trans.done.Add(1)
	case api.JobFailed:
		m.trans.failed.Add(1)
	case api.JobCancelled:
		m.trans.cancelled.Add(1)
	}
	if b := m.cfg.Bus; b != nil {
		b.Publish(bus.TopicJobState, bus.JobState{
			ID: j.id, Scenario: j.req.Scenario, State: string(st),
			Cells: cells, Error: errMsg,
		})
	}
}

// NewManager builds a Manager from cfg.
func NewManager(cfg Config) *Manager {
	if cfg.MaxRetained <= 0 {
		cfg.MaxRetained = 256
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{cfg: cfg, base: ctx, stop: cancel, jobs: make(map[string]*job)}
}

// Close cancels every live job and waits for their executors to return.
// Further submissions are rejected.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
}

// job is one submitted run. All mutable fields live under mu; update is
// closed and replaced on every mutation so streamers can wait for changes
// without polling.
type job struct {
	id     string
	req    Request
	cancel context.CancelFunc

	mu        sync.Mutex
	state     api.JobState
	errMsg    string
	code      string
	result    []byte
	cells     []api.Event // completed-cell events, in completion order
	update    chan struct{}
	submitted time.Time
	started   *time.Time
	finished  *time.Time
}

// broadcastLocked wakes every waiter; callers hold j.mu.
func (j *job) broadcastLocked() {
	close(j.update)
	j.update = make(chan struct{})
}

// statusLocked snapshots the job; callers hold j.mu.
func (j *job) statusLocked(withResult bool) api.JobStatus {
	st := api.JobStatus{
		ID:             j.id,
		Scenario:       j.req.Scenario,
		Params:         j.req.Params,
		State:          j.state,
		Error:          j.errMsg,
		Code:           j.code,
		CellsCompleted: len(j.cells),
		SubmittedAt:    j.submitted,
		StartedAt:      j.started,
		FinishedAt:     j.finished,
	}
	if withResult {
		st.Result = j.result
	}
	return st
}

func (j *job) status(withResult bool) api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(withResult)
}

// currentState reads just the lifecycle state — the manager's bookkeeping
// scans (pending count, eviction) run under m.mu and need no full snapshot.
func (j *job) currentState() api.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// snapshotFrom returns the cell events at index >= from, the current
// status, and a channel that closes on the job's next mutation.
func (j *job) snapshotFrom(from int) ([]api.Event, api.JobStatus, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var events []api.Event
	if from < len(j.cells) {
		events = append(events, j.cells[from:]...)
	}
	return events, j.statusLocked(false), j.update
}

// emit records one completed sweep cell. Late emits from an executor that
// has not yet observed its cancelled context are dropped once the job is
// terminal, so a cancelled job's stream never grows after its done event.
func (j *job) emit(index int, cell string, row any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.cells = append(j.cells, api.Event{Type: "cell", Index: index, Cell: cell, Row: row})
	j.broadcastLocked()
}

// start transitions queued → running; false if the job was already
// cancelled.
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != api.JobQueued {
		return false
	}
	now := time.Now()
	j.state = api.JobRunning
	j.started = &now
	j.broadcastLocked()
	return true
}

// Submit validates and enqueues a job, returning its initial status. The
// error, if any, is an *api.Error carrying the HTTP status to report.
func (m *Manager) Submit(req Request) (api.JobStatus, error) {
	if m.cfg.Validate != nil {
		if err := m.cfg.Validate(req); err != nil {
			return api.JobStatus{}, err
		}
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return api.JobStatus{}, api.Errorf(http.StatusServiceUnavailable,
			api.CodeUnavailable, req.Scenario, "job manager is shut down")
	}
	if pending := m.pendingLocked(); pending >= m.cfg.MaxPending {
		m.mu.Unlock()
		return api.JobStatus{}, api.Errorf(http.StatusServiceUnavailable,
			api.CodeUnavailable, req.Scenario, "job queue full (%d pending)", pending)
	}
	m.seq++
	ctx, cancel := context.WithCancel(m.base)
	j := &job{
		id:        "job-" + strconv.FormatInt(m.seq, 10),
		req:       req,
		cancel:    cancel,
		state:     api.JobQueued,
		update:    make(chan struct{}),
		submitted: time.Now(),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.evictLocked()
	// The Add must happen under the same lock as the closed check: Close
	// sets closed then waits, so it either rejects this submission or sees
	// its counter increment — never a wg.Add racing wg.Wait.
	m.wg.Add(1)
	m.mu.Unlock()

	m.submitted.Add(1)
	m.transition(j, api.JobQueued, 0, "")
	go m.run(ctx, j)
	return j.status(false), nil
}

// pendingLocked counts non-terminal jobs; callers hold m.mu.
func (m *Manager) pendingLocked() int {
	n := 0
	for _, j := range m.jobs {
		if !j.currentState().Terminal() {
			n++
		}
	}
	return n
}

// evictLocked drops the oldest terminal jobs past the retention bound;
// callers hold m.mu. Only terminal jobs count against (and are dropped
// for) the bound: a burst of live jobs must not flush freshly finished
// results before their submitters collect them.
func (m *Manager) evictLocked() {
	terminal := 0
	for _, j := range m.jobs {
		if j.currentState().Terminal() {
			terminal++
		}
	}
	for terminal > m.cfg.MaxRetained {
		dropped := false
		for i, id := range m.order {
			j, ok := m.jobs[id]
			if !ok {
				m.order = append(m.order[:i], m.order[i+1:]...)
				dropped = true
				break
			}
			if j.currentState().Terminal() {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				terminal--
				dropped = true
				break
			}
		}
		if !dropped {
			return
		}
	}
}

// run drives one job: slot acquisition (the queued phase), execution, and
// the terminal transition. Every exit path ends with an eviction pass so
// the terminal-job bound holds as jobs finish, not only at submit time.
func (m *Manager) run(ctx context.Context, j *job) {
	defer m.wg.Done()
	defer func() {
		m.mu.Lock()
		m.evictLocked()
		m.mu.Unlock()
	}()
	defer j.cancel()
	if m.cfg.Slots != nil {
		m.queueDepth.Add(1)
		select {
		case m.cfg.Slots <- struct{}{}:
			m.queueDepth.Add(-1)
		case <-ctx.Done():
			m.queueDepth.Add(-1)
			m.finish(j, nil, ctx.Err())
			return
		}
		defer func() { <-m.cfg.Slots }()
	}
	if !j.start() {
		return // cancelled while queued; Cancel already finalized the state
	}
	m.transition(j, api.JobRunning, 0, "")
	result, err := m.cfg.Exec(ctx, j.req, j.emit)
	if err == nil && ctx.Err() != nil {
		err = ctx.Err() // executor won a race with cancellation; cancel wins
	}
	m.finish(j, result, err)
}

// finish applies the terminal transition unless Cancel got there first.
func (m *Manager) finish(j *job, result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	now := time.Now()
	j.finished = &now
	switch {
	case err == nil:
		j.state = api.JobDone
		j.result = result
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = api.JobCancelled
		j.errMsg = "cancelled"
		j.code = api.CodeCancelled
		m.cancellations.Add(1)
	default:
		j.state = api.JobFailed
		j.errMsg = err.Error()
		j.code = api.CodeRunFailed
	}
	m.transition(j, j.state, len(j.cells), j.errMsg)
	j.broadcastLocked()
}

// lookup finds a job by id.
func (m *Manager) lookup(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Get returns a job's status, including its result when done.
func (m *Manager) Get(id string) (api.JobStatus, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return api.JobStatus{}, false
	}
	return j.status(true), true
}

// Cancel transitions a live job to cancelled — synchronously, so the DELETE
// response already reports the cancelled state — and cancels its context,
// which aborts the executor and frees its slot. Cancelling a terminal job
// is a no-op returning the unchanged status.
func (m *Manager) Cancel(id string) (api.JobStatus, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return api.JobStatus{}, false
	}
	j.mu.Lock()
	if !j.state.Terminal() {
		now := time.Now()
		j.state = api.JobCancelled
		j.errMsg = "cancelled"
		j.code = api.CodeCancelled
		j.finished = &now
		m.cancellations.Add(1)
		m.transition(j, api.JobCancelled, len(j.cells), j.errMsg)
		j.broadcastLocked()
	}
	st := j.statusLocked(false)
	j.mu.Unlock()
	j.cancel()
	return st, true
}

// List returns every retained job's status (without results) in submission
// order.
func (m *Manager) List() []api.JobStatus {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			js = append(js, j)
		}
	}
	m.mu.Unlock()
	out := make([]api.JobStatus, len(js))
	for i, j := range js {
		out[i] = j.status(false)
	}
	return out
}

// Stats is the jobs section of /v1/stats and /v2/stats.
type Stats struct {
	// Submitted counts every job ever accepted.
	Submitted int64 `json:"submitted"`
	// QueueDepth is the number of jobs currently waiting for a slot.
	QueueDepth int64 `json:"queue_depth"`
	// Cancellations counts jobs that reached the cancelled state.
	Cancellations int64 `json:"cancellations"`
	// ByState counts the retained jobs per lifecycle state.
	ByState map[api.JobState]int `json:"by_state"`
	// Transitions counts lifecycle transitions ever applied per target
	// state; unlike ByState it is monotone (eviction never decrements it).
	Transitions map[api.JobState]int64 `json:"transitions"`
	// Retained is the number of jobs currently held for status queries.
	Retained int `json:"retained"`
}

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	st := Stats{
		Submitted:     m.submitted.Load(),
		QueueDepth:    m.queueDepth.Load(),
		Cancellations: m.cancellations.Load(),
		ByState:       make(map[api.JobState]int),
		Transitions: map[api.JobState]int64{
			api.JobQueued:    m.trans.queued.Load(),
			api.JobRunning:   m.trans.running.Load(),
			api.JobDone:      m.trans.done.Load(),
			api.JobFailed:    m.trans.failed.Load(),
			api.JobCancelled: m.trans.cancelled.Load(),
		},
	}
	for _, s := range m.List() {
		st.ByState[s.State]++
		st.Retained++
	}
	return st
}
