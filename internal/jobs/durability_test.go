package jobs

// Durability, lease and fault-injection tests of the manager: crash
// recovery from a journal store, requeue-on-shutdown, lease expiry and
// retry under injected heartbeat failures, attempt caps, sharded
// execution, and eviction edge cases.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/jobs/store"
)

// waitState polls until job id reaches a terminal state or the deadline
// passes, returning the final status.
func waitState(t *testing.T, m *Manager, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := m.Get(id); ok && st.State.Terminal() {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s never reached a terminal state: %+v", id, st)
	return api.JobStatus{}
}

// fastLease is a Config slice with aggressive timings for lease tests.
func fastLease(cfg Config) Config {
	cfg.Workers = 1
	cfg.Lease = 50 * time.Millisecond
	cfg.Heartbeat = 10 * time.Millisecond
	cfg.Poll = 10 * time.Millisecond
	cfg.RetryBase = time.Millisecond
	cfg.RetryCap = 5 * time.Millisecond
	return cfg
}

// TestJournalRecoveryCompletesInterruptedJob is the crash-recovery
// guarantee end to end: a journal-backed manager dies mid-run (Close while
// the executor is blocked — same store state as a kill), and a fresh
// manager over the same directory re-queues the job and runs it to done
// with the result intact.
func TestJournalRecoveryCompletesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	j1, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := newGatedExec()
	g.gates("s")
	m1 := NewManager(Config{Exec: g.exec, Store: j1})
	st, err := m1.Submit(Request{Scenario: "s", Params: map[string]string{"k": "v"}})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	m1.Close() // durable store: the live job survives shutdown

	// The journal on disk must hold the job non-terminal with its shard
	// back in pending — requeue-on-shutdown, not a stuck claim.
	jchk, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	sj, shards, ok, _ := jchk.Get(st.ID)
	if !ok || sj.State.Terminal() {
		t.Fatalf("after shutdown: %+v, want live job in store", sj)
	}
	if len(shards) != 1 || shards[0].State != store.ShardPending {
		t.Fatalf("after shutdown shards = %+v, want pending", shards)
	}
	if err := jchk.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Config{
		Exec: func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
			if req.Scenario != "s" || req.Params["k"] != "v" {
				return nil, fmt.Errorf("recovered request drifted: %+v", req)
			}
			emit(0, "cell-0", nil)
			return []byte(`{"recovered":true}`), nil
		},
		Store: j2,
	})
	t.Cleanup(m2.Close)
	if got := m2.Stats().Recovered; got != 1 {
		t.Fatalf("Recovered = %d, want 1", got)
	}
	fin := waitState(t, m2, st.ID)
	if fin.State != api.JobDone || string(fin.Result) != `{"recovered":true}` {
		t.Fatalf("recovered job = %+v, want done with result", fin)
	}
	// The recovered sequence counter must not collide with new submissions.
	st2, err := m2.Submit(Request{Scenario: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatalf("recovered manager reused job id %s", st2.ID)
	}
}

// TestJournalRecoveryKeepsTerminalJobs: done jobs come back from the store
// queryable, result included, without re-execution.
func TestJournalRecoveryKeepsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	j1, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	exec := func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
		calls.Add(1)
		return []byte(`{"n":1}`), nil
	}
	m1 := NewManager(Config{Exec: exec, Store: j1})
	st, err := m1.Submit(Request{Scenario: "s"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, st.ID)
	m1.Close()

	j2, err := store.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Config{Exec: exec, Store: j2})
	t.Cleanup(m2.Close)
	got, ok := m2.Get(st.ID)
	if !ok || got.State != api.JobDone || string(got.Result) != `{"n":1}` {
		t.Fatalf("terminal job after restart = ok=%v %+v", ok, got)
	}
	if m2.Stats().Recovered != 0 {
		t.Fatalf("terminal job counted as recovered: %+v", m2.Stats())
	}
	time.Sleep(20 * time.Millisecond) // give a buggy re-execution a chance
	if n := calls.Load(); n != 1 {
		t.Fatalf("done job re-executed after restart: %d calls", n)
	}
}

// TestHeartbeatFailureLosesLeaseAndRetries: an injected heartbeat failure
// makes the worker abandon its shard mid-run; the supervisor reaps the
// lapsed lease, requeues the shard with backoff, and the retry completes
// the job. The job.lease bus topic narrates the whole episode.
func TestHeartbeatFailureLosesLeaseAndRetries(t *testing.T) {
	b := bus.New(bus.Config{})
	defer b.Close()
	sub, err := b.Subscribe(bus.SubOptions{Topics: []string{bus.TopicJobLease}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	f := store.NewFault(store.NewMemory(),
		store.Rule{Op: store.OpHeartbeat, N: 1, Err: errors.New("injected")})
	var calls atomic.Int32
	m := NewManager(fastLease(Config{
		Exec: func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // first attempt hangs until the lost lease aborts it
				return nil, ctx.Err()
			}
			emit(0, "cell-0", nil)
			return []byte(`{"ok":1}`), nil
		},
		Store: f,
		Bus:   b,
	}))
	t.Cleanup(m.Close)

	st, err := m.Submit(Request{Scenario: "s"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID)
	if fin.State != api.JobDone || string(fin.Result) != `{"ok":1}` {
		t.Fatalf("retried job = %+v, want done", fin)
	}
	if fin.Attempts < 2 || fin.Requeues < 1 {
		t.Fatalf("attempts=%d requeues=%d, want >=2 and >=1", fin.Attempts, fin.Requeues)
	}
	stats := m.Stats()
	if stats.LeasesLost < 1 || stats.LeasesExpired < 1 || stats.Requeues < 1 {
		t.Fatalf("lease stats = %+v", stats)
	}

	actions := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for !(actions["claimed"] && actions["lost"] && actions["expired"]) {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				t.Fatalf("bus closed; actions %v", actions)
			}
			if jl, okd := ev.Data.(bus.JobLease); okd && jl.JobID == st.ID {
				actions[jl.Action] = true
			}
		case <-deadline:
			t.Fatalf("lease events incomplete: %v", actions)
		}
	}
}

// TestMaxAttemptsFailsJob: a shard that keeps losing its lease gives up
// after MaxAttempts and fails the job with a diagnosis, instead of
// retrying forever.
func TestMaxAttemptsFailsJob(t *testing.T) {
	f := store.NewFault(store.NewMemory(),
		store.Rule{Op: store.OpHeartbeat, Err: errors.New("injected")}) // N=0: every heartbeat
	m := NewManager(fastLease(Config{
		Exec: func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
		Store:       f,
		MaxAttempts: 2,
	}))
	t.Cleanup(m.Close)
	st, err := m.Submit(Request{Scenario: "s"})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID)
	if fin.State != api.JobFailed || fin.Code != api.CodeRunFailed {
		t.Fatalf("job = %+v, want failed", fin)
	}
	if !strings.Contains(fin.Error, "attempts") {
		t.Fatalf("failure message %q should name the attempt cap", fin.Error)
	}
}

// TestSubmitFaultMapsToUnavailable: a store that rejects the submission
// surfaces as a 503 api.Error, not a half-created job.
func TestSubmitFaultMapsToUnavailable(t *testing.T) {
	f := store.NewFault(store.NewMemory(),
		store.Rule{Op: store.OpSubmit, N: 1, Err: errors.New("disk full")})
	m := NewManager(Config{
		Exec: func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
			return []byte("{}"), nil
		},
		Store: f,
	})
	t.Cleanup(m.Close)
	_, err := m.Submit(Request{Scenario: "s"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 503 || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("submit over failing store: %v, want 503 unavailable", err)
	}
	if st := m.Stats(); st.Retained != 0 || st.StoreErrors != 1 {
		t.Fatalf("failed submit leaked state: %+v", st)
	}
	// The store recovered (rule fired once): the next submission works.
	st, err := m.Submit(Request{Scenario: "s"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID)
}

// TestShardedJobAssemblesInOrder: a planned job splits into spans, each
// shard emits its job-global cell indices and returns a part, and the
// assembled result preserves shard order regardless of completion order.
func TestShardedJobAssemblesInOrder(t *testing.T) {
	m := NewManager(Config{
		Exec: func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
			return nil, errors.New("whole-job exec must not run for a planned job")
		},
		Plan: func(req Request) []store.Span {
			return []store.Span{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}}
		},
		ExecShard: func(ctx context.Context, req Request, span store.Span, emit func(int, string, any)) ([]byte, error) {
			for i := span.Lo; i < span.Hi; i++ {
				emit(i, fmt.Sprintf("cell-%d", i), nil)
			}
			return []byte(fmt.Sprintf("[%d,%d]", span.Lo, span.Hi)), nil
		},
		Assemble: func(req Request, parts [][]byte) ([]byte, error) {
			return []byte(string(parts[0]) + "+" + string(parts[1])), nil
		},
		Workers: 2,
	})
	t.Cleanup(m.Close)
	st, err := m.Submit(Request{Scenario: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 {
		t.Fatalf("submit status shards = %d, want 2", st.Shards)
	}
	fin := waitState(t, m, st.ID)
	if fin.State != api.JobDone || string(fin.Result) != "[0,2]+[2,4]" {
		t.Fatalf("sharded job = %+v, want assembled result", fin)
	}
	if fin.CellsCompleted != 4 || fin.ShardsDone != 2 {
		t.Fatalf("cells=%d shardsDone=%d, want 4 and 2", fin.CellsCompleted, fin.ShardsDone)
	}
}

// TestEvictNeverDropsRunningJobs: eviction drops the oldest terminal job
// and only terminal jobs — a running job older than every terminal job
// survives any number of passes.
func TestEvictNeverDropsRunningJobs(t *testing.T) {
	g := newGatedExec()
	release, _ := g.gates("live")
	var calls atomic.Int32
	exec := func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
		if req.Scenario == "live" {
			return g.exec(ctx, req, emit)
		}
		calls.Add(1)
		return []byte("{}"), nil
	}
	// Two workers: one stays pinned under the blocked "live" executor
	// while the other runs the short terminal jobs.
	m := NewManager(Config{Exec: exec, MaxRetained: 1, Workers: 2})
	t.Cleanup(m.Close)

	live, err := m.Submit(Request{Scenario: "live"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	older, err := m.Submit(Request{Scenario: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, older.ID)
	newer, err := m.Submit(Request{Scenario: "t2"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, newer.ID)

	// Two terminal jobs against MaxRetained=1: the older terminal one goes;
	// the live job — oldest of all — stays.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(older.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("older terminal job never evicted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := m.Get(newer.ID); !ok {
		t.Error("newest terminal job evicted before older one")
	}
	if st, ok := m.Get(live.ID); !ok || st.State != api.JobRunning {
		t.Fatalf("running job evicted: ok=%v %+v", ok, st)
	}
	// Released, the live job finishes, turns terminal — and is now itself
	// the oldest terminal job, fair game for the very eviction it was
	// immune to while running.
	release <- nil
	deadline = time.Now().Add(5 * time.Second)
	for {
		st, ok := m.Get(live.ID)
		if !ok || st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("released job stuck: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDoubleCancelIsIdempotent: cancelling a terminal job changes nothing —
// the status comes back unchanged and no counter double-counts.
func TestDoubleCancelIsIdempotent(t *testing.T) {
	g := newGatedExec()
	g.gates("s")
	m := NewManager(Config{Exec: g.exec})
	t.Cleanup(m.Close)
	st, err := m.Submit(Request{Scenario: "s"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	first, ok := m.Cancel(st.ID)
	if !ok || first.State != api.JobCancelled {
		t.Fatalf("first cancel: ok=%v %+v", ok, first)
	}
	second, ok := m.Cancel(st.ID)
	if !ok || second.State != api.JobCancelled {
		t.Fatalf("second cancel: ok=%v %+v", ok, second)
	}
	stats := m.Stats()
	if stats.Cancellations != 1 || stats.Transitions[api.JobCancelled] != 1 {
		t.Fatalf("double cancel double-counted: %+v", stats)
	}

	// Cancelling a done job leaves it done — no cancelled overwrite.
	dRelease, _ := g.gates("d")
	done, err := m.Submit(Request{Scenario: "d"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	dRelease <- nil
	waitState(t, m, done.ID)
	for i := 0; i < 2; i++ {
		if st, ok := m.Cancel(done.ID); !ok || st.State != api.JobDone {
			t.Fatalf("cancel #%d of done job: ok=%v state=%s, want done", i+1, ok, st.State)
		}
	}
	if got := m.Stats().Cancellations; got != 1 {
		t.Fatalf("cancellations = %d, want still 1", got)
	}
}
