package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
)

// gatedExec is a fully controllable executor: each call signals started,
// emits cells on demand, and returns when released or cancelled.
type gatedExec struct {
	mu      sync.Mutex
	started chan string // job scenario names, in execution order
	release map[string]chan error
	emits   map[string]chan int // cell indices to emit
}

func newGatedExec() *gatedExec {
	return &gatedExec{
		started: make(chan string, 16),
		release: make(map[string]chan error),
		emits:   make(map[string]chan int),
	}
}

// gates registers the control channels for a scenario before it is
// submitted.
func (g *gatedExec) gates(scenario string) (release chan error, emit chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	release = make(chan error, 1)
	emit = make(chan int, 16)
	g.release[scenario] = release
	g.emits[scenario] = emit
	return release, emit
}

func (g *gatedExec) exec(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
	g.mu.Lock()
	release := g.release[req.Scenario]
	cells := g.emits[req.Scenario]
	g.mu.Unlock()
	g.started <- req.Scenario
	for {
		select {
		case i := <-cells:
			emit(i, fmt.Sprintf("cell-%d", i), map[string]int{"i": i})
		case err := <-release:
			return []byte(`{"ok":true}` + "\n"), err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func newTestManager(t *testing.T, g *gatedExec, slots int) (*Manager, *httptest.Server) {
	t.Helper()
	var sem chan struct{}
	if slots > 0 {
		sem = make(chan struct{}, slots)
	}
	m := NewManager(Config{Exec: g.exec, Slots: sem})
	t.Cleanup(m.Close)
	mux := http.NewServeMux()
	m.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return m, ts
}

func submit(t *testing.T, ts *httptest.Server, scenario string) api.JobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"scenario":%q}`, scenario)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: HTTP %d", scenario, resp.StatusCode)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJob(t *testing.T, ts *httptest.Server, id string) api.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v2/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) api.JobStatus {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStreamDeliversCellsIncrementally is the acceptance guarantee for
// streaming: the client observes the first cell event while the job is
// still running — strictly before the sweep completes.
func TestStreamDeliversCellsIncrementally(t *testing.T) {
	g := newGatedExec()
	release, emit := g.gates("s")
	_, ts := newTestManager(t, g, 0)
	job := submit(t, ts, "s")
	<-g.started // the executor is live and blocked

	resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	readEvent := func() api.Event {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var ev api.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		return ev
	}

	if ev := readEvent(); ev.Type != "status" || ev.Job.State != api.JobRunning {
		t.Fatalf("first event = %+v, want running status", ev)
	}
	// Emit one cell; it must arrive while the executor is still blocked —
	// the job is provably unfinished when the client sees the cell.
	emit <- 0
	if ev := readEvent(); ev.Type != "cell" || ev.Index != 0 {
		t.Fatalf("event = %+v, want cell 0", ev)
	}
	if st := getJob(t, ts, job.ID); st.State != api.JobRunning || st.CellsCompleted != 1 {
		t.Fatalf("mid-stream status = %s/%d cells, want running/1", st.State, st.CellsCompleted)
	}
	emit <- 1
	if ev := readEvent(); ev.Type != "cell" || ev.Index != 1 {
		t.Fatalf("event = %+v, want cell 1", ev)
	}
	release <- nil // let the sweep finish
	if ev := readEvent(); ev.Type != "done" || ev.Job.State != api.JobDone || ev.Job.CellsCompleted != 2 {
		t.Fatalf("event = %+v, want done with 2 cells", ev)
	}
	if sc.Scan() {
		t.Errorf("stream continued past done: %q", sc.Text())
	}

	// A late stream replays the full history for a finished job.
	resp2, err := http.Get(ts.URL + "/v2/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var types []string
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var ev api.Event
		_ = json.Unmarshal(sc2.Bytes(), &ev)
		types = append(types, ev.Type)
	}
	want := []string{"status", "cell", "cell", "done"}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Errorf("replayed stream = %v, want %v", types, want)
	}
}

// TestCancelRunningFreesSlot is the worker-slot guarantee at the job layer:
// DELETE on a running job transitions it to cancelled and releases its
// execution slot to the next queued job — deterministically before the
// cancelled sweep would have finished (its executor never gets released).
func TestCancelRunningFreesSlot(t *testing.T) {
	g := newGatedExec()
	_, emitA := g.gates("a")
	releaseB, _ := g.gates("b")
	_, ts := newTestManager(t, g, 1) // one slot: b must wait for a

	jobA := submit(t, ts, "a")
	if got := <-g.started; got != "a" {
		t.Fatalf("started %q, want a", got)
	}
	emitA <- 0 // a is mid-sweep
	jobB := submit(t, ts, "b")
	if st := getJob(t, ts, jobB.ID); st.State != api.JobQueued {
		t.Fatalf("b = %s while a holds the slot, want queued", st.State)
	}

	// Cancel a: the DELETE response itself reports cancelled (the
	// running→cancelled transition), and b gets the freed slot.
	if st := cancelJob(t, ts, jobA.ID); st.State != api.JobCancelled {
		t.Fatalf("cancel a: state %s, want cancelled", st.State)
	}
	if got := <-g.started; got != "b" {
		t.Fatalf("slot went to %q, want b", got)
	}
	releaseB <- nil
	// b runs to completion on the slot a released; a stays cancelled with
	// its partial progress intact. Wait for b via its stream.
	resp, err := http.Get(ts.URL + "/v2/jobs/" + jobB.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = new(bytes.Buffer).ReadFrom(resp.Body)
	resp.Body.Close()
	if st := getJob(t, ts, jobB.ID); st.State != api.JobDone {
		t.Errorf("b = %s, want done", st.State)
	}
	if st := getJob(t, ts, jobA.ID); st.State != api.JobCancelled || st.CellsCompleted != 1 {
		t.Errorf("a = %s/%d cells, want cancelled/1", st.State, st.CellsCompleted)
	}
}

// TestCancelQueuedJob: cancelling a job that never got a slot works and the
// slot accounting stays clean.
func TestCancelQueuedJob(t *testing.T) {
	g := newGatedExec()
	releaseA, _ := g.gates("a")
	g.gates("q")
	m, ts := newTestManager(t, g, 1)
	jobA := submit(t, ts, "a")
	<-g.started
	jobQ := submit(t, ts, "q")
	if st := m.Stats(); st.QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1", st.QueueDepth)
	}
	if st := cancelJob(t, ts, jobQ.ID); st.State != api.JobCancelled {
		t.Fatalf("cancel queued: %s", st.State)
	}
	releaseA <- nil
	resp, _ := http.Get(ts.URL + "/v2/jobs/" + jobA.ID + "/stream")
	_, _ = new(bytes.Buffer).ReadFrom(resp.Body)
	resp.Body.Close()
	st := m.Stats()
	if st.QueueDepth != 0 || st.Cancellations != 1 || st.ByState[api.JobCancelled] != 1 || st.ByState[api.JobDone] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestFailedJob: an executor error lands the job in failed with the message.
func TestFailedJob(t *testing.T) {
	g := newGatedExec()
	release, _ := g.gates("f")
	_, ts := newTestManager(t, g, 0)
	job := submit(t, ts, "f")
	<-g.started
	release <- errors.New("synthetic failure")
	resp, _ := http.Get(ts.URL + "/v2/jobs/" + job.ID + "/stream")
	_, _ = new(bytes.Buffer).ReadFrom(resp.Body)
	resp.Body.Close()
	st := getJob(t, ts, job.ID)
	if st.State != api.JobFailed || st.Error != "synthetic failure" || st.Code != api.CodeRunFailed {
		t.Errorf("status = %+v, want failed/synthetic failure", st)
	}
	// No result endpoint for a failed job.
	resp, err := http.Get(ts.URL + "/v2/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("result of failed job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestValidateRejectsAtSubmit: the validate hook fails the POST
// synchronously with the hook's mapped status, creating no job.
func TestValidateRejectsAtSubmit(t *testing.T) {
	m := NewManager(Config{
		Exec: func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
			return nil, nil
		},
		Validate: func(req Request) error {
			return api.Errorf(http.StatusUnprocessableEntity, api.CodeInvalidParams,
				req.Scenario, "bad params")
		},
	})
	t.Cleanup(m.Close)
	mux := http.NewServeMux()
	m.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(`{"scenario":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("HTTP %d, want 422", resp.StatusCode)
	}
	if st := m.Stats(); st.Submitted != 0 || st.Retained != 0 {
		t.Errorf("rejected submit created a job: %+v", st)
	}
}

// TestCloseCancelsLiveJobs: shutdown cancels running work and waits for it.
func TestCloseCancelsLiveJobs(t *testing.T) {
	g := newGatedExec()
	g.gates("s")
	var sem chan struct{}
	m := NewManager(Config{Exec: g.exec, Slots: sem})
	mux := http.NewServeMux()
	m.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	job := submit(t, ts, "s")
	<-g.started
	m.Close() // blocks until the executor observes cancellation
	st, ok := m.Get(job.ID)
	if !ok || st.State != api.JobCancelled {
		t.Errorf("after Close: %+v, want cancelled", st)
	}
	if _, err := m.Submit(Request{Scenario: "s"}); err == nil {
		t.Error("Submit after Close succeeded")
	}
}

// TestRetention: terminal jobs are evicted oldest-first past the bound;
// live jobs survive.
func TestRetention(t *testing.T) {
	g := newGatedExec()
	m := NewManager(Config{
		Exec: func(ctx context.Context, req Request, emit func(int, string, any)) ([]byte, error) {
			return []byte("{}"), nil
		},
		MaxRetained: 3,
	})
	t.Cleanup(m.Close)
	_ = g
	var last api.JobStatus
	for i := 0; i < 6; i++ {
		st, err := m.Submit(Request{Scenario: fmt.Sprintf("s%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		last = st
		// Wait for this job to finish so submission order == finish order.
		for {
			cur, _ := m.Get(st.ID)
			if cur.State.Terminal() {
				break
			}
		}
	}
	if st := m.Stats(); st.Retained > 3 {
		t.Errorf("retained %d jobs, want <= 3", st.Retained)
	}
	if _, ok := m.Get(last.ID); !ok {
		t.Error("newest job evicted")
	}
}

// TestRetentionSparesResultsUnderLiveBurst: a burst of live jobs larger
// than MaxRetained must not flush a freshly finished job's result — only
// terminal jobs count against the retention bound.
func TestRetentionSparesResultsUnderLiveBurst(t *testing.T) {
	g := newGatedExec()
	release, _ := g.gates("first")
	var sem chan struct{}
	m := NewManager(Config{Exec: g.exec, Slots: sem, MaxRetained: 2, MaxPending: 100})
	t.Cleanup(m.Close)

	first, err := m.Submit(Request{Scenario: "first"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	release <- nil
	for {
		if st, _ := m.Get(first.ID); st.State.Terminal() {
			break
		}
	}
	// Pile up live jobs well past MaxRetained; none are terminal, so the
	// finished job must survive every eviction pass.
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("live-%d", i)
		g.gates(name)
		if _, err := m.Submit(Request{Scenario: name}); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := m.Get(first.ID)
	if !ok || st.State != api.JobDone {
		t.Fatalf("finished job evicted by live burst: ok=%v st=%+v", ok, st)
	}
}
