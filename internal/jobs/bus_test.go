package jobs

import (
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
)

// collectStates drains sub until a terminal state for id arrives (or the
// deadline passes) and returns the observed state sequence for id.
func collectStates(t *testing.T, sub *bus.Subscription, id string) []string {
	t.Helper()
	var states []string
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				t.Fatalf("bus closed; states so far %v", states)
			}
			js, okd := ev.Data.(bus.JobState)
			if !okd || js.ID != id {
				continue
			}
			states = append(states, js.State)
			if api.JobState(js.State).Terminal() {
				return states
			}
		case <-deadline:
			t.Fatalf("no terminal job.state event for %s; got %v", id, states)
		}
	}
}

func TestBusReceivesLifecycleTransitions(t *testing.T) {
	b := bus.New(bus.Config{})
	defer b.Close()
	sub, err := b.Subscribe(bus.SubOptions{Topics: []string{bus.TopicJobState}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	g := newGatedExec()
	release, emit := g.gates("s1")
	m := NewManager(Config{Exec: g.exec, Bus: b})
	t.Cleanup(m.Close)

	st, err := m.Submit(Request{Scenario: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	emit <- 0
	release <- nil

	states := collectStates(t, sub, st.ID)
	want := []string{"queued", "running", "done"}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}

	stats := m.Stats()
	for _, s := range []api.JobState{api.JobQueued, api.JobRunning, api.JobDone} {
		if stats.Transitions[s] != 1 {
			t.Fatalf("Transitions[%s] = %d, want 1 (%v)", s, stats.Transitions[s], stats.Transitions)
		}
	}
}

func TestBusCancelledTransitionCarriesState(t *testing.T) {
	b := bus.New(bus.Config{})
	defer b.Close()
	sub, err := b.Subscribe(bus.SubOptions{Topics: []string{bus.TopicJobState}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	g := newGatedExec()
	g.gates("s2")
	m := NewManager(Config{Exec: g.exec, Bus: b})
	t.Cleanup(m.Close)

	st, err := m.Submit(Request{Scenario: "s2"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	if _, ok := m.Cancel(st.ID); !ok {
		t.Fatal("Cancel: job not found")
	}
	states := collectStates(t, sub, st.ID)
	if states[len(states)-1] != "cancelled" {
		t.Fatalf("terminal state = %v, want cancelled", states)
	}
	if m.Stats().Transitions[api.JobCancelled] != 1 {
		t.Fatalf("Transitions[cancelled] = %d, want 1", m.Stats().Transitions[api.JobCancelled])
	}
}
