package jobs

// Shard execution under leases. Workers claim shards from the store,
// renew a heartbeat while executing, and write results back; a supervisor
// reaps leases whose holder stopped heartbeating (crashed worker, hung
// executor) and returns their shards to the queue with capped exponential
// backoff. Everything here mutates jobs through finalizeLocked under j.mu,
// and touches the store either without runtime locks (claims) or after
// taking j.mu (transitions) — the store never calls back out, so the
// j.mu → store lock order has no cycles.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/jobs/store"
)

// backoff is the requeue gate for a shard on its n-th attempt:
// RetryBase·2^(n-1), capped at RetryCap.
func (m *Manager) backoff(attempts int) time.Duration {
	d := m.cfg.RetryBase
	for i := 1; i < attempts; i++ {
		d *= 2
		if d >= m.cfg.RetryCap {
			return m.cfg.RetryCap
		}
	}
	if d > m.cfg.RetryCap {
		d = m.cfg.RetryCap
	}
	return d
}

// publishLease emits one job.lease event; action is "claimed", "lost",
// "requeued" or "expired".
func (m *Manager) publishLease(sh store.Shard, worker, action string) {
	if b := m.cfg.Bus; b != nil {
		b.Publish(bus.TopicJobLease, bus.JobLease{
			JobID: sh.JobID, Shard: sh.Index, Worker: worker,
			Action: action, Attempt: sh.Attempts,
		})
	}
}

// workerLoop claims and executes shards until the manager stops. It sleeps
// on the work channel between claims; Submit, recovery and the supervisor
// signal it, and a worker that found work re-signals so one nudge wakes the
// whole pool when the queue holds more than one shard.
func (m *Manager) workerLoop(name string) {
	defer m.wg.Done()
	for {
		select {
		case <-m.base.Done():
			return
		case <-m.work:
		}
		for m.runOneShard(name) {
		}
	}
}

// runOneShard acquires a slot, claims one shard and executes it. It
// reports whether it did work, so the caller keeps draining the queue.
func (m *Manager) runOneShard(name string) bool {
	if m.base.Err() != nil {
		// Shutting down: a shard released by an aborting sibling must not
		// be re-claimed here, or the drain loop would spin until Close.
		return false
	}
	if m.cfg.Slots != nil {
		select {
		case <-m.base.Done():
			return false
		case m.cfg.Slots <- struct{}{}:
		}
		defer func() { <-m.cfg.Slots }()
	}
	sh, ok, err := m.st.Claim(time.Now(), name, m.cfg.Lease)
	if err != nil {
		m.storeErrors.Add(1)
		return false
	}
	if !ok {
		return false
	}
	m.signalWork() // there may be more where that came from
	m.executeShard(name, sh)
	return true
}

// executeShard runs one claimed shard end to end: running transition,
// heartbeat loop, executor call, then completion / release / failure.
func (m *Manager) executeShard(name string, sh store.Shard) {
	j, ok := m.lookup(sh.JobID)
	if !ok {
		// Evicted or foreign job (another process's runtime owns it in a
		// shared durable store, or retention dropped it). Force-release so
		// the shard is not stuck until lease expiry.
		if err := m.st.ReleaseShard(time.Now(), sh.JobID, sh.Index, "", time.Now()); err != nil {
			m.storeErrors.Add(1)
		}
		return
	}
	m.shardsClaimed.Add(1)
	m.activeLeases.Add(1)
	defer m.activeLeases.Add(-1)

	j.mu.Lock()
	if j.state.Terminal() {
		// Cancelled (or failed) between claim and here: give the shard back;
		// terminal jobs are never claimed again.
		j.mu.Unlock()
		if err := m.st.ReleaseShard(time.Now(), sh.JobID, sh.Index, name, time.Now()); err != nil {
			m.storeErrors.Add(1)
		}
		return
	}
	j.attempts++
	if j.state == api.JobQueued {
		now := time.Now()
		if err := m.st.TransitionJob(now, j.id, api.JobRunning, "", "", nil); err != nil {
			m.storeErrors.Add(1)
		}
		j.state = api.JobRunning
		j.started = &now
		m.transition(j, api.JobRunning, len(j.cells), "")
		j.broadcastLocked()
	}
	jctx := j.ctx
	j.mu.Unlock()
	m.publishLease(sh, name, "claimed")

	// The shard context aborts on job cancel/fail (jctx) or on lease loss.
	sctx, abort := context.WithCancel(jctx)
	defer abort()
	lost := make(chan struct{})
	hbDone := make(chan struct{})
	go m.heartbeatLoop(sctx, sh, name, lost, hbDone, abort)

	result, err := m.execOne(sctx, j, sh.Span)
	abort()
	<-hbDone
	if err == nil && jctx.Err() != nil {
		err = jctx.Err() // late cancel the executor did not observe
	}

	select {
	case <-lost:
		// The store says another holder owns this shard (lease expired and
		// was reaped, or heartbeats failed). Our result may be stale — drop
		// it; whoever holds the lease now reruns the span.
		m.requeueLost(j, sh, name)
		return
	default:
	}

	switch {
	case err == nil:
		m.completeShard(j, sh, name, result)
	case jctx.Err() != nil:
		m.abandonShard(j, sh, name)
	default:
		m.failJob(j, sh, err)
	}
}

// heartbeatLoop renews the lease every Heartbeat until the shard context
// ends. A failed renewal means the lease is gone (reaped after a stall, or
// the store is failing); it closes lost and aborts the executor.
func (m *Manager) heartbeatLoop(ctx context.Context, sh store.Shard, name string, lost, done chan struct{}, abort context.CancelFunc) {
	defer close(done)
	t := time.NewTicker(m.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := m.st.Heartbeat(time.Now(), sh.JobID, sh.Index, name, m.cfg.Lease); err != nil {
				m.leasesLost.Add(1)
				m.publishLease(sh, name, "lost")
				close(lost)
				abort()
				return
			}
		}
	}
}

// execOne dispatches to the whole-job or shard executor.
func (m *Manager) execOne(ctx context.Context, j *job, span store.Span) ([]byte, error) {
	if span.Whole() || m.cfg.ExecShard == nil {
		return m.cfg.Exec(ctx, j.req, j.emit)
	}
	return m.cfg.ExecShard(ctx, j.req, span, j.emit)
}

// completeShard records a shard result; when it was the job's last shard
// the job finishes with the assembled result.
func (m *Manager) completeShard(j *job, sh store.Shard, name string, result []byte) {
	remaining, err := m.st.CompleteShard(time.Now(), sh.JobID, sh.Index, name, result)
	if err != nil {
		// ErrLeaseLost: reaped while we were finishing — same as a lost
		// heartbeat, the rerun owns the span now. Other errors (fault
		// injection, disk): the shard stays claimed; the supervisor reaps
		// the lease once it lapses and the retry self-heals.
		m.leasesLost.Add(1)
		m.publishLease(sh, name, "lost")
		m.storeErrors.Add(1)
		return
	}
	j.mu.Lock()
	j.shardsDone++
	j.broadcastLocked()
	j.mu.Unlock()
	if remaining == 0 {
		m.assembleAndFinish(j)
	}
}

// assembleAndFinish merges the job's shard results and applies the done
// transition (or failed, if assembly itself rejects the parts). The
// transition and the eviction pass run under one m.mu hold, so an observer
// that sees the job terminal never sees the retention bound exceeded.
func (m *Manager) assembleAndFinish(j *job) {
	parts, err := m.st.ShardResults(j.id)
	var final []byte
	if err == nil {
		if len(j.spans) == 1 && j.spans[0].Whole() {
			final = parts[0]
		} else {
			final, err = m.cfg.Assemble(j.req, parts)
		}
	}
	m.mu.Lock()
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while assembling
		j.mu.Unlock()
		m.mu.Unlock()
		return
	}
	if err != nil {
		m.finalizeLocked(j, api.JobFailed, fmt.Sprintf("assembling shard results: %s", err), api.CodeRunFailed, nil)
	} else {
		m.finalizeLocked(j, api.JobDone, "", "", final)
	}
	j.mu.Unlock()
	m.evictLocked()
	m.mu.Unlock()
}

// requeueLost is the worker-side path of a lost lease: the supervisor (or
// another process) already owns requeueing the shard, so the worker only
// drops its stale result. The attempt bookkeeping happened at claim time.
func (m *Manager) requeueLost(j *job, sh store.Shard, name string) {
	_ = name
	j.mu.Lock()
	j.requeues++
	j.mu.Unlock()
}

// abandonShard is the cancel/shutdown path: the executor stopped because
// the job's context ended. For a cancelled job the terminal transition
// already happened; nothing to do. For shutdown with a durable store the
// shard goes back to pending immediately — this is requeue-on-shutdown,
// the next process claims it with no lease-expiry wait. (With a volatile
// store Close cancels the job anyway.)
func (m *Manager) abandonShard(j *job, sh store.Shard, name string) {
	if j.currentState().Terminal() {
		return
	}
	now := time.Now()
	if err := m.st.ReleaseShard(now, sh.JobID, sh.Index, name, now); err != nil {
		m.storeErrors.Add(1)
		return
	}
	m.publishLease(sh, name, "requeued")
}

// failJob applies a failed transition (executor error) and cancels the
// job's context so sibling shards stop.
func (m *Manager) failJob(j *job, sh store.Shard, err error) {
	_ = sh
	m.mu.Lock()
	j.mu.Lock()
	if !j.state.Terminal() {
		m.finalizeLocked(j, api.JobFailed, err.Error(), api.CodeRunFailed, nil)
	}
	j.mu.Unlock()
	m.evictLocked()
	m.mu.Unlock()
	j.cancel()
}

// supervise reaps expired leases on the Poll interval. Requeued shards get
// a backoff gate proportional to their attempt count; a shard past
// MaxAttempts fails its job instead of looping forever.
func (m *Manager) supervise() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-m.base.Done():
			return
		case <-t.C:
			m.sweepLeases()
			// Also re-nudge the pool unconditionally: a requeued shard
			// behind its backoff gate produces no event when the gate
			// passes, so claim retries are poll-driven.
			m.signalWork()
		}
	}
}

// sweepLeases expires lapsed leases and accounts the requeues.
func (m *Manager) sweepLeases() {
	expired, err := m.st.ExpireLeases(time.Now(), m.backoff)
	if err != nil {
		m.storeErrors.Add(1)
		return
	}
	for _, sh := range expired {
		m.leasesExpired.Add(1)
		m.requeues.Add(1)
		m.publishLease(sh, sh.Worker, "expired")
		if j, ok := m.lookup(sh.JobID); ok {
			j.mu.Lock()
			j.requeues++
			j.mu.Unlock()
			if m.cfg.MaxAttempts > 0 && sh.Attempts >= m.cfg.MaxAttempts {
				m.failJob(j, sh, fmt.Errorf(
					"shard %d failed %d attempts (lease expired); giving up",
					sh.Index, sh.Attempts))
			}
		}
	}
	if len(expired) > 0 {
		m.signalWork()
	}
}
