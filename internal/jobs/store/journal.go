package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/api"
)

// Journal is the durable backend: the same state machine as Memory, plus an
// append-only log of checksummed records under dir. The write path is
// WiscKey-shaped — state lives in memory, every mutation appends one framed
// record, and recovery is replay:
//
//	snapshot.json   the state as of the last compaction (atomic rename)
//	journal.log     records appended since: 4B LE length | 4B CRC32 | JSON
//
// Open loads the snapshot, replays the log (stopping at the first torn or
// corrupt record and truncating the tail — an interrupted append must not
// poison recovery), then compacts: the merged state becomes the new
// snapshot and the log restarts empty.
//
// Durability is fsync-on-commit, where "commit" is the transitions a crash
// must not unwind: submissions, shard completions (partial results), and
// terminal job transitions. Claims, heartbeats and requeues are appended
// but not synced — losing a claim record merely resurrects the shard as
// pending on recovery, which is exactly where recovery re-queues claimed
// shards anyway, so the fsync would buy nothing and cost one disk round
// trip per lease renewal.
type Journal struct {
	mu  sync.Mutex
	st  *state
	dir string
	f   *os.File // journal.log, opened for append

	records int64 // appended since open/compaction
	bytes   int64 // good bytes in the log == the clean-truncation offset
	syncs   int64

	breakNext bool // fault injection: tear the next append (see BreakNextAppend)
	failed    bool // a torn append could not be rolled back; writes refused
}

const (
	snapshotName = "snapshot.json"
	journalName  = "journal.log"
	headerSize   = 8 // 4B little-endian payload length + 4B CRC32 (IEEE)
)

// maxRecordSize bounds a decoded record frame. A length prefix beyond it is
// treated as a torn/corrupt tail, not an allocation request.
const maxRecordSize = 64 << 20

// snapshot is the serialized form of the whole state table.
type snapshot struct {
	Jobs   []Job               `json:"jobs"` // submission order
	Shards map[string][]Shard  `json:"shards"`
	Parts  map[string][][]byte `json:"parts,omitempty"`
	Final  map[string][]byte   `json:"final,omitempty"`
}

// OpenJournal opens (creating if needed) a journal store rooted at dir and
// recovers its state: snapshot, then log replay with torn-tail truncation,
// then compaction. The returned store is ready for writes; jobs that were
// mid-flight are exactly as the log last recorded them (the manager's
// recovery pass requeues their claimed shards).
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: journal dir: %w", err)
	}
	j := &Journal{st: newState(), dir: dir}
	if err := j.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := j.replay(); err != nil {
		return nil, err
	}
	if err := j.compact(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(j.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	j.f = f
	return j, nil
}

func (j *Journal) logPath() string  { return filepath.Join(j.dir, journalName) }
func (j *Journal) snapPath() string { return filepath.Join(j.dir, snapshotName) }

func (j *Journal) loadSnapshot() error {
	data, err := os.ReadFile(j.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: decode snapshot: %w", err)
	}
	for i := range snap.Jobs {
		jb := snap.Jobs[i]
		shs := snap.Shards[jb.ID]
		// Re-submit through apply so interior pointers are fresh.
		j.st.apply(record{Op: "submit", Job: &jb, Shards: shs})
		// apply(submit) resets derived fields; restore the exact persisted
		// job row and shard/result tables on top.
		*j.st.jobs[jb.ID] = jb
		for k := range shs {
			*j.st.shards[jb.ID][k] = shs[k]
		}
		if parts := snap.Parts[jb.ID]; len(parts) == len(shs) {
			copy(j.st.parts[jb.ID], parts)
		}
		if fin, ok := snap.Final[jb.ID]; ok {
			j.st.final[jb.ID] = fin
		}
	}
	return nil
}

// replay applies journal.log on top of the snapshot. It stops at the first
// frame that is short, oversized or checksum-corrupt and truncates the file
// there: everything before the tear is kept, everything after (necessarily
// written later) is unreachable anyway without the torn record.
func (j *Journal) replay() error {
	f, err := os.Open(j.logPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open journal for replay: %w", err)
	}
	defer f.Close()

	var good int64
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			break // clean EOF or torn header — either way the log ends here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordSize {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record; nothing after it is trustworthy
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		j.st.apply(rec)
		good += int64(headerSize) + int64(n)
	}
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat journal: %w", err)
	}
	if fi.Size() > good {
		if err := os.Truncate(j.logPath(), good); err != nil {
			return fmt.Errorf("store: truncate torn journal tail: %w", err)
		}
	}
	return nil
}

// compact atomically replaces the snapshot with the current state and
// restarts the log empty. Crash-ordering: the new snapshot is fully synced
// and renamed into place before the log is truncated, so at every instant
// either (old snapshot + full log) or (new snapshot + empty log) recovers
// the same state.
func (j *Journal) compact() error {
	snap := snapshot{
		Shards: make(map[string][]Shard),
		Parts:  make(map[string][][]byte),
		Final:  make(map[string][]byte),
	}
	for _, id := range j.st.order {
		jb, shs, ok := j.st.get(id)
		if !ok {
			continue
		}
		snap.Jobs = append(snap.Jobs, jb)
		snap.Shards[id] = shs
		if parts, err := j.st.shardResults(id); err == nil {
			snap.Parts[id] = parts
		}
		if fin := j.st.final[id]; fin != nil {
			snap.Final[id] = fin
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	tmp := j.snapPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, j.snapPath()); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	if err := os.Truncate(j.logPath(), 0); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: reset journal: %w", err)
	}
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync() // persist the rename itself
		d.Close()
	}
	return nil
}

// append frames rec onto the log; sync forces it to disk (the commit
// points). Callers hold j.mu. Append is atomic from the store's point of
// view: on any error the partial frame is truncated away so later records
// never land behind a tear (replay stops at the first bad frame, which
// would make every record after it unreachable), and the in-memory state
// has not been touched yet, so a failed append leaves the store consistent.
func (j *Journal) append(rec record, sync bool) error {
	if j.f == nil {
		return errors.New("store: journal is closed")
	}
	if j.failed {
		return errors.New("store: journal failed; reopen to recover")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	if j.breakNext {
		// Fault injection: write a torn frame (header + half the payload)
		// and fail the op, exactly the on-disk shape of a crash mid-write —
		// then roll it back like any other failed append.
		j.breakNext = false
		_, _ = j.f.Write(frame[:headerSize+len(payload)/2])
		j.rollback()
		return errors.New("store: injected torn write")
	}
	if _, err := j.f.Write(frame); err != nil {
		j.rollback()
		return fmt.Errorf("store: append record: %w", err)
	}
	j.records++
	j.bytes += int64(len(frame))
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("store: sync journal: %w", err)
		}
		j.syncs++
	}
	return nil
}

// rollback truncates the log to its last clean frame boundary after a
// failed append. If even that fails the journal marks itself failed and
// refuses further writes: appending behind a torn frame would fsync
// records that recovery can never reach.
func (j *Journal) rollback() {
	if err := j.f.Truncate(j.bytes); err != nil {
		j.failed = true
	}
}

// LogStats reports appended record/byte/sync counts since open (the
// journal restarts empty at open-time compaction, so these measure the
// current run's write volume).
func (j *Journal) LogStats() (records, bytes, syncs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records, j.bytes, j.syncs
}

// BreakNextAppend arms a single torn write: the next journal append writes
// a truncated frame and returns an error, exactly the on-disk shape an
// ill-timed crash leaves. The Fault wrapper's Torn rules call this.
func (j *Journal) BreakNextAppend() {
	j.mu.Lock()
	j.breakNext = true
	j.mu.Unlock()
}

// commit validates via op (which returns the record), persists, applies.
func (j *Journal) commit(sync bool, op func() (record, error)) error {
	rec, err := op()
	if err != nil {
		return err
	}
	if err := j.append(rec, sync); err != nil {
		return err
	}
	j.st.apply(rec)
	return nil
}

func (j *Journal) Submit(jb Job, shards []Shard) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commit(true, func() (record, error) { return j.st.submit(jb, shards) })
}

func (j *Journal) Claim(now time.Time, worker string, lease time.Duration) (Shard, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.st.claim(now, worker, lease)
	if !ok {
		return Shard{}, false, nil
	}
	if err := j.append(rec, false); err != nil {
		return Shard{}, false, err
	}
	j.st.apply(rec)
	return *j.st.shard(rec.ID, rec.Index), true, nil
}

func (j *Journal) Heartbeat(now time.Time, jobID string, index int, worker string, lease time.Duration) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commit(false, func() (record, error) {
		return j.st.heartbeat(now, jobID, index, worker, lease)
	})
}

func (j *Journal) CompleteShard(now time.Time, jobID string, index int, worker string, result []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.commit(true, func() (record, error) {
		return j.st.completeShard(jobID, index, worker, result)
	})
	if err != nil {
		return 0, err
	}
	return j.st.remaining(jobID), nil
}

func (j *Journal) ReleaseShard(now time.Time, jobID string, index int, worker string, notBefore time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commit(false, func() (record, error) {
		return j.st.releaseShard(jobID, index, worker, notBefore)
	})
}

func (j *Journal) ExpireLeases(now time.Time, backoff func(attempts int) time.Duration) ([]Shard, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Shard
	for _, sh := range j.st.expired(now) {
		nb := now
		if backoff != nil {
			nb = now.Add(backoff(sh.Attempts))
		}
		rec, err := j.st.releaseShard(sh.JobID, sh.Index, "", nb)
		if err != nil {
			continue
		}
		if err := j.append(rec, false); err != nil {
			return out, err
		}
		j.st.apply(rec)
		out = append(out, *sh)
	}
	return out, nil
}

func (j *Journal) TransitionJob(now time.Time, jobID string, state api.JobState, errMsg, code string, result []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commit(true, func() (record, error) {
		return j.st.transitionJob(jobID, state, errMsg, code, result)
	})
}

func (j *Journal) ShardResults(jobID string) ([][]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.shardResults(jobID)
}

func (j *Journal) Result(jobID string) ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.result(jobID)
}

func (j *Journal) Get(jobID string) (Job, []Shard, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jb, shs, ok := j.st.get(jobID)
	return jb, shs, ok, nil
}

func (j *Journal) List() ([]Job, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.list(), nil
}

func (j *Journal) Delete(jobID string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commit(false, func() (record, error) { return j.st.deleteJob(jobID) })
}

func (j *Journal) Name() string  { return "journal" }
func (j *Journal) Durable() bool { return true }

// Close syncs and closes the log. The directory remains replayable; a
// subsequent OpenJournal recovers exactly this state.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
