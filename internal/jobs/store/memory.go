package store

import (
	"sync"
	"time"

	"repro/internal/api"
)

// Memory is the volatile backend: the shared state machine under one mutex,
// nothing else. It is the default store — the manager behaves exactly as it
// did before durability existed (shutdown cancels live jobs; nothing
// survives restart).
type Memory struct {
	mu sync.Mutex
	st *state
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{st: newState()}
}

func (m *Memory) Submit(j Job, shards []Shard) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.st.submit(j, shards)
	if err != nil {
		return err
	}
	m.st.apply(rec)
	return nil
}

func (m *Memory) Claim(now time.Time, worker string, lease time.Duration) (Shard, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.st.claim(now, worker, lease)
	if !ok {
		return Shard{}, false, nil
	}
	m.st.apply(rec)
	return *m.st.shard(rec.ID, rec.Index), true, nil
}

func (m *Memory) Heartbeat(now time.Time, jobID string, index int, worker string, lease time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.st.heartbeat(now, jobID, index, worker, lease)
	if err != nil {
		return err
	}
	m.st.apply(rec)
	return nil
}

func (m *Memory) CompleteShard(now time.Time, jobID string, index int, worker string, result []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.st.completeShard(jobID, index, worker, result)
	if err != nil {
		return 0, err
	}
	m.st.apply(rec)
	return m.st.remaining(jobID), nil
}

func (m *Memory) ReleaseShard(now time.Time, jobID string, index int, worker string, notBefore time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.st.releaseShard(jobID, index, worker, notBefore)
	if err != nil {
		return err
	}
	m.st.apply(rec)
	return nil
}

func (m *Memory) ExpireLeases(now time.Time, backoff func(attempts int) time.Duration) ([]Shard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Shard
	for _, sh := range m.st.expired(now) {
		nb := now
		if backoff != nil {
			nb = now.Add(backoff(sh.Attempts))
		}
		rec, err := m.st.releaseShard(sh.JobID, sh.Index, "", nb)
		if err != nil {
			continue // lost a race with a concurrent release; nothing to requeue
		}
		m.st.apply(rec)
		out = append(out, *sh)
	}
	return out, nil
}

func (m *Memory) TransitionJob(now time.Time, jobID string, state api.JobState, errMsg, code string, result []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.st.transitionJob(jobID, state, errMsg, code, result)
	if err != nil {
		return err
	}
	m.st.apply(rec)
	return nil
}

func (m *Memory) ShardResults(jobID string) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st.shardResults(jobID)
}

func (m *Memory) Result(jobID string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st.result(jobID)
}

func (m *Memory) Get(jobID string) (Job, []Shard, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, shs, ok := m.st.get(jobID)
	return j, shs, ok, nil
}

func (m *Memory) List() ([]Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st.list(), nil
}

func (m *Memory) Delete(jobID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, err := m.st.deleteJob(jobID)
	if err != nil {
		return err
	}
	m.st.apply(rec)
	return nil
}

func (m *Memory) Name() string  { return "memory" }
func (m *Memory) Durable() bool { return false }
func (m *Memory) Close() error  { return nil }
