package store

import (
	"sync"
	"time"

	"repro/internal/api"
)

// Op names a Store operation for fault-rule matching.
type Op string

const (
	OpSubmit     Op = "submit"
	OpClaim      Op = "claim"
	OpHeartbeat  Op = "heartbeat"
	OpComplete   Op = "complete"
	OpRelease    Op = "release"
	OpExpire     Op = "expire"
	OpTransition Op = "transition"
	OpDelete     Op = "delete"
)

// Rule is one injected fault: on the Nth call of Op (1-based; 0 matches
// every call), stall for Stall, then either fail with Err without reaching
// the inner store, or — when Torn is set and the inner store is journal-
// backed — arm a torn write so the operation tears its log record mid-frame
// exactly as a crash would.
type Rule struct {
	Op    Op
	N     int
	Err   error
	Stall time.Duration
	Torn  bool
}

// AppendBreaker is the hook Torn rules need: the journal backend implements
// it by tearing its next framed append.
type AppendBreaker interface {
	BreakNextAppend()
}

// Fault wraps a Store and applies Rules to its write operations. Reads pass
// through untouched — the interesting failures are the ones that can lose
// or duplicate work. Zero rules means a transparent wrapper.
type Fault struct {
	inner  Store
	mu     sync.Mutex
	rules  []Rule
	counts map[Op]int
}

// NewFault wraps inner with the given rules.
func NewFault(inner Store, rules ...Rule) *Fault {
	return &Fault{inner: inner, rules: rules, counts: make(map[Op]int)}
}

// Add arms another rule at runtime.
func (f *Fault) Add(r Rule) {
	f.mu.Lock()
	f.rules = append(f.rules, r)
	f.mu.Unlock()
}

// Calls reports how many times op has been invoked through the wrapper.
func (f *Fault) Calls(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// before counts the call and applies the first matching rule. It returns a
// non-nil error when the operation must fail before reaching the store.
func (f *Fault) before(op Op) error {
	f.mu.Lock()
	f.counts[op]++
	n := f.counts[op]
	var hit *Rule
	for i := range f.rules {
		r := &f.rules[i]
		if r.Op == op && (r.N == 0 || r.N == n) {
			hit = r
			break
		}
	}
	f.mu.Unlock()
	if hit == nil {
		return nil
	}
	if hit.Stall > 0 {
		time.Sleep(hit.Stall)
	}
	if hit.Torn {
		if ab, ok := f.inner.(AppendBreaker); ok {
			ab.BreakNextAppend()
		}
	}
	return hit.Err
}

func (f *Fault) Submit(j Job, shards []Shard) error {
	if err := f.before(OpSubmit); err != nil {
		return err
	}
	return f.inner.Submit(j, shards)
}

func (f *Fault) Claim(now time.Time, worker string, lease time.Duration) (Shard, bool, error) {
	if err := f.before(OpClaim); err != nil {
		return Shard{}, false, err
	}
	return f.inner.Claim(now, worker, lease)
}

func (f *Fault) Heartbeat(now time.Time, jobID string, index int, worker string, lease time.Duration) error {
	if err := f.before(OpHeartbeat); err != nil {
		return err
	}
	return f.inner.Heartbeat(now, jobID, index, worker, lease)
}

func (f *Fault) CompleteShard(now time.Time, jobID string, index int, worker string, result []byte) (int, error) {
	if err := f.before(OpComplete); err != nil {
		return 0, err
	}
	return f.inner.CompleteShard(now, jobID, index, worker, result)
}

func (f *Fault) ReleaseShard(now time.Time, jobID string, index int, worker string, notBefore time.Time) error {
	if err := f.before(OpRelease); err != nil {
		return err
	}
	return f.inner.ReleaseShard(now, jobID, index, worker, notBefore)
}

func (f *Fault) ExpireLeases(now time.Time, backoff func(attempts int) time.Duration) ([]Shard, error) {
	if err := f.before(OpExpire); err != nil {
		return nil, err
	}
	return f.inner.ExpireLeases(now, backoff)
}

func (f *Fault) TransitionJob(now time.Time, jobID string, state api.JobState, errMsg, code string, result []byte) error {
	if err := f.before(OpTransition); err != nil {
		return err
	}
	return f.inner.TransitionJob(now, jobID, state, errMsg, code, result)
}

func (f *Fault) Delete(jobID string) error {
	if err := f.before(OpDelete); err != nil {
		return err
	}
	return f.inner.Delete(jobID)
}

func (f *Fault) ShardResults(jobID string) ([][]byte, error) { return f.inner.ShardResults(jobID) }
func (f *Fault) Result(jobID string) ([]byte, error)         { return f.inner.Result(jobID) }
func (f *Fault) Get(jobID string) (Job, []Shard, bool, error) {
	return f.inner.Get(jobID)
}
func (f *Fault) List() ([]Job, error) { return f.inner.List() }
func (f *Fault) Name() string         { return "fault(" + f.inner.Name() + ")" }
func (f *Fault) Durable() bool        { return f.inner.Durable() }
func (f *Fault) Close() error         { return f.inner.Close() }
