// Package store is the persistence boundary of the async jobs layer: a
// Store owns the authoritative job/shard state machine — submission,
// shard claims under leases, heartbeat renewal, completion, terminal
// transitions, results — while the jobs.Manager above it owns execution.
//
// Two backends implement the interface behind one conformance suite: the
// in-memory map the manager always had (the default; nothing outlives the
// process), and a durable append-only journal of checksummed state records
// with snapshot+compaction on open (see Journal), so a restarted mbsd
// replays its log and re-queues every non-terminal sweep instead of losing
// it. A third, Fault, wraps any Store to inject failures, stalls and torn
// writes for recovery testing.
//
// The claim/heartbeat contract is lease-based so it extends to multiple
// worker processes sharing one store: a claim is exclusive until its lease
// expires; a worker that stops heartbeating (crash, hang, partition) loses
// the shard back to the queue with an incremented attempt counter, and any
// late write it tries against that shard fails with ErrLeaseLost.
package store

import (
	"errors"
	"time"

	"repro/internal/api"
)

// Span is a shard's half-open cell range [Lo, Hi) within its job's grid.
// The zero Span means the shard covers the whole job (an unsharded run).
type Span struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Whole reports whether the span denotes the entire job.
func (s Span) Whole() bool { return s.Lo == 0 && s.Hi == 0 }

// Job is the persisted identity and lifecycle position of one submission.
// Runtime-only detail (streamed cells, precise start/finish timestamps)
// stays in the manager; what the store holds is exactly what a restarted
// process needs to resume or serve the job.
type Job struct {
	ID          string            `json:"id"`
	Scenario    string            `json:"scenario"`
	Params      map[string]string `json:"params,omitempty"`
	State       api.JobState      `json:"state"`
	Error       string            `json:"error,omitempty"`
	Code        string            `json:"code,omitempty"`
	Shards      int               `json:"shards"`
	SubmittedAt time.Time         `json:"submitted_at"`
}

// ShardState is a shard's position in the claim cycle.
type ShardState string

const (
	// ShardPending means the shard is claimable (possibly gated by NotBefore).
	ShardPending ShardState = "pending"
	// ShardClaimed means a worker holds the shard under a live lease.
	ShardClaimed ShardState = "claimed"
	// ShardDone means the shard's result is recorded.
	ShardDone ShardState = "done"
)

// Shard is one claimable unit of a job: a cell range plus its lease state.
type Shard struct {
	JobID string     `json:"job_id"`
	Index int        `json:"index"`
	Span  Span       `json:"span"`
	State ShardState `json:"state"`
	// Attempts counts claims ever granted on this shard, including the
	// current one — it only grows, so backoff and give-up policies key off it.
	Attempts int `json:"attempts,omitempty"`
	// Worker and LeaseUntil identify the current claim while State == claimed.
	Worker     string    `json:"worker,omitempty"`
	LeaseUntil time.Time `json:"lease_until,omitzero"`
	// NotBefore gates re-claiming after a requeue (the backoff clock).
	NotBefore time.Time `json:"not_before,omitzero"`
}

// Sentinel errors. Backends wrap these with context; callers test with
// errors.Is.
var (
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("store: job not found")
	// ErrExists reports a duplicate submission id.
	ErrExists = errors.New("store: job already exists")
	// ErrLeaseLost reports a shard write by a worker that no longer holds
	// the claim — the lease expired and the shard was requeued (possibly
	// already re-claimed), or it was never claimed by that worker.
	ErrLeaseLost = errors.New("store: lease not held")
	// ErrTerminal reports a write against a job already in a terminal state.
	ErrTerminal = errors.New("store: job is terminal")
	// ErrNotTerminal reports a Delete of a job still live.
	ErrNotTerminal = errors.New("store: job not terminal")
)

// Store is the persistence contract the job manager runs on. All methods
// are safe for concurrent use. Time flows in as an argument (never read
// from the clock inside) so backends replay deterministically and tests
// control lease expiry exactly.
type Store interface {
	// Submit records a new job and its shards (all pending). The job's
	// State must be queued and shards must match j.Shards.
	Submit(j Job, shards []Shard) error

	// Claim leases the oldest eligible pending shard to worker until
	// now.Add(lease): jobs in submission order, shards in index order,
	// skipping terminal jobs and shards gated by NotBefore > now. The
	// returned Shard has Attempts already incremented for this claim.
	// ok is false when nothing is claimable.
	Claim(now time.Time, worker string, lease time.Duration) (sh Shard, ok bool, err error)

	// Heartbeat extends worker's lease on a claimed shard to now.Add(lease).
	// ErrLeaseLost if the shard is not currently claimed by worker.
	Heartbeat(now time.Time, jobID string, index int, worker string, lease time.Duration) error

	// CompleteShard records a claimed shard's partial result and returns how
	// many of the job's shards are still not done. ErrLeaseLost if worker no
	// longer holds the claim (its result is discarded — the re-claimed shard
	// will produce it again).
	CompleteShard(now time.Time, jobID string, index int, worker string, result []byte) (remaining int, err error)

	// ReleaseShard returns a claimed shard to pending, claimable from
	// notBefore. worker must hold the claim; the empty worker forces the
	// release regardless of holder (recovery and shutdown use this).
	ReleaseShard(now time.Time, jobID string, index int, worker string, notBefore time.Time) error

	// ExpireLeases requeues every claimed shard of a live job whose lease
	// expired at or before now, gating each behind backoff(attempts).
	// It returns the requeued shards as they now stand (pending, NotBefore
	// set, Attempts unchanged — attempts count claims, not expiries).
	ExpireLeases(now time.Time, backoff func(attempts int) time.Duration) ([]Shard, error)

	// TransitionJob moves a job to state, recording the error fields and —
	// for done — the final assembled result. Terminal jobs are immutable:
	// ErrTerminal.
	TransitionJob(now time.Time, jobID string, state api.JobState, errMsg, code string, result []byte) error

	// ShardResults returns a done-or-live job's recorded shard results,
	// indexed by shard (nil entries for shards not done).
	ShardResults(jobID string) ([][]byte, error)

	// Result returns the final assembled result of a done job (nil if none
	// recorded yet).
	Result(jobID string) ([]byte, error)

	// Get returns one job and its shards.
	Get(jobID string) (Job, []Shard, bool, error)

	// List returns every job in submission order.
	List() ([]Job, error)

	// Delete removes a terminal job, its shards and results (retention
	// eviction). ErrNotTerminal for live jobs.
	Delete(jobID string) error

	// Name identifies the backend ("memory", "journal", ...) for stats.
	Name() string

	// Durable reports whether state survives process restart. The manager
	// branches shutdown semantics on it: durable stores requeue live work
	// for the next boot, volatile stores cancel it.
	Durable() bool

	// Close releases backend resources. A durable store must leave its
	// files replayable.
	Close() error
}
