package store

import (
	"fmt"
	"time"

	"repro/internal/api"
)

// record is one durable state mutation. Every write — live or replayed —
// flows through state.apply as one of these, so the journal backend and the
// in-memory backend share a single state machine and a journal replay
// reconstructs exactly the state the live process had. Records carry the
// *decision* (which worker, which lease deadline, which backoff gate), never
// an input to re-decide, so replay needs no clock and no policy.
type record struct {
	Op string `json:"op"` // submit | claim | beat | shard | job | delete

	// submit
	Job    *Job    `json:"j,omitempty"`
	Shards []Shard `json:"sh,omitempty"`

	// claim / beat / shard / job / delete target
	ID    string `json:"id,omitempty"`
	Index int    `json:"i,omitempty"`

	// claim / beat / shard
	Worker    string    `json:"w,omitempty"`
	Until     time.Time `json:"u,omitzero"`  // lease deadline
	NotBefore time.Time `json:"nb,omitzero"` // requeue backoff gate
	Shard     string    `json:"s,omitempty"` // target ShardState for op=shard
	Result    []byte    `json:"r,omitempty"` // shard partial / job final result

	// job transition
	State string `json:"st,omitempty"`
	Error string `json:"e,omitempty"`
	Code  string `json:"c,omitempty"`
}

// state is the in-memory job table both backends share. It is not
// concurrency-safe; the owning backend serializes access.
type state struct {
	jobs   map[string]*Job
	shards map[string][]*Shard // by job id, dense by shard index
	parts  map[string][][]byte // per-shard results, dense by shard index
	final  map[string][]byte   // assembled result of done jobs
	order  []string            // submission order
}

func newState() *state {
	return &state{
		jobs:   make(map[string]*Job),
		shards: make(map[string][]*Shard),
		parts:  make(map[string][][]byte),
		final:  make(map[string][]byte),
	}
}

// apply mutates the state by rec. It is the single write path: live
// operations validate, build a record, persist it (journal backend), then
// apply; replay applies the same records in order. Unknown or inconsistent
// records are ignored rather than fatal — a journal from a newer version
// must degrade, not brick the store.
func (s *state) apply(r record) {
	switch r.Op {
	case "submit":
		if r.Job == nil {
			return
		}
		j := *r.Job
		s.jobs[j.ID] = &j
		shs := make([]*Shard, len(r.Shards))
		for i := range r.Shards {
			sh := r.Shards[i]
			shs[i] = &sh
		}
		s.shards[j.ID] = shs
		s.parts[j.ID] = make([][]byte, len(shs))
		s.order = append(s.order, j.ID)
	case "claim":
		if sh := s.shard(r.ID, r.Index); sh != nil {
			sh.State = ShardClaimed
			sh.Worker = r.Worker
			sh.LeaseUntil = r.Until
			sh.Attempts++
		}
	case "beat":
		if sh := s.shard(r.ID, r.Index); sh != nil {
			sh.LeaseUntil = r.Until
		}
	case "shard":
		sh := s.shard(r.ID, r.Index)
		if sh == nil {
			return
		}
		switch ShardState(r.Shard) {
		case ShardDone:
			sh.State = ShardDone
			sh.Worker = ""
			sh.LeaseUntil = time.Time{}
			sh.NotBefore = time.Time{}
			if parts := s.parts[r.ID]; r.Index < len(parts) {
				parts[r.Index] = r.Result
			}
		case ShardPending:
			sh.State = ShardPending
			sh.Worker = ""
			sh.LeaseUntil = time.Time{}
			sh.NotBefore = r.NotBefore
		}
	case "job":
		j, ok := s.jobs[r.ID]
		if !ok {
			return
		}
		j.State = api.JobState(r.State)
		j.Error = r.Error
		j.Code = r.Code
		if j.State == api.JobDone && r.Result != nil {
			s.final[r.ID] = r.Result
		}
	case "delete":
		delete(s.jobs, r.ID)
		delete(s.shards, r.ID)
		delete(s.parts, r.ID)
		delete(s.final, r.ID)
		for i, id := range s.order {
			if id == r.ID {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

func (s *state) shard(jobID string, index int) *Shard {
	shs := s.shards[jobID]
	if index < 0 || index >= len(shs) {
		return nil
	}
	return shs[index]
}

// The op methods below validate a request against the current state and, on
// success, return the record that effects it. The caller persists (journal)
// and then applies. None of them mutate state themselves.

func (s *state) submit(j Job, shards []Shard) (record, error) {
	if _, ok := s.jobs[j.ID]; ok {
		return record{}, fmt.Errorf("%w: %s", ErrExists, j.ID)
	}
	if j.State == "" {
		j.State = api.JobQueued
	}
	if len(shards) == 0 {
		return record{}, fmt.Errorf("store: submit %s: no shards", j.ID)
	}
	j.Shards = len(shards)
	for i := range shards {
		shards[i].JobID = j.ID
		shards[i].Index = i
		if shards[i].State == "" {
			shards[i].State = ShardPending
		}
	}
	return record{Op: "submit", Job: &j, Shards: shards}, nil
}

// claim picks the oldest eligible pending shard: jobs in submission order,
// shards in index order, skipping terminal jobs and backoff-gated shards.
func (s *state) claim(now time.Time, worker string, lease time.Duration) (record, bool) {
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil || j.State.Terminal() {
			continue
		}
		for _, sh := range s.shards[id] {
			if sh.State != ShardPending || now.Before(sh.NotBefore) {
				continue
			}
			return record{Op: "claim", ID: id, Index: sh.Index, Worker: worker,
				Until: now.Add(lease)}, true
		}
	}
	return record{}, false
}

// held validates that worker currently holds the claim on (jobID, index).
func (s *state) held(jobID string, index int, worker string) (*Shard, error) {
	if _, ok := s.jobs[jobID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, jobID)
	}
	sh := s.shard(jobID, index)
	if sh == nil {
		return nil, fmt.Errorf("%w: %s shard %d", ErrNotFound, jobID, index)
	}
	if sh.State != ShardClaimed || (worker != "" && sh.Worker != worker) {
		return nil, fmt.Errorf("%w: %s shard %d (state %s, held by %q)",
			ErrLeaseLost, jobID, index, sh.State, sh.Worker)
	}
	return sh, nil
}

func (s *state) heartbeat(now time.Time, jobID string, index int, worker string, lease time.Duration) (record, error) {
	if _, err := s.held(jobID, index, worker); err != nil {
		return record{}, err
	}
	return record{Op: "beat", ID: jobID, Index: index, Worker: worker,
		Until: now.Add(lease)}, nil
}

func (s *state) completeShard(jobID string, index int, worker string, result []byte) (record, error) {
	if _, err := s.held(jobID, index, worker); err != nil {
		return record{}, err
	}
	return record{Op: "shard", Shard: string(ShardDone), ID: jobID,
		Index: index, Worker: worker, Result: result}, nil
}

// remaining counts shards not yet done; call after applying a completion.
func (s *state) remaining(jobID string) int {
	n := 0
	for _, sh := range s.shards[jobID] {
		if sh.State != ShardDone {
			n++
		}
	}
	return n
}

func (s *state) releaseShard(jobID string, index int, worker string, notBefore time.Time) (record, error) {
	if _, err := s.held(jobID, index, worker); err != nil {
		return record{}, err
	}
	return record{Op: "shard", Shard: string(ShardPending), ID: jobID,
		Index: index, NotBefore: notBefore}, nil
}

// expired collects the claimed shards of live jobs whose lease has run out.
func (s *state) expired(now time.Time) []*Shard {
	var out []*Shard
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil || j.State.Terminal() {
			continue
		}
		for _, sh := range s.shards[id] {
			if sh.State == ShardClaimed && !now.Before(sh.LeaseUntil) {
				out = append(out, sh)
			}
		}
	}
	return out
}

func (s *state) transitionJob(jobID string, st api.JobState, errMsg, code string, result []byte) (record, error) {
	j, ok := s.jobs[jobID]
	if !ok {
		return record{}, fmt.Errorf("%w: %s", ErrNotFound, jobID)
	}
	if j.State.Terminal() {
		return record{}, fmt.Errorf("%w: %s is %s", ErrTerminal, jobID, j.State)
	}
	return record{Op: "job", ID: jobID, State: string(st), Error: errMsg,
		Code: code, Result: result}, nil
}

func (s *state) deleteJob(jobID string) (record, error) {
	j, ok := s.jobs[jobID]
	if !ok {
		return record{}, fmt.Errorf("%w: %s", ErrNotFound, jobID)
	}
	if !j.State.Terminal() {
		return record{}, fmt.Errorf("%w: %s is %s", ErrNotTerminal, jobID, j.State)
	}
	return record{Op: "delete", ID: jobID}, nil
}

// Read-side snapshots (copies — callers never see interior pointers).

func (s *state) get(jobID string) (Job, []Shard, bool) {
	j, ok := s.jobs[jobID]
	if !ok {
		return Job{}, nil, false
	}
	shs := make([]Shard, len(s.shards[jobID]))
	for i, sh := range s.shards[jobID] {
		shs[i] = *sh
	}
	return *j, shs, true
}

func (s *state) list() []Job {
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, *j)
		}
	}
	return out
}

func (s *state) shardResults(jobID string) ([][]byte, error) {
	parts, ok := s.parts[jobID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, jobID)
	}
	out := make([][]byte, len(parts))
	copy(out, parts)
	return out, nil
}

func (s *state) result(jobID string) ([]byte, error) {
	if _, ok := s.jobs[jobID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, jobID)
	}
	return s.final[jobID], nil
}
