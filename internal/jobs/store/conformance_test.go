package store

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/api"
)

// backends enumerates every Store implementation under test. "journal" runs
// each case against a fresh directory; "journal-reopened" additionally
// closes and reopens the store between the mutation phase and the assertion
// phase of cases that opt in via reopen() — proving the log round-trips.
func backends(t *testing.T) map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"memory": func(t *testing.T) Store { return NewMemory() },
		"journal": func(t *testing.T) Store {
			j, err := OpenJournal(t.TempDir())
			if err != nil {
				t.Fatalf("open journal: %v", err)
			}
			t.Cleanup(func() { j.Close() })
			return j
		},
	}
}

// forEachBackend runs fn once per backend.
func forEachBackend(t *testing.T, fn func(t *testing.T, s Store)) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) { fn(t, mk(t)) })
	}
}

func mkJob(id string, shards int) (Job, []Shard) {
	j := Job{
		ID:          id,
		Scenario:    "sweep",
		Params:      map[string]string{"axes": "buffer"},
		State:       api.JobQueued,
		SubmittedAt: time.Unix(1700000000, 0).UTC(),
	}
	shs := make([]Shard, shards)
	for i := range shs {
		shs[i] = Shard{Span: Span{Lo: i * 4, Hi: (i + 1) * 4}}
	}
	return j, shs
}

func TestStoreSubmitGetList(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Store) {
		for i := 1; i <= 3; i++ {
			j, shs := mkJob(fmt.Sprintf("job-%d", i), 2)
			if err := s.Submit(j, shs); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
		j, shs, ok, err := s.Get("job-2")
		if err != nil || !ok {
			t.Fatalf("get: ok=%v err=%v", ok, err)
		}
		if j.Scenario != "sweep" || j.State != api.JobQueued || j.Shards != 2 {
			t.Fatalf("job round-trip mismatch: %+v", j)
		}
		if j.Params["axes"] != "buffer" {
			t.Fatalf("params lost: %+v", j.Params)
		}
		if len(shs) != 2 || shs[1].Span != (Span{Lo: 4, Hi: 8}) || shs[1].State != ShardPending {
			t.Fatalf("shards round-trip mismatch: %+v", shs)
		}
		if shs[1].JobID != "job-2" || shs[1].Index != 1 {
			t.Fatalf("shard identity not normalized: %+v", shs[1])
		}
		list, err := s.List()
		if err != nil {
			t.Fatalf("list: %v", err)
		}
		if len(list) != 3 || list[0].ID != "job-1" || list[2].ID != "job-3" {
			t.Fatalf("list order wrong: %+v", list)
		}
		dup, dupShs := mkJob("job-2", 1)
		if err := s.Submit(dup, dupShs); !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate submit: got %v, want ErrExists", err)
		}
	})
}

func TestStoreClaimOrderAndLease(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Store) {
		now := time.Unix(1700000000, 0).UTC()
		j1, shs1 := mkJob("job-1", 2)
		j2, shs2 := mkJob("job-2", 1)
		must(t, s.Submit(j1, shs1))
		must(t, s.Submit(j2, shs2))

		// Claims drain job-1's shards in index order before touching job-2.
		want := []struct {
			id  string
			idx int
		}{{"job-1", 0}, {"job-1", 1}, {"job-2", 0}}
		for i, w := range want {
			sh, ok, err := s.Claim(now, "w1", time.Minute)
			if err != nil || !ok {
				t.Fatalf("claim %d: ok=%v err=%v", i, ok, err)
			}
			if sh.JobID != w.id || sh.Index != w.idx {
				t.Fatalf("claim %d: got %s/%d, want %s/%d", i, sh.JobID, sh.Index, w.id, w.idx)
			}
			if sh.Attempts != 1 || sh.Worker != "w1" || !sh.LeaseUntil.Equal(now.Add(time.Minute)) {
				t.Fatalf("claim %d lease fields: %+v", i, sh)
			}
		}
		if _, ok, err := s.Claim(now, "w1", time.Minute); ok || err != nil {
			t.Fatalf("claim on empty queue: ok=%v err=%v", ok, err)
		}
	})
}

func TestStoreClaimSkipsTerminalAndGated(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Store) {
		now := time.Unix(1700000000, 0).UTC()
		j1, shs1 := mkJob("job-1", 1)
		j2, shs2 := mkJob("job-2", 1)
		must(t, s.Submit(j1, shs1))
		must(t, s.Submit(j2, shs2))
		must(t, s.TransitionJob(now, "job-1", api.JobCancelled, "cancelled", "cancelled", nil))

		sh, ok, err := s.Claim(now, "w1", time.Minute)
		if err != nil || !ok || sh.JobID != "job-2" {
			t.Fatalf("claim skipped terminal wrong: %+v ok=%v err=%v", sh, ok, err)
		}
		// Release with a future gate; the shard is invisible until then.
		must(t, s.ReleaseShard(now, "job-2", 0, "w1", now.Add(10*time.Second)))
		if _, ok, _ := s.Claim(now.Add(5*time.Second), "w1", time.Minute); ok {
			t.Fatal("claimed a backoff-gated shard")
		}
		sh, ok, err = s.Claim(now.Add(10*time.Second), "w2", time.Minute)
		if err != nil || !ok || sh.Attempts != 2 || sh.Worker != "w2" {
			t.Fatalf("re-claim after gate: %+v ok=%v err=%v", sh, ok, err)
		}
	})
}

func TestStoreHeartbeatContract(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Store) {
		now := time.Unix(1700000000, 0).UTC()
		j1, shs1 := mkJob("job-1", 1)
		must(t, s.Submit(j1, shs1))
		if err := s.Heartbeat(now, "job-1", 0, "w1", time.Minute); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("heartbeat unclaimed: got %v, want ErrLeaseLost", err)
		}
		if _, ok, err := s.Claim(now, "w1", time.Minute); !ok || err != nil {
			t.Fatalf("claim: ok=%v err=%v", ok, err)
		}
		if _, ok, _ := s.Claim(now, "w1", time.Minute); ok {
			t.Fatal("double claim of a single shard")
		}
		if err := s.Heartbeat(now, "job-1", 0, "w2", time.Minute); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("heartbeat wrong worker: got %v, want ErrLeaseLost", err)
		}
		// A renewed lease survives an expiry sweep the original would not.
		must(t, s.Heartbeat(now.Add(50*time.Second), "job-1", 0, "w1", time.Minute))
		requeued, err := s.ExpireLeases(now.Add(70*time.Second), nil)
		if err != nil || len(requeued) != 0 {
			t.Fatalf("expiry after renewal: requeued=%v err=%v", requeued, err)
		}
		requeued, err = s.ExpireLeases(now.Add(2*time.Hour), nil)
		if err != nil || len(requeued) != 1 {
			t.Fatalf("expiry after lapse: requeued=%v err=%v", requeued, err)
		}
		if err := s.Heartbeat(now, "job-1", 0, "w1", time.Minute); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("heartbeat after expiry: got %v, want ErrLeaseLost", err)
		}
	})
}

func TestStoreExpireLeasesBackoff(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Store) {
		now := time.Unix(1700000000, 0).UTC()
		j1, shs1 := mkJob("job-1", 1)
		must(t, s.Submit(j1, shs1))
		if _, ok, _ := s.Claim(now, "w1", time.Second); !ok {
			t.Fatal("claim failed")
		}
		backoff := func(attempts int) time.Duration { return time.Duration(attempts) * 10 * time.Second }
		requeued, err := s.ExpireLeases(now.Add(2*time.Second), backoff)
		if err != nil || len(requeued) != 1 {
			t.Fatalf("expire: %v %v", requeued, err)
		}
		if requeued[0].State != ShardPending || requeued[0].Attempts != 1 {
			t.Fatalf("requeued shard state: %+v", requeued[0])
		}
		wantGate := now.Add(2 * time.Second).Add(10 * time.Second)
		if !requeued[0].NotBefore.Equal(wantGate) {
			t.Fatalf("backoff gate: got %v, want %v", requeued[0].NotBefore, wantGate)
		}
		// Terminal jobs' claimed shards are never requeued. Claim while
		// job-1 is still backoff-gated so the claim lands on job-2.
		j2, shs2 := mkJob("job-2", 1)
		must(t, s.Submit(j2, shs2))
		preGate := now.Add(3 * time.Second)
		if sh, ok, _ := s.Claim(preGate, "w1", time.Second); !ok || sh.JobID != "job-2" {
			t.Fatalf("claim 2: ok=%v sh=%+v", ok, sh)
		}
		must(t, s.TransitionJob(preGate, "job-2", api.JobFailed, "x", "run_failed", nil))
		requeued, err = s.ExpireLeases(wantGate.Add(time.Hour), nil)
		// job-1's shard is claimable again but unclaimed (pending), so only
		// nothing should be requeued: job-2 is terminal.
		if err != nil || len(requeued) != 0 {
			t.Fatalf("expire over terminal job: %v %v", requeued, err)
		}
	})
}

func TestStoreCompleteShardsAndResult(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Store) {
		now := time.Unix(1700000000, 0).UTC()
		j1, shs1 := mkJob("job-1", 2)
		must(t, s.Submit(j1, shs1))
		a, _, _ := s.Claim(now, "w1", time.Minute)
		b, _, _ := s.Claim(now, "w2", time.Minute)

		if _, err := s.CompleteShard(now, a.JobID, a.Index, "w2", []byte("x")); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("complete by wrong worker: got %v, want ErrLeaseLost", err)
		}
		rem, err := s.CompleteShard(now, a.JobID, a.Index, "w1", []byte(`["a"]`))
		if err != nil || rem != 1 {
			t.Fatalf("complete a: rem=%d err=%v", rem, err)
		}
		rem, err = s.CompleteShard(now, b.JobID, b.Index, "w2", []byte(`["b"]`))
		if err != nil || rem != 0 {
			t.Fatalf("complete b: rem=%d err=%v", rem, err)
		}
		parts, err := s.ShardResults("job-1")
		if err != nil || len(parts) != 2 || string(parts[0]) != `["a"]` || string(parts[1]) != `["b"]` {
			t.Fatalf("shard results: %q err=%v", parts, err)
		}
		must(t, s.TransitionJob(now, "job-1", api.JobDone, "", "", []byte(`{"sweep":[]}`)))
		res, err := s.Result("job-1")
		if err != nil || string(res) != `{"sweep":[]}` {
			t.Fatalf("result: %q err=%v", res, err)
		}
		j, shs, _, _ := s.Get("job-1")
		if j.State != api.JobDone || shs[0].State != ShardDone || shs[0].Worker != "" {
			t.Fatalf("post-done state: %+v %+v", j, shs)
		}
	})
}

func TestStoreTransitionTerminalImmutable(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Store) {
		now := time.Unix(1700000000, 0).UTC()
		j1, shs1 := mkJob("job-1", 1)
		must(t, s.Submit(j1, shs1))
		must(t, s.TransitionJob(now, "job-1", api.JobCancelled, "cancelled", "cancelled", nil))
		err := s.TransitionJob(now, "job-1", api.JobDone, "", "", []byte("x"))
		if !errors.Is(err, ErrTerminal) {
			t.Fatalf("transition of terminal job: got %v, want ErrTerminal", err)
		}
		if err := s.TransitionJob(now, "nope", api.JobDone, "", "", nil); !errors.Is(err, ErrNotFound) {
			t.Fatalf("transition of unknown job: got %v, want ErrNotFound", err)
		}
	})
}

func TestStoreDelete(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Store) {
		now := time.Unix(1700000000, 0).UTC()
		j1, shs1 := mkJob("job-1", 1)
		must(t, s.Submit(j1, shs1))
		if err := s.Delete("job-1"); !errors.Is(err, ErrNotTerminal) {
			t.Fatalf("delete live job: got %v, want ErrNotTerminal", err)
		}
		must(t, s.TransitionJob(now, "job-1", api.JobDone, "", "", []byte("r")))
		must(t, s.Delete("job-1"))
		if _, _, ok, _ := s.Get("job-1"); ok {
			t.Fatal("job still present after delete")
		}
		list, _ := s.List()
		if len(list) != 0 {
			t.Fatalf("list after delete: %+v", list)
		}
		if err := s.Delete("job-1"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete: got %v, want ErrNotFound", err)
		}
	})
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
