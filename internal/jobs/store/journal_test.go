package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
)

// reopen closes j and opens the same directory again, failing the test on
// either error — the crash-recovery primitive of this file.
func reopen(t *testing.T, j *Journal) *Journal {
	t.Helper()
	dir := j.dir
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { j2.Close() })
	return j2
}

func TestJournalReopenRoundTrip(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0).UTC()

	// One job in every interesting position: done with a final result,
	// mid-flight with one shard done and one claimed, queued untouched.
	jd, sd := mkJob("job-1", 1)
	must(t, j.Submit(jd, sd))
	if _, ok, _ := j.Claim(now, "w1", time.Minute); !ok {
		t.Fatal("claim")
	}
	if _, err := j.CompleteShard(now, "job-1", 0, "w1", []byte(`["p1"]`)); err != nil {
		t.Fatal(err)
	}
	must(t, j.TransitionJob(now, "job-1", api.JobDone, "", "", []byte(`{"done":1}`)))

	jm, sm := mkJob("job-2", 2)
	must(t, j.Submit(jm, sm))
	if _, ok, _ := j.Claim(now, "w1", time.Minute); !ok {
		t.Fatal("claim 2")
	}
	if _, err := j.CompleteShard(now, "job-2", 0, "w1", []byte(`["p2"]`)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := j.Claim(now, "w2", time.Minute); !ok {
		t.Fatal("claim 3")
	}
	must(t, j.TransitionJob(now, "job-2", api.JobRunning, "", "", nil))

	jq, sq := mkJob("job-3", 1)
	must(t, j.Submit(jq, sq))

	j2 := reopen(t, j)
	list, _ := j2.List()
	if len(list) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(list), list)
	}
	res, err := j2.Result("job-1")
	if err != nil || string(res) != `{"done":1}` {
		t.Fatalf("final result: %q err=%v", res, err)
	}
	jb, shs, ok, _ := j2.Get("job-2")
	if !ok || jb.State != api.JobRunning {
		t.Fatalf("job-2 state: %+v", jb)
	}
	if shs[0].State != ShardDone || shs[1].State != ShardClaimed || shs[1].Worker != "w2" || shs[1].Attempts != 1 {
		t.Fatalf("job-2 shards: %+v", shs)
	}
	parts, _ := j2.ShardResults("job-2")
	if string(parts[0]) != `["p2"]` || parts[1] != nil {
		t.Fatalf("job-2 parts: %q", parts)
	}
	if jb, _, _, _ := j2.Get("job-3"); jb.State != api.JobQueued {
		t.Fatalf("job-3 state: %+v", jb)
	}

	// A second reopen (snapshot-only path: the log was compacted away)
	// must recover identically.
	j3 := reopen(t, j2)
	jb, shs, _, _ = j3.Get("job-2")
	if jb.State != api.JobRunning || shs[1].State != ShardClaimed {
		t.Fatalf("second reopen drifted: %+v %+v", jb, shs)
	}
}

func TestJournalCompactionOnOpen(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	jb, shs := mkJob("job-1", 1)
	must(t, j.Submit(jb, shs))
	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil || fi.Size() == 0 {
		t.Fatalf("journal should hold the submit record: %v size=%d", err, fi.Size())
	}
	j2 := reopen(t, j)
	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil || fi.Size() != 0 {
		t.Fatalf("open must compact the log away: err=%v size=%d", err, fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}
	if _, _, ok, _ := j2.Get("job-1"); !ok {
		t.Fatal("job lost in compaction")
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1, s1 := mkJob("job-1", 1)
	must(t, j.Submit(j1, s1))
	j2, s2 := mkJob("job-2", 1)
	must(t, j.Submit(j2, s2))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a dangling half-frame after the good
	// records.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'h', 'a', 'l', 'f'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jr, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer jr.Close()
	list, _ := jr.List()
	if len(list) != 2 {
		t.Fatalf("recovered %d jobs, want 2 (torn tail dropped)", len(list))
	}
}

func TestJournalChecksumCorruptionDropsTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1, s1 := mkJob("job-1", 1)
	must(t, j.Submit(j1, s1))
	off, _ := j.f.Seek(0, os.SEEK_CUR) // end of record 1
	j2, s2 := mkJob("job-2", 1)
	must(t, j.Submit(j2, s2))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record; its CRC must reject it.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off+headerSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jr, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("open over corrupt record: %v", err)
	}
	defer jr.Close()
	list, _ := jr.List()
	if len(list) != 1 || list[0].ID != "job-1" {
		t.Fatalf("recovered %+v, want only job-1", list)
	}
}

func TestJournalBreakNextAppendLeavesStoreConsistent(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1, s1 := mkJob("job-1", 1)
	must(t, j.Submit(j1, s1))
	j.BreakNextAppend()
	j2, s2 := mkJob("job-2", 1)
	if err := j.Submit(j2, s2); err == nil {
		t.Fatal("submit over torn append should fail")
	}
	// The failed op must not have mutated memory...
	if list, _ := j.List(); len(list) != 1 {
		t.Fatalf("torn submit leaked into state: %+v", list)
	}
	// ...and the tear was rolled back to a clean frame boundary, so the
	// store keeps working and later records stay recoverable.
	j3, s3 := mkJob("job-3", 1)
	must(t, j.Submit(j3, s3))
	jr := reopen(t, j)
	list, _ := jr.List()
	if len(list) != 2 || list[0].ID != "job-1" || list[1].ID != "job-3" {
		t.Fatalf("recovered %+v, want job-1 and job-3", list)
	}
}

func TestJournalFaultWrapperRules(t *testing.T) {
	inner, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })
	injected := errors.New("injected")
	f := NewFault(inner,
		Rule{Op: OpSubmit, N: 2, Err: injected},
		Rule{Op: OpClaim, N: 1, Stall: 10 * time.Millisecond},
	)
	now := time.Unix(1700000000, 0).UTC()
	j1, s1 := mkJob("job-1", 1)
	must(t, f.Submit(j1, s1))
	j2, s2 := mkJob("job-2", 1)
	if err := f.Submit(j2, s2); !errors.Is(err, injected) {
		t.Fatalf("second submit: got %v, want injected", err)
	}
	j3, s3 := mkJob("job-3", 1)
	must(t, f.Submit(j3, s3)) // N=2 rule fires once
	start := time.Now()
	if _, ok, err := f.Claim(now, "w1", time.Minute); !ok || err != nil {
		t.Fatalf("claim through stall: ok=%v err=%v", ok, err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("stall rule did not stall: %v", d)
	}
	if f.Calls(OpSubmit) != 3 || f.Calls(OpClaim) != 1 {
		t.Fatalf("op counts: submit=%d claim=%d", f.Calls(OpSubmit), f.Calls(OpClaim))
	}

	// A Torn rule tears the journal frame through the AppendBreaker hook:
	// the op fails, memory stays consistent.
	f.Add(Rule{Op: OpTransition, N: 1, Torn: true})
	if err := f.TransitionJob(now, "job-1", api.JobDone, "", "", []byte("r")); err == nil {
		t.Fatal("torn transition should fail")
	}
	if jb, _, _, _ := f.Get("job-1"); jb.State.Terminal() {
		t.Fatalf("torn transition mutated state: %+v", jb)
	}
}
