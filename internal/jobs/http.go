package jobs

import (
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/api"
)

// Routes registers the v2 job endpoints on mux:
//
//	POST   /v2/jobs              submit a run; 202 with the job status
//	GET    /v2/jobs              list retained jobs (no results)
//	GET    /v2/jobs/{id}         job status; includes the result when done
//	DELETE /v2/jobs/{id}         cancel; idempotent on terminal jobs
//	GET    /v2/jobs/{id}/result  the raw result bytes of a done job —
//	                             byte-identical to POST /v1/run (the status
//	                             body re-indents the embedded copy)
//	GET    /v2/jobs/{id}/stream  NDJSON: status, then cells as they
//	                             complete, then a done event
func (m *Manager) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v2/jobs", m.handleSubmit)
	mux.HandleFunc("GET /v2/jobs", m.handleList)
	mux.HandleFunc("GET /v2/jobs/{id}", m.handleGet)
	mux.HandleFunc("DELETE /v2/jobs/{id}", m.handleCancel)
	mux.HandleFunc("GET /v2/jobs/{id}/result", m.handleResult)
	mux.HandleFunc("GET /v2/jobs/{id}/stream", m.handleStream)
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		api.Write(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "",
			"bad request body: %s", err))
		return
	}
	st, err := m.Submit(req)
	if err != nil {
		api.Write(w, api.From(err, req.Scenario))
		return
	}
	api.WriteJSON(w, http.StatusAccepted, st)
}

func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	api.WriteJSON(w, http.StatusOK, m.List())
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Get(r.PathValue("id"))
	if !ok {
		api.Write(w, unknownJob(r.PathValue("id")))
		return
	}
	api.WriteJSON(w, http.StatusOK, st)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Cancel(r.PathValue("id"))
	if !ok {
		api.Write(w, unknownJob(r.PathValue("id")))
		return
	}
	api.WriteJSON(w, http.StatusOK, st)
}

// handleResult serves a done job's rendered result verbatim — the exact
// bytes the synchronous /v1/run path would have returned, unmangled by the
// status body's re-indentation of the embedded copy.
func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Get(r.PathValue("id"))
	if !ok {
		api.Write(w, unknownJob(r.PathValue("id")))
		return
	}
	if st.State != api.JobDone {
		api.Write(w, api.Errorf(http.StatusNotFound, api.CodeNoResult, st.Scenario,
			"job %s is %s; a result exists only once it is done", st.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(st.Result)
}

// handleStream replays the job's cell events from the beginning and then
// follows live until the job is terminal or the client disconnects. Events
// are NDJSON: compact JSON, one event per line, flushed per batch so a
// client observes cells while the sweep is still running.
func (m *Manager) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := m.lookup(r.PathValue("id"))
	if !ok {
		api.Write(w, unknownJob(r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		api.Write(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "",
			"response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	events, st, update := j.snapshotFrom(0)
	_ = enc.Encode(api.Event{Type: "status", Job: &st})
	sent := 0
	for {
		for _, ev := range events {
			_ = enc.Encode(ev)
		}
		sent += len(events)
		if st.State.Terminal() {
			_ = enc.Encode(api.Event{Type: "done", Job: &st})
			fl.Flush()
			return
		}
		fl.Flush()
		select {
		case <-update:
		case <-r.Context().Done():
			return
		}
		events, st, update = j.snapshotFrom(sent)
	}
}

func unknownJob(id string) *api.Error {
	return api.Errorf(http.StatusNotFound, api.CodeUnknownJob, "",
		"unknown job %q", id)
}
