// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each function both returns the structured data series
// and renders the same rows the paper reports, so the cmd binaries, the
// examples and the benchmark harness all share one implementation.
//
// Every figure is expressed as a sweep over experiment cells and executed on
// a sweep.Engine: a Runner bound to a multi-worker engine evaluates the grid
// concurrently (with built networks, schedules and traffic ledgers shared
// through the engine's cache), while the package-level convenience functions
// run on a fresh single-worker engine. Result ordering — and therefore the
// rendered output — is identical for any worker count.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// DeepCNNs lists the evaluation networks in the paper's order.
var DeepCNNs = []string{"resnet50", "resnet101", "resnet152", "inceptionv3", "inceptionv4", "alexnet"}

// Runner evaluates the paper's figures and tables on a sweep engine. The
// zero value is not usable; construct with a concrete engine, e.g.
// Runner{E: sweep.New(0)} for a parallel run over all cores.
//
// Every method takes a context.Context: a cancelled context stops the
// underlying grid promptly and the method returns the context's error. The
// package-level convenience wrappers run on context.Background() and keep
// their historical one-shot semantics (panicking on the engine errors that
// static grids cannot produce).
type Runner struct {
	E *sweep.Engine
}

// seqRunner returns a fresh sequential runner, used by the package-level
// convenience wrappers to preserve their original one-shot semantics.
func seqRunner() Runner { return Runner{E: sweep.New(1)} }

// plan builds (or fetches from the engine cache) the default schedule for
// (network, config).
func (r Runner) plan(ctx context.Context, name string, cfg core.Config) (*core.Schedule, error) {
	return r.E.Plan(ctx, name, core.DefaultOptions(cfg, models.DefaultBatch(name)))
}

// must panics on err — the package-level wrappers' historical behaviour for
// the fixed paper grids, whose cells cannot fail.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// --- Fig. 3 -----------------------------------------------------------------

// Fig3Row is one layer of ResNet-50's footprint profile.
type Fig3Row struct {
	Layer      string
	Kind       graph.LayerKind
	InterLayer int64 // bytes for the whole mini-batch
	Params     int64 // bytes
}

// Fig3 computes the per-layer inter-layer data and parameter sizes of
// ResNet-50 with a 32-sample mini-batch at 16-bit words, sorted descending
// by inter-layer size as in the paper's plot.
func Fig3(w io.Writer) []Fig3Row { return must(seqRunner().Fig3(context.Background(), w)) }

// Fig3 is the engine-backed form of the package-level Fig3.
func (r Runner) Fig3(ctx context.Context, w io.Writer) ([]Fig3Row, error) {
	net, err := r.E.Network(ctx, "resnet50")
	if err != nil {
		return nil, err
	}
	inter, params := net.LayerFootprints(32)
	layers := net.Layers()
	rows := make([]Fig3Row, len(layers))
	for i, l := range layers {
		rows[i] = Fig3Row{Layer: l.Name, Kind: l.Kind, InterLayer: inter[i], Params: params[i]}
	}
	// Sort descending by inter-layer size; stable so equal-sized layers keep
	// network order as in the paper's plot.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].InterLayer > rows[j].InterLayer })
	if w != nil {
		t := report.NewTable(
			"Fig. 3: ResNet-50 per-layer footprint (mini-batch 32, 16b words; sorted)",
			"rank", "layer", "kind", "inter-layer", "params")
		for i, row := range rows {
			t.RowF(fmt.Sprint(i), row.Layer, row.Kind.String(),
				report.Bytes(row.InterLayer), report.Bytes(row.Params))
		}
		t.Render(w)
		// The paper's observation: only a small fraction of inter-layer
		// data fits a 10 MiB buffer.
		var total, fits int64
		for _, row := range rows {
			total += row.InterLayer
			if row.InterLayer <= core.DefaultBufferBytes {
				fits += row.InterLayer
			}
		}
		fmt.Fprintf(w, "inter-layer data reusable within 10 MiB: %s of %s (%.1f%%)\n",
			report.Bytes(fits), report.Bytes(total), 100*float64(fits)/float64(total))
	}
	return rows, nil
}

// --- Fig. 4 -----------------------------------------------------------------

// Fig4Row is one block of the grouping profile.
type Fig4Row struct {
	Block         string
	PerSampleData int64 // bytes (grey bars)
	MinIterations int   // red line
	Group         int   // blue line (group index of the MBS1 schedule)
}

// Fig4 computes ResNet-50's per-block inter-layer data size, minimal
// iteration count, and the resulting MBS layer grouping (32 samples,
// 10 MiB).
func Fig4(w io.Writer) []Fig4Row { return must(seqRunner().Fig4(context.Background(), w)) }

// Fig4 is the engine-backed form of the package-level Fig4.
func (r Runner) Fig4(ctx context.Context, w io.Writer) ([]Fig4Row, error) {
	net, err := r.E.Network(ctx, "resnet50")
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions(core.MBS1, 32)
	s, err := r.E.Plan(ctx, "resnet50", opts)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, len(net.Blocks))
	for i, b := range net.Blocks {
		rows[i] = Fig4Row{
			Block:         b.Name,
			PerSampleData: b.FootprintPerSample(false),
			MinIterations: core.MinIterations(b, opts.BufferBytes, opts.Batch, false),
		}
		for gi, g := range s.Groups {
			if i >= g.First && i <= g.Last {
				rows[i].Group = gi + 1
			}
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 4: ResNet-50 per-block data, minimal iterations, MBS grouping (batch 32, 10 MiB)",
			"block", "data/sample", "min-iters", "group")
		for _, row := range rows {
			t.RowF(row.Block, report.Bytes(row.PerSampleData),
				fmt.Sprint(row.MinIterations), fmt.Sprintf("G%d", row.Group))
		}
		t.Render(w)
	}
	return rows, nil
}

// --- Fig. 5 -----------------------------------------------------------------

// Fig5 prints the concrete MBS schedules (MBS1 and MBS2) for a network.
func Fig5(w io.Writer, network string) ([]*core.Schedule, error) {
	return seqRunner().Fig5(context.Background(), w, network)
}

// Fig5 is the engine-backed form of the package-level Fig5.
func (r Runner) Fig5(ctx context.Context, w io.Writer, network string) ([]*core.Schedule, error) {
	var out []*core.Schedule
	for _, cfg := range []core.Config{core.MBS1, core.MBS2} {
		s, err := r.plan(ctx, network, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if w != nil {
			fmt.Fprintln(w, s)
		}
	}
	return out, nil
}

// --- Fig. 10 ----------------------------------------------------------------

// Fig10Cell is one (network, config) evaluation point.
type Fig10Cell struct {
	Network string
	Config  core.Config

	StepSeconds float64
	EnergyJ     float64
	DRAMBytes   int64
	Utilization float64

	SpeedupVsBaseline float64
	SpeedupVsArchOpt  float64
	EnergyVsBaseline  float64
	TrafficVsArchOpt  float64
}

// Fig10 runs all six configurations on the given networks (default: all
// six CNNs) over the baseline HBM2 memory and reports per-step time, energy
// and DRAM traffic, normalized as in the paper's Fig. 10.
func Fig10(w io.Writer, networks ...string) ([]Fig10Cell, error) {
	return seqRunner().Fig10(context.Background(), w, networks...)
}

// Fig10 is the engine-backed form of the package-level Fig10.
func (r Runner) Fig10(ctx context.Context, w io.Writer, networks ...string) ([]Fig10Cell, error) {
	if len(networks) == 0 {
		networks = DeepCNNs
	}
	grid := sweep.Grid{Networks: networks, Configs: core.Configs}
	gridCells := grid.Cells()
	results, err := r.E.SimulateGrid(ctx, gridCells)
	if err != nil {
		return nil, err
	}
	var cells []Fig10Cell
	// Baseline and ArchOpt lead each network's config run, so the reference
	// values are always set before the cells that normalize against them.
	var baseT, baseE, archT float64
	var archD int64
	for i, res := range results {
		gc := gridCells[i]
		if gc.Config == core.Baseline {
			baseT, baseE = res.StepSeconds, res.Energy.Total()
			archT, archD = 0, 0
		}
		if gc.Config == core.ArchOpt {
			archT, archD = res.StepSeconds, res.DRAMBytes
		}
		c := Fig10Cell{
			Network: gc.Network, Config: gc.Config,
			StepSeconds: res.StepSeconds,
			EnergyJ:     res.Energy.Total(),
			DRAMBytes:   res.DRAMBytes,
			Utilization: res.Utilization,
		}
		c.SpeedupVsBaseline = baseT / res.StepSeconds
		if archT > 0 {
			c.SpeedupVsArchOpt = archT / res.StepSeconds
		}
		c.EnergyVsBaseline = res.Energy.Total() / baseE
		if archD > 0 {
			c.TrafficVsArchOpt = float64(res.DRAMBytes) / float64(archD)
		}
		cells = append(cells, c)
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 10: per-training-step time (a), energy (b), DRAM traffic (c); HBM2 baseline memory",
			"network", "config", "time", "x(Base)", "x(ArchOpt)",
			"energy", "E/Base", "DRAM", "D/ArchOpt")
		for _, c := range cells {
			arch := "-"
			traffic := "-"
			if c.SpeedupVsArchOpt > 0 {
				arch = fmt.Sprintf("%.2f", c.SpeedupVsArchOpt)
			}
			if c.TrafficVsArchOpt > 0 {
				traffic = fmt.Sprintf("%.2f", c.TrafficVsArchOpt)
			}
			t.RowF(c.Network, c.Config.String(), report.Ms(c.StepSeconds),
				fmt.Sprintf("%.2f", c.SpeedupVsBaseline), arch,
				fmt.Sprintf("%.2f J", c.EnergyJ),
				fmt.Sprintf("%.2f", c.EnergyVsBaseline),
				fmt.Sprintf("%.2f GB", float64(c.DRAMBytes)/1e9), traffic)
		}
		t.Render(w)
	}
	return cells, nil
}

// --- Fig. 11 ----------------------------------------------------------------

// Fig11Point is one (config, buffer size) measurement for ResNet-50.
type Fig11Point struct {
	Config      core.Config
	BufferMiB   int64
	StepSeconds float64
	DRAMBytes   int64
}

// Fig11 sweeps the global buffer from 5 to 40 MiB for ResNet-50 across IL
// and the MBS variants, normalizing to IL at 5 MiB as in the paper.
func Fig11(w io.Writer) []Fig11Point { return must(seqRunner().Fig11(context.Background(), w)) }

// Fig11 is the engine-backed form of the package-level Fig11.
func (r Runner) Fig11(ctx context.Context, w io.Writer) ([]Fig11Point, error) {
	var cells []sweep.Cell
	for _, mib := range []int64{5, 10, 20, 30, 40} {
		for _, cfg := range []core.Config{core.IL, core.MBSFS, core.MBS1, core.MBS2} {
			cells = append(cells, sweep.Cell{
				Network: "resnet50", Config: cfg, Batch: 32, BufferBytes: mib << 20,
			})
		}
	}
	results, err := r.E.SimulateGrid(ctx, cells)
	if err != nil {
		return nil, err
	}
	points := make([]Fig11Point, len(cells))
	for i, res := range results {
		points[i] = Fig11Point{
			Config: cells[i].Config, BufferMiB: cells[i].BufferBytes >> 20,
			StepSeconds: res.StepSeconds, DRAMBytes: res.DRAMBytes,
		}
	}
	// The normalization reference is the first cell: IL at 5 MiB.
	refT, refD := points[0].StepSeconds, points[0].DRAMBytes
	if w != nil {
		t := report.NewTable(
			"Fig. 11: ResNet-50 sensitivity to global buffer size (normalized to IL at 5 MiB)",
			"buffer", "config", "time", "norm-time", "DRAM", "norm-DRAM")
		for _, p := range points {
			t.RowF(fmt.Sprintf("%d MiB", p.BufferMiB), p.Config.String(),
				report.Ms(p.StepSeconds),
				fmt.Sprintf("%.2f", p.StepSeconds/refT),
				fmt.Sprintf("%.2f GB", float64(p.DRAMBytes)/1e9),
				fmt.Sprintf("%.2f", float64(p.DRAMBytes)/float64(refD)))
		}
		t.Render(w)
	}
	return points, nil
}

// --- Fig. 12 ----------------------------------------------------------------

// Fig12Point is one (config, memory) measurement for ResNet-50 at the
// larger 64-per-core mini-batch the paper uses for this experiment.
type Fig12Point struct {
	Config      core.Config
	Memory      string
	StepSeconds float64
	Speedup     float64 // vs Baseline on HBM2x2
	ByClass     map[sim.KindClass]float64
}

// Fig12 sweeps memory technologies for ResNet-50 and reports the per-layer-
// type execution time breakdown.
func Fig12(w io.Writer) []Fig12Point { return must(seqRunner().Fig12(context.Background(), w)) }

// Fig12 is the engine-backed form of the package-level Fig12.
func (r Runner) Fig12(ctx context.Context, w io.Writer) ([]Fig12Point, error) {
	grid := sweep.Grid{
		Networks: []string{"resnet50"},
		Configs:  []core.Config{core.Baseline, core.ArchOpt, core.IL, core.MBS2},
		Memories: []memsys.DRAM{memsys.HBM2x2, memsys.GDDR5, memsys.LPDDR4},
		Batches:  []int{64},
	}
	cells := grid.Cells()
	results, err := r.E.SimulateGrid(ctx, cells)
	if err != nil {
		return nil, err
	}
	// The normalization reference is the first cell: Baseline on HBM2x2.
	ref := results[0].StepSeconds
	points := make([]Fig12Point, len(cells))
	for i, res := range results {
		points[i] = Fig12Point{
			Config: cells[i].Config, Memory: cells[i].Memory.Name,
			StepSeconds: res.StepSeconds,
			Speedup:     ref / res.StepSeconds,
			ByClass:     res.TimeByClass,
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 12: ResNet-50 (batch 64/core) memory-type sensitivity and time breakdown",
			"config", "memory", "time", "speedup", "Sum", "Pool", "Norm", "FC", "Conv")
		for _, p := range points {
			t.RowF(p.Config.String(), p.Memory, report.Ms(p.StepSeconds),
				fmt.Sprintf("%.2f", p.Speedup),
				report.Ms(p.ByClass[sim.ClassSum]),
				report.Ms(p.ByClass[sim.ClassPool]),
				report.Ms(p.ByClass[sim.ClassNorm]),
				report.Ms(p.ByClass[sim.ClassFC]),
				report.Ms(p.ByClass[sim.ClassConv]))
		}
		t.Render(w)
	}
	return points, nil
}

// --- Fig. 13 ----------------------------------------------------------------

// Fig13Point compares WaveCore+MBS2 on one memory type against the V100.
type Fig13Point struct {
	Network    string
	Memory     string
	GPUSeconds float64
	WCSeconds  float64
	Speedup    float64
}

// Fig13 compares the V100 model (conventional training, 64-sample
// mini-batch) against one WaveCore chip running MBS2 (2 cores x 32).
func Fig13(w io.Writer) []Fig13Point { return must(seqRunner().Fig13(context.Background(), w)) }

// Fig13 is the engine-backed form of the package-level Fig13.
func (r Runner) Fig13(ctx context.Context, w io.Writer) ([]Fig13Point, error) {
	gpu := sim.DefaultV100()
	networks := []string{"resnet50", "resnet101", "resnet152", "inceptionv3"}
	memories := []memsys.DRAM{memsys.HBM2x2, memsys.GDDR5, memsys.HBM2, memsys.LPDDR4}
	gpuRes, err := sweep.Map(ctx, r.E, len(networks), func(ctx context.Context, i int) (*sim.GPUResult, error) {
		opts := core.DefaultOptions(core.Baseline, 64)
		s, err := r.E.Plan(ctx, networks[i], opts)
		if err != nil {
			return nil, err
		}
		tr, err := r.E.Traffic(ctx, networks[i], opts)
		if err != nil {
			return nil, err
		}
		return sim.SimulateGPUTraffic(gpu, s, tr), nil
	})
	if err != nil {
		return nil, err
	}
	grid := sweep.Grid{
		Networks: networks,
		Configs:  []core.Config{core.MBS2},
		Memories: memories,
		Batches:  []int{32},
	}
	cells := grid.Cells()
	results, err := r.E.SimulateGrid(ctx, cells)
	if err != nil {
		return nil, err
	}
	points := make([]Fig13Point, len(cells))
	for i, res := range results {
		g := gpuRes[i/len(memories)]
		points[i] = Fig13Point{
			Network: cells[i].Network, Memory: cells[i].Memory.Name,
			GPUSeconds: g.StepSeconds, WCSeconds: res.StepSeconds,
			Speedup: g.StepSeconds / res.StepSeconds,
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 13: NVIDIA V100 vs WaveCore+MBS2 per-step training time",
			"network", "memory", "V100", "WaveCore", "speedup")
		for _, p := range points {
			t.RowF(p.Network, p.Memory, report.Ms(p.GPUSeconds),
				report.Ms(p.WCSeconds), fmt.Sprintf("%.2f", p.Speedup))
		}
		t.Render(w)
	}
	return points, nil
}

// --- Fig. 14 ----------------------------------------------------------------

// Fig14Cell is one (network, config) utilization measurement.
type Fig14Cell struct {
	Network     string
	Config      core.Config
	Utilization float64
}

// Fig14 measures systolic-array utilization with unlimited DRAM bandwidth
// for all networks and the five compute-relevant configurations.
func Fig14(w io.Writer) []Fig14Cell { return must(seqRunner().Fig14(context.Background(), w)) }

// Fig14 is the engine-backed form of the package-level Fig14.
func (r Runner) Fig14(ctx context.Context, w io.Writer) ([]Fig14Cell, error) {
	configs := []core.Config{core.Baseline, core.ArchOpt, core.MBSFS, core.MBS1, core.MBS2}
	grid := sweep.Grid{
		Networks: DeepCNNs,
		Configs:  configs,
		Memories: []memsys.DRAM{memsys.HBM2.Unlimited()},
	}
	gridCells := grid.Cells()
	results, err := r.E.SimulateGrid(ctx, gridCells)
	if err != nil {
		return nil, err
	}
	cells := make([]Fig14Cell, len(gridCells))
	sums := make(map[core.Config]float64)
	for i, res := range results {
		cells[i] = Fig14Cell{
			Network: gridCells[i].Network, Config: gridCells[i].Config,
			Utilization: res.Utilization,
		}
		sums[gridCells[i].Config] += res.Utilization
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 14: systolic array utilization (unlimited DRAM bandwidth)",
			"network", "Baseline", "ArchOpt", "MBS-FS", "MBS1", "MBS2")
		for _, name := range DeepCNNs {
			row := []string{name}
			for _, cfg := range configs {
				for _, c := range cells {
					if c.Network == name && c.Config == cfg {
						row = append(row, report.Pct(c.Utilization))
					}
				}
			}
			t.RowF(row...)
		}
		avg := []string{"AVG"}
		for _, cfg := range configs {
			avg = append(avg, report.Pct(sums[cfg]/float64(len(DeepCNNs))))
		}
		t.RowF(avg...)
		t.Render(w)
	}
	return cells, nil
}

// The scenario registry in registry.go is the single definition of the
// runnable evaluation suite: every figure and table above is registered as
// a named Scenario with typed params, and mbsim, mbsd and the golden tests
// all execute through it, so rendered and structured outputs cannot drift.
