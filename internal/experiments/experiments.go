// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each function both returns the structured data series
// and renders the same rows the paper reports, so the cmd binaries, the
// examples and the benchmark harness all share one implementation.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/sim"
)

// DeepCNNs lists the evaluation networks in the paper's order.
var DeepCNNs = []string{"resnet50", "resnet101", "resnet152", "inceptionv3", "inceptionv4", "alexnet"}

// plan builds the default schedule for (network, config).
func plan(name string, cfg core.Config) (*core.Schedule, error) {
	net, err := models.Build(name)
	if err != nil {
		return nil, err
	}
	return core.Plan(net, core.DefaultOptions(cfg, models.DefaultBatch(name)))
}

// --- Fig. 3 -----------------------------------------------------------------

// Fig3Row is one layer of ResNet-50's footprint profile.
type Fig3Row struct {
	Layer      string
	Kind       graph.LayerKind
	InterLayer int64 // bytes for the whole mini-batch
	Params     int64 // bytes
}

// Fig3 computes the per-layer inter-layer data and parameter sizes of
// ResNet-50 with a 32-sample mini-batch at 16-bit words, sorted descending
// by inter-layer size as in the paper's plot.
func Fig3(w io.Writer) []Fig3Row {
	net, _ := models.Build("resnet50")
	inter, params := net.LayerFootprints(32)
	layers := net.Layers()
	rows := make([]Fig3Row, len(layers))
	for i, l := range layers {
		rows[i] = Fig3Row{Layer: l.Name, Kind: l.Kind, InterLayer: inter[i], Params: params[i]}
	}
	// Sort descending by inter-layer size (insertion sort keeps it simple
	// and stable for the table).
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].InterLayer > rows[j-1].InterLayer; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 3: ResNet-50 per-layer footprint (mini-batch 32, 16b words; sorted)",
			"rank", "layer", "kind", "inter-layer", "params")
		for i, r := range rows {
			t.RowF(fmt.Sprint(i), r.Layer, r.Kind.String(),
				report.Bytes(r.InterLayer), report.Bytes(r.Params))
		}
		t.Render(w)
		// The paper's observation: only a small fraction of inter-layer
		// data fits a 10 MiB buffer.
		var total, fits int64
		for _, r := range rows {
			total += r.InterLayer
			if r.InterLayer <= core.DefaultBufferBytes {
				fits += r.InterLayer
			}
		}
		fmt.Fprintf(w, "inter-layer data reusable within 10 MiB: %s of %s (%.1f%%)\n",
			report.Bytes(fits), report.Bytes(total), 100*float64(fits)/float64(total))
	}
	return rows
}

// --- Fig. 4 -----------------------------------------------------------------

// Fig4Row is one block of the grouping profile.
type Fig4Row struct {
	Block         string
	PerSampleData int64 // bytes (grey bars)
	MinIterations int   // red line
	Group         int   // blue line (group index of the MBS1 schedule)
}

// Fig4 computes ResNet-50's per-block inter-layer data size, minimal
// iteration count, and the resulting MBS layer grouping (32 samples,
// 10 MiB).
func Fig4(w io.Writer) []Fig4Row {
	net, _ := models.Build("resnet50")
	opts := core.DefaultOptions(core.MBS1, 32)
	s := core.MustPlan(net, opts)
	rows := make([]Fig4Row, len(net.Blocks))
	for i, b := range net.Blocks {
		rows[i] = Fig4Row{
			Block:         b.Name,
			PerSampleData: b.FootprintPerSample(false),
			MinIterations: core.MinIterations(b, opts.BufferBytes, opts.Batch, false),
		}
		for gi, g := range s.Groups {
			if i >= g.First && i <= g.Last {
				rows[i].Group = gi + 1
			}
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 4: ResNet-50 per-block data, minimal iterations, MBS grouping (batch 32, 10 MiB)",
			"block", "data/sample", "min-iters", "group")
		for _, r := range rows {
			t.RowF(r.Block, report.Bytes(r.PerSampleData),
				fmt.Sprint(r.MinIterations), fmt.Sprintf("G%d", r.Group))
		}
		t.Render(w)
	}
	return rows
}

// --- Fig. 5 -----------------------------------------------------------------

// Fig5 prints the concrete MBS schedules (MBS1 and MBS2) for a network.
func Fig5(w io.Writer, network string) ([]*core.Schedule, error) {
	var out []*core.Schedule
	for _, cfg := range []core.Config{core.MBS1, core.MBS2} {
		s, err := plan(network, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if w != nil {
			fmt.Fprintln(w, s)
		}
	}
	return out, nil
}

// --- Fig. 10 ----------------------------------------------------------------

// Fig10Cell is one (network, config) evaluation point.
type Fig10Cell struct {
	Network string
	Config  core.Config

	StepSeconds float64
	EnergyJ     float64
	DRAMBytes   int64
	Utilization float64

	SpeedupVsBaseline float64
	SpeedupVsArchOpt  float64
	EnergyVsBaseline  float64
	TrafficVsArchOpt  float64
}

// Fig10 runs all six configurations on the given networks (default: all
// six CNNs) over the baseline HBM2 memory and reports per-step time, energy
// and DRAM traffic, normalized as in the paper's Fig. 10.
func Fig10(w io.Writer, networks ...string) ([]Fig10Cell, error) {
	if len(networks) == 0 {
		networks = DeepCNNs
	}
	var cells []Fig10Cell
	for _, name := range networks {
		var baseT, baseE float64
		var archT float64
		var archD int64
		for _, cfg := range core.Configs {
			s, err := plan(name, cfg)
			if err != nil {
				return nil, err
			}
			r, err := sim.Simulate(s, sim.DefaultHW(cfg, memsys.HBM2))
			if err != nil {
				return nil, err
			}
			if cfg == core.Baseline {
				baseT, baseE = r.StepSeconds, r.Energy.Total()
			}
			if cfg == core.ArchOpt {
				archT, archD = r.StepSeconds, r.DRAMBytes
			}
			c := Fig10Cell{
				Network: name, Config: cfg,
				StepSeconds: r.StepSeconds,
				EnergyJ:     r.Energy.Total(),
				DRAMBytes:   r.DRAMBytes,
				Utilization: r.Utilization,
			}
			c.SpeedupVsBaseline = baseT / r.StepSeconds
			if archT > 0 {
				c.SpeedupVsArchOpt = archT / r.StepSeconds
			}
			c.EnergyVsBaseline = r.Energy.Total() / baseE
			if archD > 0 {
				c.TrafficVsArchOpt = float64(r.DRAMBytes) / float64(archD)
			}
			cells = append(cells, c)
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 10: per-training-step time (a), energy (b), DRAM traffic (c); HBM2 baseline memory",
			"network", "config", "time", "x(Base)", "x(ArchOpt)",
			"energy", "E/Base", "DRAM", "D/ArchOpt")
		for _, c := range cells {
			arch := "-"
			traffic := "-"
			if c.SpeedupVsArchOpt > 0 {
				arch = fmt.Sprintf("%.2f", c.SpeedupVsArchOpt)
			}
			if c.TrafficVsArchOpt > 0 {
				traffic = fmt.Sprintf("%.2f", c.TrafficVsArchOpt)
			}
			t.RowF(c.Network, c.Config.String(), report.Ms(c.StepSeconds),
				fmt.Sprintf("%.2f", c.SpeedupVsBaseline), arch,
				fmt.Sprintf("%.2f J", c.EnergyJ),
				fmt.Sprintf("%.2f", c.EnergyVsBaseline),
				fmt.Sprintf("%.2f GB", float64(c.DRAMBytes)/1e9), traffic)
		}
		t.Render(w)
	}
	return cells, nil
}

// --- Fig. 11 ----------------------------------------------------------------

// Fig11Point is one (config, buffer size) measurement for ResNet-50.
type Fig11Point struct {
	Config      core.Config
	BufferMiB   int64
	StepSeconds float64
	DRAMBytes   int64
}

// Fig11 sweeps the global buffer from 5 to 40 MiB for ResNet-50 across IL
// and the MBS variants, normalizing to IL at 5 MiB as in the paper.
func Fig11(w io.Writer) []Fig11Point {
	net, _ := models.Build("resnet50")
	var points []Fig11Point
	var refT float64
	var refD int64
	for _, mib := range []int64{5, 10, 20, 30, 40} {
		for _, cfg := range []core.Config{core.IL, core.MBSFS, core.MBS1, core.MBS2} {
			opts := core.DefaultOptions(cfg, 32)
			opts.BufferBytes = mib << 20
			hw := sim.DefaultHW(cfg, memsys.HBM2)
			hw.GB = hw.GB.WithSize(opts.BufferBytes)
			r := sim.MustSimulate(core.MustPlan(net, opts), hw)
			if mib == 5 && cfg == core.IL {
				refT, refD = r.StepSeconds, r.DRAMBytes
			}
			points = append(points, Fig11Point{
				Config: cfg, BufferMiB: mib,
				StepSeconds: r.StepSeconds, DRAMBytes: r.DRAMBytes,
			})
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 11: ResNet-50 sensitivity to global buffer size (normalized to IL at 5 MiB)",
			"buffer", "config", "time", "norm-time", "DRAM", "norm-DRAM")
		for _, p := range points {
			t.RowF(fmt.Sprintf("%d MiB", p.BufferMiB), p.Config.String(),
				report.Ms(p.StepSeconds),
				fmt.Sprintf("%.2f", p.StepSeconds/refT),
				fmt.Sprintf("%.2f GB", float64(p.DRAMBytes)/1e9),
				fmt.Sprintf("%.2f", float64(p.DRAMBytes)/float64(refD)))
		}
		t.Render(w)
	}
	return points
}

// --- Fig. 12 ----------------------------------------------------------------

// Fig12Point is one (config, memory) measurement for ResNet-50 at the
// larger 64-per-core mini-batch the paper uses for this experiment.
type Fig12Point struct {
	Config      core.Config
	Memory      string
	StepSeconds float64
	Speedup     float64 // vs Baseline on HBM2x2
	ByClass     map[sim.KindClass]float64
}

// Fig12 sweeps memory technologies for ResNet-50 and reports the per-layer-
// type execution time breakdown.
func Fig12(w io.Writer) []Fig12Point {
	net, _ := models.Build("resnet50")
	var points []Fig12Point
	var ref float64
	for _, cfg := range []core.Config{core.Baseline, core.ArchOpt, core.IL, core.MBS2} {
		s := core.MustPlan(net, core.DefaultOptions(cfg, 64))
		for _, mem := range []memsys.DRAM{memsys.HBM2x2, memsys.GDDR5, memsys.LPDDR4} {
			r := sim.MustSimulate(s, sim.DefaultHW(cfg, mem))
			if ref == 0 {
				ref = r.StepSeconds
			}
			points = append(points, Fig12Point{
				Config: cfg, Memory: mem.Name,
				StepSeconds: r.StepSeconds,
				Speedup:     ref / r.StepSeconds,
				ByClass:     r.TimeByClass,
			})
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 12: ResNet-50 (batch 64/core) memory-type sensitivity and time breakdown",
			"config", "memory", "time", "speedup", "Sum", "Pool", "Norm", "FC", "Conv")
		for _, p := range points {
			t.RowF(p.Config.String(), p.Memory, report.Ms(p.StepSeconds),
				fmt.Sprintf("%.2f", p.Speedup),
				report.Ms(p.ByClass[sim.ClassSum]),
				report.Ms(p.ByClass[sim.ClassPool]),
				report.Ms(p.ByClass[sim.ClassNorm]),
				report.Ms(p.ByClass[sim.ClassFC]),
				report.Ms(p.ByClass[sim.ClassConv]))
		}
		t.Render(w)
	}
	return points
}

// --- Fig. 13 ----------------------------------------------------------------

// Fig13Point compares WaveCore+MBS2 on one memory type against the V100.
type Fig13Point struct {
	Network    string
	Memory     string
	GPUSeconds float64
	WCSeconds  float64
	Speedup    float64
}

// Fig13 compares the V100 model (conventional training, 64-sample
// mini-batch) against one WaveCore chip running MBS2 (2 cores x 32).
func Fig13(w io.Writer) []Fig13Point {
	gpu := sim.DefaultV100()
	var points []Fig13Point
	for _, name := range []string{"resnet50", "resnet101", "resnet152", "inceptionv3"} {
		net, _ := models.Build(name)
		g := sim.SimulateGPU(gpu, core.MustPlan(net, core.DefaultOptions(core.Baseline, 64)))
		s := core.MustPlan(net, core.DefaultOptions(core.MBS2, 32))
		for _, mem := range []memsys.DRAM{memsys.HBM2x2, memsys.GDDR5, memsys.HBM2, memsys.LPDDR4} {
			r := sim.MustSimulate(s, sim.DefaultHW(core.MBS2, mem))
			points = append(points, Fig13Point{
				Network: name, Memory: mem.Name,
				GPUSeconds: g.StepSeconds, WCSeconds: r.StepSeconds,
				Speedup: g.StepSeconds / r.StepSeconds,
			})
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 13: NVIDIA V100 vs WaveCore+MBS2 per-step training time",
			"network", "memory", "V100", "WaveCore", "speedup")
		for _, p := range points {
			t.RowF(p.Network, p.Memory, report.Ms(p.GPUSeconds),
				report.Ms(p.WCSeconds), fmt.Sprintf("%.2f", p.Speedup))
		}
		t.Render(w)
	}
	return points
}

// --- Fig. 14 ----------------------------------------------------------------

// Fig14Cell is one (network, config) utilization measurement.
type Fig14Cell struct {
	Network     string
	Config      core.Config
	Utilization float64
}

// Fig14 measures systolic-array utilization with unlimited DRAM bandwidth
// for all networks and the five compute-relevant configurations.
func Fig14(w io.Writer) []Fig14Cell {
	configs := []core.Config{core.Baseline, core.ArchOpt, core.MBSFS, core.MBS1, core.MBS2}
	var cells []Fig14Cell
	sums := make(map[core.Config]float64)
	for _, name := range DeepCNNs {
		for _, cfg := range configs {
			s, _ := plan(name, cfg)
			r := sim.MustSimulate(s, sim.DefaultHW(cfg, memsys.HBM2.Unlimited()))
			cells = append(cells, Fig14Cell{Network: name, Config: cfg, Utilization: r.Utilization})
			sums[cfg] += r.Utilization
		}
	}
	if w != nil {
		t := report.NewTable(
			"Fig. 14: systolic array utilization (unlimited DRAM bandwidth)",
			"network", "Baseline", "ArchOpt", "MBS-FS", "MBS1", "MBS2")
		for _, name := range DeepCNNs {
			row := []string{name}
			for _, cfg := range configs {
				for _, c := range cells {
					if c.Network == name && c.Config == cfg {
						row = append(row, report.Pct(c.Utilization))
					}
				}
			}
			t.RowF(row...)
		}
		avg := []string{"AVG"}
		for _, cfg := range configs {
			avg = append(avg, report.Pct(sums[cfg]/float64(len(DeepCNNs))))
		}
		t.RowF(avg...)
		t.Render(w)
	}
	return cells
}
