package experiments

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestFig3SortedAndPlausible(t *testing.T) {
	rows := Fig3(io.Discard)
	if len(rows) < 100 {
		t.Fatalf("ResNet-50 has >100 layers, got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].InterLayer > rows[i-1].InterLayer {
			t.Fatal("rows not sorted descending")
		}
	}
	// The paper's Fig. 3 peaks around 90 MB per layer at batch 32/16b.
	top := rows[0].InterLayer
	if top < 40<<20 || top > 160<<20 {
		t.Errorf("largest footprint = %d bytes, want tens of MB", top)
	}
	// And only a small fraction fits a 10 MiB buffer (paper: 9.3%).
	var total, fits int64
	for _, r := range rows {
		total += r.InterLayer
		if r.InterLayer <= core.DefaultBufferBytes {
			fits += r.InterLayer
		}
	}
	if frac := float64(fits) / float64(total); frac > 0.35 {
		t.Errorf("reusable fraction = %.2f, want small (paper: 0.093)", frac)
	}
}

func TestFig4GroupsCoverAllBlocks(t *testing.T) {
	rows := Fig4(io.Discard)
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20 ResNet-50 blocks", len(rows))
	}
	for i, r := range rows {
		if r.Group < 1 {
			t.Errorf("block %d (%s) not assigned a group", i, r.Block)
		}
		if r.MinIterations < 1 {
			t.Errorf("block %s: bad min iterations", r.Block)
		}
	}
	// The iteration profile peaks in the front half of the network (large
	// early feature maps) and the deepest blocks need the fewest
	// iterations — the down-sampling effect MBS exploits (Fig. 4).
	peak, peakIdx := 0, 0
	for i, r := range rows {
		if r.MinIterations > peak {
			peak, peakIdx = r.MinIterations, i
		}
	}
	if peakIdx > len(rows)/2 {
		t.Errorf("iteration peak at block %d (%s), want in the front half", peakIdx, rows[peakIdx].Block)
	}
	if last := rows[len(rows)-1].MinIterations; last >= peak {
		t.Errorf("deepest block needs %d iterations, peak is %d — no down-sampling benefit", last, peak)
	}
}

func TestFig5RendersBothSchedules(t *testing.T) {
	var b strings.Builder
	scheds, err := Fig5(&b, "resnet50")
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 2 {
		t.Fatalf("schedules = %d, want MBS1+MBS2", len(scheds))
	}
	if !strings.Contains(b.String(), "MBS1") || !strings.Contains(b.String(), "MBS2") {
		t.Error("rendering missing configs")
	}
	if _, err := Fig5(io.Discard, "nonexistent"); err == nil {
		t.Error("unknown network should error")
	}
}

func TestFig10Shapes(t *testing.T) {
	cells, err := Fig10(io.Discard, "resnet50")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(core.Configs) {
		t.Fatalf("cells = %d", len(cells))
	}
	byCfg := map[core.Config]Fig10Cell{}
	for _, c := range cells {
		byCfg[c.Config] = c
	}
	// Paper headline shapes for ResNet-50.
	if s := byCfg[core.MBS2].SpeedupVsBaseline; s < 1.4 || s > 2.3 {
		t.Errorf("MBS2 speedup vs baseline = %.2f, want ~1.8", s)
	}
	if r := byCfg[core.MBS2].TrafficVsArchOpt; r < 0.15 || r > 0.40 {
		t.Errorf("MBS2 traffic vs ArchOpt = %.2f, want ~0.22", r)
	}
	if e := byCfg[core.MBS2].EnergyVsBaseline; e < 0.5 || e > 0.85 {
		t.Errorf("MBS2 energy vs baseline = %.2f, want ~0.70", e)
	}
}

func TestFig11MBSInsensitive(t *testing.T) {
	points := Fig11(io.Discard)
	var mbs5, mbs40, il5, il40 float64
	for _, p := range points {
		switch {
		case p.Config == core.MBS2 && p.BufferMiB == 5:
			mbs5 = p.StepSeconds
		case p.Config == core.MBS2 && p.BufferMiB == 40:
			mbs40 = p.StepSeconds
		case p.Config == core.IL && p.BufferMiB == 5:
			il5 = p.StepSeconds
		case p.Config == core.IL && p.BufferMiB == 40:
			il40 = p.StepSeconds
		}
	}
	if mbs5 == 0 || il5 == 0 {
		t.Fatal("missing sweep points")
	}
	// MBS2's spread across 5-40 MiB is far smaller than IL's gain, and
	// MBS2 at 5 MiB beats IL at 40 MiB (paper's Fig. 11 headline).
	if mbs40 >= il40 {
		t.Errorf("MBS2@40MiB (%.4f) should beat IL@40MiB (%.4f)", mbs40, il40)
	}
	if mbs5 >= il40 {
		t.Errorf("MBS2@5MiB (%.4f) should beat IL@40MiB (%.4f)", mbs5, il40)
	}
	if (mbs5-mbs40)/mbs40 > (il5-il40)/il40 {
		t.Error("MBS2 should be less buffer sensitive than IL")
	}
}

func TestFig12Breakdown(t *testing.T) {
	points := Fig12(io.Discard)
	if len(points) != 12 { // 4 configs x 3 memories
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		var sum float64
		for _, v := range p.ByClass {
			sum += v
		}
		if d := sum - p.StepSeconds; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s/%s: breakdown %.5f != step %.5f", p.Config, p.Memory, sum, p.StepSeconds)
		}
		if p.ByClass[sim.ClassConv] <= 0 {
			t.Errorf("%s/%s: zero conv time", p.Config, p.Memory)
		}
	}
}

func TestFig13AllWins(t *testing.T) {
	points := Fig13(io.Discard)
	if len(points) != 16 { // 4 networks x 4 memories
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Speedup < 1.0 {
			t.Errorf("%s/%s: WaveCore should beat the V100 (%.2f)", p.Network, p.Memory, p.Speedup)
		}
	}
}

func TestFig14AveragesMatchPaperShape(t *testing.T) {
	cells := Fig14(io.Discard)
	sums := map[core.Config]float64{}
	n := map[core.Config]int{}
	for _, c := range cells {
		sums[c.Config] += c.Utilization
		n[c.Config]++
	}
	base := sums[core.Baseline] / float64(n[core.Baseline])
	arch := sums[core.ArchOpt] / float64(n[core.ArchOpt])
	fs := sums[core.MBSFS] / float64(n[core.MBSFS])
	m1 := sums[core.MBS1] / float64(n[core.MBS1])
	if !(base < fs && fs < m1 && m1 <= arch) {
		t.Errorf("utilization ordering violated: base=%.2f fs=%.2f m1=%.2f arch=%.2f",
			base, fs, m1, arch)
	}
	// MBS1 within a few percent of ArchOpt (paper: within 3%).
	if arch-m1 > 0.06 {
		t.Errorf("MBS1 trails ArchOpt by %.1f%%, want < 6%%", (arch-m1)*100)
	}
}

func TestFig6ShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := DefaultFig6Config()
	cfg.Epochs = 4
	cfg.Data.Samples = 128
	res, err := Fig6(context.Background(), io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BN.ValError) != 4 || len(res.GNMBS.ValError) != 4 {
		t.Fatal("missing epochs")
	}
	// Errors must improve from the first epoch for both runs.
	if res.BN.ValError[3] > res.BN.ValError[0]+0.05 {
		t.Errorf("BN error did not improve: %v", res.BN.ValError)
	}
	if res.GNMBS.ValError[3] > res.GNMBS.ValError[0]+0.05 {
		t.Errorf("GN+MBS error did not improve: %v", res.GNMBS.ValError)
	}
	// Normalized pre-activation means stay bounded (Fig. 6 right panels).
	for i := range res.GNMBS.FirstNormMean {
		if m := res.GNMBS.FirstNormMean[i]; m > 2 || m < -2 {
			t.Errorf("GN first-norm mean diverged: %f", m)
		}
	}
}

func TestTable2(t *testing.T) {
	var b strings.Builder
	rows := Table2(&b)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[3].Name != "WaveCore" {
		t.Error("WaveCore row missing")
	}
	if !strings.Contains(b.String(), "534.0") {
		t.Error("die area missing from rendering")
	}
}
