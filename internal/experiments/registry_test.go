package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func TestRegistryNamesAndLookup(t *testing.T) {
	want := []string{"fig3", "fig4", "fig5", "fig10", "fig11", "fig12", "fig13",
		"fig14", "table2", "all", "single", "sweep"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
		s, ok := Lookup(want[i])
		if !ok || s.Name != want[i] {
			t.Errorf("Lookup(%q) failed", want[i])
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup of unregistered scenario succeeded")
	}
}

func TestScenarioRejectsUnknownParam(t *testing.T) {
	s, _ := Lookup("fig5")
	r := Runner{E: sweep.New(1)}
	if _, err := s.Run(context.Background(), r, Params{"nonsense": "x"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "unknown param") {
		t.Errorf("err = %v, want unknown-param error", err)
	}
}

func TestScenarioRejectsBadInt(t *testing.T) {
	s, _ := Lookup("single")
	r := Runner{E: sweep.New(1)}
	if _, err := s.Run(context.Background(), r, Params{"batch": "many"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "not an integer") {
		t.Errorf("err = %v, want integer error", err)
	}
}

func TestScenarioRejectsEnumViolation(t *testing.T) {
	r := Runner{E: sweep.New(1)}
	single, _ := Lookup("single")
	if _, err := single.Run(context.Background(), r, Params{"network": "vgg16"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "unknown value") {
		t.Errorf("err = %v, want enum error", err)
	}
	// Enum matching is case-insensitive, like the run functions' parsing.
	if _, err := single.Run(context.Background(), r, Params{"config": "mbs2"}, io.Discard); err != nil {
		t.Errorf("lowercase config rejected: %v", err)
	}
	// An empty value means "use the default" (the legacy -sweep flags pass
	// empty fixed values for unset flags).
	sw, _ := Lookup("sweep")
	if _, err := sw.Run(context.Background(), r, Params{"network": "", "axes": "config"}, io.Discard); err != nil {
		t.Errorf("empty network with default: %v", err)
	}
}

func TestScenarioDefaultsApplied(t *testing.T) {
	// fig5 with no params must equal fig5 with network=resnet50 explicitly.
	s, _ := Lookup("fig5")
	r := Runner{E: sweep.New(1)}
	var a, b bytes.Buffer
	if _, err := s.Run(context.Background(), r, nil, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), r, Params{"network": "resnet50"}, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("default params render differently from explicit defaults")
	}
}

func TestScenarioParamsChangeOutput(t *testing.T) {
	s, _ := Lookup("fig10")
	r := Runner{E: sweep.New(0)}
	data, err := s.Run(context.Background(), r, Params{"networks": "alexnet"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells, ok := data.([]Fig10Cell)
	if !ok {
		t.Fatalf("data type %T", data)
	}
	for _, c := range cells {
		if c.Network != "alexnet" {
			t.Fatalf("networks param ignored: got cell for %s", c.Network)
		}
	}
}

func TestJSONValueWrapping(t *testing.T) {
	fig, _ := Lookup("fig11")
	v := fig.JSONValue("data")
	m, ok := v.(map[string]any)
	if !ok || m["fig11"] != "data" {
		t.Errorf("fig11 JSONValue = %#v, want wrapped map", v)
	}
	all, _ := Lookup("all")
	if got := all.JSONValue("data"); got != "data" {
		t.Errorf("all JSONValue = %#v, want bare data", got)
	}
	single, _ := Lookup("single")
	if got := single.JSONValue("data"); got != "data" {
		t.Errorf("single JSONValue = %#v, want bare data", got)
	}
}

func TestInfosSerializable(t *testing.T) {
	infos := Infos()
	if len(infos) != len(Names()) {
		t.Fatalf("Infos() len = %d", len(infos))
	}
	raw, err := json.Marshal(infos)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		if !bytes.Contains(raw, []byte(`"`+name+`"`)) {
			t.Errorf("marshalled registry missing %s", name)
		}
	}
	// The sweep scenario documents its axes enum for discoverability.
	s, _ := Lookup("sweep")
	axes := s.Info().Params[0]
	if axes.Name != "axes" || len(axes.Enum) != 5 {
		t.Errorf("sweep axes spec = %+v", axes)
	}
}

func TestSweepScenarioRejectsBadAxis(t *testing.T) {
	// The axes enum rejects unknown axes at resolve time, before execution.
	s, _ := Lookup("sweep")
	r := Runner{E: sweep.New(1)}
	if _, err := s.Run(context.Background(), r, Params{"axes": "frequency"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "unknown value") {
		t.Errorf("err = %v, want enum rejection", err)
	}
}

func TestAllMatchesSuiteSections(t *testing.T) {
	r := Runner{E: sweep.New(0)}
	s, _ := Lookup("all")
	data, err := s.Run(context.Background(), r, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sections, ok := data.(map[string]any)
	if !ok {
		t.Fatalf("all data type %T", data)
	}
	for _, name := range []string{"fig10", "fig11", "fig12", "fig13", "fig14", "table2"} {
		if _, ok := sections[name]; !ok {
			t.Errorf("all output missing section %s", name)
		}
	}
	if len(sections) != 6 {
		t.Errorf("all has %d sections, want 6", len(sections))
	}
}

// TestParamErrorsAreTyped: every validation failure surfaces as a
// *ParamError so the HTTP layer can map it to 422 without string matching.
func TestParamErrorsAreTyped(t *testing.T) {
	r := Runner{E: sweep.New(1)}
	cases := []struct {
		scenario string
		params   Params
	}{
		{"fig5", Params{"nonsense": "x"}},
		{"single", Params{"batch": "many"}},
		{"single", Params{"network": "vgg16"}},
		{"sweep", Params{"axes": "frequency"}},
	}
	for _, c := range cases {
		s, _ := Lookup(c.scenario)
		_, err := s.Run(context.Background(), r, c.params, io.Discard)
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s %v: err = %T (%v), want *ParamError", c.scenario, c.params, err, err)
			continue
		}
		if pe.Scenario != c.scenario {
			t.Errorf("%s: ParamError.Scenario = %q", c.scenario, pe.Scenario)
		}
		if verr := s.Validate(c.params); !errors.As(verr, &pe) {
			t.Errorf("%s: Validate err = %T, want *ParamError", c.scenario, verr)
		}
	}
	// Valid params pass Validate without running anything.
	s, _ := Lookup("single")
	if err := s.Validate(Params{"network": "alexnet", "batch": "16"}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

// TestScenarioRunCancelled: a dead context aborts a scenario with the
// context's error.
func TestScenarioRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Runner{E: sweep.New(2)}
	for _, name := range []string{"fig10", "sweep", "all"} {
		s, _ := Lookup(name)
		if _, err := s.Run(ctx, r, nil, io.Discard); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}
