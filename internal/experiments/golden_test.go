package experiments

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// renderers pins one golden file per registered scenario, rendered with
// default params — the registry itself defines what is golden-tested, so a
// new scenario without a golden file fails until one is recorded. Fig. 6 is
// not a scenario: it is a training run, and while seeded, its cost does not
// belong in the regression loop.
type goldenCase struct {
	name   string
	render func(r Runner, w io.Writer) error
}

// goldenCases is built at call time, not package init: the registry itself
// is populated in an init func, which runs after test-file var initializers.
func goldenCases(t *testing.T) []goldenCase {
	scenarios := Scenarios()
	if len(scenarios) == 0 {
		t.Fatal("scenario registry is empty")
	}
	out := make([]goldenCase, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, goldenCase{s.Name, func(r Runner, w io.Writer) error {
			_, err := s.Run(context.Background(), r, nil, w)
			return err
		}})
	}
	return out
}

// TestGoldenOutputs pins every figure's rendered output byte-for-byte. The
// runner uses a parallel engine, so a pass also certifies that concurrent
// execution reproduces the committed sequential-era output. Regenerate with
//
//	go test ./internal/experiments -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	r := Runner{E: sweep.New(0)}
	for _, g := range goldenCases(t) {
		t.Run(g.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := g.render(r, &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", g.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden file %s\ngot:\n%s\nwant:\n%s",
					g.name, path, firstDiff(buf.Bytes(), want), path)
			}
		})
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(gl), len(wl))
}

// TestParallelMatchesSequential is the determinism equivalence test: the
// full suite rendered on a multi-worker engine must be byte-identical to a
// one-worker engine's output. Run under -race this also exercises the
// engine's concurrency safety.
func TestParallelMatchesSequential(t *testing.T) {
	render := func(workers int) []byte {
		var buf bytes.Buffer
		r := Runner{E: sweep.New(workers)}
		for _, g := range goldenCases(t) {
			fmt.Fprintf(&buf, "== %s ==\n", g.name)
			if err := g.render(r, &buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	seq := render(1)
	for _, workers := range []int{2, 8} {
		if par := render(workers); !bytes.Equal(seq, par) {
			t.Errorf("workers=%d output differs from sequential:\n%s",
				workers, firstDiff(par, seq))
		}
	}
}

// TestRunnerCacheReuse verifies the engine-level win the suite is built on:
// running every figure on one engine plans each distinct (network, options)
// pair exactly once.
func TestRunnerCacheReuse(t *testing.T) {
	r := Runner{E: sweep.New(0)}
	if err := r.All(context.Background(), io.Discard); err != nil {
		t.Fatal(err)
	}
	first := r.E.Cache().Stats()
	if first.PlanHits == 0 {
		t.Error("figures share cells; expected plan cache hits within one suite run")
	}
	if err := r.All(context.Background(), io.Discard); err != nil {
		t.Fatal(err)
	}
	second := r.E.Cache().Stats()
	if second.PlanMisses != first.PlanMisses {
		t.Errorf("re-running the suite planned %d new schedules, want 0",
			second.PlanMisses-first.PlanMisses)
	}
	if second.NetworkMisses != first.NetworkMisses {
		t.Errorf("re-running the suite built %d new networks, want 0",
			second.NetworkMisses-first.NetworkMisses)
	}
}
