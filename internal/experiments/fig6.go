package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/synth"
)

// Fig6Config parameterizes the training-equivalence experiment (the
// ImageNet/ResNet-50 run of the paper's Fig. 6, scaled to a synthetic
// dataset and a small CNN; see DESIGN.md's substitution table).
type Fig6Config struct {
	Epochs    int
	Batch     int
	SubBatch  int // MBS sub-batch for the GN run
	LR        float64
	LRDecayAt []int // epochs at which LR is multiplied by 0.1 (paper: 30/60/80)
	Seed      int64
	Data      synth.Config
	// FP16 trains with half-precision linear weights (fp32 masters; see
	// nn.Model.SetFP16Weights). Requires the GEMM engine.
	FP16 bool
	// MBSExec runs the GN+MBS training on the grouped cache-resident
	// executor (nn.PlanMBS/SetMBSPlan) instead of the layer-by-layer path.
	MBSExec bool
	// MBSBudget is the executor's cache budget in bytes (0 = autodetect
	// from the CPU cache topology).
	MBSBudget int64
	// MBSPipeline enables the executor's double-buffered im2col prepacking.
	MBSPipeline bool
}

// DefaultFig6Config returns a laptop-scale configuration that exhibits the
// figure's qualitative behaviour in under a minute.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Epochs:    15,
		Batch:     32,
		SubBatch:  5,
		LR:        0.05,
		LRDecayAt: []int{8, 12},
		Seed:      1,
		Data:      synth.DefaultConfig(),
	}
}

// Fig6Curve is one training run's trajectory.
type Fig6Curve struct {
	Name string
	// ValError is the top-1 validation error per epoch (left panel).
	ValError []float64
	// FirstNormMean/LastNormMean are the pre-activation means of the first
	// and last normalization layers per epoch (right panels).
	FirstNormMean []float64
	LastNormMean  []float64
}

// Fig6Result holds both runs.
type Fig6Result struct {
	BN    Fig6Curve // conventional flow with batch normalization
	GNMBS Fig6Curve // MBS flow (serialized sub-batches) with group norm
}

// Fig6 trains the substitute classifier twice — once conventionally with
// BN, once under MBS serialization with GN — and reports the validation
// error curves plus the pre-activation means of the first and last
// normalization layers. Cancellation is checked between epochs (the natural
// consistent point of a training run): on cancel the partial curves trained
// so far are returned along with ctx's error, and nothing is rendered.
func Fig6(ctx context.Context, w io.Writer, cfg Fig6Config) (*Fig6Result, error) {
	data := synth.Generate(cfg.Data)
	train, val := data.Split(0.75)

	res := &Fig6Result{
		BN:    Fig6Curve{Name: "BN"},
		GNMBS: Fig6Curve{Name: "GN+MBS"},
	}
	runs := []struct {
		curve *Fig6Curve
		norm  nn.NormKind
		mbs   bool
	}{
		{&res.BN, nn.NormBatch, false},
		{&res.GNMBS, nn.NormGroup, true},
	}
	for _, run := range runs {
		rng := rand.New(rand.NewSource(cfg.Seed))
		m := nn.BuildSmallCNN(rng, cfg.Data.Channels, cfg.Data.Size, cfg.Data.Classes, run.norm, 8)
		if cfg.FP16 {
			m.SetFP16Weights(true)
		}
		if run.mbs && cfg.MBSExec {
			plan, err := m.PlanMBS(
				[]int{cfg.Batch, cfg.Data.Channels, cfg.Data.Size, cfg.Data.Size},
				nn.MBSPlanConfig{SubBatch: cfg.SubBatch, BudgetBytes: cfg.MBSBudget, Pipeline: cfg.MBSPipeline})
			if err != nil {
				return res, err
			}
			if err := m.SetMBSPlan(plan); err != nil {
				return res, err
			}
			if w != nil {
				fmt.Fprintln(w, plan.Summary())
				plan.WriteTable(w)
			}
			defer m.ClearMBSPlan()
		}
		opt := &nn.SGD{LR: cfg.LR, Momentum: 0.9, WeightDecay: 1e-4}
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			for _, d := range cfg.LRDecayAt {
				if epoch == d {
					opt.LR *= 0.1
				}
			}
			train.Shuffle(cfg.Seed + int64(epoch) + 100)
			for from := 0; from+cfg.Batch <= train.X.Shape[0]; from += cfg.Batch {
				x, labels := train.Batch(from, from+cfg.Batch)
				if run.mbs {
					m.TrainStepMBS(x, labels, cfg.SubBatch, opt)
				} else {
					m.TrainStepFull(x, labels, opt)
				}
			}
			acc := m.Evaluate(val.X, val.Labels)
			run.curve.ValError = append(run.curve.ValError, 1-acc)
			run.curve.FirstNormMean = append(run.curve.FirstNormMean, firstLastNormMeans(m, true))
			run.curve.LastNormMean = append(run.curve.LastNormMean, firstLastNormMeans(m, false))
		}
	}

	if w != nil {
		errBN := &report.Series{Name: "BN err"}
		errGN := &report.Series{Name: "GN+MBS err"}
		fBN := &report.Series{Name: "BN norm1"}
		fGN := &report.Series{Name: "GN norm1"}
		lBN := &report.Series{Name: "BN normL"}
		lGN := &report.Series{Name: "GN normL"}
		for i := range res.BN.ValError {
			x := float64(i + 1)
			errBN.Add(x, res.BN.ValError[i])
			errGN.Add(x, res.GNMBS.ValError[i])
			fBN.Add(x, res.BN.FirstNormMean[i])
			fGN.Add(x, res.GNMBS.FirstNormMean[i])
			lBN.Add(x, res.BN.LastNormMean[i])
			lGN.Add(x, res.GNMBS.LastNormMean[i])
		}
		fmt.Fprintln(w, "Fig. 6 (substitute): validation error, BN vs GN+MBS")
		report.RenderSeries(w, "epoch", errBN, errGN)
		fmt.Fprintln(w, "\nFig. 6 right panels: pre-activation means (first/last norm layer)")
		report.RenderSeries(w, "epoch", fBN, fGN, lBN, lGN)
		fmt.Fprintf(w, "\nfinal validation error: BN %.3f, GN+MBS %.3f\n",
			res.BN.ValError[len(res.BN.ValError)-1],
			res.GNMBS.ValError[len(res.GNMBS.ValError)-1])
	}
	return res, nil
}

// firstLastNormMeans runs a probe batch forward and reads the recorded
// pre-activation mean of the first (or last) normalization layer.
func firstLastNormMeans(m *nn.Model, first bool) float64 {
	norms := m.NormLayers()
	if len(norms) == 0 {
		return 0
	}
	if first {
		return nn.PreActMean(norms[0])
	}
	return nn.PreActMean(norms[len(norms)-1])
}
