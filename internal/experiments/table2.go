package experiments

import (
	"fmt"
	"io"

	"repro/internal/energy"
	"repro/internal/report"
)

// Table2Row is one accelerator column of the paper's Tab. 2.
type Table2Row struct {
	Name       string
	TechNM     string
	DieAreaMM2 string
	ClockGHz   string
	TOPS       string
	PeakW      string
	BuffersMiB string
}

// Table2 is the engine-backed form of the package-level Table2. The table
// is pure arithmetic over the area model, so no cells are scheduled; the
// method exists so a Runner covers the complete mbsim -all suite.
func (r Runner) Table2(w io.Writer) []Table2Row { return Table2(w) }

// Table2 reproduces the accelerator comparison table. The V100/TPU columns
// are the published figures the paper cites; the WaveCore column is
// computed from the area/power model.
func Table2(w io.Writer) []Table2Row {
	a := energy.DefaultAreaModel()
	rows := []Table2Row{
		{"V100", "12 FFN", "812", "1.53", "125 (FP16)", "250", "33"},
		{"TPU v1", "28", "<=331", "0.7", "92 (INT8)", "43", "24"},
		{"TPU v2", "N/A", "N/A", "0.7", "45 (FP16)", "N/A", "N/A"},
		{
			"WaveCore", "32",
			fmt.Sprintf("%.1f", a.TotalMM2()),
			"0.7",
			fmt.Sprintf("%.0f (FP16)", a.TOPS()),
			fmt.Sprintf("%.0f", a.PeakPowerWatts()),
			"20 (2x10)",
		},
	}
	if w != nil {
		t := report.NewTable("Tab. 2: accelerator specification comparison",
			"accelerator", "tech (nm)", "die area (mm2)", "clock (GHz)",
			"TOPS/die", "peak power (W)", "on-chip buffers (MiB)")
		for _, r := range rows {
			t.RowF(r.Name, r.TechNM, r.DieAreaMM2, r.ClockGHz, r.TOPS, r.PeakW, r.BuffersMiB)
		}
		t.Render(w)
		fmt.Fprintf(w, "WaveCore breakdown per core: PE array %.2f mm2, global buffer %.2f mm2, vector units %.2f mm2\n",
			a.PEArrayMM2(), a.GlobalBufMM2, a.VectorMM2)
	}
	return rows
}
