package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/models"
	"repro/internal/sweep"
)

// ParamError reports invalid scenario parameters: the caller's input is at
// fault, as opposed to an execution failure. The HTTP layers map it to 422
// Unprocessable Entity.
type ParamError struct {
	Scenario string
	Msg      string
}

func (e *ParamError) Error() string { return e.Msg }

// paramErrf builds a ParamError for the named scenario.
func paramErrf(scenario, format string, args ...any) *ParamError {
	return &ParamError{Scenario: scenario, Msg: fmt.Sprintf(format, args...)}
}

// ParamSpec describes one typed scenario parameter. Enum, when non-empty,
// lists the accepted values (matched case-insensitively by the run
// functions); Type is "string", "int" or "list" (comma-separated values).
type ParamSpec struct {
	Name        string   `json:"name"`
	Type        string   `json:"type"`
	Default     string   `json:"default"`
	Description string   `json:"description"`
	Enum        []string `json:"enum,omitempty"`
}

// Params carries scenario arguments as name -> value strings; Scenario.Run
// validates names and types against the scenario's specs and fills defaults.
type Params map[string]string

// Int parses the named parameter as an integer.
func (p Params) Int(name string) (int, error) {
	v, err := strconv.Atoi(p[name])
	if err != nil {
		return 0, fmt.Errorf("param %s: %q is not an integer", name, p[name])
	}
	return v, nil
}

// List splits the named comma-separated parameter, dropping empty entries.
func (p Params) List(name string) []string {
	var out []string
	for _, v := range strings.Split(p[name], ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// Scenario is one named, parameterized experiment: every figure, table and
// custom sweep of the evaluation is a registry entry producing structured
// rows. Run renders the paper-style text to w when w is non-nil and always
// returns the structured series; JSONValue wraps that series into the exact
// value `mbsim -json` marshals, which the mbsd service reuses so HTTP
// responses are byte-identical to the CLI.
type Scenario struct {
	Name        string
	Description string
	Params      []ParamSpec

	// bareJSON scenarios marshal their data unwrapped ("all" is already a
	// section map; "single" keeps its historical three-key shape).
	bareJSON bool
	run      func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error)
}

// Run validates p against the scenario's parameter specs, fills defaults,
// and executes the scenario on r, rendering text to w when non-nil. The
// context flows into the sweep engine: cancelling it aborts the run promptly
// (parameter errors are *ParamError; cancellations return ctx's error).
func (s *Scenario) Run(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
	resolved, err := s.resolve(p)
	if err != nil {
		return nil, err
	}
	return s.run(ctx, r, resolved, w)
}

// Validate checks p against the scenario's parameter specs without running
// anything — the submit path of the async jobs API vets requests up front so
// invalid jobs are rejected synchronously.
func (s *Scenario) Validate(p Params) error {
	_, err := s.resolve(p)
	return err
}

// JSONValue returns the value to marshal for -json / HTTP responses.
func (s *Scenario) JSONValue(data any) any {
	if s.bareJSON {
		return data
	}
	return map[string]any{s.Name: data}
}

// Info is the serializable registry entry served by /v1/scenarios and
// printed by `mbsim -list`.
type Info struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Params      []ParamSpec `json:"params,omitempty"`
}

// Info returns the scenario's serializable description.
func (s *Scenario) Info() Info {
	return Info{Name: s.Name, Description: s.Description, Params: s.Params}
}

// resolve applies defaults and rejects unknown names, non-integer values
// for int-typed params, and values outside a spec's enum — untrusted HTTP
// input is fully validated here, before any run function executes.
func (s *Scenario) resolve(p Params) (Params, error) {
	out := make(Params, len(s.Params))
	for _, spec := range s.Params {
		out[spec.Name] = spec.Default
	}
	for k, v := range p {
		spec := s.spec(k)
		if spec == nil {
			return nil, paramErrf(s.Name, "scenario %s: unknown param %q (have: %s)",
				s.Name, k, strings.Join(s.paramNames(), ", "))
		}
		if v == "" {
			continue // empty means "use the default" (e.g. -sweep network with no -network)
		}
		if spec.Type == "int" {
			if _, err := strconv.Atoi(v); err != nil {
				return nil, paramErrf(s.Name, "scenario %s: param %s: %q is not an integer", s.Name, k, v)
			}
		}
		if len(spec.Enum) > 0 {
			values := []string{v}
			if spec.Type == "list" {
				values = Params{spec.Name: v}.List(spec.Name)
			}
			for _, val := range values {
				if !inEnum(spec.Enum, val) {
					return nil, paramErrf(s.Name, "scenario %s: param %s: unknown value %q (have %s)",
						s.Name, k, val, strings.Join(spec.Enum, ", "))
				}
			}
		}
		out[k] = v
	}
	return out, nil
}

// inEnum matches case-insensitively, as the run functions do.
func inEnum(enum []string, v string) bool {
	for _, e := range enum {
		if strings.EqualFold(e, v) {
			return true
		}
	}
	return false
}

func (s *Scenario) spec(name string) *ParamSpec {
	for i := range s.Params {
		if s.Params[i].Name == name {
			return &s.Params[i]
		}
	}
	return nil
}

func (s *Scenario) paramNames() []string {
	names := make([]string, len(s.Params))
	for i, spec := range s.Params {
		names[i] = spec.Name
	}
	return names
}

// configNames lists the execution configurations for enum specs.
func configNames() []string {
	names := make([]string, len(core.Configs))
	for i, c := range core.Configs {
		names[i] = c.String()
	}
	return names
}

// memoryNames lists the DRAM technologies for enum specs.
func memoryNames() []string {
	names := make([]string, len(memsys.Memories))
	for i, m := range memsys.Memories {
		names[i] = m.Name
	}
	return names
}

// ConfigByName resolves an execution configuration case-insensitively.
func ConfigByName(name string) (core.Config, error) {
	for _, c := range core.Configs {
		if strings.EqualFold(c.String(), name) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown config %q (have %s)", name, strings.Join(configNames(), ", "))
}

// cellParams are the fixed-value specs shared by the single and sweep
// scenarios; they mirror the mbsim flags they replaced.
func cellParams(defaultNetwork string) []ParamSpec {
	return []ParamSpec{
		{Name: "network", Type: "string", Default: defaultNetwork,
			Description: "network to simulate", Enum: models.Names()},
		{Name: "config", Type: "string", Default: "MBS2",
			Description: "execution configuration", Enum: configNames()},
		{Name: "memory", Type: "string", Default: "HBM2",
			Description: "DRAM technology", Enum: memoryNames()},
		{Name: "batch", Type: "int", Default: "0",
			Description: "per-core mini-batch (0 = network default)"},
		{Name: "buffer", Type: "int", Default: "0",
			Description: "global buffer MiB (0 = 10 MiB default)"},
	}
}

// cellFromParams builds the sweep cell a single/sweep scenario's fixed
// params describe.
func cellFromParams(p Params) (sweep.Cell, error) {
	cfg, err := ConfigByName(p["config"])
	if err != nil {
		return sweep.Cell{}, err
	}
	mem, err := memsys.ByName(p["memory"])
	if err != nil {
		return sweep.Cell{}, err
	}
	batch, err := p.Int("batch")
	if err != nil {
		return sweep.Cell{}, err
	}
	bufMiB, err := p.Int("buffer")
	if err != nil {
		return sweep.Cell{}, err
	}
	return sweep.Cell{
		Network: p["network"], Config: cfg, Memory: mem,
		Batch: batch, BufferBytes: int64(bufMiB) << 20,
	}, nil
}

// suiteNames is the `mbsim -all` section order (paper order); the golden
// "all" output and the bare JSON section map are both derived from it.
var suiteNames = []string{"fig10", "fig11", "fig12", "fig13", "fig14", "table2"}

// registry is the ordered scenario list. Order is presentation order for
// -list and /v1/scenarios. It is populated in init (the "all" scenario's
// closure calls Lookup, which a composite-literal initializer would report
// as an initialization cycle).
var registry []*Scenario

func init() {
	registry = []*Scenario{
		{
			Name:        "fig3",
			Description: "ResNet-50 per-layer footprint profile (Fig. 3)",
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				return r.Fig3(ctx, w)
			},
		},
		{
			Name:        "fig4",
			Description: "ResNet-50 per-block data, minimal iterations, MBS grouping (Fig. 4)",
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				return r.Fig4(ctx, w)
			},
		},
		{
			Name:        "fig5",
			Description: "concrete MBS1/MBS2 schedules for one network (Fig. 5)",
			Params: []ParamSpec{{Name: "network", Type: "string", Default: "resnet50",
				Description: "network to schedule", Enum: models.Names()}},
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				scheds, err := r.Fig5(ctx, w, p["network"])
				if err != nil {
					return nil, err
				}
				// Schedules render as strings for JSON: the struct graph is
				// cyclic (Schedule -> Network) and the text form is the figure.
				out := make([]string, len(scheds))
				for i, s := range scheds {
					out[i] = s.String()
				}
				return out, nil
			},
		},
		{
			Name:        "fig10",
			Description: "per-step time, energy and DRAM traffic across configurations (Fig. 10)",
			Params: []ParamSpec{{Name: "networks", Type: "list", Default: "",
				Description: "comma-separated networks (empty = all six)"}},
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				return r.Fig10(ctx, w, p.List("networks")...)
			},
		},
		{
			Name:        "fig11",
			Description: "ResNet-50 sensitivity to global buffer size (Fig. 11)",
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				return r.Fig11(ctx, w)
			},
		},
		{
			Name:        "fig12",
			Description: "ResNet-50 memory-type sensitivity and time breakdown (Fig. 12)",
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				return r.Fig12(ctx, w)
			},
		},
		{
			Name:        "fig13",
			Description: "NVIDIA V100 vs WaveCore+MBS2 per-step training time (Fig. 13)",
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				return r.Fig13(ctx, w)
			},
		},
		{
			Name:        "fig14",
			Description: "systolic array utilization with unlimited DRAM bandwidth (Fig. 14)",
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				return r.Fig14(ctx, w)
			},
		},
		{
			Name:        "table2",
			Description: "accelerator specification comparison (Tab. 2)",
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				return r.Table2(w), nil
			},
		},
		{
			Name:        "all",
			Description: "the full simulator suite: Figs. 10-14 and Tab. 2 in paper order",
			bareJSON:    true,
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				out := make(map[string]any, len(suiteNames))
				for i, name := range suiteNames {
					s, _ := Lookup(name)
					if w != nil && i > 0 {
						fmt.Fprintln(w)
					}
					data, err := s.Run(ctx, r, nil, w)
					if err != nil {
						return nil, err
					}
					out[name] = data
				}
				return out, nil
			},
		},
		{
			Name:        "single",
			Description: "simulate one (network, config, memory, batch, buffer) cell",
			Params:      cellParams("resnet50"),
			bareJSON:    true,
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				cell, err := cellFromParams(p)
				if err != nil {
					return nil, err
				}
				res, err := r.E.Simulate(ctx, cell)
				if err != nil {
					return nil, err
				}
				if w != nil {
					fmt.Fprintln(w, res)
					fmt.Fprintln(w, "breakdown:", res.BreakdownString())
					fmt.Fprintf(w, "energy: DRAM %.3f J, GB %.3f J, compute %.3f J, vector %.3f J, static %.3f J (DRAM share %.1f%%)\n",
						res.Energy.DRAM, res.Energy.GB, res.Energy.Compute, res.Energy.Vector, res.Energy.Static,
						100*res.Energy.DRAMFraction())
				}
				return map[string]any{
					"result":                  sweep.RowOf(cell, res),
					"time_by_class_seconds":   res.TimeByClass,
					"energy_breakdown_joules": res.Energy,
				}, nil
			},
		},
		{
			Name:        "sweep",
			Description: "custom grid over any subset of the experiment axes",
			Params: append([]ParamSpec{{Name: "axes", Type: "list", Default: "buffer",
				Description: "axes to sweep", Enum: []string{"network", "config", "memory", "batch", "buffer"}}},
				cellParams("resnet50")...),
			run: func(ctx context.Context, r Runner, p Params, w io.Writer) (any, error) {
				cells, axes, err := sweepGrid(p)
				if err != nil {
					return nil, err
				}
				results, err := r.E.SimulateGrid(ctx, cells)
				if err != nil {
					return nil, err
				}
				rows := sweep.Rows(cells, results)
				if w != nil {
					sweep.RenderRows(w, fmt.Sprintf("Sweep over %s (%d cells)",
						strings.Join(axes, ","), len(cells)), rows)
				}
				return rows, nil
			},
		},
	}
}

// sweepGrid builds the cell list for resolved sweep params: the fixed cell
// from the single-cell params, with each swept axis replaced by its default
// range. Cell order is the deterministic grid order — everything that
// splits or re-executes sweep work by index ranges depends on it.
func sweepGrid(p Params) ([]sweep.Cell, []string, error) {
	cell, err := cellFromParams(p)
	if err != nil {
		return nil, nil, err
	}
	grid := sweep.Grid{
		Networks: []string{cell.Network},
		Configs:  []core.Config{cell.Config},
		Memories: []memsys.DRAM{cell.Memory},
		Batches:  []int{cell.Batch},
		Buffers:  []int64{cell.BufferBytes},
	}
	axes := p.List("axes")
	for _, axis := range axes {
		switch axis {
		case "network":
			grid.Networks = DeepCNNs
		case "config":
			grid.Configs = core.Configs
		case "memory":
			grid.Memories = memsys.Memories
		case "batch":
			grid.Batches = []int{16, 32, 64}
		case "buffer":
			grid.Buffers = []int64{5 << 20, 10 << 20, 20 << 20, 30 << 20, 40 << 20}
		default:
			return nil, nil, paramErrf("sweep", "unknown sweep axis %q (have network, config, memory, batch, buffer)", axis)
		}
	}
	if len(axes) == 0 {
		return nil, nil, paramErrf("sweep", "sweep needs at least one axis")
	}
	if len(grid.Networks) == 1 && grid.Networks[0] == "" {
		return nil, nil, paramErrf("sweep", "sweep needs a network param or the network axis")
	}
	return grid.Cells(), axes, nil
}

// SweepCells resolves p against the sweep scenario and returns its cell
// list in grid order. The async job layer plans shards as index ranges
// over exactly this slice, and shard executors re-derive it — both sides
// rely on the order being a pure function of the params.
func SweepCells(p Params) ([]sweep.Cell, error) {
	s, ok := Lookup("sweep")
	if !ok {
		return nil, fmt.Errorf("sweep scenario not registered")
	}
	resolved, err := s.resolve(p)
	if err != nil {
		return nil, err
	}
	cells, _, err := sweepGrid(resolved)
	return cells, err
}

// Scenarios returns the registry in presentation order.
func Scenarios() []*Scenario { return registry }

// Lookup finds a scenario by name.
func Lookup(name string) (*Scenario, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Names returns the registered scenario names in order.
func Names() []string {
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = s.Name
	}
	return names
}

// Infos returns the serializable registry listing (sorted copy not needed —
// registry order is already deterministic).
func Infos() []Info {
	infos := make([]Info, len(registry))
	for i, s := range registry {
		infos[i] = s.Info()
	}
	return infos
}

// All regenerates the full suite, sections separated by blank lines —
// exactly as `mbsim -all` prints it.
func (r Runner) All(ctx context.Context, w io.Writer) error {
	s, _ := Lookup("all")
	_, err := s.Run(ctx, r, nil, w)
	return err
}

func init() {
	// The registry is append-only data; a duplicate name is a programming
	// error caught at package load, not at request time.
	seen := make(map[string]bool, len(registry))
	for _, s := range registry {
		if seen[s.Name] {
			panic("experiments: duplicate scenario " + s.Name)
		}
		seen[s.Name] = true
	}
	for _, name := range suiteNames {
		if !seen[name] {
			panic("experiments: suite scenario not registered: " + name)
		}
	}
}
