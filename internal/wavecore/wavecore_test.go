package wavecore

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGEMMDimsTab1(t *testing.T) {
	// Tab. 1: conv 3x3, Ci=64, Co=128, 56x56 -> 56x56, N=8.
	l := graph.NewConvSquare("c", graph.Shape{C: 64, H: 56, W: 56}, 128, 3, 1, 1)
	n := 8

	f, ok := ForwardGEMM(l, n)
	if !ok || f.Gh != int64(8*56*56) || f.Gw != 128 || f.K != int64(64*9) {
		t.Errorf("forward = %v, want [25088 x 128 x 576]", f)
	}
	d, ok := DataGradGEMM(l, n)
	if !ok || d.Gh != int64(8*56*56) || d.Gw != 64 || d.K != int64(128*9) {
		t.Errorf("data grad = %v, want [25088 x 64 x 1152]", d)
	}
	w, ok := WeightGradGEMM(l, n)
	if !ok || w.Gh != int64(64*9) || w.Gw != 128 || w.K != int64(8*56*56) {
		t.Errorf("weight grad = %v, want [576 x 128 x 25088]", w)
	}

	// All three GEMMs perform the same MAC count (same convolution).
	if f.MACs() != d.MACs() || f.MACs() != w.MACs() {
		t.Errorf("MAC counts differ: %d %d %d", f.MACs(), d.MACs(), w.MACs())
	}
}

func TestGEMMDimsFC(t *testing.T) {
	l := graph.NewFC("f", graph.Shape{C: 2048, H: 1, W: 1}, 1000)
	f, _ := ForwardGEMM(l, 32)
	if f.Gh != 32 || f.Gw != 1000 || f.K != 2048 {
		t.Errorf("fc forward = %v", f)
	}
	w, _ := WeightGradGEMM(l, 32)
	if w.Gh != 2048 || w.Gw != 1000 || w.K != 32 {
		t.Errorf("fc wgrad = %v", w)
	}
}

func TestNonGEMMLayersRejected(t *testing.T) {
	p := graph.NewPool("p", graph.Shape{C: 64, H: 56, W: 56}, graph.MaxPool, 2, 2, 0)
	if _, ok := ForwardGEMM(p, 4); ok {
		t.Error("pool must not produce a GEMM")
	}
	if _, ok := DataGradGEMM(p, 4); ok {
		t.Error("pool must not produce a data-grad GEMM")
	}
	if _, ok := WeightGradGEMM(p, 4); ok {
		t.Error("pool must not produce a weight-grad GEMM")
	}
}

func TestDoubleBufferingRemovesWaveGaps(t *testing.T) {
	db := DefaultConfig(true)
	nb := DefaultConfig(false)
	g := GEMM{Gh: 8192, Gw: 256, K: 2304} // 18 waves per tile

	cdb := db.GEMMCost(g)
	cnb := nb.GEMMCost(g)
	if cdb.MACs != cnb.MACs {
		t.Fatal("MAC counts must not depend on buffering")
	}
	if cdb.Cycles >= cnb.Cycles {
		t.Errorf("double buffering must reduce cycles (%d vs %d)", cdb.Cycles, cnb.Cycles)
	}
	// The asymptotic penalty of the conventional array is k extra cycles
	// per m streamed rows: ratio -> (k+m)/m = 1.5 for k=128, m=256.
	ratio := float64(cnb.Cycles) / float64(cdb.Cycles)
	if ratio < 1.3 || ratio > 1.6 {
		t.Errorf("idle-time ratio = %.2f, want ~1.5", ratio)
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := DefaultConfig(true)
	f := func(gh, gw, k uint16) bool {
		g := GEMM{Gh: int64(gh%4096) + 1, Gw: int64(gw%2048) + 1, K: int64(k%4096) + 1}
		c := cfg.GEMMCost(g)
		u := c.Utilization(cfg)
		return u > 0 && u <= 1.0 && c.Cycles > 0 && c.MACs == g.MACs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLargeGEMMNearFullUtilization(t *testing.T) {
	cfg := DefaultConfig(true)
	g := GEMM{Gh: 1 << 16, Gw: 1024, K: 4096}
	u := cfg.GEMMCost(g).Utilization(cfg)
	if u < 0.95 {
		t.Errorf("large GEMM utilization = %.3f, want > 0.95", u)
	}
}

func TestNarrowGEMMColumnPacking(t *testing.T) {
	cfg := DefaultConfig(true)
	// Gw=64 packs two row-tiles side by side: utilization should be about
	// half of a Gw=128 GEMM of equal work, not a quarter.
	narrow := GEMM{Gh: 1 << 15, Gw: 64, K: 128}
	wide := GEMM{Gh: 1 << 15, Gw: 128, K: 128}
	un := cfg.GEMMCost(narrow).Utilization(cfg)
	uw := cfg.GEMMCost(wide).Utilization(cfg)
	if un < 0.40*uw {
		t.Errorf("narrow GEMM util %.3f too low vs wide %.3f: packing broken", un, uw)
	}
	// And the narrow GEMM should take about half the cycles (half the work
	// at the same packed throughput).
	cn := cfg.GEMMCost(narrow).Cycles
	cw := cfg.GEMMCost(wide).Cycles
	if r := float64(cn) / float64(cw); r < 0.4 || r > 0.7 {
		t.Errorf("narrow/wide cycle ratio = %.2f, want ~0.5", r)
	}
}

func TestShallowKUnderutilizes(t *testing.T) {
	// K below the array height cannot be packed (shared accumulation
	// chains) — the Fig. 14 early-layer effect.
	cfg := DefaultConfig(true)
	shallow := GEMM{Gh: 1 << 15, Gw: 128, K: 64}
	deep := GEMM{Gh: 1 << 15, Gw: 128, K: 128}
	us := cfg.GEMMCost(shallow).Utilization(cfg)
	ud := cfg.GEMMCost(deep).Utilization(cfg)
	if us > 0.6*ud {
		t.Errorf("shallow-K util %.3f should be ~half of %.3f", us, ud)
	}
}

func TestCyclesMonotoneInWork(t *testing.T) {
	cfg := DefaultConfig(true)
	base := GEMM{Gh: 1000, Gw: 200, K: 300}
	c0 := cfg.GEMMCost(base).Cycles
	for _, g := range []GEMM{
		{Gh: 2000, Gw: 200, K: 300},
		{Gh: 1000, Gw: 400, K: 300},
		{Gh: 1000, Gw: 200, K: 600},
	} {
		if c := cfg.GEMMCost(g).Cycles; c < c0 {
			t.Errorf("cycles decreased when scaling %v: %d < %d", g, c, c0)
		}
	}
}

func TestStreamedRows(t *testing.T) {
	cases := []struct {
		gh, m, pack  int64
		wantB, wantR int64
	}{
		{1024, 256, 1, 4, 1024}, // exact tiles
		{1025, 256, 1, 5, 1025}, // remainder alone
		{1024, 256, 2, 2, 512},  // packed pairs
		{1025, 256, 2, 3, 513},  // 2 packed full batches + lone 1-row remainder
		{100, 256, 4, 1, 100},   // single short tile
		{700, 256, 2, 2, 444},   // one packed pair (256) + lone remainder (188)
	}
	for _, c := range cases {
		b, r := streamedRows(c.gh, c.m, c.pack)
		if b != c.wantB || r != c.wantR {
			t.Errorf("streamedRows(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.gh, c.m, c.pack, b, r, c.wantB, c.wantR)
		}
	}
}

func TestStreamedRowsCoverGh(t *testing.T) {
	f := func(gh uint16, pack uint8) bool {
		g := int64(gh) + 1
		p := int64(pack%8) + 1
		b, r := streamedRows(g, 256, p)
		// Streamed rows must cover the tallest member of each batch, hence
		// at least ceil(gh/(256*pack)) batches and rows >= gh/pack.
		return b >= 1 && r >= (g+p-1)/p && r <= g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroGEMM(t *testing.T) {
	cfg := DefaultConfig(true)
	if c := cfg.GEMMCost(GEMM{}); c.Cycles != 0 || c.MACs != 0 {
		t.Errorf("empty GEMM cost = %+v, want zero", c)
	}
}

func TestVectorUnit(t *testing.T) {
	v := DefaultVectorUnit()
	if v.OpsPerSecond() <= 0 {
		t.Fatal("vector throughput must be positive")
	}
	if v.Seconds(0) != 0 {
		t.Error("zero ops must take zero time")
	}
	if v.Seconds(int64(v.OpsPerSecond())) < 0.99 {
		t.Error("one second of ops should take ~1s")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(true).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := Config{Rows: 0, Cols: 128, TileM: 256, ClockHz: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero rows should fail validation")
	}
}

func TestSeconds(t *testing.T) {
	cfg := DefaultConfig(true)
	if got := cfg.Seconds(700_000_000); got < 0.999 || got > 1.001 {
		t.Errorf("0.7e9 cycles at 0.7GHz = %f s, want 1", got)
	}
}
