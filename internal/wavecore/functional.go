package wavecore

import (
	"fmt"
)

// FunctionalArray is a cycle-stepped functional simulator of the WaveCore
// systolic core (Fig. 7/8): a k x n grid of PEs with weight-stationary
// dataflow, per-PE shadow weight registers for double buffering, a per-PE
// wave-select bit that travels with the inputs, and column accumulators at
// the array's bottom edge.
//
// It exists to validate the analytical cost model (Config.GEMMCost) against
// an implementation that actually moves data: it computes real matrix
// products, reproduces the weight shift-in bubble of the conventional
// array, and demonstrates that the double-buffered array eliminates it.
type FunctionalArray struct {
	cfg Config

	// weights[s][r][c] holds the two weight register sets per PE
	// (s = register select).
	weights [2][][]float64
	// aPipe[r] is the value travelling rightwards into column 0..n-1 at
	// row r; the functional model propagates a whole row per cycle, which
	// matches the skewed-systolic timing because every row's partial sum
	// moves down in lockstep.
	partial [][]float64

	// Cycles counts array-occupied cycles, split by cause.
	Cycles      int64
	StallCycles int64 // weight shift-in bubbles (conventional array only)
	MACs        int64
}

// NewFunctionalArray builds a functional simulator for the configuration.
func NewFunctionalArray(cfg Config) (*FunctionalArray, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &FunctionalArray{cfg: cfg}
	for s := 0; s < 2; s++ {
		f.weights[s] = make([][]float64, cfg.Rows)
		for r := range f.weights[s] {
			f.weights[s][r] = make([]float64, cfg.Cols)
		}
	}
	return f, nil
}

// loadWeights shifts a k x n weight block into register set s. On the
// conventional array this costs k stall cycles (one row shifted down per
// cycle, no arithmetic); with double buffering the load overlaps compute
// and is free on the timeline.
func (f *FunctionalArray) loadWeights(s int, block [][]float64, overlap bool) {
	for r := 0; r < f.cfg.Rows; r++ {
		for c := 0; c < f.cfg.Cols; c++ {
			v := 0.0
			if r < len(block) && c < len(block[r]) {
				v = block[r][c]
			}
			f.weights[s][r][c] = v
		}
	}
	if !overlap {
		f.Cycles += int64(f.cfg.Rows)
		f.StallCycles += int64(f.cfg.Rows)
	}
}

// streamRows pushes mh rows of the A block through the array against
// weight register set s, accumulating into out[row][col]. One row enters
// per cycle (the systolic skew means a row's worth of MACs completes per
// cycle once the pipeline is full; fill and drain are charged once per GEMM
// by Run, exactly as in the analytical model).
func (f *FunctionalArray) streamRows(s int, a [][]float64, out [][]float64) {
	for _, row := range a {
		cols := f.cfg.Cols
		if len(out) > 0 && len(out[0]) < cols {
			cols = len(out[0]) // edge tile narrower than the array
		}
		for c := 0; c < cols; c++ {
			var acc float64
			for r := 0; r < f.cfg.Rows && r < len(row); r++ {
				w := f.weights[s][r][c]
				// Zero-operand skip: the PE gates its multiplier, but the
				// cycle still elapses (energy, not time, is saved).
				if row[r] == 0 || w == 0 {
					continue
				}
				acc += row[r] * w
				f.MACs++
			}
			out[0][c] += acc
		}
		out = out[1:]
		f.Cycles++
	}
}

// Run executes C = A[Gh x K] · B[K x Gw] on the functional array and
// returns the result. The GEMM is blocked exactly like the analytical
// model: TileM x Cols output tiles, ceil(K/k) waves per tile, weight blocks
// loaded per wave (double-buffered arrays preload the next wave's block
// while the current one computes).
func (f *FunctionalArray) Run(a, b [][]float64) ([][]float64, error) {
	gh := int64(len(a))
	if gh == 0 {
		return nil, fmt.Errorf("wavecore: empty A")
	}
	k := int64(len(a[0]))
	if int64(len(b)) != k {
		return nil, fmt.Errorf("wavecore: inner dims %d vs %d", k, len(b))
	}
	gw := int64(len(b[0]))

	out := make([][]float64, gh)
	for i := range out {
		out[i] = make([]float64, gw)
	}

	kk := int64(f.cfg.Rows)
	m := int64(f.cfg.TileM)
	waves := ceilDiv64(k, kk)
	firstLoad := true

	// Initial pipeline fill. On the conventional array the first wave's
	// weight shift-in *is* the fill, so only the double-buffered array
	// charges it separately (its loads otherwise overlap compute).
	if f.cfg.DoubleBuffered {
		f.Cycles += int64(f.cfg.Rows)
	}

	for tw := int64(0); tw < gw; tw += int64(f.cfg.Cols) {
		cols := min64(int64(f.cfg.Cols), gw-tw)
		for th := int64(0); th < gh; th += m {
			rows := min64(m, gh-th)
			sel := 0
			for wv := int64(0); wv < waves; wv++ {
				kFrom := wv * kk
				kTo := min64(kFrom+kk, k)

				// Extract the wave's weight block B[kFrom:kTo, tw:tw+cols].
				block := make([][]float64, kTo-kFrom)
				for r := range block {
					block[r] = b[kFrom+int64(r)][tw : tw+cols]
				}
				// Double-buffered arrays hide every load after the first;
				// the conventional array stalls k cycles per wave.
				overlap := f.cfg.DoubleBuffered && !firstLoad
				f.loadWeights(sel, block, overlap)
				firstLoad = false

				// Extract the wave's A slice rows [th:th+rows, kFrom:kTo]
				// and stream them through.
				aSlice := make([][]float64, rows)
				for r := range aSlice {
					aSlice[r] = a[th+int64(r)][kFrom:kTo]
				}
				outSlice := make([][]float64, rows)
				for r := range outSlice {
					outSlice[r] = out[th+int64(r)][tw : tw+cols]
				}
				f.streamRows(sel, aSlice, outSlice)
				sel = 1 - sel
			}
		}
	}

	// Final drain through the array width.
	f.Cycles += int64(f.cfg.Cols)
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
