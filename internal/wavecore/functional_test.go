package wavecore

import (
	"math"
	"math/rand"
	"testing"
)

// randMat builds an m x n matrix with ~sparsity fraction of zeros.
func randMat(rng *rand.Rand, m, n int, sparsity float64) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if rng.Float64() >= sparsity {
				out[i][j] = rng.NormFloat64()
			}
		}
	}
	return out
}

// refMatMul is the ground-truth product.
func refMatMul(a, b [][]float64) [][]float64 {
	m, k, n := len(a), len(b), len(b[0])
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, n)
		for p := 0; p < k; p++ {
			if a[i][p] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[i][j] += a[i][p] * b[p][j]
			}
		}
	}
	return out
}

// smallConfig keeps functional runs fast.
func smallConfig(db bool) Config {
	return Config{Rows: 8, Cols: 8, TileM: 16, ClockHz: 1e9, DoubleBuffered: db}
}

func TestFunctionalArrayComputesGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		gh := rng.Intn(40) + 1
		k := rng.Intn(30) + 1
		gw := rng.Intn(20) + 1
		a := randMat(rng, gh, k, 0.2)
		b := randMat(rng, k, gw, 0.2)
		for _, db := range []bool{true, false} {
			f, err := NewFunctionalArray(smallConfig(db))
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.Run(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := refMatMul(a, b)
			for i := range want {
				for j := range want[i] {
					if math.Abs(got[i][j]-want[i][j]) > 1e-9 {
						t.Fatalf("trial %d db=%v: C[%d][%d] = %g, want %g",
							trial, db, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

func TestFunctionalDoubleBufferingRemovesStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 64, 32, 0)
	b := randMat(rng, 32, 16, 0)

	fdb, _ := NewFunctionalArray(smallConfig(true))
	fnb, _ := NewFunctionalArray(smallConfig(false))
	if _, err := fdb.Run(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := fnb.Run(a, b); err != nil {
		t.Fatal(err)
	}
	// The double-buffered array pays exactly one weight load; the
	// conventional one pays one per wave per tile.
	if fdb.StallCycles != int64(smallConfig(true).Rows) {
		t.Errorf("double-buffered stalls = %d, want one initial load (%d)",
			fdb.StallCycles, smallConfig(true).Rows)
	}
	if fnb.StallCycles <= fdb.StallCycles {
		t.Errorf("conventional array should stall more (%d vs %d)",
			fnb.StallCycles, fdb.StallCycles)
	}
	if fdb.Cycles >= fnb.Cycles {
		t.Errorf("double buffering should save cycles (%d vs %d)", fdb.Cycles, fnb.Cycles)
	}
	// Both perform the same useful work.
	if fdb.MACs != fnb.MACs {
		t.Errorf("MACs differ: %d vs %d", fdb.MACs, fnb.MACs)
	}
}

func TestFunctionalMatchesAnalyticalCycles(t *testing.T) {
	// The analytical model and the functional simulator must agree on the
	// streaming cycles (the functional model charges one initial fill and
	// one drain per GEMM, the analytical model additionally models column
	// packing, which the functional grid does not implement — so compare
	// on a GEMM that is at least as wide as the array).
	rng := rand.New(rand.NewSource(3))
	cfg := smallConfig(true)
	gh, k, gw := 48, 24, 8 // gw == Cols: no packing
	a := randMat(rng, gh, k, 0)
	b := randMat(rng, k, gw, 0)
	f, _ := NewFunctionalArray(cfg)
	if _, err := f.Run(a, b); err != nil {
		t.Fatal(err)
	}
	want := cfg.GEMMCost(GEMM{Gh: int64(gh), Gw: int64(gw), K: int64(k)})
	if f.Cycles != want.Cycles {
		t.Errorf("functional cycles = %d, analytical = %d", f.Cycles, want.Cycles)
	}
}

func TestFunctionalMatchesAnalyticalNoDB(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := smallConfig(false)
	gh, k, gw := 40, 20, 8
	a := randMat(rng, gh, k, 0)
	b := randMat(rng, k, gw, 0)
	f, _ := NewFunctionalArray(cfg)
	if _, err := f.Run(a, b); err != nil {
		t.Fatal(err)
	}
	want := cfg.GEMMCost(GEMM{Gh: int64(gh), Gw: int64(gw), K: int64(k)})
	if f.Cycles != want.Cycles {
		t.Errorf("functional cycles = %d, analytical = %d", f.Cycles, want.Cycles)
	}
}

func TestFunctionalZeroSkipCountsMACs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dense := randMat(rng, 32, 16, 0)
	sparse := randMat(rng, 32, 16, 0.5)
	b := randMat(rng, 16, 8, 0)

	fd, _ := NewFunctionalArray(smallConfig(true))
	fs, _ := NewFunctionalArray(smallConfig(true))
	if _, err := fd.Run(dense, b); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Run(sparse, b); err != nil {
		t.Fatal(err)
	}
	if fs.MACs >= fd.MACs {
		t.Errorf("sparse input should skip MACs (%d vs %d)", fs.MACs, fd.MACs)
	}
	// Zero-skip saves energy, not time.
	if fs.Cycles != fd.Cycles {
		t.Errorf("zero skip must not change cycles (%d vs %d)", fs.Cycles, fd.Cycles)
	}
}

func TestFunctionalRejectsBadShapes(t *testing.T) {
	f, _ := NewFunctionalArray(smallConfig(true))
	if _, err := f.Run(nil, nil); err == nil {
		t.Error("empty A should error")
	}
	a := randMat(rand.New(rand.NewSource(6)), 4, 3, 0)
	b := randMat(rand.New(rand.NewSource(7)), 5, 2, 0)
	if _, err := f.Run(a, b); err == nil {
		t.Error("mismatched inner dims should error")
	}
}

func TestNewFunctionalArrayValidates(t *testing.T) {
	if _, err := NewFunctionalArray(Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
}
