// Package wavecore models the WaveCore systolic-array training accelerator
// (Section 4 of the paper): im2col GEMM dimensioning (Tab. 1), output
// tiling, systolic wave pipelining with and without weight double buffering
// (Fig. 8), and the vector units that execute normalization, pooling and
// activation layers.
package wavecore

import (
	"fmt"

	"repro/internal/graph"
)

// Config describes one systolic core.
type Config struct {
	Rows int // PE array height (k); weights shift in along this dimension
	Cols int // PE array width (n); one output column per PE column
	// TileM is the A-block (input rows) per tile, m = local buffer size / k.
	// With the paper's 64 KiB A half-buffers of 16-bit words and k=128,
	// m = 64Ki/2/128 = 256.
	TileM int
	// ClockHz is the core clock (paper: 0.7 GHz).
	ClockHz float64
	// DoubleBuffered enables the per-PE second weight register that removes
	// the k-cycle inter-wave weight shift-in bubble (ArchOpt, Fig. 8).
	DoubleBuffered bool
}

// DefaultConfig returns the paper's 128x128 core at 0.7 GHz.
func DefaultConfig(doubleBuffered bool) Config {
	return Config{Rows: 128, Cols: 128, TileM: 256, ClockHz: 0.7e9, DoubleBuffered: doubleBuffered}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 || c.TileM <= 0 || c.ClockHz <= 0 {
		return fmt.Errorf("wavecore: invalid config %+v", c)
	}
	return nil
}

// PEs returns the processing-element count.
func (c Config) PEs() int64 { return int64(c.Rows) * int64(c.Cols) }

// GEMM is an im2col matrix multiply C[Gh×Gw] = A[Gh×K] · B[K×Gw].
type GEMM struct {
	Gh, Gw, K int64
}

// MACs returns the multiply-accumulate count of the GEMM.
func (g GEMM) MACs() int64 { return g.Gh * g.Gw * g.K }

func (g GEMM) String() string { return fmt.Sprintf("[%d x %d x %d]", g.Gh, g.Gw, g.K) }

// ForwardGEMM returns the im2col GEMM of a conv/FC forward pass for a
// sub-batch of n samples (Tab. 1 row 1): Gh = N·Ho·Wo, Gw = Co, K = Ci·R·S.
// ok is false for non-GEMM layers.
func ForwardGEMM(l *graph.Layer, n int) (g GEMM, ok bool) {
	switch l.Kind {
	case graph.Conv:
		return GEMM{
			Gh: int64(n) * int64(l.Out.H) * int64(l.Out.W),
			Gw: int64(l.Out.C),
			K:  int64(l.In.C) * int64(l.KH) * int64(l.KW),
		}, true
	case graph.FC:
		return GEMM{Gh: int64(n), Gw: int64(l.Out.C), K: l.In.Elems()}, true
	default:
		return GEMM{}, false
	}
}

// DataGradGEMM returns the data-gradient GEMM (Tab. 1 row 2):
// Gh = N·Hi·Wi, Gw = Ci, K = Co·R·S.
func DataGradGEMM(l *graph.Layer, n int) (g GEMM, ok bool) {
	switch l.Kind {
	case graph.Conv:
		return GEMM{
			Gh: int64(n) * int64(l.In.H) * int64(l.In.W),
			Gw: int64(l.In.C),
			K:  int64(l.Out.C) * int64(l.KH) * int64(l.KW),
		}, true
	case graph.FC:
		return GEMM{Gh: int64(n), Gw: l.In.Elems(), K: int64(l.Out.C)}, true
	default:
		return GEMM{}, false
	}
}

// WeightGradGEMM returns the weight-gradient GEMM (Tab. 1 row 3):
// Gh = Ci·R·S, Gw = Co, K = N·Ho·Wo.
func WeightGradGEMM(l *graph.Layer, n int) (g GEMM, ok bool) {
	switch l.Kind {
	case graph.Conv:
		return GEMM{
			Gh: int64(l.In.C) * int64(l.KH) * int64(l.KW),
			Gw: int64(l.Out.C),
			K:  int64(n) * int64(l.Out.H) * int64(l.Out.W),
		}, true
	case graph.FC:
		return GEMM{Gh: l.In.Elems(), Gw: int64(l.Out.C), K: int64(n)}, true
	default:
		return GEMM{}, false
	}
}

// Cost is the systolic execution cost of one or more GEMMs.
type Cost struct {
	Cycles int64 // array-occupied cycles
	MACs   int64 // useful multiply-accumulates
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.Cycles += o.Cycles
	c.MACs += o.MACs
}

// Utilization returns useful MACs over array capacity for the cost.
func (c Cost) Utilization(cfg Config) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.MACs) / (float64(c.Cycles) * float64(cfg.PEs()))
}

// Seconds converts cycles to time under the configuration's clock.
func (c Config) Seconds(cycles int64) float64 { return float64(cycles) / c.ClockHz }

// streamedRows returns, for a Gh-row output packed into batches of `pack`
// parallel row-tiles of height m, the number of batches and the total
// streamed A-rows (each batch streams for the duration of its tallest
// member; the remainder tile rides along with full tiles when it can).
func streamedRows(gh, m, pack int64) (batches, rows int64) {
	fullTiles := gh / m
	rem := gh % m
	switch {
	case rem == 0:
		batches = ceilDiv64(fullTiles, pack)
		rows = batches * m
	case fullTiles == 0:
		batches = 1
		rows = rem
	case fullTiles%pack == 0:
		batches = fullTiles/pack + 1
		rows = (batches-1)*m + rem
	default:
		batches = ceilDiv64(fullTiles, pack)
		rows = batches * m
	}
	return batches, rows
}

// GEMMCost returns the cycles and useful MACs to execute one GEMM. The
// output is blocked into TileM x Cols tiles (Fig. 7); each tile takes
// ceil(K/k) waves.
//
// When the GEMM is narrower than the array (Gw < Cols), the weight block is
// replicated across column groups and independent row-tiles stream through
// them concurrently, so narrow-but-tall GEMMs do not idle most of the
// array. Reduction depth that does not fill the array's rows (K < k) cannot
// be packed the same way — the column-wise accumulation chains are shared —
// which is what leaves the small-channel-count early layers of Fig. 14
// underutilized.
func (c Config) GEMMCost(g GEMM) Cost {
	if g.Gh <= 0 || g.Gw <= 0 || g.K <= 0 {
		return Cost{}
	}
	m := int64(c.TileM)
	k := int64(c.Rows)
	waves := ceilDiv64(g.K, k)
	tilesW := ceilDiv64(g.Gw, int64(c.Cols))

	// Column packing for narrow GEMMs: independent row-tiles side by side.
	pack := int64(1)
	if g.Gw > 0 && g.Gw < int64(c.Cols) {
		pack = int64(c.Cols) / g.Gw
	}

	batches, rows := streamedRows(g.Gh, m, pack)
	totalWaves := tilesW * batches * waves
	totalStream := tilesW * waves * rows

	var cycles int64
	if c.DoubleBuffered {
		// Gap-less waves (Fig. 8, lower half): one initial k-cycle weight
		// fill, then back-to-back A streaming across every wave of every
		// tile — the shadow register absorbs all later weight loads — and
		// one final pipeline drain.
		cycles = k + totalStream + k + int64(c.Cols)
	} else {
		// Conventional array (Fig. 8, upper half): every wave stalls k
		// cycles to shift its weight block in.
		cycles = totalWaves*k + totalStream + int64(c.Cols)
	}

	return Cost{
		Cycles: cycles,
		MACs:   g.MACs(),
	}
}

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }

// VectorUnit models the per-core scalar/vector units that process
// normalization, pooling, activation and merge layers next to the global
// buffer (Section 4.2).
type VectorUnit struct {
	// Lanes is the number of parallel elementwise lanes.
	Lanes int
	// ClockHz is the vector clock (same domain as the core).
	ClockHz float64
}

// DefaultVectorUnit sizes the vector units so that elementwise layers are
// memory-bandwidth bound (the paper's premise): 512 lanes at 0.7 GHz
// sustain ~358 Gop/s, far above what HBM2 can feed at 2 B/element.
func DefaultVectorUnit() VectorUnit { return VectorUnit{Lanes: 512, ClockHz: 0.7e9} }

// OpsPerSecond returns the unit's elementwise throughput.
func (v VectorUnit) OpsPerSecond() float64 { return float64(v.Lanes) * v.ClockHz }

// Seconds returns the compute time for ops elementwise operations.
func (v VectorUnit) Seconds(ops int64) float64 {
	if v.Lanes <= 0 || v.ClockHz <= 0 {
		return 0
	}
	return float64(ops) / v.OpsPerSecond()
}
