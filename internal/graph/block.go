package graph

import (
	"fmt"
)

// MergeKind describes how a multi-branch block joins its branch outputs.
type MergeKind int

const (
	// MergeNone marks a single-branch block (a plain run of layers).
	MergeNone MergeKind = iota
	// MergeAdd is the residual elementwise sum (Eq. 1 footprint rule).
	MergeAdd
	// MergeConcat is the inception channel concatenation (Eq. 2 rule).
	MergeConcat
)

func (m MergeKind) String() string {
	switch m {
	case MergeNone:
		return "none"
	case MergeAdd:
		return "add"
	case MergeConcat:
		return "concat"
	default:
		return fmt.Sprintf("MergeKind(%d)", int(m))
	}
}

// Branch is an ordered run of layers within a block. An empty Branch is the
// identity shortcut of a residual block: it forwards the block input
// unchanged to the merge point.
type Branch struct {
	Layers []*Layer
}

// Out returns the branch's output shape given the block input shape.
func (b *Branch) Out(blockIn Shape) Shape {
	if len(b.Layers) == 0 {
		return blockIn
	}
	return b.Layers[len(b.Layers)-1].Out
}

// Block is the scheduling unit of a network: either a plain run of layers
// (single branch, MergeNone) or a multi-branch module whose branches share
// the block input and merge at the output. MBS treats a block as a single
// layer for locality optimization.
type Block struct {
	Name     string
	In       Shape
	Out      Shape
	Merge    MergeKind
	Branches []*Branch
	// Post holds layers applied to the merged output while it is still on
	// chip (e.g. the ReLU after a residual sum).
	Post []*Layer
}

// NewPlainBlock wraps a run of layers into a single-branch block. The layer
// chain must be shape-consistent.
func NewPlainBlock(name string, layers ...*Layer) *Block {
	if len(layers) == 0 {
		panic("graph: plain block needs at least one layer")
	}
	return &Block{
		Name:     name,
		In:       layers[0].In,
		Out:      layers[len(layers)-1].Out,
		Merge:    MergeNone,
		Branches: []*Branch{{Layers: layers}},
	}
}

// NewResidualBlock builds a two-branch residual block. main is the residual
// path; shortcut may be empty (identity) or a projection path. post holds
// the layers applied after the merge (typically a ReLU).
func NewResidualBlock(name string, in Shape, main, shortcut []*Layer, post ...*Layer) *Block {
	mb := &Branch{Layers: main}
	sb := &Branch{Layers: shortcut}
	out := mb.Out(in)
	if so := sb.Out(in); so != out {
		panic(fmt.Sprintf("graph: residual block %s: branch outputs differ (%v vs %v)", name, out, so))
	}
	if len(post) > 0 {
		out = post[len(post)-1].Out
	}
	return &Block{
		Name: name, In: in, Out: out,
		Merge:    MergeAdd,
		Branches: []*Branch{mb, sb},
		Post:     post,
	}
}

// NewInceptionBlock builds a multi-branch concatenation block. Branch
// outputs must share the spatial extent; channels are summed.
func NewInceptionBlock(name string, in Shape, branches ...[]*Layer) *Block {
	if len(branches) < 2 {
		panic("graph: inception block needs at least two branches")
	}
	bs := make([]*Branch, len(branches))
	outC := 0
	var spatial Shape
	for i, layers := range branches {
		bs[i] = &Branch{Layers: layers}
		o := bs[i].Out(in)
		if i == 0 {
			spatial = o
		} else if o.H != spatial.H || o.W != spatial.W {
			panic(fmt.Sprintf("graph: inception block %s: branch %d spatial %dx%d != %dx%d",
				name, i, o.H, o.W, spatial.H, spatial.W))
		}
		outC += o.C
	}
	return &Block{
		Name: name, In: in,
		Out:      Shape{C: outC, H: spatial.H, W: spatial.W},
		Merge:    MergeConcat,
		Branches: bs,
	}
}

// Layers returns the block's layers in execution order: branch by branch,
// then the post-merge layers. Merge itself is implicit.
func (b *Block) Layers() []*Layer {
	var out []*Layer
	for _, br := range b.Branches {
		out = append(out, br.Layers...)
	}
	out = append(out, b.Post...)
	return out
}

// LayerCount returns the number of explicit layers in the block.
func (b *Block) LayerCount() int {
	n := len(b.Post)
	for _, br := range b.Branches {
		n += len(br.Layers)
	}
	return n
}

// Params returns the block's learnable parameter element count.
func (b *Block) Params() int64 {
	var p int64
	for _, l := range b.Layers() {
		p += l.Params()
	}
	return p
}

// ParamBytes returns the block's parameter bytes at WordBytes precision.
func (b *Block) ParamBytes() int64 { return b.Params() * WordBytes }

// MACs returns the block's forward MAC count for n samples, including the
// implicit merge cost.
func (b *Block) MACs(n int) int64 {
	var m int64
	for _, l := range b.Layers() {
		m += l.MACs(n)
	}
	if b.Merge == MergeAdd {
		m += int64(n) * b.mergeShape().Elems()
	}
	return m
}

// mergeShape is the shape at the merge point (before Post layers).
func (b *Block) mergeShape() Shape {
	if len(b.Post) > 0 {
		return b.Post[0].In
	}
	return b.Out
}

// IsMultiBranch reports whether the block has more than one live branch.
func (b *Block) IsMultiBranch() bool { return b.Merge != MergeNone }

// FootprintPerSample returns the per-sample on-chip buffer requirement in
// bytes for propagating one sample through the block.
//
// With branchReuse (the MBS2 policy) multi-branch blocks use the paper's
// Eq. 1 (residual) / Eq. 2 (inception) rules: the block input stays on chip
// until every branch has consumed it, and already-produced branch outputs
// stay on chip until the merge. Without branchReuse (MBS1) each layer only
// needs its own input and output resident; shared data is re-fetched from
// DRAM.
func (b *Block) FootprintPerSample(branchReuse bool) int64 {
	if !b.IsMultiBranch() {
		return b.maxLayerFootprint()
	}
	if !branchReuse {
		// Per-layer residency only, plus the merge working set (two
		// operands in, one out — but the sum can be done in place, so two
		// operands resident suffice).
		fp := b.maxLayerFootprint()
		ms := b.mergeShape().Bytes()
		if m := 2 * ms; m > fp {
			fp = m
		}
		return fp
	}
	switch b.Merge {
	case MergeAdd:
		return b.footprintEq1()
	case MergeConcat:
		return b.footprintEq2()
	default:
		return b.maxLayerFootprint()
	}
}

// unit is a fused scheduling op: a GEMM or pooling layer together with the
// shape-preserving normalization/activation layers that directly follow it.
// Normalization and activation are streaming elementwise passes over the
// producer's output, so the working set of the fused op is just its input
// plus its output — this matches the paper's per-layer footprint accounting
// (Fig. 4's bars reproduce only under this fusion).
type unit struct {
	in  Shape
	out Shape
}

func (u unit) bytes() int64 { return u.in.Bytes() + u.out.Bytes() }

// fuseLayers folds a layer run into fused units. A run-leading norm/act
// (nothing to fuse into, e.g. a post-merge ReLU whose producer is the
// implicit merge) is dropped when leading is true — its working set is
// covered by the merge provision — and forms its own unit otherwise.
func fuseLayers(layers []*Layer, leading bool) []unit {
	var units []unit
	for _, l := range layers {
		switch l.Kind {
		case Norm, Act:
			if len(units) > 0 {
				units[len(units)-1].out = l.Out
				continue
			}
			if leading {
				continue
			}
			units = append(units, unit{in: l.In, out: l.Out})
		default:
			units = append(units, unit{in: l.In, out: l.Out})
		}
	}
	return units
}

// maxLayerFootprint is the max over fused units of Din+Dout per sample, the
// minimum residency for direct producer→consumer reuse inside a branch.
func (b *Block) maxLayerFootprint() int64 {
	var fp int64
	for _, br := range b.Branches {
		for _, u := range fuseLayers(br.Layers, false) {
			if f := u.bytes(); f > fp {
				fp = f
			}
		}
	}
	for _, u := range fuseLayers(b.Post, b.Merge != MergeNone) {
		if f := u.bytes(); f > fp {
			fp = f
		}
	}
	// An empty identity shortcut still forwards the block input.
	if fp == 0 {
		fp = b.In.Bytes() + b.Out.Bytes()
	}
	return fp
}

// footprintEq1 implements the paper's Eq. 1 for residual blocks:
//
//	Space/Sample = max over branches b, layers l of
//	    Din(b,l) + Dout(b,l) + Dcond(b,l)
//	Dcond(b,l) = [b=1 & l≠1]·Dblockin + [b≠1]·Dblockout
//
// Branch 1 is the main (residual) path: while it executes past its first
// layer, the block input must stay resident for the shortcut. While the
// shortcut (branch ≠ 1) executes, the main path's output (the block-merge
// operand) stays resident.
func (b *Block) footprintEq1() int64 {
	blockIn := b.In.Bytes()
	blockOut := b.mergeShape().Bytes()
	var fp int64
	for bi, br := range b.Branches {
		if len(br.Layers) == 0 {
			// Identity shortcut: the resident set is the block input (its
			// "output") plus the main-path output awaiting the merge.
			if f := blockIn + blockOut; f > fp {
				fp = f
			}
			continue
		}
		for li, u := range fuseLayers(br.Layers, false) {
			f := u.bytes()
			if bi == 0 && li != 0 {
				f += blockIn
			}
			if bi != 0 {
				f += blockOut
			}
			if f > fp {
				fp = f
			}
		}
	}
	// The merge itself holds both operands (the post-merge activation is an
	// in-place pass over the merge result).
	if f := 2 * blockOut; f > fp {
		fp = f
	}
	// Remaining post-merge units run with their own input/output resident.
	for _, u := range fuseLayers(b.Post, true) {
		if f := u.bytes(); f > fp {
			fp = f
		}
	}
	return fp
}

// footprintEq2 implements the paper's Eq. 2 for inception blocks:
//
//	Space/Sample = max over branches b, layers l of
//	    Din(b,l) + Dout(b,l) + Dcond(l)
//	Dcond(l) = [l≠1]·Dblockin + [l≠L]·Dblockout
//
// The block input stays resident until each branch's first layer has
// consumed it, and the (incrementally filled) concatenated block output
// stays resident until the last layer of each branch writes its slice.
func (b *Block) footprintEq2() int64 {
	blockIn := b.In.Bytes()
	blockOut := b.Out.Bytes()
	var fp int64
	for _, br := range b.Branches {
		if len(br.Layers) == 0 {
			if f := blockIn + blockOut; f > fp {
				fp = f
			}
			continue
		}
		units := fuseLayers(br.Layers, false)
		last := len(units) - 1
		for li, u := range units {
			f := u.bytes()
			if li != 0 {
				f += blockIn
			}
			if li != last {
				f += blockOut
			}
			if f > fp {
				fp = f
			}
		}
	}
	for _, u := range fuseLayers(b.Post, true) {
		if f := u.bytes(); f > fp {
			fp = f
		}
	}
	return fp
}

// InterLayerBytesPerSample returns the block's characteristic inter-layer
// data volume per sample (the grey bars of Fig. 4): the footprint under the
// branch-reuse rule.
func (b *Block) InterLayerBytesPerSample() int64 { return b.FootprintPerSample(true) }

// Validate checks shape consistency across the block.
func (b *Block) Validate() error {
	if len(b.Branches) == 0 {
		return fmt.Errorf("block %s: no branches", b.Name)
	}
	if b.Merge == MergeNone && len(b.Branches) != 1 {
		return fmt.Errorf("block %s: MergeNone with %d branches", b.Name, len(b.Branches))
	}
	for bi, br := range b.Branches {
		prev := b.In
		for li, l := range br.Layers {
			if err := l.Validate(); err != nil {
				return fmt.Errorf("block %s branch %d: %w", b.Name, bi, err)
			}
			if l.Kind != Concat && l.In != prev {
				return fmt.Errorf("block %s branch %d layer %d (%s): input %v != upstream %v",
					b.Name, bi, li, l.Name, l.In, prev)
			}
			prev = l.Out
		}
	}
	ms := b.mergeShape()
	switch b.Merge {
	case MergeAdd:
		for bi, br := range b.Branches {
			if o := br.Out(b.In); o != ms {
				return fmt.Errorf("block %s: add-merge branch %d output %v != %v", b.Name, bi, o, ms)
			}
		}
	case MergeConcat:
		sumC := 0
		for bi, br := range b.Branches {
			o := br.Out(b.In)
			if o.H != ms.H || o.W != ms.W {
				return fmt.Errorf("block %s: concat branch %d spatial %dx%d != %dx%d",
					b.Name, bi, o.H, o.W, ms.H, ms.W)
			}
			sumC += o.C
		}
		if sumC != ms.C {
			return fmt.Errorf("block %s: concat channels %d != output %d", b.Name, sumC, ms.C)
		}
	}
	prev := ms
	for li, l := range b.Post {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("block %s post %d: %w", b.Name, li, err)
		}
		if l.In != prev {
			return fmt.Errorf("block %s post layer %d (%s): input %v != upstream %v",
				b.Name, li, l.Name, l.In, prev)
		}
		prev = l.Out
	}
	if prev != b.Out {
		return fmt.Errorf("block %s: declared output %v != computed %v", b.Name, b.Out, prev)
	}
	return nil
}
