// Package graph defines the CNN computation-graph intermediate
// representation used by the MBS scheduler and the WaveCore simulator.
//
// A Network is an ordered sequence of Blocks. A Block contains one or more
// Branches that share the block's input and merge at the block's output
// (residual Add or inception Concat); a single-branch block with no merge
// represents a plain run of layers. This mirrors the paper's treatment of a
// multi-branch module as a single unit for locality optimization (Section 3,
// "Data Reuse Within Multi-Branch Modules").
//
// All feature sizes are per sample: a Shape carries channel count and the
// spatial height/width of one sample's feature map. Mini-batch scaling is
// applied by the scheduler and simulator, never baked into the IR.
package graph

import (
	"fmt"
)

// WordBytes is the size of one training word. The paper trains in 16-bit
// floating point with 32-bit accumulation (Micikevicius et al.), so all
// feature and weight traffic is counted at 2 bytes per element.
const WordBytes = 2

// Shape is the per-sample feature map shape in CHW order.
type Shape struct {
	C int // channels
	H int // height
	W int // width
}

// Elems returns the number of elements in one sample's feature map.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

// Bytes returns the per-sample feature map size in bytes at WordBytes
// precision.
func (s Shape) Bytes() int64 { return s.Elems() * WordBytes }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.C > 0 && s.H > 0 && s.W > 0 }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// LayerKind enumerates the layer types that appear in the evaluated CNNs.
type LayerKind int

const (
	// Conv is a 2-D convolution (possibly strided).
	Conv LayerKind = iota
	// FC is a fully connected (dense) layer.
	FC
	// Pool is a spatial pooling layer (max or average).
	Pool
	// Norm is a feature normalization layer (BN in the conventional flow,
	// GN under MBS; LRN for AlexNet). Its defining property for the memory
	// model is that it iterates over its input twice (mean/variance, then
	// normalize).
	Norm
	// Act is an elementwise activation (ReLU). Under MBS its gradient
	// stash is 1 bit per element instead of a 16-bit word.
	Act
	// Add is the elementwise merge of a residual block.
	Add
	// Concat is the channel concatenation merge of an inception block.
	Concat
)

func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	case Pool:
		return "pool"
	case Norm:
		return "norm"
	case Act:
		return "act"
	case Add:
		return "add"
	case Concat:
		return "concat"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// PoolKind distinguishes pooling flavours.
type PoolKind int

const (
	// MaxPool selects the window maximum.
	MaxPool PoolKind = iota
	// AvgPool averages the window.
	AvgPool
	// GlobalAvgPool averages over the entire spatial extent.
	GlobalAvgPool
)

func (p PoolKind) String() string {
	switch p {
	case MaxPool:
		return "max"
	case AvgPool:
		return "avg"
	case GlobalAvgPool:
		return "gavg"
	default:
		return fmt.Sprintf("PoolKind(%d)", int(p))
	}
}

// Layer is one node of the computation graph. Exactly which fields are
// meaningful depends on Kind; the constructors below populate them
// consistently and infer output shapes.
type Layer struct {
	Name string
	Kind LayerKind

	In  Shape // input feature map, per sample
	Out Shape // output feature map, per sample

	// Convolution / pooling geometry.
	KH, KW   int // kernel height/width
	StrideH  int
	StrideW  int
	PadH     int
	PadW     int
	PoolKind PoolKind

	// Norm configuration: number of GN groups (ignored for BN/LRN
	// accounting; kept so the numeric engine and the IR agree).
	NormGroups int
}

// convOut computes a convolution/pooling output extent.
func convOut(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// NewConv builds a convolution layer and infers its output shape.
func NewConv(name string, in Shape, outC, kh, kw, strideH, strideW, padH, padW int) *Layer {
	return &Layer{
		Name: name, Kind: Conv, In: in,
		Out: Shape{
			C: outC,
			H: convOut(in.H, kh, strideH, padH),
			W: convOut(in.W, kw, strideW, padW),
		},
		KH: kh, KW: kw, StrideH: strideH, StrideW: strideW, PadH: padH, PadW: padW,
	}
}

// NewConvSquare builds a square-kernel convolution with equal stride and
// padding in both dimensions.
func NewConvSquare(name string, in Shape, outC, k, stride, pad int) *Layer {
	return NewConv(name, in, outC, k, k, stride, stride, pad, pad)
}

// NewFC builds a fully connected layer. The input shape is flattened; the
// output is outC×1×1.
func NewFC(name string, in Shape, outC int) *Layer {
	return &Layer{
		Name: name, Kind: FC, In: in,
		Out: Shape{C: outC, H: 1, W: 1},
	}
}

// NewPool builds a pooling layer.
func NewPool(name string, in Shape, pk PoolKind, k, stride, pad int) *Layer {
	if pk == GlobalAvgPool {
		return &Layer{
			Name: name, Kind: Pool, In: in,
			Out: Shape{C: in.C, H: 1, W: 1},
			KH:  in.H, KW: in.W, StrideH: 1, StrideW: 1,
			PoolKind: pk,
		}
	}
	return &Layer{
		Name: name, Kind: Pool, In: in,
		Out: Shape{
			C: in.C,
			H: convOut(in.H, k, stride, pad),
			W: convOut(in.W, k, stride, pad),
		},
		KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
		PoolKind: pk,
	}
}

// NewNorm builds a normalization layer (shape preserving). groups is the GN
// group count used when the network runs under MBS.
func NewNorm(name string, in Shape, groups int) *Layer {
	return &Layer{Name: name, Kind: Norm, In: in, Out: in, NormGroups: groups}
}

// NewAct builds an elementwise activation layer (shape preserving).
func NewAct(name string, in Shape) *Layer {
	return &Layer{Name: name, Kind: Act, In: in, Out: in}
}

// NewAdd builds a residual elementwise-sum merge layer.
func NewAdd(name string, in Shape) *Layer {
	return &Layer{Name: name, Kind: Add, In: in, Out: in}
}

// NewConcat builds a channel-concatenation merge layer producing outC
// channels at the input's spatial extent.
func NewConcat(name string, in Shape, outC int) *Layer {
	return &Layer{Name: name, Kind: Concat, In: in, Out: Shape{C: outC, H: in.H, W: in.W}}
}

// Params returns the number of learnable parameter elements in the layer.
// Normalization layers carry a per-channel scale and shift.
func (l *Layer) Params() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.In.C) * int64(l.Out.C) * int64(l.KH) * int64(l.KW)
	case FC:
		return l.In.Elems() * int64(l.Out.C)
	case Norm:
		return 2 * int64(l.In.C)
	default:
		return 0
	}
}

// ParamBytes returns the parameter size in bytes at WordBytes precision.
func (l *Layer) ParamBytes() int64 { return l.Params() * WordBytes }

// MACs returns the multiply-accumulate count of the layer's forward pass for
// n samples. Non-GEMM layers report the elementwise operation count that the
// vector units execute.
func (l *Layer) MACs(n int) int64 {
	nn := int64(n)
	switch l.Kind {
	case Conv:
		return nn * l.Out.Elems() * int64(l.In.C) * int64(l.KH) * int64(l.KW)
	case FC:
		return nn * l.In.Elems() * int64(l.Out.C)
	case Pool:
		return nn * l.Out.Elems() * int64(l.KH) * int64(l.KW)
	case Norm:
		// Two passes over the input (statistics, then normalize) plus the
		// scale/shift application: ~5 elementwise ops per element.
		return nn * l.In.Elems() * 5
	case Act, Add:
		return nn * l.Out.Elems()
	case Concat:
		return nn * l.Out.Elems()
	default:
		return 0
	}
}

// InterLayerBytes returns the per-sample inter-layer data footprint of the
// layer: its input plus its output feature maps, as plotted in Fig. 3.
func (l *Layer) InterLayerBytes() int64 { return l.In.Bytes() + l.Out.Bytes() }

// IsGEMM reports whether the layer executes on the systolic array
// (convolution and fully connected layers) rather than the vector units.
func (l *Layer) IsGEMM() bool { return l.Kind == Conv || l.Kind == FC }

func (l *Layer) String() string {
	return fmt.Sprintf("%s[%s %s->%s]", l.Name, l.Kind, l.In, l.Out)
}

// Validate checks internal consistency of the layer's shapes.
func (l *Layer) Validate() error {
	if !l.In.Valid() {
		return fmt.Errorf("layer %s: invalid input shape %v", l.Name, l.In)
	}
	if !l.Out.Valid() {
		return fmt.Errorf("layer %s: invalid output shape %v", l.Name, l.Out)
	}
	switch l.Kind {
	case Conv:
		if l.KH <= 0 || l.KW <= 0 || l.StrideH <= 0 || l.StrideW <= 0 {
			return fmt.Errorf("layer %s: invalid conv geometry", l.Name)
		}
		wantH := convOut(l.In.H, l.KH, l.StrideH, l.PadH)
		wantW := convOut(l.In.W, l.KW, l.StrideW, l.PadW)
		if l.Out.H != wantH || l.Out.W != wantW {
			return fmt.Errorf("layer %s: output %dx%d inconsistent with geometry (want %dx%d)",
				l.Name, l.Out.H, l.Out.W, wantH, wantW)
		}
	case Norm, Act, Add:
		if l.In != l.Out {
			return fmt.Errorf("layer %s: %s must preserve shape (%v -> %v)", l.Name, l.Kind, l.In, l.Out)
		}
	case Concat:
		if l.Out.H != l.In.H || l.Out.W != l.In.W {
			return fmt.Errorf("layer %s: concat must preserve spatial extent", l.Name)
		}
	}
	return nil
}
