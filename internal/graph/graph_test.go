package graph

import (
	"testing"
	"testing/quick"
)

func TestShapeElemsBytes(t *testing.T) {
	s := Shape{C: 3, H: 224, W: 224}
	if got := s.Elems(); got != 3*224*224 {
		t.Errorf("Elems = %d, want %d", got, 3*224*224)
	}
	if got := s.Bytes(); got != 3*224*224*2 {
		t.Errorf("Bytes = %d, want %d", got, 3*224*224*2)
	}
	if !s.Valid() {
		t.Error("shape should be valid")
	}
	if (Shape{C: 0, H: 1, W: 1}).Valid() {
		t.Error("zero-channel shape should be invalid")
	}
}

func TestConvShapeInference(t *testing.T) {
	cases := []struct {
		name                 string
		in                   Shape
		outC, k, stride, pad int
		wantH, wantW         int
	}{
		{"resnet_stem", Shape{3, 224, 224}, 64, 7, 2, 3, 112, 112},
		{"same_3x3", Shape{64, 56, 56}, 64, 3, 1, 1, 56, 56},
		{"strided_3x3", Shape{128, 56, 56}, 128, 3, 2, 1, 28, 28},
		{"pointwise", Shape{256, 14, 14}, 64, 1, 1, 0, 14, 14},
		{"alexnet_c1", Shape{3, 227, 227}, 96, 11, 4, 0, 55, 55},
		{"inception_stem", Shape{3, 299, 299}, 32, 3, 2, 0, 149, 149},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := NewConvSquare(c.name, c.in, c.outC, c.k, c.stride, c.pad)
			if l.Out.H != c.wantH || l.Out.W != c.wantW {
				t.Errorf("out = %dx%d, want %dx%d", l.Out.H, l.Out.W, c.wantH, c.wantW)
			}
			if l.Out.C != c.outC {
				t.Errorf("outC = %d, want %d", l.Out.C, c.outC)
			}
			if err := l.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestAsymmetricConv(t *testing.T) {
	in := Shape{C: 192, H: 17, W: 17}
	l := NewConv("b7", in, 224, 1, 7, 1, 1, 0, 3)
	if l.Out.H != 17 || l.Out.W != 17 {
		t.Errorf("1x7 pad (0,3) should preserve 17x17, got %dx%d", l.Out.H, l.Out.W)
	}
	if got, want := l.Params(), int64(192*224*1*7); got != want {
		t.Errorf("Params = %d, want %d", got, want)
	}
}

func TestPoolShapes(t *testing.T) {
	in := Shape{C: 64, H: 112, W: 112}
	p := NewPool("p", in, MaxPool, 3, 2, 1)
	if p.Out.H != 56 || p.Out.W != 56 || p.Out.C != 64 {
		t.Errorf("pool out = %v", p.Out)
	}
	g := NewPool("g", Shape{C: 2048, H: 7, W: 7}, GlobalAvgPool, 0, 0, 0)
	if g.Out != (Shape{C: 2048, H: 1, W: 1}) {
		t.Errorf("global pool out = %v", g.Out)
	}
}

func TestLayerParams(t *testing.T) {
	conv := NewConvSquare("c", Shape{64, 56, 56}, 128, 3, 1, 1)
	if got, want := conv.Params(), int64(64*128*9); got != want {
		t.Errorf("conv params = %d, want %d", got, want)
	}
	fc := NewFC("f", Shape{2048, 1, 1}, 1000)
	if got, want := fc.Params(), int64(2048*1000); got != want {
		t.Errorf("fc params = %d, want %d", got, want)
	}
	norm := NewNorm("n", Shape{128, 28, 28}, 32)
	if got, want := norm.Params(), int64(256); got != want {
		t.Errorf("norm params = %d, want %d", got, want)
	}
	act := NewAct("a", Shape{128, 28, 28})
	if act.Params() != 0 {
		t.Error("act should have no params")
	}
}

func TestLayerMACs(t *testing.T) {
	conv := NewConvSquare("c", Shape{64, 56, 56}, 128, 3, 1, 1)
	want := int64(8) * int64(128*56*56) * int64(64*9)
	if got := conv.MACs(8); got != want {
		t.Errorf("conv MACs(8) = %d, want %d", got, want)
	}
	fc := NewFC("f", Shape{4096, 1, 1}, 1000)
	if got, want := fc.MACs(2), int64(2*4096*1000); got != want {
		t.Errorf("fc MACs = %d, want %d", got, want)
	}
}

func TestMACsScaleLinearlyInBatch(t *testing.T) {
	layers := []*Layer{
		NewConvSquare("c", Shape{64, 56, 56}, 128, 3, 2, 1),
		NewFC("f", Shape{512, 1, 1}, 100),
		NewPool("p", Shape{64, 56, 56}, MaxPool, 2, 2, 0),
		NewNorm("n", Shape{64, 56, 56}, 32),
		NewAct("a", Shape{64, 56, 56}),
	}
	f := func(n uint8) bool {
		k := int(n%31) + 1
		for _, l := range layers {
			if l.MACs(k) != int64(k)*l.MACs(1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayerValidateCatchesBadShapes(t *testing.T) {
	l := NewConvSquare("c", Shape{64, 56, 56}, 128, 3, 1, 1)
	l.Out.H = 55 // corrupt
	if err := l.Validate(); err == nil {
		t.Error("expected geometry mismatch error")
	}
	n := NewNorm("n", Shape{64, 56, 56}, 32)
	n.Out.C = 32
	if err := n.Validate(); err == nil {
		t.Error("expected shape-preservation error")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[LayerKind]string{
		Conv: "conv", FC: "fc", Pool: "pool", Norm: "norm",
		Act: "act", Add: "add", Concat: "concat",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if MaxPool.String() != "max" || AvgPool.String() != "avg" || GlobalAvgPool.String() != "gavg" {
		t.Error("pool kind strings wrong")
	}
}
