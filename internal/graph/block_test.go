package graph

import (
	"testing"
)

// testResidual builds a simple bottleneck-style residual block:
// main = 1x1(64->16) -> 3x3(16->16) -> 1x1(16->64), identity shortcut.
func testResidual(t *testing.T, identity bool) *Block {
	t.Helper()
	in := Shape{C: 64, H: 28, W: 28}
	c1 := NewConvSquare("m1", in, 16, 1, 1, 0)
	c2 := NewConvSquare("m2", c1.Out, 16, 3, 1, 1)
	c3 := NewConvSquare("m3", c2.Out, 64, 1, 1, 0)
	main := []*Layer{c1, c2, c3}
	var shortcut []*Layer
	if !identity {
		shortcut = []*Layer{NewConvSquare("sc", in, 64, 1, 1, 0)}
	}
	post := NewAct("relu", c3.Out)
	return NewResidualBlock("blk", in, main, shortcut, post)
}

func TestResidualBlockShapes(t *testing.T) {
	b := testResidual(t, true)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if b.Out != (Shape{64, 28, 28}) {
		t.Errorf("Out = %v", b.Out)
	}
	if !b.IsMultiBranch() {
		t.Error("residual block should be multi-branch")
	}
	if got := b.LayerCount(); got != 4 { // 3 main + 1 post
		t.Errorf("LayerCount = %d, want 4", got)
	}
}

func TestResidualFootprintEq1(t *testing.T) {
	b := testResidual(t, true)
	in := b.In.Bytes()        // 64*28*28*2
	mergeOut := b.Out.Bytes() // same

	// Without branch reuse: max per-layer Din+Dout, or 2x merge operand.
	noReuse := b.FootprintPerSample(false)
	if want := 2 * mergeOut; noReuse != want {
		t.Errorf("no-reuse footprint = %d, want %d (2x merge operands)", noReuse, want)
	}

	// With branch reuse (Eq. 1): the main path's later layers carry the
	// block input; layer m3 (16x28x28 -> 64x28x28) + block input dominates.
	withReuse := b.FootprintPerSample(true)
	m3 := Shape{16, 28, 28}.Bytes() + Shape{64, 28, 28}.Bytes()
	if want := m3 + in; withReuse != want {
		t.Errorf("Eq1 footprint = %d, want %d", withReuse, want)
	}
	if withReuse <= noReuse {
		t.Error("branch reuse must cost extra buffer space")
	}
}

func TestIdentityShortcutFootprint(t *testing.T) {
	b := testResidual(t, true)
	// The identity branch residency is block input + pending merge operand.
	fp := b.footprintEq1()
	min := b.In.Bytes() + b.Out.Bytes()
	if fp < min {
		t.Errorf("Eq1 footprint %d below identity-branch residency %d", fp, min)
	}
}

func TestInceptionFootprintEq2(t *testing.T) {
	in := Shape{C: 192, H: 35, W: 35}
	b1 := []*Layer{NewConvSquare("b1", in, 64, 1, 1, 0)}
	b2a := NewConvSquare("b2a", in, 48, 1, 1, 0)
	b2b := NewConvSquare("b2b", b2a.Out, 64, 5, 1, 2)
	blk := NewInceptionBlock("inc", in, b1, []*Layer{b2a, b2b})
	if err := blk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if blk.Out.C != 128 {
		t.Errorf("concat channels = %d, want 128", blk.Out.C)
	}

	blockIn := in.Bytes()
	blockOut := blk.Out.Bytes()
	// Candidate footprints per Eq. 2:
	//  b1 l1 (first and last):    in+64        (no cond terms... l==1 and l==L)
	//  b2a (first, not last):     in+48 + blockOut
	//  b2b (not first, last):     48+64 + blockIn
	cand := []int64{
		in.Bytes() + Shape{64, 35, 35}.Bytes(),
		in.Bytes() + Shape{48, 35, 35}.Bytes() + blockOut,
		Shape{48, 35, 35}.Bytes() + Shape{64, 35, 35}.Bytes() + blockIn,
	}
	want := cand[0]
	for _, c := range cand[1:] {
		if c > want {
			want = c
		}
	}
	if got := blk.FootprintPerSample(true); got != want {
		t.Errorf("Eq2 footprint = %d, want %d", got, want)
	}
	_ = blockIn
}

func TestFootprintReuseAtLeastPerLayer(t *testing.T) {
	// Branch-reuse footprint must never be below the plain per-layer one.
	for _, identity := range []bool{true, false} {
		b := testResidual(t, identity)
		if b.FootprintPerSample(true) < b.maxLayerFootprint() {
			t.Errorf("identity=%v: reuse footprint below per-layer minimum", identity)
		}
	}
}

func TestPlainBlock(t *testing.T) {
	c := NewConvSquare("c", Shape{3, 32, 32}, 16, 3, 1, 1)
	a := NewAct("a", c.Out)
	b := NewPlainBlock("plain", c, a)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if b.IsMultiBranch() {
		t.Error("plain block should not be multi-branch")
	}
	if b.FootprintPerSample(true) != b.FootprintPerSample(false) {
		t.Error("branch reuse must not change a plain block's footprint")
	}
	// The activation fuses into the convolution (a streaming elementwise
	// pass over its output), so the working set is conv-in + act-out.
	want := c.In.Bytes() + a.Out.Bytes()
	if got := b.FootprintPerSample(true); got != want {
		t.Errorf("footprint = %d, want %d", got, want)
	}
}

func TestBlockParamsAndMACs(t *testing.T) {
	b := testResidual(t, false)
	var wantP int64
	for _, l := range b.Layers() {
		wantP += l.Params()
	}
	if got := b.Params(); got != wantP {
		t.Errorf("Params = %d, want %d", got, wantP)
	}
	// MACs must include the merge cost (one op per output element).
	var layerMACs int64
	for _, l := range b.Layers() {
		layerMACs += l.MACs(4)
	}
	wantM := layerMACs + 4*b.mergeShape().Elems()
	if got := b.MACs(4); got != wantM {
		t.Errorf("MACs = %d, want %d", got, wantM)
	}
}

func TestBlockValidateCatchesMismatch(t *testing.T) {
	in := Shape{C: 64, H: 28, W: 28}
	c1 := NewConvSquare("m1", in, 32, 3, 1, 1)
	// Branch output (32ch) mismatches identity shortcut (64ch): builder panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched residual branches")
		}
	}()
	NewResidualBlock("bad", in, []*Layer{c1}, nil)
}

func TestBlockValidateBrokenChain(t *testing.T) {
	in := Shape{C: 64, H: 28, W: 28}
	c1 := NewConvSquare("m1", in, 64, 3, 1, 1)
	c2 := NewConvSquare("m2", Shape{C: 32, H: 28, W: 28}, 64, 3, 1, 1) // wrong input
	b := &Block{
		Name: "broken", In: in, Out: c2.Out, Merge: MergeNone,
		Branches: []*Branch{{Layers: []*Layer{c1, c2}}},
	}
	if err := b.Validate(); err == nil {
		t.Error("expected chain-mismatch error")
	}
}

func TestMergeKindString(t *testing.T) {
	if MergeNone.String() != "none" || MergeAdd.String() != "add" || MergeConcat.String() != "concat" {
		t.Error("merge kind strings wrong")
	}
}
