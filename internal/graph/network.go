package graph

import (
	"fmt"
)

// Network is an ordered sequence of blocks forming a full CNN.
type Network struct {
	Name   string
	Input  Shape // per-sample network input (e.g. 3x224x224)
	Blocks []*Block
}

// NewNetwork builds a network and validates the block chain.
func NewNetwork(name string, input Shape, blocks ...*Block) (*Network, error) {
	n := &Network{Name: name, Input: input, Blocks: blocks}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustNetwork is NewNetwork that panics on error; intended for the static
// model builders whose structures are fixed at compile time.
func MustNetwork(name string, input Shape, blocks ...*Block) *Network {
	n, err := NewNetwork(name, input, blocks...)
	if err != nil {
		panic(err)
	}
	return n
}

// Validate checks that the block chain is shape consistent end to end.
func (n *Network) Validate() error {
	if !n.Input.Valid() {
		return fmt.Errorf("network %s: invalid input shape %v", n.Name, n.Input)
	}
	if len(n.Blocks) == 0 {
		return fmt.Errorf("network %s: no blocks", n.Name)
	}
	prev := n.Input
	for i, b := range n.Blocks {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("network %s: %w", n.Name, err)
		}
		if b.In != prev {
			return fmt.Errorf("network %s block %d (%s): input %v != upstream %v",
				n.Name, i, b.Name, b.In, prev)
		}
		prev = b.Out
	}
	return nil
}

// Layers returns all explicit layers in execution order.
func (n *Network) Layers() []*Layer {
	var out []*Layer
	for _, b := range n.Blocks {
		out = append(out, b.Layers()...)
	}
	return out
}

// Params returns the total learnable parameter element count.
func (n *Network) Params() int64 {
	var p int64
	for _, b := range n.Blocks {
		p += b.Params()
	}
	return p
}

// ParamBytes returns total parameter bytes at WordBytes precision.
func (n *Network) ParamBytes() int64 { return n.Params() * WordBytes }

// MACs returns the total forward MAC count for n samples.
func (n *Network) MACs(samples int) int64 {
	var m int64
	for _, b := range n.Blocks {
		m += b.MACs(samples)
	}
	return m
}

// Output returns the network's final output shape.
func (n *Network) Output() Shape { return n.Blocks[len(n.Blocks)-1].Out }

// BlockByName returns the first block with the given name, or nil.
func (n *Network) BlockByName(name string) *Block {
	for _, b := range n.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// FootprintProfile returns, per block, the per-sample on-chip footprint in
// bytes under the given branch-reuse policy. Index i corresponds to
// n.Blocks[i]. This is the data series behind Fig. 4's grey bars.
func (n *Network) FootprintProfile(branchReuse bool) []int64 {
	out := make([]int64, len(n.Blocks))
	for i, b := range n.Blocks {
		out[i] = b.FootprintPerSample(branchReuse)
	}
	return out
}

// LayerFootprints returns the per-layer inter-layer data size (input plus
// output bytes) and parameter bytes for every explicit layer, scaled to a
// mini-batch of batch samples — the two series of Fig. 3.
func (n *Network) LayerFootprints(batch int) (interLayer, params []int64) {
	ls := n.Layers()
	interLayer = make([]int64, len(ls))
	params = make([]int64, len(ls))
	for i, l := range ls {
		interLayer[i] = l.InterLayerBytes() * int64(batch)
		params[i] = l.ParamBytes()
	}
	return interLayer, params
}
