package sweep

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
)

// lruNode is one cached artifact's position in the cache-wide recency list.
// It lives under budget.mu; drop removes the artifact from its owning memo.
type lruNode struct {
	prev, next *lruNode
	cost       int64
	inList     bool
	drop       func()
}

// budget is the cache-wide memory accountant: every successfully built
// artifact is charged an estimated byte cost on one shared LRU list, and
// inserting past the configured bound evicts from the cold end, whichever
// table the cold entries live in. maxBytes == 0 means unbounded (the
// default, preserving one-shot CLI behaviour); a long-lived process sets a
// bound via Cache.SetMaxBytes.
//
// Lock order is budget.mu -> memo.mu (drop locks the memo); memo.get never
// calls into the budget while holding its own lock.
type budget struct {
	// maxBytes is atomic so the hit path can skip LRU bookkeeping entirely
	// when no bound is configured, without taking mu.
	maxBytes   atomic.Int64
	mu         sync.Mutex
	curBytes   int64
	head, tail *lruNode // head = most recently used
}

// insert links n at the hot end, charges its cost, and evicts cold entries
// until the cache is back under bound. The just-inserted node is never
// evicted, so a single artifact larger than the whole bound still caches
// (and is dropped as soon as the next insert arrives).
func (b *budget) insert(n *lruNode) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pushFront(n)
	b.curBytes += n.cost
	if b.maxBytes.Load() <= 0 {
		return
	}
	b.evictOverLocked(n)
}

// touch marks n as most recently used; a no-op if n was evicted concurrently.
// Unbounded caches (the one-shot CLI default) skip the shared lock entirely:
// nothing ever evicts, so recency order is irrelevant and the parallel sweep
// hot path stays contention-free.
func (b *budget) touch(n *lruNode) {
	if b.maxBytes.Load() <= 0 {
		return
	}
	b.mu.Lock()
	if n.inList {
		b.unlink(n)
		b.pushFront(n)
	}
	b.mu.Unlock()
}

// setMax installs a new bound and immediately evicts down to it.
func (b *budget) setMax(maxBytes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maxBytes.Store(maxBytes)
	if maxBytes > 0 {
		b.evictOverLocked(nil)
	}
}

// evictOverLocked drops cold entries until curBytes <= maxBytes, sparing keep.
func (b *budget) evictOverLocked(keep *lruNode) {
	for b.curBytes > b.maxBytes.Load() && b.tail != nil && b.tail != keep {
		n := b.tail
		b.unlink(n)
		b.curBytes -= n.cost
		n.drop()
	}
}

func (b *budget) pushFront(n *lruNode) {
	n.prev, n.next = nil, b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
	n.inList = true
}

func (b *budget) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
	n.inList = false
}

func (b *budget) snapshot() (cur, max int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.curBytes, b.maxBytes.Load()
}

// memo is a concurrency-safe keyed memoization table with singleflight
// semantics: concurrent callers of the same key block on one build and share
// its result (value and error alike), so N simultaneous requests for a plan
// cost one planning pass. Failed builds are not retained: the key is
// unmapped as soon as the build completes, so a stream of requests with
// distinct invalid keys (e.g. unknown network names over the HTTP API)
// cannot grow the table — error entries would be invisible to the byte
// budget, which only accounts successful builds.
//
// Builds are detached from their callers: the first requester of a key
// starts the build in its own goroutine and every caller — including that
// first one — just waits for it, so a waiter whose context is cancelled
// abandons the wait immediately without cancelling the build for the other
// waiters, and the finished artifact still lands in the cache for future
// requests. A cancelled waiter therefore cannot poison the shared entry.
type memo[K comparable, V any] struct {
	mu        sync.Mutex
	m         map[K]*memoEntry[V]
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	// hook, when set, observes every counter event ("hit" | "miss" |
	// "eviction") — the cache's event-bus feed. Atomic so installation by a
	// long-lived server does not add a lock to the lookup path; nil (the
	// default, and always for one-shot CLIs) costs one atomic load.
	hook atomic.Pointer[func(kind string)]
}

func (mm *memo[K, V]) event(kind string) {
	if fn := mm.hook.Load(); fn != nil {
		(*fn)(kind)
	}
}

type memoEntry[V any] struct {
	done chan struct{} // closed once val/err (and node) are final
	val  V
	err  error
	node *lruNode // nil for error results and unbudgeted tables
}

// get returns the cached value for k, building it at most once. Successful
// builds are charged cost(val) bytes against b; evicted keys rebuild on next
// use (counted as a fresh miss). If ctx is cancelled while the build is in
// flight, get returns ctx.Err() and the build continues for other waiters.
func (mm *memo[K, V]) get(ctx context.Context, b *budget, k K, cost func(V) int64, build func() (V, error)) (V, error) {
	mm.mu.Lock()
	if mm.m == nil {
		mm.m = make(map[K]*memoEntry[V])
	}
	e, ok := mm.m[k]
	if !ok {
		e = &memoEntry[V]{done: make(chan struct{})}
		mm.m[k] = e
	}
	mm.mu.Unlock()
	if ok {
		mm.hits.Add(1)
		mm.event("hit")
	} else {
		mm.misses.Add(1)
		mm.event("miss")
		go func() {
			defer close(e.done)
			e.val, e.err = build()
			if e.err != nil {
				// Drop the failed entry (waiters already holding e still share
				// the error); the guard keeps a concurrent rebuild's entry safe.
				mm.mu.Lock()
				if mm.m[k] == e {
					delete(mm.m, k)
				}
				mm.mu.Unlock()
				return
			}
			e.node = &lruNode{cost: cost(e.val), drop: func() {
				// Only unmap if k still resolves to this entry: a key can be
				// evicted and rebuilt while the stale node sits in the list.
				mm.mu.Lock()
				if mm.m[k] == e {
					delete(mm.m, k)
				}
				mm.mu.Unlock()
				mm.evictions.Add(1)
				mm.event("eviction")
			}}
			b.insert(e.node)
		}()
	}
	select {
	case <-e.done:
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err()
	}
	// The done close orders this read after the build, so e.node is safe.
	if ok && e.node != nil {
		b.touch(e.node)
	}
	return e.val, e.err
}

// planKey identifies one planning problem. core.Options is a flat value
// struct, so the key is comparable and two cells that agree on every
// planning input share one schedule and one traffic ledger.
type planKey struct {
	network string
	opts    core.Options
}

// Cache memoizes the expensive artifacts shared between sweep cells: built
// networks, MBS schedules, and per-step traffic ledgers. All three are
// immutable after construction, so cached values are shared freely across
// goroutines — eviction only drops the cache's reference, never a value a
// caller already holds. The zero value is ready to use and unbounded.
type Cache struct {
	bud     budget
	nets    memo[string, *graph.Network]
	plans   memo[planKey, *core.Schedule]
	ledgers memo[planKey, *core.Traffic]
}

// SetMaxBytes bounds the cache's estimated footprint; entries past the bound
// are evicted least-recently-used across all three tables. maxBytes <= 0
// restores the unbounded default.
func (c *Cache) SetMaxBytes(maxBytes int64) { c.bud.setMax(maxBytes) }

// SetEventHook installs fn to observe every cache counter event with its
// table name ("network" | "plan" | "traffic") and kind ("hit" | "miss" |
// "eviction"). fn must be safe for concurrent use and cheap — it runs on the
// lookup path (hits/misses) and under the budget lock (evictions). nil
// uninstalls.
func (c *Cache) SetEventHook(fn func(table, kind string)) {
	install := func(table string) *func(kind string) {
		if fn == nil {
			return nil
		}
		h := func(kind string) { fn(table, kind) }
		return &h
	}
	c.nets.hook.Store(install("network"))
	c.plans.hook.Store(install("plan"))
	c.ledgers.hook.Store(install("traffic"))
}

// Cost estimates. Values are immutable object graphs, so a flat per-element
// charge is a faithful order-of-magnitude accounting — the bound controls
// growth, it is not a malloc-exact ledger. Networks are charged once and
// shared by every schedule that references them.
func costNetwork(n *graph.Network) int64 {
	return 512 + 384*int64(len(n.Layers())) + 128*int64(len(n.Blocks))
}

func costSchedule(s *core.Schedule) int64 {
	return 256 + 64*int64(len(s.Groups)) + 8*int64(len(s.Net.Blocks))
}

func costTraffic(t *core.Traffic) int64 {
	return 128 + 192*int64(len(t.Items))
}

// Network returns the built network for name, constructing it on first use.
func (c *Cache) Network(ctx context.Context, name string) (*graph.Network, error) {
	return c.nets.get(ctx, &c.bud, name, costNetwork, func() (*graph.Network, error) {
		return models.Build(name)
	})
}

// Plan returns the MBS schedule for (network, opts), planning on first use.
// Nested artifact lookups inside the build run under context.Background():
// once started a build always completes (and caches), whatever happens to
// the caller that triggered it.
func (c *Cache) Plan(ctx context.Context, network string, opts core.Options) (*core.Schedule, error) {
	return c.plans.get(ctx, &c.bud, planKey{network, opts}, costSchedule, func() (*core.Schedule, error) {
		net, err := c.Network(context.Background(), network)
		if err != nil {
			return nil, err
		}
		return core.Plan(net, opts)
	})
}

// Traffic returns the traffic ledger for (network, opts), walking the
// schedule on first use.
func (c *Cache) Traffic(ctx context.Context, network string, opts core.Options) (*core.Traffic, error) {
	return c.ledgers.get(ctx, &c.bud, planKey{network, opts}, costTraffic, func() (*core.Traffic, error) {
		s, err := c.Plan(context.Background(), network, opts)
		if err != nil {
			return nil, err
		}
		return core.ComputeTraffic(s), nil
	})
}

// Stats reports hit/miss/eviction counters per cache table plus the shared
// byte accounting.
type Stats struct {
	NetworkHits, NetworkMisses, NetworkEvictions int64
	PlanHits, PlanMisses, PlanEvictions          int64
	TrafficHits, TrafficMisses, TrafficEvictions int64

	// Bytes is the estimated footprint of the cached artifacts; MaxBytes is
	// the configured bound (0 = unbounded).
	Bytes, MaxBytes int64
}

// Hits returns the total hit count across tables.
func (s Stats) Hits() int64 { return s.NetworkHits + s.PlanHits + s.TrafficHits }

// Misses returns the total miss count across tables.
func (s Stats) Misses() int64 { return s.NetworkMisses + s.PlanMisses + s.TrafficMisses }

// Evictions returns the total eviction count across tables.
func (s Stats) Evictions() int64 {
	return s.NetworkEvictions + s.PlanEvictions + s.TrafficEvictions
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits() + s.Misses()
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	cur, max := c.bud.snapshot()
	return Stats{
		NetworkHits: c.nets.hits.Load(), NetworkMisses: c.nets.misses.Load(),
		NetworkEvictions: c.nets.evictions.Load(),
		PlanHits:         c.plans.hits.Load(), PlanMisses: c.plans.misses.Load(),
		PlanEvictions: c.plans.evictions.Load(),
		TrafficHits:   c.ledgers.hits.Load(), TrafficMisses: c.ledgers.misses.Load(),
		TrafficEvictions: c.ledgers.evictions.Load(),
		Bytes:            cur, MaxBytes: max,
	}
}
