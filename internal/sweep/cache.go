package sweep

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
)

// memo is a concurrency-safe keyed memoization table with singleflight
// semantics: concurrent callers of the same key block on one build and share
// its result (value and error alike).
type memo[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]*memoEntry[V]
	hits   atomic.Int64
	misses atomic.Int64
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// get returns the cached value for k, building it at most once.
func (mm *memo[K, V]) get(k K, build func() (V, error)) (V, error) {
	mm.mu.Lock()
	if mm.m == nil {
		mm.m = make(map[K]*memoEntry[V])
	}
	e, ok := mm.m[k]
	if !ok {
		e = new(memoEntry[V])
		mm.m[k] = e
	}
	mm.mu.Unlock()
	if ok {
		mm.hits.Add(1)
	} else {
		mm.misses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// planKey identifies one planning problem. core.Options is a flat value
// struct, so the key is comparable and two cells that agree on every
// planning input share one schedule and one traffic ledger.
type planKey struct {
	network string
	opts    core.Options
}

// Cache memoizes the expensive artifacts shared between sweep cells: built
// networks, MBS schedules, and per-step traffic ledgers. All three are
// immutable after construction, so cached values are shared freely across
// goroutines. The zero value is ready to use.
type Cache struct {
	nets    memo[string, *graph.Network]
	plans   memo[planKey, *core.Schedule]
	ledgers memo[planKey, *core.Traffic]
}

// Network returns the built network for name, constructing it on first use.
func (c *Cache) Network(name string) (*graph.Network, error) {
	return c.nets.get(name, func() (*graph.Network, error) {
		return models.Build(name)
	})
}

// Plan returns the MBS schedule for (network, opts), planning on first use.
func (c *Cache) Plan(network string, opts core.Options) (*core.Schedule, error) {
	return c.plans.get(planKey{network, opts}, func() (*core.Schedule, error) {
		net, err := c.Network(network)
		if err != nil {
			return nil, err
		}
		return core.Plan(net, opts)
	})
}

// Traffic returns the traffic ledger for (network, opts), walking the
// schedule on first use.
func (c *Cache) Traffic(network string, opts core.Options) (*core.Traffic, error) {
	return c.ledgers.get(planKey{network, opts}, func() (*core.Traffic, error) {
		s, err := c.Plan(network, opts)
		if err != nil {
			return nil, err
		}
		return core.ComputeTraffic(s), nil
	})
}

// Stats reports hit/miss counters per cache table.
type Stats struct {
	NetworkHits, NetworkMisses int64
	PlanHits, PlanMisses       int64
	TrafficHits, TrafficMisses int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		NetworkHits: c.nets.hits.Load(), NetworkMisses: c.nets.misses.Load(),
		PlanHits: c.plans.hits.Load(), PlanMisses: c.plans.misses.Load(),
		TrafficHits: c.ledgers.hits.Load(), TrafficMisses: c.ledgers.misses.Load(),
	}
}
