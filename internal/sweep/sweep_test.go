package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/models"
	"repro/internal/sim"
)

func TestMapPreservesOrder(t *testing.T) {
	e := New(8)
	out, err := Map(context.Background(), e, 100, func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), New(4), 0, func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Indices 30 and 60 fail; whatever the goroutine interleaving, the
	// error at the lowest claimed index must win.
	for _, workers := range []int{1, 4, 16} {
		e := New(workers)
		_, err := Map(context.Background(), e, 100, func(_ context.Context, i int) (int, error) {
			if i == 30 || i == 60 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 30 failed" {
			t.Errorf("workers=%d: err = %v, want cell 30 failed", workers, err)
		}
	}
}

func TestMapStopsClaimingAfterError(t *testing.T) {
	var calls atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(context.Background(), New(2), 1000, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return 0, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n > 10 {
		t.Errorf("fn called %d times after immediate failure, want early stop", n)
	}
}

func TestCacheSharesArtifacts(t *testing.T) {
	c := new(Cache)
	opts := core.DefaultOptions(core.MBS2, 32)
	s1, err := c.Plan(context.Background(), "resnet50", opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Plan(context.Background(), "resnet50", opts)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("repeated Plan should return the cached schedule")
	}
	n1, _ := c.Network(context.Background(), "resnet50")
	n2, _ := c.Network(context.Background(), "resnet50")
	if n1 != n2 || n1 != s1.Net {
		t.Error("plans should share the cached network")
	}
	tr1, err := c.Traffic(context.Background(), "resnet50", opts)
	if err != nil {
		t.Fatal(err)
	}
	tr2, _ := c.Traffic(context.Background(), "resnet50", opts)
	if tr1 != tr2 {
		t.Error("repeated Traffic should return the cached ledger")
	}
	st := c.Stats()
	if st.PlanMisses != 1 || st.NetworkMisses != 1 || st.TrafficMisses != 1 {
		t.Errorf("stats = %+v, want one miss per table", st)
	}
	if st.PlanHits < 1 || st.NetworkHits < 1 || st.TrafficHits < 1 {
		t.Errorf("stats = %+v, want hits on repeats", st)
	}
}

func TestCacheErrorsAreCached(t *testing.T) {
	c := new(Cache)
	if _, err := c.Plan(context.Background(), "nonexistent", core.DefaultOptions(core.MBS2, 32)); err == nil {
		t.Fatal("want error for unknown network")
	}
	if _, err := c.Traffic(context.Background(), "nonexistent", core.DefaultOptions(core.MBS2, 32)); err == nil {
		t.Fatal("want error for unknown network")
	}
}

// TestCacheHitEqualsFreshPlan is the cache-correctness property test: for
// every (network, config) the paper evaluates, a schedule and traffic ledger
// served from the cache must be semantically identical to ones planned from
// scratch on a freshly built network.
func TestCacheHitEqualsFreshPlan(t *testing.T) {
	c := new(Cache)
	for _, network := range []string{"resnet50", "inceptionv4", "alexnet"} {
		for _, cfg := range core.Configs {
			opts := core.DefaultOptions(cfg, models.DefaultBatch(network))
			// Warm the cache, then read it again so the second read is a hit.
			if _, err := c.Plan(context.Background(), network, opts); err != nil {
				t.Fatal(err)
			}
			cached, err := c.Plan(context.Background(), network, opts)
			if err != nil {
				t.Fatal(err)
			}
			cachedTr, err := c.Traffic(context.Background(), network, opts)
			if err != nil {
				t.Fatal(err)
			}

			net, err := models.Build(network)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := core.Plan(net, opts)
			if err != nil {
				t.Fatal(err)
			}
			freshTr := core.ComputeTraffic(fresh)

			label := fmt.Sprintf("%s/%s", network, cfg)
			if !reflect.DeepEqual(cached.Groups, fresh.Groups) {
				t.Errorf("%s: cached groups %v != fresh %v", label, cached.Groups, fresh.Groups)
			}
			if cached.Opts != fresh.Opts {
				t.Errorf("%s: cached opts %+v != fresh %+v", label, cached.Opts, fresh.Opts)
			}
			if len(cachedTr.Items) != len(freshTr.Items) {
				t.Fatalf("%s: ledger lengths differ: %d != %d",
					label, len(cachedTr.Items), len(freshTr.Items))
			}
			// Item-by-item equality; Layer pointers differ between network
			// instances, so DeepEqual compares the pointed-to layer values.
			for i := range cachedTr.Items {
				if !reflect.DeepEqual(cachedTr.Items[i], freshTr.Items[i]) {
					t.Errorf("%s: ledger item %d differs:\ncached: %+v\nfresh:  %+v",
						label, i, cachedTr.Items[i], freshTr.Items[i])
				}
			}
			if cachedTr.TotalDRAM() != freshTr.TotalDRAM() || cachedTr.TotalGB() != freshTr.TotalGB() {
				t.Errorf("%s: ledger totals differ", label)
			}
		}
	}
}

func TestCellDefaults(t *testing.T) {
	c := Cell{Network: "alexnet", Config: core.MBS1}.normalized()
	if c.Memory.Name != "HBM2" {
		t.Errorf("memory = %q, want HBM2", c.Memory.Name)
	}
	if c.Batch != 64 {
		t.Errorf("batch = %d, want AlexNet default 64", c.Batch)
	}
	if c.BufferBytes != core.DefaultBufferBytes {
		t.Errorf("buffer = %d, want default", c.BufferBytes)
	}
	opts := c.Options()
	if opts.Config != core.MBS1 || opts.Batch != 64 || opts.BufferBytes != core.DefaultBufferBytes {
		t.Errorf("opts = %+v", opts)
	}
}

func TestGridCellsOrderAndCount(t *testing.T) {
	g := Grid{
		Networks: []string{"a", "b"},
		Configs:  []core.Config{core.IL, core.MBS2},
		Buffers:  []int64{5 << 20, 10 << 20},
	}
	cells := g.Cells()
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// Networks outermost, buffers innermost.
	if cells[0].Network != "a" || cells[0].Config != core.IL || cells[0].BufferBytes != 5<<20 {
		t.Errorf("cells[0] = %+v", cells[0])
	}
	if cells[1].BufferBytes != 10<<20 {
		t.Errorf("cells[1] = %+v", cells[1])
	}
	if cells[4].Network != "b" {
		t.Errorf("cells[4] = %+v", cells[4])
	}
}

// TestSimulateMatchesDirect pins the engine's per-cell path to the plain
// plan-then-simulate path it replaces.
func TestSimulateMatchesDirect(t *testing.T) {
	e := New(4)
	cell := Cell{Network: "resnet50", Config: core.MBS2, Memory: memsys.GDDR5, Batch: 32}
	got, err := e.Simulate(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	net, err := models.Build("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	want := sim.MustSimulate(
		core.MustPlan(net, core.DefaultOptions(core.MBS2, 32)),
		sim.DefaultHW(core.MBS2, memsys.GDDR5))
	if got.StepSeconds != want.StepSeconds || got.DRAMBytes != want.DRAMBytes ||
		got.GBBytes != want.GBBytes || got.Utilization != want.Utilization ||
		got.Energy != want.Energy {
		t.Errorf("engine result differs from direct simulation:\n got %v\nwant %v", got, want)
	}
}

// TestSimulateGridConcurrent exercises the cache under real contention:
// many goroutines resolving an overlapping cell set (run with -race).
func TestSimulateGridConcurrent(t *testing.T) {
	e := New(8)
	grid := Grid{
		Networks: []string{"resnet50", "alexnet"},
		Configs:  core.Configs,
		Memories: []memsys.DRAM{memsys.HBM2, memsys.LPDDR4},
	}
	// Duplicate the grid so every plan is requested by multiple cells.
	cells := append(grid.Cells(), grid.Cells()...)
	results, err := e.SimulateGrid(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	half := len(cells) / 2
	for i := 0; i < half; i++ {
		if results[i].StepSeconds != results[half+i].StepSeconds {
			t.Errorf("cell %d: duplicate cells disagree", i)
		}
	}
	st := e.Cache().Stats()
	// 2 networks x 6 configs = 12 distinct plans for 48 cells.
	if st.PlanMisses != 12 {
		t.Errorf("plan misses = %d, want 12", st.PlanMisses)
	}
}

// TestMapCancelFreesWorkers is the worker-slot guarantee: cancelling the
// context mid-grid stops the pool claiming new cells, so Map returns (and
// the engine's worker slots free) long before the grid would have finished.
func TestMapCancelFreesWorkers(t *testing.T) {
	const workers, n = 4, 1000
	e := New(workers)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	allClaimed := make(chan struct{})
	go func() {
		<-allClaimed // every worker holds a cell; cancel the grid
		cancel()
	}()
	_, err := Map(ctx, e, n, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == workers {
			close(allClaimed)
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got != workers {
		t.Errorf("cells started = %d, want exactly the %d claimed before cancel", got, workers)
	}
}

// TestSimulateGridCancelled: a cancelled context aborts a real grid and
// reports the context error, not a wrapped per-cell one.
func TestSimulateGridCancelled(t *testing.T) {
	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells := Grid{Networks: []string{"resnet50", "alexnet"}, Configs: core.Configs}.Cells()
	if _, err := e.SimulateGrid(ctx, cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSimulateGridObserver: the streaming hook sees every cell exactly
// once, with the row matching the returned result.
func TestSimulateGridObserver(t *testing.T) {
	e := New(4)
	grid := Grid{Networks: []string{"resnet50", "alexnet"}, Configs: core.Configs}
	cells := grid.Cells()
	var mu sync.Mutex
	seen := make(map[int]Row)
	ctx := WithCellObserver(context.Background(), func(i int, cell Cell, row Row) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[i]; dup {
			t.Errorf("cell %d observed twice", i)
		}
		seen[i] = row
	})
	results, err := e.SimulateGrid(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cells) {
		t.Fatalf("observed %d cells, want %d", len(seen), len(cells))
	}
	for i, res := range results {
		if want := RowOf(cells[i], res); seen[i] != want {
			t.Errorf("cell %d: observed row %+v, want %+v", i, seen[i], want)
		}
	}
}
