package sweep

import (
	"context"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
)

// TestSimulateGridPublishesCells: with a bus wired and a subscriber
// attached, every completed cell is published on sweep.cell and the cache's
// hits/misses surface on sweep.cache.
func TestSimulateGridPublishesCells(t *testing.T) {
	e := New(4)
	b := bus.New(bus.Config{})
	defer b.Close()
	e.SetBus(b)

	sub, err := b.Subscribe(bus.SubOptions{Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	grid := Grid{Networks: []string{"resnet50", "alexnet"}, Configs: core.Configs}
	cells := grid.Cells()
	results, err := e.SimulateGrid(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.CellsCompleted(); got != int64(len(cells)) {
		t.Fatalf("CellsCompleted = %d, want %d", got, len(cells))
	}

	seen := make(map[int]bus.SweepCell)
	var cacheEvents int
drain:
	for {
		select {
		case ev := <-sub.C():
			switch d := ev.Data.(type) {
			case bus.SweepCell:
				if _, dup := seen[d.Index]; dup {
					t.Fatalf("cell %d published twice", d.Index)
				}
				seen[d.Index] = d
			case bus.CacheEvent:
				if d.Kind != "hit" && d.Kind != "miss" && d.Kind != "eviction" {
					t.Fatalf("unknown cache event kind %q", d.Kind)
				}
				cacheEvents++
			}
		default:
			break drain
		}
	}
	if len(seen) != len(cells) {
		t.Fatalf("published %d sweep.cell events, want %d (dropped %d)", len(seen), len(cells), sub.Dropped())
	}
	for i, res := range results {
		row, ok := seen[i].Row.(Row)
		if !ok || row != RowOf(cells[i], res) {
			t.Fatalf("cell %d: published row %+v, want %+v", i, seen[i].Row, RowOf(cells[i], res))
		}
		if seen[i].Cell != cells[i].String() {
			t.Fatalf("cell %d label = %q, want %q", i, seen[i].Cell, cells[i].String())
		}
	}
	st := e.Cache().Stats()
	if int64(cacheEvents) != st.Hits()+st.Misses()+st.Evictions() {
		t.Fatalf("cache events = %d, counters say %d", cacheEvents, st.Hits()+st.Misses()+st.Evictions())
	}
}

// TestSetBusNilUnwires: after SetBus(nil), sweeps publish nothing and the
// cache hook is gone, but the cell counter still advances.
func TestSetBusNilUnwires(t *testing.T) {
	e := New(2)
	b := bus.New(bus.Config{})
	defer b.Close()
	e.SetBus(b)
	e.SetBus(nil)
	sub, err := b.Subscribe(bus.SubOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	cells := Grid{Networks: []string{"alexnet"}}.Cells()
	if _, err := e.SimulateGrid(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if n := len(sub.C()); n != 0 {
		t.Fatalf("unwired engine still published %d events", n)
	}
	if e.CellsCompleted() != int64(len(cells)) {
		t.Fatalf("CellsCompleted = %d, want %d", e.CellsCompleted(), len(cells))
	}
}
