package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
)

// TestMemoSingleflight pins the coalescing guarantee directly: N concurrent
// requests for one cold key run the build function exactly once, and every
// caller gets the shared result.
func TestMemoSingleflight(t *testing.T) {
	var mm memo[string, int]
	var b budget
	var builds int
	start := make(chan struct{})
	var wg sync.WaitGroup
	const clients = 32
	results := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := mm.get(context.Background(), &b, "key", func(int) int64 { return 1 }, func() (int, error) {
				builds++ // safe: a second builder for one key would race here
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	close(start)
	wg.Wait()
	if builds != 1 {
		t.Errorf("build ran %d times for one key, want 1", builds)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("client %d got %d", i, v)
		}
	}
	st := mm.misses.Load() + mm.hits.Load()
	if st != clients {
		t.Errorf("hits+misses = %d, want %d", st, clients)
	}
}

// TestMemoLRUEviction exercises the bound: with room for two unit-cost
// entries, inserting a third evicts the least recently used one.
func TestMemoLRUEviction(t *testing.T) {
	var mm memo[string, string]
	var b budget
	b.setMax(2)
	unit := func(string) int64 { return 1 }
	build := func(v string) func() (string, error) {
		return func() (string, error) { return v, nil }
	}
	mm.get(context.Background(), &b, "a", unit, build("A"))
	mm.get(context.Background(), &b, "b", unit, build("B"))
	mm.get(context.Background(), &b, "a", unit, build("A")) // touch a: b is now coldest
	mm.get(context.Background(), &b, "c", unit, build("C")) // evicts b
	if ev := mm.evictions.Load(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	misses := mm.misses.Load()
	mm.get(context.Background(), &b, "a", unit, build("A"))
	mm.get(context.Background(), &b, "c", unit, build("C"))
	if mm.misses.Load() != misses {
		t.Error("a and c should still be cached")
	}
	mm.get(context.Background(), &b, "b", unit, build("B"))
	if mm.misses.Load() != misses+1 {
		t.Error("b should have been evicted and rebuilt")
	}
	if cur, max := b.snapshot(); cur > max {
		t.Errorf("budget %d over bound %d", cur, max)
	}
}

// TestMemoErrorsNotRetained verifies failed builds are charged nothing and
// dropped from the table once complete: distinct invalid keys (reachable
// from untrusted HTTP params) must not grow the memo, and the byte budget —
// which only accounts successful builds — stays truthful.
func TestMemoErrorsNotRetained(t *testing.T) {
	var mm memo[string, string]
	var b budget
	b.setMax(1000)
	boom := fmt.Errorf("boom")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("bad-%d", i%2)
		if _, err := mm.get(context.Background(), &b, key, func(string) int64 { return 1 },
			func() (string, error) { return "", boom }); err != boom {
			t.Fatalf("err = %v", err)
		}
	}
	if cur, _ := b.snapshot(); cur != 0 {
		t.Errorf("error results charged %d bytes", cur)
	}
	mm.mu.Lock()
	size := len(mm.m)
	mm.mu.Unlock()
	if size != 0 {
		t.Errorf("memo retains %d error entries, want 0", size)
	}
	if mm.misses.Load() != 100 || mm.hits.Load() != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/100", mm.hits.Load(), mm.misses.Load())
	}
}

// TestCacheUnboundedByDefault: the zero-value cache never evicts, preserving
// the one-shot CLI behaviour every existing caller relies on.
func TestCacheUnboundedByDefault(t *testing.T) {
	c := new(Cache)
	for _, network := range models.Names() {
		for _, cfg := range core.Configs {
			opts := core.DefaultOptions(cfg, models.DefaultBatch(network))
			if _, err := c.Traffic(context.Background(), network, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.Evictions() != 0 {
		t.Errorf("unbounded cache evicted %d entries", st.Evictions())
	}
	if st.MaxBytes != 0 {
		t.Errorf("MaxBytes = %d, want 0", st.MaxBytes)
	}
	if st.Bytes == 0 {
		t.Error("cache holds artifacts but reports zero bytes")
	}
}

// TestCacheBoundHolds fills the cache far past a realistic bound and checks
// eviction keeps the accounted footprint under it while results stay
// correct (an evicted plan rebuilds to an identical schedule).
func TestCacheBoundHolds(t *testing.T) {
	const maxBytes = 512 << 10
	c := new(Cache)
	c.SetMaxBytes(maxBytes)
	for round := 0; round < 2; round++ {
		for _, network := range models.Names() {
			for _, cfg := range core.Configs {
				opts := core.DefaultOptions(cfg, models.DefaultBatch(network))
				s, err := c.Plan(context.Background(), network, opts)
				if err != nil {
					t.Fatal(err)
				}
				if s.Opts != opts {
					t.Fatalf("%s/%s: wrong schedule returned", network, cfg)
				}
				if _, err := c.Traffic(context.Background(), network, opts); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	st := c.Stats()
	if st.Evictions() == 0 {
		t.Error("expected evictions past the bound")
	}
	if st.Bytes > maxBytes {
		t.Errorf("cache bytes %d exceed bound %d", st.Bytes, maxBytes)
	}
	if st.MaxBytes != maxBytes {
		t.Errorf("MaxBytes = %d", st.MaxBytes)
	}
}

// TestCacheSetMaxBytesEvictsDown: installing a tighter bound on a warm
// cache immediately drops cold entries.
func TestCacheSetMaxBytesEvictsDown(t *testing.T) {
	c := new(Cache)
	for _, network := range []string{"resnet50", "alexnet", "inceptionv3"} {
		opts := core.DefaultOptions(core.MBS2, models.DefaultBatch(network))
		if _, err := c.Traffic(context.Background(), network, opts); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats()
	if before.Bytes == 0 {
		t.Fatal("warm cache reports zero bytes")
	}
	target := before.Bytes / 4
	c.SetMaxBytes(target)
	after := c.Stats()
	if after.Bytes > target {
		t.Errorf("bytes %d after SetMaxBytes(%d)", after.Bytes, target)
	}
	if after.Evictions() == 0 {
		t.Error("tightening the bound evicted nothing")
	}
}

// TestCacheBoundedConcurrent hammers a small bounded cache from many
// goroutines (run under -race): correctness must survive eviction racing
// with lookups, and the bound must hold at quiescence.
func TestCacheBoundedConcurrent(t *testing.T) {
	const maxBytes = 256 << 10
	c := new(Cache)
	c.SetMaxBytes(maxBytes)
	networks := []string{"resnet50", "alexnet", "inceptionv3", "resnet101"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				network := networks[(w+i)%len(networks)]
				cfg := core.Configs[i%len(core.Configs)]
				opts := core.DefaultOptions(cfg, models.DefaultBatch(network))
				s, err := c.Plan(context.Background(), network, opts)
				if err != nil {
					t.Error(err)
					return
				}
				if s.Opts.Config != cfg {
					t.Errorf("%s: got schedule for %s, want %s", network, s.Opts.Config, cfg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > maxBytes {
		t.Errorf("cache bytes %d exceed bound %d", st.Bytes, maxBytes)
	}
}

// TestMemoWaiterAbandonDoesNotPoison is the cancellation contract of the
// singleflight memo: a waiter whose context dies mid-build gets ctx.Err()
// immediately, the build keeps running for everyone else, and the finished
// artifact lands in the cache — the abandoned wait neither cancels nor
// poisons the shared entry.
func TestMemoWaiterAbandonDoesNotPoison(t *testing.T) {
	var mm memo[string, int]
	var b budget
	gate := make(chan struct{})
	building := make(chan struct{})
	unit := func(int) int64 { return 1 }
	build := func() (int, error) {
		close(building)
		<-gate
		return 42, nil
	}

	// The leader requests the key with a cancellable context and walks away
	// while the build is blocked on the gate.
	ctx, cancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := mm.get(ctx, &b, "key", unit, build)
		leaderErr <- err
	}()
	<-building // the build is in flight
	cancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned waiter got %v, want context.Canceled", err)
	}

	// A second waiter with a live context joins the same in-flight build.
	got := make(chan int, 1)
	go func() {
		v, err := mm.get(context.Background(), &b, "key", unit, build)
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	close(gate) // let the original build finish
	if v := <-got; v != 42 {
		t.Fatalf("waiter got %d, want 42", v)
	}

	// The entry is cached and healthy: a fresh get is a hit on the same value.
	misses := mm.misses.Load()
	v, err := mm.get(context.Background(), &b, "key", unit,
		func() (int, error) { return 0, errors.New("rebuild would be poison") })
	if err != nil || v != 42 {
		t.Fatalf("post-abandon get = %d, %v; want 42, nil", v, err)
	}
	if mm.misses.Load() != misses {
		t.Error("post-abandon get rebuilt the entry — the cancelled waiter poisoned it")
	}
}

// TestMemoPreCancelledContext: a get with an already-dead context still
// starts the build (so future callers benefit) but returns without waiting.
func TestMemoPreCancelledContext(t *testing.T) {
	var mm memo[string, int]
	var b budget
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	if _, err := mm.get(ctx, &b, "key", func(int) int64 { return 1 },
		func() (int, error) { close(done); return 7, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	<-done // the detached build ran regardless
	if v, err := mm.get(context.Background(), &b, "key", func(int) int64 { return 1 },
		func() (int, error) { return 0, errors.New("no rebuild") }); err != nil || v != 7 {
		t.Fatalf("second get = %d, %v; want cached 7", v, err)
	}
}
