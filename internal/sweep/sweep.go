// Package sweep is the concurrent experiment engine behind the evaluation
// suite. It expresses figures, tables and custom scenarios as job grids over
// (network, config, memory, batch, buffer) cells, executes the cells on a
// bounded worker pool with deterministic result ordering, and memoizes the
// expensive shared artifacts — built networks, MBS schedules and traffic
// ledgers — so cells repeated within and across figures are computed once.
//
// Determinism is a hard guarantee: results come back in cell order whatever
// the worker count, and every per-cell computation is a pure function of the
// cell, so a run at -parallel N is byte-identical to a sequential run.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/sim"
)

// Engine runs experiment cells across a worker pool, sharing one Cache.
type Engine struct {
	workers int
	cache   *Cache
}

// New returns an engine with the given worker count; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, cache: new(Cache)}
}

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's artifact cache.
func (e *Engine) Cache() *Cache { return e.cache }

// Network returns the cached network for name.
func (e *Engine) Network(name string) (*graph.Network, error) {
	return e.cache.Network(name)
}

// Plan returns the cached schedule for (network, opts).
func (e *Engine) Plan(network string, opts core.Options) (*core.Schedule, error) {
	return e.cache.Plan(network, opts)
}

// Traffic returns the cached traffic ledger for (network, opts).
func (e *Engine) Traffic(network string, opts core.Options) (*core.Traffic, error) {
	return e.cache.Traffic(network, opts)
}

// Map runs fn(i) for every i in [0, n) on up to e.Workers() goroutines and
// returns the results in index order. Indices are claimed in increasing
// order; on failure no further indices are started and the error at the
// lowest index is returned, so the reported error does not depend on
// goroutine scheduling.
func Map[T any](e *Engine, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := min(e.workers, n)
	errs := make([]error, n)
	var next atomic.Int64
	var errIdx atomic.Int64
	errIdx.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Stop claiming after a failure, but a claimed index always
				// runs — otherwise a preempted worker could skip a
				// lower-index failure and break the lowest-index guarantee.
				if errIdx.Load() < int64(n) {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					for {
						cur := errIdx.Load()
						if int64(i) >= cur || errIdx.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if idx := errIdx.Load(); idx < int64(n) {
		return nil, errs[idx]
	}
	return out, nil
}

// Cell is one point of an experiment grid. Zero fields take the paper's
// defaults: HBM2 memory, the network's default mini-batch, a 10 MiB buffer.
type Cell struct {
	Network     string
	Config      core.Config
	Memory      memsys.DRAM // zero value selects HBM2
	Batch       int         // 0 selects models.DefaultBatch(Network)
	BufferBytes int64       // 0 selects core.DefaultBufferBytes
}

// normalized resolves the cell's defaulted fields.
func (c Cell) normalized() Cell {
	if c.Memory.Name == "" {
		c.Memory = memsys.HBM2
	}
	if c.Batch == 0 {
		c.Batch = models.DefaultBatch(c.Network)
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = core.DefaultBufferBytes
	}
	return c
}

// Options returns the planning options the cell resolves to.
func (c Cell) Options() core.Options {
	c = c.normalized()
	opts := core.DefaultOptions(c.Config, c.Batch)
	opts.BufferBytes = c.BufferBytes
	return opts
}

// String labels the cell for logs and errors.
func (c Cell) String() string {
	c = c.normalized()
	return fmt.Sprintf("%s/%s/%s/b%d/%dMiB",
		c.Network, c.Config, c.Memory.Name, c.Batch, c.BufferBytes>>20)
}

// Grid is the cartesian product of experiment axes. Empty axes collapse to
// a single zero value, i.e. the Cell default for that axis.
type Grid struct {
	Networks []string
	Configs  []core.Config
	Memories []memsys.DRAM
	Batches  []int
	Buffers  []int64 // bytes
}

// Cells enumerates the grid in deterministic order: networks outermost,
// then configs, memories, batches, buffers.
func (g Grid) Cells() []Cell {
	networks := g.Networks
	if len(networks) == 0 {
		networks = []string{""}
	}
	configs := g.Configs
	if len(configs) == 0 {
		configs = []core.Config{core.Baseline}
	}
	memories := g.Memories
	if len(memories) == 0 {
		memories = []memsys.DRAM{{}}
	}
	batches := g.Batches
	if len(batches) == 0 {
		batches = []int{0}
	}
	buffers := g.Buffers
	if len(buffers) == 0 {
		buffers = []int64{0}
	}
	cells := make([]Cell, 0, len(networks)*len(configs)*len(memories)*len(batches)*len(buffers))
	for _, n := range networks {
		for _, cfg := range configs {
			for _, mem := range memories {
				for _, b := range batches {
					for _, buf := range buffers {
						cells = append(cells, Cell{
							Network: n, Config: cfg, Memory: mem,
							Batch: b, BufferBytes: buf,
						})
					}
				}
			}
		}
	}
	return cells
}

// Simulate runs one cell: it plans (or reuses) the schedule and traffic
// ledger for the cell's planning inputs and simulates a training step on
// the cell's memory system.
func (e *Engine) Simulate(cell Cell) (*sim.Result, error) {
	cell = cell.normalized()
	opts := cell.Options()
	s, err := e.cache.Plan(cell.Network, opts)
	if err != nil {
		return nil, fmt.Errorf("sweep: cell %s: %w", cell, err)
	}
	tr, err := e.cache.Traffic(cell.Network, opts)
	if err != nil {
		return nil, fmt.Errorf("sweep: cell %s: %w", cell, err)
	}
	hw := sim.DefaultHW(cell.Config, cell.Memory)
	hw.GB = hw.GB.WithSize(opts.BufferBytes)
	r, err := sim.SimulateTraffic(s, tr, hw)
	if err != nil {
		return nil, fmt.Errorf("sweep: cell %s: %w", cell, err)
	}
	return r, nil
}

// SimulateGrid simulates every cell concurrently, returning results in cell
// order.
func (e *Engine) SimulateGrid(cells []Cell) ([]*sim.Result, error) {
	return Map(e, len(cells), func(i int) (*sim.Result, error) {
		return e.Simulate(cells[i])
	})
}

// Row is the flattened result of one simulated cell, suitable for aligned
// tables and JSON output.
type Row struct {
	Network     string      `json:"network"`
	Config      core.Config `json:"config"`
	Memory      string      `json:"memory"`
	Batch       int         `json:"batch"`
	BufferMiB   int64       `json:"buffer_mib"`
	StepSeconds float64     `json:"step_seconds"`
	DRAMBytes   int64       `json:"dram_bytes"`
	GBBytes     int64       `json:"gb_bytes"`
	Utilization float64     `json:"utilization"`
	EnergyJ     float64     `json:"energy_joules"`
}

// RowOf flattens one cell's simulation result.
func RowOf(c Cell, r *sim.Result) Row {
	c = c.normalized()
	return Row{
		Network: c.Network, Config: c.Config, Memory: c.Memory.Name,
		Batch: c.Batch, BufferMiB: c.BufferBytes >> 20,
		StepSeconds: r.StepSeconds, DRAMBytes: r.DRAMBytes, GBBytes: r.GBBytes,
		Utilization: r.Utilization, EnergyJ: r.Energy.Total(),
	}
}

// Rows flattens a grid's results pairwise; cells and results must be the
// same length (as returned by SimulateGrid).
func Rows(cells []Cell, results []*sim.Result) []Row {
	rows := make([]Row, len(cells))
	for i := range cells {
		rows[i] = RowOf(cells[i], results[i])
	}
	return rows
}

// RenderRows writes a sweep result table in the report style.
func RenderRows(w io.Writer, title string, rows []Row) {
	t := report.NewTable(title,
		"network", "config", "memory", "batch", "buffer",
		"time", "DRAM", "GB", "util", "energy")
	for _, r := range rows {
		t.RowF(r.Network, r.Config.String(), r.Memory,
			fmt.Sprint(r.Batch), fmt.Sprintf("%d MiB", r.BufferMiB),
			report.Ms(r.StepSeconds),
			fmt.Sprintf("%.2f GB", float64(r.DRAMBytes)/1e9),
			fmt.Sprintf("%.2f GB", float64(r.GBBytes)/1e9),
			report.Pct(r.Utilization),
			fmt.Sprintf("%.2f J", r.EnergyJ))
	}
	t.Render(w)
}
