// Package sweep is the concurrent experiment engine behind the evaluation
// suite. It expresses figures, tables and custom scenarios as job grids over
// (network, config, memory, batch, buffer) cells, executes the cells on a
// bounded worker pool with deterministic result ordering, and memoizes the
// expensive shared artifacts — built networks, MBS schedules and traffic
// ledgers — so cells repeated within and across figures are computed once.
//
// Determinism is a hard guarantee: results come back in cell order whatever
// the worker count, and every per-cell computation is a pure function of the
// cell, so a run at -parallel N is byte-identical to a sequential run.
//
// Execution is context-aware: every entry point takes a context.Context, a
// cancelled grid stops claiming cells and drains its workers promptly, and a
// caller abandoning a singleflight cache build neither cancels the build for
// concurrent waiters nor poisons the cached entry.
package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memsys"
	"repro/internal/models"
	"repro/internal/report"
	"repro/internal/sim"
)

// Engine runs experiment cells across a worker pool, sharing one Cache.
type Engine struct {
	workers int
	cache   *Cache
	// evbus, when set, receives sweep.cell and sweep.cache events; cells
	// counts completed cell simulations either way.
	evbus atomic.Pointer[bus.Bus]
	cells atomic.Int64
}

// New returns an engine with the given worker count; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, cache: new(Cache)}
}

// Workers returns the engine's worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's artifact cache.
func (e *Engine) Cache() *Cache { return e.cache }

// SetBus wires the engine to an event bus: every completed grid cell is
// published on bus.TopicSweepCell (payload built only when a subscriber is
// attached) and every cache hit/miss/eviction on bus.TopicSweepCache. nil
// unwires both.
func (e *Engine) SetBus(b *bus.Bus) {
	e.evbus.Store(b)
	if b == nil {
		e.cache.SetEventHook(nil)
		return
	}
	e.cache.SetEventHook(func(table, kind string) {
		if b.Active() {
			b.Publish(bus.TopicSweepCache, bus.CacheEvent{Table: table, Kind: kind})
		}
	})
}

// CellsCompleted counts grid cells this engine has finished simulating.
func (e *Engine) CellsCompleted() int64 { return e.cells.Load() }

// Network returns the cached network for name.
func (e *Engine) Network(ctx context.Context, name string) (*graph.Network, error) {
	return e.cache.Network(ctx, name)
}

// Plan returns the cached schedule for (network, opts).
func (e *Engine) Plan(ctx context.Context, network string, opts core.Options) (*core.Schedule, error) {
	return e.cache.Plan(ctx, network, opts)
}

// Traffic returns the cached traffic ledger for (network, opts).
func (e *Engine) Traffic(ctx context.Context, network string, opts core.Options) (*core.Traffic, error) {
	return e.cache.Traffic(ctx, network, opts)
}

// Map runs fn(ctx, i) for every i in [0, n) on up to e.Workers() goroutines
// and returns the results in index order. Indices are claimed in increasing
// order; on failure no further indices are started and the error at the
// lowest index is returned, so the reported error does not depend on
// goroutine scheduling.
//
// Cancelling ctx drains the pool promptly: no new index is claimed once the
// context is done, already-claimed calls see the cancelled ctx (and abort at
// their next cancellation point), and Map returns ctx.Err() — so a caller
// that walks away frees its worker slots long before the grid would have
// finished.
func Map[T any](ctx context.Context, e *Engine, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := min(e.workers, n)
	errs := make([]error, n)
	var next atomic.Int64
	var errIdx atomic.Int64
	errIdx.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Stop claiming after a failure, but a claimed index always
				// runs — otherwise a preempted worker could skip a
				// lower-index failure and break the lowest-index guarantee.
				if errIdx.Load() < int64(n) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					for {
						cur := errIdx.Load()
						if int64(i) >= cur || errIdx.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	// Cancellation wins over per-cell errors: once ctx is done, cells start
	// failing with wrapped ctx errors at scheduler-dependent indices, so the
	// only deterministic report is ctx.Err() itself.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if idx := errIdx.Load(); idx < int64(n) {
		return nil, errs[idx]
	}
	return out, nil
}

// Cell is one point of an experiment grid. Zero fields take the paper's
// defaults: HBM2 memory, the network's default mini-batch, a 10 MiB buffer.
type Cell struct {
	Network     string
	Config      core.Config
	Memory      memsys.DRAM // zero value selects HBM2
	Batch       int         // 0 selects models.DefaultBatch(Network)
	BufferBytes int64       // 0 selects core.DefaultBufferBytes
}

// normalized resolves the cell's defaulted fields.
func (c Cell) normalized() Cell {
	if c.Memory.Name == "" {
		c.Memory = memsys.HBM2
	}
	if c.Batch == 0 {
		c.Batch = models.DefaultBatch(c.Network)
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = core.DefaultBufferBytes
	}
	return c
}

// Options returns the planning options the cell resolves to.
func (c Cell) Options() core.Options {
	c = c.normalized()
	opts := core.DefaultOptions(c.Config, c.Batch)
	opts.BufferBytes = c.BufferBytes
	return opts
}

// String labels the cell for logs and errors.
func (c Cell) String() string {
	c = c.normalized()
	return fmt.Sprintf("%s/%s/%s/b%d/%dMiB",
		c.Network, c.Config, c.Memory.Name, c.Batch, c.BufferBytes>>20)
}

// Grid is the cartesian product of experiment axes. Empty axes collapse to
// a single zero value, i.e. the Cell default for that axis.
type Grid struct {
	Networks []string
	Configs  []core.Config
	Memories []memsys.DRAM
	Batches  []int
	Buffers  []int64 // bytes
}

// Cells enumerates the grid in deterministic order: networks outermost,
// then configs, memories, batches, buffers.
func (g Grid) Cells() []Cell {
	networks := g.Networks
	if len(networks) == 0 {
		networks = []string{""}
	}
	configs := g.Configs
	if len(configs) == 0 {
		configs = []core.Config{core.Baseline}
	}
	memories := g.Memories
	if len(memories) == 0 {
		memories = []memsys.DRAM{{}}
	}
	batches := g.Batches
	if len(batches) == 0 {
		batches = []int{0}
	}
	buffers := g.Buffers
	if len(buffers) == 0 {
		buffers = []int64{0}
	}
	cells := make([]Cell, 0, len(networks)*len(configs)*len(memories)*len(batches)*len(buffers))
	for _, n := range networks {
		for _, cfg := range configs {
			for _, mem := range memories {
				for _, b := range batches {
					for _, buf := range buffers {
						cells = append(cells, Cell{
							Network: n, Config: cfg, Memory: mem,
							Batch: b, BufferBytes: buf,
						})
					}
				}
			}
		}
	}
	return cells
}

// Simulate runs one cell: it plans (or reuses) the schedule and traffic
// ledger for the cell's planning inputs and simulates a training step on
// the cell's memory system. A cancelled ctx aborts the cache waits; the
// simulation itself is a short pure computation and runs to completion once
// its inputs are resolved.
func (e *Engine) Simulate(ctx context.Context, cell Cell) (*sim.Result, error) {
	cell = cell.normalized()
	opts := cell.Options()
	s, err := e.cache.Plan(ctx, cell.Network, opts)
	if err != nil {
		return nil, fmt.Errorf("sweep: cell %s: %w", cell, err)
	}
	tr, err := e.cache.Traffic(ctx, cell.Network, opts)
	if err != nil {
		return nil, fmt.Errorf("sweep: cell %s: %w", cell, err)
	}
	hw := sim.DefaultHW(cell.Config, cell.Memory)
	hw.GB = hw.GB.WithSize(opts.BufferBytes)
	r, err := sim.SimulateTraffic(s, tr, hw)
	if err != nil {
		return nil, fmt.Errorf("sweep: cell %s: %w", cell, err)
	}
	return r, nil
}

// CellObserver receives each completed grid cell as soon as its simulation
// finishes. Callbacks arrive from worker goroutines in completion order —
// not cell order — and must be safe for concurrent use; index identifies the
// cell's position in the submitted grid.
type CellObserver func(index int, cell Cell, row Row)

type observerKey struct{}

// WithCellObserver returns a context that makes SimulateGrid report every
// completed cell to obs. This is the streaming hook: a long sweep's rows can
// be delivered incrementally while the grid is still running.
func WithCellObserver(ctx context.Context, obs CellObserver) context.Context {
	return context.WithValue(ctx, observerKey{}, obs)
}

// cellObserver extracts the observer installed by WithCellObserver, if any.
func cellObserver(ctx context.Context) CellObserver {
	obs, _ := ctx.Value(observerKey{}).(CellObserver)
	return obs
}

// SimulateGrid simulates every cell concurrently, returning results in cell
// order. If ctx carries a CellObserver, each completed cell is reported to
// it as it finishes.
func (e *Engine) SimulateGrid(ctx context.Context, cells []Cell) ([]*sim.Result, error) {
	obs := cellObserver(ctx)
	return Map(ctx, e, len(cells), func(ctx context.Context, i int) (*sim.Result, error) {
		r, err := e.Simulate(ctx, cells[i])
		if err == nil {
			e.cells.Add(1)
			// Build the Row at most once, and only if someone is watching:
			// the bus publish is skipped entirely (payload included) when no
			// subscriber is attached, keeping unobserved sweeps at their old
			// cost.
			b := e.evbus.Load()
			busWants := b != nil && b.Active()
			if obs != nil || busWants {
				row := RowOf(cells[i], r)
				if obs != nil {
					obs(i, cells[i], row)
				}
				if busWants {
					b.Publish(bus.TopicSweepCell, bus.SweepCell{
						Index: i, Cell: cells[i].String(), Row: row,
					})
				}
			}
		}
		return r, err
	})
}

// Row is the flattened result of one simulated cell, suitable for aligned
// tables and JSON output.
type Row struct {
	Network     string      `json:"network"`
	Config      core.Config `json:"config"`
	Memory      string      `json:"memory"`
	Batch       int         `json:"batch"`
	BufferMiB   int64       `json:"buffer_mib"`
	StepSeconds float64     `json:"step_seconds"`
	DRAMBytes   int64       `json:"dram_bytes"`
	GBBytes     int64       `json:"gb_bytes"`
	Utilization float64     `json:"utilization"`
	EnergyJ     float64     `json:"energy_joules"`
}

// RowOf flattens one cell's simulation result.
func RowOf(c Cell, r *sim.Result) Row {
	c = c.normalized()
	return Row{
		Network: c.Network, Config: c.Config, Memory: c.Memory.Name,
		Batch: c.Batch, BufferMiB: c.BufferBytes >> 20,
		StepSeconds: r.StepSeconds, DRAMBytes: r.DRAMBytes, GBBytes: r.GBBytes,
		Utilization: r.Utilization, EnergyJ: r.Energy.Total(),
	}
}

// Rows flattens a grid's results pairwise; cells and results must be the
// same length (as returned by SimulateGrid).
func Rows(cells []Cell, results []*sim.Result) []Row {
	rows := make([]Row, len(cells))
	for i := range cells {
		rows[i] = RowOf(cells[i], results[i])
	}
	return rows
}

// RenderRows writes a sweep result table in the report style.
func RenderRows(w io.Writer, title string, rows []Row) {
	t := report.NewTable(title,
		"network", "config", "memory", "batch", "buffer",
		"time", "DRAM", "GB", "util", "energy")
	for _, r := range rows {
		t.RowF(r.Network, r.Config.String(), r.Memory,
			fmt.Sprint(r.Batch), fmt.Sprintf("%d MiB", r.BufferMiB),
			report.Ms(r.StepSeconds),
			fmt.Sprintf("%.2f GB", float64(r.DRAMBytes)/1e9),
			fmt.Sprintf("%.2f GB", float64(r.GBBytes)/1e9),
			report.Pct(r.Utilization),
			fmt.Sprintf("%.2f J", r.EnergyJ))
	}
	t.Render(w)
}
