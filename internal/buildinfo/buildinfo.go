// Package buildinfo carries the build identity shared by every binary and
// the mbsd service. Version and Commit are overridden at link time:
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2 \
//	                   -X repro/internal/buildinfo.Commit=abc1234" ./...
//
// When the ldflags are absent (plain `go build`, `go test`), Commit falls
// back to the VCS revision Go stamps into the binary, so /v1/stats and
// -version stay meaningful in dev builds.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

var (
	// Version is the human-readable release tag (ldflags; "dev" otherwise).
	Version = "dev"
	// Commit is the VCS commit the binary was built from (ldflags or the
	// toolchain's embedded vcs.revision).
	Commit = ""
)

// Info is the structured build identity reported over JSON.
type Info struct {
	Version string `json:"version"`
	Commit  string `json:"commit"`
	Go      string `json:"go"`
}

// Get resolves the build identity, filling Commit from the embedded VCS
// stamp when no ldflags value was linked in.
func Get() Info {
	commit := Commit
	if commit == "" {
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					commit = s.Value
					break
				}
			}
		}
	}
	if commit == "" {
		commit = "unknown"
	}
	if len(commit) > 12 {
		commit = commit[:12]
	}
	return Info{Version: Version, Commit: commit, Go: runtime.Version()}
}

// String renders the identity for -version output.
func (i Info) String() string {
	return fmt.Sprintf("%s (commit %s, %s)", i.Version, i.Commit, i.Go)
}

// Print writes "<binary> <version> (commit <c>, <go>)" — the shared
// -version output of all binaries.
func Print(binary string) string {
	return fmt.Sprintf("%s %s", binary, Get())
}
