// Package service exposes the scenario registry over an HTTP JSON API — the
// long-lived form of the evaluation stack. One shared sweep engine serves
// every request, so plans, ledgers and networks warm once and are reused
// across clients; the engine cache runs bounded (LRU) so the process holds
// steady-state memory under sustained traffic.
//
// Routes:
//
//	GET  /v1/scenarios  the scenario registry (names, params, descriptions)
//	POST /v1/run        execute a scenario; JSON responses are byte-identical
//	                    to `mbsim -scenario <name> -json`
//	GET  /v1/stats      build identity, cache and serving counters
//	GET  /debug/pprof/  the standard Go profiling endpoints
//
// Execution concurrency is bounded: at most MaxInFlight scenario runs
// execute at once, excess requests queue until a slot frees or the client
// gives up. Responses are rendered to a buffer before the first byte is
// written, so an error never produces a half-written 200.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sweep"
)

// Config sizes the service.
type Config struct {
	// Workers is the sweep engine's worker-pool size (0 = GOMAXPROCS).
	Workers int
	// CacheMaxBytes bounds the engine cache (0 = unbounded).
	CacheMaxBytes int64
	// MaxInFlight caps concurrently executing scenario runs
	// (0 = 2*GOMAXPROCS).
	MaxInFlight int
}

// Server executes registry scenarios on one shared engine.
type Server struct {
	engine      *sweep.Engine
	runner      experiments.Runner
	sem         chan struct{}
	maxInFlight int
	inFlight    atomic.Int64
	served      atomic.Int64
	failed      atomic.Int64
}

// New builds a server (and its engine) from cfg.
func New(cfg Config) *Server {
	e := sweep.New(cfg.Workers)
	if cfg.CacheMaxBytes > 0 {
		e.Cache().SetMaxBytes(cfg.CacheMaxBytes)
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	return &Server{
		engine:      e,
		runner:      experiments.Runner{E: e},
		sem:         make(chan struct{}, maxInFlight),
		maxInFlight: maxInFlight,
	}
}

// Engine returns the shared sweep engine (the tests inspect its cache).
func (s *Server) Engine() *sweep.Engine { return s.engine }

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	Scenario string            `json:"scenario"`
	Params   map[string]string `json:"params,omitempty"`
	// Format selects the response rendering: "json" (default; the
	// mbsim -json bytes) or "text" (the paper-style tables).
	Format string `json:"format,omitempty"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Build       buildinfo.Info `json:"build"`
	Workers     int            `json:"workers"`
	MaxInFlight int            `json:"max_in_flight"`
	InFlight    int64          `json:"in_flight"`
	Served      int64          `json:"served"`
	Failed      int64          `json:"failed"`
	Cache       CacheStats     `json:"cache"`
}

// CacheStats is the JSON form of sweep.Stats.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	Bytes     int64   `json:"bytes"`
	MaxBytes  int64   `json:"max_bytes"`

	Tables map[string]TableStats `json:"tables"`
}

// TableStats is one memo table's counters.
type TableStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the serving and cache counters.
func (s *Server) Stats() StatsResponse {
	st := s.engine.Cache().Stats()
	return StatsResponse{
		Build:       buildinfo.Get(),
		Workers:     s.engine.Workers(),
		MaxInFlight: s.maxInFlight,
		InFlight:    s.inFlight.Load(),
		Served:      s.served.Load(),
		Failed:      s.failed.Load(),
		Cache: CacheStats{
			Hits: st.Hits(), Misses: st.Misses(), Evictions: st.Evictions(),
			HitRate: st.HitRate(), Bytes: st.Bytes, MaxBytes: st.MaxBytes,
			Tables: map[string]TableStats{
				"network": {st.NetworkHits, st.NetworkMisses, st.NetworkEvictions},
				"plan":    {st.PlanHits, st.PlanMisses, st.PlanEvictions},
				"traffic": {st.TrafficHits, st.TrafficMisses, st.TrafficEvictions},
			},
		},
	}
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, experiments.Infos())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sc, ok := experiments.Lookup(req.Scenario)
	if !ok {
		s.fail(w, http.StatusNotFound,
			fmt.Errorf("unknown scenario %q (GET /v1/scenarios lists the registry)", req.Scenario))
		return
	}
	if req.Format != "" && req.Format != "json" && req.Format != "text" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (have json, text)", req.Format))
		return
	}

	// Bounded in-flight execution: queue for a slot, bail if the client
	// disconnects while waiting.
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("cancelled while queued"))
		return
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()

	var body bytes.Buffer
	if req.Format == "text" {
		if _, err := sc.Run(s.runner, req.Params, &body); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		data, err := sc.Run(s.runner, req.Params, nil)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		// The same renderer mbsim -json uses: responses are byte-identical
		// to the CLI by construction.
		if err := report.WriteJSON(&body, sc.JSONValue(data)); err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
	}
	s.served.Add(1)
	w.WriteHeader(http.StatusOK)
	_, _ = body.WriteTo(w)
}

// fail records and writes a JSON error response.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.failed.Add(1)
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = report.WriteJSON(w, v)
}
