// Package service exposes the scenario registry over an HTTP JSON API — the
// long-lived form of the evaluation stack. One shared sweep engine serves
// every request, so plans, ledgers and networks warm once and are reused
// across clients; the engine cache runs bounded (LRU) so the process holds
// steady-state memory under sustained traffic.
//
// Routes:
//
//	GET  /v1/scenarios  the scenario registry (names, params, descriptions)
//	POST /v1/run        execute a scenario; JSON responses are byte-identical
//	                    to `mbsim -scenario <name> -json`
//	GET  /v1/stats      build identity, cache, serving and job counters
//	GET  /v2/jobs...    the asynchronous job API (see internal/jobs): submit,
//	                    status/result, cancel, and NDJSON cell streaming
//	GET  /v2/scenarios  alias of /v1/scenarios
//	GET  /v2/stats      alias of /v1/stats
//	GET  /debug/pprof/  the standard Go profiling endpoints
//
// Execution is context-aware end to end: a synchronous /v1/run inherits its
// request's context, so a client that disconnects mid-sweep frees its
// engine worker slot instead of burning it to completion, and v2 jobs carry
// their own cancellable contexts shared with the same slot semaphore.
// Errors are structured — {"error": ..., "scenario": ..., "code": ...} —
// with 400 for malformed requests, 404 for unknown scenarios/jobs, 422 for
// invalid params, 503 when queueing is abandoned or the queue is full, and
// 429 + Retry-After when inference admission control sheds a request.
//
// Execution concurrency is bounded: at most MaxInFlight scenario runs (v1
// and v2 combined) execute at once; excess work queues until a slot frees
// or the client gives up. Responses are rendered to a buffer before the
// first byte is written, so an error never produces a half-written 200.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/buildinfo"
	"repro/internal/bus"
	"repro/internal/experiments"
	"repro/internal/infer"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/tensor"
)

// Config sizes the service.
type Config struct {
	// Workers is the sweep engine's worker-pool size (0 = GOMAXPROCS).
	Workers int
	// CacheMaxBytes bounds the engine cache (0 = unbounded).
	CacheMaxBytes int64
	// MaxInFlight caps concurrently executing scenario runs, v1 and v2
	// combined (0 = 2*GOMAXPROCS).
	MaxInFlight int
	// MaxRetainedJobs bounds terminal v2 jobs kept for status queries
	// (0 = the jobs package default).
	MaxRetainedJobs int
	// InferModel selects the model POST /v2/infer serves ("" = smallcnn;
	// see infer.Models for the registry).
	InferModel string
	// InferMaxBatch, InferMaxDelay, InferMinDelay and InferQueueCap are the
	// micro-batcher knobs (zero values = the infer package defaults).
	InferMaxBatch int
	InferMaxDelay time.Duration
	InferMinDelay time.Duration
	InferQueueCap int
	// InferReplicas sizes the predictor replica pool draining the inference
	// queue (0 = 1): one independently compiled fixed-seed replica per slot,
	// so flushes run in parallel on multicore hosts.
	InferReplicas int
	// InferShed enables inference admission control: requests arriving at a
	// full queue are rejected with 429 + Retry-After instead of blocking.
	InferShed bool
	// MBSCacheBudget is the cache budget in bytes for the MBS executor plan
	// reported under /v1/stats (0 = autodetect from the CPU cache topology).
	MBSCacheBudget int64
	// EventRing sizes the event bus's replay ring (0 = 256, negative = no
	// retention); late /v2/events subscribers catch up from it.
	EventRing int
	// EventMaxSubscribers bounds concurrent /v2/events connections (0 = 64);
	// excess subscriptions are rejected with 503.
	EventMaxSubscribers int
	// EventHeartbeat is the SSE heartbeat-comment interval (0 = 15s).
	EventHeartbeat time.Duration

	// StoreDir, when non-empty, roots a durable journal-backed job store
	// there: submissions, shard claims and results survive a crash, and a
	// restarted server re-queues interrupted jobs. "" keeps the in-memory
	// store (jobs die with the process, as before).
	StoreDir string
	// WorkerID names this process in shard-lease records; distinct ids let
	// several processes share one StoreDir ("" = "w").
	WorkerID string
	// JobWorkers sizes the shard-claiming worker pool (0 = MaxInFlight).
	JobWorkers int
	// JobLease is how long a claimed shard survives without a heartbeat
	// before another worker may take it over (0 = the jobs default, 15s).
	JobLease time.Duration
	// JobHeartbeat is the lease renewal interval (0 = JobLease/3).
	JobHeartbeat time.Duration
	// JobMaxAttempts fails a job whose shard keeps losing its lease after
	// this many claims (0 = 5, negative = retry forever).
	JobMaxAttempts int
	// JobShardCells is the target cells-per-shard when splitting sweep jobs
	// into independently claimed lease units (0 = 16, negative = never
	// shard). Sweeps at or under one shard's worth of cells run unsharded —
	// identical to the pre-sharding behaviour.
	JobShardCells int
}

// Server executes registry scenarios on one shared engine.
type Server struct {
	engine      *sweep.Engine
	runner      experiments.Runner
	jobs        *jobs.Manager
	batcher     *infer.Batcher
	sem         chan struct{}
	maxInFlight int
	shardCells  int
	queueWait   atomic.Int64 // v1 requests waiting for a slot
	served      atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64 // v1 runs abandoned by their client
	mbs         MBSPlanStats // static: planned once at startup
	obs         *observability
}

// New builds a server (and its engine, job manager and inference batcher)
// from cfg. It panics on an unknown inference model — a deployment
// misconfiguration callers should catch at startup, not first request.
func New(cfg Config) *Server {
	e := sweep.New(cfg.Workers)
	if cfg.CacheMaxBytes > 0 {
		e.Cache().SetMaxBytes(cfg.CacheMaxBytes)
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	shardCells := cfg.JobShardCells
	if shardCells == 0 {
		shardCells = 16
	}
	s := &Server{
		engine:      e,
		runner:      experiments.Runner{E: e},
		sem:         make(chan struct{}, maxInFlight),
		maxInFlight: maxInFlight,
		shardCells:  shardCells,
		obs:         newObservability(cfg),
	}
	e.SetBus(s.obs.bus)
	var jobStore store.Store
	if cfg.StoreDir != "" {
		j, err := store.OpenJournal(cfg.StoreDir)
		if err != nil {
			panic(fmt.Sprintf("service: open job store %s: %v", cfg.StoreDir, err))
		}
		jobStore = j
	}
	s.jobs = jobs.NewManager(jobs.Config{
		Exec:        s.execJob,
		Validate:    validateRequest,
		Slots:       s.sem,
		MaxRetained: cfg.MaxRetainedJobs,
		Bus:         s.obs.bus,
		Store:       jobStore,
		Plan:        s.planJob,
		ExecShard:   s.execShard,
		Assemble:    s.assembleJob,
		Workers:     cfg.JobWorkers,
		WorkerID:    cfg.WorkerID,
		Lease:       cfg.JobLease,
		Heartbeat:   cfg.JobHeartbeat,
		MaxAttempts: cfg.JobMaxAttempts,
	})
	model := cfg.InferModel
	if model == "" {
		model = "smallcnn"
	}
	spec, ok := infer.Lookup(model)
	if !ok {
		panic(fmt.Sprintf("service: unknown inference model %q (have %v)", model, infer.Models()))
	}
	b, err := infer.New(spec, infer.Config{
		MaxBatch: cfg.InferMaxBatch,
		MaxDelay: cfg.InferMaxDelay,
		MinDelay: cfg.InferMinDelay,
		QueueCap: cfg.InferQueueCap,
		Replicas: cfg.InferReplicas,
		Shed:     cfg.InferShed,
		OnFlush:  s.onInferFlush,
	})
	if err != nil {
		panic(fmt.Sprintf("service: compile inference model %q: %v", model, err))
	}
	s.batcher = b
	s.mbs = planMBSStats(cfg.MBSCacheBudget)
	s.registerCollectors()
	return s
}

// planMBSStats plans the default Fig. 6 GN model under the given cache
// budget and returns the stats section. The grouping is static — it depends
// only on the model shape, sub-batch and budget — so it is computed once at
// startup. An unsatisfiable budget (a single layer over it) is a deployment
// misconfiguration and panics, like an unknown inference model.
func planMBSStats(budget int64) MBSPlanStats {
	fc := experiments.DefaultFig6Config()
	m := nn.BuildSmallCNN(rand.New(rand.NewSource(fc.Seed)),
		fc.Data.Channels, fc.Data.Size, fc.Data.Classes, nn.NormGroup, 8)
	plan, err := m.PlanMBS(
		[]int{fc.Batch, fc.Data.Channels, fc.Data.Size, fc.Data.Size},
		nn.MBSPlanConfig{SubBatch: fc.SubBatch, BudgetBytes: budget})
	if err != nil {
		panic(fmt.Sprintf("service: mbs cache budget: %v", err))
	}
	return MBSPlanStats{
		Groups:        len(plan.Groups),
		SubBatch:      plan.SubBatch,
		ArenaBytes:    plan.PeakArenaBytes,
		BudgetBytes:   plan.BudgetBytes,
		BudgetAuto:    plan.BudgetAuto,
		BudgetSource:  plan.BudgetSource,
		BoundaryBytes: plan.BoundaryBytes,
		FullBytes:     plan.FullFootprintBytes,
	}
}

// Engine returns the shared sweep engine (the tests inspect its cache).
func (s *Server) Engine() *sweep.Engine { return s.engine }

// Jobs returns the v2 job manager.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Batcher returns the inference micro-batcher (tests inspect its counters).
func (s *Server) Batcher() *infer.Batcher { return s.batcher }

// Bus returns the server's event bus (tests subscribe directly).
func (s *Server) Bus() *bus.Bus { return s.obs.bus }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.obs.reg }

// Close cancels every live job and waits for their executors to return,
// then stops the inference batcher (queued inferences fail with 503).
// mbsd calls it before http.Server.Shutdown: cancelling jobs first closes
// their streams, so the drain has no long-lived connections left to wait
// on (a job allowed to outlive the drain window would be killed with the
// process anyway).
func (s *Server) Close() {
	s.jobs.Close()
	s.batcher.Close()
	// Last: closing the bus ends every /v2/events stream (each sees its
	// channel close and writes a final comment), after the jobs and batcher
	// shutdowns above have published their terminal events.
	s.obs.bus.Close()
}

// Handler returns the service's route table, wrapped in the observability
// middleware (http_requests_total, phase="total" latency, http.request bus
// events; see instrument).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v2/infer", s.handleInfer)
	s.jobs.Routes(mux)
	mux.HandleFunc("GET /v2/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v2/stats", s.handleStats)
	mux.HandleFunc("GET /v2/events", s.handleEvents)
	mux.Handle("GET /metrics", s.obs.reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.instrument(mux)
}

// validateRequest vets a v2 submission synchronously: unknown scenarios are
// 404s and invalid params 422s at POST time, never failed jobs.
func validateRequest(req jobs.Request) error {
	sc, ok := experiments.Lookup(req.Scenario)
	if !ok {
		return unknownScenario(req.Scenario)
	}
	if err := sc.Validate(experiments.Params(req.Params)); err != nil {
		return api.Errorf(http.StatusUnprocessableEntity, api.CodeInvalidParams,
			req.Scenario, "%s", err)
	}
	return nil
}

// execJob runs one v2 job on the shared engine. The cell observer threads
// each completed sweep cell to the job's stream while the grid is still
// running; the returned bytes are exactly what POST /v1/run would return
// for the same scenario and params.
func (s *Server) execJob(ctx context.Context, req jobs.Request, emit func(int, string, any)) ([]byte, error) {
	sc, ok := experiments.Lookup(req.Scenario)
	if !ok {
		return nil, unknownScenario(req.Scenario) // unreachable: validated at submit
	}
	ctx = sweep.WithCellObserver(ctx, func(i int, cell sweep.Cell, row sweep.Row) {
		emit(i, cell.String(), row)
	})
	data, err := sc.Run(ctx, s.runner, experiments.Params(req.Params), nil)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, sc.JSONValue(data)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// planJob splits a sweep submission into contiguous cell-range shards of
// ~shardCells cells each — independent lease units a worker pool (or a
// restarted process) claims separately. Non-sweep scenarios and sweeps at
// or under one shard's worth stay unsharded: a nil plan means one
// whole-job shard executed by execJob, byte-identical to the v1 path.
func (s *Server) planJob(req jobs.Request) []store.Span {
	if s.shardCells <= 0 || req.Scenario != "sweep" {
		return nil
	}
	cells, err := experiments.SweepCells(experiments.Params(req.Params))
	if err != nil || len(cells) <= s.shardCells {
		return nil // bad params fail at validation, not planning
	}
	var spans []store.Span
	for lo := 0; lo < len(cells); lo += s.shardCells {
		hi := lo + s.shardCells
		if hi > len(cells) {
			hi = len(cells)
		}
		spans = append(spans, store.Span{Lo: lo, Hi: hi})
	}
	return spans
}

// execShard runs one planned shard: the sweep cells in span, re-derived
// from the params (cell order is a pure function of them, so a shard
// re-executed after a crash or lost lease computes the same cells). Cells
// are emitted at their job-global indices; the shard result is the rows
// JSON the assembler concatenates.
func (s *Server) execShard(ctx context.Context, req jobs.Request, span store.Span, emit func(int, string, any)) ([]byte, error) {
	cells, err := experiments.SweepCells(experiments.Params(req.Params))
	if err != nil {
		return nil, err
	}
	if span.Lo < 0 || span.Hi > len(cells) || span.Lo >= span.Hi {
		return nil, fmt.Errorf("shard span [%d,%d) out of range for %d cells", span.Lo, span.Hi, len(cells))
	}
	sub := cells[span.Lo:span.Hi]
	ctx = sweep.WithCellObserver(ctx, func(i int, cell sweep.Cell, row sweep.Row) {
		emit(span.Lo+i, cell.String(), row)
	})
	results, err := s.engine.SimulateGrid(ctx, sub)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sweep.Rows(sub, results))
}

// assembleJob merges shard results (in shard = cell order) into the final
// job result: the typed rows concatenate and render through the same
// JSONValue + WriteJSON pipeline as /v1/run, so a sharded sweep's result
// is byte-identical to the unsharded one.
func (s *Server) assembleJob(req jobs.Request, parts [][]byte) ([]byte, error) {
	sc, ok := experiments.Lookup(req.Scenario)
	if !ok {
		return nil, unknownScenario(req.Scenario)
	}
	var all []sweep.Row
	for i, part := range parts {
		var rows []sweep.Row
		if err := json.Unmarshal(part, &rows); err != nil {
			return nil, fmt.Errorf("shard %d result: %w", i, err)
		}
		all = append(all, rows...)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, sc.JSONValue(all)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func unknownScenario(name string) *api.Error {
	return api.Errorf(http.StatusNotFound, api.CodeUnknownScenario, name,
		"unknown scenario %q (GET /v1/scenarios lists the registry)", name)
}

// RunRequest is the POST /v1/run body.
type RunRequest struct {
	Scenario string            `json:"scenario"`
	Params   map[string]string `json:"params,omitempty"`
	// Format selects the response rendering: "json" (default; the
	// mbsim -json bytes) or "text" (the paper-style tables).
	Format string `json:"format,omitempty"`
}

// StatsResponse is the GET /v1/stats (and /v2/stats) body.
type StatsResponse struct {
	Build       buildinfo.Info `json:"build"`
	Workers     int            `json:"workers"`
	MaxInFlight int            `json:"max_in_flight"`
	// InFlight is the number of execution slots currently held — by v1
	// runs and v2 jobs alike, since both draw on one semaphore.
	InFlight int64 `json:"in_flight"`
	// QueueDepth counts work waiting for an execution slot: v1 requests
	// plus queued v2 jobs.
	QueueDepth int64 `json:"queue_depth"`
	Served     int64 `json:"served"`
	Failed     int64 `json:"failed"`
	// Cancelled counts v1 runs abandoned by their client (while queued or
	// mid-run); v2 job cancellations are under Jobs.Cancellations.
	Cancelled int64       `json:"cancelled"`
	Jobs      jobs.Stats   `json:"jobs"`
	Cache     CacheStats   `json:"cache"`
	Engine    EngineStats  `json:"engine"`
	Infer     infer.Stats  `json:"infer"`
	MBS       MBSPlanStats `json:"mbs_plan"`
}

// EngineStats reports the active tensor.Engine configuration the inference
// and training kernels run under.
type EngineStats struct {
	Kernel     string `json:"kernel"`      // "gemm" or "naive"
	Threads    int    `json:"threads"`     // resolved kernel parallelism
	GemmConfig string `json:"gemm_config"` // KCxNC:MRxNR blocking + micro-tile
	Autotuned  bool   `json:"autotuned"`   // config chosen by tensor.Autotune
	SIMD       bool   `json:"simd"`        // AVX2+FMA kernels active
}

// MBSPlanStats reports the MBS executor's layer grouping for the default
// Fig. 6 GN model under the server's cache budget (see nn.PlanMBS).
type MBSPlanStats struct {
	Groups        int    `json:"groups"`
	SubBatch      int    `json:"sub_batch"`
	ArenaBytes    int64  `json:"arena_bytes"`    // peak planned arena across groups
	BudgetBytes   int64  `json:"budget_bytes"`   // per-group working-set cap
	BudgetAuto    bool   `json:"budget_auto"`    // budget autodetected from CPU caches
	BudgetSource  string `json:"budget_source,omitempty"`
	BoundaryBytes int64  `json:"boundary_bytes"` // full-batch stash between groups
	FullBytes     int64  `json:"full_bytes"`     // unplanned per-layer footprint
}

// CacheStats is the JSON form of sweep.Stats.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	Bytes     int64   `json:"bytes"`
	MaxBytes  int64   `json:"max_bytes"`

	Tables map[string]TableStats `json:"tables"`
}

// TableStats is one memo table's counters.
type TableStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the serving, job and cache counters.
func (s *Server) Stats() StatsResponse {
	st := s.engine.Cache().Stats()
	js := s.jobs.Stats()
	return StatsResponse{
		Build:       buildinfo.Get(),
		Workers:     s.engine.Workers(),
		MaxInFlight: s.maxInFlight,
		InFlight:    int64(len(s.sem)),
		QueueDepth:  s.queueWait.Load() + js.QueueDepth,
		Served:      s.served.Load(),
		Failed:      s.failed.Load(),
		Cancelled:   s.cancelled.Load(),
		Jobs:        js,
		Engine: EngineStats{
			Kernel:     tensor.CurrentEngine().String(),
			Threads:    tensor.Threads(),
			GemmConfig: tensor.CurrentKernelConfig().String(),
			Autotuned:  tensor.Autotuned() != nil,
			SIMD:       tensor.SIMDEnabled(),
		},
		Infer: s.batcher.Stats(),
		MBS:   s.mbs,
		Cache: CacheStats{
			Hits: st.Hits(), Misses: st.Misses(), Evictions: st.Evictions(),
			HitRate: st.HitRate(), Bytes: st.Bytes, MaxBytes: st.MaxBytes,
			Tables: map[string]TableStats{
				"network": {st.NetworkHits, st.NetworkMisses, st.NetworkEvictions},
				"plan":    {st.PlanHits, st.PlanMisses, st.PlanEvictions},
				"traffic": {st.TrafficHits, st.TrafficMisses, st.TrafficEvictions},
			},
		},
	}
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	api.WriteJSON(w, http.StatusOK, experiments.Infos())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	api.WriteJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req RunRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "",
			"bad request body: %s", err))
		return
	}
	sc, ok := experiments.Lookup(req.Scenario)
	if !ok {
		s.fail(w, unknownScenario(req.Scenario))
		return
	}
	if req.Format != "" && req.Format != "json" && req.Format != "text" {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, req.Scenario,
			"unknown format %q (have json, text)", req.Format))
		return
	}
	// Validate params before queueing so a bad request never costs a slot.
	if err := sc.Validate(experiments.Params(req.Params)); err != nil {
		s.fail(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeInvalidParams,
			req.Scenario, "%s", err))
		return
	}

	// Bounded in-flight execution: queue for a slot, bail if the client
	// disconnects while waiting. The wait is the "queue" phase of the
	// request's latency decomposition.
	qStart := time.Now()
	s.queueWait.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.queueWait.Add(-1)
		s.obs.runQueue.Observe(time.Since(qStart).Seconds())
	case <-ctx.Done():
		s.queueWait.Add(-1)
		// Counted as cancelled, not failed: an abandoned client is not a
		// scenario failure, and operators read the two counters separately.
		s.cancelled.Add(1)
		api.Write(w, api.Errorf(http.StatusServiceUnavailable, api.CodeUnavailable,
			req.Scenario, "cancelled while queued"))
		return
	}
	defer func() { <-s.sem }()

	var body bytes.Buffer
	if req.Format == "text" {
		// Text rendering is interleaved with execution, so the whole run is
		// the compute phase and render observes only the final buffer copy.
		cStart := time.Now()
		if _, err := sc.Run(ctx, s.runner, experiments.Params(req.Params), &body); err != nil {
			s.failRun(w, req.Scenario, err)
			return
		}
		s.obs.runCompute.Observe(time.Since(cStart).Seconds())
		s.obs.runRender.Observe(0)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		cStart := time.Now()
		data, err := sc.Run(ctx, s.runner, experiments.Params(req.Params), nil)
		if err != nil {
			s.failRun(w, req.Scenario, err)
			return
		}
		s.obs.runCompute.Observe(time.Since(cStart).Seconds())
		// The same renderer mbsim -json uses: responses are byte-identical
		// to the CLI by construction.
		rStart := time.Now()
		if err := report.WriteJSON(&body, sc.JSONValue(data)); err != nil {
			s.fail(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal,
				req.Scenario, "%s", err))
			return
		}
		s.obs.runRender.Observe(time.Since(rStart).Seconds())
		w.Header().Set("Content-Type", "application/json")
	}
	s.served.Add(1)
	w.WriteHeader(http.StatusOK)
	_, _ = body.WriteTo(w)
}

// failRun maps a scenario execution error: a cancelled request frees its
// slot and reports 503 (the client is gone anyway) under the cancelled
// counter only — not failed — parameter errors that surfaced at run time
// map to 422, anything else is a 400 run failure.
func (s *Server) failRun(w http.ResponseWriter, scenario string, err error) {
	var pe *experiments.ParamError
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.cancelled.Add(1)
		api.Write(w, api.Errorf(http.StatusServiceUnavailable, api.CodeCancelled,
			scenario, "run cancelled"))
	case errors.As(err, &pe):
		s.fail(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeInvalidParams,
			scenario, "%s", err))
	default:
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeRunFailed,
			scenario, "%s", err))
	}
}

// fail records and writes a structured JSON error response.
func (s *Server) fail(w http.ResponseWriter, e *api.Error) {
	s.failed.Add(1)
	api.Write(w, e)
}

// maxInferInputs caps how many samples one POST /v2/infer request may carry;
// cross-request coalescing is the batcher's job, not the request body's.
const maxInferInputs = 64

// handleInfer serves POST /v2/infer: each input sample is submitted to the
// micro-batcher independently (concurrently for multi-input requests), so
// samples from this and other in-flight requests coalesce into shared
// forward passes on the fused GEMM fast path.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req api.InferRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "",
			"bad request body: %s", err))
		return
	}
	if len(req.Inputs) == 0 {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "",
			"inputs is empty; send at least one sample"))
		return
	}
	if len(req.Inputs) > maxInferInputs {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "",
			"%d inputs exceed the per-request cap of %d", len(req.Inputs), maxInferInputs))
		return
	}
	resp := api.InferResponse{
		Model:      s.batcher.Model().Name,
		Outputs:    make([][]float64, len(req.Inputs)),
		Argmax:     make([]int, len(req.Inputs)),
		BatchSizes: make([]int, len(req.Inputs)),
	}
	errs := make([]error, len(req.Inputs))
	var wg sync.WaitGroup
	for i, input := range req.Inputs {
		wg.Add(1)
		go func(i int, input []float64) {
			defer wg.Done()
			res, err := s.batcher.Infer(ctx, input)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Outputs[i] = res.Logits
			resp.Argmax[i] = res.Argmax
			resp.BatchSizes[i] = res.BatchSize
		}(i, input)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// Overload wins the mapping: a request any of whose samples was shed
		// must surface as 429 so the client backs off, even if another
		// sample failed differently.
		if errors.Is(err, infer.ErrOverloaded) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		s.failInfer(w, firstErr)
		return
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

// inferRetryAfter is the Retry-After hint sent with 429 responses. The
// queue ahead of a shed request drains within a few coalesce deadlines;
// Retry-After has whole-second granularity, so the floor is the honest hint.
const inferRetryAfter = "1"

// failInfer maps a batcher error onto the structured error surface.
func (s *Server) failInfer(w http.ResponseWriter, err error) {
	var bad *infer.BadInputError
	switch {
	case errors.Is(err, infer.ErrOverloaded):
		// Admission control shed the request: 429 + Retry-After is the
		// backpressure contract — clients back off and retry instead of
		// piling onto a queue already beyond the replicas' drain rate.
		w.Header().Set("Retry-After", inferRetryAfter)
		s.fail(w, api.Errorf(http.StatusTooManyRequests, api.CodeOverloaded,
			"", "inference queue is full; retry after backoff"))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.cancelled.Add(1)
		api.Write(w, api.Errorf(http.StatusServiceUnavailable, api.CodeCancelled,
			"", "inference cancelled"))
	case errors.As(err, &bad):
		s.fail(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeInvalidParams,
			"", "%s", err))
	case errors.Is(err, infer.ErrClosed):
		s.fail(w, api.Errorf(http.StatusServiceUnavailable, api.CodeUnavailable,
			"", "inference batcher is shut down"))
	default:
		s.fail(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal,
			"", "%s", err))
	}
}
