package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sweep"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestHTTPMatchesCLI is the parity guarantee: for every registered scenario,
// the server's JSON response bytes equal what `mbsim -scenario <name> -json`
// prints — computed here on an independent engine, so the test also certifies
// that a long-lived server's warm caches cannot change its output.
func TestHTTPMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cli := experiments.Runner{E: sweep.New(0)}
	for _, s := range experiments.Scenarios() {
		t.Run(s.Name, func(t *testing.T) {
			data, err := s.Run(cli, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := report.WriteJSON(&want, s.JSONValue(data)); err != nil {
				t.Fatal(err)
			}
			resp, got := postRun(t, ts, fmt.Sprintf(`{"scenario":%q}`, s.Name))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("HTTP %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Errorf("server response differs from CLI output\ngot:  %.200s\nwant: %.200s",
					got, want.Bytes())
			}
		})
	}
}

// TestTextFormatMatchesRenderer checks the text rendering path.
func TestTextFormatMatchesRenderer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	s, _ := experiments.Lookup("table2")
	var want bytes.Buffer
	if _, err := s.Run(experiments.Runner{E: sweep.New(1)}, nil, &want); err != nil {
		t.Fatal(err)
	}
	resp, got := postRun(t, ts, `{"scenario":"table2","format":"text"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("text response differs\ngot:  %q\nwant: %q", got, want.Bytes())
	}
}

func TestScenariosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []experiments.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(experiments.Names()) {
		t.Fatalf("scenarios = %d, want %d", len(infos), len(experiments.Names()))
	}
	for i, name := range experiments.Names() {
		if infos[i].Name != name {
			t.Errorf("scenario[%d] = %q, want %q", i, infos[i].Name, name)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheMaxBytes: 1 << 20, MaxInFlight: 3})
	if resp, _ := postRun(t, ts, `{"scenario":"fig4"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup run failed: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Build.Version == "" || st.Build.Go == "" {
		t.Errorf("missing build info: %+v", st.Build)
	}
	if st.Workers != 2 || st.MaxInFlight != 3 {
		t.Errorf("config not reflected: %+v", st)
	}
	if st.Served != 1 {
		t.Errorf("served = %d, want 1", st.Served)
	}
	if st.Cache.MaxBytes != 1<<20 {
		t.Errorf("cache max = %d", st.Cache.MaxBytes)
	}
	if st.Cache.Misses == 0 {
		t.Error("warmup run built nothing?")
	}
	if len(st.Cache.Tables) != 3 {
		t.Errorf("tables = %v", st.Cache.Tables)
	}
}

func TestRunErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		code int
	}{
		{`{"scenario":"fig99"}`, http.StatusNotFound},
		{`{"scenario":"fig5","params":{"bogus":"1"}}`, http.StatusBadRequest},
		{`{"scenario":"single","params":{"batch":"many"}}`, http.StatusBadRequest},
		{`{"scenario":"fig10","format":"yaml"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postRun(t, ts, c.body)
		if resp.StatusCode != c.code {
			t.Errorf("%s: HTTP %d, want %d", c.body, resp.StatusCode, c.code)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", c.body, body)
		}
	}
}

// TestConcurrentClients exercises the serving path under real contention
// (run with -race): many clients, a small in-flight bound, a bounded cache.
// All requests must succeed, identical concurrent requests must coalesce
// onto the singleflight cache (distinct plan builds stay constant), and the
// cache must end under its bound.
func TestConcurrentClients(t *testing.T) {
	const maxBytes = 256 << 10
	svc, ts := newTestServer(t, Config{CacheMaxBytes: maxBytes, MaxInFlight: 4})
	scenarios := []string{"fig4", "fig5", "single", "fig3"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := scenarios[i%len(scenarios)]
			resp, err := http.Post(ts.URL+"/v1/run", "application/json",
				strings.NewReader(fmt.Sprintf(`{"scenario":%q}`, name)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: HTTP %d", name, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := svc.Engine().Cache().Stats()
	// The four scenarios touch three distinct plan keys (fig4 and fig5 share
	// resnet50/MBS1; fig5 adds MBS2; single adds the batch-0 default MBS2
	// key) — 64 requests may rebuild an evicted key but must not plan once
	// per request.
	if st.PlanMisses >= 32 {
		t.Errorf("plan misses = %d for 64 requests — singleflight/caching not coalescing", st.PlanMisses)
	}
	if st.HitRate() < 0.5 {
		t.Errorf("hit rate = %.3f, want coalesced lookups", st.HitRate())
	}
	if st.Bytes > maxBytes {
		t.Errorf("cache bytes %d exceed bound %d", st.Bytes, maxBytes)
	}
	if resp, _ := postRun(t, ts, `{"scenario":"fig4"}`); resp.StatusCode != http.StatusOK {
		t.Error("server unhealthy after load")
	}
}
