package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/infer"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/tensor"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return svc, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestHTTPMatchesCLI is the parity guarantee: for every registered scenario,
// the server's JSON response bytes equal what `mbsim -scenario <name> -json`
// prints — computed here on an independent engine, so the test also certifies
// that a long-lived server's warm caches cannot change its output.
func TestHTTPMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cli := experiments.Runner{E: sweep.New(0)}
	for _, s := range experiments.Scenarios() {
		t.Run(s.Name, func(t *testing.T) {
			data, err := s.Run(context.Background(), cli, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := report.WriteJSON(&want, s.JSONValue(data)); err != nil {
				t.Fatal(err)
			}
			resp, got := postRun(t, ts, fmt.Sprintf(`{"scenario":%q}`, s.Name))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("HTTP %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Errorf("server response differs from CLI output\ngot:  %.200s\nwant: %.200s",
					got, want.Bytes())
			}
		})
	}
}

// TestTextFormatMatchesRenderer checks the text rendering path.
func TestTextFormatMatchesRenderer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	s, _ := experiments.Lookup("table2")
	var want bytes.Buffer
	if _, err := s.Run(context.Background(), experiments.Runner{E: sweep.New(1)}, nil, &want); err != nil {
		t.Fatal(err)
	}
	resp, got := postRun(t, ts, `{"scenario":"table2","format":"text"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("text response differs\ngot:  %q\nwant: %q", got, want.Bytes())
	}
}

func TestScenariosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []experiments.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(experiments.Names()) {
		t.Fatalf("scenarios = %d, want %d", len(infos), len(experiments.Names()))
	}
	for i, name := range experiments.Names() {
		if infos[i].Name != name {
			t.Errorf("scenario[%d] = %q, want %q", i, infos[i].Name, name)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheMaxBytes: 1 << 20, MaxInFlight: 3})
	if resp, _ := postRun(t, ts, `{"scenario":"fig4"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup run failed: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Build.Version == "" || st.Build.Go == "" {
		t.Errorf("missing build info: %+v", st.Build)
	}
	if st.Workers != 2 || st.MaxInFlight != 3 {
		t.Errorf("config not reflected: %+v", st)
	}
	if st.Served != 1 {
		t.Errorf("served = %d, want 1", st.Served)
	}
	if st.Cache.MaxBytes != 1<<20 {
		t.Errorf("cache max = %d", st.Cache.MaxBytes)
	}
	if st.Cache.Misses == 0 {
		t.Error("warmup run built nothing?")
	}
	if len(st.Cache.Tables) != 3 {
		t.Errorf("tables = %v", st.Cache.Tables)
	}
	if st.MBS.Groups < 1 || st.MBS.SubBatch < 1 || st.MBS.ArenaBytes <= 0 ||
		st.MBS.BudgetBytes <= 0 || st.MBS.FullBytes <= st.MBS.ArenaBytes {
		t.Errorf("mbs plan section not populated: %+v", st.MBS)
	}
	if !st.MBS.BudgetAuto {
		t.Errorf("default config should autodetect the MBS budget: %+v", st.MBS)
	}
}

// TestStatsMBSBudget exercises the configured-budget path: a tight budget
// must split the default Fig. 6 model into multiple groups, and the stats
// section must echo the configured value without marking it auto.
func TestStatsMBSBudget(t *testing.T) {
	svc, _ := newTestServer(t, Config{MBSCacheBudget: 2 << 20})
	st := svc.Stats()
	if st.MBS.BudgetBytes != 2<<20 || st.MBS.BudgetAuto {
		t.Errorf("budget not reflected: %+v", st.MBS)
	}
	if st.MBS.Groups < 2 {
		t.Errorf("2MiB budget should split the model, got %+v", st.MBS)
	}
}

func TestRunErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body    string
		code    int
		errCode string
	}{
		{`{"scenario":"fig99"}`, http.StatusNotFound, "unknown_scenario"},
		{`{"scenario":"fig5","params":{"bogus":"1"}}`, http.StatusUnprocessableEntity, "invalid_params"},
		{`{"scenario":"single","params":{"batch":"many"}}`, http.StatusUnprocessableEntity, "invalid_params"},
		{`{"scenario":"fig10","format":"yaml"}`, http.StatusBadRequest, "bad_request"},
		{`not json`, http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		resp, body := postRun(t, ts, c.body)
		if resp.StatusCode != c.code {
			t.Errorf("%s: HTTP %d, want %d", c.body, resp.StatusCode, c.code)
		}
		var e struct {
			Error    string `json:"error"`
			Scenario string `json:"scenario"`
			Code     string `json:"code"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", c.body, body)
			continue
		}
		if e.Code != c.errCode {
			t.Errorf("%s: code %q, want %q", c.body, e.Code, c.errCode)
		}
	}
}

// TestConcurrentClients exercises the serving path under real contention
// (run with -race): many clients, a small in-flight bound, a bounded cache.
// All requests must succeed, identical concurrent requests must coalesce
// onto the singleflight cache (distinct plan builds stay constant), and the
// cache must end under its bound.
func TestConcurrentClients(t *testing.T) {
	const maxBytes = 256 << 10
	svc, ts := newTestServer(t, Config{CacheMaxBytes: maxBytes, MaxInFlight: 4})
	scenarios := []string{"fig4", "fig5", "single", "fig3"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := scenarios[i%len(scenarios)]
			resp, err := http.Post(ts.URL+"/v1/run", "application/json",
				strings.NewReader(fmt.Sprintf(`{"scenario":%q}`, name)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: HTTP %d", name, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := svc.Engine().Cache().Stats()
	// The four scenarios touch three distinct plan keys (fig4 and fig5 share
	// resnet50/MBS1; fig5 adds MBS2; single adds the batch-0 default MBS2
	// key) — 64 requests may rebuild an evicted key but must not plan once
	// per request.
	if st.PlanMisses >= 32 {
		t.Errorf("plan misses = %d for 64 requests — singleflight/caching not coalescing", st.PlanMisses)
	}
	if st.HitRate() < 0.5 {
		t.Errorf("hit rate = %.3f, want coalesced lookups", st.HitRate())
	}
	if st.Bytes > maxBytes {
		t.Errorf("cache bytes %d exceed bound %d", st.Bytes, maxBytes)
	}
	if resp, _ := postRun(t, ts, `{"scenario":"fig4"}`); resp.StatusCode != http.StatusOK {
		t.Error("server unhealthy after load")
	}
}

// TestV2JobLifecycle runs a real scenario through the async API: submit,
// stream every cell, and check the final result is byte-identical to the
// synchronous /v1/run response (and hence to mbsim -json).
func TestV2JobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(`{"scenario":"sweep","params":{"axes":"buffer"}}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if job.ID == "" || (job.State != "queued" && job.State != "running") {
		t.Fatalf("submit returned %+v", job)
	}

	// Follow the stream to completion: 5 cells (the default buffer axis),
	// then a done event.
	resp, err = http.Get(ts.URL + "/v2/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	cells := map[int]bool{}
	var finalState string
	for {
		var ev struct {
			Type  string `json:"type"`
			Index int    `json:"index"`
			Cell  string `json:"cell"`
			Row   any    `json:"row"`
			Job   *struct {
				State          string `json:"state"`
				CellsCompleted int    `json:"cells_completed"`
			} `json:"job"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		if ev.Type == "cell" {
			cells[ev.Index] = true
			if ev.Cell == "" || ev.Row == nil {
				t.Errorf("cell event missing label/row: %+v", ev)
			}
		}
		if ev.Type == "done" {
			finalState = ev.Job.State
			if ev.Job.CellsCompleted != len(cells) {
				t.Errorf("done reports %d cells, stream delivered %d", ev.Job.CellsCompleted, len(cells))
			}
			break
		}
	}
	if finalState != "done" {
		t.Fatalf("job finished %q, want done", finalState)
	}
	if len(cells) != 5 {
		t.Errorf("streamed %d distinct cells, want 5 (buffer axis)", len(cells))
	}

	// The stored result equals the synchronous v1 bytes for the same request.
	resp, err = http.Get(ts.URL + "/v2/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		State  string          `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.State != "done" || len(status.Result) == 0 {
		t.Fatalf("status = %+v, want done with result", status)
	}

	// The raw result endpoint is byte-identical to the synchronous v1 path.
	resp, err = http.Get(ts.URL + "/v2/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	runResp, v1bytes := postRun(t, ts, `{"scenario":"sweep","params":{"axes":"buffer"}}`)
	if runResp.StatusCode != http.StatusOK {
		t.Fatalf("v1 run: HTTP %d", runResp.StatusCode)
	}
	if !bytes.Equal(raw.Bytes(), v1bytes) {
		t.Errorf("v2 result differs from v1 run bytes\nv2:  %.120s\nv1:  %.120s", raw.Bytes(), v1bytes)
	}
}

// TestV2SubmitErrors pins the submit-time error mapping: unknown scenarios
// 404, invalid params 422 — synchronously, never as failed jobs.
func TestV2SubmitErrors(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	cases := []struct {
		body    string
		code    int
		errCode string
	}{
		{`{"scenario":"fig99"}`, http.StatusNotFound, "unknown_scenario"},
		{`{"scenario":"fig5","params":{"bogus":"1"}}`, http.StatusUnprocessableEntity, "invalid_params"},
		{`{"scenario":"single","params":{"batch":"many"}}`, http.StatusUnprocessableEntity, "invalid_params"},
		{`nope`, http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: bad error body: %v", c.body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code || e.Code != c.errCode || e.Error == "" {
			t.Errorf("%s: HTTP %d code %q (%s), want %d %q", c.body, resp.StatusCode, e.Code, e.Error, c.code, c.errCode)
		}
	}
	if st := svc.Jobs().Stats(); st.Submitted != 0 {
		t.Errorf("invalid submissions created %d jobs, want 0", st.Submitted)
	}

	// Unknown job ids are 404 unknown_job on every job endpoint.
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/v2/jobs/job-99"},
		{http.MethodDelete, "/v2/jobs/job-99"},
		{http.MethodGet, "/v2/jobs/job-99/stream"},
	} {
		r, _ := http.NewRequest(req.method, ts.URL+req.path, nil)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Code string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || e.Code != "unknown_job" {
			t.Errorf("%s %s: HTTP %d code %q, want 404 unknown_job", req.method, req.path, resp.StatusCode, e.Code)
		}
	}
}

// TestV2CancelJob: DELETE transitions a queued job to cancelled and the
// stats counters record it. The test owns the server's only execution slot,
// so the job deterministically never starts before the cancel lands (the
// running→cancelled transition is pinned race-clean in the jobs package,
// where the executor is controllable).
func TestV2CancelJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{MaxInFlight: 1})
	svc.sem <- struct{}{} // hold the slot: submissions stay queued
	defer func() { <-svc.sem }()
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(`{"scenario":"all"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+job.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		State string `json:"state"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || status.State != "cancelled" || status.Code != "cancelled" {
		t.Fatalf("cancel: HTTP %d %+v, want 200 cancelled", resp.StatusCode, status)
	}
	// Idempotent: a second DELETE reports the same terminal state.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || status.State != "cancelled" {
		t.Errorf("second cancel: HTTP %d state %q", resp.StatusCode, status.State)
	}
	if st := svc.Jobs().Stats(); st.Cancellations != 1 {
		t.Errorf("cancellations = %d, want 1", st.Cancellations)
	}
}

// TestStatsIncludesJobs: the stats body carries queue depth, job counts by
// state and cancellation counters.
func TestStatsIncludesJobs(t *testing.T) {
	svc, ts := newTestServer(t, Config{MaxInFlight: 1})
	// One completed job...
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(`{"scenario":"fig4"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	// Wait for completion via the stream (blocks until the done event).
	resp, err = http.Get(ts.URL + "/v2/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()

	// ...and one cancelled while queued: the test holds the only execution
	// slot so the job cannot finish (or start) before the DELETE.
	svc.sem <- struct{}{}
	defer func() { <-svc.sem }()
	resp, err = http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(`{"scenario":"all"}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+job.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for _, path := range []string{"/v1/stats", "/v2/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Jobs.Submitted != 2 {
			t.Errorf("%s: jobs.submitted = %d, want 2", path, st.Jobs.Submitted)
		}
		if st.Jobs.Cancellations != 1 {
			t.Errorf("%s: jobs.cancellations = %d, want 1", path, st.Jobs.Cancellations)
		}
		if st.Jobs.ByState["done"] != 1 || st.Jobs.ByState["cancelled"] != 1 {
			t.Errorf("%s: jobs.by_state = %v", path, st.Jobs.ByState)
		}
		if st.QueueDepth < 0 {
			t.Errorf("%s: queue_depth = %d", path, st.QueueDepth)
		}
	}
}

// httpGet reads a GET endpoint's status and body.
func httpGet(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// postInfer posts a /v2/infer request and returns the response.
func postInfer(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v2/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// testInferInputs renders n valid smallcnn inputs as a JSON body.
func testInferInputs(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"inputs":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("[")
		for j := 0; j < 3*16*16; j++ {
			if j > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%g", float64((i*13+j*7)%11)/5.0-1.0)
		}
		sb.WriteString("]")
	}
	sb.WriteString("]}")
	return sb.String()
}

// TestInferEndpoint: POST /v2/infer serves batched inference with per-input
// logits, argmax and serving batch size, and /v1/stats reports the active
// tensor engine config plus the batcher counters.
func TestInferEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postInfer(t, ts, testInferInputs(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var out api.InferResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Model != "smallcnn" {
		t.Errorf("model = %q", out.Model)
	}
	if len(out.Outputs) != 3 || len(out.Argmax) != 3 || len(out.BatchSizes) != 3 {
		t.Fatalf("response lengths: %d outputs, %d argmax, %d batch sizes",
			len(out.Outputs), len(out.Argmax), len(out.BatchSizes))
	}
	for i, logits := range out.Outputs {
		if len(logits) != 8 {
			t.Errorf("input %d: %d logits, want 8", i, len(logits))
		}
		if out.BatchSizes[i] < 1 || out.BatchSizes[i] > 8 {
			t.Errorf("input %d: batch size %d", i, out.BatchSizes[i])
		}
	}

	// Identical request, possibly different batch composition: logits must
	// be byte-identical (the determinism contract).
	resp2, body2 := postInfer(t, ts, testInferInputs(3))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat: HTTP %d", resp2.StatusCode)
	}
	var out2 api.InferResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	for i := range out.Outputs {
		for j := range out.Outputs[i] {
			if out.Outputs[i][j] != out2.Outputs[i][j] {
				t.Fatalf("logits differ across requests at [%d][%d]", i, j)
			}
		}
	}

	resp, body = httpGet(t, ts, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Kernel != "gemm" {
		t.Errorf("engine.kernel = %q, want gemm", st.Engine.Kernel)
	}
	if st.Engine.Threads < 1 {
		t.Errorf("engine.threads = %d", st.Engine.Threads)
	}
	if st.Infer.Model != "smallcnn" || st.Infer.MaxBatch != 8 {
		t.Errorf("infer stats: %+v", st.Infer)
	}
	if st.Infer.Requests != 6 || st.Infer.Items != 6 {
		t.Errorf("infer requests=%d items=%d, want 6/6", st.Infer.Requests, st.Infer.Items)
	}
	if st.Infer.Batches < 1 || st.Infer.MeanBatchSize < 1 {
		t.Errorf("infer batches=%d mean=%.2f", st.Infer.Batches, st.Infer.MeanBatchSize)
	}
}

// TestInferErrors: malformed bodies 400, wrong-sized inputs 422, and the
// structured error body everywhere.
func TestInferErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed", `{"inputs":`, http.StatusBadRequest, api.CodeBadRequest},
		{"empty", `{"inputs":[]}`, http.StatusBadRequest, api.CodeBadRequest},
		{"wrong size", `{"inputs":[[1,2,3]]}`, http.StatusUnprocessableEntity, api.CodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postInfer(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("HTTP %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var e struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body not structured: %s", body)
			}
			if e.Code != tc.code || e.Error == "" {
				t.Errorf("error body: %s", body)
			}
		})
	}
}

// TestInferConcurrentClients: concurrent single-sample requests coalesce
// into shared micro-batches (mean batch size > 1) with zero failures —
// the serving-side form of the paper's grouping-for-reuse claim.
func TestInferConcurrentClients(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	const total, workers = 48, 8
	var next, failures, batchSum atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= total {
					return
				}
				resp, body := postInfer(t, ts, testInferInputs(1))
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("request %d: HTTP %d: %s", i, resp.StatusCode, body)
					continue
				}
				var out api.InferResponse
				if err := json.Unmarshal(body, &out); err != nil {
					failures.Add(1)
					continue
				}
				batchSum.Add(int64(out.BatchSizes[0]))
			}
		}()
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failures", failures.Load())
	}
	st := svc.Batcher().Stats()
	if st.Items != total {
		t.Errorf("items = %d, want %d", st.Items, total)
	}
	if st.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1 under %d workers", st.MeanBatchSize, workers)
	}
}

// TestFailInferOverloadedMapping pins the 429 wire contract in isolation:
// ErrOverloaded maps to HTTP 429, the overloaded code, and a Retry-After
// header, and counts as a failed request.
func TestFailInferOverloadedMapping(t *testing.T) {
	svc, _ := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	svc.failInfer(rec, infer.ErrOverloaded)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("unstructured 429 body: %s", rec.Body.Bytes())
	}
	if e.Code != api.CodeOverloaded || e.Error == "" {
		t.Errorf("429 body: %s", rec.Body.Bytes())
	}
	if svc.Stats().Failed != 1 {
		t.Errorf("shed request not counted as failed")
	}
}

// TestInferOverload429: with admission control on and a deliberately tiny
// queue, a simultaneous burst sheds — every rejected request is a 429 with
// the overloaded code and a Retry-After header (the client retry contract),
// every other request succeeds, and the shed/replica counters surface in
// /v1/stats. No request may fail any other way.
func TestInferOverload429(t *testing.T) {
	// Overwhelming the batcher through a real HTTP stack needs the sample
	// arrival rate to beat the drain rate. Eight inputs per request turn
	// each (slow) HTTP arrival into eight simultaneous batcher submissions,
	// and MaxBatch 32 with a 20ms coalesce deadline makes each smallcnn
	// flush tens of milliseconds of work — so both replicas saturate and the
	// rest of the burst meets a full 1-deep queue. (Batch-1 flushes don't
	// work here: on GOMAXPROCS=1 a flush shorter than the scheduler's
	// preemption quantum never yields to waiting senders, so the queue
	// drains as fast as it fills.) The AVX2 kernels push even batch-32
	// flushes under that quantum, so pin the portable kernels — this test
	// exercises HTTP backpressure, not compute speed.
	if prev := tensor.SetSIMD(false); prev {
		defer tensor.SetSIMD(true)
	}
	svc, ts := newTestServer(t, Config{
		InferShed:     true,
		InferQueueCap: 1,
		InferMaxBatch: 32,
		InferMaxDelay: 20 * time.Millisecond,
		InferReplicas: 2,
	})
	const burst = 128
	var ok, overloaded, other atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	body := testInferInputs(8)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v2/infer", "application/json", strings.NewReader(body))
			if err != nil {
				other.Add(1)
				t.Errorf("transport error: %v", err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Error(err)
			}
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				overloaded.Add(1)
				if ra := resp.Header.Get("Retry-After"); ra == "" {
					t.Error("429 without a Retry-After header")
				}
				var e struct {
					Error string `json:"error"`
					Code  string `json:"code"`
				}
				if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e.Code != api.CodeOverloaded {
					t.Errorf("429 body not a structured overloaded error: %s", buf.Bytes())
				}
			default:
				other.Add(1)
				t.Errorf("HTTP %d under overload, want 200 or 429: %s", resp.StatusCode, buf.Bytes())
			}
		}()
	}
	close(start)
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d non-429 failures under overload", other.Load())
	}
	if overloaded.Load() == 0 {
		t.Fatalf("overload burst of %d against queue cap 1 produced no 429s", burst)
	}
	t.Logf("burst served %d requests fully, shed %d", ok.Load(), overloaded.Load())
	// Shed counts samples; a 429 response means at least one of its eight
	// samples was shed, so the sample counter dominates the response count.
	st := svc.Batcher().Stats()
	if st.Items == 0 {
		t.Error("overload burst: the pool forwarded no samples at all")
	}
	if st.Shed < overloaded.Load() {
		t.Errorf("shed counter %d < observed 429s %d", st.Shed, overloaded.Load())
	}
	if st.Replicas != 2 || len(st.PerReplica) != 2 || !st.ShedEnabled {
		t.Errorf("replica/shed config in stats: %+v", st)
	}

	// The wire form: /v1/stats carries shed, replicas and per_replica.
	resp, body2 := httpGet(t, ts, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d", resp.StatusCode)
	}
	var sr StatsResponse
	if err := json.Unmarshal(body2, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Infer.Shed != st.Shed || sr.Infer.Replicas != 2 || len(sr.Infer.PerReplica) != 2 {
		t.Errorf("stats wire form: %+v", sr.Infer)
	}
}
