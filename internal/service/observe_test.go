package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sweep"
)

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts the value of the first sample line whose name+labels
// prefix matches (labels must be written exactly as rendered: sorted keys).
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in scrape:\n%s", series, body)
	return 0
}

// TestMetricsScrape drives one run and one inference burst, then asserts the
// scrape carries the phase histograms, route counters and subsystem series
// with consistent values.
func TestMetricsScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{InferMaxDelay: 200 * time.Microsecond})

	resp, body := postRun(t, ts, `{"scenario":"fig10"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d: %s", resp.StatusCode, body)
	}
	// One inference too, for the batcher histograms.
	in := make([]float64, 3*16*16)
	inferBody, _ := json.Marshal(map[string]any{"inputs": [][]float64{in}})
	iresp, err := http.Post(ts.URL+"/v2/infer", "application/json", bytes.NewReader(inferBody))
	if err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("infer: HTTP %d", iresp.StatusCode)
	}

	out := scrape(t, ts)
	if v := metricValue(t, out, `http_request_duration_seconds_count{phase="queue",route="POST /v1/run"}`); v != 1 {
		t.Fatalf("queue phase count = %v, want 1", v)
	}
	if v := metricValue(t, out, `http_request_duration_seconds_count{phase="compute",route="POST /v1/run"}`); v != 1 {
		t.Fatalf("compute phase count = %v, want 1", v)
	}
	if v := metricValue(t, out, `http_request_duration_seconds_count{phase="render",route="POST /v1/run"}`); v != 1 {
		t.Fatalf("render phase count = %v, want 1", v)
	}
	if v := metricValue(t, out, `http_request_duration_seconds_count{phase="total",route="POST /v1/run"}`); v != 1 {
		t.Fatalf("total phase count = %v, want 1", v)
	}
	if v := metricValue(t, out, `http_requests_total{code="200",route="POST /v1/run"}`); v != 1 {
		t.Fatalf("http_requests_total = %v, want 1", v)
	}
	if v := metricValue(t, out, `infer_batch_size_count`); v < 1 {
		t.Fatalf("infer_batch_size_count = %v, want >= 1", v)
	}
	if v := metricValue(t, out, `infer_queue_wait_seconds_count`); v < 1 {
		t.Fatalf("infer_queue_wait_seconds_count = %v, want >= 1", v)
	}
	if v := metricValue(t, out, `runs_served_total`); v != 1 {
		t.Fatalf("runs_served_total = %v, want 1", v)
	}
	if v := metricValue(t, out, `sweep_cells_completed_total`); v < 1 {
		t.Fatalf("sweep_cells_completed_total = %v, want >= 1", v)
	}
	// The scrape itself and the run must both appear under their routes; an
	// unmatched path gets the bounded "unmatched" label, not its raw URL.
	resp2, err := http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	out = scrape(t, ts)
	if v := metricValue(t, out, `http_requests_total{code="404",route="unmatched"}`); v != 1 {
		t.Fatalf("unmatched counter = %v, want 1", v)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    uint64
	event string
	data  []byte
}

// readSSE parses frames from r until fn returns false or the stream ends.
// Comment frames (heartbeats) are counted via the comments counter.
func readSSE(t *testing.T, r *bufio.Reader, comments *int, fn func(sseEvent) bool) {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.event != "" || len(ev.data) > 0 {
				if !fn(ev) {
					return
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, ":"):
			if comments != nil {
				*comments++
			}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			ev.id = id
		case strings.HasPrefix(line, "event: "):
			ev.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(line[6:])
		}
	}
}

// TestEventsStreamDeliversJobLifecycle subscribes to the firehose with a
// topic filter, submits a job, and asserts the queued → running → done
// transitions arrive as framed SSE events with bus sequence ids.
func TestEventsStreamDeliversJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{EventHeartbeat: 50 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v2/events?topics=job.state&buffer=512", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	sub, err := http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(`{"scenario":"table2"}`))
	if err != nil {
		t.Fatal(err)
	}
	var jobSt struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(sub.Body).Decode(&jobSt); err != nil {
		t.Fatal(err)
	}
	sub.Body.Close()

	var states []string
	var lastSeq uint64
	comments := 0
	readSSE(t, bufio.NewReader(resp.Body), &comments, func(ev sseEvent) bool {
		if ev.event != "job.state" {
			t.Fatalf("topic-filtered stream delivered %q", ev.event)
		}
		if ev.id <= lastSeq {
			t.Fatalf("non-increasing event id %d after %d", ev.id, lastSeq)
		}
		lastSeq = ev.id
		var frame struct {
			Seq   uint64 `json:"seq"`
			Topic string `json:"topic"`
			Data  struct {
				ID    string `json:"id"`
				State string `json:"state"`
			} `json:"data"`
		}
		if err := json.Unmarshal(ev.data, &frame); err != nil {
			t.Fatalf("bad data frame %q: %v", ev.data, err)
		}
		if frame.Seq != ev.id || frame.Topic != "job.state" {
			t.Fatalf("frame/envelope mismatch: id=%d %+v", ev.id, frame)
		}
		if frame.Data.ID != jobSt.ID {
			return true // some other job (shouldn't happen, but harmless)
		}
		states = append(states, frame.Data.State)
		return frame.Data.State != "done" && frame.Data.State != "failed"
	})
	want := []string{"queued", "running", "done"}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Fatalf("states = %v, want %v", states, want)
	}
}

// TestEventsHeartbeat: with a short heartbeat interval, comment frames flow
// on an otherwise idle stream.
func TestEventsHeartbeat(t *testing.T) {
	_, ts := newTestServer(t, Config{EventHeartbeat: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v2/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	comments := 0
	deadline := time.Now().Add(2 * time.Second)
	for comments < 3 && time.Now().Before(deadline) {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if strings.HasPrefix(line, ":") {
			comments++
		}
	}
	if comments < 3 {
		t.Fatalf("saw %d heartbeat comments, want >= 3", comments)
	}
}

func TestEventsRejectsUnknownTopic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v2/events?topics=no.such.topic")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", resp.StatusCode)
	}
}

// TestEventsDisconnectFreesSubscriber: closing the client connection frees
// the bus subscriber slot (the satellite race test for SSE cleanup).
func TestEventsDisconnectFreesSubscriber(t *testing.T) {
	svc, ts := newTestServer(t, Config{EventHeartbeat: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v2/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Bus().Stats().Subscribers; got != 1 {
		t.Fatalf("subscribers = %d, want 1", got)
	}
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Bus().Stats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber slot not freed after disconnect (subscribers = %d)",
				svc.Bus().Stats().Subscribers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventsReplayResume: a reconnecting client with Last-Event-ID replays
// only the retained events after that sequence number.
func TestEventsReplayResume(t *testing.T) {
	svc, ts := newTestServer(t, Config{EventHeartbeat: time.Hour})
	// Retention requires an observer — keep a direct subscription attached.
	keeper, err := svc.Bus().Subscribe(bus.SubOptions{Buffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()

	svc.Bus().Publish(bus.TopicJobState, bus.JobState{ID: "a", State: "queued"})
	svc.Bus().Publish(bus.TopicJobState, bus.JobState{ID: "a", State: "running"})
	svc.Bus().Publish(bus.TopicJobState, bus.JobState{ID: "a", State: "done"})
	// Find the middle event's seq from the keeper.
	var seqs []uint64
	for i := 0; i < 3; i++ {
		seqs = append(seqs, (<-keeper.C()).Seq)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v2/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatUint(seqs[1], 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []uint64
	readSSE(t, bufio.NewReader(resp.Body), nil, func(ev sseEvent) bool {
		got = append(got, ev.id)
		return len(got) < 1
	})
	if len(got) != 1 || got[0] != seqs[2] {
		t.Fatalf("replayed ids %v, want exactly [%d]", got, seqs[2])
	}
}

// TestStalledSubscriberDoesNotPerturbServing is the acceptance criterion: a
// subscriber that never reads drops events (counted), while /v1/run responses
// remain byte-identical to the CLI and producers never stall.
func TestStalledSubscriberDoesNotPerturbServing(t *testing.T) {
	svc, ts := newTestServer(t, Config{EventHeartbeat: time.Hour})

	// A deliberately tiny direct subscription that is never drained.
	stalled, err := svc.Bus().Subscribe(bus.SubOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	sc, _ := experiments.Lookup("table2")
	cli := experiments.Runner{E: sweep.New(0)}
	data, err := sc.Run(context.Background(), cli, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := report.WriteJSON(&want, sc.JSONValue(data)); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		resp, got := postRun(t, ts, `{"scenario":"table2"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: HTTP %d: %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("run %d: response bytes diverged under a stalled subscriber", i)
		}
	}
	if d := stalled.Dropped(); d == 0 {
		t.Fatal("stalled subscriber dropped nothing; expected drops with buffer=1")
	}
	out := scrape(t, ts)
	if v := metricValue(t, out, "bus_dropped_total"); v == 0 {
		t.Fatal("bus_dropped_total = 0, want > 0")
	}
	if v := metricValue(t, out, "runs_served_total"); v != 5 {
		t.Fatalf("runs_served_total = %v, want 5", v)
	}
}

// TestStatsStillServesAndJobStreamStillFlushes guards the middleware's
// Flusher passthrough: the v2 NDJSON job stream needs http.Flusher through
// the instrumented writer.
func TestJobStreamFlushesThroughMiddleware(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub, err := http.Post(ts.URL+"/v2/jobs", "application/json",
		strings.NewReader(`{"scenario":"table2"}`))
	if err != nil {
		t.Fatal(err)
	}
	var jobSt struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(sub.Body).Decode(&jobSt); err != nil {
		t.Fatal(err)
	}
	sub.Body.Close()

	resp, err := http.Get(ts.URL + "/v2/jobs/" + jobSt.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: HTTP %d: %s", resp.StatusCode, b)
	}
	// The stream must terminate with a done event — flushed incrementally.
	scanner := bufio.NewScanner(resp.Body)
	sawDone := false
	for scanner.Scan() {
		if strings.Contains(scanner.Text(), `"done"`) {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("job stream never delivered a done event through the middleware")
	}
}

func TestEventsSubscriberLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{EventMaxSubscribers: 1, EventHeartbeat: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v2/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	resp2, err := http.Get(ts.URL + "/v2/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second subscriber: HTTP %d, want 503", resp2.StatusCode)
	}
}
