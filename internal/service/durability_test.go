package service

// Sharded-sweep parity and durable-store persistence at the HTTP surface.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

// submitJob posts a v2 job and returns its id.
func submitJob(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%+v)", resp.StatusCode, st)
	}
	return st.ID
}

// waitJobDone polls the job until it is terminal and returns the final
// status (with result).
func waitJobDone(t *testing.T, ts *httptest.Server, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v2/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st api.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return api.JobStatus{}
}

// TestShardedSweepMatchesV1 is the sharded byte-parity guarantee: a sweep
// split across multiple lease units assembles to exactly the bytes the
// synchronous /v1/run path produces for the same request.
func TestShardedSweepMatchesV1(t *testing.T) {
	// 5 buffer cells at 2 cells/shard → 3 shards.
	_, ts := newTestServer(t, Config{JobShardCells: 2})

	body := `{"scenario":"sweep","params":{"axes":"buffer"}}`
	resp, want := postRun(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 run: HTTP %d", resp.StatusCode)
	}

	id := submitJob(t, ts, body)
	st := waitJobDone(t, ts, id)
	if st.State != api.JobDone {
		t.Fatalf("job = %+v, want done", st)
	}
	if st.Shards != 3 || st.ShardsDone != 3 {
		t.Errorf("shards=%d done=%d, want 3/3", st.Shards, st.ShardsDone)
	}
	if st.CellsCompleted != 5 {
		t.Errorf("cells completed = %d, want 5", st.CellsCompleted)
	}
	// Byte parity is checked against the result endpoint, which serves the
	// stored bytes verbatim (Result inside the status JSON is re-indented
	// by the enclosing encoder).
	rr, err := http.Get(ts.URL + "/v2/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(rr.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("result endpoint differs from /v1/run\ngot:  %.200s", buf.Bytes())
	}
}

// TestStoreDirPersistsJobsAcrossRestart: with -store-dir set, a finished
// job survives a full server restart — same id, same state, same result
// bytes — and the stats section names the journal store.
func TestStoreDirPersistsJobsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"scenario":"sweep","params":{"axes":"buffer"}}`

	svc1 := New(Config{StoreDir: dir, JobShardCells: 2})
	ts1 := httptest.NewServer(svc1.Handler())
	id := submitJob(t, ts1, body)
	first := waitJobDone(t, ts1, id)
	if first.State != api.JobDone {
		t.Fatalf("job = %+v, want done", first)
	}
	if got := svc1.Jobs().Stats().Store; got != "journal" {
		t.Fatalf("store = %q, want journal", got)
	}
	ts1.Close()
	svc1.Close()

	svc2 := New(Config{StoreDir: dir, JobShardCells: 2})
	ts2 := httptest.NewServer(svc2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(svc2.Close)
	resp, err := http.Get(ts2.URL + "/v2/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobDone {
		t.Fatalf("after restart: %+v, want done", st)
	}
	if !bytes.Equal(st.Result, first.Result) {
		t.Errorf("result changed across restart\nbefore: %.200s\nafter:  %.200s", first.Result, st.Result)
	}
}
