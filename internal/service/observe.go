package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/infer"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// Bucket layouts. Durations span sub-millisecond inference to multi-second
// sweeps; queue waits are dominated by the coalesce deadline (ms scale);
// batch sizes by MaxBatch (8 by default, larger when configured).
var (
	durationBuckets  = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	queueWaitBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5}
	batchSizeBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
)

// observability owns the server's event bus and metrics registry: the bus
// carries live typed events to /v2/events subscribers, the registry renders
// /metrics, and the per-route/per-phase histogram series are created lazily
// as routes are first served (route cardinality is bounded by the mux's
// registered patterns).
type observability struct {
	bus       *bus.Bus
	reg       *metrics.Registry
	heartbeat time.Duration

	// Request-phase latency: phase="total" comes from the middleware for
	// every route; queue/compute/render decompose POST /v1/run only.
	runQueue, runCompute, runRender *metrics.Histogram
	inferBatch                      *metrics.Histogram
	inferWait                       *metrics.Histogram

	mu        sync.Mutex
	reqCounts map[string]*metrics.Counter   // key: route "\x00" code
	reqDurs   map[string]*metrics.Histogram // key: route (phase="total")
}

func newObservability(cfg Config) *observability {
	hb := cfg.EventHeartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	o := &observability{
		bus: bus.New(bus.Config{
			Ring:           cfg.EventRing,
			MaxSubscribers: cfg.EventMaxSubscribers,
		}),
		reg:       metrics.NewRegistry(),
		heartbeat: hb,
		reqCounts: make(map[string]*metrics.Counter),
		reqDurs:   make(map[string]*metrics.Histogram),
	}
	o.runQueue = o.reg.NewHistogram(httpDurationName, httpDurationHelp, durationBuckets,
		"route", "POST /v1/run", "phase", "queue")
	o.runCompute = o.reg.NewHistogram(httpDurationName, httpDurationHelp, durationBuckets,
		"route", "POST /v1/run", "phase", "compute")
	o.runRender = o.reg.NewHistogram(httpDurationName, httpDurationHelp, durationBuckets,
		"route", "POST /v1/run", "phase", "render")
	o.inferBatch = o.reg.NewHistogram("infer_batch_size",
		"Requests coalesced per served inference batch.", batchSizeBuckets)
	o.inferWait = o.reg.NewHistogram("infer_queue_wait_seconds",
		"Per-request wait from enqueue to forward-pass start.", queueWaitBuckets)
	return o
}

const (
	httpDurationName = "http_request_duration_seconds"
	httpDurationHelp = "Request latency; POST /v1/run decomposes into queue/compute/render phases alongside the middleware's total."
)

// requestCounter returns (creating on first use) the http_requests_total
// series for one (route, code) pair.
func (o *observability) requestCounter(route string, code int) *metrics.Counter {
	codeStr := strconv.Itoa(code)
	key := route + "\x00" + codeStr
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.reqCounts[key]
	if !ok {
		c = o.reg.NewCounter("http_requests_total", "Requests served, by route and status code.",
			"route", route, "code", codeStr)
		o.reqCounts[key] = c
	}
	return c
}

// requestDuration returns the phase="total" latency histogram for a route.
func (o *observability) requestDuration(route string) *metrics.Histogram {
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.reqDurs[route]
	if !ok {
		h = o.reg.NewHistogram(httpDurationName, httpDurationHelp, durationBuckets,
			"route", route, "phase", "total")
		o.reqDurs[route] = h
	}
	return h
}

// registerCollectors wires the scrape-time series that read the subsystems'
// existing counters — no second bookkeeping, one source of truth.
func (s *Server) registerCollectors() {
	r := s.obs.reg
	e := s.engine

	// Sweep cache, per table and kind. Closures snapshot Stats() per series;
	// a scrape takes a handful of snapshots, which is fine at scrape rates.
	type tableCounters struct {
		table string
		fn    func(sweep.Stats) (hits, misses, evictions int64)
	}
	for _, tc := range []tableCounters{
		{"network", func(st sweep.Stats) (int64, int64, int64) {
			return st.NetworkHits, st.NetworkMisses, st.NetworkEvictions
		}},
		{"plan", func(st sweep.Stats) (int64, int64, int64) {
			return st.PlanHits, st.PlanMisses, st.PlanEvictions
		}},
		{"traffic", func(st sweep.Stats) (int64, int64, int64) {
			return st.TrafficHits, st.TrafficMisses, st.TrafficEvictions
		}},
	} {
		tc := tc
		r.CounterFunc("sweep_cache_hits_total", "Sweep cache hits, by memo table.",
			func() float64 { h, _, _ := tc.fn(e.Cache().Stats()); return float64(h) },
			"table", tc.table)
		r.CounterFunc("sweep_cache_misses_total", "Sweep cache misses, by memo table.",
			func() float64 { _, m, _ := tc.fn(e.Cache().Stats()); return float64(m) },
			"table", tc.table)
		r.CounterFunc("sweep_cache_evictions_total", "Sweep cache evictions, by memo table.",
			func() float64 { _, _, ev := tc.fn(e.Cache().Stats()); return float64(ev) },
			"table", tc.table)
	}
	r.GaugeFunc("sweep_cache_bytes", "Estimated bytes held by the sweep artifact cache.",
		func() float64 { return float64(e.Cache().Stats().Bytes) })
	r.CounterFunc("sweep_cells_completed_total", "Grid cells simulated to completion.",
		func() float64 { return float64(e.CellsCompleted()) })

	// Jobs: monotone transition counters per target state, plus live depth.
	for _, st := range []api.JobState{api.JobQueued, api.JobRunning, api.JobDone, api.JobFailed, api.JobCancelled} {
		st := st
		r.CounterFunc("jobs_transitions_total", "Job lifecycle transitions, by target state.",
			func() float64 { return float64(s.jobs.Stats().Transitions[st]) },
			"state", string(st))
	}
	r.GaugeFunc("jobs_queue_depth", "Jobs waiting for an execution slot.",
		func() float64 { return float64(s.jobs.Stats().QueueDepth) })

	// Durable execution: shard-lease and recovery accounting.
	jobStat := func(pick func(jobs.Stats) int64) func() float64 {
		return func() float64 { return float64(pick(s.jobs.Stats())) }
	}
	r.CounterFunc("jobs_shards_claimed_total", "Shard leases granted to this process, including retries.",
		jobStat(func(st jobs.Stats) int64 { return st.ShardsClaimed }))
	r.CounterFunc("jobs_leases_expired_total", "Shard leases reaped after lapsing without a heartbeat.",
		jobStat(func(st jobs.Stats) int64 { return st.LeasesExpired }))
	r.CounterFunc("jobs_leases_lost_total", "Shard leases abandoned mid-run after a rejected heartbeat.",
		jobStat(func(st jobs.Stats) int64 { return st.LeasesLost }))
	r.CounterFunc("jobs_requeues_total", "Shards returned to the queue for another attempt.",
		jobStat(func(st jobs.Stats) int64 { return st.Requeues }))
	r.CounterFunc("jobs_recovered_total", "Non-terminal jobs re-queued from the store at startup.",
		jobStat(func(st jobs.Stats) int64 { return st.Recovered }))
	r.CounterFunc("jobs_store_errors_total", "Job store operations that failed.",
		jobStat(func(st jobs.Stats) int64 { return st.StoreErrors }))
	r.GaugeFunc("jobs_active_leases", "Shards this process is executing right now.",
		jobStat(func(st jobs.Stats) int64 { return st.ActiveLeases }))

	// Inference batcher counters (real distributions come from OnFlush into
	// infer_batch_size / infer_queue_wait_seconds).
	inferStat := func(pick func(infer.Stats) int64) func() float64 {
		return func() float64 { return float64(pick(s.batcher.Stats())) }
	}
	r.CounterFunc("infer_requests_total", "Inference requests admitted to the queue.",
		inferStat(func(st infer.Stats) int64 { return st.Requests }))
	r.CounterFunc("infer_batches_total", "Inference batches served.",
		inferStat(func(st infer.Stats) int64 { return st.Batches }))
	r.CounterFunc("infer_shed_total", "Inference requests rejected by admission control (429).",
		inferStat(func(st infer.Stats) int64 { return st.Shed }))
	r.GaugeFunc("infer_queue_depth", "Inference requests currently queued.",
		inferStat(func(st infer.Stats) int64 { return int64(st.QueueDepth) }))

	// Service-level serving counters and the event bus's own accounting.
	r.CounterFunc("runs_served_total", "Synchronous /v1/run responses served.",
		func() float64 { return float64(s.served.Load()) })
	r.CounterFunc("runs_failed_total", "Requests answered with a structured error.",
		func() float64 { return float64(s.failed.Load()) })
	r.CounterFunc("runs_cancelled_total", "Runs abandoned by their client.",
		func() float64 { return float64(s.cancelled.Load()) })
	r.GaugeFunc("inflight_runs", "Execution slots currently held (v1 + v2).",
		func() float64 { return float64(len(s.sem)) })
	busStat := func(pick func(bus.Stats) float64) func() float64 {
		return func() float64 { return pick(s.obs.bus.Stats()) }
	}
	r.CounterFunc("bus_published_total", "Events offered to the bus (including unobserved).",
		busStat(func(st bus.Stats) float64 { return float64(st.Published) }))
	r.CounterFunc("bus_delivered_total", "Events delivered into subscriber queues.",
		busStat(func(st bus.Stats) float64 { return float64(st.Delivered) }))
	r.CounterFunc("bus_dropped_total", "Events dropped at full subscriber queues.",
		busStat(func(st bus.Stats) float64 { return float64(st.Dropped) }))
	r.GaugeFunc("bus_subscribers", "Currently attached event-bus subscribers.",
		busStat(func(st bus.Stats) float64 { return float64(st.Subscribers) }))
}

// onInferFlush feeds the batch-size and queue-wait histograms and, when
// someone is listening, publishes the flush on the bus. It runs on replica
// dispatch goroutines — everything here is atomic or non-blocking.
func (s *Server) onInferFlush(fi infer.FlushInfo) {
	s.obs.inferBatch.Observe(float64(fi.Size))
	var oldest time.Duration
	for _, w := range fi.Waits {
		s.obs.inferWait.Observe(w.Seconds())
		if w > oldest {
			oldest = w
		}
	}
	if b := s.obs.bus; b.Active() {
		b.Publish(bus.TopicInferFlush, bus.InferFlush{
			Replica: fi.Replica, Size: fi.Size, Full: fi.Full,
			QueueWaitMS: oldest.Seconds() * 1000,
		})
	}
}

// statusWriter captures the response status for the middleware while passing
// Flush through — the NDJSON job stream and the SSE firehose both require
// the underlying http.Flusher.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument wraps the route table: every completed request increments
// http_requests_total{route,code}, observes the phase="total" latency
// histogram, and — when a subscriber is attached — publishes an
// http.request event. The route label is the matched mux pattern
// ("POST /v1/run"), never the raw URL, so label cardinality stays bounded.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
		dur := time.Since(start)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.obs.requestCounter(route, sw.status).Inc()
		s.obs.requestDuration(route).Observe(dur.Seconds())
		if b := s.obs.bus; b.Active() {
			b.Publish(bus.TopicHTTPRequest, bus.HTTPRequest{
				Method: r.Method, Route: route, Status: sw.status,
				DurationMS: dur.Seconds() * 1000,
			})
		}
	})
}

// maxEventBuffer caps the per-subscriber queue a client may request.
const maxEventBuffer = 4096

// handleEvents serves GET /v2/events: the SSE firehose. Wire contract:
//
//   - each event is one SSE frame — "id:" the bus sequence number, "event:"
//     the topic, "data:" the full event JSON ({seq, topic, time, data})
//   - "?topics=a,b" filters to the named topics (400 on unknown names;
//     default all), "?buffer=N" sizes this subscriber's queue (clamped to
//     4096), "?replay=1" replays the retained ring first
//   - a Last-Event-ID header (or "?after=SEQ") resumes after that sequence
//     number, implying replay
//   - ": heartbeat" comment frames flow every heartbeat interval so proxies
//     and clients can detect a dead connection
//   - a slow consumer's events are dropped, never buffered unboundedly; the
//     stream closes with a ": bus closed" comment at server shutdown
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal,
			"", "response writer does not support streaming"))
		return
	}
	q := r.URL.Query()
	var topics []string
	if raw := q.Get("topics"); raw != "" {
		for _, t := range strings.Split(raw, ",") {
			t = strings.TrimSpace(t)
			if t == "" {
				continue
			}
			if !bus.Valid(t) {
				s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "",
					"unknown topic %q (have %v)", t, bus.Topics()))
				return
			}
			topics = append(topics, t)
		}
	}
	opts := bus.SubOptions{Topics: topics}
	if raw := q.Get("buffer"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "",
				"bad buffer %q: want a positive integer", raw))
			return
		}
		opts.Buffer = min(n, maxEventBuffer)
	}
	if raw := q.Get("replay"); raw == "1" || raw == "true" {
		opts.Replay = true
	}
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = q.Get("after")
	}
	if lastID != "" {
		after, err := strconv.ParseUint(lastID, 10, 64)
		if err != nil {
			s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "",
				"bad last-event-id %q: want a sequence number", lastID))
			return
		}
		opts.Replay = true
		opts.After = after
	}

	sub, err := s.obs.bus.Subscribe(opts)
	if err != nil {
		s.fail(w, api.Errorf(http.StatusServiceUnavailable, api.CodeUnavailable,
			"", "event stream unavailable: %s", err))
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": connected topics=%s\n\n", strings.Join(bus.Topics(), ","))
	fl.Flush()

	hb := time.NewTicker(s.obs.heartbeat)
	defer hb.Stop()
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				// Bus closed: the server is shutting down.
				fmt.Fprint(w, ": bus closed\n\n")
				fl.Flush()
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Topic, data)
			fl.Flush()
		case <-hb.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
