package core

import (
	"testing"

	"repro/internal/models"
)

func TestOccupancyAllNetworksAllMBSConfigs(t *testing.T) {
	// The MBS invariant, checked by independent replay: no point of any
	// serialized schedule exceeds the buffer.
	for _, name := range models.Names() {
		net, _ := models.Build(name)
		batch := models.DefaultBatch(name)
		for _, cfg := range []Config{MBSFS, MBS1, MBS2} {
			s := MustPlan(net, DefaultOptions(cfg, batch))
			rep := CheckOccupancy(s)
			if !rep.OK() {
				t.Errorf("%s/%v: %d violations, first: %s",
					name, cfg, len(rep.Violations), rep.Violations[0])
			}
			if rep.PeakBytes <= 0 || rep.PeakBytes > DefaultBufferBytes {
				t.Errorf("%s/%v: peak %d out of range", name, cfg, rep.PeakBytes)
			}
		}
	}
}

func TestOccupancySmallBuffers(t *testing.T) {
	// The invariant must also hold at the Fig. 11 sweep's smallest buffer.
	net, _ := models.Build("resnet50")
	for _, mib := range []int64{5, 10, 20, 40} {
		opts := DefaultOptions(MBS2, 32)
		opts.BufferBytes = mib << 20
		s := MustPlan(net, opts)
		rep := CheckOccupancy(s)
		if !rep.OK() {
			t.Errorf("%dMiB: %v", mib, rep.Violations[0])
		}
	}
}

func TestOccupancyPeakNearBudget(t *testing.T) {
	// The scheduler should not be wildly conservative: the peak residency
	// should use a meaningful fraction of the buffer (otherwise sub-batch
	// sizes are too small and reuse is being left on the table).
	net, _ := models.Build("resnet50")
	s := MustPlan(net, DefaultOptions(MBS1, 32))
	rep := CheckOccupancy(s)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if frac := float64(rep.PeakBytes) / float64(DefaultBufferBytes); frac < 0.5 {
		t.Errorf("peak uses only %.0f%% of the buffer — scheduler too conservative", frac*100)
	}
	if rep.PeakAt == "" {
		t.Error("peak location not recorded")
	}
}

func TestOccupancyNonSerializedIsTrivial(t *testing.T) {
	net, _ := models.Build("alexnet")
	s := MustPlan(net, DefaultOptions(Baseline, 64))
	rep := CheckOccupancy(s)
	if !rep.OK() || rep.PeakBytes != 0 {
		t.Errorf("baseline replay should be empty, got %+v", rep)
	}
}

func TestOccupancyDetectsOverflow(t *testing.T) {
	// Force a broken schedule (sub-batch far beyond what fits) and confirm
	// the checker flags it: this guards the checker itself.
	net, _ := models.Build("resnet50")
	opts := DefaultOptions(MBS2, 32)
	s := MustPlan(net, opts)
	// Corrupt the first group's sub-batch.
	s.Groups[0].SubBatch = 32
	s.Groups[0].Iterations = 1
	rep := CheckOccupancy(s)
	if rep.OK() {
		t.Error("checker failed to detect an oversized sub-batch")
	}
}
