package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Phase labels one accounted operation of a training step.
type Phase int

const (
	// PhaseFwd is a layer's forward pass.
	PhaseFwd Phase = iota
	// PhaseBwd is the backward pass of a vector (non-GEMM) layer.
	PhaseBwd
	// PhaseBwdData is the data-gradient GEMM of a conv/FC layer.
	PhaseBwdData
	// PhaseBwdWeight is the weight-gradient GEMM of a conv/FC layer.
	PhaseBwdWeight
)

func (p Phase) String() string {
	switch p {
	case PhaseFwd:
		return "fwd"
	case PhaseBwd:
		return "bwd"
	case PhaseBwdData:
		return "bwd-data"
	case PhaseBwdWeight:
		return "bwd-weight"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Item is the traffic ledger entry for one operation (one layer in one
// phase, or a synthetic merge/split op). Byte counts cover the whole
// mini-batch, i.e. all sub-batch iterations of the item's group.
type Item struct {
	Name  string
	Kind  graph.LayerKind
	Layer *graph.Layer // nil for synthetic merge/split-sum ops
	Block int          // index into Net.Blocks
	Group int          // index into Schedule.Groups
	Phase Phase

	Batch      int
	SubBatch   int
	Iterations int

	DRAMRead  int64
	DRAMWrite int64
	GBRead    int64
	GBWrite   int64
}

// DRAM returns the item's total off-chip traffic.
func (it *Item) DRAM() int64 { return it.DRAMRead + it.DRAMWrite }

// GB returns the item's total global-buffer traffic.
func (it *Item) GB() int64 { return it.GBRead + it.GBWrite }

// Traffic is the complete per-step traffic ledger of a schedule.
type Traffic struct {
	Schedule *Schedule
	Items    []Item
}

// TotalDRAM returns the per-step off-chip traffic in bytes.
func (t *Traffic) TotalDRAM() int64 {
	var s int64
	for i := range t.Items {
		s += t.Items[i].DRAM()
	}
	return s
}

// TotalGB returns the per-step global-buffer traffic in bytes.
func (t *Traffic) TotalGB() int64 {
	var s int64
	for i := range t.Items {
		s += t.Items[i].GB()
	}
	return s
}

// DRAMByKind returns per-layer-kind off-chip traffic.
func (t *Traffic) DRAMByKind() map[graph.LayerKind]int64 {
	out := make(map[graph.LayerKind]int64)
	for i := range t.Items {
		out[t.Items[i].Kind] += t.Items[i].DRAM()
	}
	return out
}

// String summarizes the ledger.
func (t *Traffic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic %s/%s: DRAM %.1f MB, GB %.1f MB\n",
		t.Schedule.Net.Name, t.Schedule.Opts.Config,
		float64(t.TotalDRAM())/1e6, float64(t.TotalGB())/1e6)
	kinds := t.DRAMByKind()
	keys := make([]int, 0, len(kinds))
	for k := range kinds {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-7s %.1f MB\n", graph.LayerKind(k), float64(kinds[graph.LayerKind(k)])/1e6)
	}
	return b.String()
}

// reuseMode captures how tensors may stay on chip between producer and
// consumer.
type reuseMode int

const (
	reuseNone  reuseMode = iota // Baseline / ArchOpt
	reuseFit                    // IL: only when the full-mini-batch footprint fits
	reuseGroup                  // MBS: always within a group
)

func modeFor(c Config) reuseMode {
	switch {
	case c.Serialized():
		return reuseGroup
	case c == IL:
		return reuseFit
	default:
		return reuseNone
	}
}

// stashClass says what a tensor must leave in DRAM for back propagation.
type stashClass int

const (
	stashNone stashClass = iota
	stashFull
)

// stashOf classifies the stash requirement of a tensor by its consumer:
// conv/FC need their inputs for weight gradients, norm layers re-read their
// inputs for parameter and data gradients, and max pooling needs its input
// to locate window maxima. Activations and merges do not stash their inputs
// (ReLU gradients come from the output sign or the 1-bit mask).
func stashOf(consumer *graph.Layer) stashClass {
	if consumer == nil {
		return stashNone
	}
	switch consumer.Kind {
	case graph.Conv, graph.FC, graph.Norm, graph.Pool:
		return stashFull
	default:
		return stashNone
	}
}

// ComputeTraffic builds the full per-step traffic ledger for a schedule.
// The model follows the paper's Fig. 2 dataflow:
//
//   - Forward: each layer reads its input (twice for normalization layers
//     when it does not fit on chip), reads its weights once per sub-batch
//     iteration, writes its output to DRAM when the output must be stashed
//     for back propagation or when the consumer cannot keep it on chip.
//     Under MBS, ReLU layers additionally write a 1-bit-per-element gradient
//     mask; conventionally the full activation serves that role.
//   - Backward: loss gradients are read once per use when off chip (twice
//     per convolution: data and weight gradients), stashed tensors are
//     re-loaded from DRAM, weights are re-read per iteration, and weight
//     gradients are accumulated across sub-batch iterations as partial sums
//     (T writes and T−1 reads of the parameter size).
//
// Every logical read/write also counts as global-buffer traffic, whether or
// not it touches DRAM.
func ComputeTraffic(s *Schedule) *Traffic {
	w := &walker{s: s, mode: modeFor(s.Opts.Config)}
	for gi := range s.Groups {
		w.forwardGroup(gi)
	}
	for gi := len(s.Groups) - 1; gi >= 0; gi-- {
		w.backwardGroup(gi)
	}
	return &Traffic{Schedule: s, Items: w.items}
}

type walker struct {
	s     *Schedule
	mode  reuseMode
	items []Item
}

func (w *walker) batch() int64 { return int64(w.s.Opts.Batch) }

// layerFits reports whether a layer's full-mini-batch working set fits in
// the buffer (the IL criterion).
func (w *walker) layerFits(l *graph.Layer) bool {
	return w.batch()*l.InterLayerBytes() <= w.s.Opts.BufferBytes
}

// blockFits reports whether a block's full-mini-batch branch-reuse working
// set fits (IL criterion for multi-branch sharing).
func (w *walker) blockFits(b *graph.Block) bool {
	return w.batch()*b.FootprintPerSample(true) <= w.s.Opts.BufferBytes
}

// chainOnChip decides whether the tensor between producer and consumer
// layers (both inside block range [first,last] of the active group when
// sameGroup) stays on chip.
func (w *walker) chainOnChip(producer, consumer *graph.Layer, sameGroup bool) bool {
	switch w.mode {
	case reuseGroup:
		return sameGroup
	case reuseFit:
		if producer == nil || consumer == nil {
			return false
		}
		return w.layerFits(producer) && w.layerFits(consumer)
	default:
		return false
	}
}

// sharedOnChip decides whether block-level shared data (the block input for
// later branches, or pending merge operands) stays on chip.
func (w *walker) sharedOnChip(b *graph.Block) bool {
	switch w.mode {
	case reuseGroup:
		return w.s.Opts.Config.BranchReuse()
	case reuseFit:
		return w.blockFits(b)
	default:
		return false
	}
}

// immediateOnChip decides whether a tensor just produced can be held for an
// immediately-following use by the same or the adjacent op (no group
// crossing involved).
func (w *walker) immediateOnChip(l *graph.Layer) bool {
	switch w.mode {
	case reuseGroup:
		return true
	case reuseFit:
		return l != nil && w.layerFits(l)
	default:
		return false
	}
}

// blockImmediateOnChip is immediateOnChip at block granularity (merge
// operands produced moments before the merge).
func (w *walker) blockImmediateOnChip(b *graph.Block) bool {
	switch w.mode {
	case reuseGroup:
		return true
	case reuseFit:
		return w.blockFits(b)
	default:
		return false
	}
}

func (w *walker) item(name string, kind graph.LayerKind, l *graph.Layer, block, group int, phase Phase) *Item {
	g := w.s.Groups[group]
	w.items = append(w.items, Item{
		Name: name, Kind: kind, Layer: l, Block: block, Group: group, Phase: phase,
		Batch: w.s.Opts.Batch, SubBatch: g.SubBatch, Iterations: g.Iterations,
	})
	return &w.items[len(w.items)-1]
}

// read charges a logical read; off-chip reads also hit DRAM.
func (it *Item) read(bytes int64, offChip bool) {
	it.GBRead += bytes
	if offChip {
		it.DRAMRead += bytes
	}
}

// write charges a logical write; off-chip writes also hit DRAM.
func (it *Item) write(bytes int64, offChip bool) {
	it.GBWrite += bytes
	if offChip {
		it.DRAMWrite += bytes
	}
}

// maskBytes is the 1-bit-per-element ReLU gradient mask size for n samples
// of shape sh.
func maskBytes(n int64, sh graph.Shape) int64 {
	return n * ((sh.Elems() + 7) / 8)
}

// consumerOf returns the layer that consumes the output of branch layer li
// within the same branch, or nil if it is the branch's last layer.
func consumerInBranch(br *graph.Branch, li int) *graph.Layer {
	if li+1 < len(br.Layers) {
		return br.Layers[li+1]
	}
	return nil
}

// firstLayerOf returns the first explicit layer of a block (first branch,
// falling back to post layers for pathological blocks).
func firstLayerOf(b *graph.Block) *graph.Layer {
	for _, br := range b.Branches {
		if len(br.Layers) > 0 {
			return br.Layers[0]
		}
	}
	if len(b.Post) > 0 {
		return b.Post[0]
	}
	return nil
}

// lastLayerOf returns the last explicit layer of a block.
func lastLayerOf(b *graph.Block) *graph.Layer {
	if len(b.Post) > 0 {
		return b.Post[len(b.Post)-1]
	}
	lb := b.Branches[len(b.Branches)-1]
	if len(lb.Layers) > 0 {
		return lb.Layers[len(lb.Layers)-1]
	}
	for i := len(b.Branches) - 2; i >= 0; i-- {
		if n := len(b.Branches[i].Layers); n > 0 {
			return b.Branches[i].Layers[n-1]
		}
	}
	return nil
}

// blockOutputConsumer returns the first layer of the next block, or nil at
// the end of the network.
func (w *walker) blockOutputConsumer(bi int) *graph.Layer {
	if bi+1 < len(w.s.Net.Blocks) {
		return firstLayerOf(w.s.Net.Blocks[bi+1])
	}
	return nil
}

// --- Forward pass -----------------------------------------------------------

func (w *walker) forwardGroup(gi int) {
	g := w.s.Groups[gi]
	for bi := g.First; bi <= g.Last; bi++ {
		w.forwardBlock(gi, bi)
	}
}

func (w *walker) forwardBlock(gi, bi int) {
	g := w.s.Groups[gi]
	b := w.s.Net.Blocks[bi]
	batch := w.batch()
	reluMask := w.s.Opts.reluMask()

	// Is the block's input resident (produced by the previous block within
	// the same reuse scope)?
	var blockInResident bool
	if bi == 0 {
		blockInResident = false // network input comes from DRAM
	} else {
		prev := lastLayerOf(w.s.Net.Blocks[bi-1])
		blockInResident = w.chainOnChip(prev, firstLayerOf(b), bi > g.First)
	}

	for brIdx, br := range b.Branches {
		// Residency of the block input for this branch: the first branch
		// sees whatever the previous block left; later branches need the
		// shared-data provision (MBS2 / IL-fit).
		branchInResident := blockInResident
		if brIdx > 0 {
			branchInResident = w.sharedOnChip(b)
		}
		prevResident := branchInResident
		for li, l := range br.Layers {
			consumer := consumerInBranch(br, li)
			isBranchLast := consumer == nil
			var outResident bool
			switch {
			case !isBranchLast:
				outResident = w.chainOnChip(l, consumer, true)
			case b.Merge == graph.MergeNone:
				// Single-branch block: the branch output is the block output.
				consumer = w.blockOutputConsumer(bi)
				outResident = w.chainOnChip(l, consumer, bi < g.Last)
			case b.Merge == graph.MergeConcat:
				// Concat branches write directly into the block output
				// tensor; the write decision is the block output's.
				consumer = w.blockOutputConsumer(bi)
				outResident = w.chainOnChip(l, consumer, bi < g.Last) ||
					(len(b.Post) > 0 && w.chainOnChip(l, b.Post[0], true))
				if len(b.Post) > 0 {
					consumer = b.Post[0]
				}
			default: // MergeAdd operand
				// The last branch's output feeds the merge immediately
				// (still resident); earlier branches' outputs must wait and
				// need the shared-data provision.
				if brIdx == len(b.Branches)-1 {
					outResident = w.blockImmediateOnChip(b)
				} else {
					outResident = w.sharedOnChip(b)
				}
				consumer = nil // merge consumes; Add needs no stash
			}
			w.forwardLayer(gi, bi, l, batch, prevResident, outResident, consumer, reluMask)
			prevResident = outResident
		}
	}

	// Implicit merge op.
	var mergeOutResident bool
	if b.Merge == graph.MergeAdd {
		it := w.item(b.Name+"_merge", graph.Add, nil, bi, gi, PhaseFwd)
		ms := b.Post
		var mergeConsumer *graph.Layer
		if len(ms) > 0 {
			mergeConsumer = ms[0]
		} else {
			mergeConsumer = w.blockOutputConsumer(bi)
		}
		mergeBytes := batch * mergeShapeOf(b).Bytes()
		// Operand 1: last branch output, produced moments earlier.
		it.read(mergeBytes, !w.blockImmediateOnChip(b))
		// Operand 2: earlier branch output — needs the shared provision.
		it.read(mergeBytes, !w.sharedOnChip(b))
		if len(b.Post) > 0 {
			mergeOutResident = w.chainOnChip(firstLayerOf(b), mergeConsumer, true) // same-block chain
		} else {
			mergeOutResident = w.chainOnChip(lastLayerOf(b), w.blockOutputConsumer(bi), bi < g.Last)
		}
		// The merge output's stash need is its consumer's.
		needStash := stashOf(mergeConsumer) == stashFull
		it.write(mergeBytes, needStash || !mergeOutResident)
	}

	// Post-merge layers.
	prevResident := mergeOutResident
	for pi, l := range b.Post {
		var consumer *graph.Layer
		var outResident bool
		if pi+1 < len(b.Post) {
			consumer = b.Post[pi+1]
			outResident = w.chainOnChip(l, consumer, true)
		} else {
			consumer = w.blockOutputConsumer(bi)
			outResident = w.chainOnChip(l, consumer, bi < g.Last)
		}
		w.forwardLayer(gi, bi, l, batch, prevResident, outResident, consumer, reluMask)
		prevResident = outResident
	}
}

func mergeShapeOf(b *graph.Block) graph.Shape {
	if len(b.Post) > 0 {
		return b.Post[0].In
	}
	return b.Out
}

// forwardLayer charges one layer's forward traffic.
func (w *walker) forwardLayer(gi, bi int, l *graph.Layer, batch int64,
	inResident, outResident bool, consumer *graph.Layer, reluMask bool) {

	g := w.s.Groups[gi]
	it := w.item(l.Name, l.Kind, l, bi, gi, PhaseFwd)
	inBytes := batch * l.In.Bytes()
	outBytes := batch * l.Out.Bytes()

	// Input reads. Normalization layers pass over their input twice; the
	// second pass hits DRAM only when the layer cannot hold its input on
	// chip for the whole mini-batch (conventional training) — under MBS the
	// sub-batch is sized to fit.
	it.read(inBytes, !inResident)
	if l.Kind == graph.Norm {
		secondOffChip := !inResident && w.mode != reuseGroup && !w.layerFits(l)
		it.read(inBytes, secondOffChip)
	}

	// Weights: re-read once per sub-batch iteration of the group.
	if p := l.ParamBytes(); p > 0 {
		it.read(p*int64(g.Iterations), true)
	}

	// Output write: stash requirement or eviction.
	needStash := stashOf(consumer) == stashFull
	if l.Kind == graph.Act && !reluMask {
		// Conventional flow: the activation output must be recoverable in
		// backward for the ReLU derivative, so it is stashed even when its
		// consumer would not otherwise require it.
		needStash = true
	}
	it.write(outBytes, needStash || !outResident)

	// MBS stashes the 1-bit ReLU gradient mask instead.
	if l.Kind == graph.Act && reluMask {
		it.write(maskBytes(batch, l.Out), true)
	}
}

// --- Backward pass ----------------------------------------------------------

func (w *walker) backwardGroup(gi int) {
	g := w.s.Groups[gi]
	for bi := g.Last; bi >= g.First; bi-- {
		w.backwardBlock(gi, bi)
	}
}

func (w *walker) backwardBlock(gi, bi int) {
	g := w.s.Groups[gi]
	b := w.s.Net.Blocks[bi]
	batch := w.batch()

	// Gradient residency of the block output (produced by the next block's
	// backward pass).
	var blockOutGradResident bool
	if bi == len(w.s.Net.Blocks)-1 {
		blockOutGradResident = false // loss gradient arrives from DRAM
	} else {
		next := firstLayerOf(w.s.Net.Blocks[bi+1])
		blockOutGradResident = w.chainOnChip(lastLayerOf(b), next, bi < g.Last)
	}

	// Post-merge layers, reversed.
	prevResident := blockOutGradResident
	for pi := len(b.Post) - 1; pi >= 0; pi-- {
		l := b.Post[pi]
		inResident := w.immediateOnChip(l) // gradient stays for the next op in this block
		if pi == 0 && b.Merge == graph.MergeNone {
			inResident = prevResident
		}
		w.backwardLayer(gi, bi, l, batch, prevResident, inResident)
		prevResident = inResident
	}

	// The merge gradient (for Add: identical tensor fanned out to every
	// branch; for Concat: sliced per branch). No compute op; reads are
	// charged at each branch's last layer below.
	mergeGradResident := prevResident

	for brIdx := len(b.Branches) - 1; brIdx >= 0; brIdx-- {
		br := b.Branches[brIdx]
		for li := len(br.Layers) - 1; li >= 0; li-- {
			l := br.Layers[li]
			var gOutResident bool
			if li == len(br.Layers)-1 {
				// Branch-last layer: its output gradient is the merge
				// gradient (Add: full tensor; Concat: this branch's slice)
				// or, in a single-branch block, the block-output gradient.
				if b.Merge == graph.MergeNone {
					gOutResident = mergeGradResident
				} else if brIdx == len(b.Branches)-1 {
					gOutResident = mergeGradResident
				} else {
					// Earlier branches consume the merge gradient later;
					// holding it needs the shared provision.
					gOutResident = w.sharedOnChip(b)
				}
			} else {
				gOutResident = w.chainOnChip(l, br.Layers[li+1], true)
			}
			// Gradient of the layer's input: consumed by the upstream
			// layer's backward within this branch/block, or crosses to the
			// previous block.
			// The network's first layer needs no data gradient at all:
			// dL/d(input image) is never used, so frameworks and the paper's
			// flow skip that GEMM entirely.
			if bi == 0 && brIdx == 0 && li == 0 && l.IsGEMM() {
				w.backwardWeightOnly(gi, bi, l, batch, gOutResident)
				continue
			}
			var gInResident bool
			switch {
			case li > 0:
				gInResident = w.chainOnChip(br.Layers[li-1], l, true)
			case bi == 0:
				gInResident = true // dL/d(input image) is discarded
			case b.IsMultiBranch():
				// Branch-first layers feed the split-point sum.
				gInResident = w.sharedOnChip(b) || (w.mode == reuseGroup && len(b.Branches) == 1)
			default:
				prev := lastLayerOf(w.s.Net.Blocks[bi-1])
				gInResident = w.chainOnChip(prev, l, bi > g.First)
			}
			w.backwardLayer(gi, bi, l, batch, gOutResident, gInResident)
		}
	}

	// Split-point gradient sum for residual blocks: dL/d(block input) is the
	// sum of the branch input-gradients. Identity shortcuts contribute the
	// merge gradient directly.
	if b.Merge == graph.MergeAdd {
		it := w.item(b.Name+"_splitsum", graph.Add, nil, bi, gi, PhaseBwd)
		inBytes := batch * b.In.Bytes()
		shared := w.sharedOnChip(b)
		// First operand (produced most recently) is resident whenever the
		// block's working set can be held; the other operand needs the
		// shared provision.
		it.read(inBytes, !w.blockImmediateOnChip(b))
		it.read(inBytes, !shared)
		// Result crosses to the previous block's backward pass.
		var outResident bool
		if bi == 0 {
			outResident = true
		} else {
			prev := lastLayerOf(w.s.Net.Blocks[bi-1])
			outResident = w.chainOnChip(prev, firstLayerOf(b), bi > g.First)
		}
		it.write(inBytes, !outResident)
	}
}

// backwardWeightOnly charges the weight-gradient GEMM of the network's
// first layer, whose data-gradient GEMM is skipped.
func (w *walker) backwardWeightOnly(gi, bi int, l *graph.Layer, batch int64, gOutResident bool) {
	g := w.s.Groups[gi]
	T := int64(g.Iterations)
	wg := w.item(l.Name, l.Kind, l, bi, gi, PhaseBwdWeight)
	wg.read(batch*l.Out.Bytes(), !gOutResident)
	wg.read(batch*l.In.Bytes(), true) // the input images
	wg.write(l.ParamBytes()*T, true)
	if T > 1 {
		wg.read(l.ParamBytes()*(T-1), true)
	}
}

// backwardLayer charges one layer's backward traffic. gOutResident says
// whether the gradient w.r.t. the layer's output is already on chip;
// gInResident whether the produced input-gradient can stay on chip.
func (w *walker) backwardLayer(gi, bi int, l *graph.Layer, batch int64, gOutResident, gInResident bool) {
	g := w.s.Groups[gi]
	T := int64(g.Iterations)
	outBytes := batch * l.Out.Bytes()
	inBytes := batch * l.In.Bytes()
	reluMask := w.s.Opts.reluMask()

	switch l.Kind {
	case graph.Conv, graph.FC:
		// Data-gradient GEMM: dL/dz = dL/dx ⊛ W.
		dg := w.item(l.Name, l.Kind, l, bi, gi, PhaseBwdData)
		dg.read(outBytes, !gOutResident)
		dg.read(l.ParamBytes()*T, true)
		dg.write(inBytes, !gInResident)

		// Weight-gradient GEMM: dL/dW = dL/dx ⊛ z, accumulated across
		// sub-batch iterations as DRAM-resident partial sums.
		wg := w.item(l.Name, l.Kind, l, bi, gi, PhaseBwdWeight)
		// Second use of the output gradient: free once it has been brought
		// on chip, a fresh DRAM read otherwise.
		wg.read(outBytes, !w.immediateOnChip(l))
		wg.read(inBytes, true) // stashed input activations
		wg.write(l.ParamBytes()*T, true)
		if T > 1 {
			wg.read(l.ParamBytes()*(T-1), true)
		}

	case graph.Norm:
		it := w.item(l.Name, l.Kind, l, bi, gi, PhaseBwd)
		it.read(outBytes, !gOutResident)
		// Stashed input: used for both parameter gradients and the data
		// gradient. With reuse it is loaded once; conventionally the two
		// passes each stream from DRAM.
		it.read(inBytes, true)
		secondOffChip := w.mode == reuseNone || (w.mode == reuseFit && !w.layerFits(l))
		it.read(inBytes, secondOffChip)
		// Parameter-gradient partial sums (tiny: 2 values per channel).
		it.write(l.ParamBytes()*T, true)
		if T > 1 {
			it.read(l.ParamBytes()*(T-1), true)
		}
		it.write(inBytes, !gInResident)

	case graph.Act:
		it := w.item(l.Name, l.Kind, l, bi, gi, PhaseBwd)
		it.read(outBytes, !gOutResident)
		if reluMask {
			it.read(maskBytes(batch, l.Out), true)
		} else {
			it.read(outBytes, true) // stashed activation for the sign
		}
		it.write(inBytes, !gInResident)

	case graph.Pool:
		it := w.item(l.Name, l.Kind, l, bi, gi, PhaseBwd)
		it.read(outBytes, !gOutResident)
		it.read(inBytes, true) // stashed input (window argmax / averaging)
		it.write(inBytes, !gInResident)

	default:
		it := w.item(l.Name, l.Kind, l, bi, gi, PhaseBwd)
		it.read(outBytes, !gOutResident)
		it.write(inBytes, !gInResident)
	}
}
