// Package core implements the paper's primary contribution: the Mini-Batch
// Serialization (MBS) scheduler. It decides, for a CNN described by the
// graph IR, how a per-processor mini-batch is partially serialized into
// sub-batches across groups of layers so that inter-layer data stays within
// the on-chip global buffer, and it provides the DRAM/global-buffer traffic
// model that both drives the grouping optimization and feeds the WaveCore
// simulator.
package core

import "fmt"

// Config enumerates the execution configurations of the paper's Tab. 3.
type Config int

const (
	// Baseline is conventional training with two-level GEMM blocking: every
	// inter-layer tensor is written to and re-read from DRAM, and the
	// systolic array has no weight double buffering.
	Baseline Config = iota
	// ArchOpt adds weight double buffering to the systolic array. Identical
	// memory behaviour to Baseline; all later configs build on ArchOpt.
	ArchOpt
	// IL adds inter-layer reuse, but only when the footprint of the entire
	// per-processor mini-batch fits in the on-chip buffer (no sub-batching).
	IL
	// MBSFS is naive MBS: the whole network is one group, fully serialized
	// with the single sub-batch size forced by the largest layer.
	MBSFS
	// MBS1 greedily forms layer groups to balance intra-layer (weight) and
	// inter-layer (feature) reuse.
	MBS1
	// MBS2 additionally reuses inter-branch data inside multi-branch
	// modules, provisioning buffer space by Eq. 1/Eq. 2.
	MBS2
)

// Configs lists all configurations in evaluation order.
var Configs = []Config{Baseline, ArchOpt, IL, MBSFS, MBS1, MBS2}

// MarshalText renders the configuration name in JSON output.
func (c Config) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a configuration name — the inverse of MarshalText,
// so values that embed a Config survive a JSON round-trip (the sharded job
// path re-reads shard results it previously marshalled).
func (c *Config) UnmarshalText(text []byte) error {
	name := string(text)
	for _, cfg := range Configs {
		if cfg.String() == name {
			*c = cfg
			return nil
		}
	}
	return fmt.Errorf("unknown config %q", name)
}

func (c Config) String() string {
	switch c {
	case Baseline:
		return "Baseline"
	case ArchOpt:
		return "ArchOpt"
	case IL:
		return "IL"
	case MBSFS:
		return "MBS-FS"
	case MBS1:
		return "MBS1"
	case MBS2:
		return "MBS2"
	default:
		return fmt.Sprintf("Config(%d)", int(c))
	}
}

// Serialized reports whether the configuration propagates sub-batches
// (any MBS variant).
func (c Config) Serialized() bool { return c == MBSFS || c == MBS1 || c == MBS2 }

// DoubleBuffered reports whether the systolic array uses weight double
// buffering (everything except Baseline).
func (c Config) DoubleBuffered() bool { return c != Baseline }

// BranchReuse reports whether multi-branch modules keep shared data on chip
// (MBS2 only).
func (c Config) BranchReuse() bool { return c == MBS2 }

// ReLUMask reports whether the 1-bit ReLU-gradient stash is used. The paper
// introduces it as part of the MBS back-propagation flow.
func (c Config) ReLUMask() bool { return c.Serialized() }

// GroupingMode selects how MBS layer groups are formed.
type GroupingMode int

const (
	// GroupGreedy is the paper's greedy merge of adjacent groups (MBS1/MBS2
	// default).
	GroupGreedy GroupingMode = iota
	// GroupOptimal finds the traffic-optimal contiguous partition by dynamic
	// programming — equivalent to the paper's exhaustive search footnote,
	// which improved on greedy by roughly 1%.
	GroupOptimal
	// GroupNone keeps the initial equal-iteration groups without merging
	// (used by ablation benches).
	GroupNone
)

func (m GroupingMode) String() string {
	switch m {
	case GroupGreedy:
		return "greedy"
	case GroupOptimal:
		return "optimal"
	case GroupNone:
		return "none"
	default:
		return fmt.Sprintf("GroupingMode(%d)", int(m))
	}
}

// Options parameterizes schedule construction.
type Options struct {
	// Config selects the execution configuration (Tab. 3).
	Config Config
	// Batch is the per-core mini-batch size (paper: 32 for deep CNNs,
	// 64 for AlexNet).
	Batch int
	// BufferBytes is the per-core global buffer capacity (paper baseline:
	// 10 MiB).
	BufferBytes int64
	// Grouping selects the group-formation algorithm for MBS1/MBS2.
	Grouping GroupingMode
	// DisableReLUMask turns off the 1-bit ReLU gradient stash (ablation).
	DisableReLUMask bool
}

// DefaultBufferBytes is the paper's baseline 10 MiB global buffer per core.
const DefaultBufferBytes int64 = 10 << 20

// DefaultOptions returns the paper's default evaluation options for a
// configuration.
func DefaultOptions(cfg Config, batch int) Options {
	return Options{
		Config:      cfg,
		Batch:       batch,
		BufferBytes: DefaultBufferBytes,
		Grouping:    GroupGreedy,
	}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.Batch <= 0 {
		return fmt.Errorf("core: batch must be positive, got %d", o.Batch)
	}
	if o.BufferBytes <= 0 {
		return fmt.Errorf("core: buffer must be positive, got %d", o.BufferBytes)
	}
	return nil
}

// reluMask resolves the effective ReLU-mask setting.
func (o Options) reluMask() bool {
	return o.Config.ReLUMask() && !o.DisableReLUMask
}
