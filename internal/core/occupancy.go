package core

import (
	"fmt"

	"repro/internal/graph"
)

// OccupancyReport is the result of replaying a schedule through the
// buffer-occupancy checker.
type OccupancyReport struct {
	// PeakBytes is the largest on-chip residency observed at any point of
	// the forward replay.
	PeakBytes int64
	// PeakAt names the op at which the peak occurred.
	PeakAt string
	// Violations lists ops whose residency exceeded the buffer.
	Violations []string
}

// OK reports whether the schedule never overflows the buffer.
func (r *OccupancyReport) OK() bool { return len(r.Violations) == 0 }

// CheckOccupancy replays a serialized schedule's forward pass with an
// explicit residency ledger and verifies the defining MBS invariant: at no
// point does the sub-batch's live on-chip data exceed the global buffer.
//
// This is an independent check of the scheduler's footprint algebra
// (graph.FootprintPerSample and the Eq. 1/Eq. 2 provisioning): the replay
// allocates and frees tensors op by op — layer inputs/outputs, the block
// input held for pending branches, and merge operands held until consumed —
// rather than trusting the closed-form max. Non-serialized configurations
// are replayed with residency only for the tensors the traffic model would
// keep on chip (none for Baseline/ArchOpt).
func CheckOccupancy(s *Schedule) *OccupancyReport {
	rep := &OccupancyReport{}
	if !s.Opts.Config.Serialized() {
		return rep // nothing is provisioned on chip across ops
	}
	branchReuse := s.Opts.Config.BranchReuse()
	for _, g := range s.Groups {
		sub := int64(g.SubBatch)
		for bi := g.First; bi <= g.Last; bi++ {
			replayBlock(rep, s.Net.Blocks[bi], sub, branchReuse, s.Opts.BufferBytes)
		}
	}
	return rep
}

// replayBlock walks one block's forward ops, tracking residency with the
// same fusion and shared-data provisioning rules the scheduler's footprint
// algebra (graph.FootprintPerSample / Eq. 1 / Eq. 2) encodes:
//
//   - norm/act layers are streaming in-place passes over their producer's
//     resident output (they belong to the producer's fused unit);
//   - under Eq. 1 (residual, branch reuse) the block input stays resident
//     through the main branch's later units, and the main branch's output
//     stays resident through the shortcut branch;
//   - under Eq. 2 (inception, branch reuse) the block input stays resident
//     for every unit after a branch's first, and the shared concat output
//     buffer is resident for every unit before a branch's last.
func replayBlock(rep *OccupancyReport, b *graph.Block, sub int64, branchReuse bool, budget int64) {
	blockIn := sub * b.In.Bytes()
	blockOut := sub * b.Out.Bytes()
	mergeBytes := sub * mergeShapeOf(b).Bytes()
	record := func(name string, resident int64) {
		if resident > rep.PeakBytes {
			rep.PeakBytes = resident
			rep.PeakAt = name
		}
		if resident > budget {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s: %d bytes > %d budget", name, resident, budget))
		}
	}

	for brIdx, br := range b.Branches {
		if len(br.Layers) == 0 {
			// Identity shortcut: the block input (its output) plus the
			// pending merge operand are resident.
			if branchReuse && b.IsMultiBranch() {
				record(b.Name+"/identity", blockIn+mergeBytes)
			}
			continue
		}
		// Unit indices: a unit starts at each non-fused layer.
		unitOf := make([]int, len(br.Layers))
		unit := -1
		for li, l := range br.Layers {
			if !(l.Kind == graph.Norm || l.Kind == graph.Act) || unit < 0 {
				unit++
			}
			unitOf[li] = unit
		}
		lastUnit := unit

		for li, l := range br.Layers {
			fused := (l.Kind == graph.Norm || l.Kind == graph.Act) && li > 0
			in := sub * l.In.Bytes()
			out := sub * l.Out.Bytes()
			resident := in + out
			if fused {
				resident = in // in-place pass over the resident tensor
			}
			if branchReuse && b.IsMultiBranch() {
				switch b.Merge {
				case graph.MergeAdd:
					// Eq. 1: main branch (b=1) holds the block input past
					// its first unit; other branches hold the pending merge
					// operand.
					if brIdx == 0 && unitOf[li] != 0 {
						resident += blockIn
					}
					if brIdx != 0 {
						resident += mergeBytes
					}
				case graph.MergeConcat:
					// Eq. 2: the block input is held past each branch's
					// first unit; the shared concat output before the last.
					if unitOf[li] != 0 {
						resident += blockIn
					}
					if unitOf[li] != lastUnit {
						resident += blockOut
					}
				}
			}
			record(fmt.Sprintf("%s/%s", b.Name, l.Name), resident)
		}
	}

	// The merge holds its operands.
	if b.Merge == graph.MergeAdd {
		record(b.Name+"/merge", 2*mergeBytes)
	}
	for _, l := range b.Post {
		// Post layers are streaming passes over the merge result.
		record(fmt.Sprintf("%s/%s", b.Name, l.Name), sub*l.In.Bytes())
	}
}
