package core
