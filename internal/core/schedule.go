package core

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Group is a contiguous run of blocks that shares one sub-batch size. The
// mini-batch is processed in Iterations sub-batch passes through the group's
// blocks; inter-layer data stays on chip within the group and is exchanged
// with DRAM only at group boundaries.
type Group struct {
	First      int // index of the first block (inclusive)
	Last       int // index of the last block (inclusive)
	SubBatch   int // samples per sub-batch iteration
	Iterations int // ceil(batch / SubBatch)
}

// Blocks returns the number of blocks in the group.
func (g Group) Blocks() int { return g.Last - g.First + 1 }

// SubBatchSizes returns the per-iteration sample counts for a mini-batch of
// batch samples, balanced across Iterations as in Fig. 5 (32 samples in 11
// iterations → 3,3,3,3,3,3,3,3,3,3,2; in 3 iterations → 11,11,10).
func (g Group) SubBatchSizes(batch int) []int {
	if g.Iterations <= 0 {
		return nil
	}
	out := make([]int, g.Iterations)
	base := batch / g.Iterations
	extra := batch % g.Iterations
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// Schedule is the result of planning a network under a configuration: the
// group structure plus everything the traffic model and simulator need.
type Schedule struct {
	Net    *graph.Network
	Opts   Options
	Groups []Group

	// groupOf maps block index to its index in Groups.
	groupOf []int
}

// Plan builds the execution schedule for a network under the given options.
func Plan(net *graph.Network, opts Options) (*Schedule, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Net: net, Opts: opts}

	switch opts.Config {
	case Baseline, ArchOpt, IL:
		// No serialization: the whole network is one nominal group processed
		// in a single full-mini-batch pass. (IL's selective reuse is decided
		// per tensor by the traffic model, not by grouping.)
		s.Groups = []Group{{First: 0, Last: len(net.Blocks) - 1, SubBatch: opts.Batch, Iterations: 1}}
	case MBSFS:
		s.Groups = planFullSerial(net, opts)
	case MBS1, MBS2:
		g, err := planGroups(net, opts)
		if err != nil {
			return nil, err
		}
		s.Groups = g
	default:
		return nil, fmt.Errorf("core: unknown config %v", opts.Config)
	}
	s.index()
	return s, nil
}

// MustPlan is Plan that panics on error.
func MustPlan(net *graph.Network, opts Options) *Schedule {
	s, err := Plan(net, opts)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Schedule) index() {
	s.groupOf = make([]int, len(s.Net.Blocks))
	for gi, g := range s.Groups {
		for b := g.First; b <= g.Last; b++ {
			s.groupOf[b] = gi
		}
	}
}

// GroupOf returns the group containing block index b.
func (s *Schedule) GroupOf(b int) Group { return s.Groups[s.groupOf[b]] }

// MaxIterations returns the largest per-group iteration count.
func (s *Schedule) MaxIterations() int {
	m := 1
	for _, g := range s.Groups {
		if g.Iterations > m {
			m = g.Iterations
		}
	}
	return m
}

// String renders the schedule in the style of Fig. 5.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s | %s | batch %d | buffer %.1f MiB\n",
		s.Net.Name, s.Opts.Config, s.Opts.Batch, float64(s.Opts.BufferBytes)/(1<<20))
	for gi, g := range s.Groups {
		names := make([]string, 0, g.Blocks())
		for i := g.First; i <= g.Last; i++ {
			names = append(names, s.Net.Blocks[i].Name)
		}
		sizes := g.SubBatchSizes(s.Opts.Batch)
		strs := make([]string, len(sizes))
		for i, v := range sizes {
			strs[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(&b, "  Group%d: %d iterations, sizes=%s  [%s]\n",
			gi+1, g.Iterations, strings.Join(strs, ","), strings.Join(names, " "))
	}
	return b.String()
}

// --- Sub-batch sizing -------------------------------------------------------

// MaxSubBatch returns the largest sub-batch whose footprint for the given
// block fits within the buffer, clamped to [1, batch]. A block whose
// per-sample footprint exceeds the buffer still reports 1 (the simulator
// charges spill traffic in that case; it does not occur for the evaluated
// networks at ≥5 MiB buffers).
func MaxSubBatch(b *graph.Block, bufferBytes int64, batch int, branchReuse bool) int {
	fp := b.FootprintPerSample(branchReuse)
	if fp <= 0 {
		return batch
	}
	n := int(bufferBytes / fp)
	if n < 1 {
		n = 1
	}
	if n > batch {
		n = batch
	}
	return n
}

// MinIterations returns the minimal sub-batch iteration count for a block —
// the red line of Fig. 4.
func MinIterations(b *graph.Block, bufferBytes int64, batch int, branchReuse bool) int {
	return ceilDiv(batch, MaxSubBatch(b, bufferBytes, batch, branchReuse))
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// planFullSerial builds the MBS-FS schedule: a single group whose sub-batch
// size is forced by the most demanding block.
func planFullSerial(net *graph.Network, opts Options) []Group {
	sub := opts.Batch
	for _, b := range net.Blocks {
		if m := MaxSubBatch(b, opts.BufferBytes, opts.Batch, opts.Config.BranchReuse()); m < sub {
			sub = m
		}
	}
	return []Group{{
		First: 0, Last: len(net.Blocks) - 1,
		SubBatch:   sub,
		Iterations: ceilDiv(opts.Batch, sub),
	}}
}
