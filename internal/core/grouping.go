package core

import (
	"fmt"

	"repro/internal/graph"
)

// planGroups forms MBS1/MBS2 layer groups: initial groups of adjacent blocks
// with equal minimal iteration counts, then merged to minimize modeled DRAM
// traffic (greedily, per the paper, or optimally by dynamic programming).
func planGroups(net *graph.Network, opts Options) ([]Group, error) {
	groups := initialGroups(net, opts)
	switch opts.Grouping {
	case GroupNone:
		return groups, nil
	case GroupGreedy:
		return greedyMerge(net, opts, groups), nil
	case GroupOptimal:
		return optimalPartition(net, opts), nil
	default:
		return nil, fmt.Errorf("core: unknown grouping mode %v", opts.Grouping)
	}
}

// groupOver builds the group covering blocks [first,last] with the largest
// sub-batch every member supports.
func groupOver(net *graph.Network, opts Options, first, last int) Group {
	sub := opts.Batch
	for bi := first; bi <= last; bi++ {
		if m := MaxSubBatch(net.Blocks[bi], opts.BufferBytes, opts.Batch, opts.Config.BranchReuse()); m < sub {
			sub = m
		}
	}
	return Group{First: first, Last: last, SubBatch: sub, Iterations: ceilDiv(opts.Batch, sub)}
}

// initialGroups groups adjacent blocks that require the same number of
// sub-batch iterations (Fig. 4's red line determines the cut points).
func initialGroups(net *graph.Network, opts Options) []Group {
	var groups []Group
	start := 0
	prevIt := MinIterations(net.Blocks[0], opts.BufferBytes, opts.Batch, opts.Config.BranchReuse())
	for bi := 1; bi < len(net.Blocks); bi++ {
		it := MinIterations(net.Blocks[bi], opts.BufferBytes, opts.Batch, opts.Config.BranchReuse())
		if it != prevIt {
			groups = append(groups, groupOver(net, opts, start, bi-1))
			start = bi
			prevIt = it
		}
	}
	groups = append(groups, groupOver(net, opts, start, len(net.Blocks)-1))
	return groups
}

// groupDRAMCost returns the modeled per-step DRAM traffic of one candidate
// group in isolation. Because residency never crosses group boundaries, the
// total traffic of a schedule is the sum of its groups' costs, which makes
// both greedy evaluation and the DP exact.
func groupDRAMCost(net *graph.Network, opts Options, g Group) int64 {
	s := &Schedule{Net: net, Opts: opts, Groups: []Group{g}}
	s.index()
	w := &walker{s: s, mode: modeFor(opts.Config)}
	w.forwardGroup(0)
	w.backwardGroup(0)
	var total int64
	for i := range w.items {
		total += w.items[i].DRAM()
	}
	return total
}

// costCache memoizes group costs keyed by extent (sub-batch is a function of
// extent).
type costCache struct {
	net  *graph.Network
	opts Options
	m    map[[2]int]int64
}

func newCostCache(net *graph.Network, opts Options) *costCache {
	return &costCache{net: net, opts: opts, m: make(map[[2]int]int64)}
}

func (c *costCache) cost(first, last int) int64 {
	key := [2]int{first, last}
	if v, ok := c.m[key]; ok {
		return v
	}
	v := groupDRAMCost(c.net, c.opts, groupOver(c.net, c.opts, first, last))
	c.m[key] = v
	return v
}

// greedyMerge repeatedly merges the adjacent group pair with the largest
// traffic reduction until no merge helps. Merging reduces the sub-batch of
// the less constrained group (more weight/gradient re-reads) in exchange for
// keeping the boundary tensor on chip (Section 3, "Layer Grouping Optimizes
// Reuse").
func greedyMerge(net *graph.Network, opts Options, groups []Group) []Group {
	cache := newCostCache(net, opts)
	for {
		bestIdx, bestDelta := -1, int64(0)
		for i := 0; i+1 < len(groups); i++ {
			a, b := groups[i], groups[i+1]
			merged := cache.cost(a.First, b.Last)
			split := cache.cost(a.First, a.Last) + cache.cost(b.First, b.Last)
			if delta := merged - split; delta < bestDelta {
				bestDelta, bestIdx = delta, i
			}
		}
		if bestIdx < 0 {
			return groups
		}
		a, b := groups[bestIdx], groups[bestIdx+1]
		merged := groupOver(net, opts, a.First, b.Last)
		groups = append(groups[:bestIdx], append([]Group{merged}, groups[bestIdx+2:]...)...)
	}
}

// optimalPartition finds the contiguous block partition with minimal modeled
// DRAM traffic by dynamic programming over prefixes. This is equivalent to
// the paper's exhaustive grouping search (footnote 1), which improved on the
// greedy optimizer by roughly 1%.
func optimalPartition(net *graph.Network, opts Options) []Group {
	n := len(net.Blocks)
	cache := newCostCache(net, opts)
	const inf = int64(1) << 62
	best := make([]int64, n+1) // best[i] = min cost of blocks [0,i)
	cut := make([]int, n+1)    // cut[i] = start of the last group in the optimum
	for i := 1; i <= n; i++ {
		best[i] = inf
		for j := 0; j < i; j++ {
			if c := best[j] + cache.cost(j, i-1); c < best[i] {
				best[i] = c
				cut[i] = j
			}
		}
	}
	var groups []Group
	for i := n; i > 0; i = cut[i] {
		groups = append([]Group{groupOver(net, opts, cut[i], i-1)}, groups...)
	}
	return groups
}
