package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/models"
)

func trafficFor(t testing.TB, name string, cfg Config) *Traffic {
	t.Helper()
	net, err := models.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	s := MustPlan(net, DefaultOptions(cfg, models.DefaultBatch(name)))
	return ComputeTraffic(s)
}

func TestTrafficNonNegative(t *testing.T) {
	for _, cfg := range Configs {
		tr := trafficFor(t, "resnet50", cfg)
		for i := range tr.Items {
			it := &tr.Items[i]
			if it.DRAMRead < 0 || it.DRAMWrite < 0 || it.GBRead < 0 || it.GBWrite < 0 {
				t.Fatalf("%v/%s: negative traffic %+v", cfg, it.Name, it)
			}
			if it.DRAMRead > it.GBRead || it.DRAMWrite > it.GBWrite {
				t.Errorf("%v/%s: DRAM traffic exceeds GB traffic (%d/%d vs %d/%d)",
					cfg, it.Name, it.DRAMRead, it.DRAMWrite, it.GBRead, it.GBWrite)
			}
		}
	}
}

func TestBaselineEqualsArchOptTraffic(t *testing.T) {
	// ArchOpt only changes the systolic array, never the memory behaviour.
	b := trafficFor(t, "resnet50", Baseline).TotalDRAM()
	a := trafficFor(t, "resnet50", ArchOpt).TotalDRAM()
	if b != a {
		t.Errorf("Baseline %d != ArchOpt %d", b, a)
	}
}

func TestConfigTrafficOrdering(t *testing.T) {
	// For the deep CNNs the paper's ordering must hold:
	// MBS2 < MBS1 < MBS-FS < IL < Baseline.
	for _, name := range []string{"resnet50", "inceptionv3", "inceptionv4"} {
		base := trafficFor(t, name, Baseline).TotalDRAM()
		il := trafficFor(t, name, IL).TotalDRAM()
		fs := trafficFor(t, name, MBSFS).TotalDRAM()
		m1 := trafficFor(t, name, MBS1).TotalDRAM()
		m2 := trafficFor(t, name, MBS2).TotalDRAM()
		if !(m2 < m1 && m1 < fs && fs < il && il < base) {
			t.Errorf("%s: ordering violated: base=%d il=%d fs=%d mbs1=%d mbs2=%d",
				name, base, il, fs, m1, m2)
		}
	}
}

func TestHeadlineTrafficReduction(t *testing.T) {
	// The abstract's headline: MBS cuts DRAM traffic by ~4x (71-78%
	// reduction) for the deep CNNs. Accept 3-5x.
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		base := float64(trafficFor(t, name, ArchOpt).TotalDRAM())
		m2 := float64(trafficFor(t, name, MBS2).TotalDRAM())
		ratio := base / m2
		if ratio < 3 || ratio > 5 {
			t.Errorf("%s: traffic reduction %.2fx, want ~4x", name, ratio)
		}
	}
}

func TestAlexNetMBSFSTrafficBlowup(t *testing.T) {
	// Fig. 10c: full serialization *increases* AlexNet traffic (paper:
	// 2.6x vs ArchOpt) because its three large FC layers re-read weights
	// and partial gradient sums every sub-batch iteration.
	arch := float64(trafficFor(t, "alexnet", ArchOpt).TotalDRAM())
	fs := float64(trafficFor(t, "alexnet", MBSFS).TotalDRAM())
	if ratio := fs / arch; ratio < 1.3 {
		t.Errorf("AlexNet MBS-FS/ArchOpt = %.2f, want > 1.3 (paper: 2.6)", ratio)
	}
	// ...while grouped MBS keeps the FC layers at full batch and wins.
	m1 := float64(trafficFor(t, "alexnet", MBS1).TotalDRAM())
	if m1 >= arch {
		t.Errorf("AlexNet MBS1 %.0f should beat ArchOpt %.0f", m1, arch)
	}
}

func TestAlexNetMBS1EqualsMBS2(t *testing.T) {
	// AlexNet has no multi-branch modules, so inter-branch reuse is a
	// no-op (the paper's Fig. 10 shows identical MBS1/MBS2 bars).
	m1 := trafficFor(t, "alexnet", MBS1).TotalDRAM()
	m2 := trafficFor(t, "alexnet", MBS2).TotalDRAM()
	if m1 != m2 {
		t.Errorf("MBS1 %d != MBS2 %d on a branch-free network", m1, m2)
	}
}

func TestBranchReuseValue(t *testing.T) {
	// Disabling the multi-branch optimization costs roughly 20% more
	// traffic on branch-heavy networks (paper Section 1 bullet 2:
	// "traffic increases by 20% without this multi-branch optimization").
	for _, name := range []string{"resnet50", "inceptionv3", "inceptionv4"} {
		m1 := float64(trafficFor(t, name, MBS1).TotalDRAM())
		m2 := float64(trafficFor(t, name, MBS2).TotalDRAM())
		incr := m1/m2 - 1
		if incr < 0.04 || incr > 0.60 {
			t.Errorf("%s: MBS1 is %.0f%% above MBS2, want roughly 10-50%%", name, incr*100)
		}
	}
}

func TestILReusesOnlyFittingLayers(t *testing.T) {
	// IL at a huge buffer approaches MBS-like savings; at a tiny buffer it
	// degenerates to Baseline.
	net, _ := models.Build("resnet50")
	tiny := Options{Config: IL, Batch: 32, BufferBytes: 1 << 10}
	huge := Options{Config: IL, Batch: 32, BufferBytes: 1 << 40}
	// Compare against Baseline at the same (tiny) buffer: the baseline
	// still exploits intra-layer locality when a layer fits, so buffer
	// sizes must match for the equivalence to hold.
	base := ComputeTraffic(MustPlan(net, Options{Config: Baseline, Batch: 32, BufferBytes: 1 << 10})).TotalDRAM()
	tinyD := ComputeTraffic(MustPlan(net, tiny)).TotalDRAM()
	hugeD := ComputeTraffic(MustPlan(net, huge)).TotalDRAM()
	if tinyD != base {
		t.Errorf("IL with 1KiB buffer %d != baseline at 1KiB %d", tinyD, base)
	}
	if hugeD >= tinyD {
		t.Errorf("IL with unbounded buffer should save traffic (%d vs %d)", hugeD, tinyD)
	}
}

func TestMBSTrafficDecreasesWithBuffer(t *testing.T) {
	// Fig. 11: MBS traffic shrinks (weakly) as the buffer grows.
	net, _ := models.Build("resnet50")
	var prev int64 = 1 << 62
	for _, mb := range []int64{5, 10, 20, 30, 40} {
		opts := DefaultOptions(MBS2, 32)
		opts.BufferBytes = mb << 20
		d := ComputeTraffic(MustPlan(net, opts)).TotalDRAM()
		if d > prev {
			t.Errorf("MBS2 traffic grew with buffer at %dMiB: %d -> %d", mb, prev, d)
		}
		prev = d
	}
}

func TestMBSLowBufferSensitivity(t *testing.T) {
	// Fig. 11's headline: MBS2 at 5 MiB still beats IL at 40 MiB.
	net, _ := models.Build("resnet50")
	mbsOpts := DefaultOptions(MBS2, 32)
	mbsOpts.BufferBytes = 5 << 20
	ilOpts := DefaultOptions(IL, 32)
	ilOpts.BufferBytes = 40 << 20
	mbs := ComputeTraffic(MustPlan(net, mbsOpts)).TotalDRAM()
	il := ComputeTraffic(MustPlan(net, ilOpts)).TotalDRAM()
	if mbs >= il {
		t.Errorf("MBS2@5MiB (%d) should beat IL@40MiB (%d)", mbs, il)
	}
}

func TestReLUMaskAblation(t *testing.T) {
	net, _ := models.Build("resnet50")
	with := DefaultOptions(MBS2, 32)
	without := with
	without.DisableReLUMask = true
	d1 := ComputeTraffic(MustPlan(net, with)).TotalDRAM()
	d2 := ComputeTraffic(MustPlan(net, without)).TotalDRAM()
	if d1 >= d2 {
		t.Errorf("1-bit ReLU mask should reduce traffic (%d vs %d)", d1, d2)
	}
}

func TestWeightTrafficScalesWithIterations(t *testing.T) {
	// A conv layer in a T-iteration group reads its weights T times in the
	// forward pass, T times for data gradients, and accumulates partial
	// sums with 2T-1 parameter-size transfers.
	net := tinyNet(t)
	opts := DefaultOptions(MBSFS, 16)
	opts.BufferBytes = 200 << 10
	s := MustPlan(net, opts)
	T := int64(s.Groups[0].Iterations)
	if T < 2 {
		t.Fatal("test needs multi-iteration schedule")
	}
	tr := ComputeTraffic(s)
	var c2 *graph.Layer
	for _, l := range net.Layers() {
		if l.Name == "c2" {
			c2 = l
		}
	}
	p := c2.ParamBytes()
	var fwdW, wgradW, wgradR int64
	for i := range tr.Items {
		it := &tr.Items[i]
		if it.Layer != c2 {
			continue
		}
		switch it.Phase {
		case PhaseFwd:
			fwdW = it.DRAMRead // includes input read too
		case PhaseBwdWeight:
			wgradW = it.DRAMWrite
			wgradR = it.DRAMRead
		}
	}
	if fwdW < p*T {
		t.Errorf("fwd reads %d < weights x T = %d", fwdW, p*T)
	}
	if wgradW != p*T {
		t.Errorf("wgrad writes = %d, want %d", wgradW, p*T)
	}
	if wgradR < p*(T-1) {
		t.Errorf("wgrad reads %d < partial sums %d", wgradR, p*(T-1))
	}
}

func TestFirstLayerHasNoDataGradient(t *testing.T) {
	tr := trafficFor(t, "resnet50", MBS2)
	for i := range tr.Items {
		it := &tr.Items[i]
		if it.Name == "conv1_conv" && it.Phase == PhaseBwdData {
			t.Error("first conv must not have a data-gradient GEMM")
		}
	}
}

func TestItemPhasesPresent(t *testing.T) {
	tr := trafficFor(t, "resnet50", Baseline)
	phases := map[Phase]int{}
	kinds := map[graph.LayerKind]int{}
	for i := range tr.Items {
		phases[tr.Items[i].Phase]++
		kinds[tr.Items[i].Kind]++
	}
	for _, p := range []Phase{PhaseFwd, PhaseBwd, PhaseBwdData, PhaseBwdWeight} {
		if phases[p] == 0 {
			t.Errorf("no items in phase %v", p)
		}
	}
	for _, k := range []graph.LayerKind{graph.Conv, graph.FC, graph.Pool, graph.Norm, graph.Act, graph.Add} {
		if kinds[k] == 0 {
			t.Errorf("no items of kind %v", k)
		}
	}
}

func TestTrafficDeterminism(t *testing.T) {
	a := trafficFor(t, "inceptionv3", MBS2)
	b := trafficFor(t, "inceptionv3", MBS2)
	if a.TotalDRAM() != b.TotalDRAM() || a.TotalGB() != b.TotalGB() {
		t.Error("traffic model not deterministic")
	}
	if len(a.Items) != len(b.Items) {
		t.Error("item counts differ between runs")
	}
}

func TestPhaseStrings(t *testing.T) {
	if PhaseFwd.String() != "fwd" || PhaseBwd.String() != "bwd" ||
		PhaseBwdData.String() != "bwd-data" || PhaseBwdWeight.String() != "bwd-weight" {
		t.Error("phase strings wrong")
	}
}

func TestDRAMByKindSumsToTotal(t *testing.T) {
	tr := trafficFor(t, "inceptionv4", MBS1)
	var sum int64
	for _, v := range tr.DRAMByKind() {
		sum += v
	}
	if sum != tr.TotalDRAM() {
		t.Errorf("by-kind sum %d != total %d", sum, tr.TotalDRAM())
	}
}
