package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// tinyNet builds a 4-block toy network whose footprints shrink with depth.
func tinyNet(t testing.TB) *graph.Network {
	t.Helper()
	in := graph.Shape{C: 8, H: 64, W: 64}
	c1 := graph.NewConvSquare("c1", in, 16, 3, 1, 1)
	a1 := graph.NewAct("a1", c1.Out)
	p1 := graph.NewPool("p1", a1.Out, graph.MaxPool, 2, 2, 0)
	c2 := graph.NewConvSquare("c2", p1.Out, 32, 3, 2, 1)
	a2 := graph.NewAct("a2", c2.Out)
	c3 := graph.NewConvSquare("c3", a2.Out, 64, 3, 2, 1)
	a3 := graph.NewAct("a3", c3.Out)
	fc := graph.NewFC("fc", a3.Out, 10)
	return graph.MustNetwork("tiny", in,
		graph.NewPlainBlock("b1", c1, a1),
		graph.NewPlainBlock("b2", p1, c2, a2),
		graph.NewPlainBlock("b3", c3, a3),
		graph.NewPlainBlock("b4", fc),
	)
}

func TestConfigProperties(t *testing.T) {
	if Baseline.DoubleBuffered() {
		t.Error("baseline must not double buffer")
	}
	for _, c := range []Config{ArchOpt, IL, MBSFS, MBS1, MBS2} {
		if !c.DoubleBuffered() {
			t.Errorf("%v should double buffer", c)
		}
	}
	for _, c := range []Config{MBSFS, MBS1, MBS2} {
		if !c.Serialized() || !c.ReLUMask() {
			t.Errorf("%v should serialize and use the ReLU mask", c)
		}
	}
	for _, c := range []Config{Baseline, ArchOpt, IL} {
		if c.Serialized() || c.BranchReuse() {
			t.Errorf("%v should not serialize or reuse branches", c)
		}
	}
	if MBS1.BranchReuse() || !MBS2.BranchReuse() {
		t.Error("only MBS2 reuses inter-branch data")
	}
}

func TestPlanNonSerializedConfigs(t *testing.T) {
	net := tinyNet(t)
	for _, cfg := range []Config{Baseline, ArchOpt, IL} {
		s := MustPlan(net, DefaultOptions(cfg, 16))
		if len(s.Groups) != 1 {
			t.Errorf("%v: groups = %d, want 1", cfg, len(s.Groups))
		}
		g := s.Groups[0]
		if g.SubBatch != 16 || g.Iterations != 1 {
			t.Errorf("%v: group = %+v, want full batch, one iteration", cfg, g)
		}
	}
}

func TestPlanMBSFSUsesSingleGroupSmallestSubBatch(t *testing.T) {
	net := tinyNet(t)
	opts := DefaultOptions(MBSFS, 16)
	opts.BufferBytes = 256 << 10 // force serialization
	s := MustPlan(net, opts)
	if len(s.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(s.Groups))
	}
	wantSub := 16
	for _, b := range net.Blocks {
		if m := MaxSubBatch(b, opts.BufferBytes, 16, false); m < wantSub {
			wantSub = m
		}
	}
	if s.Groups[0].SubBatch != wantSub {
		t.Errorf("sub-batch = %d, want %d", s.Groups[0].SubBatch, wantSub)
	}
}

func TestGroupsPartitionNetwork(t *testing.T) {
	net := tinyNet(t)
	for _, cfg := range Configs {
		for _, buf := range []int64{64 << 10, 256 << 10, 1 << 20, 10 << 20} {
			opts := DefaultOptions(cfg, 16)
			opts.BufferBytes = buf
			s := MustPlan(net, opts)
			// Groups must tile [0, len(blocks)) contiguously.
			next := 0
			for _, g := range s.Groups {
				if g.First != next {
					t.Fatalf("%v buf=%d: group starts at %d, want %d", cfg, buf, g.First, next)
				}
				if g.Last < g.First {
					t.Fatalf("%v: inverted group %+v", cfg, g)
				}
				if g.SubBatch < 1 || g.SubBatch > 16 {
					t.Fatalf("%v: sub-batch %d out of range", cfg, g.SubBatch)
				}
				if g.Iterations != ceilDiv(16, g.SubBatch) {
					t.Fatalf("%v: iterations %d != ceil(16/%d)", cfg, g.Iterations, g.SubBatch)
				}
				next = g.Last + 1
			}
			if next != len(net.Blocks) {
				t.Fatalf("%v buf=%d: groups end at %d, want %d", cfg, buf, next, len(net.Blocks))
			}
		}
	}
}

func TestGroupFootprintsFitBuffer(t *testing.T) {
	// Every MBS group's sub-batch must respect every member block's
	// footprint (the defining MBS invariant).
	net := tinyNet(t)
	for _, cfg := range []Config{MBSFS, MBS1, MBS2} {
		opts := DefaultOptions(cfg, 16)
		opts.BufferBytes = 200 << 10
		s := MustPlan(net, opts)
		for _, g := range s.Groups {
			for bi := g.First; bi <= g.Last; bi++ {
				fp := net.Blocks[bi].FootprintPerSample(cfg.BranchReuse())
				if int64(g.SubBatch)*fp > opts.BufferBytes && g.SubBatch > 1 {
					t.Errorf("%v: group %+v block %d: %d x %d exceeds buffer",
						cfg, g, bi, g.SubBatch, fp)
				}
			}
		}
	}
}

func TestSubBatchSizesBalanced(t *testing.T) {
	g := Group{SubBatch: 3, Iterations: 11}
	sizes := g.SubBatchSizes(32)
	want := []int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 2} // Fig. 5, group 1
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}

	g = Group{SubBatch: 13, Iterations: 3}
	sizes = g.SubBatchSizes(32)
	if sizes[0] != 11 || sizes[1] != 11 || sizes[2] != 10 { // Fig. 5, group 3
		t.Errorf("sizes = %v, want [11 11 10]", sizes)
	}
}

func TestSubBatchSizesProperties(t *testing.T) {
	f := func(batch, iters uint8) bool {
		b := int(batch%64) + 1
		it := int(iters%16) + 1
		if it > b {
			it = b
		}
		g := Group{SubBatch: ceilDiv(b, it), Iterations: it}
		sizes := g.SubBatchSizes(b)
		sum := 0
		for _, s := range sizes {
			if s <= 0 {
				return false
			}
			sum += s
		}
		// Sizes sum to the batch and differ by at most one (balanced).
		if sum != b || len(sizes) != it {
			return false
		}
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinIterationsMonotoneInBuffer(t *testing.T) {
	net := tinyNet(t)
	for _, b := range net.Blocks {
		prev := MinIterations(b, 32<<10, 16, true)
		for _, buf := range []int64{64 << 10, 128 << 10, 1 << 20, 10 << 20} {
			cur := MinIterations(b, buf, 16, true)
			if cur > prev {
				t.Errorf("block %s: iterations grew with buffer (%d -> %d)", b.Name, prev, cur)
			}
			prev = cur
		}
	}
}

func TestGroupOfAndMaxIterations(t *testing.T) {
	net := tinyNet(t)
	opts := DefaultOptions(MBS1, 16)
	opts.BufferBytes = 200 << 10
	s := MustPlan(net, opts)
	for bi := range net.Blocks {
		g := s.GroupOf(bi)
		if bi < g.First || bi > g.Last {
			t.Errorf("GroupOf(%d) = %+v does not contain the block", bi, g)
		}
	}
	max := 0
	for _, g := range s.Groups {
		if g.Iterations > max {
			max = g.Iterations
		}
	}
	if s.MaxIterations() != max {
		t.Errorf("MaxIterations = %d, want %d", s.MaxIterations(), max)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Batch: 0, BufferBytes: 1}).Validate(); err == nil {
		t.Error("zero batch should fail")
	}
	if err := (Options{Batch: 1, BufferBytes: 0}).Validate(); err == nil {
		t.Error("zero buffer should fail")
	}
	if err := DefaultOptions(MBS2, 32).Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func TestScheduleString(t *testing.T) {
	net := tinyNet(t)
	s := MustPlan(net, DefaultOptions(MBS1, 16))
	out := s.String()
	if out == "" {
		t.Error("empty schedule rendering")
	}
}

func TestConfigStrings(t *testing.T) {
	want := map[Config]string{
		Baseline: "Baseline", ArchOpt: "ArchOpt", IL: "IL",
		MBSFS: "MBS-FS", MBS1: "MBS1", MBS2: "MBS2",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), w)
		}
	}
}
