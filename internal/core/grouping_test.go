package core

import (
	"testing"

	"repro/internal/models"
)

func TestResNet50MBS1GroupingMatchesFig5(t *testing.T) {
	// The paper's Fig. 5 schedule for ResNet-50 at 32 samples / 10 MiB:
	// group 1 runs 11 iterations (sizes 3,...,2), later groups 6, 3 (sizes
	// 11,11,10) and 2 (sizes 16,16) iterations.
	net, _ := models.Build("resnet50")
	s := MustPlan(net, DefaultOptions(MBS1, 32))
	if len(s.Groups) != 4 {
		t.Fatalf("groups = %d, want 4:\n%s", len(s.Groups), s)
	}
	wantIters := []int{11, 6, 3, 2}
	for i, g := range s.Groups {
		if g.Iterations != wantIters[i] {
			t.Errorf("group %d iterations = %d, want %d\n%s", i+1, g.Iterations, wantIters[i], s)
		}
	}
	// Group 1 must span the stem through the first stride-2 residual block.
	if g := s.Groups[0]; net.Blocks[g.Last].Name != "res3a" {
		t.Errorf("group 1 ends at %s, want res3a", net.Blocks[g.Last].Name)
	}
	// Exact Fig. 5 sub-batch sequences.
	if sz := s.Groups[0].SubBatchSizes(32); sz[0] != 3 || sz[10] != 2 {
		t.Errorf("group 1 sizes = %v", sz)
	}
	if sz := s.Groups[2].SubBatchSizes(32); sz[0] != 11 || sz[2] != 10 {
		t.Errorf("group 3 sizes = %v", sz)
	}
	if sz := s.Groups[3].SubBatchSizes(32); sz[0] != 16 || sz[1] != 16 {
		t.Errorf("group 4 sizes = %v", sz)
	}
}

func TestGreedyMergeNeverWorseThanInitial(t *testing.T) {
	for _, name := range []string{"resnet50", "inceptionv3", "alexnet"} {
		net, _ := models.Build(name)
		batch := models.DefaultBatch(name)
		greedy := DefaultOptions(MBS1, batch)
		none := greedy
		none.Grouping = GroupNone
		dg := ComputeTraffic(MustPlan(net, greedy)).TotalDRAM()
		dn := ComputeTraffic(MustPlan(net, none)).TotalDRAM()
		if dg > dn {
			t.Errorf("%s: greedy (%d) worse than unmerged (%d)", name, dg, dn)
		}
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	// The DP partition is the paper's exhaustive search: it can only match
	// or beat greedy (the paper found ~1% improvement).
	for _, name := range []string{"resnet50", "inceptionv3", "alexnet"} {
		net, _ := models.Build(name)
		batch := models.DefaultBatch(name)
		greedy := DefaultOptions(MBS2, batch)
		opt := greedy
		opt.Grouping = GroupOptimal
		dg := ComputeTraffic(MustPlan(net, greedy)).TotalDRAM()
		do := ComputeTraffic(MustPlan(net, opt)).TotalDRAM()
		if do > dg {
			t.Errorf("%s: optimal (%d) worse than greedy (%d)", name, do, dg)
		}
		// And the gap should be small (greedy is near-optimal per the paper).
		if gap := float64(dg-do) / float64(do); gap > 0.10 {
			t.Errorf("%s: greedy is %.1f%% above optimal, want < 10%%", name, gap*100)
		}
	}
}

func TestGroupCostsAreAdditive(t *testing.T) {
	// The DP's correctness rests on group costs being independent: the
	// schedule's total traffic must equal the sum of per-group costs.
	net, _ := models.Build("resnet50")
	opts := DefaultOptions(MBS2, 32)
	s := MustPlan(net, opts)
	var sum int64
	for _, g := range s.Groups {
		sum += groupDRAMCost(net, opts, g)
	}
	if total := ComputeTraffic(s).TotalDRAM(); total != sum {
		t.Errorf("total %d != sum of group costs %d", total, sum)
	}
}

func TestInitialGroupsSplitOnIterationChanges(t *testing.T) {
	net, _ := models.Build("resnet50")
	opts := DefaultOptions(MBS1, 32)
	groups := initialGroups(net, opts)
	for _, g := range groups {
		want := MinIterations(net.Blocks[g.First], opts.BufferBytes, opts.Batch, false)
		for bi := g.First; bi <= g.Last; bi++ {
			if got := MinIterations(net.Blocks[bi], opts.BufferBytes, opts.Batch, false); got != want {
				t.Errorf("group %+v mixes iteration counts (%d vs %d)", g, got, want)
			}
		}
	}
}

func TestIterationsDecreaseWithDepthInMBSGroups(t *testing.T) {
	// Down-sampling means deeper groups can take larger sub-batches —
	// iteration counts must be non-increasing along the network (Fig. 4).
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		net, _ := models.Build(name)
		s := MustPlan(net, DefaultOptions(MBS1, 32))
		for i := 1; i < len(s.Groups); i++ {
			if s.Groups[i].Iterations > s.Groups[i-1].Iterations {
				t.Errorf("%s: group %d iterations grew (%d -> %d)",
					name, i, s.Groups[i-1].Iterations, s.Groups[i].Iterations)
			}
		}
	}
}
