package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/models"
)

// TestTrafficScalesWithBatch: feature traffic grows with the mini-batch
// while per-group weight traffic grows at most with the iteration count —
// so serialized configurations' traffic is monotone but sublinear in batch
// for weight-heavy nets and ~linear for feature-heavy ones. The invariant
// pinned here is plain monotonicity for every config.
func TestTrafficScalesWithBatch(t *testing.T) {
	net, _ := models.Build("resnet50")
	for _, cfg := range Configs {
		var prev int64
		for _, batch := range []int{8, 16, 32, 64} {
			d := ComputeTraffic(MustPlan(net, DefaultOptions(cfg, batch))).TotalDRAM()
			if d <= prev {
				t.Errorf("%v: traffic not increasing in batch (%d at batch, prev %d)", cfg, d, prev)
			}
			prev = d
		}
	}
}

// TestBaselineTrafficLinearInBatch: with no reuse and single iterations,
// the feature traffic component is exactly linear; weights are constant.
// Doubling the batch must less-than-double total traffic (weights are
// amortized) but more-than-double minus the weight bytes.
func TestBaselineTrafficLinearInBatch(t *testing.T) {
	net, _ := models.Build("resnet50")
	// A 1 KiB buffer removes the batch-dependent intra-layer reuse of norm
	// layers (which otherwise fits small batches but not large ones).
	opt32 := Options{Config: Baseline, Batch: 32, BufferBytes: 1 << 10}
	opt64 := Options{Config: Baseline, Batch: 64, BufferBytes: 1 << 10}
	d32 := ComputeTraffic(MustPlan(net, opt32)).TotalDRAM()
	d64 := ComputeTraffic(MustPlan(net, opt64)).TotalDRAM()
	// Weight traffic in the baseline: conv/FC weights move three times
	// (fwd read, data-gradient read, weight-gradient write); norm
	// parameters twice (fwd read, gradient write). All batch independent.
	var w int64
	for i, l := range net.Layers() {
		switch l.Kind {
		case graph.Conv, graph.FC:
			w += 3 * l.ParamBytes()
			if i == 0 {
				// The first conv has no data-gradient GEMM, so its weights
				// move only twice.
				w -= l.ParamBytes()
			}
		case graph.Norm:
			w += 2 * l.ParamBytes()
		}
	}
	feat32 := d32 - w
	feat64 := d64 - w
	if feat64 != 2*feat32 {
		t.Errorf("feature traffic not linear: %d vs 2x%d", feat64, feat32)
	}
}

// TestSubBatchNeverExceedsNeeded: no group uses a smaller sub-batch than
// the largest one that fits all its blocks (the scheduler must not leave
// reuse on the table within a chosen partition).
func TestSubBatchNeverExceedsNeeded(t *testing.T) {
	for _, name := range models.Names() {
		net, _ := models.Build(name)
		batch := models.DefaultBatch(name)
		for _, cfg := range []Config{MBS1, MBS2} {
			s := MustPlan(net, DefaultOptions(cfg, batch))
			for _, g := range s.Groups {
				want := groupOver(net, s.Opts, g.First, g.Last)
				if g.SubBatch != want.SubBatch {
					t.Errorf("%s/%v: group %+v sub-batch %d, max feasible %d",
						name, cfg, g, g.SubBatch, want.SubBatch)
				}
			}
		}
	}
}

// TestEq1AtLeastPerLayerFootprint: for random residual blocks, the Eq. 1
// branch-reuse footprint never undercuts the per-layer minimum and always
// covers the merge working set.
func TestEq1AtLeastPerLayerFootprint(t *testing.T) {
	f := func(cIn8, cMid8, hw8 uint8) bool {
		cIn := (int(cIn8%8) + 1) * 8
		cMid := (int(cMid8%8) + 1) * 4
		hw := int(hw8%12) + 4
		in := graph.Shape{C: cIn, H: hw, W: hw}
		c1 := graph.NewConvSquare("c1", in, cMid, 1, 1, 0)
		c2 := graph.NewConvSquare("c2", c1.Out, cIn, 3, 1, 1)
		b := graph.NewResidualBlock("b", in, []*graph.Layer{c1, c2}, nil,
			graph.NewAct("relu", c2.Out))
		reuse := b.FootprintPerSample(true)
		plain := b.FootprintPerSample(false)
		mergeSet := 2 * in.Bytes()
		return reuse >= plain && reuse >= mergeSet && plain > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPlanDeterministic: planning is a pure function of its inputs.
func TestPlanDeterministic(t *testing.T) {
	net, _ := models.Build("inceptionv3")
	a := MustPlan(net, DefaultOptions(MBS2, 32))
	b := MustPlan(net, DefaultOptions(MBS2, 32))
	if len(a.Groups) != len(b.Groups) {
		t.Fatal("group counts differ")
	}
	for i := range a.Groups {
		if a.Groups[i] != b.Groups[i] {
			t.Errorf("group %d differs: %+v vs %+v", i, a.Groups[i], b.Groups[i])
		}
	}
}

// TestBufferGrowthNeverHurtsMBS: a strictly larger buffer can only keep
// sub-batches the same or grow them, so per-group iteration counts are
// non-increasing in buffer size for a fixed partition policy.
func TestBufferGrowthNeverHurtsMBS(t *testing.T) {
	net, _ := models.Build("resnet152")
	var prevMax int
	for i, mib := range []int64{5, 8, 10, 16, 24, 40} {
		opts := DefaultOptions(MBS2, 32)
		opts.BufferBytes = mib << 20
		s := MustPlan(net, opts)
		if i > 0 && s.MaxIterations() > prevMax {
			t.Errorf("%dMiB: max iterations grew to %d (was %d)", mib, s.MaxIterations(), prevMax)
		}
		prevMax = s.MaxIterations()
	}
}

// TestOccupancyHoldsForRandomBuffers pairs the planner with the replay
// checker across a randomized buffer range — a fuzz of the MBS invariant.
func TestOccupancyHoldsForRandomBuffers(t *testing.T) {
	net, _ := models.Build("inceptionv4")
	f := func(raw uint16) bool {
		mib := int64(raw%36) + 5 // 5..40 MiB
		opts := DefaultOptions(MBS2, 32)
		opts.BufferBytes = mib << 20
		s := MustPlan(net, opts)
		return CheckOccupancy(s).OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGEMMItemsCoverAllConvFC: every conv/FC layer appears in the ledger
// with a forward and a weight-gradient entry (and a data-gradient entry
// except for the first layer).
func TestGEMMItemsCoverAllConvFC(t *testing.T) {
	net, _ := models.Build("resnet50")
	tr := ComputeTraffic(MustPlan(net, DefaultOptions(MBS2, 32)))
	fwd := map[string]bool{}
	wgrad := map[string]bool{}
	dgrad := map[string]bool{}
	for i := range tr.Items {
		it := &tr.Items[i]
		if it.Layer == nil || !it.Layer.IsGEMM() {
			continue
		}
		switch it.Phase {
		case PhaseFwd:
			fwd[it.Name] = true
		case PhaseBwdWeight:
			wgrad[it.Name] = true
		case PhaseBwdData:
			dgrad[it.Name] = true
		}
	}
	for _, l := range net.Layers() {
		if !l.IsGEMM() {
			continue
		}
		if !fwd[l.Name] {
			t.Errorf("%s missing forward entry", l.Name)
		}
		if !wgrad[l.Name] {
			t.Errorf("%s missing weight-gradient entry", l.Name)
		}
		if l.Name != "conv1_conv" && !dgrad[l.Name] {
			t.Errorf("%s missing data-gradient entry", l.Name)
		}
	}
	if dgrad["conv1_conv"] {
		t.Error("first conv must not have a data-gradient entry")
	}
}
