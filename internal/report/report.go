// Package report renders the shared output formats — aligned text tables,
// CSV series and indented JSON — so every experiment binary and the mbsd
// service print byte-identical rows for the same structured data.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON writes v as two-space-indented JSON followed by a newline. It is
// the single JSON renderer shared by `mbsim -json` and the mbsd HTTP API:
// because both call this function on the same structured value, a server
// response is byte-identical to the CLI's output by construction.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Table accumulates rows of string cells and renders them aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// RowF appends a row of pre-formatted strings.
func (t *Table) RowF(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// widths computes per-column widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	ws := t.widths()
	var head strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&head, "%-*s  ", ws[i], h)
	}
	line := strings.TrimRight(head.String(), " ")
	fmt.Fprintln(w, line)
	fmt.Fprintln(w, strings.Repeat("-", len(line)))
	for _, r := range t.rows {
		var b strings.Builder
		for i, c := range r {
			if i < len(ws) {
				fmt.Fprintf(&b, "%-*s  ", ws[i], c)
			} else {
				b.WriteString(c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// CSV writes the table as comma-separated values (quotes are not needed for
// the numeric content these tables carry).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.headers, ","))
	for _, r := range t.rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// Series is a named sequence of (x, y) points (one figure line/curve).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// RenderSeries writes one or more series as aligned columns keyed by X.
func RenderSeries(w io.Writer, xLabel string, series ...*Series) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(w, "  %14s", s.Name)
	}
	fmt.Fprintln(w)
	for i := range series[0].X {
		fmt.Fprintf(w, "%-12.4g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(w, "  %14.6g", s.Y[i])
			} else {
				fmt.Fprintf(w, "  %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Bytes renders a byte count in human units.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Ms renders seconds as milliseconds.
func Ms(sec float64) string { return fmt.Sprintf("%.2f ms", sec*1e3) }

// Pct renders a ratio as a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
