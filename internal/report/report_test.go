package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("title", "a", "bee", "c")
	tab.Row("x", 1.5, 42)
	tab.RowF("yyyy", "z", "w")
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "1.500") {
		t.Error("float formatting missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d: %q", len(lines), out)
	}
	// Columns align: "bee" and "z" start at the same offset.
	head := lines[1]
	row := lines[4]
	if strings.Index(head, "bee") != strings.Index(row, "z") {
		t.Errorf("misaligned columns:\n%s\n%s", head, row)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "x", "y")
	tab.Row(1, 2)
	var b strings.Builder
	tab.CSV(&b)
	want := "x,y\n1,2\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, map[string]any{"k": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	// Two-space indent, trailing newline: the exact bytes mbsim -json and
	// the mbsd service both emit.
	want := "{\n  \"k\": [\n    1,\n    2\n  ]\n}\n"
	if b.String() != want {
		t.Errorf("json = %q, want %q", b.String(), want)
	}
}

func TestSeries(t *testing.T) {
	s1 := &Series{Name: "a"}
	s1.Add(1, 10)
	s1.Add(2, 20)
	s2 := &Series{Name: "b"}
	s2.Add(1, 30)
	var b strings.Builder
	RenderSeries(&b, "x", s1, s2)
	out := b.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("missing series names")
	}
	if !strings.Contains(out, "-") {
		t.Error("short series should pad with -")
	}
	// Rendering no series must not panic.
	RenderSeries(&b, "x")
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestMsPct(t *testing.T) {
	if Ms(0.0155) != "15.50 ms" {
		t.Errorf("Ms = %q", Ms(0.0155))
	}
	if Pct(0.786) != "78.6%" {
		t.Errorf("Pct = %q", Pct(0.786))
	}
}
