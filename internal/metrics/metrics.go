// Package metrics is a dependency-free Prometheus-text-format metrics
// registry: counters, gauges, and fixed-bucket histograms, plus func-backed
// collectors that read the subsystems' existing atomic counters at scrape
// time instead of duplicating them. The only output it knows how to produce
// is the text exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/), rendered
// deterministically — families sorted by name, series sorted by label
// values — so scrapes are diffable in tests.
//
// Concurrency: Observe/Add/Inc/Set are lock-free (atomics); registration
// and rendering take a registry lock. Histogram bucket counts and the sum
// are updated independently, so a concurrent scrape can see a sum that is
// ahead of or behind the bucket counts by a few observations — the same
// torn-read window the real Prometheus client library allows.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families and renders them.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one metric name: HELP/TYPE plus its labeled series.
type family struct {
	name   string
	help   string
	kind   kind
	mu     sync.Mutex
	series []collector // render order fixed at registration order, sorted at render
}

type collector interface {
	labels() []labelPair
	// write emits the series' sample lines (already-escaped label block in lb).
	write(w io.Writer, name, lb string)
}

type labelPair struct{ k, v string }

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) familyFor(name, help string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.fams[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.kind, k))
	}
	return f
}

func (f *family) add(c collector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series = append(f.series, c)
}

// pairs converts a variadic "k1","v1","k2","v2",... list.
func pairs(kv []string) []labelPair {
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	lp := make([]labelPair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		lp = append(lp, labelPair{kv[i], kv[i+1]})
	}
	sort.Slice(lp, func(i, j int) bool { return lp[i].k < lp[j].k })
	return lp
}

// labelBlock renders {k="v",...} with Prometheus escaping, or "" if empty.
func labelBlock(lp []labelPair, extra ...labelPair) string {
	all := append(append([]labelPair{}, lp...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- Counter ----

// Counter is a monotonically increasing float64.
type Counter struct {
	lp  []labelPair
	val atomicFloat
}

// NewCounter registers (or extends) a counter family and returns one series.
// Labels are a flat "k","v",... list; repeated calls with the same name and
// different labels create sibling series under one HELP/TYPE header.
func (r *Registry) NewCounter(name, help string, kv ...string) *Counter {
	c := &Counter{lp: pairs(kv)}
	r.familyFor(name, help, kindCounter).add(c)
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.val.add(1) }

// Add adds v; negative v panics (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decrease")
	}
	c.val.add(v)
}

// Value reads the current total.
func (c *Counter) Value() float64 { return c.val.load() }

func (c *Counter) labels() []labelPair { return c.lp }
func (c *Counter) write(w io.Writer, name, lb string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lb, formatFloat(c.val.load()))
}

// CounterFunc registers a counter series whose value is read at scrape time
// — for subsystems that already keep their own atomic totals.
func (r *Registry) CounterFunc(name, help string, fn func() float64, kv ...string) {
	r.familyFor(name, help, kindCounter).add(&funcSeries{lp: pairs(kv), fn: fn})
}

// ---- Gauge ----

// Gauge is a float64 that can go up and down.
type Gauge struct {
	lp  []labelPair
	val atomic.Uint64 // float64 bits
}

// NewGauge registers (or extends) a gauge family and returns one series.
func (r *Registry) NewGauge(name, help string, kv ...string) *Gauge {
	g := &Gauge{lp: pairs(kv)}
	r.familyFor(name, help, kindGauge).add(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.val.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.val.Load()) }

func (g *Gauge) labels() []labelPair { return g.lp }
func (g *Gauge) write(w io.Writer, name, lb string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lb, formatFloat(g.Value()))
}

// GaugeFunc registers a gauge series read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	r.familyFor(name, help, kindGauge).add(&funcSeries{lp: pairs(kv), fn: fn})
}

type funcSeries struct {
	lp []labelPair
	fn func() float64
}

func (s *funcSeries) labels() []labelPair { return s.lp }
func (s *funcSeries) write(w io.Writer, name, lb string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lb, formatFloat(s.fn()))
}

// ---- Histogram ----

// Histogram is a fixed-bucket cumulative histogram. Buckets are the
// configured upper bounds; a +Inf bucket is implicit.
type Histogram struct {
	lp     []labelPair
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus the +Inf bucket at the end
	sum    atomicFloat
}

// NewHistogram registers (or extends) a histogram family and returns one
// series with the given upper bounds (must be sorted ascending, non-empty).
func (r *Registry) NewHistogram(name, help string, bounds []float64, kv ...string) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not strictly ascending")
		}
	}
	h := &Histogram{
		lp:     pairs(kv),
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.familyFor(name, help, kindHistogram).add(h)
	return h
}

// Observe records one sample. Lock-free: a binary search over the bounds,
// one atomic add on the chosen bucket, one CAS loop on the sum.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reads the running sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) labels() []labelPair { return h.lp }
func (h *Histogram) write(w io.Writer, name, lb string) {
	// Cumulative bucket lines: le="bound" carries the count of samples <= bound.
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		blb := labelBlock(h.lp, labelPair{"le", formatFloat(bound)})
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, blb, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	blb := labelBlock(h.lp, labelPair{"le", "+Inf"})
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, blb, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, lb, formatFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, lb, cum)
}

// atomicFloat is an add-only float64 on CAS over its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

// ---- Rendering ----

// Render renders the whole registry in Prometheus text exposition format.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make(map[string]*family, len(r.fams))
	for n, f := range r.fams {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		series := append([]collector(nil), f.series...)
		f.mu.Unlock()
		sort.SliceStable(series, func(i, j int) bool {
			return lessLabels(series[i].labels(), series[j].labels())
		})
		for _, s := range series {
			s.write(w, f.name, labelBlock(s.labels()))
		}
	}
}

func lessLabels(a, b []labelPair) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].k != b[i].k {
			return a[i].k < b[i].k
		}
		if a[i].v != b[i].v {
			return a[i].v < b[i].v
		}
	}
	return len(a) < len(b)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// Handler serves the registry as a text-format scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Render(w)
	})
}
