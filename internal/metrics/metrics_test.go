package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Requests served.", "route", "POST /v1/run", "code", "200")
	c.Add(3)
	r.NewCounter("requests_total", "Requests served.", "route", "GET /v1/stats", "code", "200").Inc()
	g := r.NewGauge("inflight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("queue_depth", "Queued requests.", func() float64 { return 7 })
	h := r.NewHistogram("latency_seconds", "Request latency.", []float64{0.1, 1}, "route", "POST /v1/run")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	got := render(r)
	want := `# HELP inflight In-flight requests.
# TYPE inflight gauge
inflight 2
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{route="POST /v1/run",le="0.1"} 1
latency_seconds_bucket{route="POST /v1/run",le="1"} 2
latency_seconds_bucket{route="POST /v1/run",le="+Inf"} 3
latency_seconds_sum{route="POST /v1/run"} 5.55
latency_seconds_count{route="POST /v1/run"} 3
# HELP queue_depth Queued requests.
# TYPE queue_depth gauge
queue_depth 7
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total{code="200",route="GET /v1/stats"} 1
requests_total{code="200",route="POST /v1/run"} 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "h", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(2)
	h.Observe(2.0001)
	got := render(r)
	for _, line := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="+Inf"} 3`,
		`h_count 3`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, got)
		}
	}
	if h.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c", "help with \n newline", "k", "a\"b\\c\nd").Inc()
	got := render(r)
	if !strings.Contains(got, `# HELP c help with \n newline`) {
		t.Fatalf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `c{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", got)
	}
}

func TestSpecialFloatValues(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("g", "g").Set(math.Inf(1))
	if got := render(r); !strings.Contains(got, "g +Inf\n") {
		t.Fatalf("want +Inf rendering:\n%s", got)
	}
}

// TestConcurrentObserveVsScrape hammers a histogram from many goroutines
// while scraping continuously, then checks exact totals once writers stop.
// Run under -race this is the "concurrent histogram observe vs scrape"
// satellite test.
func TestConcurrentObserveVsScrape(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "lat", []float64{0.001, 0.01, 0.1, 1})
	c := r.NewCounter("n", "n")

	const writers, perWriter = 8, 2000
	var writeWG, scrapeWG sync.WaitGroup
	stop := make(chan struct{})
	scrapeWG.Add(1)
	go func() { // scraper
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = render(r)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%100) / 250)
				c.Inc()
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	scrapeWG.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %v, want %d", got, writers*perWriter)
	}
	// Final render agrees exactly once quiesced.
	out := render(r)
	if !strings.Contains(out, `lat_count 16000`) || !strings.Contains(out, "n 16000") {
		t.Fatalf("final scrape totals wrong:\n%s", out)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
}

func TestMismatchedKindPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.NewGauge("m", "m")
}
