package bus

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublishUnsubscribedCountsOnly(t *testing.T) {
	b := New(Config{})
	for i := 0; i < 100; i++ {
		b.Publish(TopicSweepCell, i)
	}
	st := b.Stats()
	if st.Published != 100 {
		t.Fatalf("published = %d, want 100", st.Published)
	}
	if st.Delivered != 0 || st.Dropped != 0 {
		t.Fatalf("delivered/dropped = %d/%d, want 0/0", st.Delivered, st.Dropped)
	}
	if st.Retained != 0 {
		t.Fatalf("retained = %d, want 0 (ring records only observed events)", st.Retained)
	}
	if b.Active() {
		t.Fatal("Active() = true with no subscribers")
	}
}

func TestDeliveryAndTopicFilter(t *testing.T) {
	b := New(Config{})
	all, err := b.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := b.Subscribe(SubOptions{Topics: []string{TopicJobState}})
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(TopicJobState, JobState{ID: "j1", State: "queued"})
	b.Publish(TopicSweepCell, SweepCell{Index: 0})
	b.Publish(TopicJobState, JobState{ID: "j1", State: "running"})

	if got := len(all.C()); got != 3 {
		t.Fatalf("all-topics subscriber queued %d events, want 3", got)
	}
	if got := len(jobs.C()); got != 2 {
		t.Fatalf("job-topic subscriber queued %d events, want 2", got)
	}
	ev := <-jobs.C()
	if ev.Topic != TopicJobState {
		t.Fatalf("topic = %q, want %q", ev.Topic, TopicJobState)
	}
	if js, ok := ev.Data.(JobState); !ok || js.State != "queued" {
		t.Fatalf("data = %#v, want queued JobState", ev.Data)
	}
	all.Close()
	jobs.Close()
}

// TestSlowSubscriberDropsNeverBlocks is the core contract: a subscriber that
// never drains only ever costs itself dropped events; concurrent producers
// finish promptly and every event is accounted delivered or dropped.
func TestSlowSubscriberDropsNeverBlocks(t *testing.T) {
	const (
		producers = 8
		perProd   = 500
		buffer    = 16
	)
	b := New(Config{Ring: -1})
	stalled, err := b.Subscribe(SubOptions{Buffer: buffer})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				b.Publish(TopicSweepCell, SweepCell{Index: p*perProd + i})
			}
		}(p)
	}
	go func() { wg.Wait(); close(done) }()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producers blocked on a stalled subscriber")
	}

	st := b.Stats()
	total := producers * perProd
	if st.Published != uint64(total) {
		t.Fatalf("published = %d, want %d", st.Published, total)
	}
	if st.Delivered+st.Dropped != uint64(total) {
		t.Fatalf("delivered(%d) + dropped(%d) != published(%d)", st.Delivered, st.Dropped, total)
	}
	if st.Dropped == 0 {
		t.Fatalf("expected drops with buffer %d and %d events", buffer, total)
	}
	if stalled.Dropped() != st.Dropped {
		t.Fatalf("subscription dropped = %d, bus dropped = %d", stalled.Dropped(), st.Dropped)
	}
	if got := uint64(len(stalled.C())); got != st.Delivered {
		t.Fatalf("queued = %d, delivered = %d", got, st.Delivered)
	}
	stalled.Close()
}

func TestReplayCatchUpOrdering(t *testing.T) {
	b := New(Config{Ring: 8})
	// Retention requires an observer; keep one attached throughout.
	keeper, err := b.Subscribe(SubOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()

	for i := 0; i < 12; i++ {
		b.Publish(TopicSweepCell, i)
	}

	// A late subscriber with Replay sees exactly the ring's 8 newest events,
	// oldest first, strictly before anything live.
	late, err := b.Subscribe(SubOptions{Replay: true, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(TopicSweepCell, 12) // one live event after subscribing

	var seqs []uint64
	var vals []int
	for i := 0; i < 9; i++ {
		ev := <-late.C()
		seqs = append(seqs, ev.Seq)
		vals = append(vals, ev.Data.(int))
	}
	for i, v := range vals {
		if want := 4 + i; v != want {
			t.Fatalf("event %d payload = %d, want %d (full order %v)", i, v, want, vals)
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("non-contiguous seqs %v", seqs)
		}
	}

	// Resume-after: only events with Seq > After replay.
	resume, err := b.Subscribe(SubOptions{Replay: true, After: seqs[len(seqs)-1] - 2, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resume.C()); got != 2 {
		t.Fatalf("resume replayed %d events, want 2", got)
	}
	late.Close()
	resume.Close()
}

func TestSubscribeLimitAndCloseFreesSlot(t *testing.T) {
	b := New(Config{MaxSubscribers: 2})
	s1, err := b.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(SubOptions{}); err == nil {
		t.Fatal("third Subscribe succeeded past MaxSubscribers=2")
	}
	s1.Close()
	s1.Close() // idempotent
	s3, err := b.Subscribe(SubOptions{})
	if err != nil {
		t.Fatalf("Subscribe after Close: %v", err)
	}
	if st := b.Stats(); st.Subscribers != 2 {
		t.Fatalf("subscribers = %d, want 2", st.Subscribers)
	}
	s2.Close()
	s3.Close()
	if b.Active() {
		t.Fatal("Active() = true after all subscriptions closed")
	}
}

func TestBusCloseClosesChannels(t *testing.T) {
	b := New(Config{})
	s, err := b.Subscribe(SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(TopicJobState, JobState{ID: "x", State: "queued"})
	b.Close()
	b.Close() // idempotent
	// Queued event still receivable, then the channel reports closed.
	if _, ok := <-s.C(); !ok {
		t.Fatal("queued event lost on Close")
	}
	if _, ok := <-s.C(); ok {
		t.Fatal("channel still open after bus Close")
	}
	// Publish and Subscribe after close are safe no-ops / errors.
	b.Publish(TopicJobState, nil)
	if _, err := b.Subscribe(SubOptions{}); err != ErrClosed {
		t.Fatalf("Subscribe after Close: err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent with bus-side close
}

// TestConcurrentPublishSubscribeClose shakes the lock paths under the race
// detector: publishers, churning subscribers, and a final bus close.
func TestConcurrentPublishSubscribeClose(t *testing.T) {
	b := New(Config{Ring: 32, MaxSubscribers: 128})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Publish(TopicSweepCache, CacheEvent{Table: "plan", Kind: fmt.Sprint(p, i)})
			}
		}(p)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s, err := b.Subscribe(SubOptions{Replay: i%2 == 0, Buffer: 4})
				if err != nil {
					continue
				}
				// Drain a little, then leave.
				for j := 0; j < 3; j++ {
					select {
					case <-s.C():
					default:
					}
				}
				s.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	b.Close()
	st := b.Stats()
	if st.Delivered+st.Dropped > st.Published*128 {
		t.Fatalf("accounting ran away: %+v", st)
	}
}
