// Package bus is the in-process pub/sub event spine of the serving stack:
// every runtime behaviour worth watching — completed sweep cells, cache
// hits and evictions, job state transitions, inference batch flushes, HTTP
// requests — is published as a typed event on a named topic, and any number
// of subscribers (the SSE firehose, tests, future shippers) observe them
// live without the producers knowing or caring.
//
// The design contract, in order of importance:
//
//  1. Producers never block. Each subscriber owns a bounded queue; an event
//     that does not fit is dropped for that subscriber and counted (on the
//     subscription and on the bus), never waited for. A stalled SSE client
//     therefore costs the system nothing but its own gap.
//  2. Publish is a few nanoseconds when nobody is subscribed — two atomic
//     adds and a return. Instrumented hot paths stay hot when unobserved.
//     Call Active before building an expensive payload to skip even the
//     payload allocation.
//  3. Late subscribers can catch up. A fixed-size ring retains the most
//     recent sequenced events; Subscribe with Replay delivers the retained
//     events (optionally only those after a known sequence number, the SSE
//     Last-Event-ID contract) before any live event, in sequence order.
//
// Sequencing: every event observed by at least one subscriber (or retained
// for replay) gets a bus-wide monotonically increasing sequence number.
// Publishes on an idle bus (no subscribers) still advance the sequence, so
// a reconnecting consumer can detect a gap from the jump in ids, but they
// are not retained — the ring records only while the bus is observed.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The topic catalog. Topics are plain strings so future subsystems can add
// their own, but everything the stack publishes today is named here and
// Valid recognises only these — the SSE endpoint rejects unknown filters
// at subscribe time instead of silently streaming nothing.
const (
	// TopicSweepCell carries one SweepCell per completed grid cell.
	TopicSweepCell = "sweep.cell"
	// TopicSweepCache carries one CacheEvent per engine-cache hit, miss or
	// eviction.
	TopicSweepCache = "sweep.cache"
	// TopicJobState carries one JobState per v2 job lifecycle transition.
	TopicJobState = "job.state"
	// TopicJobLease carries one JobLease per shard-lease movement: claimed
	// by a worker, lost mid-run, expired by the supervisor, or requeued.
	TopicJobLease = "job.lease"
	// TopicInferFlush carries one InferFlush per served inference batch.
	TopicInferFlush = "infer.flush"
	// TopicHTTPRequest carries one HTTPRequest per completed API request.
	TopicHTTPRequest = "http.request"
)

// Topics returns the sorted catalog of known topics.
func Topics() []string {
	t := []string{TopicSweepCell, TopicSweepCache, TopicJobState, TopicJobLease, TopicInferFlush, TopicHTTPRequest}
	sort.Strings(t)
	return t
}

// Valid reports whether topic is in the catalog.
func Valid(topic string) bool {
	switch topic {
	case TopicSweepCell, TopicSweepCache, TopicJobState, TopicJobLease, TopicInferFlush, TopicHTTPRequest:
		return true
	}
	return false
}

// SweepCell is the payload of TopicSweepCell: one completed grid cell, with
// its flattened result row (the same shape the v2 job stream delivers).
type SweepCell struct {
	Index int    `json:"index"`
	Cell  string `json:"cell"`
	Row   any    `json:"row,omitempty"`
}

// CacheEvent is the payload of TopicSweepCache.
type CacheEvent struct {
	Table string `json:"table"` // "network" | "plan" | "traffic"
	Kind  string `json:"kind"`  // "hit" | "miss" | "eviction"
}

// JobState is the payload of TopicJobState: one lifecycle transition of a
// v2 job. Terminal transitions carry the completed-cell count and, for
// failures, the error message.
type JobState struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	State    string `json:"state"` // queued | running | done | failed | cancelled
	Cells    int    `json:"cells,omitempty"`
	Error    string `json:"error,omitempty"`
}

// JobLease is the payload of TopicJobLease: one movement of a shard lease.
// Action is "claimed" (worker started executing), "lost" (holder's
// heartbeat was rejected), "expired" (supervisor reaped a lapsed lease) or
// "requeued" (shard returned to pending for another attempt).
type JobLease struct {
	JobID   string `json:"job_id"`
	Shard   int    `json:"shard"`
	Worker  string `json:"worker,omitempty"`
	Action  string `json:"action"`
	Attempt int    `json:"attempt,omitempty"`
}

// InferFlush is the payload of TopicInferFlush: one served micro-batch.
type InferFlush struct {
	Replica int  `json:"replica"`
	Size    int  `json:"size"`
	Full    bool `json:"full"` // flushed on max-batch rather than deadline
	// QueueWaitMS is the oldest batched request's queue wait — how long the
	// batch's first member waited for peers and a replica.
	QueueWaitMS float64 `json:"queue_wait_ms"`
}

// HTTPRequest is the payload of TopicHTTPRequest: one completed request on
// the instrumented API surface.
type HTTPRequest struct {
	Method     string  `json:"method"`
	Route      string  `json:"route"` // the matched mux pattern, not the raw path
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
}

// Event is one published event as subscribers receive it (and as the SSE
// endpoint serializes it).
type Event struct {
	Seq   uint64    `json:"seq"`
	Topic string    `json:"topic"`
	Time  time.Time `json:"time"`
	Data  any       `json:"data,omitempty"`
}

// Config sizes a Bus. The zero value is ready to use with the defaults.
type Config struct {
	// Ring is the number of retained events for replay (0 = 256, negative =
	// no retention).
	Ring int
	// DefaultBuffer is the subscriber queue capacity when SubOptions.Buffer
	// is zero (0 = 64).
	DefaultBuffer int
	// MaxSubscribers bounds concurrent subscriptions; Subscribe past the
	// bound fails with ErrTooManySubscribers (0 = 64).
	MaxSubscribers int
}

func (c Config) withDefaults() Config {
	if c.Ring == 0 {
		c.Ring = 256
	}
	if c.Ring < 0 {
		c.Ring = 0
	}
	if c.DefaultBuffer <= 0 {
		c.DefaultBuffer = 64
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 64
	}
	return c
}

// ErrClosed is returned by Subscribe on a closed bus.
var ErrClosed = errors.New("bus: closed")

// ErrTooManySubscribers is returned by Subscribe at the subscriber bound.
var ErrTooManySubscribers = errors.New("bus: too many subscribers")

// Bus is the in-process event bus. The zero value is not usable; call New.
type Bus struct {
	cfg Config

	// active gates the publish fast path: zero means no subscriber exists
	// and Publish returns after two atomic adds.
	active    atomic.Int32
	seq       atomic.Uint64
	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64

	mu       sync.Mutex
	subs     map[*Subscription]struct{}
	ring     []Event // circular; next points at the oldest slot once full
	ringLen  int
	ringNext int
	closed   bool
}

// New builds a bus from cfg.
func New(cfg Config) *Bus {
	cfg = cfg.withDefaults()
	return &Bus{
		cfg:  cfg,
		subs: make(map[*Subscription]struct{}),
		ring: make([]Event, cfg.Ring),
	}
}

// Active reports whether any subscriber is attached. Publishers with
// expensive payloads may check it first and skip building the payload —
// such guarded publishes are then invisible to the Published counter, which
// counts events actually offered to the bus.
func (b *Bus) Active() bool { return b.active.Load() > 0 }

// Publish offers one event to the bus. It never blocks: subscribers whose
// queues are full drop the event (counted per subscription and bus-wide),
// and with no subscribers at all it returns after two atomic adds.
func (b *Bus) Publish(topic string, data any) {
	b.published.Add(1)
	if b.active.Load() == 0 {
		// Advance the sequence so a reconnecting subscriber can detect the
		// gap; the event itself is unobserved and unretained.
		b.seq.Add(1)
		return
	}
	b.publishSlow(topic, data)
}

func (b *Bus) publishSlow(topic string, data any) {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	ev := Event{Seq: b.seq.Add(1), Topic: topic, Time: now, Data: data}
	if len(b.ring) > 0 {
		b.ring[b.ringNext] = ev
		b.ringNext = (b.ringNext + 1) % len(b.ring)
		if b.ringLen < len(b.ring) {
			b.ringLen++
		}
	}
	for s := range b.subs {
		s.offer(ev)
	}
}

// retained appends the ring's events (oldest first) with Seq > after to dst.
// Callers hold b.mu.
func (b *Bus) retainedLocked(dst []Event, after uint64) []Event {
	start := b.ringNext - b.ringLen
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.ringLen; i++ {
		ev := b.ring[(start+i)%len(b.ring)]
		if ev.Seq > after {
			dst = append(dst, ev)
		}
	}
	return dst
}

// SubOptions configures one subscription.
type SubOptions struct {
	// Topics filters delivery; nil or empty subscribes to every topic.
	Topics []string
	// Buffer is the queue capacity (0 = the bus default). A subscriber that
	// falls more than Buffer events behind starts dropping.
	Buffer int
	// Replay delivers the retained ring events (those matching Topics, with
	// Seq > After) before any live event, in sequence order.
	Replay bool
	// After, with Replay, skips retained events at or below this sequence
	// number — the Last-Event-ID resume contract. Zero replays everything
	// retained.
	After uint64
}

// Subscription is one subscriber's bounded view of the bus.
type Subscription struct {
	bus    *Bus
	topics map[string]struct{} // nil = all topics
	ch     chan Event
	closed bool // under bus.mu; guards double-close of ch

	dropped   atomic.Uint64
	delivered atomic.Uint64
}

// Subscribe attaches a new subscriber. The returned subscription's channel
// delivers matching events until Close (the subscriber's or the bus's), at
// which point the channel is closed.
func (b *Bus) Subscribe(o SubOptions) (*Subscription, error) {
	buffer := o.Buffer
	if buffer <= 0 {
		buffer = b.cfg.DefaultBuffer
	}
	var topics map[string]struct{}
	if len(o.Topics) > 0 {
		topics = make(map[string]struct{}, len(o.Topics))
		for _, t := range o.Topics {
			topics[t] = struct{}{}
		}
	}
	s := &Subscription{bus: b, topics: topics, ch: make(chan Event, buffer)}

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if len(b.subs) >= b.cfg.MaxSubscribers {
		return nil, fmt.Errorf("%w (%d attached)", ErrTooManySubscribers, len(b.subs))
	}
	if o.Replay {
		// Replay under the bus lock: no publish can interleave, so retained
		// events land in the queue strictly before any live event and in
		// sequence order. Overflow beyond the buffer drops the newest
		// retained events (they are counted), like any other full-queue drop.
		for _, ev := range b.retainedLocked(nil, o.After) {
			s.offer(ev)
		}
	}
	b.subs[s] = struct{}{}
	b.active.Add(1)
	return s, nil
}

// offer delivers ev to s if it matches and fits; otherwise counts a drop.
// Callers hold bus.mu (publishSlow and replay), so sends never race Close.
func (s *Subscription) offer(ev Event) {
	if s.topics != nil {
		if _, ok := s.topics[ev.Topic]; !ok {
			return
		}
	}
	select {
	case s.ch <- ev:
		s.delivered.Add(1)
		s.bus.delivered.Add(1)
	default:
		s.dropped.Add(1)
		s.bus.dropped.Add(1)
	}
}

// C is the subscription's event channel. It is closed when the subscription
// or the bus closes; events already queued are still receivable after close.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped counts events this subscription lost to a full queue.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Delivered counts events this subscription received into its queue.
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Close detaches the subscription and closes its channel, freeing its
// subscriber slot. Idempotent, and safe concurrently with publishes.
func (s *Subscription) Close() {
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		b.active.Add(-1)
	}
	close(s.ch)
}

// Close shuts the bus down: every subscription's channel is closed and
// further publishes are counted but discarded. Idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.closed = true
		close(s.ch)
	}
	b.subs = map[*Subscription]struct{}{}
	b.active.Store(0)
}

// Stats is the bus's counter snapshot.
type Stats struct {
	// Published counts events offered to the bus (including unobserved ones).
	Published uint64 `json:"published"`
	// Delivered counts per-subscriber queue deliveries (one event fanned out
	// to three subscribers counts three).
	Delivered uint64 `json:"delivered"`
	// Dropped counts per-subscriber full-queue drops.
	Dropped uint64 `json:"dropped"`
	// Subscribers is the number of currently attached subscriptions.
	Subscribers int `json:"subscribers"`
	// Retained is the number of events currently in the replay ring, out of
	// RingSize slots.
	Retained int `json:"retained"`
	RingSize int `json:"ring_size"`
}

// Stats snapshots the counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	subs, retained := len(b.subs), b.ringLen
	b.mu.Unlock()
	return Stats{
		Published:   b.published.Load(),
		Delivered:   b.delivered.Load(),
		Dropped:     b.dropped.Load(),
		Subscribers: subs,
		Retained:    retained,
		RingSize:    b.cfg.Ring,
	}
}
