package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/f16"
	"repro/internal/tensor"
)

// buildFP16Pair returns two identically-seeded MLPs plus a deterministic
// batch; the caller decides which model goes fp16.
func buildFP16Pair(seed int64) (a, b *Model, x *tensor.Tensor, labels []int) {
	a = BuildMLP(rand.New(rand.NewSource(seed)), 64, []int{128, 64}, 8)
	b = BuildMLP(rand.New(rand.NewSource(seed)), 64, []int{128, 64}, 8)
	rng := rand.New(rand.NewSource(seed + 1))
	x = tensor.New(32, 64)
	x.Randn(rng, 1)
	labels = make([]int, 32)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	return a, b, x, labels
}

// TestFP16ForwardIsExactlyQuantizedFP32: the fp16 forward path must equal —
// bit for bit — the fp32 path run on weights rounded through f16. That is
// the whole numerics story of the fp16 store: quantization on the weights,
// nothing else.
func TestFP16ForwardIsExactlyQuantizedFP32(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	defer tensor.SetThreads(tensor.SetThreads(1))
	mf16, mref, x, _ := buildFP16Pair(31)

	if err := mf16.SetFP16Weights(true); err <= 0 {
		t.Fatalf("SetFP16Weights reported max rounding error %g, want > 0", err)
	}
	if !mf16.FP16Weights() {
		t.Fatal("FP16Weights() false after enabling")
	}
	// Round the reference model's linear weights through f16 in place.
	visitLayers(mref.Net, func(l Layer) {
		if lin, ok := l.(*Linear); ok {
			for i, v := range lin.Weight.Data.Data {
				lin.Weight.Data.Data[i] = f16.FromFloat64(v).Float64()
			}
		}
	})
	got := mf16.Net.Forward(x, false)
	want := mref.Net.Forward(x, false)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fp16 forward differs from quantized-fp32 forward at %d: %g vs %g",
				i, got.Data[i], want.Data[i])
		}
	}

	mf16.SetFP16Weights(false)
	if mf16.FP16Weights() {
		t.Fatal("FP16Weights() true after disabling")
	}
}

// TestFP16TrainingMatchesFP32 is the documented tolerance contract: an
// fp16-weight training run tracks the fp32 run — per-step losses within 2%
// relative, parameters within 0.05 absolute after ten steps (weights are
// O(0.1); fp16 rounds each at <= 2^-11 relative and SGD feeds the
// difference back through momentum, so drift grows slowly but never jumps).
func TestFP16TrainingMatchesFP32(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	defer tensor.SetThreads(tensor.SetThreads(1))
	mf16, m32, x, labels := buildFP16Pair(32)
	mf16.SetFP16Weights(true)

	opt16 := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
	opt32 := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
	for step := 0; step < 10; step++ {
		l16 := mf16.TrainStepFull(x, labels, opt16)
		l32 := m32.TrainStepFull(x, labels, opt32)
		if rel := math.Abs(l16-l32) / math.Max(math.Abs(l32), 1e-9); rel > 0.02 {
			t.Fatalf("step %d: fp16 loss %g vs fp32 %g (relative diff %g > 0.02)", step, l16, l32, rel)
		}
	}
	p16, p32 := mf16.Params(), m32.Params()
	for i := range p32 {
		if d := p16[i].Data.MaxAbsDiff(p32[i].Data); d > 0.05 {
			t.Errorf("%s: fp16 and fp32 parameters drifted by %g after 10 steps, want <= 0.05", p32[i].Name, d)
		}
	}

	// MBS serialization composes with the fp16 store the same way it does
	// with fp32: sub-batch gradients accumulate in fp32.
	lmbs := mf16.TrainStepMBS(x, labels, 8, opt16)
	lfull := m32.TrainStepFull(x, labels, opt32)
	if rel := math.Abs(lmbs-lfull) / math.Max(math.Abs(lfull), 1e-9); rel > 0.05 {
		t.Errorf("fp16 MBS loss %g vs fp32 full loss %g (relative diff %g > 0.05)", lmbs, lfull, rel)
	}
}

// TestFP16TrainStepAllocRegression pins the fp16 training path — forward
// through the packed weights, fp32 backward, SGD step, in-place re-pack —
// at zero steady-state allocations per step.
func TestFP16TrainStepAllocRegression(t *testing.T) {
	if tensor.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	defer tensor.SetThreads(tensor.SetThreads(1))
	m, _, x, labels := buildFP16Pair(33)
	m.SetFP16Weights(true)
	opt := &SGD{LR: 0.01, Momentum: 0.9}
	m.TrainStepFull(x, labels, opt) // warm buffers, slab pool, packs
	if n := testing.AllocsPerRun(10, func() { m.TrainStepFull(x, labels, opt) }); n != 0 {
		t.Errorf("fp16 train step allocates %v/op in steady state, want 0", n)
	}
}
