package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// inferCase builds a model, its per-sample input shape, and a random batch.
func inferCase(t *testing.T, build func(rng *rand.Rand) *Model, inShape []int, n int, seed int64) (*Model, *tensor.Tensor) {
	t.Helper()
	m := build(rand.New(rand.NewSource(seed)))
	rng := rand.New(rand.NewSource(seed + 1))
	x := tensor.New(append([]int{n}, inShape...)...)
	x.Randn(rng, 1)
	return m, x
}

// maxAbs returns the largest magnitude in a tensor.
func maxAbs(t *tensor.Tensor) float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// TestPredictorMatchesReference: the compiled fp16 inference path must stay
// within fp16-storage tolerance of the full-precision eval forward, for
// every compilable architecture: GN (fused ReLU after norm), BN (folded
// into the conv), no norm (ReLU fused into the conv epilogue), and the
// FC stack (packed fp16 weights). BN models are trained a few steps first
// so the running statistics being folded are non-trivial.
func TestPredictorMatchesReference(t *testing.T) {
	cases := []struct {
		name    string
		build   func(rng *rand.Rand) *Model
		inShape []int
		train   bool
	}{
		{"smallcnn-gn", func(rng *rand.Rand) *Model { return BuildSmallCNN(rng, 3, 16, 8, NormGroup, 8) }, []int{3, 16, 16}, false},
		{"smallcnn-bn", func(rng *rand.Rand) *Model { return BuildSmallCNN(rng, 3, 16, 8, NormBatch, 0) }, []int{3, 16, 16}, true},
		{"smallcnn-nonorm", func(rng *rand.Rand) *Model { return BuildSmallCNN(rng, 3, 16, 8, NormNone, 0) }, []int{3, 16, 16}, false},
		{"mlp", func(rng *rand.Rand) *Model { return BuildMLP(rng, 96, []int{64, 48}, 10) }, []int{96}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, x := inferCase(t, tc.build, tc.inShape, 6, 31)
			if tc.train {
				rng := rand.New(rand.NewSource(32))
				labels := make([]int, x.Shape[0])
				for i := range labels {
					labels[i] = rng.Intn(8)
				}
				opt := &SGD{LR: 0.05, Momentum: 0.9}
				for i := 0; i < 3; i++ {
					m.TrainStepFull(x, labels, opt)
				}
			}
			ref := m.Net.Forward(x, false)
			p, err := NewPredictor(m, tc.inShape, 8)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Forward(x)
			if !got.SameShape(ref) {
				t.Fatalf("predictor shape %v, reference %v", got.Shape, ref.Shape)
			}
			// fp16 stores ~11 significand bits; allow a scale-relative bound
			// that fp16 storage can meet but a real defect cannot.
			tol := 0.02 * math.Max(1, maxAbs(ref))
			if d := got.MaxAbsDiff(ref); d > tol {
				t.Errorf("fp16 inference differs from fp32 reference by %g (tol %g)", d, tol)
			}
			if p.Classes() != ref.Shape[1] {
				t.Errorf("Classes() = %d, want %d", p.Classes(), ref.Shape[1])
			}
		})
	}
}

// TestPredictorBatchInvariance: serving a sample alone or inside a
// coalesced batch must yield bit-identical logits — per-sample kernels,
// per-sample GN statistics, and deterministic packed GEMM guarantee it.
func TestPredictorBatchInvariance(t *testing.T) {
	for _, tc := range []struct {
		name    string
		build   func(rng *rand.Rand) *Model
		inShape []int
	}{
		{"smallcnn-gn", func(rng *rand.Rand) *Model { return BuildSmallCNN(rng, 3, 16, 8, NormGroup, 8) }, []int{3, 16, 16}},
		{"mlp", func(rng *rand.Rand) *Model { return BuildMLP(rng, 96, []int{64, 48}, 10) }, []int{96}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, x := inferCase(t, tc.build, tc.inShape, 8, 41)
			p, err := NewPredictor(m, tc.inShape, 8)
			if err != nil {
				t.Fatal(err)
			}
			batched := p.Forward(x).Clone()
			k := batched.Shape[1]
			for i := 0; i < 8; i++ {
				xi := tensor.SliceBatch(x, i, i+1)
				yi := p.Forward(xi)
				for j := 0; j < k; j++ {
					if yi.Data[j] != batched.Data[i*k+j] {
						t.Fatalf("sample %d class %d: solo %g vs batched %g",
							i, j, yi.Data[j], batched.Data[i*k+j])
					}
				}
			}
		})
	}
}

// TestPredictorAllocFree is the steady-state allocation contract of the
// inference fast path: once warm (tensor headers cached per batch size, the
// scratch arena primed), Forward performs no heap allocations.
func TestPredictorAllocFree(t *testing.T) {
	if tensor.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	defer tensor.SetThreads(tensor.SetThreads(1)) // goroutine fan-out allocates
	for _, tc := range []struct {
		name    string
		build   func(rng *rand.Rand) *Model
		inShape []int
	}{
		{"smallcnn-gn", func(rng *rand.Rand) *Model { return BuildSmallCNN(rng, 3, 16, 8, NormGroup, 8) }, []int{3, 16, 16}},
		{"mlp", func(rng *rand.Rand) *Model { return BuildMLP(rng, 96, []int{64, 48}, 10) }, []int{96}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, x := inferCase(t, tc.build, tc.inShape, 8, 51)
			p, err := NewPredictor(m, tc.inShape, 8)
			if err != nil {
				t.Fatal(err)
			}
			x1 := tensor.SliceBatch(x, 0, 1)
			p.Forward(x)  // warm batch-8 headers
			p.Forward(x1) // warm batch-1 headers
			allocs := testing.AllocsPerRun(10, func() {
				p.Forward(x)
				p.Forward(x1)
			})
			if allocs > 0 {
				t.Errorf("warm predictor allocates %v/op, want 0", allocs)
			}
		})
	}
}

// TestPredictorSnapshotsWeights: training the model after compilation must
// not change what the predictor serves.
func TestPredictorSnapshotsWeights(t *testing.T) {
	build := func(rng *rand.Rand) *Model { return BuildSmallCNN(rng, 3, 16, 8, NormGroup, 8) }
	m, x := inferCase(t, build, []int{3, 16, 16}, 4, 61)
	p, err := NewPredictor(m, []int{3, 16, 16}, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Forward(x).Clone()
	labels := []int{0, 1, 2, 3}
	m.TrainStepFull(x, labels, &SGD{LR: 0.1})
	after := p.Forward(x)
	if d := after.MaxAbsDiff(before); d != 0 {
		t.Errorf("predictor output moved by %g after training the source model", d)
	}
}

// TestPredictorRejectsUnsupported: compilation must fail loudly on layer
// types the inference pipeline has no op for.
func TestPredictorRejectsUnsupported(t *testing.T) {
	m := &Model{Net: &Sequential{Layers: []Layer{unsupportedLayer{}}}}
	if _, err := NewPredictor(m, []int{4}, 2); err == nil {
		t.Fatal("expected an unsupported-layer error")
	}
}

// TestPredictorRejectsBadGeometry: a shape mismatch between the declared
// input and the first layer is a compile-time error, not a serve-time panic.
func TestPredictorRejectsBadGeometry(t *testing.T) {
	m := BuildSmallCNN(rand.New(rand.NewSource(1)), 3, 16, 8, NormGroup, 8)
	if _, err := NewPredictor(m, []int{4, 16, 16}, 2); err == nil {
		t.Fatal("expected a geometry error for a 4-channel input into a 3-channel conv")
	}
	if _, err := NewPredictor(m, []int{3, 16, 16}, 0); err == nil {
		t.Fatal("expected an error for max batch 0")
	}
}

// TestPredictorMaxPool covers the pooling op (no built model uses it, but
// the compiler supports it for custom stacks).
func TestPredictorMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := &Model{Net: &Sequential{Layers: []Layer{
		NewConv2D("c1", rng, 3, 8, 3, 1, 1),
		&ReLU{},
		&MaxPool2{K: 2, Stride: 2},
		&GlobalAvgPool{},
		NewLinear("fc", rng, 8, 5),
	}}}
	x := tensor.New(3, 3, 12, 12)
	x.Randn(rng, 1)
	ref := m.Net.Forward(x, false)
	p, err := NewPredictor(m, []int{3, 12, 12}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Forward(x)
	tol := 0.02 * math.Max(1, maxAbs(ref))
	if d := got.MaxAbsDiff(ref); d > tol {
		t.Errorf("maxpool stack differs from reference by %g (tol %g)", d, tol)
	}
}

// unsupportedLayer is a Layer the predictor cannot compile.
type unsupportedLayer struct{}

func (unsupportedLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (unsupportedLayer) Backward(dy *tensor.Tensor) *tensor.Tensor           { return dy }
func (unsupportedLayer) Params() []*Param                                    { return nil }
