// Package nn is a small from-scratch CNN training engine with forward and
// backward passes, batch/group normalization, SGD with momentum, and an MBS
// trainer that serializes a mini-batch into sub-batches with gradient
// accumulation. It exists to demonstrate numerically the paper's Section 3.1
// claims: GN is compatible with MBS (sub-batch serialization computes
// exactly the full-batch gradients) while BN is not, and GN+MBS trains as
// well as BN (the Fig. 6 substitute experiment).
//
// Layers run on the tensor package's kernel engine: under the default
// tensor.EngineGEMM they use GEMM-lowered kernels and persistent per-layer
// buffers (zero steady-state allocations); under tensor.EngineNaive they
// keep the original allocate-fresh reference flow.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is one learnable parameter with its accumulated gradient and
// momentum buffer.
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
	vel  *tensor.Tensor
}

func newParam(name string, data *tensor.Tensor) *Param {
	return &Param{
		Name: name,
		Data: data,
		Grad: tensor.New(data.Shape...),
		vel:  tensor.New(data.Shape...),
	}
}

// Layer is a differentiable module. Backward consumes the gradient w.r.t.
// the layer's output and returns the gradient w.r.t. its input, adding
// parameter gradients into the Params' Grad buffers.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// reuseBuffers reports whether layers should run on the GEMM engine's
// optimized training path: persistent per-layer output/gradient buffers
// (zero steady-state allocations) and GEMM-lowered kernels. The naive
// engine keeps the original allocate-fresh-tensors flow as the reference
// oracle.
//
// Buffer lifetime argument: a layer's forward output is consumed by the
// next layer's forward and, in training, cached as that layer's input until
// its backward runs; a layer's backward dx is consumed immediately by the
// previous layer's backward. Both are dead by the time the same layer runs
// its next forward/backward, so reusing one out and one dx buffer per layer
// is safe for full-batch and MBS sub-batch flows alike. Evaluation forwards
// (train=false) write to a separate buffer set, so an Evaluate between a
// training forward and its backward cannot clobber cached activations.
func reuseBuffers() bool { return tensor.CurrentEngine() == tensor.EngineGEMM }

// outBufs is the train/eval pair of persistent forward-output buffers a
// layer reuses under the GEMM engine.
type outBufs struct {
	train, eval *tensor.Tensor
}

// sel picks the buffer slot for the given mode.
func (o *outBufs) sel(train bool) **tensor.Tensor {
	if train {
		return &o.train
	}
	return &o.eval
}

// ensureLike returns *buf if it matches ref's shape, otherwise installs a
// fresh tensor of that shape.
func ensureLike(buf **tensor.Tensor, ref *tensor.Tensor) *tensor.Tensor {
	if t := *buf; t != nil && t.SameShape(ref) {
		return t
	}
	t := tensor.New(ref.Shape...)
	*buf = t
	return t
}

// ensure2 returns *buf if it is an [a,b] tensor, otherwise reallocates.
func ensure2(buf **tensor.Tensor, a, b int) *tensor.Tensor {
	if t := *buf; t != nil && len(t.Shape) == 2 && t.Shape[0] == a && t.Shape[1] == b {
		return t
	}
	t := tensor.New(a, b)
	*buf = t
	return t
}

// ensure4 returns *buf if it is an [a,b,c,d] tensor, otherwise reallocates.
func ensure4(buf **tensor.Tensor, a, b, c, d int) *tensor.Tensor {
	if t := *buf; t != nil && len(t.Shape) == 4 &&
		t.Shape[0] == a && t.Shape[1] == b && t.Shape[2] == c && t.Shape[3] == d {
		return t
	}
	t := tensor.New(a, b, c, d)
	*buf = t
	return t
}

// --- Conv2D -----------------------------------------------------------------

// Conv2D is a 2-D convolution with bias.
type Conv2D struct {
	Spec   tensor.ConvSpec
	Weight *Param
	Bias   *Param
	x      *tensor.Tensor
	// Persistent buffers for the GEMM engine's allocation-free path.
	out outBufs
	dx  *tensor.Tensor
	// col retains the training forward's im2col packing (one [K, M] matrix
	// per sample) so Backward reuses it instead of re-lowering x: the input
	// is packed once per step, not once per pass.
	col []float64
	// prepacked marks col as already holding x's im2col panels (the MBS
	// executor's double-buffered pipeline packs them on a second goroutine):
	// the training forward consumes them instead of lowering x again.
	prepacked bool
}

// NewConv2D builds a convolution with He-normal initialization.
func NewConv2D(name string, rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	spec := tensor.ConvSpec{
		InC: inC, OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	w := tensor.New(outC, inC, k, k)
	w.Randn(rng, math.Sqrt(2.0/float64(inC*k*k)))
	return &Conv2D{
		Spec:   spec,
		Weight: newParam(name+".weight", w),
		Bias:   newParam(name+".bias", tensor.New(outC)),
	}
}

// Forward runs the convolution, caching the input (and, on the GEMM
// engine, its im2col packing) for backward.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.x = x
	}
	if reuseBuffers() {
		oh, ow := c.Spec.OutDims(x.Shape[2], x.Shape[3])
		out := ensure4(c.out.sel(train), x.Shape[0], c.Spec.OutC, oh, ow)
		if !train {
			tensor.Conv2DFusedInto(out, x, c.Weight.Data, c.Bias.Data, c.Spec, false)
			return out
		}
		if c.prepacked {
			tensor.Conv2DFromColInto(out, c.col, c.Weight.Data, c.Bias.Data, c.Spec, false)
			return out
		}
		if n := x.Shape[0] * c.Spec.InC * c.Spec.KH * c.Spec.KW * oh * ow; len(c.col) != n {
			c.col = make([]float64, n)
		}
		tensor.Conv2DFusedColInto(out, x, c.Weight.Data, c.Bias.Data, c.Spec, false, c.col)
		return out
	}
	return tensor.Conv2D(x, c.Weight.Data, c.Bias.Data, c.Spec)
}

// Backward accumulates weight/bias gradients and returns dx.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if reuseBuffers() {
		// Gradients accumulate straight into the Param buffers — no
		// intermediate dw/db tensors — and the backward GEMMs consume the
		// im2col packing the forward pass already built.
		dx := ensureLike(&c.dx, c.x)
		tensor.Conv2DBackwardColInto(dx, c.Weight.Grad, c.Bias.Grad, c.col, c.x, c.Weight.Data, dy, c.Spec)
		return dx
	}
	dx, dw, db := tensor.Conv2DBackward(c.x, c.Weight.Data, dy, c.Spec)
	c.Weight.Grad.AddInPlace(dw)
	c.Bias.Grad.AddInPlace(db)
	return dx
}

// Params returns the weight and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// --- Linear -----------------------------------------------------------------

// Linear is a fully connected layer over [N, In] inputs.
type Linear struct {
	In, Out int
	Weight  *Param // [In, Out]
	Bias    *Param // [Out]
	x       *tensor.Tensor
	out     outBufs
	dx      *tensor.Tensor
	// f16w, when non-nil, is the half-precision weight store the forward
	// matmul reads instead of Weight.Data (see fp16.go). Repacked from the
	// fp32 master after every optimizer step.
	f16w *tensor.PackedF16
}

// NewLinear builds a dense layer with He-normal initialization.
func NewLinear(name string, rng *rand.Rand, in, out int) *Linear {
	w := tensor.New(in, out)
	w.Randn(rng, math.Sqrt(2.0/float64(in)))
	return &Linear{
		In: in, Out: out,
		Weight: newParam(name+".weight", w),
		Bias:   newParam(name+".bias", tensor.New(out)),
	}
}

// Forward computes x·W + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		l.x = x
	}
	n := x.Shape[0]
	if reuseBuffers() {
		out := ensure2(l.out.sel(train), n, l.Out)
		if l.f16w != nil {
			tensor.MatMulPackedF16(n, x.Data, l.f16w, out.Data, l.Bias.Data.Data, false, nil)
			return out
		}
		tensor.LinearInto(out, x, l.Weight.Data, l.Bias.Data, false)
		return out
	}
	out := tensor.New(n, l.Out)
	for i := 0; i < n; i++ {
		for o := 0; o < l.Out; o++ {
			s := l.Bias.Data.Data[o]
			for j := 0; j < l.In; j++ {
				s += x.Data[i*l.In+j] * l.Weight.Data.Data[j*l.Out+o]
			}
			out.Data[i*l.Out+o] = s
		}
	}
	return out
}

// Backward accumulates gradients and returns dx.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Shape[0]
	if reuseBuffers() {
		dx := ensure2(&l.dx, n, l.In)
		dx.Zero()
		tensor.AddMatMulNT(dx, dy, l.Weight.Data)  // dx  = dy · W^T
		tensor.AddMatMulTN(l.Weight.Grad, l.x, dy) // dW += x^T · dy
		for i := 0; i < n; i++ {                   // db += column sums
			row := dy.Data[i*l.Out : (i+1)*l.Out]
			for o, g := range row {
				l.Bias.Grad.Data[o] += g
			}
		}
		return dx
	}
	dx := tensor.New(n, l.In)
	for i := 0; i < n; i++ {
		for o := 0; o < l.Out; o++ {
			g := dy.Data[i*l.Out+o]
			l.Bias.Grad.Data[o] += g
			for j := 0; j < l.In; j++ {
				l.Weight.Grad.Data[j*l.Out+o] += g * l.x.Data[i*l.In+j]
				dx.Data[i*l.In+j] += g * l.Weight.Data.Data[j*l.Out+o]
			}
		}
	}
	return dx
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// --- ReLU ---------------------------------------------------------------

// ReLU is the rectified linear activation. It records the sign mask — the
// 1-bit-per-element information MBS stashes instead of the activation.
type ReLU struct {
	mask []bool
	out  outBufs
	dx   *tensor.Tensor
}

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if reuseBuffers() {
		out := ensureLike(r.out.sel(train), x)
		if train {
			if len(r.mask) != len(x.Data) {
				r.mask = make([]bool, len(x.Data))
			}
			for i, v := range x.Data {
				if v > 0 {
					out.Data[i] = v
					r.mask[i] = true
				} else {
					out.Data[i] = 0
					r.mask[i] = false
				}
			}
		} else {
			for i, v := range x.Data {
				if v > 0 {
					out.Data[i] = v
				} else {
					out.Data[i] = 0
				}
			}
		}
		return out
	}
	out := x.Clone()
	if train {
		r.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			if train {
				r.mask[i] = true
			}
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward gates the gradient by the stored sign mask.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if reuseBuffers() {
		dx := ensureLike(&r.dx, dy)
		for i, g := range dy.Data {
			if r.mask[i] {
				dx.Data[i] = g
			} else {
				dx.Data[i] = 0
			}
		}
		return dx
	}
	dx := dy.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// --- MaxPool ------------------------------------------------------------

// MaxPool2 is k x k max pooling.
type MaxPool2 struct {
	K, Stride int
	arg       []int // training argmax map (consumed by Backward)
	evalArg   []int // scratch argmax map for train=false forwards
	inShape   []int
	out       outBufs
	dx        *tensor.Tensor
}

// Forward pools and records argmax positions.
func (p *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if reuseBuffers() {
		n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
		oh := (h-p.K)/p.Stride + 1
		ow := (w-p.K)/p.Stride + 1
		out := ensure4(p.out.sel(train), n, c, oh, ow)
		arg := &p.evalArg
		if train {
			arg = &p.arg
		}
		if len(*arg) != out.Len() {
			*arg = make([]int, out.Len())
		}
		tensor.MaxPool2DInto(out, *arg, x, p.K, p.Stride)
		if train {
			p.inShape = append(p.inShape[:0], x.Shape...)
		}
		return out
	}
	out, arg := tensor.MaxPool2D(x, p.K, p.Stride)
	if train {
		p.arg = arg
		p.inShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward scatters gradients to the argmax positions.
func (p *MaxPool2) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if reuseBuffers() {
		dx := ensure4(&p.dx, p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3])
		tensor.MaxPool2DBackwardInto(dx, dy, p.arg)
		return dx
	}
	return tensor.MaxPool2DBackward(dy, p.arg, p.inShape)
}

// Params returns nil.
func (p *MaxPool2) Params() []*Param { return nil }

// --- GlobalAvgPool --------------------------------------------------------

// GlobalAvgPool reduces spatial dims to 1x1 and flattens to [N, C].
type GlobalAvgPool struct {
	inShape []int
	out     outBufs
	dx      *tensor.Tensor
}

// Forward averages each channel.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if reuseBuffers() {
		if train {
			p.inShape = append(p.inShape[:0], x.Shape...)
		}
		out := ensure2(p.out.sel(train), x.Shape[0], x.Shape[1])
		tensor.GlobalAvgPoolInto(out, x)
		return out
	}
	if train {
		p.inShape = append([]int(nil), x.Shape...)
	}
	return tensor.GlobalAvgPool(x)
}

// Backward broadcasts the gradient uniformly.
func (p *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if reuseBuffers() {
		dx := ensure4(&p.dx, p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3])
		tensor.GlobalAvgPoolBackwardInto(dx, dy)
		return dx
	}
	return tensor.GlobalAvgPoolBackward(dy, p.inShape)
}

// Params returns nil.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// --- Sequential -----------------------------------------------------------

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params concatenates all layers' parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears every parameter gradient.
func ZeroGrads(m Layer) {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// validateShape panics with a readable message on rank mismatches.
func validateShape(x *tensor.Tensor, rank int, who string) {
	if len(x.Shape) != rank {
		panic(fmt.Sprintf("nn: %s expects rank-%d input, got %v", who, rank, x.Shape))
	}
}
