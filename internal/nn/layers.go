// Package nn is a small from-scratch CNN training engine with forward and
// backward passes, batch/group normalization, SGD with momentum, and an MBS
// trainer that serializes a mini-batch into sub-batches with gradient
// accumulation. It exists to demonstrate numerically the paper's Section 3.1
// claims: GN is compatible with MBS (sub-batch serialization computes
// exactly the full-batch gradients) while BN is not, and GN+MBS trains as
// well as BN (the Fig. 6 substitute experiment).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is one learnable parameter with its accumulated gradient and
// momentum buffer.
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
	vel  *tensor.Tensor
}

func newParam(name string, data *tensor.Tensor) *Param {
	return &Param{
		Name: name,
		Data: data,
		Grad: tensor.New(data.Shape...),
		vel:  tensor.New(data.Shape...),
	}
}

// Layer is a differentiable module. Backward consumes the gradient w.r.t.
// the layer's output and returns the gradient w.r.t. its input, adding
// parameter gradients into the Params' Grad buffers.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// --- Conv2D -----------------------------------------------------------------

// Conv2D is a 2-D convolution with bias.
type Conv2D struct {
	Spec   tensor.ConvSpec
	Weight *Param
	Bias   *Param
	x      *tensor.Tensor
}

// NewConv2D builds a convolution with He-normal initialization.
func NewConv2D(name string, rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	spec := tensor.ConvSpec{
		InC: inC, OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	w := tensor.New(outC, inC, k, k)
	w.Randn(rng, math.Sqrt(2.0/float64(inC*k*k)))
	return &Conv2D{
		Spec:   spec,
		Weight: newParam(name+".weight", w),
		Bias:   newParam(name+".bias", tensor.New(outC)),
	}
}

// Forward runs the convolution, caching the input for backward.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		c.x = x
	}
	return tensor.Conv2D(x, c.Weight.Data, c.Bias.Data, c.Spec)
}

// Backward accumulates weight/bias gradients and returns dx.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx, dw, db := tensor.Conv2DBackward(c.x, c.Weight.Data, dy, c.Spec)
	c.Weight.Grad.AddInPlace(dw)
	c.Bias.Grad.AddInPlace(db)
	return dx
}

// Params returns the weight and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// --- Linear -----------------------------------------------------------------

// Linear is a fully connected layer over [N, In] inputs.
type Linear struct {
	In, Out int
	Weight  *Param // [In, Out]
	Bias    *Param // [Out]
	x       *tensor.Tensor
}

// NewLinear builds a dense layer with He-normal initialization.
func NewLinear(name string, rng *rand.Rand, in, out int) *Linear {
	w := tensor.New(in, out)
	w.Randn(rng, math.Sqrt(2.0/float64(in)))
	return &Linear{
		In: in, Out: out,
		Weight: newParam(name+".weight", w),
		Bias:   newParam(name+".bias", tensor.New(out)),
	}
}

// Forward computes x·W + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		l.x = x
	}
	n := x.Shape[0]
	out := tensor.New(n, l.Out)
	for i := 0; i < n; i++ {
		for o := 0; o < l.Out; o++ {
			s := l.Bias.Data.Data[o]
			for j := 0; j < l.In; j++ {
				s += x.Data[i*l.In+j] * l.Weight.Data.Data[j*l.Out+o]
			}
			out.Data[i*l.Out+o] = s
		}
	}
	return out
}

// Backward accumulates gradients and returns dx.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Shape[0]
	dx := tensor.New(n, l.In)
	for i := 0; i < n; i++ {
		for o := 0; o < l.Out; o++ {
			g := dy.Data[i*l.Out+o]
			l.Bias.Grad.Data[o] += g
			for j := 0; j < l.In; j++ {
				l.Weight.Grad.Data[j*l.Out+o] += g * l.x.Data[i*l.In+j]
				dx.Data[i*l.In+j] += g * l.Weight.Data.Data[j*l.Out+o]
			}
		}
	}
	return dx
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// --- ReLU ---------------------------------------------------------------

// ReLU is the rectified linear activation. It records the sign mask — the
// 1-bit-per-element information MBS stashes instead of the activation.
type ReLU struct {
	mask []bool
}

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if train {
		r.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			if train {
				r.mask[i] = true
			}
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward gates the gradient by the stored sign mask.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := dy.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// --- MaxPool ------------------------------------------------------------

// MaxPool2 is k x k max pooling.
type MaxPool2 struct {
	K, Stride int
	arg       []int
	inShape   []int
}

// Forward pools and records argmax positions.
func (p *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, arg := tensor.MaxPool2D(x, p.K, p.Stride)
	if train {
		p.arg = arg
		p.inShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward scatters gradients to the argmax positions.
func (p *MaxPool2) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPool2DBackward(dy, p.arg, p.inShape)
}

// Params returns nil.
func (p *MaxPool2) Params() []*Param { return nil }

// --- GlobalAvgPool --------------------------------------------------------

// GlobalAvgPool reduces spatial dims to 1x1 and flattens to [N, C].
type GlobalAvgPool struct {
	inShape []int
}

// Forward averages each channel.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		p.inShape = append([]int(nil), x.Shape...)
	}
	return tensor.GlobalAvgPool(x)
}

// Backward broadcasts the gradient uniformly.
func (p *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return tensor.GlobalAvgPoolBackward(dy, p.inShape)
}

// Params returns nil.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// --- Sequential -----------------------------------------------------------

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params concatenates all layers' parameters.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears every parameter gradient.
func ZeroGrads(m Layer) {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// validateShape panics with a readable message on rank mismatches.
func validateShape(x *tensor.Tensor, rank int, who string) {
	if len(x.Shape) != rank {
		panic(fmt.Sprintf("nn: %s expects rank-%d input, got %v", who, rank, x.Shape))
	}
}
