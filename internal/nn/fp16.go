package nn

import "repro/internal/tensor"

// fp16-weight training (opt-in). When enabled, every Linear layer keeps its
// weights additionally as a tensor.PackedF16 — the same panel-major
// half-precision store the serving path uses — and the training forward
// matmul consumes the packed fp16 weights instead of the fp32 matrix.
// Master weights, gradients and the optimizer state stay fp32: SGD updates
// the fp32 master and the pack is refreshed (in place, allocation-free)
// after each step, so quantization error never accumulates across steps —
// each forward sees round(master), not round(round(...)).
//
// The backward pass intentionally uses the fp32 master weights for dx
// (straight-through estimation): only forward matmuls ride the fp16 store.
// Convolution weights stay fp32 — their im2col GEMM consumes the packed
// *activations*, not the weights, so PackedF16's B-operand layout does not
// apply. The fp16 path requires the GEMM engine; the naive oracle always
// runs fp32.
//
// Tolerance: fp16 has an 11-bit significand, so each weight rounds with
// relative error <= 2^-11 ~ 4.9e-4. Forward activations therefore track the
// fp32 path to ~1e-3 relative per layer, and short training runs stay
// within ~2% relative loss of fp32 (asserted by TestFP16TrainingMatchesFP32
// with the documented bounds).

// SetFP16Weights toggles the fp16-weight forward path on every Linear
// layer of the model and (when enabling) packs the current weights.
// Returns the largest absolute rounding error across all packed weights,
// 0 when disabling.
func (m *Model) SetFP16Weights(on bool) float64 {
	m.fp16 = nil
	var maxErr float64
	visitLayers(m.Net, func(l Layer) {
		lin, ok := l.(*Linear)
		if !ok {
			return
		}
		if !on {
			lin.f16w = nil
			return
		}
		if lin.f16w == nil {
			lin.f16w = &tensor.PackedF16{}
		}
		tensor.PackF16Into(lin.f16w, lin.Weight.Data)
		if lin.f16w.MaxErr > maxErr {
			maxErr = lin.f16w.MaxErr
		}
		m.fp16 = append(m.fp16, lin)
	})
	return maxErr
}

// FP16Weights reports whether the fp16 forward path is active.
func (m *Model) FP16Weights() bool { return len(m.fp16) > 0 }

// refreshFP16 re-packs every fp16 layer's weights from the fp32 master
// after an optimizer step. In-place and allocation-free in steady state.
func (m *Model) refreshFP16() {
	for _, lin := range m.fp16 {
		tensor.PackF16Into(lin.f16w, lin.Weight.Data)
	}
}

// visitLayers walks the layer tree depth-first (Sequential and Residual
// are the only containers).
func visitLayers(l Layer, f func(Layer)) {
	f(l)
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			visitLayers(c, f)
		}
	case *Residual:
		visitLayers(v.Main, f)
		if v.Shortcut != nil {
			visitLayers(v.Shortcut, f)
		}
	}
}
