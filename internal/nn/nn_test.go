package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericGradCheck verifies a layer's backward pass against central
// differences of a random linear loss over the layer's output.
func numericGradCheck(t *testing.T, name string, layer Layer, x *tensor.Tensor, rng *rand.Rand) {
	t.Helper()
	y := layer.Forward(x, true)
	r := tensor.New(y.Shape...)
	r.Randn(rng, 1)
	loss := func() float64 {
		out := layer.Forward(x, true)
		var l float64
		for i := range out.Data {
			l += out.Data[i] * r.Data[i]
		}
		return l
	}
	// Analytic gradients.
	ZeroGrads(layer)
	layer.Forward(x, true)
	dx := layer.Backward(r.Clone())

	const eps = 1e-6
	checkTensor := func(label string, data *tensor.Tensor, grad *tensor.Tensor, samples int) {
		for trial := 0; trial < samples; trial++ {
			i := rng.Intn(len(data.Data))
			orig := data.Data[i]
			data.Data[i] = orig + eps
			lp := loss()
			data.Data[i] = orig - eps
			lm := loss()
			data.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - grad.Data[i]); diff > 2e-4*(1+math.Abs(num)) {
				t.Errorf("%s/%s[%d]: numeric %g vs analytic %g", name, label, i, num, grad.Data[i])
			}
		}
	}
	checkTensor("input", x, dx, 15)
	for _, p := range layer.Params() {
		checkTensor(p.Name, p.Data, p.Grad, 10)
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	layer := NewConv2D("c", rng, 2, 3, 3, 1, 1)
	x := tensor.New(2, 2, 6, 6)
	x.Randn(rng, 1)
	numericGradCheck(t, "conv", layer, x, rng)
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	layer := NewLinear("l", rng, 6, 4)
	x := tensor.New(3, 6)
	x.Randn(rng, 1)
	numericGradCheck(t, "linear", layer, x, rng)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	layer := NewBatchNorm2D("bn", 3)
	x := tensor.New(4, 3, 3, 3)
	x.Randn(rng, 1)
	numericGradCheck(t, "bn", layer, x, rng)
}

func TestGroupNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	layer := NewGroupNorm("gn", 4, 2)
	x := tensor.New(3, 4, 3, 3)
	x.Randn(rng, 1)
	numericGradCheck(t, "gn", layer, x, rng)
}

func TestReLUForwardBackward(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromSlice([]float64{-1, 2, -3, 4}, 1, 4)
	y := r.Forward(x, true)
	if y.Data[0] != 0 || y.Data[1] != 2 || y.Data[2] != 0 || y.Data[3] != 4 {
		t.Errorf("relu fwd = %v", y.Data)
	}
	dy := tensor.FromSlice([]float64{5, 6, 7, 8}, 1, 4)
	dx := r.Backward(dy)
	if dx.Data[0] != 0 || dx.Data[1] != 6 || dx.Data[2] != 0 || dx.Data[3] != 8 {
		t.Errorf("relu bwd = %v", dx.Data)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	// Uniform logits: loss = log(K), gradient rows sum to 0.
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Errorf("loss = %f, want log4 = %f", loss, math.Log(4))
	}
	for i := 0; i < 2; i++ {
		var rowSum float64
		for j := 0; j < 4; j++ {
			rowSum += grad.Data[i*4+j]
		}
		if math.Abs(rowSum) > 1e-12 {
			t.Errorf("gradient row %d sums to %g", i, rowSum)
		}
	}
	// The true-class gradient must be negative.
	if grad.Data[0*4+1] >= 0 || grad.Data[1*4+3] >= 0 {
		t.Error("true-class gradients should be negative")
	}
}

func TestSoftmaxNumericallyStable(t *testing.T) {
	logits := tensor.FromSlice([]float64{1e4, -1e4, 0, 1e4}, 1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Errorf("unstable loss %f", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Error("NaN gradient")
		}
	}
}

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(8, 2, 4, 4)
	x.Randn(rng, 3)
	for i := range x.Data {
		x.Data[i] += 7 // large offset that normalization must remove
	}
	y := bn.Forward(x, true)
	if m := y.Mean(); math.Abs(m) > 1e-9 {
		t.Errorf("normalized mean = %g, want ~0", m)
	}
	// Evaluation mode uses running stats, which after one step still lag.
	ye := bn.Forward(x, false)
	if math.Abs(ye.Mean()) < 1e-3 {
		t.Error("eval mode should use (lagging) running statistics")
	}
}

func TestGroupNormPerSample(t *testing.T) {
	// GN statistics must not mix samples: normalizing two samples jointly
	// or separately must give identical outputs.
	rng := rand.New(rand.NewSource(6))
	gn := NewGroupNorm("gn", 4, 2)
	x := tensor.New(2, 4, 3, 3)
	x.Randn(rng, 2)
	joint := gn.Forward(x, true).Clone()
	for i := 0; i < 2; i++ {
		xi := tensor.SliceBatch(x, i, i+1)
		yi := gn.Forward(xi, true)
		for j := range yi.Data {
			if math.Abs(yi.Data[j]-joint.Data[i*yi.Len()+j]) > 1e-12 {
				t.Fatalf("sample %d differs between joint and solo normalization", i)
			}
		}
	}
}

func TestBatchNormCouplesSamples(t *testing.T) {
	// The negative control for the MBS argument: BN's output for sample 0
	// changes when sample 1 changes.
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(2, 2, 3, 3)
	x.Randn(rng, 1)
	y1 := bn.Forward(x, true).Clone()
	for i := x.Len() / 2; i < x.Len(); i++ {
		x.Data[i] += 5 // perturb only sample 1
	}
	y2 := bn.Forward(x, true)
	half := y1.Len() / 2
	var diff float64
	for i := 0; i < half; i++ {
		diff += math.Abs(y1.Data[i] - y2.Data[i])
	}
	if diff < 1e-6 {
		t.Error("BN should couple samples through batch statistics")
	}
}

func TestSGDMomentumStep(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float64{1}, 1))
	p.Grad.Data[0] = 0.5
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	opt.Step([]*Param{p})
	if math.Abs(p.Data.Data[0]-0.95) > 1e-12 {
		t.Errorf("after step: %f, want 0.95", p.Data.Data[0])
	}
	// Second step with the same gradient gains momentum.
	opt.Step([]*Param{p})
	want := 0.95 - (0.9*0.05 + 0.05)
	if math.Abs(p.Data.Data[0]-want) > 1e-12 {
		t.Errorf("after 2nd step: %f, want %f", p.Data.Data[0], want)
	}
}

func TestBuildSmallCNNShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, norm := range []NormKind{NormBatch, NormGroup, NormNone} {
		m := BuildSmallCNN(rng, 3, 16, 8, norm, 8)
		x := tensor.New(4, 3, 16, 16)
		x.Randn(rng, 1)
		y := m.Net.Forward(x, false)
		if y.Shape[0] != 4 || y.Shape[1] != 8 {
			t.Errorf("%v: output %v, want [4 8]", norm, y.Shape)
		}
		norms := m.NormLayers()
		wantNorms := 3
		if norm == NormNone {
			wantNorms = 0
		}
		if len(norms) != wantNorms {
			t.Errorf("%v: %d norm layers, want %d", norm, len(norms), wantNorms)
		}
	}
}

func TestNormKindString(t *testing.T) {
	if NormBatch.String() != "BN" || NormGroup.String() != "GN" || NormNone.String() != "none" {
		t.Error("norm kind strings wrong")
	}
}
