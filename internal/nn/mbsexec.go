package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Grouped MBS executor: runs TrainStepMBS/AccumulateGradsMBS sub-batch-
// serially *through each planned layer group* instead of through the whole
// net, so a group's weights, im2col panels and activations stay cache-hot
// across all sub-batches (the paper's Sections 3-4 executed for real).
//
// Schedule (group-level checkpointing):
//
//	forward phase:   for g = 0..G-2, for every sub-batch span: forward the
//	                 group and stash its output rows in the full-batch
//	                 boundary buffer (the paper's one deliberate DRAM trip).
//	last group:      per span, fused forward + loss + backward — no
//	                 recompute, gradients accumulate immediately.
//	backward phase:  for g = G-2..0, per span: re-forward the group from its
//	                 boundary input (recompute restores the arena's
//	                 activations bit-exactly), then backward with the
//	                 boundary gradient stashed by group g+1.
//
// Bit-identity to the layer-by-layer path: every parameter's gradient
// receives its per-span addend in the same ascending span order, each addend
// computed from bit-identical inputs (deterministic kernels + per-sample
// GroupNorm statistics), so the accumulated sums match to the last bit.
// BatchNorm models still run (they are the negative control) but their
// running statistics see each non-last group's forward twice per step.
//
// All intra-group buffers live at planned offsets of one shared float slab
// sized for the largest group; per-unit input gradients collapse into two
// ping-pong slots at the slab tail (unit-parity alternation). Install is a
// per-span loop of pointer assignments — zero steady-state allocations.
//
// Double-buffered pipelining (plan.Pipeline): when a group opens with a
// plain convolution, a persistent packer goroutine lowers sub-batch b+1's
// input into a spare im2col slab while sub-batch b computes; the conv's
// forward then consumes the prepacked panels via tensor.Conv2DFromColInto
// (bit-identical to the fused single-pass call).

type mbsSpan struct{ from, to, size int }

type packReq struct {
	col  []float64
	x    *tensor.Tensor
	spec tensor.ConvSpec
}

// mbsBundle is the install list of one (group, sub-batch size): closures
// that point every layer-owned buffer at its planned arena view.
type mbsBundle struct{ installs []func() }

func (b *mbsBundle) install() {
	for _, f := range b.installs {
		f()
	}
}

type execGroup struct {
	first, last int
	sub, rem    *mbsBundle
	outElems    int // per-sample elems of the group's output
	// pipeline state; nil conv = no pipelining for this group
	conv           *Conv2D
	colSub, colRem int
	slabs          [2][]float64
}

type mbsExec struct {
	model *Model
	plan  *MBSPlan

	fullShape   []int
	sampleElems int
	spans       []mbsSpan

	arena  []float64
	groups []execGroup

	boundary   []*tensor.Tensor   // [b]: full-batch activations at boundary b
	boundViews [][]*tensor.Tensor // [b][span]: input views for group b+1
	dBound     [2][]float64       // boundary-gradient ping-pong slabs
	dyViews    [][]*tensor.Tensor // [b][span]: gradient views at boundary b
	xViews     []*tensor.Tensor   // [span]: group-0 views (Data set per call)

	lossGradSub, lossGradRem *tensor.Tensor

	pipe     bool
	packCh   chan packReq
	packDone chan struct{}

	// per-call state the phase closures read (single-goroutine use)
	curGroup                      int
	curLabels                     []int
	curLoss                       float64
	fnForward, fnLast, fnBackward func(si int, sp mbsSpan)
}

// groupFloats sums a group's retained arena floats and its largest transient
// (ping-pong) buffer.
func groupFloats(units []unitSpec, first, last int) (retained, maxTransient int) {
	for i := first; i <= last; i++ {
		for _, b := range units[i].bufs {
			if b.retained {
				retained += b.elems
			} else if b.elems > maxTransient {
				maxTransient = b.elems
			}
		}
	}
	return retained, maxTransient
}

// buildBundle lays the group's buffers out in the shared arena — retained
// buffers at ascending walk-order offsets, transients in the two ping-pong
// slots at the tail by unit parity — and returns the install list.
func buildBundle(units []unitSpec, first, last int, arena []float64) *mbsBundle {
	retained, maxT := groupFloats(units, first, last)
	off, tbase := 0, retained
	var installs []func()
	for i := first; i <= last; i++ {
		for _, b := range units[i].bufs {
			var sl []float64
			if b.retained {
				sl = arena[off : off+b.elems]
				off += b.elems
			} else {
				lo := tbase + (i%2)*maxT
				sl = arena[lo : lo+b.elems]
			}
			if b.shape != nil {
				f, t := b.installT, tensor.FromSlice(sl, b.shape...)
				installs = append(installs, func() { f(t) })
			} else {
				f, s := b.installS, sl
				installs = append(installs, func() { f(s) })
			}
		}
		for _, a := range units[i].aux {
			switch {
			case a.installB != nil:
				f, buf := a.installB, make([]bool, a.elems)
				installs = append(installs, func() { f(buf) })
			case a.installI != nil:
				f, buf := a.installI, make([]int, a.elems)
				installs = append(installs, func() { f(buf) })
			default:
				f, buf := a.installF, make([]float64, a.elems)
				installs = append(installs, func() { f(buf) })
			}
		}
	}
	return &mbsBundle{installs: installs}
}

func newMBSExec(m *Model, p *MBSPlan) (*mbsExec, error) {
	n, sub := p.Batch, p.SubBatch
	unitsSub, err := m.mbsUnits(sub, p.Sample)
	if err != nil {
		return nil, err
	}
	if len(p.Groups) == 0 || p.Groups[0].First != 0 || p.Groups[len(p.Groups)-1].Last != len(unitsSub)-1 {
		return nil, fmt.Errorf("nn: mbs exec: plan does not cover the model's %d units", len(unitsSub))
	}
	for i := 1; i < len(p.Groups); i++ {
		if p.Groups[i].First != p.Groups[i-1].Last+1 {
			return nil, fmt.Errorf("nn: mbs exec: plan groups are not contiguous")
		}
	}
	head := unitsSub[len(unitsSub)-1].outShape
	if len(head) != 2 {
		return nil, fmt.Errorf("nn: mbs exec: model must end in a [N, classes] head, got %v", head)
	}
	rem := n % sub
	var unitsRem []unitSpec
	if rem != 0 {
		if unitsRem, err = m.mbsUnits(rem, p.Sample); err != nil {
			return nil, err
		}
	}

	e := &mbsExec{
		model:       m,
		plan:        p,
		fullShape:   append([]int{n}, p.Sample...),
		sampleElems: prodShape(p.Sample),
	}
	for from := 0; from < n; from += sub {
		to := from + sub
		if to > n {
			to = n
		}
		e.spans = append(e.spans, mbsSpan{from, to, to - from})
	}

	var arenaFloats int
	for _, g := range p.Groups {
		ret, maxT := groupFloats(unitsSub, g.First, g.Last)
		if f := ret + 2*maxT; f > arenaFloats {
			arenaFloats = f
		}
	}
	e.arena = make([]float64, arenaFloats)

	G := len(p.Groups)
	e.groups = make([]execGroup, G)
	e.boundary = make([]*tensor.Tensor, G-1)
	e.boundViews = make([][]*tensor.Tensor, G-1)
	var maxBoundElems int
	for gi := range p.Groups {
		g := p.Groups[gi]
		eg := &e.groups[gi]
		eg.first, eg.last = g.First, g.Last
		outSample := unitsSub[g.Last].outShape[1:]
		eg.outElems = prodShape(outSample)
		eg.sub = buildBundle(unitsSub, g.First, g.Last, e.arena)
		if rem != 0 {
			eg.rem = buildBundle(unitsRem, g.First, g.Last, e.arena)
		}
		if p.Pipeline {
			if c := unitsSub[g.First].conv; c != nil {
				eg.conv = c
				eg.colSub = unitsSub[g.First].colElems
				if rem != 0 {
					eg.colRem = unitsRem[g.First].colElems
				}
				eg.slabs[0] = make([]float64, eg.colSub)
				eg.slabs[1] = make([]float64, eg.colSub)
				e.pipe = true
			}
		}
		if gi < G-1 {
			bt := tensor.New(append([]int{n}, outSample...)...)
			e.boundary[gi] = bt
			if bn := n * eg.outElems; bn > maxBoundElems {
				maxBoundElems = bn
			}
			views := make([]*tensor.Tensor, len(e.spans))
			for si, sp := range e.spans {
				views[si] = tensor.FromSlice(
					bt.Data[sp.from*eg.outElems:sp.to*eg.outElems],
					append([]int{sp.size}, outSample...)...)
			}
			e.boundViews[gi] = views
		}
	}
	if G > 1 {
		e.dBound[0] = make([]float64, maxBoundElems)
		e.dBound[1] = make([]float64, maxBoundElems)
		e.dyViews = make([][]*tensor.Tensor, G-1)
		for b := 0; b < G-1; b++ {
			es := e.groups[b].outElems
			sample := unitsSub[e.groups[b].last].outShape[1:]
			views := make([]*tensor.Tensor, len(e.spans))
			for si, sp := range e.spans {
				views[si] = tensor.FromSlice(
					e.dBound[b%2][sp.from*es:sp.to*es],
					append([]int{sp.size}, sample...)...)
			}
			e.dyViews[b] = views
		}
	}
	e.xViews = make([]*tensor.Tensor, len(e.spans))
	for si, sp := range e.spans {
		e.xViews[si] = &tensor.Tensor{Shape: append([]int{sp.size}, p.Sample...)}
	}
	classes := head[1]
	e.lossGradSub = tensor.New(sub, classes)
	if rem != 0 {
		e.lossGradRem = tensor.New(rem, classes)
	}

	e.fnForward = func(si int, sp mbsSpan) {
		g := e.curGroup
		out := e.forwardGroup(g, e.inputView(g, si))
		es := e.groups[g].outElems
		copy(e.boundary[g].Data[sp.from*es:sp.to*es], out.Data)
	}
	e.fnLast = func(si int, sp mbsSpan) {
		g := e.curGroup
		logits := e.forwardGroup(g, e.inputView(g, si))
		lg := e.lossGradFor(sp.size)
		subLoss := softmaxCrossEntropyInto(lg, logits, e.curLabels[sp.from:sp.to])
		scale := float64(sp.size) / float64(e.plan.Batch)
		lg.Scale(scale)
		e.curLoss += subLoss * scale
		dx := e.backwardGroup(g, lg)
		if g > 0 {
			copy(e.dGradRows(g-1, sp), dx.Data)
		}
	}
	e.fnBackward = func(si int, sp mbsSpan) {
		g := e.curGroup
		e.forwardGroup(g, e.inputView(g, si)) // recompute intra-group state
		dx := e.backwardGroup(g, e.dyViews[g][si])
		if g > 0 {
			copy(e.dGradRows(g-1, sp), dx.Data)
		}
	}

	if e.pipe {
		e.packCh = make(chan packReq, 1)
		e.packDone = make(chan struct{}, 1)
		go func() {
			for r := range e.packCh {
				tensor.Im2ColPack(r.col, r.x, r.spec)
				e.packDone <- struct{}{}
			}
		}()
	}
	return e, nil
}

// matches reports whether this executor covers the given call exactly; any
// mismatch falls back to the legacy layer-by-layer path.
func (e *mbsExec) matches(x *tensor.Tensor, subBatch int) bool {
	return e != nil && reuseBuffers() && subBatch == e.plan.SubBatch && shapeEq(x.Shape, e.fullShape)
}

func (e *mbsExec) inputView(g, si int) *tensor.Tensor {
	if g == 0 {
		return e.xViews[si]
	}
	return e.boundViews[g-1][si]
}

func (e *mbsExec) lossGradFor(size int) *tensor.Tensor {
	if size == e.plan.SubBatch {
		return e.lossGradSub
	}
	return e.lossGradRem
}

// dGradRows is the span's slice of boundary b's gradient slab (parity b%2).
func (e *mbsExec) dGradRows(b int, sp mbsSpan) []float64 {
	es := e.groups[b].outElems
	return e.dBound[b%2][sp.from*es : sp.to*es]
}

func (e *mbsExec) forwardGroup(g int, in *tensor.Tensor) *tensor.Tensor {
	layers := e.model.Net.Layers
	cur := in
	for i := e.groups[g].first; i <= e.groups[g].last; i++ {
		cur = layers[i].Forward(cur, true)
	}
	return cur
}

func (e *mbsExec) backwardGroup(g int, dy *tensor.Tensor) *tensor.Tensor {
	layers := e.model.Net.Layers
	for i := e.groups[g].last; i >= e.groups[g].first; i-- {
		dy = layers[i].Backward(dy)
	}
	return dy
}

func (e *mbsExec) installFor(eg *execGroup, size int) {
	if size == e.plan.SubBatch {
		eg.sub.install()
	} else {
		eg.rem.install()
	}
}

func (e *mbsExec) colLen(eg *execGroup, size int) int {
	if size == e.plan.SubBatch {
		return eg.colSub
	}
	return eg.colRem
}

// phaseSpans runs fn over every sub-batch span of group g, re-installing the
// arena views per span and, when the group opens with a pipelined conv,
// overlapping span b's compute with the packer goroutine lowering span b+1's
// im2col panels into the spare slab.
func (e *mbsExec) phaseSpans(g int, fn func(int, mbsSpan)) {
	e.curGroup = g
	eg := &e.groups[g]
	if eg.conv == nil {
		for si, sp := range e.spans {
			e.installFor(eg, sp.size)
			fn(si, sp)
		}
		return
	}
	cur := 0
	tensor.Im2ColPack(eg.slabs[cur][:e.colLen(eg, e.spans[0].size)], e.inputView(g, 0), eg.conv.Spec)
	for si, sp := range e.spans {
		if si+1 < len(e.spans) {
			nxt := e.spans[si+1]
			e.packCh <- packReq{
				col:  eg.slabs[1-cur][:e.colLen(eg, nxt.size)],
				x:    e.inputView(g, si+1),
				spec: eg.conv.Spec,
			}
		}
		e.installFor(eg, sp.size)
		eg.conv.col = eg.slabs[cur][:e.colLen(eg, sp.size)]
		eg.conv.prepacked = true
		fn(si, sp)
		eg.conv.prepacked = false
		if si+1 < len(e.spans) {
			<-e.packDone
		}
		cur = 1 - cur
	}
}

// accumulate runs one grouped MBS gradient accumulation (no optimizer step)
// and returns the mini-batch loss. Allocation-free after warm-up.
func (e *mbsExec) accumulate(x *tensor.Tensor, labels []int) float64 {
	for si, sp := range e.spans {
		e.xViews[si].Data = x.Data[sp.from*e.sampleElems : sp.to*e.sampleElems]
	}
	e.curLabels = labels
	e.curLoss = 0
	G := len(e.groups)
	for g := 0; g < G-1; g++ {
		e.phaseSpans(g, e.fnForward)
	}
	e.phaseSpans(G-1, e.fnLast)
	for g := G - 2; g >= 0; g-- {
		e.phaseSpans(g, e.fnBackward)
	}
	e.curLabels = nil
	return e.curLoss
}

// SetMBSPlan installs a grouped execution plan (from PlanMBS) on the model:
// subsequent TrainStepMBS/AccumulateGradsMBS calls whose input shape and
// sub-batch match the plan run on the grouped executor; everything else
// falls back to the layer-by-layer path. Passing nil clears the plan.
func (m *Model) SetMBSPlan(p *MBSPlan) error {
	if p == nil {
		m.ClearMBSPlan()
		return nil
	}
	e, err := newMBSExec(m, p)
	if err != nil {
		return err
	}
	m.ClearMBSPlan()
	m.mbs = e
	return nil
}

// ClearMBSPlan removes the installed plan and stops the packer goroutine.
func (m *Model) ClearMBSPlan() {
	if m.mbs != nil && m.mbs.packCh != nil {
		close(m.mbs.packCh)
	}
	m.mbs = nil
}

// MBSPlan returns the installed plan, or nil.
func (m *Model) MBSPlan() *MBSPlan {
	if m.mbs == nil {
		return nil
	}
	return m.mbs.plan
}
