package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// buildTestModel returns a small GN model plus a deterministic batch.
func buildTestModel(seed int64) (*Model, *tensor.Tensor, []int) {
	m := BuildSmallCNN(rand.New(rand.NewSource(seed)), 3, 16, 8, NormGroup, 8)
	rng := rand.New(rand.NewSource(seed + 1))
	x := tensor.New(8, 3, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	return m, x, labels
}

// TestEnginesTrainIdentically trains two identically-seeded models, one per
// engine, and demands the parameters stay together — the GEMM engine must
// be a drop-in replacement for the whole training path, not just for
// isolated kernels.
func TestEnginesTrainIdentically(t *testing.T) {
	defer tensor.SetEngine(tensor.CurrentEngine())

	tensor.SetEngine(tensor.EngineNaive)
	mn, x, labels := buildTestModel(21)
	optN := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}

	tensor.SetEngine(tensor.EngineGEMM)
	mg, _, _ := buildTestModel(21)
	optG := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}

	for step := 0; step < 3; step++ {
		tensor.SetEngine(tensor.EngineNaive)
		ln := mn.TrainStepMBS(x, labels, 3, optN)
		tensor.SetEngine(tensor.EngineGEMM)
		lg := mg.TrainStepMBS(x, labels, 3, optG)
		if d := ln - lg; d > 1e-9 || d < -1e-9 {
			t.Fatalf("step %d: losses diverged across engines (%g vs %g)", step, ln, lg)
		}
	}
	pn, pg := mn.Net.Params(), mg.Net.Params()
	for i := range pn {
		if d := pn[i].Data.MaxAbsDiff(pg[i].Data); d > 1e-9 {
			t.Errorf("%s: parameters diverged across engines by %g", pn[i].Name, d)
		}
	}
}

// TestGEMMTrainStepDeterministicAcrossThreads: one full MBS training step
// is bit-reproducible for any -threads setting (the mbstrain reproducibility
// contract).
func TestGEMMTrainStepDeterministicAcrossThreads(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	defer tensor.SetThreads(tensor.SetThreads(1))

	run := func(threads int) []*Param {
		tensor.SetThreads(threads)
		m, x, labels := buildTestModel(22)
		opt := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
		m.TrainStepMBS(x, labels, 3, opt)
		m.TrainStepFull(x, labels, opt)
		return m.Net.Params()
	}
	ref := run(1)
	for _, threads := range []int{2, 5} {
		got := run(threads)
		for i := range ref {
			for j := range ref[i].Data.Data {
				if ref[i].Data.Data[j] != got[i].Data.Data[j] {
					t.Fatalf("threads=%d: %s not bit-identical", threads, ref[i].Name)
				}
			}
		}
	}
}

// TestEvalBetweenForwardAndBackward: an evaluation forward issued between a
// training forward and its backward must not disturb the gradients — eval
// forwards write to a separate buffer set, so cached training activations
// survive. The naive engine (fresh tensors everywhere) is the reference.
func TestEvalBetweenForwardAndBackward(t *testing.T) {
	defer tensor.SetEngine(tensor.CurrentEngine())

	grads := func(e tensor.Engine, evalBetween bool) map[string]*tensor.Tensor {
		tensor.SetEngine(e)
		m, x, labels := buildTestModel(24)
		// NB: seed must differ from buildTestModel's data seed, or the eval
		// activations coincide with the training ones and hide clobbering.
		rng := rand.New(rand.NewSource(99))
		xeSame := tensor.New(8, 3, 16, 16) // same batch size: would overwrite a shared buffer
		xeSame.Randn(rng, 1)
		xeDiff := tensor.New(5, 3, 16, 16) // different batch size: would reallocate it
		xeDiff.Randn(rng, 1)
		m.zeroGrads()
		loss, dlogits := m.Loss(x, labels, true)
		_ = loss
		if evalBetween {
			m.Net.Forward(xeSame, false)
			m.Net.Forward(xeDiff, false)
		}
		m.Net.Backward(dlogits)
		out := map[string]*tensor.Tensor{}
		for _, p := range m.Params() {
			out[p.Name] = p.Grad.Clone()
		}
		return out
	}

	ref := grads(tensor.EngineNaive, false)
	got := grads(tensor.EngineGEMM, true)
	for name, g := range ref {
		if d := g.MaxAbsDiff(got[name]); d > 1e-9 {
			t.Errorf("%s: eval-between-fwd-and-bwd corrupted gradients by %g", name, d)
		}
	}
}

// TestTrainStepAllocRegression is the steady-state allocation contract for
// the training path: the GEMM engine's buffer-reusing flow must allocate at
// least 10x less often per step than the naive reference flow.
func TestTrainStepAllocRegression(t *testing.T) {
	if tensor.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	defer tensor.SetEngine(tensor.CurrentEngine())
	defer tensor.SetThreads(tensor.SetThreads(1))

	measure := func(e tensor.Engine) float64 {
		tensor.SetEngine(e)
		m, x, labels := buildTestModel(23)
		opt := &SGD{LR: 0.01, Momentum: 0.9}
		m.TrainStepFull(x, labels, opt) // warm buffers and scratch arena
		return testing.AllocsPerRun(5, func() { m.TrainStepFull(x, labels, opt) })
	}
	naive := measure(tensor.EngineNaive)
	gemm := measure(tensor.EngineGEMM)
	if gemm*10 > naive {
		t.Errorf("GEMM train step allocates %v/op vs naive %v/op, want >= 10x reduction", gemm, naive)
	}
	// Absolute guard so the optimized path can't silently regress even if
	// the naive path gets slower.
	if gemm > 20 {
		t.Errorf("GEMM train step allocates %v/op in steady state, want <= 20", gemm)
	}
}
