package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Residual is a two-branch residual block: out = ReLU(main(x) + shortcut(x)).
// A nil shortcut is the identity. This is the numeric counterpart of the
// graph IR's MergeAdd block and exercises the paper's multi-branch reuse
// path in the training-equivalence experiments: both branches read the same
// input, and the backward pass sums the branch gradients at the split point
// (the "split-sum" op of the traffic model).
type Residual struct {
	Main     *Sequential
	Shortcut *Sequential // nil = identity
	post     ReLU
	// Persistent GEMM-engine buffers: the branch merge and the summed input
	// gradient land in reused tensors instead of per-call Clones, matching
	// the zero-steady-state-allocation contract of the leaf layers.
	sum outBufs
	dx  *tensor.Tensor
}

// NewResidual wraps the branches.
func NewResidual(main, shortcut *Sequential) *Residual {
	return &Residual{Main: main, Shortcut: shortcut}
}

// Forward computes the merged activation.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m := r.Main.Forward(x, train)
	s := x
	if r.Shortcut != nil {
		s = r.Shortcut.Forward(x, train)
	}
	if !m.SameShape(s) {
		panic(fmt.Sprintf("nn: residual branch shapes differ: %v vs %v", m.Shape, s.Shape))
	}
	var sum *tensor.Tensor
	if reuseBuffers() {
		sum = ensureLike(r.sum.sel(train), m)
		copy(sum.Data, m.Data)
	} else {
		sum = m.Clone()
	}
	sum.AddInPlace(s)
	return r.post.Forward(sum, train)
}

// Backward distributes the merged gradient to both branches and sums their
// input gradients. No layer's Backward mutates the gradient handed to it,
// so the merged gradient g can feed both branch backwards directly; only
// the final sum needs its own buffer (dxMain aliases a branch-internal
// buffer the next unit's backward would otherwise clobber).
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	g := r.post.Backward(dy)
	if reuseBuffers() {
		dxMain := r.Main.Backward(g)
		dxShort := g
		if r.Shortcut != nil {
			dxShort = r.Shortcut.Backward(g)
		}
		dx := ensureLike(&r.dx, dxMain)
		copy(dx.Data, dxMain.Data)
		dx.AddInPlace(dxShort)
		return dx
	}
	dxMain := r.Main.Backward(g.Clone())
	dxShort := g
	if r.Shortcut != nil {
		dxShort = r.Shortcut.Backward(g.Clone())
	}
	dx := dxMain.Clone()
	dx.AddInPlace(dxShort)
	return dx
}

// Params returns both branches' parameters.
func (r *Residual) Params() []*Param {
	out := r.Main.Params()
	if r.Shortcut != nil {
		out = append(out, r.Shortcut.Params()...)
	}
	return out
}

// BuildSmallResNet builds a residual version of the Fig. 6 classifier: a
// stem followed by three basic residual blocks (the middle one strided with
// a projection shortcut), GAP and a linear head. Norm selects BN/GN/none as
// in BuildSmallCNN.
func BuildSmallResNet(rng *rand.Rand, inC, size, classes int, norm NormKind, gnGroups int) *Model {
	mkNorm := func(name string, c int) Layer {
		switch norm {
		case NormBatch:
			return NewBatchNorm2D(name, c)
		case NormGroup:
			return NewGroupNorm(name, c, gnGroups)
		default:
			return nil
		}
	}
	convNormRelu := func(name string, inCh, outCh, stride int, withRelu bool) []Layer {
		ls := []Layer{NewConv2D(name, rng, inCh, outCh, 3, stride, 1)}
		if n := mkNorm(name+"_n", outCh); n != nil {
			ls = append(ls, n)
		}
		if withRelu {
			ls = append(ls, &ReLU{})
		}
		return ls
	}
	resBlock := func(name string, inCh, outCh, stride int) *Residual {
		var main []Layer
		main = append(main, convNormRelu(name+"_a", inCh, outCh, stride, true)...)
		main = append(main, convNormRelu(name+"_b", outCh, outCh, 1, false)...)
		var shortcut *Sequential
		if stride != 1 || inCh != outCh {
			var sc []Layer
			sc = append(sc, NewConv2D(name+"_sc", rng, inCh, outCh, 1, stride, 0))
			if n := mkNorm(name+"_scn", outCh); n != nil {
				sc = append(sc, n)
			}
			shortcut = &Sequential{Layers: sc}
		}
		return NewResidual(&Sequential{Layers: main}, shortcut)
	}

	var layers []Layer
	layers = append(layers, convNormRelu("stem", inC, 16, 1, true)...)
	layers = append(layers, resBlock("res1", 16, 16, 1))
	layers = append(layers, resBlock("res2", 16, 32, 2))
	layers = append(layers, resBlock("res3", 32, 32, 1))
	layers = append(layers, &GlobalAvgPool{})
	layers = append(layers, NewLinear("fc", rng, 32, classes))
	return &Model{Net: &Sequential{Layers: layers}}
}
