package nn

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/tensor"
)

// MBS execution planner (Sections 3-4 of the paper, made real in the hot
// path). The planner walks a compiled model at sub-batch size, computes every
// layer's activation/im2col/gradient footprint, and partitions the layers
// into contiguous groups whose training working set fits a cache budget. The
// grouped executor (mbsexec.go) then serializes sub-batches through each
// group — not through the whole net — so a group's weights, packed panels and
// activations stay cache-resident across all sub-batches, and only the
// group-boundary activations (the paper's DRAM stash) are materialized at
// full batch size.
//
// The same walk doubles as the arena layout: every buffer a layer would
// otherwise allocate for itself (forward output, im2col packing, xhat, dx,
// ReLU masks, pool argmax maps) is described by a spec with an install
// closure, and the executor points the layer's persistent-buffer fields at
// planned offsets of one shared slab. Liveness is the classification baked
// into the specs: `retained` buffers are live for a whole group phase
// (activations the backward re-reads), while each unit's input gradient is
// transient — dead as soon as the previous unit's backward consumes it — so
// all of them collapse into two ping-pong slots at the arena tail,
// alternating by unit parity.

// MBSPlanConfig configures PlanMBS.
type MBSPlanConfig struct {
	// SubBatch is the MBS serialization factor (samples per sub-batch).
	SubBatch int
	// BudgetBytes is the cache budget a group's working set must fit.
	// <= 0 autodetects from the CPU cache topology (DetectCacheBudget).
	BudgetBytes int64
	// Pipeline enables double-buffered sub-batch pipelining: a packer
	// goroutine lowers sub-batch b+1's im2col panels into a second scratch
	// arena while sub-batch b computes.
	Pipeline bool
}

// MBSGroup is one planned layer group: units [First, Last] of the model,
// executed sub-batch-serially with all intra-group buffers in one arena.
type MBSGroup struct {
	First, Last int
	Label       string // "conv1..relu" — first and last unit labels
	// ArenaBytes is the planned float arena for the group: all retained
	// buffers plus the two transient ping-pong slots, at full sub-batch size.
	ArenaBytes int64
	// AuxBytes covers non-float per-layer state (ReLU masks, argmax maps,
	// norm statistics) the executor also pre-plans per sub-batch size.
	AuxBytes int64
	// WeightBytes counts parameter data + gradient bytes of the group.
	WeightBytes int64
	// WorkingSetBytes is what must stay hot while the group runs: arena +
	// aux + weights + the sub-batch input/output-gradient slices streamed
	// across the group boundary. This is the number checked against the
	// budget. (Optimizer momentum is excluded: SGD touches it once per
	// step, outside every group loop.)
	WorkingSetBytes int64
	// InSample/OutSample are the per-sample (batch-stripped) boundary shapes.
	InSample, OutSample []int
}

// MBSPlan is a complete grouped-execution schedule for one (model, input
// shape, sub-batch, budget) combination. Install it with Model.SetMBSPlan.
type MBSPlan struct {
	Batch    int
	SubBatch int
	Sample   []int // per-sample input shape (input shape minus batch dim)

	BudgetBytes  int64
	BudgetAuto   bool
	BudgetSource string // cache level the auto budget came from
	Pipeline     bool

	Groups []MBSGroup

	// PeakArenaBytes is the largest group arena + aux — the planned
	// cache-resident activation footprint of the executor. Strictly below
	// FullFootprintBytes whenever the model has more than two units, because
	// the per-unit dx buffers of the unplanned path collapse into two
	// ping-pong slots.
	PeakArenaBytes int64
	// BoundaryBytes is the full-batch group-boundary stash (activations
	// plus the two ping-pong boundary-gradient buffers) — the traffic the
	// paper deliberately sends to DRAM once per step. Zero for a one-group
	// plan.
	BoundaryBytes int64
	// FullFootprintBytes is the unplanned layer-by-layer path's per-layer
	// persistent buffers plus its sub-batch input copy, at the same
	// sub-batch size — the baseline PeakArenaBytes is measured against.
	FullFootprintBytes int64
}

// --- per-unit footprint walk -------------------------------------------------

// arenaBuf describes one float buffer of a unit: its element count, optional
// tensor view shape (nil for raw []float64 buffers such as im2col packings),
// liveness class, and the closure that points the owning layer's field at a
// planned arena view.
type arenaBuf struct {
	elems    int
	shape    []int // nil => raw slice buffer
	retained bool  // false => unit-parity ping-pong slot
	installT func(*tensor.Tensor)
	installS func([]float64)
}

// auxBuf describes non-float per-layer state (masks, argmax maps, norm
// statistics) with a typed install closure.
type auxBuf struct {
	elems     int
	elemBytes int
	installB  func([]bool)
	installI  func([]int)
	installF  func([]float64)
}

// unitSpec is the planner's view of one top-level model unit (a Residual
// counts as a single unit; its branch layers are folded in with every buffer
// retained, since branch gradients interleave with the merge).
type unitSpec struct {
	label    string
	inShape  []int // including batch dim
	outShape []int
	bufs     []arenaBuf
	aux      []auxBuf
	weightBytes int64
	// conv is set when the unit is a plain Conv2D — the pipeline's prepack
	// target when the unit opens a group. colElems is its im2col length.
	conv     *Conv2D
	colElems int
}

func prodShape(s []int) int {
	n := 1
	for _, v := range s {
		n *= v
	}
	return n
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func paramBytes(ps []*Param) int64 {
	var b int64
	for _, p := range ps {
		b += int64(p.Data.Len()+p.Grad.Len()) * 8
	}
	return b
}

func unitLabel(l Layer) string {
	switch v := l.(type) {
	case *Conv2D:
		return strings.TrimSuffix(v.Weight.Name, ".weight")
	case *Linear:
		return strings.TrimSuffix(v.Weight.Name, ".weight")
	case *BatchNorm2D:
		return strings.TrimSuffix(v.Gamma.Name, ".gamma")
	case *GroupNorm:
		return strings.TrimSuffix(v.Gamma.Name, ".gamma")
	case *ReLU:
		return "relu"
	case *MaxPool2:
		return "maxpool"
	case *GlobalAvgPool:
		return "gap"
	case *Residual:
		if len(v.Main.Layers) > 0 {
			return "res[" + unitLabel(v.Main.Layers[0]) + "]"
		}
		return "res"
	default:
		return fmt.Sprintf("%T", l)
	}
}

// walkUnit computes the train-mode buffer specs of one layer for input shape
// in (batch dim included). retainAll forces every buffer — including the
// normally transient dx — into the retained class; Residual sets it for its
// branch layers.
func walkUnit(l Layer, in []int, retainAll bool) (unitSpec, error) {
	u := unitSpec{label: unitLabel(l), inShape: append([]int(nil), in...)}
	n := in[0]
	retain := func(dflt bool) bool { return retainAll || dflt }
	need := func(rank int) error {
		if len(in) != rank {
			return fmt.Errorf("nn: mbs plan: %s expects rank-%d input, got %v", u.label, rank, in)
		}
		return nil
	}

	switch v := l.(type) {
	case *Conv2D:
		if err := need(4); err != nil {
			return u, err
		}
		if in[1] != v.Spec.InC {
			return u, fmt.Errorf("nn: mbs plan: %s expects %d input channels, got shape %v", u.label, v.Spec.InC, in)
		}
		oh, ow := v.Spec.OutDims(in[2], in[3])
		u.outShape = []int{n, v.Spec.OutC, oh, ow}
		u.conv = v
		u.colElems = n * v.Spec.InC * v.Spec.KH * v.Spec.KW * oh * ow
		c := v
		u.bufs = append(u.bufs,
			arenaBuf{elems: prodShape(u.outShape), shape: u.outShape, retained: true,
				installT: func(t *tensor.Tensor) { c.out.train = t }},
			arenaBuf{elems: u.colElems, retained: true,
				installS: func(s []float64) { c.col = s }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: retain(false),
				installT: func(t *tensor.Tensor) { c.dx = t }},
		)
		u.weightBytes = paramBytes(v.Params())

	case *Linear:
		if err := need(2); err != nil {
			return u, err
		}
		if in[1] != v.In {
			return u, fmt.Errorf("nn: mbs plan: %s expects %d input features, got shape %v", u.label, v.In, in)
		}
		u.outShape = []int{n, v.Out}
		lin := v
		u.bufs = append(u.bufs,
			arenaBuf{elems: prodShape(u.outShape), shape: u.outShape, retained: true,
				installT: func(t *tensor.Tensor) { lin.out.train = t }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: retain(false),
				installT: func(t *tensor.Tensor) { lin.dx = t }},
		)
		u.weightBytes = paramBytes(v.Params())

	case *ReLU:
		u.outShape = u.inShape
		r := v
		u.bufs = append(u.bufs,
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: true,
				installT: func(t *tensor.Tensor) { r.out.train = t }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: retain(false),
				installT: func(t *tensor.Tensor) { r.dx = t }},
		)
		u.aux = append(u.aux, auxBuf{elems: prodShape(in), elemBytes: 1,
			installB: func(b []bool) { r.mask = b }})

	case *MaxPool2:
		if err := need(4); err != nil {
			return u, err
		}
		oh := (in[2]-v.K)/v.Stride + 1
		ow := (in[3]-v.K)/v.Stride + 1
		u.outShape = []int{n, in[1], oh, ow}
		p := v
		u.bufs = append(u.bufs,
			arenaBuf{elems: prodShape(u.outShape), shape: u.outShape, retained: true,
				installT: func(t *tensor.Tensor) { p.out.train = t }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: retain(false),
				installT: func(t *tensor.Tensor) { p.dx = t }},
		)
		u.aux = append(u.aux, auxBuf{elems: prodShape(u.outShape), elemBytes: 8,
			installI: func(a []int) { p.arg = a }})

	case *GlobalAvgPool:
		if err := need(4); err != nil {
			return u, err
		}
		u.outShape = []int{n, in[1]}
		p := v
		u.bufs = append(u.bufs,
			arenaBuf{elems: prodShape(u.outShape), shape: u.outShape, retained: true,
				installT: func(t *tensor.Tensor) { p.out.train = t }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: retain(false),
				installT: func(t *tensor.Tensor) { p.dx = t }},
		)

	case *BatchNorm2D:
		if err := need(4); err != nil {
			return u, err
		}
		u.outShape = u.inShape
		b := v
		u.bufs = append(u.bufs,
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: true,
				installT: func(t *tensor.Tensor) { b.out.train = t }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: true,
				installT: func(t *tensor.Tensor) { b.xhat = t }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: retain(false),
				installT: func(t *tensor.Tensor) { b.dx = t }},
		)
		u.aux = append(u.aux,
			auxBuf{elems: v.C, elemBytes: 8, installF: func(f []float64) { b.mean = f }},
			auxBuf{elems: v.C, elemBytes: 8, installF: func(f []float64) { b.invStd = f }},
		)
		u.weightBytes = paramBytes(v.Params())

	case *GroupNorm:
		if err := need(4); err != nil {
			return u, err
		}
		u.outShape = u.inShape
		gn := v
		u.bufs = append(u.bufs,
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: true,
				installT: func(t *tensor.Tensor) { gn.out.train = t }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: true,
				installT: func(t *tensor.Tensor) { gn.xhat = t }},
			arenaBuf{elems: prodShape(in), shape: u.inShape, retained: retain(false),
				installT: func(t *tensor.Tensor) { gn.dx = t }},
		)
		u.aux = append(u.aux, auxBuf{elems: n * v.Groups, elemBytes: 8,
			installF: func(f []float64) { gn.invStd = f }})
		u.weightBytes = paramBytes(v.Params())

	case *Residual:
		if err := need(4); err != nil {
			return u, err
		}
		r := v
		walkBranch := func(layers []Layer, from []int) ([]int, error) {
			cur := from
			for _, bl := range layers {
				su, err := walkUnit(bl, cur, true)
				if err != nil {
					return nil, err
				}
				u.bufs = append(u.bufs, su.bufs...)
				u.aux = append(u.aux, su.aux...)
				u.weightBytes += su.weightBytes
				cur = su.outShape
			}
			return cur, nil
		}
		mainOut, err := walkBranch(r.Main.Layers, u.inShape)
		if err != nil {
			return u, err
		}
		scOut := u.inShape
		if r.Shortcut != nil {
			if scOut, err = walkBranch(r.Shortcut.Layers, u.inShape); err != nil {
				return u, err
			}
		}
		if !shapeEq(mainOut, scOut) {
			return u, fmt.Errorf("nn: mbs plan: %s branch shapes differ: %v vs %v", u.label, mainOut, scOut)
		}
		u.outShape = append([]int(nil), mainOut...)
		// Merge state: the branch sum (the post-ReLU's cached input), the
		// post-ReLU's own buffers, and the summed input gradient. Everything
		// except the unit's final dx stays retained — the merged gradient g
		// must outlive both branch backwards.
		u.bufs = append(u.bufs,
			arenaBuf{elems: prodShape(u.outShape), shape: u.outShape, retained: true,
				installT: func(t *tensor.Tensor) { r.sum.train = t }},
			arenaBuf{elems: prodShape(u.outShape), shape: u.outShape, retained: true,
				installT: func(t *tensor.Tensor) { r.post.out.train = t }},
			arenaBuf{elems: prodShape(u.outShape), shape: u.outShape, retained: true,
				installT: func(t *tensor.Tensor) { r.post.dx = t }},
			arenaBuf{elems: prodShape(u.inShape), shape: u.inShape, retained: retain(false),
				installT: func(t *tensor.Tensor) { r.dx = t }},
		)
		u.aux = append(u.aux, auxBuf{elems: prodShape(u.outShape), elemBytes: 1,
			installB: func(b []bool) { r.post.mask = b }})

	default:
		return u, fmt.Errorf("nn: mbs plan: unsupported layer type %T", l)
	}
	return u, nil
}

// mbsUnits walks the whole model at batch size n.
func (m *Model) mbsUnits(n int, sample []int) ([]unitSpec, error) {
	if len(m.Net.Layers) == 0 {
		return nil, fmt.Errorf("nn: mbs plan: empty model")
	}
	in := append([]int{n}, sample...)
	units := make([]unitSpec, 0, len(m.Net.Layers))
	for _, l := range m.Net.Layers {
		u, err := walkUnit(l, in, false)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
		in = u.outShape
	}
	return units, nil
}

// measureGroup sums the working set of units [first, last].
func measureGroup(units []unitSpec, first, last int) MBSGroup {
	var retained, maxTransient int
	var aux, wb int64
	for i := first; i <= last; i++ {
		for _, b := range units[i].bufs {
			if b.retained {
				retained += b.elems
			} else if b.elems > maxTransient {
				maxTransient = b.elems
			}
		}
		for _, a := range units[i].aux {
			aux += int64(a.elems) * int64(a.elemBytes)
		}
		wb += units[i].weightBytes
	}
	arena := int64(retained+2*maxTransient) * 8
	inB := int64(prodShape(units[first].inShape)) * 8
	outB := int64(prodShape(units[last].outShape)) * 8
	label := units[first].label
	if last > first {
		label += ".." + units[last].label
	}
	return MBSGroup{
		First: first, Last: last, Label: label,
		ArenaBytes: arena, AuxBytes: aux, WeightBytes: wb,
		// input is read twice per sub-batch (forward phase + backward
		// recompute), and the boundary gradient streams in while the input
		// gradient streams out — both input-shaped.
		WorkingSetBytes: arena + aux + wb + 2*inB + outB,
		InSample:        append([]int(nil), units[first].inShape[1:]...),
		OutSample:       append([]int(nil), units[last].outShape[1:]...),
	}
}

// PlanMBS builds a grouped MBS execution plan for inputs of shape inShape
// (batch dim included). Greedy contiguous fill: each group takes as many
// consecutive units as fit the budget. A single unit over the budget is a
// hard error — a degenerate silently-thrashing schedule helps nobody.
func (m *Model) PlanMBS(inShape []int, cfg MBSPlanConfig) (*MBSPlan, error) {
	if len(inShape) < 2 {
		return nil, fmt.Errorf("nn: mbs plan: input shape %v needs a batch dim", inShape)
	}
	batch := inShape[0]
	sub := cfg.SubBatch
	if batch <= 0 || sub <= 0 || sub > batch {
		return nil, fmt.Errorf("nn: mbs plan: sub-batch %d invalid for batch %d", sub, batch)
	}
	budget, auto, source := cfg.BudgetBytes, false, ""
	if budget <= 0 {
		budget, source = DetectCacheBudget()
		auto = true
	}
	units, err := m.mbsUnits(sub, inShape[1:])
	if err != nil {
		return nil, err
	}

	var groups []MBSGroup
	for i := 0; i < len(units); {
		g := measureGroup(units, i, i)
		if g.WorkingSetBytes > budget {
			return nil, fmt.Errorf(
				"nn: mbs plan: layer %s alone needs %s at sub-batch %d, over the %s cache budget — raise the budget or shrink the sub-batch",
				units[i].label, humanBytes(g.WorkingSetBytes), sub, humanBytes(budget))
		}
		j := i
		for j+1 < len(units) {
			c := measureGroup(units, i, j+1)
			if c.WorkingSetBytes > budget {
				break
			}
			j, g = j+1, c
		}
		groups = append(groups, g)
		i = j + 1
	}

	p := &MBSPlan{
		Batch: batch, SubBatch: sub,
		Sample:      append([]int(nil), inShape[1:]...),
		BudgetBytes: budget, BudgetAuto: auto, BudgetSource: source,
		Pipeline: cfg.Pipeline,
		Groups:   groups,
	}
	for _, g := range groups {
		if a := g.ArenaBytes + g.AuxBytes; a > p.PeakArenaBytes {
			p.PeakArenaBytes = a
		}
	}
	var maxBound int64
	for _, g := range groups[:len(groups)-1] {
		b := int64(prodShape(g.OutSample)) * int64(batch) * 8
		p.BoundaryBytes += b
		if b > maxBound {
			maxBound = b
		}
	}
	if len(groups) > 1 {
		p.BoundaryBytes += 2 * maxBound // boundary-gradient ping-pong pair
	}
	for _, u := range units {
		for _, b := range u.bufs {
			p.FullFootprintBytes += int64(b.elems) * 8
		}
		for _, a := range u.aux {
			p.FullFootprintBytes += int64(a.elems) * int64(a.elemBytes)
		}
	}
	p.FullFootprintBytes += int64(prodShape(units[0].inShape)) * 8 // SliceBatch copy
	return p, nil
}

// Summary is the one-line human description threaded into mbstrain logs and
// experiment output.
func (p *MBSPlan) Summary() string {
	budget := humanBytes(p.BudgetBytes)
	if p.BudgetAuto {
		budget += " auto:" + p.BudgetSource
	}
	pipe := ""
	if p.Pipeline {
		pipe = ", pipelined"
	}
	return fmt.Sprintf("MBS plan: %d group(s), sub-batch %d, peak arena %s of %s budget, boundary stash %s, unplanned footprint %s%s",
		len(p.Groups), p.SubBatch, humanBytes(p.PeakArenaBytes), budget,
		humanBytes(p.BoundaryBytes), humanBytes(p.FullFootprintBytes), pipe)
}

// MetricsLine is the machine-readable form the bench harness prints and
// benchjson lifts into the BENCH_n.json snapshot.
func (p *MBSPlan) MetricsLine() string {
	return fmt.Sprintf("mbs-plan: groups=%d sub=%d arena_bytes=%d budget_bytes=%d boundary_bytes=%d full_bytes=%d",
		len(p.Groups), p.SubBatch, p.PeakArenaBytes, p.BudgetBytes, p.BoundaryBytes, p.FullFootprintBytes)
}

// WriteTable prints the per-group plan table (`group i: layers a..b, arena
// KiB, fits budget`).
func (p *MBSPlan) WriteTable(w io.Writer) {
	for i, g := range p.Groups {
		fmt.Fprintf(w, "group %d: layers %d..%d (%s), arena %s (aux %s, weights %s), working set %s <= budget %s\n",
			i, g.First, g.Last, g.Label,
			humanBytes(g.ArenaBytes), humanBytes(g.AuxBytes), humanBytes(g.WeightBytes),
			humanBytes(g.WorkingSetBytes), humanBytes(p.BudgetBytes))
	}
}

// --- cache budget ------------------------------------------------------------

// DetectCacheBudget returns the default MBS cache budget: the largest data or
// unified cache reported by the CPU topology (typically L3, or L2 when no L3
// exists), and a short description of where the number came from. Falls back
// to 32MiB when the topology is unreadable.
func DetectCacheBudget() (int64, string) {
	dirs, _ := filepath.Glob("/sys/devices/system/cpu/cpu0/cache/index*")
	var best int64
	level := ""
	for _, d := range dirs {
		if typ := readSysFile(d + "/type"); typ == "Instruction" {
			continue
		}
		sz, err := ParseByteSize(readSysFile(d + "/size"))
		if err != nil || sz <= 0 {
			continue
		}
		if sz > best {
			best = sz
			level = "L" + readSysFile(d+"/level")
		}
	}
	if best <= 0 {
		return 32 << 20, "default(no cache topology)"
	}
	return best, fmt.Sprintf("%s(%s)", level, humanBytes(best))
}

func readSysFile(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// ParseByteSize parses "1048576", "512K", "8MiB", "2GB" etc. into bytes.
// All suffixes are binary (K = 1024), matching sysfs cache sizes.
func ParseByteSize(s string) (int64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("nn: empty byte size")
	}
	t = strings.TrimSuffix(t, "IB")
	t = strings.TrimSuffix(t, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("nn: bad byte size %q", s)
	}
	return n * mult, nil
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
