package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestResidualIdentityForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// A main branch initialized to zero weights: output = ReLU(x).
	conv := NewConv2D("c", rng, 4, 4, 3, 1, 1)
	conv.Weight.Data.Zero()
	conv.Bias.Data.Zero()
	r := NewResidual(&Sequential{Layers: []Layer{conv}}, nil)
	x := tensor.New(2, 4, 5, 5)
	x.Randn(rng, 1)
	y := r.Forward(x, false)
	for i, v := range x.Data {
		want := v
		if want < 0 {
			want = 0
		}
		if math.Abs(y.Data[i]-want) > 1e-12 {
			t.Fatalf("y[%d] = %g, want ReLU(x) = %g", i, y.Data[i], want)
		}
	}
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	main := &Sequential{Layers: []Layer{
		NewConv2D("m1", rng, 3, 3, 3, 1, 1),
		NewGroupNorm("gn", 3, 3),
	}}
	short := &Sequential{Layers: []Layer{
		NewConv2D("sc", rng, 3, 3, 1, 1, 0),
	}}
	r := NewResidual(main, short)
	x := tensor.New(2, 3, 4, 4)
	x.Randn(rng, 1)
	numericGradCheck(t, "residual", r, x, rng)
}

func TestResidualStridedProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := BuildSmallResNet(rng, 3, 16, 8, NormGroup, 4)
	x := tensor.New(2, 3, 16, 16)
	x.Randn(rng, 1)
	y := m.Net.Forward(x, false)
	if y.Shape[0] != 2 || y.Shape[1] != 8 {
		t.Errorf("output shape %v", y.Shape)
	}
}

// TestMBSEquivalenceThroughResidualTopology extends the central equivalence
// property to multi-branch networks: sub-batch serialization with GN stays
// exact even when branches share inputs and gradients sum at split points —
// numerically backing the paper's Eq. 1 multi-branch reuse.
func TestMBSEquivalenceThroughResidualTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := BuildSmallResNet(rng, 3, 16, 8, NormGroup, 4)
	x := tensor.New(10, 3, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, 10)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	m.AccumulateGradsFull(x, labels)
	ref := map[string]*tensor.Tensor{}
	for _, p := range m.Net.Params() {
		ref[p.Name] = p.Grad.Clone()
	}
	for _, sub := range []int{1, 3, 4, 10} {
		m.AccumulateGradsMBS(x, labels, sub)
		for _, p := range m.Net.Params() {
			if d := p.Grad.MaxAbsDiff(ref[p.Name]); d > 1e-9 {
				t.Errorf("sub=%d: %s differs by %g", sub, p.Name, d)
			}
		}
	}
}

func TestResidualTrainingLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	rng := rand.New(rand.NewSource(25))
	m := BuildSmallResNet(rng, 3, 8, 2, NormGroup, 4)
	// Two trivially separable classes: constant-sign images.
	n := 32
	x := tensor.New(n, 3, 8, 8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		v := 1.0
		if i%2 == 1 {
			v = -1.0
			labels[i] = 1
		}
		for j := 0; j < x.Len()/n; j++ {
			x.Data[i*(x.Len()/n)+j] = v + rng.NormFloat64()*0.2
		}
	}
	opt := &SGD{LR: 0.05, Momentum: 0.9}
	for step := 0; step < 30; step++ {
		m.TrainStepMBS(x, labels, 4, opt)
	}
	if acc := m.Evaluate(x, labels); acc < 0.95 {
		t.Errorf("residual net failed to learn a trivial task: acc %.2f", acc)
	}
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	// Main branch changes channels but shortcut is identity: must panic.
	main := &Sequential{Layers: []Layer{NewConv2D("m", rng, 3, 8, 3, 1, 1)}}
	r := NewResidual(main, nil)
	x := tensor.New(1, 3, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected shape mismatch panic")
		}
	}()
	r.Forward(x, false)
}
