package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/synth"
	"repro/internal/tensor"
)

// TestMBSEquivalenceWithGroupNorm is the paper's central correctness claim
// (Section 3): with an MBS-compatible normalization (GN), serializing a
// mini-batch into sub-batches and accumulating gradients computes exactly
// the gradients of full-mini-batch processing, for every sub-batch size.
func TestMBSEquivalenceWithGroupNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := BuildSmallCNN(rng, 3, 16, 8, NormGroup, 8)
	x := tensor.New(12, 3, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, 12)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}

	lossFull := m.AccumulateGradsFull(x, labels)
	ref := make(map[string]*tensor.Tensor)
	for _, p := range m.Net.Params() {
		ref[p.Name] = p.Grad.Clone()
	}

	for _, sub := range []int{1, 2, 3, 4, 5, 6, 12} {
		lossMBS := m.AccumulateGradsMBS(x, labels, sub)
		if math.Abs(lossMBS-lossFull) > 1e-9 {
			t.Errorf("sub=%d: loss %g != full %g", sub, lossMBS, lossFull)
		}
		for _, p := range m.Net.Params() {
			if d := p.Grad.MaxAbsDiff(ref[p.Name]); d > 1e-9 {
				t.Errorf("sub=%d: %s gradient differs by %g", sub, p.Name, d)
			}
		}
	}
}

// TestMBSNotEquivalentWithBatchNorm is the negative control: BN statistics
// span the whole mini-batch, so naive serialization changes the gradients —
// the reason the paper adapts GN instead.
func TestMBSNotEquivalentWithBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := BuildSmallCNN(rng, 3, 16, 8, NormBatch, 0)
	x := tensor.New(12, 3, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, 12)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	m.AccumulateGradsFull(x, labels)
	ref := make(map[string]*tensor.Tensor)
	for _, p := range m.Net.Params() {
		ref[p.Name] = p.Grad.Clone()
	}
	m.AccumulateGradsMBS(x, labels, 3)
	var maxDiff float64
	for _, p := range m.Net.Params() {
		if d := p.Grad.MaxAbsDiff(ref[p.Name]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 1e-6 {
		t.Errorf("BN sub-batching unexpectedly matched full batch (max diff %g)", maxDiff)
	}
}

// TestMBSEquivalenceWithoutNorm: with no normalization at all the model is
// sample-separable, so MBS must again be exact.
func TestMBSEquivalenceWithoutNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := BuildSmallCNN(rng, 3, 16, 8, NormNone, 0)
	x := tensor.New(8, 3, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	m.AccumulateGradsFull(x, labels)
	ref := make(map[string]*tensor.Tensor)
	for _, p := range m.Net.Params() {
		ref[p.Name] = p.Grad.Clone()
	}
	m.AccumulateGradsMBS(x, labels, 3)
	for _, p := range m.Net.Params() {
		if d := p.Grad.MaxAbsDiff(ref[p.Name]); d > 1e-9 {
			t.Errorf("%s gradient differs by %g", p.Name, d)
		}
	}
}

// TestTrainStepMBSMatchesFullWithGN: whole optimizer steps (including
// momentum) agree between the serialized and conventional flows under GN.
func TestTrainStepMBSMatchesFullWithGN(t *testing.T) {
	rngA := rand.New(rand.NewSource(45))
	rngB := rand.New(rand.NewSource(45))
	a := BuildSmallCNN(rngA, 3, 16, 4, NormGroup, 4)
	b := BuildSmallCNN(rngB, 3, 16, 4, NormGroup, 4)

	rng := rand.New(rand.NewSource(46))
	x := tensor.New(8, 3, 16, 16)
	x.Randn(rng, 1)
	labels := []int{0, 1, 2, 3, 0, 1, 2, 3}
	optA := &SGD{LR: 0.05, Momentum: 0.9}
	optB := &SGD{LR: 0.05, Momentum: 0.9}

	for step := 0; step < 3; step++ {
		la := a.TrainStepFull(x, labels, optA)
		lb := b.TrainStepMBS(x, labels, 3, optB)
		if math.Abs(la-lb) > 1e-9 {
			t.Fatalf("step %d: losses diverged (%g vs %g)", step, la, lb)
		}
	}
	pa, pb := a.Net.Params(), b.Net.Params()
	for i := range pa {
		if d := pa[i].Data.MaxAbsDiff(pb[i].Data); d > 1e-9 {
			t.Errorf("%s: parameters diverged by %g after 3 steps", pa[i].Name, d)
		}
	}
}

// TestTrainingConverges is the Fig. 6 substitute in miniature: both BN
// (conventional) and GN+MBS (serialized) reach high accuracy on the
// synthetic dataset, and the no-norm control trails them.
func TestTrainingConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := synth.DefaultConfig()
	cfg.Samples = 256
	data := synth.Generate(cfg)
	train, val := data.Split(0.75)

	runs := []struct {
		name string
		norm NormKind
		mbs  bool
	}{
		{"BN-conventional", NormBatch, false},
		{"GN-MBS", NormGroup, true},
	}
	acc := map[string]float64{}
	for _, run := range runs {
		rng := rand.New(rand.NewSource(9))
		m := BuildSmallCNN(rng, cfg.Channels, cfg.Size, cfg.Classes, run.norm, 8)
		opt := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
		batch := 32
		for epoch := 0; epoch < 12; epoch++ {
			train.Shuffle(int64(100 + epoch))
			for from := 0; from+batch <= train.X.Shape[0]; from += batch {
				x, labels := train.Batch(from, from+batch)
				if run.mbs {
					m.TrainStepMBS(x, labels, 5, opt)
				} else {
					m.TrainStepFull(x, labels, opt)
				}
			}
		}
		acc[run.name] = m.Evaluate(val.X, val.Labels)
		if acc[run.name] < 0.75 {
			t.Errorf("%s: validation accuracy %.2f, want > 0.75", run.name, acc[run.name])
		}
	}
	// BN and GN+MBS should land in the same ballpark (paper: 76.2% vs
	// 76.0% on ImageNet).
	if diff := math.Abs(acc["BN-conventional"] - acc["GN-MBS"]); diff > 0.15 {
		t.Errorf("BN (%.2f) and GN+MBS (%.2f) accuracy gap %.2f too large",
			acc["BN-conventional"], acc["GN-MBS"], diff)
	}
}

func TestPreActMeanRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := BuildSmallCNN(rng, 3, 16, 4, NormGroup, 4)
	x := tensor.New(4, 3, 16, 16)
	x.Randn(rng, 1)
	m.Net.Forward(x, true)
	for _, l := range m.NormLayers() {
		mean := PreActMean(l)
		if math.IsNaN(mean) {
			t.Error("pre-activation mean not recorded")
		}
		// Normalized outputs (gamma=1, beta=0) have near-zero mean.
		if math.Abs(mean) > 0.5 {
			t.Errorf("pre-activation mean %g implausibly far from 0", mean)
		}
	}
}
