package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits [N, K] with integer labels, returning the loss and dLogits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	grad := tensor.New(logits.Shape[0], logits.Shape[1])
	return softmaxCrossEntropyInto(grad, logits, labels), grad
}

// softmaxCrossEntropyInto writes dLogits into a preallocated grad tensor
// and returns the loss (the buffer-reusing path of the GEMM engine).
func softmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d samples", len(labels), n))
	}
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logZ := math.Log(sum) + maxv
		loss += logZ - row[labels[i]]
		inv := 1.0 / float64(n)
		for j := 0; j < k; j++ {
			p := math.Exp(row[j] - logZ)
			g := p
			if j == labels[i] {
				g -= 1
			}
			grad.Data[i*k+j] = g * inv
		}
	}
	return loss / float64(n)
}

// SGD is stochastic gradient descent with momentum and weight decay
// (Sutskever-style, as used for the paper's Fig. 6 training runs).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
}

// Step applies one update to every parameter and leaves gradients intact
// (callers zero them at the start of the next accumulation).
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i := range p.Data.Data {
			g := p.Grad.Data[i] + o.WeightDecay*p.Data.Data[i]
			p.vel.Data[i] = o.Momentum*p.vel.Data[i] - o.LR*g
			p.Data.Data[i] += p.vel.Data[i]
		}
	}
}

// Model wraps a Sequential with its classifier head conveniences.
type Model struct {
	Net *Sequential

	params   []*Param       // memoized: Sequential.Params allocates per call
	lossGrad *tensor.Tensor // reused dLogits buffer (GEMM engine)
	fp16     []*Linear      // layers on the fp16-weight path (see fp16.go)
	mbs      *mbsExec       // grouped MBS executor (see mbsexec.go), nil = off
}

// Params returns the model's parameters, memoized — the layer structure is
// fixed after construction, so the hot training loop shouldn't rebuild the
// slice every step.
func (m *Model) Params() []*Param {
	if m.params == nil {
		m.params = m.Net.Params()
	}
	return m.params
}

// Loss runs a forward pass and the loss on a full batch.
func (m *Model) Loss(x *tensor.Tensor, labels []int, train bool) (float64, *tensor.Tensor) {
	logits := m.Net.Forward(x, train)
	if reuseBuffers() {
		grad := ensure2(&m.lossGrad, logits.Shape[0], logits.Shape[1])
		return softmaxCrossEntropyInto(grad, logits, labels), grad
	}
	return SoftmaxCrossEntropy(logits, labels)
}

// zeroGrads clears the memoized parameter gradients.
func (m *Model) zeroGrads() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// TrainStepFull runs one conventional training step: the entire mini-batch
// propagates through every layer together (the paper's baseline flow).
// Returns the loss.
func (m *Model) TrainStepFull(x *tensor.Tensor, labels []int, opt *SGD) float64 {
	m.zeroGrads()
	loss, dlogits := m.Loss(x, labels, true)
	m.Net.Backward(dlogits)
	opt.Step(m.Params())
	m.refreshFP16()
	return loss
}

// TrainStepMBS runs one MBS training step: the mini-batch is serialized
// into sub-batches of at most subBatch samples; each sub-batch runs its own
// forward and backward pass and parameter gradients accumulate across
// sub-batches (the paper's "Data Synchronization" rule). The parameter
// update happens once, after all sub-batches — preserving the original
// synchronization points of the mini-batch.
//
// With GroupNorm (per-sample statistics) this computes exactly the same
// gradients as TrainStepFull; with BatchNorm it silently changes the
// statistics, which is why the paper adapts GN for MBS.
func (m *Model) TrainStepMBS(x *tensor.Tensor, labels []int, subBatch int, opt *SGD) float64 {
	n := x.Shape[0]
	if subBatch <= 0 || subBatch > n {
		subBatch = n
	}
	m.zeroGrads()
	if m.mbs.matches(x, subBatch) {
		loss := m.mbs.accumulate(x, labels)
		opt.Step(m.Params())
		m.refreshFP16()
		return loss
	}
	var loss float64
	for from := 0; from < n; from += subBatch {
		to := from + subBatch
		if to > n {
			to = n
		}
		xs := tensor.SliceBatch(x, from, to)
		ls := labels[from:to]
		subLoss, dlogits := m.Loss(xs, ls, true)
		// The loss averages over the sub-batch; re-scale so that gradient
		// contributions accumulate to the full-batch mean.
		scale := float64(to-from) / float64(n)
		dlogits.Scale(scale)
		m.Net.Backward(dlogits)
		loss += subLoss * scale
	}
	opt.Step(m.Params())
	m.refreshFP16()
	return loss
}

// AccumulateGradsFull computes full-batch gradients without updating
// parameters (test hook for the equivalence property).
func (m *Model) AccumulateGradsFull(x *tensor.Tensor, labels []int) float64 {
	m.zeroGrads()
	loss, dlogits := m.Loss(x, labels, true)
	m.Net.Backward(dlogits)
	return loss
}

// AccumulateGradsMBS computes MBS-serialized gradients without updating
// parameters (test hook for the equivalence property).
func (m *Model) AccumulateGradsMBS(x *tensor.Tensor, labels []int, subBatch int) float64 {
	n := x.Shape[0]
	m.zeroGrads()
	if m.mbs.matches(x, subBatch) {
		return m.mbs.accumulate(x, labels)
	}
	var loss float64
	for from := 0; from < n; from += subBatch {
		to := from + subBatch
		if to > n {
			to = n
		}
		xs := tensor.SliceBatch(x, from, to)
		subLoss, dlogits := m.Loss(xs, labels[from:to], true)
		scale := float64(to-from) / float64(n)
		dlogits.Scale(scale)
		m.Net.Backward(dlogits)
		loss += subLoss * scale
	}
	return loss
}

// Evaluate returns classification accuracy on a labeled set.
func (m *Model) Evaluate(x *tensor.Tensor, labels []int) float64 {
	logits := m.Net.Forward(x, false)
	n, k := logits.Shape[0], logits.Shape[1]
	correct := 0
	for i := 0; i < n; i++ {
		best, bi := logits.Data[i*k], 0
		for j := 1; j < k; j++ {
			if v := logits.Data[i*k+j]; v > best {
				best, bi = v, j
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// NormKind selects the normalization layer of a model.
type NormKind int

const (
	// NormBatch uses BatchNorm2D (the conventional baseline).
	NormBatch NormKind = iota
	// NormGroup uses GroupNorm (the MBS-compatible choice).
	NormGroup
	// NormNone omits normalization (Fig. 6's left panel).
	NormNone
)

func (k NormKind) String() string {
	switch k {
	case NormBatch:
		return "BN"
	case NormGroup:
		return "GN"
	case NormNone:
		return "none"
	default:
		return "NormKind?"
	}
}

// NormLayers returns the normalization layers of a model, in depth order
// (Fig. 6 plots the first and last of these).
func (m *Model) NormLayers() []Layer {
	var out []Layer
	for _, l := range m.Net.Layers {
		switch l.(type) {
		case *BatchNorm2D, *GroupNorm:
			out = append(out, l)
		}
	}
	return out
}

// PreActMean extracts the recorded pre-activation mean of a norm layer.
func PreActMean(l Layer) float64 {
	switch v := l.(type) {
	case *BatchNorm2D:
		return v.LastPreActMean
	case *GroupNorm:
		return v.LastPreActMean
	default:
		return math.NaN()
	}
}

// BuildMLP builds a fully connected classifier over flattened [N, in]
// inputs: Linear+ReLU per hidden width, then a linear head. FC stacks are
// the paper's bandwidth-bound extreme (AlexNet's classifier layers dominate
// its weight traffic), which makes this the model where batched inference
// has the most on-chip reuse to win back.
func BuildMLP(rng *rand.Rand, in int, hidden []int, classes int) *Model {
	var layers []Layer
	c := in
	for i, h := range hidden {
		layers = append(layers, NewLinear(fmt.Sprintf("fc%d", i+1), rng, c, h), &ReLU{})
		c = h
	}
	layers = append(layers, NewLinear("head", rng, c, classes))
	return &Model{Net: &Sequential{Layers: layers}}
}

// BuildSmallCNN builds the Fig. 6 substitute classifier for inC x size x
// size inputs and `classes` outputs:
//
//	conv3x3(16) norm relu → conv3x3/2(32) norm relu →
//	conv3x3/2(64) norm relu → GAP → linear(classes)
//
// The structure mirrors a ResNet stem + stages at laptop scale; norm
// selects BN, GN (8 groups) or none.
func BuildSmallCNN(rng *rand.Rand, inC, size, classes int, norm NormKind, gnGroups int) *Model {
	widths := []int{16, 32, 64}
	var layers []Layer
	c := inC
	for i, w := range widths {
		stride := 2
		if i == 0 {
			stride = 1
		}
		layers = append(layers, NewConv2D(fmt.Sprintf("conv%d", i+1), rng, c, w, 3, stride, 1))
		switch norm {
		case NormBatch:
			layers = append(layers, NewBatchNorm2D(fmt.Sprintf("bn%d", i+1), w))
		case NormGroup:
			layers = append(layers, NewGroupNorm(fmt.Sprintf("gn%d", i+1), w, gnGroups))
		}
		layers = append(layers, &ReLU{})
		c = w
	}
	layers = append(layers, &GlobalAvgPool{})
	layers = append(layers, NewLinear("fc", rng, c, classes))
	return &Model{Net: &Sequential{Layers: layers}}
}
