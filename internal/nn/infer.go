// Inference-only forward path. A Predictor compiles a trained Model into a
// fixed pipeline of fused ops for serving: no gradient or activation
// caching, weights snapshotted (classifier weights packed once into fp16
// panel buffers, eval-mode BatchNorm folded into the preceding
// convolution), ReLU folded into the producing op's epilogue, and all
// inter-op activations stored in half precision (internal/f16) so the
// steady-state memory traffic between layers is 2 bytes per element.
// Compute stays float64 with ascending-order accumulation, so outputs are
// deterministic and independent of how requests were micro-batched
// together.
//
// Every buffer is preallocated for the compile-time maximum batch, so a
// warm Predictor performs zero steady-state heap allocations (pinned by
// TestPredictorAllocFree). A Predictor is NOT safe for concurrent use —
// the serving layer (internal/infer) owns one per dispatch loop.

package nn

import (
	"fmt"
	"math"

	"repro/internal/f16"
	"repro/internal/tensor"
)

// inferOp is one stage of a compiled inference pipeline: consume n samples
// of fp16 activations, produce the op's persistent fp16 output buffer.
type inferOp interface {
	forward(n int, in []f16.F16) []f16.F16
	outPer() int // per-sample output elements
}

// batchViews is a tensor backing array plus one cached header per batch
// size, so steady-state inference never rebuilds tensor headers.
type batchViews struct {
	data  []float64
	shape []int // per-sample shape
	per   int
	views []*tensor.Tensor
}

func newBatchViews(maxBatch int, shape ...int) *batchViews {
	per := 1
	for _, d := range shape {
		per *= d
	}
	return &batchViews{
		data:  make([]float64, maxBatch*per),
		shape: shape,
		per:   per,
		views: make([]*tensor.Tensor, maxBatch),
	}
}

// at returns the cached [n, shape...] header over the backing array.
func (v *batchViews) at(n int) *tensor.Tensor {
	if t := v.views[n-1]; t != nil {
		return t
	}
	t := tensor.FromSlice(v.data[:n*v.per], append([]int{n}, v.shape...)...)
	v.views[n-1] = t
	return t
}

// Predictor is a Model compiled for batched inference (see the package
// comment at the top of this file).
type Predictor struct {
	maxBatch int
	inShape  []int
	inPer    int
	classes  int
	ops      []inferOp

	in     []f16.F16
	logits *batchViews

	packedBytes int64
	packErr     float64
}

// NewPredictor compiles m for inference on inputs of per-sample shape
// inShape, serving at most maxBatch samples per Forward call. The model's
// weights are snapshotted at compile time; training m afterwards does not
// affect the predictor.
func NewPredictor(m *Model, inShape []int, maxBatch int) (*Predictor, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("nn: predictor max batch %d", maxBatch)
	}
	p := &Predictor{maxBatch: maxBatch, inShape: append([]int(nil), inShape...)}
	p.inPer = 1
	for _, d := range inShape {
		p.inPer *= d
	}
	layers := m.Net.Layers
	shape := p.inShape
	for i := 0; i < len(layers); i++ {
		var op inferOp
		var err error
		switch l := layers[i].(type) {
		case *Conv2D:
			var bn *BatchNorm2D
			if j := i + 1; j < len(layers) {
				if b, ok := layers[j].(*BatchNorm2D); ok {
					bn = b // eval-mode BN is per-channel affine: fold it
					i = j
				}
			}
			op, shape, err = newConvOp(l, bn, shape, maxBatch, p.fuseReLU(layers, &i))
		case *Linear:
			op, shape, err = p.newLinearOp(l, shape, maxBatch, p.fuseReLU(layers, &i))
		case *GroupNorm:
			op, err = newGroupNormOp(l, shape, maxBatch, p.fuseReLU(layers, &i))
		case *BatchNorm2D:
			op, err = newBatchNormOp(l, shape, maxBatch, p.fuseReLU(layers, &i))
		case *ReLU:
			op = newReluOp(shape, maxBatch)
		case *MaxPool2:
			op, shape, err = newMaxPoolOp(l, shape, maxBatch)
		case *GlobalAvgPool:
			op, shape, err = newGapOp(shape, maxBatch)
		default:
			err = fmt.Errorf("nn: predictor cannot compile layer type %T", l)
		}
		if err != nil {
			return nil, err
		}
		p.ops = append(p.ops, op)
	}
	if len(p.ops) == 0 {
		return nil, fmt.Errorf("nn: predictor compiled an empty model")
	}
	last := p.ops[len(p.ops)-1]
	p.classes = last.outPer()
	p.in = make([]f16.F16, maxBatch*p.inPer)
	p.logits = newBatchViews(maxBatch, p.classes)
	return p, nil
}

// fuseReLU consumes a ReLU immediately following layer *i, returning whether
// the producing op should apply it in its epilogue.
func (p *Predictor) fuseReLU(layers []Layer, i *int) bool {
	if j := *i + 1; j < len(layers) {
		if _, ok := layers[j].(*ReLU); ok {
			*i = j
			return true
		}
	}
	return false
}

// MaxBatch returns the largest batch one Forward call accepts.
func (p *Predictor) MaxBatch() int { return p.maxBatch }

// Classes returns the per-sample output width.
func (p *Predictor) Classes() int { return p.classes }

// InputShape returns the per-sample input shape.
func (p *Predictor) InputShape() []int { return append([]int(nil), p.inShape...) }

// PackedBytes returns the total fp16 packed-weight storage, and the largest
// absolute quantization error packing introduced.
func (p *Predictor) PackedBytes() (int64, float64) { return p.packedBytes, p.packErr }

// Forward runs the compiled pipeline on x ([n, inShape...], n <= MaxBatch)
// and returns the [n, classes] logits. The returned tensor aliases the
// predictor's persistent output buffer; it is valid until the next call.
func (p *Predictor) Forward(x *tensor.Tensor) *tensor.Tensor {
	n := x.Shape[0]
	if n < 1 || n > p.maxBatch {
		panic(fmt.Sprintf("nn: predictor batch %d, max %d", n, p.maxBatch))
	}
	if x.Len() != n*p.inPer {
		panic(fmt.Sprintf("nn: predictor input %v, want per-sample shape %v", x.Shape, p.inShape))
	}
	cur := p.in[:n*p.inPer]
	f16.EncodeSlice(cur, x.Data)
	for _, op := range p.ops {
		cur = op.forward(n, cur)[:n*op.outPer()]
	}
	out := p.logits.at(n)
	f16.DecodeSlice(out.Data, cur)
	return out
}

// --- conv (+ folded BN) (+ fused ReLU) --------------------------------------

type convOp struct {
	spec         tensor.ConvSpec
	weight, bias *tensor.Tensor
	relu         bool
	in, y        *batchViews
	out          []f16.F16
	per          int
}

func newConvOp(l *Conv2D, bn *BatchNorm2D, shape []int, maxBatch int, relu bool) (*convOp, []int, error) {
	if len(shape) != 3 || shape[0] != l.Spec.InC {
		return nil, nil, fmt.Errorf("nn: conv %s over per-sample shape %v (want [%d h w])", l.Weight.Name, shape, l.Spec.InC)
	}
	h, w := shape[1], shape[2]
	oh, ow := l.Spec.OutDims(h, w)
	o := &convOp{
		spec:   l.Spec,
		weight: l.Weight.Data.Clone(),
		bias:   l.Bias.Data.Clone(),
		relu:   relu,
		in:     newBatchViews(maxBatch, l.Spec.InC, h, w),
		y:      newBatchViews(maxBatch, l.Spec.OutC, oh, ow),
		per:    l.Spec.OutC * oh * ow,
	}
	o.out = make([]f16.F16, maxBatch*o.per)
	if bn != nil {
		if bn.C != l.Spec.OutC {
			return nil, nil, fmt.Errorf("nn: BN over %d channels after conv with %d", bn.C, l.Spec.OutC)
		}
		// Eval-mode BN is y = a_c*x + b_c with a_c = gamma/sqrt(var+eps),
		// b_c = beta - a_c*mean: scale each output-channel's weights and
		// rewrite the bias, and the norm costs nothing at serve time.
		k := l.Spec.InC * l.Spec.KH * l.Spec.KW
		for oc := 0; oc < l.Spec.OutC; oc++ {
			a := bn.Gamma.Data.Data[oc] / math.Sqrt(bn.RunningVar[oc]+normEps)
			row := o.weight.Data[oc*k : (oc+1)*k]
			for j := range row {
				row[j] *= a
			}
			o.bias.Data[oc] = a*(o.bias.Data[oc]-bn.RunningMean[oc]) + bn.Beta.Data.Data[oc]
		}
	}
	return o, []int{l.Spec.OutC, oh, ow}, nil
}

func (o *convOp) outPer() int { return o.per }

func (o *convOp) forward(n int, in []f16.F16) []f16.F16 {
	x := o.in.at(n)
	f16.DecodeSlice(x.Data, in[:len(x.Data)])
	y := o.y.at(n)
	tensor.Conv2DFusedInto(y, x, o.weight, o.bias, o.spec, o.relu)
	f16.EncodeSlice(o.out[:n*o.per], y.Data)
	return o.out
}

// --- linear (packed fp16 weights) (+ fused ReLU) -----------------------------

type linearOp struct {
	pb    *tensor.PackedF16
	bias  []float64
	relu  bool
	inPer int
	a, c  []float64
	out   []f16.F16
}

func (p *Predictor) newLinearOp(l *Linear, shape []int, maxBatch int, relu bool) (*linearOp, []int, error) {
	if len(shape) != 1 || shape[0] != l.In {
		return nil, nil, fmt.Errorf("nn: linear %s over per-sample shape %v (want [%d])", l.Weight.Name, shape, l.In)
	}
	pb := tensor.PackF16(l.Weight.Data)
	p.packedBytes += pb.Bytes()
	if pb.MaxErr > p.packErr {
		p.packErr = pb.MaxErr
	}
	o := &linearOp{
		pb:    pb,
		bias:  append([]float64(nil), l.Bias.Data.Data...),
		relu:  relu,
		inPer: l.In,
		a:     make([]float64, maxBatch*l.In),
		c:     make([]float64, maxBatch*l.Out),
		out:   make([]f16.F16, maxBatch*l.Out),
	}
	return o, []int{l.Out}, nil
}

func (o *linearOp) outPer() int { return o.pb.N }

func (o *linearOp) forward(n int, in []f16.F16) []f16.F16 {
	a := o.a[:n*o.inPer]
	f16.DecodeSlice(a, in[:len(a)])
	tensor.MatMulPackedF16(n, a, o.pb, o.c, o.bias, o.relu, o.out)
	return o.out
}

// --- group norm (eval) (+ fused ReLU) ----------------------------------------

type groupNormOp struct {
	c, groups, hw int
	gamma, beta   []float64
	relu          bool
	x             []float64
	out           []f16.F16
}

func newGroupNormOp(l *GroupNorm, shape []int, maxBatch int, relu bool) (*groupNormOp, error) {
	if len(shape) != 3 || shape[0] != l.C {
		return nil, fmt.Errorf("nn: group norm over per-sample shape %v (want [%d h w])", shape, l.C)
	}
	hw := shape[1] * shape[2]
	return &groupNormOp{
		c: l.C, groups: l.Groups, hw: hw,
		gamma: append([]float64(nil), l.Gamma.Data.Data...),
		beta:  append([]float64(nil), l.Beta.Data.Data...),
		relu:  relu,
		x:     make([]float64, maxBatch*l.C*hw),
		out:   make([]f16.F16, maxBatch*l.C*hw),
	}, nil
}

func (o *groupNormOp) outPer() int { return o.c * o.hw }

func (o *groupNormOp) forward(n int, in []f16.F16) []f16.F16 {
	per := o.c * o.hw
	x := o.x[:n*per]
	f16.DecodeSlice(x, in[:len(x)])
	cpg := o.c / o.groups
	cnt := float64(cpg * o.hw)
	for ni := 0; ni < n; ni++ {
		for gi := 0; gi < o.groups; gi++ {
			gx := x[ni*per+gi*cpg*o.hw : ni*per+(gi+1)*cpg*o.hw]
			var sum float64
			for _, v := range gx {
				sum += v
			}
			mean := sum / cnt
			var vsum float64
			for _, v := range gx {
				d := v - mean
				vsum += d * d
			}
			inv := 1 / math.Sqrt(vsum/cnt+normEps)
			for ci := 0; ci < cpg; ci++ {
				ch := gi*cpg + ci
				g, be := o.gamma[ch], o.beta[ch]
				row := gx[ci*o.hw : (ci+1)*o.hw]
				dst := o.out[ni*per+ch*o.hw : ni*per+(ch+1)*o.hw]
				for j, v := range row {
					y := g*(v-mean)*inv + be
					if o.relu && y <= 0 {
						y = 0
					}
					dst[j] = f16.FromFloat64(y)
				}
			}
		}
	}
	return o.out
}

// --- standalone batch norm (eval) (+ fused ReLU) -----------------------------

type batchNormOp struct {
	c, hw        int
	scale, shift []float64
	relu         bool
	out          []f16.F16
}

func newBatchNormOp(l *BatchNorm2D, shape []int, maxBatch int, relu bool) (*batchNormOp, error) {
	if len(shape) != 3 || shape[0] != l.C {
		return nil, fmt.Errorf("nn: batch norm over per-sample shape %v (want [%d h w])", shape, l.C)
	}
	hw := shape[1] * shape[2]
	o := &batchNormOp{
		c: l.C, hw: hw,
		scale: make([]float64, l.C),
		shift: make([]float64, l.C),
		relu:  relu,
		out:   make([]f16.F16, maxBatch*l.C*hw),
	}
	for ci := 0; ci < l.C; ci++ {
		a := l.Gamma.Data.Data[ci] / math.Sqrt(l.RunningVar[ci]+normEps)
		o.scale[ci] = a
		o.shift[ci] = l.Beta.Data.Data[ci] - a*l.RunningMean[ci]
	}
	return o, nil
}

func (o *batchNormOp) outPer() int { return o.c * o.hw }

func (o *batchNormOp) forward(n int, in []f16.F16) []f16.F16 {
	per := o.c * o.hw
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < o.c; ci++ {
			a, b := o.scale[ci], o.shift[ci]
			src := in[ni*per+ci*o.hw : ni*per+(ci+1)*o.hw]
			dst := o.out[ni*per+ci*o.hw : ni*per+(ci+1)*o.hw]
			for j, h := range src {
				y := a*h.Float64() + b
				if o.relu && y <= 0 {
					y = 0
				}
				dst[j] = f16.FromFloat64(y)
			}
		}
	}
	return o.out
}

// --- standalone ReLU ---------------------------------------------------------

type reluOp struct {
	per int
	out []f16.F16
}

func newReluOp(shape []int, maxBatch int) *reluOp {
	per := 1
	for _, d := range shape {
		per *= d
	}
	return &reluOp{per: per, out: make([]f16.F16, maxBatch*per)}
}

func (o *reluOp) outPer() int { return o.per }

func (o *reluOp) forward(n int, in []f16.F16) []f16.F16 {
	for i, h := range in[:n*o.per] {
		if h&0x8000 != 0 { // sign bit: negatives (and -0) clamp to +0
			h = 0
		}
		o.out[i] = h
	}
	return o.out
}

// --- max pool ----------------------------------------------------------------

type maxPoolOp struct {
	k, stride int
	in, y     *batchViews
	arg       []int
	out       []f16.F16
	per       int
}

func newMaxPoolOp(l *MaxPool2, shape []int, maxBatch int) (*maxPoolOp, []int, error) {
	if len(shape) != 3 {
		return nil, nil, fmt.Errorf("nn: max pool over per-sample shape %v", shape)
	}
	c, h, w := shape[0], shape[1], shape[2]
	oh := (h-l.K)/l.Stride + 1
	ow := (w-l.K)/l.Stride + 1
	o := &maxPoolOp{
		k: l.K, stride: l.Stride,
		in:  newBatchViews(maxBatch, c, h, w),
		y:   newBatchViews(maxBatch, c, oh, ow),
		arg: make([]int, maxBatch*c*oh*ow),
		per: c * oh * ow,
	}
	o.out = make([]f16.F16, maxBatch*o.per)
	return o, []int{c, oh, ow}, nil
}

func (o *maxPoolOp) outPer() int { return o.per }

func (o *maxPoolOp) forward(n int, in []f16.F16) []f16.F16 {
	x := o.in.at(n)
	f16.DecodeSlice(x.Data, in[:len(x.Data)])
	y := o.y.at(n)
	tensor.MaxPool2DInto(y, o.arg[:n*o.per], x, o.k, o.stride)
	f16.EncodeSlice(o.out[:n*o.per], y.Data)
	return o.out
}

// --- global average pool -----------------------------------------------------

type gapOp struct {
	c, hw int
	out   []f16.F16
}

func newGapOp(shape []int, maxBatch int) (*gapOp, []int, error) {
	if len(shape) != 3 {
		return nil, nil, fmt.Errorf("nn: global avg pool over per-sample shape %v", shape)
	}
	c, hw := shape[0], shape[1]*shape[2]
	return &gapOp{c: c, hw: hw, out: make([]f16.F16, maxBatch*c)}, []int{c}, nil
}

func (o *gapOp) outPer() int { return o.c }

func (o *gapOp) forward(n int, in []f16.F16) []f16.F16 {
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < o.c; ci++ {
			src := in[(ni*o.c+ci)*o.hw : (ni*o.c+ci+1)*o.hw]
			var sum float64
			for _, h := range src {
				sum += h.Float64()
			}
			o.out[ni*o.c+ci] = f16.FromFloat64(sum / float64(o.hw))
		}
	}
	return o.out
}
