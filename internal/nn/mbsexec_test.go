package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// minGroupBudget finds the smallest power-of-two-scaled budget the planner
// accepts for the model — the plan with the most groups the model admits.
func minGroupBudget(t *testing.T, m *Model, shape []int, sub int) int64 {
	t.Helper()
	budget := int64(32 << 10)
	for budget < 1<<40 {
		if _, err := m.PlanMBS(shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: budget}); err == nil {
			return budget
		}
		budget *= 2
	}
	t.Fatal("no budget admits a plan")
	return 0
}

// grabGrads snapshots all parameter gradients.
func grabGrads(m *Model) map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{}
	for _, p := range m.Params() {
		out[p.Name] = p.Grad.Clone()
	}
	return out
}

// expectBitIdentical compares a model's current grads against a snapshot
// with exact float equality.
func expectBitIdentical(t *testing.T, m *Model, ref map[string]*tensor.Tensor, ctx string) {
	t.Helper()
	for _, p := range m.Params() {
		want := ref[p.Name]
		for i := range p.Grad.Data {
			if p.Grad.Data[i] != want.Data[i] {
				t.Fatalf("%s: %s gradient not bit-identical at %d (%g vs %g)",
					ctx, p.Name, i, p.Grad.Data[i], want.Data[i])
			}
		}
	}
}

// TestGroupedMBSBitIdenticalToLayerByLayer is the executor's core contract:
// for every group count the budget can force — including ragged sub-batches
// — the grouped executor reproduces the legacy layer-by-layer MBS gradients
// and loss to the last bit on a GroupNorm model.
func TestGroupedMBSBitIdenticalToLayerByLayer(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	m, x, labels := buildTestModel(31)
	shape := x.Shape
	const sub = 3 // batch 8 → spans 3,3,2 (ragged)

	lossRef := m.AccumulateGradsMBS(x, labels, sub)
	ref := grabGrads(m)

	minBudget := minGroupBudget(t, m, shape, sub)
	budgets := []int64{minBudget, 4 * minBudget, 1 << 30}
	seen := map[int]bool{}
	for _, budget := range budgets {
		plan, err := m.PlanMBS(shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		seen[len(plan.Groups)] = true
		if err := m.SetMBSPlan(plan); err != nil {
			t.Fatalf("budget %d: SetMBSPlan: %v", budget, err)
		}
		for step := 0; step < 2; step++ { // second step exercises warm arenas
			loss := m.AccumulateGradsMBS(x, labels, sub)
			if loss != lossRef {
				t.Fatalf("budget %d (groups=%d) step %d: loss %g != legacy %g",
					budget, len(plan.Groups), step, loss, lossRef)
			}
			expectBitIdentical(t, m, ref, plan.Summary())
		}
		m.ClearMBSPlan()
	}
	if len(seen) < 2 {
		t.Fatalf("budget sweep produced only group counts %v, want at least 2 distinct", seen)
	}
	if !seen[1] {
		t.Fatal("1<<30 budget should yield a single group")
	}
}

// TestGroupedMBSPipelineBitIdentical: double-buffered im2col prepacking must
// not change a single bit, for single- and multi-group plans, across thread
// counts.
func TestGroupedMBSPipelineBitIdentical(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	defer tensor.SetThreads(tensor.SetThreads(1))
	for _, threads := range []int{1, 3} {
		tensor.SetThreads(threads)
		m, x, labels := buildTestModel(32)
		const sub = 3
		lossRef := m.AccumulateGradsMBS(x, labels, sub)
		ref := grabGrads(m)
		for _, budget := range []int64{minGroupBudget(t, m, x.Shape, sub), 1 << 30} {
			plan, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: budget, Pipeline: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.SetMBSPlan(plan); err != nil {
				t.Fatal(err)
			}
			if loss := m.AccumulateGradsMBS(x, labels, sub); loss != lossRef {
				t.Fatalf("threads=%d groups=%d: pipelined loss %g != %g", threads, len(plan.Groups), loss, lossRef)
			}
			expectBitIdentical(t, m, ref, "pipelined "+plan.Summary())
			m.ClearMBSPlan()
		}
	}
}

// TestGroupedMBSResidualEquivalence extends the repo's central equivalence
// tests to residual models: under GroupNorm the grouped executor matches the
// legacy MBS path bit-for-bit and the full-batch gradients to 1e-9, for every
// budget.
func TestGroupedMBSResidualEquivalence(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	rng := rand.New(rand.NewSource(33))
	m := BuildSmallResNet(rng, 3, 16, 8, NormGroup, 8)
	x := tensor.New(8, 3, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	const sub = 3

	lossFull := m.AccumulateGradsFull(x, labels)
	refFull := grabGrads(m)
	lossMBS := m.AccumulateGradsMBS(x, labels, sub)
	refMBS := grabGrads(m)
	if math.Abs(lossMBS-lossFull) > 1e-9 {
		t.Fatalf("legacy MBS loss %g vs full %g", lossMBS, lossFull)
	}

	for _, budget := range []int64{minGroupBudget(t, m, x.Shape, sub), 1 << 30} {
		plan, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMBSPlan(plan); err != nil {
			t.Fatal(err)
		}
		loss := m.AccumulateGradsMBS(x, labels, sub)
		if loss != lossMBS {
			t.Fatalf("groups=%d: grouped loss %g != legacy MBS %g", len(plan.Groups), loss, lossMBS)
		}
		expectBitIdentical(t, m, refMBS, plan.Summary())
		for _, p := range m.Params() {
			if d := p.Grad.MaxAbsDiff(refFull[p.Name]); d > 1e-9 {
				t.Errorf("groups=%d: %s differs from full-batch by %g", len(plan.Groups), p.Name, d)
			}
		}
		if math.Abs(loss-lossFull) > 1e-9 {
			t.Errorf("groups=%d: grouped loss %g vs full %g", len(plan.Groups), loss, lossFull)
		}
		m.ClearMBSPlan()
	}
}

// TestGroupedMBSBatchNormStillDiverges is the negative control on the
// grouped executor: BN statistics span the mini-batch, so the grouped
// sub-batch flow must NOT reproduce full-batch gradients.
func TestGroupedMBSBatchNormStillDiverges(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	rng := rand.New(rand.NewSource(34))
	m := BuildSmallResNet(rng, 3, 16, 8, NormBatch, 0)
	x := tensor.New(8, 3, 16, 16)
	x.Randn(rng, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(8)
	}
	m.AccumulateGradsFull(x, labels)
	refFull := grabGrads(m)

	plan, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: 3, BudgetBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMBSPlan(plan); err != nil {
		t.Fatal(err)
	}
	defer m.ClearMBSPlan()
	m.AccumulateGradsMBS(x, labels, 3)
	var maxDiff float64
	for _, p := range m.Params() {
		if d := p.Grad.MaxAbsDiff(refFull[p.Name]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 1e-6 {
		t.Errorf("grouped BN sub-batching unexpectedly matched full batch (max diff %g)", maxDiff)
	}
}

// TestGroupedMBSTrainStepInterleaving: full-batch steps between grouped MBS
// steps resize the layers' persistent buffers, so the executor must
// re-install its arena views — whole optimizer trajectories stay bit-equal
// to the legacy interleaving.
func TestGroupedMBSTrainStepInterleaving(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	a, x, labels := buildTestModel(35)
	b, _, _ := buildTestModel(35)
	const sub = 3
	plan, err := a.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetMBSPlan(plan); err != nil {
		t.Fatal(err)
	}
	defer a.ClearMBSPlan()
	optA := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
	optB := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
	for step := 0; step < 2; step++ {
		la := a.TrainStepMBS(x, labels, sub, optA)
		lb := b.TrainStepMBS(x, labels, sub, optB)
		if la != lb {
			t.Fatalf("step %d: MBS losses diverged (%g vs %g)", step, la, lb)
		}
		if lf, lg := a.TrainStepFull(x, labels, optA), b.TrainStepFull(x, labels, optB); lf != lg {
			t.Fatalf("step %d: full losses diverged (%g vs %g)", step, lf, lg)
		}
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data.Data {
			if pa[i].Data.Data[j] != pb[i].Data.Data[j] {
				t.Fatalf("%s: parameters diverged after interleaved full/MBS steps", pa[i].Name)
			}
		}
	}
}

// TestGroupedMBSFallback: a call that doesn't match the installed plan (other
// sub-batch, other batch size) must fall back to the layer-by-layer path and
// stay correct.
func TestGroupedMBSFallback(t *testing.T) {
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	m, x, labels := buildTestModel(36)
	lossOther := m.AccumulateGradsMBS(x, labels, 4)
	refOther := grabGrads(m)

	plan, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: 3, BudgetBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMBSPlan(plan); err != nil {
		t.Fatal(err)
	}
	defer m.ClearMBSPlan()
	if loss := m.AccumulateGradsMBS(x, labels, 4); loss != lossOther {
		t.Fatalf("fallback sub=4 loss %g != %g", loss, lossOther)
	}
	expectBitIdentical(t, m, refOther, "fallback")
}

// TestGroupedMBSZeroAlloc is the scratch-arena contract across group
// boundaries (and the whole grouped step): after warm-up, a grouped MBS
// train step — ragged sub-batches, multi-group plan, fp32 and fp16, with and
// without the pipeline — allocates nothing.
func TestGroupedMBSZeroAlloc(t *testing.T) {
	if tensor.RaceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only hold without -race")
	}
	defer tensor.SetEngine(tensor.SetEngine(tensor.EngineGEMM))
	defer tensor.SetThreads(tensor.SetThreads(1))

	cases := []struct {
		name     string
		fp16     bool
		pipeline bool
		budget   int64
	}{
		{"fp32-multigroup", false, false, 0},
		{"fp32-singlegroup", false, false, 1 << 30},
		{"fp32-pipeline", false, true, 0},
		{"fp16-multigroup", true, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, x, labels := buildTestModel(37)
			const sub = 3
			budget := tc.budget
			if budget == 0 {
				budget = 4 * minGroupBudget(t, m, x.Shape, sub)
			}
			plan, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: budget, Pipeline: tc.pipeline})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.SetMBSPlan(plan); err != nil {
				t.Fatal(err)
			}
			defer m.ClearMBSPlan()
			if tc.fp16 {
				m.SetFP16Weights(true)
			}
			opt := &SGD{LR: 0.01, Momentum: 0.9}
			m.TrainStepMBS(x, labels, sub, opt) // warm arenas + pooled scratch
			m.TrainStepMBS(x, labels, sub, opt)
			if allocs := testing.AllocsPerRun(5, func() { m.TrainStepMBS(x, labels, sub, opt) }); allocs != 0 {
				t.Errorf("grouped MBS train step (%s, groups=%d) allocates %v/op after warm-up, want 0",
					tc.name, len(plan.Groups), allocs)
			}
		})
	}
}

// TestMBSPlanShapes covers the planner itself: grouping granularity tracks
// the budget, the peak planned arena stays strictly below the unplanned
// footprint, metadata lines carry the plan, and an impossible budget is a
// hard error naming the layer.
func TestMBSPlanShapes(t *testing.T) {
	m, x, _ := buildTestModel(38)
	const sub = 3

	big, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Groups) != 1 {
		t.Fatalf("1GiB budget: %d groups, want 1", len(big.Groups))
	}
	small, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: minGroupBudget(t, m, x.Shape, sub)})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Groups) <= len(big.Groups) {
		t.Fatalf("minimal budget produced %d groups, want more than %d", len(small.Groups), len(big.Groups))
	}
	for _, p := range []*MBSPlan{big, small} {
		if p.PeakArenaBytes <= 0 || p.PeakArenaBytes >= p.FullFootprintBytes {
			t.Errorf("peak arena %d not strictly below unplanned footprint %d", p.PeakArenaBytes, p.FullFootprintBytes)
		}
		for _, g := range p.Groups {
			if g.WorkingSetBytes > p.BudgetBytes {
				t.Errorf("group %d..%d working set %d over budget %d", g.First, g.Last, g.WorkingSetBytes, p.BudgetBytes)
			}
		}
		var sb strings.Builder
		p.WriteTable(&sb)
		if !strings.Contains(sb.String(), "group 0: layers 0..") {
			t.Errorf("plan table missing group lines:\n%s", sb.String())
		}
		if !strings.Contains(p.MetricsLine(), "mbs-plan: groups=") {
			t.Errorf("metrics line malformed: %s", p.MetricsLine())
		}
	}
	// boundary stash only exists between groups
	if big.BoundaryBytes != 0 {
		t.Errorf("single-group plan reports boundary bytes %d, want 0", big.BoundaryBytes)
	}
	if small.BoundaryBytes <= 0 {
		t.Error("multi-group plan reports no boundary stash")
	}

	if _, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: sub, BudgetBytes: 1024}); err == nil {
		t.Fatal("1KiB budget should be rejected")
	} else if !strings.Contains(err.Error(), "alone needs") {
		t.Errorf("oversized-layer error should name the layer and sizes: %v", err)
	}

	// autodetected budget: plans must still form
	auto, err := m.PlanMBS(x.Shape, MBSPlanConfig{SubBatch: sub})
	if err != nil {
		t.Fatal(err)
	}
	if !auto.BudgetAuto || auto.BudgetBytes <= 0 {
		t.Errorf("auto budget not recorded: %+v", auto)
	}
}

// TestParseByteSize pins the budget-flag syntax.
func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"1048576": 1 << 20,
		"512K":    512 << 10,
		"8MiB":    8 << 20,
		"2GB":     2 << 30,
		"105M":    105 << 20,
		"64B":     64,
		" 2m ":    2 << 20,
	}
	for in, want := range cases {
		got, err := ParseByteSize(in)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "12Q", "MiB"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) should fail", bad)
		}
	}
	if b, src := DetectCacheBudget(); b <= 0 || src == "" {
		t.Errorf("DetectCacheBudget() = %d, %q", b, src)
	}
}
