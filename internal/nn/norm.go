package nn

import (
	"math"

	"repro/internal/tensor"
)

const normEps = 1e-5

// BatchNorm2D normalizes across the batch and spatial dimensions per
// channel (Ioffe & Szegedy). Its statistics couple every sample in the
// mini-batch, which is exactly why it cannot be serialized by MBS.
type BatchNorm2D struct {
	C            int
	Gamma, Beta  *Param
	Momentum     float64
	RunningMean  []float64
	RunningVar   []float64
	x            *tensor.Tensor
	xhat         *tensor.Tensor
	mean, invStd []float64
	out          outBufs // persistent GEMM-engine buffers
	dx           *tensor.Tensor
	// LastPreActMean records the mean of the normalized output (the
	// "pre-activation mean" curve of Fig. 6's right panels).
	LastPreActMean float64
}

// NewBatchNorm2D builds a BN layer with gamma=1, beta=0.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	g := tensor.New(c)
	g.Fill(1)
	rv := make([]float64, c)
	for i := range rv {
		rv[i] = 1
	}
	return &BatchNorm2D{
		C:           c,
		Gamma:       newParam(name+".gamma", g),
		Beta:        newParam(name+".beta", tensor.New(c)),
		Momentum:    0.9,
		RunningMean: make([]float64, c),
		RunningVar:  rv,
	}
}

// Forward normalizes with batch statistics in training mode and running
// statistics in evaluation mode.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	validateShape(x, 4, "BatchNorm2D")
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	var out *tensor.Tensor
	if reuseBuffers() {
		out = ensureLike(b.out.sel(train), x)
	} else {
		out = tensor.New(x.Shape...)
	}
	if !train {
		for ni := 0; ni < n; ni++ {
			for ci := 0; ci < c; ci++ {
				inv := 1 / math.Sqrt(b.RunningVar[ci]+normEps)
				g, be := b.Gamma.Data.Data[ci], b.Beta.Data.Data[ci]
				for hi := 0; hi < h; hi++ {
					for wi := 0; wi < w; wi++ {
						v := (x.At4(ni, ci, hi, wi) - b.RunningMean[ci]) * inv
						out.Set4(ni, ci, hi, wi, g*v+be)
					}
				}
			}
		}
		return out
	}

	b.x = x
	if reuseBuffers() {
		if len(b.mean) != c {
			b.mean = make([]float64, c)
			b.invStd = make([]float64, c)
		}
		b.xhat = ensureLike(&b.xhat, x)
	} else {
		b.mean = make([]float64, c)
		b.invStd = make([]float64, c)
		b.xhat = tensor.New(x.Shape...)
	}
	cnt := float64(n * h * w)
	for ci := 0; ci < c; ci++ {
		var sum float64
		for ni := 0; ni < n; ni++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					sum += x.At4(ni, ci, hi, wi)
				}
			}
		}
		mean := sum / cnt
		var vsum float64
		for ni := 0; ni < n; ni++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					d := x.At4(ni, ci, hi, wi) - mean
					vsum += d * d
				}
			}
		}
		variance := vsum / cnt
		b.mean[ci] = mean
		b.invStd[ci] = 1 / math.Sqrt(variance+normEps)
		b.RunningMean[ci] = b.Momentum*b.RunningMean[ci] + (1-b.Momentum)*mean
		b.RunningVar[ci] = b.Momentum*b.RunningVar[ci] + (1-b.Momentum)*variance

		g, be := b.Gamma.Data.Data[ci], b.Beta.Data.Data[ci]
		for ni := 0; ni < n; ni++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					xh := (x.At4(ni, ci, hi, wi) - mean) * b.invStd[ci]
					b.xhat.Set4(ni, ci, hi, wi, xh)
					out.Set4(ni, ci, hi, wi, g*xh+be)
				}
			}
		}
	}
	b.LastPreActMean = out.Mean()
	return out
}

// Backward computes BN gradients (standard reduction over batch+spatial).
func (b *BatchNorm2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := dy.Shape[0], dy.Shape[1], dy.Shape[2], dy.Shape[3]
	var dx *tensor.Tensor
	if reuseBuffers() {
		dx = ensureLike(&b.dx, dy) // fully overwritten below
	} else {
		dx = tensor.New(dy.Shape...)
	}
	cnt := float64(n * h * w)
	for ci := 0; ci < c; ci++ {
		var sumDy, sumDyXhat float64
		for ni := 0; ni < n; ni++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					g := dy.At4(ni, ci, hi, wi)
					sumDy += g
					sumDyXhat += g * b.xhat.At4(ni, ci, hi, wi)
				}
			}
		}
		b.Beta.Grad.Data[ci] += sumDy
		b.Gamma.Grad.Data[ci] += sumDyXhat
		gamma := b.Gamma.Data.Data[ci]
		for ni := 0; ni < n; ni++ {
			for hi := 0; hi < h; hi++ {
				for wi := 0; wi < w; wi++ {
					g := dy.At4(ni, ci, hi, wi)
					xh := b.xhat.At4(ni, ci, hi, wi)
					v := gamma * b.invStd[ci] * (g - sumDy/cnt - xh*sumDyXhat/cnt)
					dx.Set4(ni, ci, hi, wi, v)
				}
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// GroupNorm normalizes across channel groups within each sample (Wu & He).
// Because its statistics never cross sample boundaries, serializing the
// mini-batch into sub-batches leaves its computation bit-identical — the
// property MBS relies on (Section 3.1).
type GroupNorm struct {
	C, Groups   int
	Gamma, Beta *Param
	x           *tensor.Tensor
	xhat        *tensor.Tensor
	invStd      []float64 // per (sample, group)
	out         outBufs   // persistent GEMM-engine buffers
	dx          *tensor.Tensor
	// LastPreActMean mirrors BatchNorm2D's Fig. 6 instrumentation.
	LastPreActMean float64
}

// NewGroupNorm builds a GN layer; groups must divide c.
func NewGroupNorm(name string, c, groups int) *GroupNorm {
	if c%groups != 0 {
		panic("nn: GroupNorm groups must divide channels")
	}
	g := tensor.New(c)
	g.Fill(1)
	return &GroupNorm{
		C: c, Groups: groups,
		Gamma: newParam(name+".gamma", g),
		Beta:  newParam(name+".beta", tensor.New(c)),
	}
}

// Forward normalizes each (sample, group) slice independently. All loops
// walk the (sample, group) slices contiguously — same element order as the
// original quadruple loops (bit-identical sums), without the per-element
// NCHW index arithmetic, since a group is a contiguous [cpg*H*W] run.
func (gn *GroupNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	validateShape(x, 4, "GroupNorm")
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	var out *tensor.Tensor
	if reuseBuffers() {
		out = ensureLike(gn.out.sel(train), x)
	} else {
		out = tensor.New(x.Shape...)
	}
	cpg := c / gn.Groups
	hw := h * w
	cnt := float64(cpg * hw)
	if train {
		gn.x = x
		if reuseBuffers() {
			gn.xhat = ensureLike(&gn.xhat, x)
			if len(gn.invStd) != n*gn.Groups {
				gn.invStd = make([]float64, n*gn.Groups)
			}
		} else {
			gn.xhat = tensor.New(x.Shape...)
			gn.invStd = make([]float64, n*gn.Groups)
		}
	}
	for ni := 0; ni < n; ni++ {
		for gi := 0; gi < gn.Groups; gi++ {
			lo := (ni*c + gi*cpg) * hw
			gx := x.Data[lo : lo+cpg*hw]
			var sum float64
			for _, v := range gx {
				sum += v
			}
			mean := sum / cnt
			var vsum float64
			for _, v := range gx {
				d := v - mean
				vsum += d * d
			}
			inv := 1 / math.Sqrt(vsum/cnt+normEps)
			if train {
				gn.invStd[ni*gn.Groups+gi] = inv
			}
			gout := out.Data[lo : lo+cpg*hw]
			if train {
				gxh := gn.xhat.Data[lo : lo+cpg*hw]
				for ci := 0; ci < cpg; ci++ {
					g, be := gn.Gamma.Data.Data[gi*cpg+ci], gn.Beta.Data.Data[gi*cpg+ci]
					for j := ci * hw; j < (ci+1)*hw; j++ {
						xh := (gx[j] - mean) * inv
						gxh[j] = xh
						gout[j] = g*xh + be
					}
				}
			} else {
				for ci := 0; ci < cpg; ci++ {
					g, be := gn.Gamma.Data.Data[gi*cpg+ci], gn.Beta.Data.Data[gi*cpg+ci]
					for j := ci * hw; j < (ci+1)*hw; j++ {
						gout[j] = g*(gx[j]-mean)*inv + be
					}
				}
			}
		}
	}
	gn.LastPreActMean = out.Mean()
	return out
}

// Backward computes GN gradients per (sample, group), over contiguous
// channel rows (same accumulation order as the original quadruple loops).
func (gn *GroupNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := dy.Shape[0], dy.Shape[1], dy.Shape[2], dy.Shape[3]
	var dx *tensor.Tensor
	if reuseBuffers() {
		dx = ensureLike(&gn.dx, dy) // fully overwritten below
	} else {
		dx = tensor.New(dy.Shape...)
	}
	cpg := c / gn.Groups
	hw := h * w
	cnt := float64(cpg * hw)
	// Parameter gradients reduce over batch and spatial dims per channel.
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			row := (ni*c + ci) * hw
			dyr := dy.Data[row : row+hw]
			xhr := gn.xhat.Data[row : row+hw]
			var sumDy, sumDyXhat float64
			for j, g := range dyr {
				sumDy += g
				sumDyXhat += g * xhr[j]
			}
			gn.Beta.Grad.Data[ci] += sumDy
			gn.Gamma.Grad.Data[ci] += sumDyXhat
		}
	}
	for ni := 0; ni < n; ni++ {
		for gi := 0; gi < gn.Groups; gi++ {
			lo := (ni*c + gi*cpg) * hw
			dyg := dy.Data[lo : lo+cpg*hw]
			xhg := gn.xhat.Data[lo : lo+cpg*hw]
			var sumG, sumGXhat float64
			for ci := 0; ci < cpg; ci++ {
				gamma := gn.Gamma.Data.Data[gi*cpg+ci]
				for j := ci * hw; j < (ci+1)*hw; j++ {
					g := dyg[j] * gamma
					sumG += g
					sumGXhat += g * xhg[j]
				}
			}
			inv := gn.invStd[ni*gn.Groups+gi]
			dxg := dx.Data[lo : lo+cpg*hw]
			for ci := 0; ci < cpg; ci++ {
				gamma := gn.Gamma.Data.Data[gi*cpg+ci]
				for j := ci * hw; j < (ci+1)*hw; j++ {
					g := dyg[j] * gamma
					dxg[j] = inv * (g - sumG/cnt - xhg[j]*sumGXhat/cnt)
				}
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (gn *GroupNorm) Params() []*Param { return []*Param{gn.Gamma, gn.Beta} }
