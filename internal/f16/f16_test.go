package f16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits F16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},          // max finite half
		{5.9604645e-8, 0x0001},   // smallest subnormal
		{0.333251953125, 0x3555}, // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := c.bits.Float32(); back != c.f {
			t.Errorf("%#04x.Float32() = %g, want %g", c.bits, back, c.f)
		}
	}
}

func TestSpecials(t *testing.T) {
	if !FromFloat32(float32(math.Inf(1))).IsInf() {
		t.Error("+Inf lost")
	}
	if FromFloat32(float32(math.Inf(-1))) != NegInf {
		t.Error("-Inf wrong")
	}
	if !FromFloat32(float32(math.NaN())).IsNaN() {
		t.Error("NaN lost")
	}
	if !math.IsNaN(float64(NaN.Float32())) {
		t.Error("NaN round trip failed")
	}
	// Overflow saturates to infinity.
	if !FromFloat32(1e6).IsInf() {
		t.Error("1e6 should overflow to +Inf")
	}
	// Underflow flushes to signed zero.
	if FromFloat32(1e-9) != 0 {
		t.Error("1e-9 should underflow to +0")
	}
	if FromFloat32(-1e-9) != 0x8000 {
		t.Error("-1e-9 should underflow to -0")
	}
}

func TestRoundTripExactForAllHalves(t *testing.T) {
	// Every finite half converts to float32 and back bit-identically.
	for bits := 0; bits < 1<<16; bits++ {
		h := F16(bits)
		if h.IsNaN() {
			continue // NaN payloads need not round trip exactly
		}
		if got := FromFloat32(h.Float32()); got != h {
			t.Fatalf("bits %#04x -> %g -> %#04x", bits, h.Float32(), got)
		}
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly between 1 and the next half (1+2^-10): RNE
	// rounds to the even mantissa (1.0).
	f := float32(1) + float32(math.Pow(2, -11))
	if got := FromFloat32(f); got != 0x3C00 {
		t.Errorf("midpoint rounded to %#04x, want 0x3C00 (even)", got)
	}
	// 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: rounds up to even.
	f = float32(1) + 3*float32(math.Pow(2, -11))
	if got := FromFloat32(f); got != 0x3C02 {
		t.Errorf("midpoint rounded to %#04x, want 0x3C02", got)
	}
}

func TestQuantizeError(t *testing.T) {
	// Relative quantization error of normal halves is at most 2^-11.
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 60000 || math.Abs(float64(v)) < 1e-4 {
			return true
		}
		q := Quantize(float64(v))
		rel := math.Abs(q-float64(v)) / math.Abs(float64(v))
		return rel <= math.Pow(2, -11)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeSlice(t *testing.T) {
	xs := []float64{1.0000001, 0.3333333, 100.06}
	maxErr := QuantizeSlice(xs)
	if maxErr <= 0 {
		t.Error("expected nonzero rounding error")
	}
	for _, v := range xs {
		if Quantize(v) != v {
			t.Error("slice not idempotently quantized")
		}
	}
}

func TestMixedPrecisionAccumulation(t *testing.T) {
	// The paper's PE accumulates in 32 bits precisely because long im2col
	// reductions (K up to ~4600 in ResNet-50) destroy fp16 accumulators.
	rng := rand.New(rand.NewSource(1))
	n := 4608 // Ci*R*S of a 512-channel 3x3 layer
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	var exact float64
	for i := range a {
		exact += Quantize(a[i]) * Quantize(b[i])
	}
	mixed := DotMixed(a, b)
	half := DotHalfAccum(a, b)

	errMixed := math.Abs(mixed - exact)
	errHalf := math.Abs(half - exact)
	if errMixed > 0.1 {
		t.Errorf("fp32 accumulation error %g too large", errMixed)
	}
	if errHalf < 2*errMixed {
		t.Errorf("fp16 accumulation (%g) should be much worse than fp32 (%g)",
			errHalf, errMixed)
	}
}

func TestDotMismatchedLengths(t *testing.T) {
	if DotMixed([]float64{1, 2, 3}, []float64{1}) != 1 {
		t.Error("dot should truncate to the shorter operand")
	}
}
