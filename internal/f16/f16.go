// Package f16 implements IEEE 754 binary16 (half precision) conversion and
// the mixed-precision arithmetic WaveCore uses: 16-bit storage and
// multiplication with 32-bit accumulation (Micikevicius et al., cited by
// the paper for its PE design). It backs the simulator's claim that all
// feature/weight traffic is 2 bytes per element while accumulation error
// stays at fp32 level, and lets tests quantify the quantization error of
// the 16b output write-back the accumulation buffer performs.
package f16

import (
	"math"
)

// F16 is an IEEE 754 binary16 value in its raw bit representation
// (1 sign, 5 exponent, 10 mantissa bits).
type F16 uint16

// Bit-layout constants.
const (
	signMask = 0x8000
	expMask  = 0x7C00
	fracMask = 0x03FF
	expBias  = 15
	fracBits = 10
	maxExp   = 0x1F
	// PosInf and NegInf are the half-precision infinities.
	PosInf F16 = 0x7C00
	NegInf F16 = 0xFC00
	// NaN is a canonical half-precision NaN.
	NaN F16 = 0x7E00
	// MaxValue is the largest finite half-precision magnitude (65504).
	MaxValue F16 = 0x7BFF
)

// FromFloat32 converts a float32 to half precision with round-to-nearest-
// even, handling subnormals, overflow to infinity, and NaN.
func FromFloat32(f float32) F16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & signMask
	exp := int32(bits>>23) & 0xFF
	frac := bits & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			return F16(sign | expMask | 0x200) // quiet NaN
		}
		return F16(sign | expMask)
	case exp == 0 && frac == 0: // signed zero
		return F16(sign)
	}

	// Unbiased exponent.
	e := exp - 127

	if e > 15 { // overflow -> infinity
		return F16(sign | expMask)
	}
	if e >= -14 {
		// Normal half: round the 23-bit fraction to 10 bits, RNE.
		halfExp := uint16(e+expBias) << fracBits
		shifted := frac >> 13
		round := frac & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && shifted&1 == 1) {
			shifted++
			if shifted == 0x400 { // fraction overflowed into exponent
				shifted = 0
				halfExp += 1 << fracBits
				if halfExp >= expMask {
					return F16(sign | expMask)
				}
			}
		}
		return F16(sign | halfExp | uint16(shifted))
	}
	if e >= -24 {
		// Subnormal half: implicit leading 1 becomes explicit.
		full := frac | 0x800000
		shift := uint32(-e - 14 + 13)
		shifted := full >> shift
		rem := full & ((1 << shift) - 1)
		halfRem := uint32(1) << (shift - 1)
		if rem > halfRem || (rem == halfRem && shifted&1 == 1) {
			shifted++
		}
		return F16(sign | uint16(shifted))
	}
	// Underflow to signed zero.
	return F16(sign)
}

// Float32 converts a half-precision value back to float32 (exact).
func (h F16) Float32() float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> fracBits
	frac := uint32(h & fracMask)

	switch {
	case exp == maxExp: // Inf/NaN
		return math.Float32frombits(sign | 0x7F800000 | frac<<13)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp-expBias+127)<<23 | frac<<13)
	case frac == 0: // zero
		return math.Float32frombits(sign)
	default: // subnormal: normalize
		e := uint32(127 - expBias + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return math.Float32frombits(sign | e<<23 | frac<<13)
	}
}

// IsNaN reports whether the value is a NaN.
func (h F16) IsNaN() bool { return h&expMask == expMask && h&fracMask != 0 }

// IsInf reports whether the value is an infinity.
func (h F16) IsInf() bool { return h&expMask == expMask && h&fracMask == 0 }

// FromFloat64 converts via float32 (double rounding is acceptable for the
// dynamic ranges the training engine produces; exact for all halves).
func FromFloat64(f float64) F16 { return FromFloat32(float32(f)) }

// Float64 widens exactly.
func (h F16) Float64() float64 { return float64(h.Float32()) }

// Quantize rounds a float64 through half precision and back — the value a
// 16-bit feature write-back stores.
func Quantize(f float64) float64 { return FromFloat64(f).Float64() }

// QuantizeSlice rounds every element of a slice through half precision in
// place and returns the largest absolute rounding error.
func QuantizeSlice(xs []float64) float64 {
	var maxErr float64
	for i, v := range xs {
		q := Quantize(v)
		if e := math.Abs(q - v); e > maxErr {
			maxErr = e
		}
		xs[i] = q
	}
	return maxErr
}

// EncodeSlice rounds src into dst (which must be at least as long) as half
// precision — the layout a 16-bit feature write-back produces.
func EncodeSlice(dst []F16, src []float64) {
	for i, v := range src {
		dst[i] = FromFloat64(v)
	}
}

// DecodeSlice widens src into dst (which must be at least as long). The
// conversion is exact, so Encode/Decode round-trips lose precision only at
// the encode.
func DecodeSlice(dst []float64, src []F16) {
	for i, h := range src {
		dst[i] = h.Float64()
	}
}

// DotMixed computes a dot product the way a WaveCore PE column does: the
// operands are first quantized to 16 bits, each product is computed at
// fp16-input precision, and accumulation runs in float32 (the paper's
// "16b inputs multiplied with accumulation performed in 32 bits").
func DotMixed(a, b []float64) float64 {
	var acc float32
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		x := FromFloat64(a[i]).Float32()
		y := FromFloat64(b[i]).Float32()
		acc += x * y
	}
	return float64(acc)
}

// DotHalfAccum is the all-fp16 comparison point: accumulation also rounds
// to half precision every step. It demonstrates why the PE accumulates in
// 32 bits — long reductions lose precision catastrophically otherwise.
func DotHalfAccum(a, b []float64) float64 {
	var acc F16
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		x := FromFloat64(a[i]).Float32()
		y := FromFloat64(b[i]).Float32()
		acc = FromFloat32(acc.Float32() + x*y)
	}
	return acc.Float64()
}
