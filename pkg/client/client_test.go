package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"testing"

	"repro/internal/service"
)

func newTestClient(t *testing.T) *Client {
	t.Helper()
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return New(ts.URL)
}

func TestScenariosAndRun(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	infos, err := c.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 || infos[0].Name == "" {
		t.Fatalf("scenarios = %+v", infos)
	}
	out, err := c.Run(ctx, RunRequest{Scenario: "fig4"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"fig4"`)) {
		t.Errorf("run output missing scenario key: %.100s", out)
	}
	text, err := c.Run(ctx, RunRequest{Scenario: "table2", Format: "text"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text, []byte("WaveCore")) {
		t.Errorf("text output = %.100s", text)
	}
}

func TestAPIErrorDecoding(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	cases := []struct {
		req    RunRequest
		status int
		code   string
	}{
		{RunRequest{Scenario: "fig99"}, 404, CodeUnknownScenario},
		{RunRequest{Scenario: "fig5", Params: map[string]string{"bogus": "1"}}, 422, CodeInvalidParams},
	}
	for _, tc := range cases {
		_, err := c.Run(ctx, tc.req)
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("%v: err = %T (%v), want *APIError", tc.req, err, err)
		}
		if ae.Status != tc.status || ae.Code != tc.code {
			t.Errorf("%v: got %d/%s, want %d/%s", tc.req, ae.Status, ae.Code, tc.status, tc.code)
		}
	}
	if _, err := c.Job(ctx, "job-404"); err == nil {
		t.Error("unknown job id succeeded")
	}
}

// TestJobRoundTrip drives the v2 surface end to end through the typed
// client: submit, stream cells, wait, and byte-parity of Result with Run.
func TestJobRoundTrip(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	params := map[string]string{"axes": "buffer"}
	job, err := c.Submit(ctx, "sweep", params)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State.Terminal() {
		t.Fatalf("submitted job = %+v", job)
	}

	stream, err := c.Stream(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	cells := 0
	sawStatus := false
	for {
		ev, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "status":
			sawStatus = true
		case "cell":
			cells++
			if len(ev.Row) == 0 || ev.Cell == "" {
				t.Errorf("cell event incomplete: %+v", ev)
			}
		case "done":
			if ev.Job.State != JobDone {
				t.Fatalf("done state = %s", ev.Job.State)
			}
			goto streamed
		}
	}
streamed:
	if !sawStatus || cells != 5 {
		t.Errorf("stream: status=%v cells=%d, want status and 5 cells", sawStatus, cells)
	}
	if _, err := stream.Next(); err != io.EOF {
		t.Errorf("after done: err = %v, want io.EOF", err)
	}

	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.CellsCompleted != 5 {
		t.Errorf("final = %s/%d cells", final.State, final.CellsCompleted)
	}
	result, err := c.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	syncBytes, err := c.Run(ctx, RunRequest{Scenario: "sweep", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result, syncBytes) {
		t.Errorf("job result differs from synchronous run bytes (%d vs %d)", len(result), len(syncBytes))
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Errorf("jobs list = %+v", jobs)
	}
}

func TestCancelThroughClient(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	job, err := c.Submit(ctx, "all", nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The submit→cancel turnaround is not gated here, so the suite may have
	// already finished; any terminal state is acceptable, but a cancelled
	// one must be reflected by Wait and the stats counter.
	if !st.State.Terminal() {
		t.Fatalf("cancel returned non-terminal state %s", st.State)
	}
	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != st.State {
		t.Errorf("Wait state %s != cancel state %s", final.State, st.State)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == JobCancelled && stats.Jobs.Cancellations != 1 {
		t.Errorf("cancellations = %d, want 1", stats.Jobs.Cancellations)
	}
	if stats.Jobs.Submitted != 1 {
		t.Errorf("submitted = %d, want 1", stats.Jobs.Submitted)
	}
}
