package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

func newTestClient(t *testing.T) *Client {
	t.Helper()
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return New(ts.URL)
}

func TestScenariosAndRun(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	infos, err := c.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 || infos[0].Name == "" {
		t.Fatalf("scenarios = %+v", infos)
	}
	out, err := c.Run(ctx, RunRequest{Scenario: "fig4"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"fig4"`)) {
		t.Errorf("run output missing scenario key: %.100s", out)
	}
	text, err := c.Run(ctx, RunRequest{Scenario: "table2", Format: "text"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text, []byte("WaveCore")) {
		t.Errorf("text output = %.100s", text)
	}
}

func TestAPIErrorDecoding(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	cases := []struct {
		req    RunRequest
		status int
		code   string
	}{
		{RunRequest{Scenario: "fig99"}, 404, CodeUnknownScenario},
		{RunRequest{Scenario: "fig5", Params: map[string]string{"bogus": "1"}}, 422, CodeInvalidParams},
	}
	for _, tc := range cases {
		_, err := c.Run(ctx, tc.req)
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("%v: err = %T (%v), want *APIError", tc.req, err, err)
		}
		if ae.Status != tc.status || ae.Code != tc.code {
			t.Errorf("%v: got %d/%s, want %d/%s", tc.req, ae.Status, ae.Code, tc.status, tc.code)
		}
	}
	if _, err := c.Job(ctx, "job-404"); err == nil {
		t.Error("unknown job id succeeded")
	}
}

// TestJobRoundTrip drives the v2 surface end to end through the typed
// client: submit, stream cells, wait, and byte-parity of Result with Run.
func TestJobRoundTrip(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	params := map[string]string{"axes": "buffer"}
	job, err := c.Submit(ctx, "sweep", params)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State.Terminal() {
		t.Fatalf("submitted job = %+v", job)
	}

	stream, err := c.Stream(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	cells := 0
	sawStatus := false
	for {
		ev, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "status":
			sawStatus = true
		case "cell":
			cells++
			if len(ev.Row) == 0 || ev.Cell == "" {
				t.Errorf("cell event incomplete: %+v", ev)
			}
		case "done":
			if ev.Job.State != JobDone {
				t.Fatalf("done state = %s", ev.Job.State)
			}
			goto streamed
		}
	}
streamed:
	if !sawStatus || cells != 5 {
		t.Errorf("stream: status=%v cells=%d, want status and 5 cells", sawStatus, cells)
	}
	if _, err := stream.Next(); err != io.EOF {
		t.Errorf("after done: err = %v, want io.EOF", err)
	}

	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.CellsCompleted != 5 {
		t.Errorf("final = %s/%d cells", final.State, final.CellsCompleted)
	}
	result, err := c.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	syncBytes, err := c.Run(ctx, RunRequest{Scenario: "sweep", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result, syncBytes) {
		t.Errorf("job result differs from synchronous run bytes (%d vs %d)", len(result), len(syncBytes))
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Errorf("jobs list = %+v", jobs)
	}
}

func TestCancelThroughClient(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	job, err := c.Submit(ctx, "all", nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Cancel(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The submit→cancel turnaround is not gated here, so the suite may have
	// already finished; any terminal state is acceptable, but a cancelled
	// one must be reflected by Wait and the stats counter.
	if !st.State.Terminal() {
		t.Fatalf("cancel returned non-terminal state %s", st.State)
	}
	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != st.State {
		t.Errorf("Wait state %s != cancel state %s", final.State, st.State)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == JobCancelled && stats.Jobs.Cancellations != 1 {
		t.Errorf("cancellations = %d, want 1", stats.Jobs.Cancellations)
	}
	if stats.Jobs.Submitted != 1 {
		t.Errorf("submitted = %d, want 1", stats.Jobs.Submitted)
	}
}

// TestOverloaded429Decoding pins the client half of the backpressure
// contract: a 429 decodes into *APIError with the overloaded code and the
// parsed Retry-After hint, and Overloaded recognises it.
func TestOverloaded429Decoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":"inference queue is full; retry after backoff","code":"overloaded"}`)
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Infer(context.Background(), [][]float64{{1}})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T (%v), want *APIError", err, err)
	}
	if ae.Status != 429 || ae.Code != CodeOverloaded {
		t.Errorf("got %d/%s, want 429/%s", ae.Status, ae.Code, CodeOverloaded)
	}
	if ae.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s", ae.RetryAfter)
	}
	if !Overloaded(err) {
		t.Error("Overloaded(429 APIError) = false")
	}
	if Overloaded(nil) || Overloaded(errors.New("boom")) || Overloaded(&APIError{Status: 503}) {
		t.Error("Overloaded matched a non-429 error")
	}
}

// TestInferStatsMirror round-trips the replica-pool stats through the wire
// into the client mirror types.
func TestInferStatsMirror(t *testing.T) {
	svc := service.New(service.Config{InferReplicas: 2, InferShed: true})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	c := New(ts.URL)
	ctx := context.Background()
	if _, err := c.Infer(ctx, [][]float64{make([]float64, 768)}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	in := st.Infer
	if in.Replicas != 2 || len(in.PerReplica) != 2 || !in.ShedEnabled {
		t.Errorf("replica pool stats did not mirror: %+v", in)
	}
	if in.MinDelay == "" || in.Requests != 1 || in.Items != 1 {
		t.Errorf("counter mirror: %+v", in)
	}
	if in.PerReplica[0].Items+in.PerReplica[1].Items != in.Items {
		t.Errorf("per-replica items %+v don't sum to %d", in.PerReplica, in.Items)
	}
}
